#include "train/loops.hpp"

namespace dchag::train {

using model::MaeModel;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

TrainCurve train_mae(
    model::MaeModel& mae, const LoopConfig& cfg,
    const std::function<Tensor(Index)>& next_batch) {
  std::optional<tensor::KernelScope> kernels;
  if (cfg.kernels) kernels.emplace(*cfg.kernels);
  std::optional<comm::CommScope> comm_scope;
  if (cfg.comm) comm_scope.emplace(*cfg.comm);
  Adam opt(mae.parameters(), cfg.adam);
  TrainCurve curve;
  curve.losses.reserve(static_cast<std::size_t>(cfg.steps));
  const Index seq = mae.config().seq_len();
  for (Index step = 0; step < cfg.steps; ++step) {
    Tensor full = next_batch(step);
    Tensor local = mae.frontend().select_input(full);
    // Mask depends only on (seed, step): identical on every rank.
    Rng mask_rng(cfg.data_seed ^
                 (0xA5A5ull + static_cast<std::uint64_t>(step)));
    Tensor mask =
        MaeModel::make_mask(full.dim(0), seq, cfg.mask_ratio, mask_rng);
    opt.zero_grad();
    auto out = mae.forward(local, full, mask);
    out.loss.backward();
    opt.step();
    curve.losses.push_back(out.loss.value().item());
  }
  return curve;
}

TrainCurve train_forecast(
    model::ForecastModel& fm, const LoopConfig& cfg,
    const std::function<std::pair<Tensor, Tensor>(Index)>& next_pair) {
  std::optional<tensor::KernelScope> kernels;
  if (cfg.kernels) kernels.emplace(*cfg.kernels);
  std::optional<comm::CommScope> comm_scope;
  if (cfg.comm) comm_scope.emplace(*cfg.comm);
  Adam opt(fm.parameters(), cfg.adam);
  TrainCurve curve;
  curve.losses.reserve(static_cast<std::size_t>(cfg.steps));
  for (Index step = 0; step < cfg.steps; ++step) {
    auto [now, future] = next_pair(step);
    Tensor local = fm.frontend().select_input(now);
    opt.zero_grad();
    auto out = fm.forward(local, future);
    out.loss.backward();
    opt.step();
    curve.losses.push_back(out.loss.value().item());
  }
  return curve;
}

std::vector<float> evaluate_forecast_rmse(
    const model::ForecastModel& fm, Index patch,
    const std::function<std::pair<Tensor, Tensor>(Index)>& next_pair,
    Index batches) {
  std::vector<double> se;
  Index count = 0;
  for (Index i = 0; i < batches; ++i) {
    auto [now, future] = next_pair(i);
    Tensor local = fm.frontend().select_input(now);
    auto out = fm.forward(local, future);
    auto rmse = model::ForecastModel::per_channel_rmse(out.pred.value(),
                                                       future, patch);
    if (se.empty()) se.resize(rmse.size(), 0.0);
    for (std::size_t c = 0; c < rmse.size(); ++c)
      se[c] += static_cast<double>(rmse[c]) * rmse[c];
    ++count;
  }
  std::vector<float> out(se.size());
  for (std::size_t c = 0; c < se.size(); ++c)
    out[c] = static_cast<float>(
        std::sqrt(se[c] / static_cast<double>(count)));
  return out;
}

}  // namespace dchag::train
