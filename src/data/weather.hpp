// Synthetic ERA5-like weather fields — the stand-in for the paper's §5.2
// forecasting dataset (5 atmospheric variables x >10 pressure levels + 3
// surface variables = 80 channels, regridded to 5.625 deg = 32 x 64).
//
// Generative model: each variable group is a superposition of travelling
// planetary waves f(x, y, t) = sum_k A_k sin(kx*x + ky*y - omega_k*t +
// phi_k) with smooth meridional envelopes; channels within a group (the
// pressure levels of one variable) share the same wave set with
// level-dependent amplitude decay, giving the strong inter-level
// correlation of real reanalysis. The dynamics are deterministic in t, so
// "forecast t -> t + lead" is a well-posed learnable task, which is all
// the paper's Fig. 12 parity experiment requires.
#pragma once

#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace dchag::data {

using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

struct WeatherConfig {
  Index num_variables = 5;      ///< atmospheric variable groups
  Index levels_per_variable = 15;  ///< pressure levels per group
  Index surface_variables = 5;  ///< single-level variables
  Index height = 32;            ///< 5.625 deg grid (paper regrid)
  Index width = 64;
  Index waves_per_variable = 6;
  float noise_std = 0.02f;

  [[nodiscard]] Index channels() const {
    return num_variables * levels_per_variable + surface_variables;
  }
};

class WeatherGenerator {
 public:
  WeatherGenerator(WeatherConfig cfg, std::uint64_t seed);

  /// Field snapshot at time `t` for one sample realisation `sample_id`:
  /// [C, H, W]. Deterministic in (sample_id, t).
  [[nodiscard]] Tensor state(std::uint64_t sample_id, float t) const;

  /// Batch of (input, target) pairs at random times: input [B, C, H, W] at
  /// t_i, target at t_i + lead.
  struct Pair {
    Tensor now;
    Tensor future;
  };
  [[nodiscard]] Pair sample_pair(Index batch, float lead);

  [[nodiscard]] const WeatherConfig& config() const { return cfg_; }

  /// Paper's evaluation channels: geopotential@500-like, temperature@850
  /// -like, and surface-u-wind-like indices into the channel dimension.
  [[nodiscard]] Index z500_channel() const;
  [[nodiscard]] Index t850_channel() const;
  [[nodiscard]] Index u10_channel() const;
  [[nodiscard]] std::string channel_name(Index c) const;

 private:
  struct Wave {
    float kx, ky, omega, phase, amp;
  };
  WeatherConfig cfg_;
  Rng rng_;
  // waves_[variable_group][wave]; surface vars are extra groups of 1 level
  std::vector<std::vector<Wave>> waves_;
};

}  // namespace dchag::data
