#include "hw/comm_model.hpp"

#include <gtest/gtest.h>

namespace dchag::hw {
namespace {

const CommCostModel kCost(MachineSpec::frontier());

TEST(CommCostModel, ZeroForTrivialGroups) {
  EXPECT_EQ(kCost.all_reduce_s(1e6, 1, 1), 0.0);
  EXPECT_EQ(kCost.all_gather_s(0.0, 8, 8), 0.0);
}

TEST(CommCostModel, IntraNodeFasterThanInterNode) {
  // Same payload, same group size: a group within one node beats a group
  // spanning nodes (the rationale for the paper's §6.3 hybrid layout).
  const double bytes = 256e6;
  const double intra = kCost.all_reduce_s(bytes, 8, 8);
  const double inter = kCost.all_reduce_s(bytes, 8, 1);
  EXPECT_LT(intra, inter);
}

TEST(CommCostModel, SharedNicPenalty) {
  // More colocated ranks in a node-spanning group divide the NIC budget.
  const double bytes = 64e6;
  const double lone = kCost.all_reduce_s(bytes, 16, 1);
  const double packed = kCost.all_reduce_s(bytes, 16, 8);
  EXPECT_LT(lone, packed);
}

TEST(CommCostModel, MonotonicInBytes) {
  double prev = 0;
  for (double bytes : {1e6, 1e7, 1e8, 1e9}) {
    const double t = kCost.all_reduce_s(bytes, 8, 8);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CommCostModel, RingBandwidthTermSaturates) {
  // Per the ring formula the bandwidth term approaches 2*bytes/bw as P
  // grows; doubling P far past saturation must not double the time.
  const double bytes = 1e9;
  const double t64 = kCost.all_reduce_s(bytes, 64, 8);
  const double t128 = kCost.all_reduce_s(bytes, 128, 8);
  EXPECT_LT(t128 / t64, 1.2);
}

TEST(CommCostModel, AllGatherReduceScatterSymmetric) {
  EXPECT_DOUBLE_EQ(kCost.all_gather_s(1e8, 8, 4),
                   kCost.reduce_scatter_s(1e8, 8, 4));
}

TEST(CommCostModel, AllReduceEqualsGatherPlusScatterAsymptotically) {
  // Ring AllReduce = ReduceScatter + AllGather of the same payload.
  const double bytes = 5e8;
  const double ar = kCost.all_reduce_s(bytes, 8, 8);
  const double rs_ag =
      kCost.reduce_scatter_s(bytes, 8, 8) + kCost.all_gather_s(bytes, 8, 8);
  EXPECT_NEAR(ar, rs_ag, ar * 0.01);
}

TEST(CommCostModel, EffectiveBandwidthRules) {
  const MachineSpec m = MachineSpec::frontier();
  // Whole group on one node: Infinity Fabric.
  EXPECT_DOUBLE_EQ(kCost.effective_bandwidth_gbs(8, 8),
                   m.intra_node.bandwidth_gbs);
  // Spanning nodes with 8 colocated ranks: each gets 100/8 GB/s.
  EXPECT_DOUBLE_EQ(kCost.effective_bandwidth_gbs(16, 8),
                   m.inter_node_per_node.bandwidth_gbs / 8);
  // One rank per node: full NIC, capped by Infinity Fabric.
  EXPECT_DOUBLE_EQ(kCost.effective_bandwidth_gbs(4, 1),
                   m.intra_node.bandwidth_gbs);
}

TEST(GroupPlacement, TpInnermostLayout) {
  // tp=8 fills a node; fsdp then has one member per node.
  const auto p = place_groups(8, 4, 2, 8);
  EXPECT_EQ(p.tp_ranks_per_node, 8);
  EXPECT_EQ(p.fsdp_ranks_per_node, 1);
  EXPECT_EQ(p.dp_ranks_per_node, 1);
}

TEST(GroupPlacement, SmallTpLeavesRoomForFsdp) {
  // tp=2: four TP groups per node, so fsdp up to 4 stays intra-node.
  const auto p = place_groups(2, 4, 8, 8);
  EXPECT_EQ(p.tp_ranks_per_node, 2);
  EXPECT_EQ(p.fsdp_ranks_per_node, 4);
  EXPECT_EQ(p.dp_ranks_per_node, 1);
}

TEST(GroupPlacement, DpIntraNodeWhenEverythingSmall) {
  const auto p = place_groups(2, 2, 2, 8);
  EXPECT_EQ(p.dp_ranks_per_node, 2);
}

}  // namespace
}  // namespace dchag::hw
