// Sequence parallelism must be a pure activation re-partitioning: same
// seeds => a P-rank SP encoder equals the serial encoder on each rank's
// sequence shard, and grads match after the SP-group reduction.
#include <gtest/gtest.h>

#include "model/vit.hpp"
#include "parallel/sequence_parallel.hpp"

namespace dchag::parallel {
namespace {

namespace ops = tensor::ops;
using comm::World;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

class SpWorldSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpWorldSweep, ForwardMatchesSerialShard) {
  const int P = GetParam();
  ModelConfig cfg = ModelConfig::tiny();
  const Index S = 8;
  Rng data_rng(1);
  Tensor x = data_rng.normal_tensor(Shape{2, S, cfg.embed_dim});

  Rng serial_rng(77);
  model::ViTEncoder serial(cfg, serial_rng);
  Tensor ref = serial.forward(Variable::input(x)).value();

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(77);
    SequenceParallelViTEncoder enc(cfg, comm, rng);
    const Index shard = S / P;
    Tensor x_local = ops::slice(x, 1, comm.rank() * shard, shard);
    Variable y = enc.forward(Variable::input(x_local));
    Tensor expected = ops::slice(ref, 1, comm.rank() * shard, shard);
    ASSERT_LT(ops::max_abs_diff(y.value(), expected), 5e-4f)
        << "rank " << comm.rank();
  });
}

TEST_P(SpWorldSweep, ScatterGatherRoundTrip) {
  const int P = GetParam();
  Rng rng(2);
  Tensor x = rng.normal_tensor(Shape{2, 8, 4});
  World world(P);
  world.run([&](Communicator& comm) {
    Variable shard = scatter_sequence(Variable::input(x), comm);
    ASSERT_EQ(shard.shape().dim(1), 8 / P);
    Variable back = gather_sequence(shard, comm);
    ASSERT_LT(ops::max_abs_diff(back.value(), x), 1e-6f);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SpWorldSweep, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(SequenceParallel, GradsMatchSerialAfterSync) {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.num_layers = 1;
  const Index S = 8;
  Rng data_rng(3);
  Tensor x = data_rng.normal_tensor(Shape{1, S, cfg.embed_dim});

  Rng serial_rng(88);
  model::ViTEncoder serial(cfg, serial_rng);
  {
    Variable out = serial.forward(Variable::input(x));
    autograd::sum_all(autograd::mul(out, out)).backward();
  }
  auto serial_params = serial.parameters();

  World world(2);
  world.run([&](Communicator& comm) {
    Rng rng(88);
    SequenceParallelViTEncoder enc(cfg, comm, rng);
    const Index shard = S / 2;
    Tensor x_local = ops::slice(x, 1, comm.rank() * shard, shard);
    Variable out = enc.forward(Variable::input(x_local));
    autograd::sum_all(autograd::mul(out, out)).backward();
    enc.sync_gradients(comm);

    auto params = enc.parameters();
    ASSERT_EQ(params.size(), serial_params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      ASSERT_TRUE(params[i].has_grad()) << params[i].name();
      ASSERT_LT(ops::max_abs_diff(params[i].grad(), serial_params[i].grad()),
                1e-3f)
          << params[i].name() << " rank " << comm.rank();
    }
  });
}

TEST(SequenceParallel, RejectsIndivisibleSequence) {
  World world(3);
  EXPECT_THROW(world.run([](Communicator& comm) {
    Rng rng(1);
    Tensor x = rng.normal_tensor(Shape{1, 8, 4});  // 8 % 3 != 0
    (void)scatter_sequence(Variable::input(x), comm);
  }),
               Error);
}

TEST(SequenceParallel, AttentionSeesFullSequence) {
  // A perturbation in rank 1's shard must change rank 0's output (keys/
  // values are gathered) — SP is not blockwise-local attention.
  ModelConfig cfg = ModelConfig::tiny();
  cfg.num_layers = 1;
  const Index S = 8;
  Rng data_rng(4);
  Tensor x = data_rng.normal_tensor(Shape{1, S, cfg.embed_dim});
  Tensor x_mod = x.clone();
  x_mod.set({0, 6, 0}, x_mod.at({0, 6, 0}) + 3.0f);  // inside rank 1's shard

  std::vector<float> diff(2, 0.0f);
  World world(2);
  world.run([&](Communicator& comm) {
    Rng rng(99);
    SequenceParallelViTEncoder enc(cfg, comm, rng);
    const Index shard = S / 2;
    Tensor a = ops::slice(x, 1, comm.rank() * shard, shard);
    Tensor b = ops::slice(x_mod, 1, comm.rank() * shard, shard);
    Tensor ya = enc.forward(Variable::input(a)).value();
    Tensor yb = enc.forward(Variable::input(b)).value();
    diff[static_cast<std::size_t>(comm.rank())] = ops::max_abs_diff(ya, yb);
  });
  EXPECT_GT(diff[0], 1e-5f);  // rank 0 saw rank 1's change through kv
  EXPECT_GT(diff[1], 1e-3f);  // rank 1 sees it directly
}

}  // namespace
}  // namespace dchag::parallel
