// Ingress-tier counters, alongside (not replacing) serve::Metrics: the
// Metrics instance owned by the dispatcher carries latency percentiles
// and queue/recovery accounting; these counters carry the admission and
// worker-lifecycle events unique to the process-pool front door.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dchag::ingress {

class Counters {
 public:
  struct Snapshot {
    std::uint64_t connections = 0;
    std::uint64_t accepted = 0;            ///< admitted to the queue
    std::uint64_t rejected_saturated = 0;  ///< typed reject: queue full
    std::uint64_t rejected_draining = 0;   ///< typed reject: shutting down
    std::uint64_t rejected_bad = 0;        ///< typed reject: malformed
    std::uint64_t completed = 0;           ///< responses sent to clients
    std::uint64_t redispatches = 0;  ///< in-flight work moved off a dead
                                     ///< worker and re-queued
    std::uint64_t worker_restarts = 0;  ///< crashed workers respawned
    std::uint64_t scale_ups = 0;
    std::uint64_t scale_downs = 0;
    std::uint64_t workers = 0;      ///< current live pool size
    std::uint64_t queue_depth = 0;  ///< admission queue, now

    /// /metrics-style exposition lines ("dchag_ingress_<name> <value>").
    [[nodiscard]] std::string to_exposition() const;
  };

  void connection() { ++connections_; }
  void accept() { ++accepted_; }
  void reject_saturated() { ++rejected_saturated_; }
  void reject_draining() { ++rejected_draining_; }
  void reject_bad() { ++rejected_bad_; }
  void complete() { ++completed_; }
  void redispatch(std::uint64_t n) { redispatches_ += n; }
  void worker_restart() { ++worker_restarts_; }
  void scale_up() { ++scale_ups_; }
  void scale_down() { ++scale_downs_; }

  [[nodiscard]] Snapshot snapshot(std::uint64_t workers,
                                  std::uint64_t queue_depth) const {
    Snapshot s;
    s.connections = connections_.load();
    s.accepted = accepted_.load();
    s.rejected_saturated = rejected_saturated_.load();
    s.rejected_draining = rejected_draining_.load();
    s.rejected_bad = rejected_bad_.load();
    s.completed = completed_.load();
    s.redispatches = redispatches_.load();
    s.worker_restarts = worker_restarts_.load();
    s.scale_ups = scale_ups_.load();
    s.scale_downs = scale_downs_.load();
    s.workers = workers;
    s.queue_depth = queue_depth;
    return s;
  }

 private:
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_saturated_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> rejected_bad_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> redispatches_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> scale_ups_{0};
  std::atomic<std::uint64_t> scale_downs_{0};
};

}  // namespace dchag::ingress
