// Shim TU: consumes the deprecated LoopConfig::kernels/comm overlays.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "train/loops.hpp"

namespace dchag::train {

using model::MaeModel;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

namespace {

/// The context a loop runs under: the explicit/ambient context with the
/// deprecated LoopConfig pins overlaid (they used to be thread-local
/// scopes for the loop's duration, which is exactly what the returned
/// context becomes via runtime::Scope).
runtime::Context loop_context(const std::optional<runtime::Context>& ctx,
                              const LoopConfig& cfg) {
  runtime::Context out = runtime::Context::effective_or_current(ctx);
#ifdef DCHAG_DEPRECATED_CONFIG
  if (cfg.kernels || cfg.comm) {
    runtime::ContextBuilder b(out);
    if (cfg.kernels) b.kernels(*cfg.kernels);
    if (cfg.comm) b.comm(*cfg.comm);
    out = b.build();
  }
#else
  (void)cfg;
#endif
  return out;
}

}  // namespace

TrainCurve train_mae(
    model::MaeModel& mae, const LoopConfig& cfg,
    const std::function<Tensor(Index)>& next_batch,
    std::optional<runtime::Context> ctx) {
  runtime::Scope scope(loop_context(ctx, cfg));
  Adam opt(mae.parameters(), cfg.adam);
  TrainCurve curve;
  curve.losses.reserve(static_cast<std::size_t>(cfg.steps));
  const Index seq = mae.config().seq_len();
  for (Index step = 0; step < cfg.steps; ++step) {
    Tensor full = next_batch(step);
    Tensor local = mae.frontend().select_input(full);
    // Mask depends only on (seed, step): identical on every rank.
    Rng mask_rng(cfg.data_seed ^
                 (0xA5A5ull + static_cast<std::uint64_t>(step)));
    Tensor mask =
        MaeModel::make_mask(full.dim(0), seq, cfg.mask_ratio, mask_rng);
    opt.zero_grad();
    auto out = mae.forward(local, full, mask);
    out.loss.backward();
    opt.step();
    curve.losses.push_back(out.loss.value().item());
    runtime::trace_here("train.mae.step_loss",
                        static_cast<double>(curve.losses.back()));
  }
  return curve;
}

TrainCurve train_forecast(
    model::ForecastModel& fm, const LoopConfig& cfg,
    const std::function<std::pair<Tensor, Tensor>(Index)>& next_pair,
    std::optional<runtime::Context> ctx) {
  runtime::Scope scope(loop_context(ctx, cfg));
  Adam opt(fm.parameters(), cfg.adam);
  TrainCurve curve;
  curve.losses.reserve(static_cast<std::size_t>(cfg.steps));
  for (Index step = 0; step < cfg.steps; ++step) {
    auto [now, future] = next_pair(step);
    Tensor local = fm.frontend().select_input(now);
    opt.zero_grad();
    auto out = fm.forward(local, future);
    out.loss.backward();
    opt.step();
    curve.losses.push_back(out.loss.value().item());
  }
  return curve;
}

std::vector<float> evaluate_forecast_rmse(
    const model::ForecastModel& fm, Index patch,
    const std::function<std::pair<Tensor, Tensor>(Index)>& next_pair,
    Index batches) {
  std::vector<double> se;
  Index count = 0;
  for (Index i = 0; i < batches; ++i) {
    auto [now, future] = next_pair(i);
    Tensor local = fm.frontend().select_input(now);
    auto out = fm.forward(local, future);
    auto rmse = model::ForecastModel::per_channel_rmse(out.pred.value(),
                                                       future, patch);
    if (se.empty()) se.resize(rmse.size(), 0.0);
    for (std::size_t c = 0; c < rmse.size(); ++c)
      se[c] += static_cast<double>(rmse[c]) * rmse[c];
    ++count;
  }
  std::vector<float> out(se.size());
  for (std::size_t c = 0; c < se.size(); ++c)
    out[c] = static_cast<float>(
        std::sqrt(se[c] / static_cast<double>(count)));
  return out;
}

}  // namespace dchag::train
