#include "tensor/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/context.hpp"
#include "tensor/kernel_config.hpp"

namespace dchag::tensor {

namespace {

/// Set while this thread runs a chunk; nested parallel_for goes inline.
thread_local bool t_in_parallel_region = false;

}  // namespace

/// One parallel_for invocation. Chunks are handed out through the `next`
/// cursor; `completed` counts finished chunks. Lifetime: the caller only
/// destroys the job after (a) every chunk completed and (b) every worker
/// that claimed an announcement has exited (`exited == active`, with
/// `active` frozen by removing unclaimed announcements under the pool
/// mutex first). Workers notify under `done_mu` so the notification
/// itself finishes before the caller can wake and free the job.
struct ParallelJob {
  Index n = 0;
  Index chunk = 0;
  Index nchunks = 0;
  const std::function<void(Index, Index)>* fn = nullptr;
  /// The submitter's effective context; workers (not the caller, who
  /// already carries it) scope into this before running chunks.
  const runtime::Context* ctx = nullptr;

  std::atomic<Index> next{0};
  std::atomic<Index> completed{0};
  std::atomic<int> active{0};  // workers that claimed an announcement
  std::atomic<int> exited{0};  // workers done touching this job
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr error;

  std::mutex done_mu;
  std::condition_variable done_cv;

  void run_chunks() {
    const bool outer = !t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const Index c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      if (!failed.load(std::memory_order_relaxed)) {
        const Index begin = c * chunk;
        const Index end = std::min(n, begin + chunk);
        try {
          (*fn)(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      completed.fetch_add(1, std::memory_order_acq_rel);
    }
    if (outer) t_in_parallel_region = false;
  }

  void worker_done() {
    std::lock_guard<std::mutex> lock(done_mu);
    exited.fetch_add(1, std::memory_order_acq_rel);
    done_cv.notify_all();  // inside the lock: see lifetime note above
  }
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ParallelJob*> jobs;  // pending fan-out announcements
  bool stop = false;

  void worker_loop() {
    for (;;) {
      ParallelJob* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !jobs.empty(); });
        if (stop && jobs.empty()) return;
        job = jobs.front();
        jobs.pop_front();
        job->active.fetch_add(1, std::memory_order_relaxed);
      }
      {
        // Chunks observe the submitting thread's effective context —
        // overrides cross the fan-out instead of stopping at the pool.
        runtime::Scope ctx_scope(*job->ctx);
        job->run_chunks();
      }
      job->worker_done();
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(std::make_unique<Impl>()) {
  DCHAG_CHECK(workers >= 0, "ThreadPool workers must be >= 0");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    // Sized from the ENVIRONMENT's thread budget (Context::from_env
    // reads DCHAG_THREADS), deliberately not from the mutable process
    // default: KernelConfig::threads on a Context is a per-parallel_for
    // lane cap and must never resize the process pool. 0 = one lane per
    // hardware thread; the caller of a parallel_for is a lane, so the
    // pool spawns lanes - 1 workers.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    int lanes = runtime::Context::from_env().kernels().threads;
    if (lanes <= 0) lanes = std::max(1, hw);
    return std::max(0, lanes - 1);
  }());
  return pool;
}

ThreadPool& active_pool() {
  ThreadPool* pool = runtime::active_pool_handle();
  return pool != nullptr ? *pool : ThreadPool::global();
}

bool ThreadPool::in_parallel_region() { return t_in_parallel_region; }

void ThreadPool::parallel_for(Index n, Index grain,
                              const std::function<void(Index, Index)>& fn,
                              int max_lanes) {
  if (n <= 0) return;
  grain = std::max<Index>(grain, 1);
  int fan = lanes();
  if (max_lanes > 0) fan = std::min(fan, max_lanes);
  const Index nchunks = std::min<Index>(fan, (n + grain - 1) / grain);
  if (nchunks <= 1 || workers() == 0 || t_in_parallel_region) {
    fn(0, n);
    return;
  }

  ParallelJob job;
  job.n = n;
  job.chunk = (n + nchunks - 1) / nchunks;
  // Recompute the chunk count from the rounded-up chunk size: with e.g.
  // n=9 over 8 lanes the naive count would leave trailing chunks whose
  // begin lies past n, handing fn an inverted range.
  job.nchunks = (n + job.chunk - 1) / job.chunk;
  job.fn = &fn;
  const runtime::Context submitter_ctx = runtime::Context::current();
  job.ctx = &submitter_ctx;

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    // One announcement per helper we could use; a worker that arrives
    // after the cursor drained exits run_chunks immediately.
    for (Index i = 1; i < nchunks; ++i) impl_->jobs.push_back(&job);
  }
  impl_->cv.notify_all();

  job.run_chunks();  // the caller is a full lane, not just a waiter

  // The caller's run_chunks only returns once the cursor is drained, so
  // every chunk is claimed; unclaimed announcements are now pure surplus.
  // Removing them under the pool mutex freezes `active`.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto& q = impl_->jobs;
    q.erase(std::remove(q.begin(), q.end(), &job), q.end());
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] {
      return job.completed.load(std::memory_order_acquire) == job.nchunks &&
             job.exited.load(std::memory_order_acquire) ==
                 job.active.load(std::memory_order_acquire);
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace dchag::tensor
