#include "hw/perf_model.hpp"

#include <algorithm>

namespace dchag::hw {

namespace {

/// Backward costs ~2x forward; checkpointed ViT blocks additionally
/// recompute their forward once during backward.
constexpr double kFwdBwd = 3.0;
constexpr double kFwdBwdCkpt = 4.0;

double seconds(double flops, double peak_tflops, double efficiency) {
  return flops / (peak_tflops * 1e12 * efficiency);
}

}  // namespace

StepEstimate estimate_step(const ModelConfig& cfg, const Workload& w,
                           const ParallelLayout& layout,
                           const DchagSpec& dchag,
                           const MachineSpec& machine) {
  cfg.validate();
  layout.validate();
  const double B = static_cast<double>(w.batch_per_gpu);
  const double S = static_cast<double>(cfg.seq_len());
  const double D = static_cast<double>(cfg.embed_dim);
  const double C = static_cast<double>(w.channels);
  const int tp = layout.tp;
  const auto& eff = machine.efficiency;
  const double peak = machine.gpu.peak_matrix_tflops;
  const CommCostModel cost(machine);
  const GroupPlacement placement =
      place_groups(layout.tp, layout.fsdp, layout.dp, machine.gpus_per_node);

  StepEstimate est;

  // ----- executed compute per GPU --------------------------------------------
  double tokenizer_exec = 0;
  double agg_scores_exec = 0;
  double agg_proj_exec = 0;
  const double head_shard =
      static_cast<double>(std::min<Index>(tp, cfg.num_heads));
  if (!dchag.enabled) {
    // Baseline TP: every rank tokenizes all channels (redundant — paper
    // Fig. 2 top); the aggregation attention shards by heads and the
    // projections by the embedding dimension.
    tokenizer_exec = FlopModel::tokenizer_flops(cfg, B, C);
    const auto agg = FlopModel::aggregation_flops(
        cfg, B, w.channels, AggLayerKind::kCrossAttention);
    agg_scores_exec = agg.scores / head_shard;
    agg_proj_exec = agg.proj / tp;
  } else {
    const Index c_local = std::max<Index>(1, w.channels / tp);
    tokenizer_exec =
        FlopModel::tokenizer_flops(cfg, B, static_cast<double>(c_local));
    const Index width = model::tree_units_to_width(
        c_local, std::min<Index>(dchag.tree_units, c_local));
    const auto tree = FlopModel::tree_flops(
        cfg, B, model::plan_tree(c_local, width), dchag.kind);
    const auto fin = FlopModel::aggregation_flops(
        cfg, B, std::max(tp, 2), AggLayerKind::kCrossAttention);
    agg_scores_exec = tree.scores + fin.scores / head_shard;
    agg_proj_exec = tree.proj + fin.proj / tp;
  }
  const double vit_exec = FlopModel::transformer_flops(cfg, B) / tp;
  const double head_exec = FlopModel::head_flops(cfg, B, C) / tp;

  const double vit_factor = w.checkpoint_vit ? kFwdBwdCkpt : kFwdBwd;
  est.compute_s = seconds(kFwdBwd * tokenizer_exec, peak, eff.tokenizer) +
                  seconds(kFwdBwd * (agg_scores_exec + agg_proj_exec), peak,
                          eff.attention) +
                  seconds(vit_factor * vit_exec, peak, eff.transformer) +
                  seconds(kFwdBwd * head_exec, peak, eff.transformer);

  // ----- communication --------------------------------------------------------
  const double act_bytes = 2.0;
  if (tp > 1) {
    // Megatron TP: 2 AllReduce per block forward + 2 backward over the
    // block activations [B, S, D].
    const double per_block = B * S * D * act_bytes;
    est.tp_comm_s = 4.0 * static_cast<double>(cfg.num_layers) *
                    cost.all_reduce_s(per_block, tp,
                                      placement.tp_ranks_per_node);
    if (dchag.enabled) {
      // One AllGather of a single channel representation per rank in the
      // forward pass; the backward needs no communication (§3.3).
      est.frontend_comm_s = cost.all_gather_s(
          B * S * static_cast<double>(tp) * D * act_bytes, tp,
          placement.tp_ranks_per_node);
    }
  }

  // FSDP: AllGather bf16 params once for forward and once for backward,
  // ReduceScatter bf16 grads. Param bytes = this TP rank's model shard.
  if (layout.fsdp > 1) {
    ParallelLayout unsharded{layout.tp, 1, 1};
    const MemoryBreakdown m = estimate_memory(cfg, w, unsharded, dchag);
    const double param_bf16_bytes =
        (m.tokenizer_state_gb + m.aggregation_state_gb +
         m.transformer_state_gb) *
        1e9 / 8.0;  // state is 16 B/param; bf16 copy is 2 B/param
    est.fsdp_comm_s =
        2.0 * cost.all_gather_s(param_bf16_bytes, layout.fsdp,
                                placement.fsdp_ranks_per_node) +
        cost.reduce_scatter_s(param_bf16_bytes, layout.fsdp,
                              placement.fsdp_ranks_per_node);
  }

  // DP: one gradient AllReduce per step over the FSDP-sharded state.
  if (layout.dp > 1) {
    ParallelLayout tp_only{layout.tp, 1, 1};
    const MemoryBreakdown m = estimate_memory(cfg, w, tp_only, dchag);
    const double grad_bytes = (m.tokenizer_state_gb +
                               m.aggregation_state_gb +
                               m.transformer_state_gb) *
                              1e9 / 8.0 / layout.fsdp;
    est.dp_comm_s = cost.all_reduce_s(grad_bytes, layout.dp,
                                      placement.dp_ranks_per_node);
  }

  est.step_s = est.compute_s + est.comm_s();

  // ----- sustained throughput --------------------------------------------------
  // FSDP and DP dimensions process distinct batches; TP shares one batch.
  // Throughput is credited in *nominal* FM FLOPs — the baseline
  // architecture's logical cost per sample, used as a common yardstick for
  // every strategy (the convention behind the paper's TFLOPs/sec plots).
  // Sustained-TFLOPs ratios between strategies therefore equal their
  // samples/sec ratios.
  const double global_batch =
      B * static_cast<double>(layout.fsdp) * static_cast<double>(layout.dp);
  const double logical_fwd = FlopModel::logical_forward_flops(
      cfg, global_batch, w.channels, DchagSpec::off(), tp);
  est.useful_tflop_per_step = kFwdBwd * logical_fwd / 1e12;
  const double total_gpus = static_cast<double>(layout.total_gpus());
  est.sustained_tflops_per_gpu =
      est.useful_tflop_per_step / est.step_s / total_gpus;
  est.sustained_tflops_per_node =
      est.sustained_tflops_per_gpu * machine.gpus_per_node;
  return est;
}

}  // namespace dchag::hw
