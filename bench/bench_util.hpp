// Shared table/report helpers for the figure-reproduction benches. Every
// bench prints (a) the regenerated rows/series of its paper figure and
// (b) a SHAPE-CHECK section asserting the figure's qualitative claims, so
// `for b in build/bench/*; do $b; done` doubles as a reproduction audit.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dchag::bench {

inline void header(const std::string& fig, const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s — %s\n", fig.c_str(), title.c_str());
  std::printf("==================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

class ShapeChecks {
 public:
  void expect(bool ok, const std::string& claim) {
    results_.emplace_back(ok, claim);
    failures_ += ok ? 0 : 1;
  }

  /// Prints the audit and returns the process exit code (0 iff all hold).
  int report() const {
    std::printf("\n--- SHAPE CHECKS (paper claims) ---\n");
    for (const auto& [ok, claim] : results_) {
      std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
    }
    std::printf("%zu/%zu claims reproduced\n", results_.size() - failures_,
                results_.size());
    return failures_ == 0 ? 0 : 1;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  std::size_t failures_ = 0;
};

}  // namespace dchag::bench
