// Shim TU: consumes the deprecated SpmdEngineConfig::fault_plan slot.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "serve/spmd_engine.hpp"

namespace dchag::serve {

SpmdEngine::SpmdEngine(int ranks, RankModelFactory factory,
                       SpmdEngineConfig cfg, const runtime::Context& ctx)
    // Capture the submitter's EFFECTIVE context: scopes active on the
    // constructing thread fold in here and reach every rank thread.
    : ranks_(ranks), ctx_(ctx.effective()) {
  DCHAG_CHECK(ranks_ >= 1, "SpmdEngine needs >= 1 rank");
  DCHAG_CHECK(factory != nullptr, "SpmdEngine needs a model factory");
#ifdef DCHAG_DEPRECATED_CONFIG
  if (cfg.fault_plan)
    ctx_ = ctx_.to_builder().fault_plan(cfg.fault_plan).build();
#else
  (void)cfg;  // empty struct once the deprecated fault slot is compiled out
#endif
  world_thread_ = std::thread([this, factory = std::move(factory)] {
    try {
      comm::World world(ranks_);
      if (ctx_.fault_plan()) world.set_fault_plan(ctx_.fault_plan());
      world.run([&](comm::Communicator& comm) {
        // Rank threads run under the engine's context: the factory's
        // front-ends inherit its kernel/comm policy unless they pin
        // their own. A typical SPMD deployment pins kBlocked on the
        // engine context so P concurrent ranks don't contend for the
        // shared ThreadPool (they ARE the parallelism).
        runtime::Scope ctx_scope(ctx_);
        // Tape-free for the lifetime of this rank thread: serving never
        // records autograd history.
        autograd::NoGradGuard no_grad;
        std::unique_ptr<model::ForecastModel> model;
        try {
          model = factory(comm);
          DCHAG_CHECK(model != nullptr, "rank model factory returned null");
          model->eval();
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++failed_ranks_;
          }
          cv_done_.notify_all();
          throw;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++ready_ranks_;
        }
        cv_done_.notify_all();
        // Construction barrier: if any rank's factory threw, the others
        // must exit too — otherwise they would wait for jobs forever and
        // World::run could never join.
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_done_.wait(lock, [&] {
            return ready_ranks_ + failed_ranks_ >= ranks_;
          });
          if (failed_ranks_ > 0) return;
        }

        std::uint64_t seen = 0;
        for (;;) {
          Job job;
          {
            std::unique_lock<std::mutex> lock(mu_);
            cv_job_.wait(lock, [&] { return stop_ || job_seq_ > seen; });
            if (stop_) return;
            seen = job_seq_;
            job = job_;
          }
          // A throwing forward must not kill the world: capture the error
          // and keep serving. Model validation runs on identical inputs on
          // every rank before any collective, so failures are uniform and
          // all ranks reach the barrier with the same (error) outcome.
          autograd::Variable pred;
          std::exception_ptr err;
          try {
            pred = job.channels->empty()
                       ? model->predict(
                             model->frontend().select_input(*job.images),
                             job.lead_time)
                       : model->predict_subset(*job.images, *job.channels,
                                               job.lead_time);
          } catch (...) {
            err = std::current_exception();
          }
          // All ranks hold the replicated outcome; sync before rank 0
          // publishes so no rank still reads the job slot afterwards.
          comm.barrier();
          if (comm.rank() == 0) {
            {
              std::lock_guard<std::mutex> lock(mu_);
              job_error_ = err;
              if (!err) result_ = pred.value();
              done_seq_ = seen;
            }
            cv_done_.notify_all();
          }
        }
      });
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        failure_ = std::current_exception();
        stop_ = true;
        ready_ranks_ = ranks_;  // unblock the constructor's wait
      }
      cv_done_.notify_all();
      cv_job_.notify_all();
    }
  });

  std::unique_lock<std::mutex> lock(mu_);
  // Either every rank reports ready, or the world thread dies (its catch
  // block sets failure_ and forces ready_ranks_ up to unblock us).
  cv_done_.wait(lock, [&] { return ready_ranks_ >= ranks_; });
  if (failure_) {
    lock.unlock();
    stop_and_join();
    std::rethrow_exception(failure_);
  }
}

SpmdEngine::~SpmdEngine() { stop_and_join(); }

void SpmdEngine::stop_and_join() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  if (world_thread_.joinable()) world_thread_.join();
}

Tensor SpmdEngine::run(const Tensor& images,
                       const std::vector<Index>& channels, float lead_time) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (failure_) std::rethrow_exception(failure_);
  DCHAG_CHECK(!stop_, "run() on a stopped SpmdEngine");
  job_ = Job{&images, &channels, lead_time};
  const std::uint64_t seq = ++job_seq_;
  cv_job_.notify_all();
  cv_done_.wait(lock, [&] { return done_seq_ >= seq || failure_ != nullptr; });
  if (failure_) std::rethrow_exception(failure_);
  if (job_error_) std::rethrow_exception(job_error_);  // world still serves
  return result_;
}

InferenceFn SpmdEngine::inference_fn() {
  return [this](const Tensor& images, const std::vector<Index>& channels,
                float lead_time) { return run(images, channels, lead_time); };
}

}  // namespace dchag::serve
