// Structural fault events (rank death, link partition): the FaultyWorld
// surfaces them as typed RankFailure — with a seed + event-index repro
// payload — instead of a hang, and survivors can regroup and keep
// serving collectives through split_survivors().
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "comm/fault.hpp"

namespace dchag::comm {
namespace {

// Issues collectives until the schedule's event fires; returns how many
// completed before the failure.
int drive_until_failure(Communicator& comm, int max_ops = 64) {
  std::vector<float> v{1.0f};
  for (int i = 0; i < max_ops; ++i) {
    try {
      comm.all_reduce(v);
    } catch (const RankFailure&) {
      return i;
    }
  }
  ADD_FAILURE() << "no RankFailure after " << max_ops << " ops on rank "
                << comm.rank();
  return max_ops;
}

TEST(RankFailure, DeathSurfacesTypedFailureWithSeedAndSchedule) {
  FaultSpec s;
  s.seed = 77;
  RankDeathEvent death;
  death.rank = 2;
  death.at_op = 2;
  s.deaths.push_back(death);
  FaultyWorld world(4, s);
  std::atomic<int> typed{0};
  world.run([&](Communicator& comm) {
    std::vector<float> v{1.0f};
    bool failed = false;
    for (int i = 0; i < 64 && !failed; ++i) {
      try {
        comm.all_reduce(v);
      } catch (const RankFailure& rf) {
        failed = true;
        ++typed;
        // The typed payload and the message both carry the repro: seed,
        // event index, and the full one-line schedule.
        EXPECT_EQ(rf.failed_ranks(), std::vector<int>{2});
        EXPECT_EQ(rf.seed(), 77u);
        EXPECT_EQ(rf.event_index(), 0);
        const std::string what = rf.what();
        EXPECT_NE(what.find("seed=77"), std::string::npos) << what;
        EXPECT_NE(what.find("event=0"), std::string::npos) << what;
        EXPECT_NE(what.find("death[rank 2"), std::string::npos) << what;
      }
    }
    ASSERT_TRUE(failed) << "rank " << comm.rank() << " never saw the death";
    if (comm.world_rank() == 2) return;  // the casualty exits cleanly
    // Survivors regroup (no barriers involved: works on the poisoned
    // handle) and collectives flow again.
    const std::vector<int> alive = comm.alive_world_ranks();
    ASSERT_EQ(alive, (std::vector<int>{0, 1, 3}));
    Communicator sub = comm.split_survivors(alive, "degraded");
    EXPECT_EQ(sub.world_rank(), comm.world_rank());
    std::vector<float> x{static_cast<float>(comm.world_rank())};
    sub.all_reduce(x);
    EXPECT_EQ(x[0], 4.0f);  // 0 + 1 + 3
  });
  // Every rank — casualty included — saw the typed failure, not a hang.
  EXPECT_EQ(typed.load(), 4);
}

TEST(RankFailure, PartitionKillsTheMinoritySide) {
  FaultSpec s;
  s.seed = 5;
  PartitionEvent part;
  part.at_op = 1;
  part.duration_ops = 3;
  part.island = {3};
  s.partitions.push_back(part);
  FaultyWorld world(4, s);
  world.run([&](Communicator& comm) {
    std::vector<float> v{1.0f};
    bool failed = false;
    for (int i = 0; i < 64 && !failed; ++i) {
      try {
        comm.all_reduce(v);
      } catch (const RankFailure& rf) {
        failed = true;
        EXPECT_EQ(rf.failed_ranks(), std::vector<int>{3});
        EXPECT_NE(std::string(rf.what()).find("partition["),
                  std::string::npos);
      }
    }
    ASSERT_TRUE(failed);
    if (comm.world_rank() == 3) return;
    Communicator sub =
        comm.split_survivors(comm.alive_world_ranks(), "degraded");
    sub.barrier();  // the survivor group is live
  });
}

TEST(RankFailure, RespawnedRankRejoinsWithoutRefiringItsDeath) {
  FaultSpec s;
  s.seed = 9;
  RankDeathEvent death;
  death.rank = 1;
  death.at_op = 1;
  s.deaths.push_back(death);
  FaultyWorld world(4, s);
  std::thread respawned;
  float respawned_sum = 0.0f;
  world.run([&](Communicator& comm) {
    drive_until_failure(comm);
    if (comm.world_rank() == 1) return;  // the casualty
    const std::vector<int> full{0, 1, 2, 3};
    if (comm.world_rank() == 0) {
      // The surviving leader mints the respawned rank's full-width
      // handle; already-fired events must not poison it.
      Communicator minted = comm.split_survivors_for(1, full, "healed");
      respawned = std::thread([&respawned_sum, h = std::move(minted)]() mutable {
        std::vector<float> x{10.0f};
        h.all_reduce(x);
        respawned_sum = x[0];
      });
    }
    Communicator healed = comm.split_survivors(full, "healed");
    std::vector<float> x{static_cast<float>(comm.world_rank())};
    healed.all_reduce(x);
    EXPECT_EQ(x[0], 15.0f);  // 0 + 10 + 2 + 3
  });
  respawned.join();
  EXPECT_EQ(respawned_sum, 15.0f);
}

TEST(RankFailure, DescribeIsAOneLineReproOfTheSchedule) {
  FaultSpec s;
  s.seed = 404;
  s.max_edge_delay_us = 120;
  RankDeathEvent death;
  death.rank = 1;
  death.at_op = 5;
  s.deaths.push_back(death);
  PartitionEvent part;
  part.at_op = 3;
  part.duration_ops = 4;
  part.island = {0, 1};
  s.partitions.push_back(part);
  const auto plan = make_fault_plan(s, 4);
  const std::string d = plan->describe();
  EXPECT_NE(d.find("seed=404"), std::string::npos) << d;
  EXPECT_NE(d.find("size=4"), std::string::npos) << d;
  EXPECT_NE(d.find("death[rank 1 @op 5]"), std::string::npos) << d;
  EXPECT_NE(d.find("@op 3+4"), std::string::npos) << d;
  EXPECT_EQ(d.find('\n'), std::string::npos) << d;
}

}  // namespace
}  // namespace dchag::comm
