#include "parallel/collective_ops.hpp"

#include <gtest/gtest.h>

namespace dchag::parallel {
namespace {

namespace ops = tensor::ops;
using comm::World;
using tensor::Shape;
using tensor::Tensor;

TEST(ReduceFromParallel, ForwardSumsBackwardIdentity) {
  World world(4);
  world.run([](Communicator& comm) {
    Variable x = Variable::param(
        Tensor(Shape{3}, static_cast<float>(comm.rank() + 1)));
    Variable y = reduce_from_parallel(x, comm);
    for (float v : y.value().span()) ASSERT_EQ(v, 10.0f);  // 1+2+3+4
    autograd::sum_all(y).backward();
    for (float g : x.grad().span()) ASSERT_EQ(g, 1.0f);  // identity bwd
  });
}

TEST(CopyToParallel, ForwardIdentityBackwardSums) {
  World world(4);
  world.run([](Communicator& comm) {
    Variable x = Variable::param(Tensor(Shape{2}, 1.0f));
    Variable y = copy_to_parallel(x, comm);
    ASSERT_EQ(y.value().at({0}), 1.0f);
    // Scale per rank so backward contributions differ.
    Variable z = autograd::scale(y, static_cast<float>(comm.rank() + 1));
    autograd::sum_all(z).backward();
    for (float g : x.grad().span()) ASSERT_EQ(g, 10.0f);  // sum of scales
  });
}

TEST(AllGatherCat, ForwardConcatenatesInRankOrder) {
  World world(3);
  world.run([](Communicator& comm) {
    Tensor t(Shape{2, 1, 2}, static_cast<float>(comm.rank()));
    Variable x = Variable::input(t);
    Variable g = all_gather_cat(x, comm, 1, GatherBackward::kLocalSlice);
    ASSERT_EQ(g.shape(), (Shape{2, 3, 2}));
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(g.value().at({0, r, 0}), static_cast<float>(r));
      ASSERT_EQ(g.value().at({1, r, 1}), static_cast<float>(r));
    }
  });
}

TEST(AllGatherCat, LocalSliceBackwardNeedsNoCommunication) {
  // Replicated downstream: gradient slices locally, and the backward pass
  // must issue ZERO collective calls (the D-CHAG §3.3 property).
  World world(4);
  world.run([](Communicator& comm) {
    Variable x = Variable::param(
        Tensor(Shape{1, 2}, static_cast<float>(comm.rank() + 1)));
    Variable g = all_gather_cat(x, comm, 0, GatherBackward::kLocalSlice);
    // Replicated downstream computation: square and sum.
    Variable loss = autograd::sum_all(autograd::mul(g, g));
    const auto calls_before = comm.stats().total_calls();
    loss.backward();
    ASSERT_EQ(comm.stats().total_calls(), calls_before)
        << "backward issued communication";
    // d/dx of sum(g^2) at my slice = 2 * x.
    for (float gr : x.grad().span())
      ASSERT_EQ(gr, 2.0f * static_cast<float>(comm.rank() + 1));
  });
}

TEST(AllGatherCat, ReduceScatterBackwardSumsRankContributions) {
  // Rank-dependent downstream: each rank scales the gathered tensor by
  // (rank+1). True grad of x = sum_r (r+1) * slice_r-indicator = x gets
  // sum over ranks of each rank's gradient at my slice.
  World world(2);
  world.run([](Communicator& comm) {
    Variable x = Variable::param(Tensor(Shape{1, 2}, 1.0f));
    Variable g = all_gather_cat(x, comm, 0, GatherBackward::kReduceScatter);
    Variable z = autograd::scale(g, static_cast<float>(comm.rank() + 1));
    autograd::sum_all(z).backward();
    // Rank 0 contributes 1, rank 1 contributes 2 at every slice -> 3.
    for (float gr : x.grad().span()) ASSERT_EQ(gr, 3.0f);
  });
}

TEST(SyncParameters, BroadcastsFromRoot) {
  World world(3);
  world.run([](Communicator& comm) {
    Variable p = Variable::param(
        Tensor(Shape{4}, static_cast<float>(comm.rank())));
    std::vector<Variable> params{p};
    sync_parameters(params, comm, /*root=*/1);
    for (float v : p.value().span()) ASSERT_EQ(v, 1.0f);
    ASSERT_TRUE(is_replicated(p.value(), comm));
  });
}

TEST(IsReplicated, DetectsDivergence) {
  World world(2);
  world.run([](Communicator& comm) {
    Tensor same(Shape{3}, 5.0f);
    ASSERT_TRUE(is_replicated(same, comm));
    Tensor diff(Shape{3}, static_cast<float>(comm.rank()));
    ASSERT_FALSE(is_replicated(diff, comm));
  });
}

TEST(AllGatherCat, SingleRankIsIdentityPlus) {
  World world(1);
  world.run([](Communicator& comm) {
    Variable x = Variable::param(Tensor(Shape{2, 2}, 3.0f));
    Variable g = all_gather_cat(x, comm, 0, GatherBackward::kLocalSlice);
    ASSERT_EQ(g.shape(), (Shape{2, 2}));
    autograd::sum_all(g).backward();
    for (float gr : x.grad().span()) ASSERT_EQ(gr, 1.0f);
  });
}

}  // namespace
}  // namespace dchag::parallel
