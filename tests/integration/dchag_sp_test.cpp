// D-CHAG composed with SEQUENCE parallelism (paper §3.5: "Sequence
// Parallelism (SP) could operate on the same model segments — just before
// the self-attention layers ... enabling tokenization and hierarchical
// aggregation to be distributed along the axis in which the data are
// fused"). The same group distributes channels in the front-end and the
// sequence in the encoder.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "model/vit.hpp"
#include "parallel/sequence_parallel.hpp"
#include "train/optim.hpp"

namespace dchag {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(DchagWithSp, CombinedForwardMatchesSingleDevice) {
  ModelConfig cfg = ModelConfig::tiny();  // S = 16, divisible by P
  const Index C = 8;
  Tensor img = Rng(21).normal_tensor(Shape{2, C, 16, 16});

  // Single-device reference: 1-rank D-CHAG world + serial encoder.
  Tensor expected;
  {
    comm::World solo(1);
    solo.run([&](comm::Communicator& comm) {
      Rng master(3141);
      core::DchagFrontEnd fe(cfg, C, comm, {1, AggLayerKind::kLinear},
                             master);
      Rng enc_rng(2020);
      model::ViTEncoder enc(cfg, enc_rng);
      expected = enc.forward(fe.forward(img)).value();
    });
  }

  // Note: a 1-rank D-CHAG differs architecturally from a P-rank one (one
  // tree over all channels vs P trees + final), so compare SP composition
  // against the SAME P-rank D-CHAG with a serial encoder instead.
  Tensor dchag_serial;
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    Rng master(3141);
    core::DchagFrontEnd fe(cfg, C, comm, {1, AggLayerKind::kLinear}, master);
    Rng enc_rng(2020);
    model::ViTEncoder serial_enc(cfg, enc_rng);
    parallel::SequenceParallelViTEncoder sp_enc(cfg, comm, enc_rng);

    Variable agg = fe.forward(fe.slice_local_channels(img));  // replicated
    Tensor serial_out = serial_enc.forward(agg).value();

    Variable shard = parallel::scatter_sequence(agg, comm);
    Variable sp_local = sp_enc.forward(shard);
    Variable sp_full = parallel::gather_sequence(sp_local, comm);

    ASSERT_LT(ops::max_abs_diff(sp_full.value(), serial_out), 5e-4f)
        << "rank " << comm.rank();
    if (comm.rank() == 0) dchag_serial = serial_out;
  });
  (void)expected;  // architectural difference documented above
}

TEST(DchagWithSp, TrainsEndToEndWithGradSync) {
  ModelConfig cfg = ModelConfig::tiny();
  const Index C = 8;
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng master(3141);
    core::DchagFrontEnd fe(cfg, C, comm, {1, AggLayerKind::kLinear}, master);
    Rng enc_rng(2020);
    parallel::SequenceParallelViTEncoder enc(cfg, comm, enc_rng);
    autograd::Linear head(cfg.embed_dim, 2, enc_rng, "head");

    std::vector<Variable> all = fe.parameters();
    for (const auto& p : enc.parameters()) all.push_back(p);
    for (const auto& p : head.parameters()) all.push_back(p);
    train::Adam opt(all, {.lr = 3e-3f});

    Rng data_rng(808);
    Tensor img = data_rng.normal_tensor(Shape{2, C, 16, 16});
    Tensor target = data_rng.normal_tensor(Shape{2, cfg.seq_len(), 2});
    float first = 0;
    float last = 0;
    for (int step = 0; step < 10; ++step) {
      opt.zero_grad();
      Variable agg = fe.forward(fe.slice_local_channels(img));
      Variable shard = parallel::scatter_sequence(agg, comm);
      Variable out =
          parallel::gather_sequence(head.forward(enc.forward(shard)), comm);
      Variable loss = autograd::mse_loss(out, target);
      loss.backward();
      // Under SP every parameter saw only its sequence shard's gradient
      // contribution: sum across the group (including the D-CHAG
      // front-end's replicated final layer and the head).
      for (Variable& p : all) {
        if (!p.has_grad()) continue;
        Tensor g = p.node()->grad;
        comm.all_reduce(g.span(), comm::ReduceOp::kSum);
      }
      opt.step();
      if (step == 0) first = loss.value().item();
      last = loss.value().item();
      Tensor l = loss.value().clone();
      ASSERT_TRUE(parallel::is_replicated(l, comm, 1e-5f)) << "step " << step;
    }
    ASSERT_LT(last, first);
  });
}

TEST(DchagWithSp, FrontendChannelGatherStillSingleCollective) {
  // Composing with SP adds the encoder's kv gathers, but the D-CHAG
  // channel path itself still costs exactly one AllGather per forward.
  ModelConfig cfg = ModelConfig::tiny();
  const Index C = 8;
  Tensor img = Rng(22).normal_tensor(Shape{1, C, 16, 16});
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng master(3141);
    core::DchagFrontEnd fe(cfg, C, comm, {1, AggLayerKind::kLinear}, master);
    comm.reset_stats();
    (void)fe.forward(fe.slice_local_channels(img));
    ASSERT_EQ(comm.stats().calls_of(comm::CollectiveKind::kAllGather), 1u);
  });
}

}  // namespace
}  // namespace dchag
