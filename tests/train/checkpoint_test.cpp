#include "train/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "model/foundation.hpp"

namespace dchag::train {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, RoundTripPreservesValues) {
  Rng rng(1);
  autograd::Linear lin(4, 3, rng, "lin");
  const std::string path = tmp_path("ckpt_roundtrip.bin");
  auto params = lin.parameters();
  save_parameters(path, params);

  Rng rng2(2);  // different init
  autograd::Linear lin2(4, 3, rng2, "lin");
  auto params2 = lin2.parameters();
  EXPECT_GT(ops::max_abs_diff(params[0].value(), params2[0].value()), 1e-4f);
  load_parameters(path, params2);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(ops::max_abs_diff(params[i].value(), params2[i].value()),
              1e-9f);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FullModelRoundTrip) {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  Rng rng(3);
  auto fe = model::make_baseline_frontend(cfg, 3, rng);
  model::MaeModel mae(cfg, std::move(fe), 3, rng);
  const std::string path = tmp_path("ckpt_mae.bin");
  auto params = mae.parameters();
  save_parameters(path, params);

  Rng rng2(4);
  auto fe2 = model::make_baseline_frontend(cfg, 3, rng2);
  model::MaeModel mae2(cfg, std::move(fe2), 3, rng2);
  auto params2 = mae2.parameters();
  load_parameters(path, params2);

  // Restored model computes identical outputs.
  Tensor img = Rng(5).normal_tensor(Shape{1, 3, 16, 16});
  Rng mask_rng(6);
  Tensor mask = model::MaeModel::make_mask(1, cfg.seq_len(), 0.5f, mask_rng);
  const float a = mae.forward(img, img, mask).loss.value().item();
  const float b = mae2.forward(img, img, mask).loss.value().item();
  EXPECT_FLOAT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(Checkpoint, ListEntries) {
  Rng rng(7);
  autograd::Linear lin(2, 5, rng, "layer");
  const std::string path = tmp_path("ckpt_list.bin");
  auto params = lin.parameters();
  save_parameters(path, params);
  auto entries = list_checkpoint(path);
  ASSERT_EQ(entries.size(), 2u);
  bool found_weight = false;
  for (const auto& e : entries) {
    if (e.name == "layer.weight") {
      found_weight = true;
      EXPECT_EQ(e.shape, (Shape{2, 5}));
    }
  }
  EXPECT_TRUE(found_weight);
  std::remove(path.c_str());
}

TEST(Checkpoint, SubmoduleLoadFromFullCheckpoint) {
  // Extra entries in the file are fine — load just the encoder from a
  // full-model checkpoint.
  model::ModelConfig cfg = model::ModelConfig::tiny();
  Rng rng(8);
  model::ViTEncoder enc(cfg, rng);
  autograd::Linear head(cfg.embed_dim, 4, rng, "head");
  std::vector<Variable> all = enc.parameters();
  for (const auto& p : head.parameters()) all.push_back(p);
  const std::string path = tmp_path("ckpt_full.bin");
  save_parameters(path, all);

  Rng rng2(9);
  model::ViTEncoder enc2(cfg, rng2);
  auto enc_params = enc2.parameters();
  load_parameters(path, enc_params);
  EXPECT_LT(ops::max_abs_diff(enc_params[0].value(),
                              enc.parameters()[0].value()),
            1e-9f);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingParameterThrows) {
  Rng rng(10);
  autograd::Linear lin(2, 2, rng, "a");
  const std::string path = tmp_path("ckpt_missing.bin");
  auto params = lin.parameters();
  save_parameters(path, params);

  autograd::Linear other(2, 2, rng, "b");
  auto other_params = other.parameters();
  EXPECT_THROW(load_parameters(path, other_params), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ShapeMismatchThrows) {
  Rng rng(11);
  autograd::Linear lin(2, 2, rng, "l");
  const std::string path = tmp_path("ckpt_shape.bin");
  auto params = lin.parameters();
  save_parameters(path, params);

  autograd::Linear bigger(2, 4, rng, "l");
  auto big_params = bigger.parameters();
  EXPECT_THROW(load_parameters(path, big_params), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = tmp_path("ckpt_garbage.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a checkpoint at all";
  }
  EXPECT_THROW(list_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, UnnamedParameterRejected) {
  Variable anon = Variable::param(Tensor(Shape{2}, 1.0f));  // no name
  std::vector<Variable> params{anon};
  EXPECT_THROW(save_parameters(tmp_path("ckpt_anon.bin"), params), Error);
}

}  // namespace
}  // namespace dchag::train
