// Parameter checkpointing: save/load named parameters to a simple binary
// format. Under D-CHAG, each rank saves its own shard file (rank-local
// tokenizer and tree weights differ per rank); replicated modules can be
// saved once from rank 0.
//
// Format: "DCHK" magic, u64 version, u64 param count, then per parameter:
// u64 name length, name bytes, u64 rank, u64 dims..., float32 data.
#pragma once

#include <string>

#include "tensor/module.hpp"

namespace dchag::train {

void save_parameters(const std::string& path,
                     std::span<const autograd::Variable> params);

/// Loads by (name, shape) match; every parameter in `params` must be
/// present in the file with its exact shape. Extra file entries are
/// ignored (enables loading submodules from full-model checkpoints).
void load_parameters(const std::string& path,
                     std::span<autograd::Variable> params);

/// Saves every parameter of `m` (depth-first registration order).
void save_module(const std::string& path, const autograd::Module& m);

/// Serve-side cold start: loads a checkpoint into a freshly constructed
/// model. The module is const because loading mutates parameter *values*
/// (shared autograd nodes), not the module structure. Round-trips with
/// save_module: save(m); load into a same-architecture m2; outputs match
/// bit-for-bit.
void load_module(const std::string& path, const autograd::Module& m);

/// Names + shapes stored in a checkpoint, for inspection/tests.
struct CheckpointEntry {
  std::string name;
  tensor::Shape shape;
};
[[nodiscard]] std::vector<CheckpointEntry> list_checkpoint(
    const std::string& path);

}  // namespace dchag::train
