// Full D-CHAG + TP integration (paper §3.3 last paragraph: "D-CHAG is
// fully integrated with TP ... we can distribute the embedding space
// similarly to how we distribute it in the downstream transformer block
// modules"). The SAME communicator carries the D-CHAG front-end and a
// Megatron-style TP ViT encoder; the combined model must equal the
// single-device model and keep the front-end's backward communication-free.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "model/vit.hpp"
#include "parallel/tp_layers.hpp"
#include "train/optim.hpp"

namespace dchag {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Reference: single-device D-CHAG-equivalent front-end + serial encoder.
Tensor reference_forward(const ModelConfig& cfg, Index channels, int P,
                         const Tensor& img, Tensor* input_grad) {
  // Reuse DchagFrontEnd on a single-rank world with P "virtual groups":
  // easier and exact — build the P-group math explicitly.
  Rng master(2718);
  Rng tok_rng = master.fork(0xD0C);
  model::PatchTokenizer tokenizer(cfg, channels, tok_rng);
  std::vector<std::unique_ptr<model::AggregationTree>> trees;
  const Index c_local = channels / P;
  for (int r = 0; r < P; ++r) {
    Rng tree_rng = master.fork(0x73EE);
    trees.push_back(model::AggregationTree::with_units(
        cfg, AggLayerKind::kLinear, c_local, 1, tree_rng, "dchag.tree"));
  }
  Rng final_rng = master.fork(0xF17A);
  model::CrossAttentionAggregator final_agg(cfg.embed_dim, cfg.num_heads, P,
                                            cfg.query_mode, final_rng,
                                            "dchag.final");
  Rng enc_rng(1618);
  model::ViTEncoder encoder(cfg, enc_rng);

  const Index B = img.dim(0);
  const Index S = cfg.seq_len();
  const Index D = cfg.embed_dim;
  Variable tokens = tokenizer.forward(img);
  Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});
  std::vector<Variable> parts;
  for (int r = 0; r < P; ++r) {
    Variable group = autograd::slice(bscd, 2, r * c_local, c_local);
    parts.push_back(autograd::reshape(
        trees[static_cast<std::size_t>(r)]->forward(group),
        Shape{B, S, 1, D}));
  }
  Variable agg = final_agg.forward(autograd::concat(parts, 2));
  Variable out = encoder.forward(agg);
  if (input_grad) {
    autograd::mean_all(autograd::mul(out, out)).backward();
    for (const Variable& p : tokenizer.parameters()) {
      if (p.name() == "tokenizer.embed0.weight") {
        *input_grad = p.grad().clone();
      }
    }
  }
  return out.value();
}

TEST(DchagWithTp, CombinedForwardMatchesSingleDevice) {
  ModelConfig cfg = ModelConfig::tiny();  // 4 heads: supports tp in {1,2,4}
  const Index C = 8;
  Tensor img = Rng(13).normal_tensor(Shape{2, C, 16, 16});
  Tensor ref_grad;
  const Tensor expected = reference_forward(cfg, C, 2, img, &ref_grad);

  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng master(2718);
    core::DchagFrontEnd frontend(cfg, C, comm, {1, AggLayerKind::kLinear},
                                 master);
    Rng enc_rng(1618);
    parallel::ParallelViTEncoder encoder(cfg, comm, enc_rng);

    Variable agg = frontend.forward(frontend.slice_local_channels(img));
    Variable out = encoder.forward(agg);
    ASSERT_LT(ops::max_abs_diff(out.value(), expected), 5e-4f)
        << "rank " << comm.rank();
  });
}

TEST(DchagWithTp, FrontendGradsMatchSingleDeviceUnderTpEncoder) {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.num_layers = 1;
  const Index C = 8;
  Tensor img = Rng(14).normal_tensor(Shape{1, C, 16, 16});
  Tensor ref_grad;
  (void)reference_forward(cfg, C, 2, img, &ref_grad);

  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng master(2718);
    core::DchagFrontEnd frontend(cfg, C, comm, {1, AggLayerKind::kLinear},
                                 master);
    Rng enc_rng(1618);
    parallel::ParallelViTEncoder encoder(cfg, comm, enc_rng);
    Variable out =
        encoder.forward(frontend.forward(frontend.slice_local_channels(img)));
    autograd::mean_all(autograd::mul(out, out)).backward();

    // This rank's first tokenizer parameter corresponds to global channel
    // rank*C/P; compare against the reference tokenizer's same channel.
    // (Channel 0 of rank 0 == reference channel 0.)
    if (comm.rank() == 0) {
      const auto params = frontend.parameters();
      for (const Variable& p : params) {
        if (p.name() == "tokenizer.embed0.weight") {
          ASSERT_TRUE(p.has_grad());
          ASSERT_LT(ops::max_abs_diff(p.grad(), ref_grad), 5e-4f);
        }
      }
    }
  });
}

TEST(DchagWithTp, FrontendBackwardStillCommunicationFree) {
  // Under a TP encoder, gradient collectives belong to the ENCODER's
  // f/g ops; the front-end itself still adds none beyond its forward
  // AllGather. We count AllGather calls before/after backward.
  ModelConfig cfg = ModelConfig::tiny();
  const Index C = 8;
  Tensor img = Rng(15).normal_tensor(Shape{1, C, 16, 16});
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    Rng master(2718);
    core::DchagFrontEnd frontend(cfg, C, comm, {1, AggLayerKind::kLinear},
                                 master);
    Rng enc_rng(1618);
    parallel::ParallelViTEncoder encoder(cfg, comm, enc_rng);
    Variable out =
        encoder.forward(frontend.forward(frontend.slice_local_channels(img)));
    const auto gathers_fwd =
        comm.stats().calls_of(comm::CollectiveKind::kAllGather);
    autograd::mean_all(autograd::mul(out, out)).backward();
    // Backward triggers AllReduce (encoder g-ops) but no new AllGather —
    // D-CHAG's channel gather has no backward collective.
    ASSERT_EQ(comm.stats().calls_of(comm::CollectiveKind::kAllGather),
              gathers_fwd);
    ASSERT_GT(comm.stats().calls_of(comm::CollectiveKind::kAllReduce), 0u);
  });
}

TEST(DchagWithTp, TrainsEndToEnd) {
  // A few optimisation steps on the combined stack: loss must decrease
  // and stay replicated.
  ModelConfig cfg = ModelConfig::tiny();
  const Index C = 8;
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng master(2718);
    core::DchagFrontEnd frontend(cfg, C, comm, {1, AggLayerKind::kLinear},
                                 master);
    Rng enc_rng(1618);
    parallel::ParallelViTEncoder encoder(cfg, comm, enc_rng);
    autograd::Linear head(cfg.embed_dim, 4, enc_rng, "head");

    std::vector<Variable> params = frontend.parameters();
    for (const Variable& p : encoder.parameters()) params.push_back(p);
    for (const Variable& p : head.parameters()) params.push_back(p);
    train::Adam opt(params, {.lr = 3e-3f});

    Rng data_rng(500);
    Tensor img = data_rng.normal_tensor(Shape{2, C, 16, 16});
    Tensor target = data_rng.normal_tensor(Shape{2, cfg.seq_len(), 4});
    float first = 0;
    float last = 0;
    for (int step = 0; step < 10; ++step) {
      opt.zero_grad();
      Variable out = head.forward(encoder.forward(
          frontend.forward(frontend.slice_local_channels(img))));
      Variable loss = autograd::mse_loss(out, target);
      loss.backward();
      opt.step();
      if (step == 0) first = loss.value().item();
      last = loss.value().item();
      // Loss must be identical across ranks at every step.
      Tensor l = loss.value().clone();
      ASSERT_TRUE(parallel::is_replicated(l, comm, 1e-5f)) << "step " << step;
    }
    ASSERT_LT(last, first);
  });
}

}  // namespace
}  // namespace dchag
