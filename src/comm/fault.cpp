#include "comm/fault.hpp"

#include <algorithm>
#include <sstream>

namespace dchag::comm {

namespace {

/// splitmix64: the standard cheap stateless mixer; good enough to make
/// every (rank, kind, seq) draw look independent.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) {
  return mix(mix(mix(seed ^ mix(a)) ^ mix(b)) ^ mix(c));
}

/// Uniform integer in [lo, hi] from a hash value.
std::uint32_t uniform_u32(std::uint64_t h, std::uint32_t lo,
                          std::uint32_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::uint32_t>(h % (hi - lo + 1ULL));
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void append_ranks(std::ostringstream& os, const std::vector<int>& ranks) {
  os << '{';
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) os << ',';
    os << ranks[i];
  }
  os << '}';
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec, int size)
    : spec_(std::move(spec)), size_(size) {
  DCHAG_CHECK(size_ > 0, "FaultPlan size must be positive");
  DCHAG_CHECK(spec_.min_edge_delay_us <= spec_.max_edge_delay_us,
              "FaultSpec min_edge_delay_us " << spec_.min_edge_delay_us
                                             << " > max "
                                             << spec_.max_edge_delay_us);
  DCHAG_CHECK(spec_.drop_prob >= 0.0 && spec_.drop_prob <= 1.0,
              "FaultSpec drop_prob " << spec_.drop_prob);
  DCHAG_CHECK(spec_.max_retries >= 0, "FaultSpec max_retries");
  for (const RankDeathEvent& d : spec_.deaths) {
    DCHAG_CHECK(d.rank >= 0 && d.rank < size_,
                "RankDeathEvent rank " << d.rank << " outside world of "
                                       << size_);
  }
  for (PartitionEvent& p : spec_.partitions) {
    DCHAG_CHECK(p.duration_ops > 0, "PartitionEvent duration_ops must be > 0");
    std::sort(p.island.begin(), p.island.end());
    p.island.erase(std::unique(p.island.begin(), p.island.end()),
                   p.island.end());
    DCHAG_CHECK(!p.island.empty() &&
                    p.island.size() < static_cast<std::size_t>(size_),
                "PartitionEvent island must be a non-empty proper subset of "
                    << size_ << " ranks");
    for (int r : p.island)
      DCHAG_CHECK(r >= 0 && r < size_,
                  "PartitionEvent rank " << r << " outside world of " << size_);
  }
  const auto n = static_cast<std::size_t>(size_);
  edge_delay_us_.assign(n * n, 0);
  for (int s = 0; s < size_; ++s) {
    for (int d = 0; d < size_; ++d) {
      if (s == d) continue;
      const std::uint64_t h =
          hash3(spec_.seed, 0xEDBE, static_cast<std::uint64_t>(s),
                static_cast<std::uint64_t>(d));
      edge_delay_us_[static_cast<std::size_t>(s) * n +
                     static_cast<std::size_t>(d)] =
          uniform_u32(h, spec_.min_edge_delay_us, spec_.max_edge_delay_us);
    }
  }
  ingress_us_.assign(n, 0);
  for (int d = 0; d < size_; ++d) {
    std::uint32_t worst = 0;
    for (int s = 0; s < size_; ++s)
      worst = std::max(worst, edge_delay_us(s, d));
    if (static_cast<std::size_t>(d) < spec_.per_rank_delay_us.size())
      worst += spec_.per_rank_delay_us[static_cast<std::size_t>(d)];
    ingress_us_[static_cast<std::size_t>(d)] = worst;
  }
}

std::uint32_t FaultPlan::edge_delay_us(int src, int dst) const {
  return edge_delay_us_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(size_) +
                        static_cast<std::size_t>(dst)];
}

int FaultPlan::death_event(int world_rank, std::uint64_t seq) const {
  for (std::size_t i = 0; i < spec_.deaths.size(); ++i) {
    const RankDeathEvent& d = spec_.deaths[i];
    if (d.rank == world_rank && seq >= d.at_op) return static_cast<int>(i);
  }
  return -1;
}

int FaultPlan::partition_event(std::span<const int> world_ranks,
                               std::uint64_t seq,
                               std::vector<int>* dead) const {
  for (std::size_t j = 0; j < spec_.partitions.size(); ++j) {
    const PartitionEvent& p = spec_.partitions[j];
    if (seq < p.at_op || seq >= p.at_op + p.duration_ops) continue;
    bool in_island = false, outside = false;
    for (int r : world_ranks) {
      if (std::binary_search(p.island.begin(), p.island.end(), r))
        in_island = true;
      else
        outside = true;
    }
    if (!in_island || !outside) continue;  // group lives on one side only
    // The minority side loses; on a tie, the side without world rank 0.
    std::vector<int> complement;
    complement.reserve(static_cast<std::size_t>(size_) - p.island.size());
    for (int r = 0; r < size_; ++r) {
      if (!std::binary_search(p.island.begin(), p.island.end(), r))
        complement.push_back(r);
    }
    const bool island_loses =
        p.island.size() < complement.size() ||
        (p.island.size() == complement.size() && p.island.front() != 0);
    if (dead) *dead = island_loses ? p.island : complement;
    return static_cast<int>(spec_.deaths.size() + j);
  }
  return -1;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << spec_.seed << " size=" << size_;
  if (spec_.max_edge_delay_us > 0)
    os << " edge=[" << spec_.min_edge_delay_us << ','
       << spec_.max_edge_delay_us << "]us";
  if (spec_.drop_prob > 0.0)
    os << " drop=" << spec_.drop_prob << "x" << spec_.max_retries << '@'
       << spec_.retry_backoff_us << "us";
  if (spec_.max_completion_jitter_us > 0)
    os << " jitter<=" << spec_.max_completion_jitter_us << "us";
  if (!spec_.per_rank_delay_us.empty()) {
    os << " straggler=[";
    for (std::size_t i = 0; i < spec_.per_rank_delay_us.size(); ++i) {
      if (i > 0) os << ',';
      os << spec_.per_rank_delay_us[i];
    }
    os << "]us";
  }
  int ev = 0;
  for (const RankDeathEvent& d : spec_.deaths)
    os << " event" << ev++ << "=death[rank " << d.rank << " @op " << d.at_op
       << ']';
  for (const PartitionEvent& p : spec_.partitions) {
    os << " event" << ev++ << "=partition[";
    std::ostringstream tmp;
    append_ranks(tmp, p.island);
    os << tmp.str() << "|rest @op " << p.at_op << '+' << p.duration_ops << ']';
  }
  return os.str();
}

FaultPlan::Injection FaultPlan::draw(int rank, CollectiveKind kind,
                                     std::uint64_t seq) const {
  Injection inj;
  inj.pre_delay_us = ingress_us_[static_cast<std::size_t>(rank)];
  inj.retry_backoff_us = spec_.retry_backoff_us;
  if (spec_.drop_prob > 0.0) {
    // Independent drop draw per resend attempt; retries always succeed by
    // attempt max_retries (the injected network is lossy, not partitioned).
    for (int attempt = 0; attempt < spec_.max_retries; ++attempt) {
      const std::uint64_t h =
          hash3(spec_.seed ^ 0xD509,
                (static_cast<std::uint64_t>(rank) << 32) |
                    static_cast<std::uint64_t>(kind),
                seq, static_cast<std::uint64_t>(attempt));
      if (unit_double(h) >= spec_.drop_prob) break;
      ++inj.drops;
    }
  }
  if (spec_.max_completion_jitter_us > 0) {
    const std::uint64_t h =
        hash3(spec_.seed ^ 0x10DE,
              (static_cast<std::uint64_t>(rank) << 32) |
                  static_cast<std::uint64_t>(kind),
              seq, 0);
    inj.post_jitter_us = uniform_u32(h, 0, spec_.max_completion_jitter_us);
  }
  injections_.fetch_add(1, std::memory_order_relaxed);
  injected_retries_.fetch_add(static_cast<std::uint64_t>(inj.drops),
                              std::memory_order_relaxed);
  injected_delay_us_.fetch_add(
      static_cast<std::uint64_t>(inj.pre_delay_us) +
          static_cast<std::uint64_t>(inj.post_jitter_us) +
          static_cast<std::uint64_t>(inj.drops) *
              static_cast<std::uint64_t>(inj.retry_backoff_us),
      std::memory_order_relaxed);
  return inj;
}

std::shared_ptr<const FaultPlan> make_fault_plan(FaultSpec spec, int size) {
  return std::make_shared<const FaultPlan>(std::move(spec), size);
}

}  // namespace dchag::comm
