#include "ingress/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dchag::ingress {

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kSaturated: return "saturated";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace {

// Little-endian put/get; the serving fleet is homogeneous x86-64 today but
// the byte order is pinned so the protocol stays well-defined.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(out, bits);
}

/// Bounds-checked read cursor; every get_* throws kBadRequest past the end.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;

  void need(std::size_t n) const {
    if (left < n)
      throw IngressError(ErrorCode::kBadRequest, "truncated payload");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  std::vector<float> floats(std::size_t n) {
    need(n * 4);
    std::vector<float> out(n);
    std::memcpy(out.data(), p, n * 4);
    p += n * 4;
    left -= n * 4;
    return out;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string out(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return out;
  }
};

void put_tensor_2d_or_3d(std::vector<std::uint8_t>& out, const Tensor& t) {
  for (Index i = 0; i < t.shape().rank(); ++i) put_i64(out, t.dim(i));
  const std::size_t bytes = static_cast<std::size_t>(t.numel()) * 4;
  const std::size_t base = out.size();
  out.resize(base + bytes);
  std::memcpy(out.data() + base, t.data(), bytes);
}

/// Guards a dim triple against garbage before multiplying into a size.
std::int64_t checked_numel(std::initializer_list<std::int64_t> dims,
                           std::int64_t max_elems) {
  std::int64_t n = 1;
  for (std::int64_t d : dims) {
    if (d <= 0 || d > max_elems)
      throw IngressError(ErrorCode::kBadRequest, "bad tensor dimension");
    n *= d;
    if (n > max_elems)
      throw IngressError(ErrorCode::kBadRequest, "tensor too large");
  }
  return n;
}

constexpr std::int64_t kMaxElems = kMaxFrameBytes / 4;

}  // namespace

std::vector<std::uint8_t> encode_infer(const InferRequest& r) {
  if (r.channels.size() > kMaxWireChannels)
    throw IngressError(ErrorCode::kBadRequest,
                       "too many channels in request");
  if (r.images.shape().rank() != 3)
    throw IngressError(ErrorCode::kBadRequest,
                       "request images must be [C, H, W]");
  std::vector<std::uint8_t> out;
  out.reserve(64 + static_cast<std::size_t>(r.images.numel()) * 4);
  put_u64(out, r.id);
  put_f32(out, r.lead_time);
  put_u32(out, static_cast<std::uint32_t>(r.channels.size()));
  for (Index c : r.channels) put_i64(out, c);
  put_tensor_2d_or_3d(out, r.images);
  return out;
}

InferRequest decode_infer(const std::uint8_t* data, std::size_t size) {
  Reader rd{data, size};
  InferRequest r;
  r.id = rd.u64();
  r.lead_time = rd.f32();
  const std::uint32_t n_channels = rd.u32();
  if (n_channels > kMaxWireChannels)
    throw IngressError(ErrorCode::kBadRequest, "too many channels");
  r.channels.reserve(n_channels);
  for (std::uint32_t i = 0; i < n_channels; ++i)
    r.channels.push_back(static_cast<Index>(rd.i64()));
  const std::int64_t c = rd.i64(), h = rd.i64(), w = rd.i64();
  const std::int64_t n = checked_numel({c, h, w}, kMaxElems);
  r.images = Tensor::from_data(tensor::Shape{c, h, w},
                               rd.floats(static_cast<std::size_t>(n)));
  if (rd.left != 0)
    throw IngressError(ErrorCode::kBadRequest, "trailing bytes in request");
  return r;
}

std::vector<std::uint8_t> encode_result(const InferResult& r) {
  if (r.pred.shape().rank() != 2)
    throw IngressError(ErrorCode::kInternal, "result must be [S, D]");
  std::vector<std::uint8_t> out;
  out.reserve(32 + static_cast<std::size_t>(r.pred.numel()) * 4);
  put_u64(out, r.id);
  put_tensor_2d_or_3d(out, r.pred);
  return out;
}

InferResult decode_result(const std::uint8_t* data, std::size_t size) {
  Reader rd{data, size};
  InferResult r;
  r.id = rd.u64();
  const std::int64_t s = rd.i64(), d = rd.i64();
  const std::int64_t n = checked_numel({s, d}, kMaxElems);
  r.pred = Tensor::from_data(tensor::Shape{s, d},
                             rd.floats(static_cast<std::size_t>(n)));
  if (rd.left != 0)
    throw IngressError(ErrorCode::kBadRequest, "trailing bytes in result");
  return r;
}

std::vector<std::uint8_t> encode_error(const WireError& e) {
  std::vector<std::uint8_t> out;
  put_u64(out, e.id);
  put_u32(out, static_cast<std::uint32_t>(e.code));
  put_u32(out, static_cast<std::uint32_t>(e.message.size()));
  out.insert(out.end(), e.message.begin(), e.message.end());
  return out;
}

WireError decode_error(const std::uint8_t* data, std::size_t size) {
  Reader rd{data, size};
  WireError e;
  e.id = rd.u64();
  const std::uint32_t code = rd.u32();
  if (code < 1 || code > 4)
    throw IngressError(ErrorCode::kBadRequest, "unknown error code");
  e.code = static_cast<ErrorCode>(code);
  e.message = rd.str(rd.u32());
  return e;
}

bool write_frame(int fd, MsgType type, const std::uint8_t* payload,
                 std::size_t size) {
  if (size > kMaxFrameBytes) return false;
  std::vector<std::uint8_t> header;
  put_u32(header, static_cast<std::uint32_t>(size));
  header.push_back(static_cast<std::uint8_t>(type));

  const auto send_all = [fd](const std::uint8_t* p, std::size_t n) {
    while (n > 0) {
      // MSG_NOSIGNAL: a vanished peer must surface as an error return,
      // never as a process-killing SIGPIPE inside the dispatcher.
      const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  };
  if (!send_all(header.data(), header.size())) return false;
  return size == 0 || send_all(payload, size);
}

std::optional<Frame> read_frame(int fd) {
  const auto recv_all = [fd](std::uint8_t* p, std::size_t n) -> int {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, p + got, n - got, 0);
      if (r == 0) return got == 0 ? 0 : -1;  // EOF (clean only at a frame edge)
      if (r < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      got += static_cast<std::size_t>(r);
    }
    return 1;
  };

  std::uint8_t header[5];
  const int hr = recv_all(header, 5);
  if (hr == 0) return std::nullopt;  // orderly EOF between frames
  if (hr < 0) return std::nullopt;   // peer vanished
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) size |= std::uint32_t(header[i]) << (8 * i);
  if (size > kMaxFrameBytes)
    throw IngressError(ErrorCode::kBadRequest, "oversized frame");
  Frame f;
  f.type = static_cast<MsgType>(header[4]);
  f.payload.resize(size);
  if (size > 0 && recv_all(f.payload.data(), size) != 1)
    throw IngressError(ErrorCode::kBadRequest, "truncated frame");
  return f;
}

}  // namespace dchag::ingress
