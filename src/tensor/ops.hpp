// Stateless tensor kernels. All functions return freshly-allocated tensors;
// inputs are never mutated. Elementwise binaries use numpy-style
// right-aligned broadcasting. A process-wide FLOP ledger instruments every
// matmul so the analytic hw::FlopModel can be validated against executed
// kernels (tests/hw/flop_model_test.cpp).
//
// matmul, the elementwise/broadcast fast paths, softmax, layernorm, and
// sum_dim dispatch on kernel_config() (naive | blocked | parallel); see
// tensor/kernel_config.hpp for the backend contract and env knobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace dchag::tensor::ops {

// ----- elementwise with broadcasting ---------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

/// True if `b` broadcasts to `a` under right-aligned numpy rules.
bool broadcastable(const Shape& a, const Shape& b);

/// Sum `t` down to `target` shape by reducing the dimensions that were
/// broadcast (the adjoint of broadcasting; used by autograd backward).
Tensor reduce_to_shape(const Tensor& t, const Shape& target);

// ----- linear algebra -------------------------------------------------------

/// Batched matmul: a is [*, M, K]; b is [*, K, N] with identical leading
/// dims, or rank-2 [K, N] shared across the batch.
Tensor matmul(const Tensor& a, const Tensor& b);

// ----- fused serving kernels -------------------------------------------------
//
// Rowwise epilogues folded into the GEMM tail: each parallel row strip
// finishes complete output rows, so bias/activation/residual/layernorm
// run in the same task that produced them instead of separate ThreadPool
// fan-outs (and separate output tensors). Every stage reuses the exact
// scalar code of its standalone op, and residual addition only swaps the
// operand order of a commutative float add, so fused outputs are
// bit-identical to the unfused op chain — the parity suites assert this.

/// Optional tail stages of linear_fused, applied in declaration order:
/// bias add, GELU, residual add, layernorm.
struct LinearEpilogue {
  const Tensor* bias = nullptr;      ///< [N], broadcast over rows
  bool gelu = false;
  const Tensor* residual = nullptr;  ///< same shape as the output
  const Tensor* ln_gamma = nullptr;  ///< [N]; with ln_beta, layernorm tail
  const Tensor* ln_beta = nullptr;   ///< [N]
  float ln_eps = 1e-5f;
};

/// x [*, M, K] times shared w [K, N] with the epilogue fused into each
/// row strip. `packed` (from gemm::pack_b_matrix, matching w) removes
/// pack_b from the per-call path on the blocked/parallel backends; pass
/// nullptr to pack per call.
Tensor linear_fused(const Tensor& x, const Tensor& w,
                    const gemm::PackedB* packed, const LinearEpilogue& epi);

/// softmax_lastdim(scale(matmul(a, b), s)) with the scale+softmax rows
/// fused into the matmul's row strips (the attention score path).
Tensor matmul_scale_softmax(const Tensor& a, const Tensor& b, float s);

Tensor transpose_last2(const Tensor& a);
Tensor permute(const Tensor& a, const std::vector<Index>& perm);

// ----- nonlinearities / normalisation ---------------------------------------

Tensor softmax_lastdim(const Tensor& a);
/// GELU with tanh approximation (matches the PyTorch default used by ViTs).
Tensor gelu(const Tensor& a);
Tensor gelu_grad(const Tensor& a);  // d gelu / d a, elementwise
Tensor relu(const Tensor& a);
Tensor exp(const Tensor& a);

struct LayerNormResult {
  Tensor y;     ///< normalised output (same shape as input)
  Tensor mean;  ///< per-row mean, shape = input shape without last dim
  Tensor rstd;  ///< per-row 1/std, same shape as mean
};
/// Layer norm over the last dimension; gamma/beta have shape [D].
LayerNormResult layernorm(const Tensor& a, const Tensor& gamma,
                          const Tensor& beta, float eps = 1e-5f);

/// Forward-only layer norm: the same kernel as layernorm() but without
/// materialising the mean/rstd tensors backward needs — the tape-free
/// serving path (three fresh tensors per call otherwise). Bit-identical y.
Tensor layernorm_value(const Tensor& a, const Tensor& gamma,
                       const Tensor& beta, float eps = 1e-5f);

// ----- shape manipulation ----------------------------------------------------

Tensor concat(std::span<const Tensor> ts, Index dim);
Tensor slice(const Tensor& a, Index dim, Index start, Index len);
/// Writes `src` into `dst` at offset `start` along `dim` (for backward of
/// slice / concat); mutates dst in place.
void add_slice_inplace(Tensor& dst, const Tensor& src, Index dim, Index start);

// ----- reductions ------------------------------------------------------------

Tensor sum_all(const Tensor& a);   // -> shape [1]
Tensor mean_all(const Tensor& a);  // -> shape [1]
Tensor sum_dim(const Tensor& a, Index dim);
Tensor mean_dim(const Tensor& a, Index dim);
/// Broadcast `a` (shape without `dim`) back across `dim` with `n` copies.
Tensor expand_dim(const Tensor& a, Index dim, Index n);

// ----- comparisons for tests -------------------------------------------------

/// Largest absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

// ----- FLOP ledger -----------------------------------------------------------

/// Cumulative multiply-add FLOPs (2*M*N*K per matmul) executed by this
/// process since the last reset. Thread-safe (rank threads all count).
std::uint64_t flops_executed();
void reset_flops();

}  // namespace dchag::tensor::ops
