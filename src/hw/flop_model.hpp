// Analytic FLOP counts per model component. "Logical" FLOPs are the
// model's mathematical cost (what a perfectly-parallel system would do
// once); "executed" FLOPs per GPU account for the redundancy each strategy
// actually incurs (e.g. baseline TP re-tokenizes every channel on every
// rank — paper Fig. 2 top). The formulas are validated against the
// instrumented matmul ledger of the executable model in
// tests/hw/flop_model_test.cpp.
#pragma once

#include "hw/workload.hpp"

namespace dchag::hw {

struct FlopModel {
  /// Per-channel patch embedding: 2 * B*C*S * p^2 * D.
  [[nodiscard]] static double tokenizer_flops(const ModelConfig& cfg,
                                              double batch, double channels);

  /// One aggregation unit over `width` channel tokens; split so the
  /// perf model can shard projections but not channel scores under TP.
  struct AggFlops {
    double scores;  ///< QK^T + attn*V (channel dimension)
    double proj;    ///< q,k,v,out projections (embedding dimension)
  };
  [[nodiscard]] static AggFlops aggregation_flops(const ModelConfig& cfg,
                                                  double batch, Index width,
                                                  AggLayerKind kind);

  /// Whole partial-aggregation tree.
  [[nodiscard]] static AggFlops tree_flops(const ModelConfig& cfg,
                                           double batch,
                                           const model::TreePlan& plan,
                                           AggLayerKind kind);

  /// All ViT blocks (attention + MLP) for one batch.
  [[nodiscard]] static double transformer_flops(const ModelConfig& cfg,
                                                double batch);

  /// Reconstruction/forecast head: 2 * B*S * D * C*p^2.
  [[nodiscard]] static double head_flops(const ModelConfig& cfg, double batch,
                                         double out_channels);

  /// Logical forward FLOPs of the full model (baseline or D-CHAG
  /// architecture) for `batch` samples.
  [[nodiscard]] static double logical_forward_flops(const ModelConfig& cfg,
                                                    double batch,
                                                    Index channels,
                                                    const DchagSpec& dchag,
                                                    int tp);
};

}  // namespace dchag::hw
