// Error-checking utilities shared by every dchag module.
//
// DCHAG_CHECK(cond, msg) throws dchag::Error (derived from
// std::runtime_error) with file:line context. Checks are always on: the
// library favours loud, early failure over silent shape corruption; the
// predicates are O(rank) and never sit inside inner kernels.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dchag {

/// Exception type thrown by all DCHAG_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* file, int line,
                                             const char* cond,
                                             const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dchag

#define DCHAG_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dchag::detail::throw_check_failure(__FILE__, __LINE__, #cond,       \
                                           (::std::ostringstream{} << msg) \
                                               .str());                     \
    }                                                                       \
  } while (false)

#define DCHAG_FAIL(msg)                                                  \
  ::dchag::detail::throw_check_failure(__FILE__, __LINE__, "explicit",   \
                                       (::std::ostringstream{} << msg)  \
                                           .str())
