// Microbenchmark (google-benchmark): the in-process collective runtime's
// algorithms (direct shared-memory, ring, hierarchical) across payload
// sizes and group sizes, plus the point-to-point mailbox. These numbers
// characterise the simulation substrate itself, not Frontier.
#include <benchmark/benchmark.h>

#include "comm/communicator.hpp"

namespace {

using namespace dchag::comm;

void run_collective(benchmark::State& state, Algorithm alg,
                    CollectiveKind kind) {
  const int world = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  World w(world, Topology::packed(world, 4));
  for (auto _ : state) {
    w.run([&](Communicator& comm) {
      std::vector<float> data(n, static_cast<float>(comm.rank()));
      switch (kind) {
        case CollectiveKind::kAllReduce:
          comm.all_reduce(data, ReduceOp::kSum, alg);
          break;
        case CollectiveKind::kAllGather: {
          std::vector<float> recv(n * static_cast<std::size_t>(world));
          comm.all_gather(std::span<const float>(data.data(), n), recv, alg);
          break;
        }
        case CollectiveKind::kReduceScatter: {
          std::vector<float> send(n * static_cast<std::size_t>(world), 1.0f);
          comm.reduce_scatter(send, data, ReduceOp::kSum, alg);
          break;
        }
        default:
          break;
      }
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float)) *
                          world);
}

void BM_AllReduceDirect(benchmark::State& state) {
  run_collective(state, Algorithm::kDirect, CollectiveKind::kAllReduce);
}
void BM_AllReduceRing(benchmark::State& state) {
  run_collective(state, Algorithm::kRing, CollectiveKind::kAllReduce);
}
void BM_AllReduceHierarchical(benchmark::State& state) {
  run_collective(state, Algorithm::kHierarchical,
                 CollectiveKind::kAllReduce);
}
void BM_AllGatherDirect(benchmark::State& state) {
  run_collective(state, Algorithm::kDirect, CollectiveKind::kAllGather);
}
void BM_ReduceScatterRing(benchmark::State& state) {
  run_collective(state, Algorithm::kRing, CollectiveKind::kReduceScatter);
}

BENCHMARK(BM_AllReduceDirect)->Args({4, 1 << 10})->Args({8, 1 << 14});
BENCHMARK(BM_AllReduceRing)->Args({4, 1 << 10})->Args({8, 1 << 14});
BENCHMARK(BM_AllReduceHierarchical)->Args({4, 1 << 10})->Args({8, 1 << 14});
BENCHMARK(BM_AllGatherDirect)->Args({4, 1 << 12})->Args({8, 1 << 12});
BENCHMARK(BM_ReduceScatterRing)->Args({4, 1 << 12})->Args({8, 1 << 12});

void BM_SendRecvPingPong(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  World w(2);
  for (auto _ : state) {
    w.run([&](Communicator& comm) {
      std::vector<float> buf(n, 1.0f);
      if (comm.rank() == 0) {
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 1);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 1);
      }
    });
  }
}
BENCHMARK(BM_SendRecvPingPong)->Arg(1 << 8)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
