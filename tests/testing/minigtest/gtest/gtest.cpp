// minigtest runner: executes every registered test and prints a
// gtest-flavored summary. Linked instead of gtest_main when GoogleTest is
// unavailable (see tests/CMakeLists.txt).
#include "gtest/gtest.h"

#include <exception>
#include <memory>

int RUN_ALL_TESTS() {
  using ::testing::internal::current_test_failed;
  using ::testing::internal::registry;

  int failed = 0;
  const auto& tests = registry();
  std::printf("[==========] Running %zu tests (minigtest).\n", tests.size());
  for (const auto& test : tests) {
    std::printf("[ RUN      ] %s\n", test.full_name.c_str());
    current_test_failed() = false;
    test.prepare();
    try {
      std::unique_ptr<::testing::Test> instance(test.factory());
      instance->TestBody();
    } catch (const ::testing::internal::FatalFailure&) {
      // Failure already reported by the ASSERT_* macro.
    } catch (const std::exception& e) {
      std::fprintf(stderr, "Uncaught exception: %s\n", e.what());
      current_test_failed() = true;
    } catch (...) {
      std::fprintf(stderr, "Uncaught non-std exception\n");
      current_test_failed() = true;
    }
    if (current_test_failed()) {
      ++failed;
      std::printf("[  FAILED  ] %s\n", test.full_name.c_str());
    } else {
      std::printf("[       OK ] %s\n", test.full_name.c_str());
    }
  }
  std::printf("[==========] %zu tests ran, %d failed.\n", tests.size(),
              failed);
  return failed == 0 ? 0 : 1;
}

int main() { return RUN_ALL_TESTS(); }
