// The unified execution context: builder round trips, the one env entry
// point (valid / empty / garbage / mixed-case / unknown variables, all
// reported in a single diagnostic), and the override precedence ladder
// (built-in defaults < from_env-initialised process default < explicit
// Context argument < innermost runtime::Scope, nested and per-field).
#include "runtime/context.hpp"

#include <gtest/gtest.h>

#include "comm/fault.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/thread_pool.hpp"

namespace dchag::runtime {
namespace {

using Env = std::vector<Context::EnvEntry>;

/// Restores the process default on scope exit so tests that poke it
/// can't leak into the rest of the binary.
class ProcessDefaultGuard {
 public:
  ProcessDefaultGuard() : saved_(Context::process_default()) {}
  ~ProcessDefaultGuard() { Context::set_process_default(saved_); }

 private:
  Context saved_;
};

TEST(ContextBuilder, BuildsAndRoundTripsEveryField) {
  auto plan = comm::make_fault_plan(comm::FaultSpec{}, 2);
  tensor::ThreadPool pool(0);
  const Context ctx = ContextBuilder()
                          .kernel_backend(KernelBackend::kBlocked)
                          .threads(3)
                          .comm_mode(CommMode::kAsync)
                          .pipeline_chunks(6)
                          .fault_plan(plan)
                          .pool(&pool)
                          .build();
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kBlocked);
  EXPECT_EQ(ctx.kernels().threads, 3);
  EXPECT_EQ(ctx.comm().mode, CommMode::kAsync);
  EXPECT_EQ(ctx.comm().pipeline_chunks, 6);
  EXPECT_EQ(ctx.fault_plan().get(), plan.get());
  EXPECT_EQ(ctx.pool(), &pool);

  // to_builder copies, then modifies only what the builder touches.
  const Context tweaked =
      ctx.to_builder().comm_mode(CommMode::kSync).build();
  EXPECT_EQ(tweaked.comm().mode, CommMode::kSync);
  EXPECT_EQ(tweaked.comm().pipeline_chunks, 6);
  EXPECT_EQ(tweaked.kernels().backend, KernelBackend::kBlocked);
  EXPECT_EQ(tweaked.fault_plan().get(), plan.get());
}

TEST(ContextFromEnv, EmptyEnvironmentYieldsBuiltInDefaults) {
  Context::EnvReport report;
  const Context ctx = Context::from_env(Env{}, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.summary(), "");
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kParallel);
  EXPECT_EQ(ctx.kernels().threads, 0);
  EXPECT_EQ(ctx.comm().mode, CommMode::kSync);
  EXPECT_EQ(ctx.comm().pipeline_chunks, 1);
}

TEST(ContextFromEnv, ParsesKnownVariablesCaseInsensitively) {
  Context::EnvReport report;
  const Context ctx = Context::from_env(
      Env{{"DCHAG_KERNEL", "Blocked"},
          {"DCHAG_THREADS", "8"},
          {"DCHAG_COMM", "ASYNC"},
          {"DCHAG_COMM_CHUNKS", "7"}},
      &report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kBlocked);
  EXPECT_EQ(ctx.kernels().threads, 8);
  EXPECT_EQ(ctx.comm().mode, CommMode::kAsync);
  EXPECT_EQ(ctx.comm().pipeline_chunks, 7);
}

TEST(ContextFromEnv, AsyncDefaultsToUsefulPipelineDepth) {
  Context::EnvReport report;
  const Context ctx =
      Context::from_env(Env{{"DCHAG_COMM", "async"}}, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(ctx.comm().pipeline_chunks, 4);
}

TEST(ContextFromEnv, EmptyValuesMeanUnset) {
  Context::EnvReport report;
  const Context ctx = Context::from_env(
      Env{{"DCHAG_KERNEL", ""}, {"DCHAG_COMM", ""}, {"DCHAG_THREADS", ""}},
      &report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kParallel);
  EXPECT_EQ(ctx.comm().mode, CommMode::kSync);
}

TEST(ContextFromEnv, GarbageAndUnknownsAllLandInOneDiagnostic) {
  Context::EnvReport report;
  const Context ctx = Context::from_env(
      Env{{"DCHAG_KERNEL", "simd"},
          {"DCHAG_THREADS", "lots"},
          {"DCHAG_COMM", "maybe"},
          {"DCHAG_COMM_CHUNKS", "0"},
          {"DCHAG_TURBO", "1"},
          {"NOT_OURS", "ignored"}},
      &report);
  // Every problem is reported...
  EXPECT_EQ(report.issues.size(), 5u);
  const std::string d = report.summary();
  EXPECT_NE(d.find("DCHAG_KERNEL='simd'"), std::string::npos) << d;
  EXPECT_NE(d.find("DCHAG_THREADS='lots'"), std::string::npos) << d;
  EXPECT_NE(d.find("DCHAG_COMM='maybe'"), std::string::npos) << d;
  EXPECT_NE(d.find("DCHAG_COMM_CHUNKS='0'"), std::string::npos) << d;
  EXPECT_NE(d.find("unknown variable DCHAG_TURBO"), std::string::npos) << d;
  EXPECT_EQ(d.find("NOT_OURS"), std::string::npos) << d;
  // ...and in ONE diagnostic line, not a warning per variable.
  EXPECT_EQ(d.find('\n'), std::string::npos) << d;
  // Bad values degrade to defaults instead of faulting.
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kParallel);
  EXPECT_EQ(ctx.kernels().threads, 0);
  EXPECT_EQ(ctx.comm().mode, CommMode::kSync);
  EXPECT_EQ(ctx.comm().pipeline_chunks, 1);
}

TEST(ContextFromEnv, IngressNamespacePassesThroughWithoutDiagnostics) {
  // DCHAG_ING_* belongs to the ingress worker protocol (checkpoint path,
  // model spec, crash injection); from_env must neither consume nor
  // complain about it.
  Context::EnvReport report;
  const Context ctx = Context::from_env(
      Env{{"DCHAG_ING_CKPT", "/tmp/ckpt.bin"},
          {"DCHAG_ING_MODEL", "tiny:4:2"},
          {"DCHAG_ING_CRASH_AT", "3"},
          {"DCHAG_KERNEL", "blocked"}},
      &report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(ctx.kernels().backend, KernelBackend::kBlocked);
}

TEST(ContextToEnv, RoundTripsThroughFromEnv) {
  // to_env() is the cross-process hand-off: a child's from_env() on the
  // exported entries must reconstruct the env-expressible fields exactly.
  const Context original = ContextBuilder()
                               .kernel_backend(KernelBackend::kBlocked)
                               .threads(3)
                               .comm_mode(CommMode::kAsync)
                               .pipeline_chunks(6)
                               .build();
  Context::EnvReport report;
  const Context back = Context::from_env(original.to_env(), &report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(back.kernels().backend, KernelBackend::kBlocked);
  EXPECT_EQ(back.kernels().threads, 3);
  EXPECT_EQ(back.comm().mode, CommMode::kAsync);
  EXPECT_EQ(back.comm().pipeline_chunks, 6);
}

TEST(ContextToEnv, DefaultsRoundTripToo) {
  // threads=0 ("whole pool") and pipeline_chunks=1 sit at parse-range
  // edges; the inverse must express them in-range, not drop them.
  Context::EnvReport report;
  const Context back = Context::from_env(Context().to_env(), &report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(back.kernels().backend, KernelBackend::kParallel);
  EXPECT_EQ(back.kernels().threads, 0);
  EXPECT_EQ(back.comm().mode, CommMode::kSync);
  EXPECT_EQ(back.comm().pipeline_chunks, 1);
}

TEST(ContextFromEnv, OutOfRangeIntegersRejected) {
  Context::EnvReport report;
  const Context ctx = Context::from_env(
      Env{{"DCHAG_THREADS", "5000"}, {"DCHAG_COMM_CHUNKS", "1e3"}},
      &report);
  EXPECT_EQ(report.issues.size(), 2u) << report.summary();
  EXPECT_EQ(ctx.kernels().threads, 0);
  EXPECT_EQ(ctx.comm().pipeline_chunks, 1);
}

TEST(ContextPrecedence, ExplicitArgumentBeatsProcessDefault) {
  ProcessDefaultGuard guard;
  Context::set_process_default(
      ContextBuilder().kernel_backend(KernelBackend::kParallel).build());
  const Context explicit_ctx =
      ContextBuilder().kernel_backend(KernelBackend::kNaive).build();
  // No scopes active: the explicit context resolves to itself.
  EXPECT_EQ(explicit_ctx.effective().kernels().backend,
            KernelBackend::kNaive);
  // While ambient reads still see the process default.
  EXPECT_EQ(Context::current().kernels().backend, KernelBackend::kParallel);
}

TEST(ContextPrecedence, ScopeBeatsExplicitArgumentPerField) {
  const Context explicit_ctx = ContextBuilder()
                                   .kernel_backend(KernelBackend::kNaive)
                                   .comm_mode(CommMode::kAsync)
                                   .pipeline_chunks(3)
                                   .build();
  Scope scope(ContextPatch::with_kernels({KernelBackend::kBlocked, 2}));
  const Context eff = explicit_ctx.effective();
  // The scope's field wins over the explicit argument...
  EXPECT_EQ(eff.kernels().backend, KernelBackend::kBlocked);
  EXPECT_EQ(eff.kernels().threads, 2);
  // ...but fields the patch does not engage keep the argument's values.
  EXPECT_EQ(eff.comm().mode, CommMode::kAsync);
  EXPECT_EQ(eff.comm().pipeline_chunks, 3);
}

TEST(ContextPrecedence, NestedScopesInnermostWinsAndRestores) {
  const KernelBackend before = active_kernel_config().backend;
  {
    Scope outer(ContextPatch::with_kernels({KernelBackend::kNaive, 2}));
    EXPECT_EQ(active_kernel_config().backend, KernelBackend::kNaive);
    EXPECT_EQ(active_kernel_config().threads, 2);
    {
      Scope inner(ContextPatch::with_comm({CommMode::kAsync, 5}));
      // Different field: both overrides visible at once.
      EXPECT_EQ(active_kernel_config().backend, KernelBackend::kNaive);
      EXPECT_EQ(active_comm_config().mode, CommMode::kAsync);
      {
        Scope innermost(
            ContextPatch::with_kernels({KernelBackend::kBlocked, 0}));
        EXPECT_EQ(active_kernel_config().backend, KernelBackend::kBlocked);
        EXPECT_EQ(active_comm_config().mode, CommMode::kAsync);
      }
      EXPECT_EQ(active_kernel_config().backend, KernelBackend::kNaive);
    }
    EXPECT_EQ(active_comm_config().mode, Context::current().comm().mode);
  }
  EXPECT_EQ(active_kernel_config().backend, before);
}

TEST(ContextPrecedence, FullContextScopeOverridesEveryField) {
  auto plan = comm::make_fault_plan(comm::FaultSpec{}, 2);
  const Context pinned = ContextBuilder()
                             .kernel_backend(KernelBackend::kNaive)
                             .comm_mode(CommMode::kAsync)
                             .fault_plan(plan)
                             .build();
  Scope scope(pinned);
  const Context cur = Context::current();
  EXPECT_EQ(cur.kernels().backend, KernelBackend::kNaive);
  EXPECT_EQ(cur.comm().mode, CommMode::kAsync);
  EXPECT_EQ(cur.fault_plan().get(), plan.get());
}

TEST(ContextPrecedence, EffectiveOrCurrentResolvesPinnedAndAmbient) {
  // Unpinned: tracks the ambient context.
  Scope scope(ContextPatch::with_kernels({KernelBackend::kBlocked, 0}));
  EXPECT_EQ(Context::effective_or_current(std::nullopt).kernels().backend,
            KernelBackend::kBlocked);
  // Pinned: base fields survive where no scope overrides them.
  const Context pinned = ContextBuilder().pipeline_chunks(9).build();
  const Context eff = Context::effective_or_current(pinned);
  EXPECT_EQ(eff.comm().pipeline_chunks, 9);
  EXPECT_EQ(eff.kernels().backend, KernelBackend::kBlocked);
}

TEST(ContextProcessDefault, SetProcessDefaultFeedsAmbientReads) {
  ProcessDefaultGuard guard;
  Context::set_process_default(ContextBuilder()
                                   .kernel_backend(KernelBackend::kBlocked)
                                   .pipeline_chunks(2)
                                   .build());
  EXPECT_EQ(active_kernel_config().backend, KernelBackend::kBlocked);
  EXPECT_EQ(active_comm_config().pipeline_chunks, 2);
  EXPECT_EQ(Context::current().kernels().backend, KernelBackend::kBlocked);
}

TEST(ContextParsers, RoundTripAndRejection) {
  EXPECT_EQ(parse_backend("naive"), KernelBackend::kNaive);
  EXPECT_EQ(parse_backend("PARALLEL"), KernelBackend::kParallel);
  EXPECT_THROW(parse_backend("simd"), Error);
  EXPECT_EQ(parse_comm_mode("Async"), CommMode::kAsync);
  EXPECT_THROW(parse_comm_mode("eager"), Error);
  EXPECT_STREQ(to_string(KernelBackend::kBlocked), "blocked");
  EXPECT_STREQ(to_string(CommMode::kAsync), "async");
}

}  // namespace
}  // namespace dchag::runtime
