#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(DCHAG_GEMM_AVX2)
#include <immintrin.h>
#endif

namespace dchag::tensor::gemm {

namespace {

// Tile sizes chosen for ~2 MB L2 parts: the packed B panel (KC x NC =
// 512 KB) and A panel (MC x KC = 120 KB) stay resident across the macro
// kernel. MC is a multiple of MR, NC a multiple of NR.
constexpr Index kMR = 6;
constexpr Index kNR = 16;
constexpr Index kMC = 120;
constexpr Index kKC = 256;
constexpr Index kNC = 512;

/// Packs A[i0:i0+mc, p0:p0+kc] into MR-row panels, k-major inside each
/// panel (a[k*MR + i]); rows past `mc` are zero so the micro-kernel never
/// branches on the M edge.
void pack_a(const float* A, Index lda, Index mc, Index kc, float* out) {
  for (Index i = 0; i < mc; i += kMR) {
    const Index mr = std::min(kMR, mc - i);
    for (Index k = 0; k < kc; ++k) {
      for (Index r = 0; r < mr; ++r) out[k * kMR + r] = A[(i + r) * lda + k];
      for (Index r = mr; r < kMR; ++r) out[k * kMR + r] = 0.0f;
    }
    out += kKC * kMR;
  }
}

/// Packs B[p0:p0+kc, j0:j0+nc] into NR-column panels (b[k*NR + j]);
/// columns past `nc` are zero.
void pack_b(const float* B, Index ldb, Index kc, Index nc, float* out) {
  for (Index j = 0; j < nc; j += kNR) {
    const Index nr = std::min(kNR, nc - j);
    for (Index k = 0; k < kc; ++k) {
      const float* row = B + k * ldb + j;
      for (Index c = 0; c < nr; ++c) out[k * kNR + c] = row[c];
      for (Index c = nr; c < kNR; ++c) out[k * kNR + c] = 0.0f;
    }
    out += kKC * kNR;
  }
}

/// MR x NR register tile over one KC slice of packed panels; writes back
/// only the mr x nr valid corner. Per-element accumulation is strictly
/// k-ordered in both variants, which is what keeps the blocked and
/// parallel backends bit-identical.
#if defined(DCHAG_GEMM_AVX2)
void micro_kernel(Index kc, const float* a, const float* b, float* C,
                  Index ldc, Index mr, Index nr) {
  // 6 rows x 16 columns = 12 ymm accumulators; 2 loads + 6 broadcasts +
  // 12 FMAs per k.
  __m256 acc[kMR][2];
  for (Index i = 0; i < kMR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (Index k = 0; k < kc; ++k) {
    const __m256 b0 = _mm256_loadu_ps(b + k * kNR);
    const __m256 b1 = _mm256_loadu_ps(b + k * kNR + 8);
    const float* ak = a + k * kMR;
    for (Index i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(ak + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  if (mr == kMR && nr == kNR) {
    for (Index i = 0; i < kMR; ++i) {
      float* crow = C + i * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[i][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[i][1]));
    }
  } else {
    alignas(32) float buf[kMR][kNR];
    for (Index i = 0; i < kMR; ++i) {
      _mm256_store_ps(buf[i], acc[i][0]);
      _mm256_store_ps(buf[i] + 8, acc[i][1]);
    }
    for (Index i = 0; i < mr; ++i) {
      float* crow = C + i * ldc;
      for (Index j = 0; j < nr; ++j) crow[j] += buf[i][j];
    }
  }
}
#else
void micro_kernel(Index kc, const float* a, const float* b, float* C,
                  Index ldc, Index mr, Index nr) {
  float acc[kMR][kNR] = {};
  for (Index k = 0; k < kc; ++k) {
    const float* bk = b + k * kNR;
    const float* ak = a + k * kMR;
    for (Index i = 0; i < kMR; ++i) {
      const float av = ak[i];
      for (Index j = 0; j < kNR; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (Index i = 0; i < mr; ++i) {
    float* crow = C + i * ldc;
    for (Index j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}
#endif

}  // namespace

void gemm_blocked(Index M, Index N, Index K, const float* A, Index lda,
                  const float* B, Index ldb, float* C, Index ldc) {
  if (M <= 0 || N <= 0 || K <= 0) return;
  // Packing scratch is reused across calls per thread (~632 KB once per
  // lane): small matmuls — attention's many [N, dh] panels — would
  // otherwise spend as long in the allocator as in the micro-kernel.
  static thread_local std::vector<float> packed_a(
      static_cast<std::size_t>(kMC * kKC));
  static thread_local std::vector<float> packed_b(
      static_cast<std::size_t>(kKC * kNC));
  for (Index jc = 0; jc < N; jc += kNC) {
    const Index nc = std::min(kNC, N - jc);
    for (Index pc = 0; pc < K; pc += kKC) {
      const Index kc = std::min(kKC, K - pc);
      pack_b(B + pc * ldb + jc, ldb, kc, nc, packed_b.data());
      for (Index ic = 0; ic < M; ic += kMC) {
        const Index mc = std::min(kMC, M - ic);
        pack_a(A + ic * lda + pc, lda, mc, kc, packed_a.data());
        for (Index jr = 0; jr < nc; jr += kNR) {
          const Index nr = std::min(kNR, nc - jr);
          const float* bp = packed_b.data() + (jr / kNR) * kKC * kNR;
          for (Index ir = 0; ir < mc; ir += kMR) {
            const Index mr = std::min(kMR, mc - ir);
            const float* ap = packed_a.data() + (ir / kMR) * kKC * kMR;
            micro_kernel(kc, ap, bp, C + (ic + ir) * ldc + jc + jr, ldc, mr,
                         nr);
          }
        }
      }
    }
  }
}

bool compiled_with_avx2() {
#if defined(DCHAG_GEMM_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace dchag::tensor::gemm
