// Strategy-agnostic training loops for the two paper applications. The
// same loop runs the single-GPU baseline and the SPMD D-CHAG model: the
// front-end's select_input() picks the rank's channel slice, masks/batches
// are derived from shared seeds so every rank sees identical data, and
// rank-local parameters train on purely local gradients (D-CHAG's design).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "comm/async.hpp"
#include "model/foundation.hpp"
#include "runtime/context.hpp"
#include "tensor/kernel_config.hpp"
#include "train/optim.hpp"

namespace dchag::train {

struct LoopConfig {
  tensor::Index steps = 50;
  tensor::Index batch = 4;
  float mask_ratio = 0.75f;  // MAE only
  AdamConfig adam{};
  std::uint64_t data_seed = 1234;
#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context kernel pin for the whole loop; overlays the kernels
  /// field of the loop's Context. SPMD rank threads used to pass
  /// kBlocked here so P ranks training side by side don't contend for
  /// the shared pool — express that as a runtime::Context argument (or
  /// an enclosing runtime::Scope) now. Unset = inherit.
  /// Deprecated: use ContextBuilder::kernels on the loop Context.
  std::optional<tensor::KernelConfig> kernels;
  /// Pre-Context comm pin for the whole loop; overlays the comm field of
  /// the loop's Context. sync is the parity oracle, async overlaps the
  /// D-CHAG gather with the next micro-chunk's compute. Every rank of an
  /// SPMD group must pass the same value. Unset = inherit.
  /// Deprecated: use ContextBuilder::comm on the loop Context.
  std::optional<comm::CommConfig> comm;
#endif
};

struct TrainCurve {
  std::vector<float> losses;

  [[nodiscard]] float final_loss() const { return losses.back(); }
  /// Mean of the last `k` losses (smooths step noise for comparisons).
  [[nodiscard]] float tail_mean(std::size_t k) const {
    k = std::min(k, losses.size());
    double s = 0;
    for (std::size_t i = losses.size() - k; i < losses.size(); ++i)
      s += losses[i];
    return static_cast<float>(s / static_cast<double>(k));
  }
};

/// Runs MAE pretraining. `next_batch(step)` must return the FULL-channel
/// image batch [B, C, H, W] and be deterministic in `step` so all ranks
/// agree. Masks derive from (data_seed, step).
///
/// `ctx` pins the loop's execution context (whole loop runs under a
/// runtime::Scope of it); nullopt = inherit the calling thread's
/// effective context. Every rank of an SPMD group must pass an
/// equivalent comm configuration.
[[nodiscard]] TrainCurve train_mae(
    model::MaeModel& mae, const LoopConfig& cfg,
    const std::function<tensor::Tensor(tensor::Index)>& next_batch,
    std::optional<runtime::Context> ctx = std::nullopt);

/// Runs forecast training; `next_pair(step)` returns (input, target) full
/// batches. `ctx` as in train_mae.
[[nodiscard]] TrainCurve train_forecast(
    model::ForecastModel& fm, const LoopConfig& cfg,
    const std::function<std::pair<tensor::Tensor, tensor::Tensor>(
        tensor::Index)>& next_pair,
    std::optional<runtime::Context> ctx = std::nullopt);

/// Per-channel test RMSE of a forecast model over `batches` evaluation
/// pairs (paper Fig. 12's Z500/T850/U10 metrics pick channels of this).
[[nodiscard]] std::vector<float> evaluate_forecast_rmse(
    const model::ForecastModel& fm, tensor::Index patch,
    const std::function<std::pair<tensor::Tensor, tensor::Tensor>(
        tensor::Index)>& next_pair,
    tensor::Index batches);

}  // namespace dchag::train
