#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/dispatch.hpp"
#include "tensor/gemm.hpp"

namespace dchag::tensor::ops {

namespace {

std::atomic<std::uint64_t> g_flops{0};

/// Minimum elements per chunk for elementwise/reduction fan-out; ranges
/// below 2x this run serial even on the parallel backend (fork/join would
/// cost more than the loop).
constexpr Index kEwGrain = kDispatchGrain;

/// Right-aligned broadcast strides: pad `s` to rank `out_rank` and zero the
/// stride of every broadcast dimension.
std::vector<Index> broadcast_strides(const Shape& s, const Shape& out) {
  const Index out_rank = out.rank();
  const Index pad = out_rank - s.rank();
  std::vector<Index> strides(static_cast<std::size_t>(out_rank), 0);
  for (Index d = 0; d < s.rank(); ++d) {
    const Index od = d + pad;
    if (s.dim(d) == out.dim(od)) {
      strides[static_cast<std::size_t>(od)] = s.stride(d);
    } else {
      DCHAG_CHECK(s.dim(d) == 1, "cannot broadcast " << s.to_string()
                                                     << " to "
                                                     << out.to_string());
      strides[static_cast<std::size_t>(od)] = 0;
    }
  }
  return strides;
}

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const Index rank = std::max(a.rank(), b.rank());
  std::vector<Index> dims(static_cast<std::size_t>(rank), 1);
  for (Index d = 0; d < rank; ++d) {
    const Index ad = d - (rank - a.rank());
    const Index bd = d - (rank - b.rank());
    const Index av = ad >= 0 ? a.dim(ad) : 1;
    const Index bv = bd >= 0 ? b.dim(bd) : 1;
    DCHAG_CHECK(av == bv || av == 1 || bv == 1,
                "incompatible broadcast " << a.to_string() << " vs "
                                          << b.to_string());
    dims[static_cast<std::size_t>(d)] = std::max(av, bv);
  }
  return Shape(std::move(dims));
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F&& f) {
  if (a.shape() == b.shape()) {  // fast path, no index math
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    dispatch_range(a.numel(), kEwGrain, [&](Index lo, Index hi) {
      for (Index i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  const auto sa = broadcast_strides(a.shape(), out_shape);
  const auto sb = broadcast_strides(b.shape(), out_shape);
  Tensor out(out_shape);
  const Index rank = out_shape.rank();
  std::vector<Index> idx(static_cast<std::size_t>(rank), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  Index oa = 0;
  Index ob = 0;
  const Index n = out_shape.numel();
  for (Index i = 0; i < n; ++i) {
    po[i] = f(pa[oa], pb[ob]);
    // odometer increment over the output index space
    for (Index d = rank - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      ++idx[ud];
      oa += sa[ud];
      ob += sb[ud];
      if (idx[ud] < out_shape.dim(d)) break;
      oa -= sa[ud] * out_shape.dim(d);
      ob -= sb[ud] * out_shape.dim(d);
      idx[ud] = 0;
    }
  }
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  dispatch_range(a.numel(), kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

// Shared scalar/row kernels: the standalone ops and the fused GEMM-tail
// epilogues both call these, which is what makes fused == unfused an
// identity at the bit level rather than a tolerance.

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

inline float gelu_scalar(float x) {
  return 0.5f * x * (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
}

/// One softmax row; orow may alias row (the fused in-place case).
inline void softmax_row(const float* row, float* orow, Index D) {
  float mx = row[0];
  for (Index j = 1; j < D; ++j) mx = std::max(mx, row[j]);
  float sum = 0.0f;
  for (Index j = 0; j < D; ++j) {
    orow[j] = std::exp(row[j] - mx);
    sum += orow[j];
  }
  const float inv = 1.0f / sum;
  for (Index j = 0; j < D; ++j) orow[j] *= inv;
}

/// One layernorm row; yrow may alias row. mean/rstd sinks are optional.
inline void ln_row(const float* row, float* yrow, Index D, const float* g,
                   const float* b, float eps, float* mean_out,
                   float* rstd_out) {
  float m = 0.0f;
  for (Index j = 0; j < D; ++j) m += row[j];
  m /= static_cast<float>(D);
  float v = 0.0f;
  for (Index j = 0; j < D; ++j) {
    const float d = row[j] - m;
    v += d * d;
  }
  v /= static_cast<float>(D);
  const float rs = 1.0f / std::sqrt(v + eps);
  if (mean_out != nullptr) *mean_out = m;
  if (rstd_out != nullptr) *rstd_out = rs;
  for (Index j = 0; j < D; ++j) yrow[j] = (row[j] - m) * rs * g[j] + b[j];
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, std::plus<float>());
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, std::minus<float>());
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, std::multiplies<float>());
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, std::divides<float>());
}

Tensor scale(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}
Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; });
}

bool broadcastable(const Shape& a, const Shape& b) {
  if (b.rank() > a.rank()) return false;
  for (Index d = 0; d < b.rank(); ++d) {
    const Index ad = a.rank() - b.rank() + d;
    if (b.dim(d) != a.dim(ad) && b.dim(d) != 1) return false;
  }
  return true;
}

Tensor reduce_to_shape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  // Reduce leading extra dims, then any interior broadcast (==1) dims.
  Tensor cur = t;
  while (cur.rank() > target.rank()) {
    // fold dim 0 into the rest by summation
    Tensor folded(cur.shape().without_dim(0));
    const Index n0 = cur.dim(0);
    const Index rest = folded.numel();
    const float* p = cur.data();
    float* o = folded.data();
    for (Index i = 0; i < n0; ++i)
      for (Index j = 0; j < rest; ++j) o[j] += p[i * rest + j];
    cur = folded;
  }
  for (Index d = 0; d < target.rank(); ++d) {
    if (cur.dim(d) != target.dim(d)) {
      DCHAG_CHECK(target.dim(d) == 1, "reduce_to_shape "
                                          << t.shape().to_string() << " -> "
                                          << target.to_string());
      Tensor summed = sum_dim(cur, d);
      // sum_dim removes the dim; re-insert it with extent 1
      auto dims = summed.shape().dims();
      dims.insert(dims.begin() + static_cast<std::ptrdiff_t>(d), 1);
      cur = summed.reshape(Shape(std::move(dims)));
    }
  }
  return cur;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DCHAG_CHECK(a.rank() >= 2 && b.rank() >= 2,
              "matmul ranks " << a.rank() << ", " << b.rank());
  const Index M = a.dim(-2);
  const Index K = a.dim(-1);
  const Index Kb = b.dim(-2);
  const Index N = b.dim(-1);
  DCHAG_CHECK(K == Kb, "matmul inner dims " << a.shape().to_string() << " x "
                                            << b.shape().to_string());
  const bool shared_b = b.rank() == 2 && a.rank() > 2;
  Index batch = 1;
  for (Index d = 0; d < a.rank() - 2; ++d) batch *= a.dim(d);
  if (!shared_b) {
    DCHAG_CHECK(a.rank() == b.rank(), "matmul batch rank mismatch");
    for (Index d = 0; d < a.rank() - 2; ++d)
      DCHAG_CHECK(a.dim(d) == b.dim(d), "matmul batch dims "
                                            << a.shape().to_string() << " x "
                                            << b.shape().to_string());
  }
  auto out_dims = a.shape().dims();
  out_dims.back() = N;
  Tensor out(Shape(std::move(out_dims)));

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const KernelConfig cfg = kernel_config();
  if (cfg.backend == KernelBackend::kNaive) {
    for (Index bi = 0; bi < batch; ++bi) {
      const float* A = pa + bi * M * K;
      const float* B = pb + (shared_b ? 0 : bi * K * N);
      float* C = po + bi * M * N;
      for (Index i = 0; i < M; ++i) {
        float* crow = C + i * N;
        for (Index k = 0; k < K; ++k) {
          const float av = A[i * K + k];
          if (av == 0.0f) continue;
          const float* brow = B + k * N;
          for (Index j = 0; j < N; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else {
    // Blocked GEMM over row strips of the flattened [batch*M] row space.
    // Strip boundaries never change any C element's accumulation order,
    // so kBlocked and kParallel are bit-identical at every lane count.
    auto run_rows = [&](Index r0, Index r1) {
      while (r0 < r1) {
        const Index bi = r0 / M;
        const Index i0 = r0 - bi * M;
        const Index rows = std::min(r1 - r0, M - i0);
        gemm::gemm_blocked(rows, N, K, pa + (bi * M + i0) * K, K,
                           pb + (shared_b ? 0 : bi * K * N), N,
                           po + (bi * M + i0) * N, N);
        r0 += rows;
      }
    };
    // Aim for strips of >= ~1 MFLOP so fork/join stays in the noise.
    const Index flops_per_row = 2 * N * K;
    const Index grain =
        std::max<Index>(1, (1 << 20) / std::max<Index>(1, flops_per_row));
    if (cfg.backend == KernelBackend::kParallel) {
      active_pool().parallel_for(batch * M, grain, run_rows, cfg.threads);
    } else {
      run_rows(0, batch * M);
    }
  }
  g_flops.fetch_add(
      static_cast<std::uint64_t>(2) * static_cast<std::uint64_t>(batch) *
          static_cast<std::uint64_t>(M) * static_cast<std::uint64_t>(N) *
          static_cast<std::uint64_t>(K),
      std::memory_order_relaxed);
  return out;
}

Tensor linear_fused(const Tensor& x, const Tensor& w,
                    const gemm::PackedB* packed, const LinearEpilogue& epi) {
  DCHAG_CHECK(x.rank() >= 2 && w.rank() == 2,
              "linear_fused ranks " << x.rank() << ", " << w.rank());
  const Index K = x.dim(-1);
  const Index N = w.dim(1);
  DCHAG_CHECK(w.dim(0) == K, "linear_fused inner dims "
                                 << x.shape().to_string() << " x "
                                 << w.shape().to_string());
  DCHAG_CHECK(packed == nullptr || packed->matches(K, N),
              "packed panels are for [" << (packed ? packed->K : 0) << ", "
                                        << (packed ? packed->N : 0)
                                        << "], weight is ["
                                        << K << ", " << N << "]");
  auto out_dims = x.shape().dims();
  out_dims.back() = N;
  Tensor out(Shape(std::move(out_dims)));
  const Index R = x.numel() / K;  // flattened row count

  if (epi.bias != nullptr)
    DCHAG_CHECK(epi.bias->shape() == Shape{N}, "fused bias must be [" << N
                                                                      << "]");
  if (epi.residual != nullptr)
    DCHAG_CHECK(epi.residual->shape() == out.shape(),
                "fused residual shape " << epi.residual->shape().to_string());
  const bool has_ln = epi.ln_gamma != nullptr;
  if (has_ln)
    DCHAG_CHECK(epi.ln_beta != nullptr &&
                    epi.ln_gamma->shape() == Shape{N} &&
                    epi.ln_beta->shape() == Shape{N},
                "fused layernorm gamma/beta must be [" << N << "]");

  const float* px = x.data();
  const float* pw = w.data();
  const float* pbias = epi.bias ? epi.bias->data() : nullptr;
  const float* pres = epi.residual ? epi.residual->data() : nullptr;
  const float* pg = has_ln ? epi.ln_gamma->data() : nullptr;
  const float* pb = has_ln ? epi.ln_beta->data() : nullptr;
  float* po = out.data();

  // Each stage repeats its standalone op's scalar code on a completed
  // row; residual order (value + residual) is the bitwise-equal mirror of
  // the unfused add(residual, value).
  auto epilogue_rows = [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r) {
      float* crow = po + r * N;
      if (pbias != nullptr)
        for (Index j = 0; j < N; ++j) crow[j] = crow[j] + pbias[j];
      if (epi.gelu)
        for (Index j = 0; j < N; ++j) crow[j] = gelu_scalar(crow[j]);
      if (pres != nullptr) {
        const float* rrow = pres + r * N;
        for (Index j = 0; j < N; ++j) crow[j] = crow[j] + rrow[j];
      }
      if (has_ln) ln_row(crow, crow, N, pg, pb, epi.ln_eps, nullptr, nullptr);
    }
  };

  const KernelConfig cfg = kernel_config();
  if (cfg.backend == KernelBackend::kNaive) {
    for (Index r = 0; r < R; ++r) {
      float* crow = po + r * N;
      const float* arow = px + r * K;
      for (Index k = 0; k < K; ++k) {
        const float av = arow[k];
        if (av == 0.0f) continue;
        const float* brow = pw + k * N;
        for (Index j = 0; j < N; ++j) crow[j] += av * brow[j];
      }
    }
    epilogue_rows(0, R);
  } else {
    const bool use_packed = packed != nullptr;
    auto run_rows = [&](Index r0, Index r1) {
      if (use_packed) {
        gemm::gemm_blocked_prepacked(r1 - r0, px + r0 * K, K, *packed,
                                     po + r0 * N, N);
      } else {
        gemm::gemm_blocked(r1 - r0, N, K, px + r0 * K, K, pw, N, po + r0 * N,
                           N);
      }
      epilogue_rows(r0, r1);
    };
    const Index flops_per_row = 2 * N * K;
    const Index grain =
        std::max<Index>(1, (1 << 20) / std::max<Index>(1, flops_per_row));
    if (cfg.backend == KernelBackend::kParallel) {
      active_pool().parallel_for(R, grain, run_rows, cfg.threads);
    } else {
      run_rows(0, R);
    }
  }
  g_flops.fetch_add(
      static_cast<std::uint64_t>(2) * static_cast<std::uint64_t>(R) *
          static_cast<std::uint64_t>(N) * static_cast<std::uint64_t>(K),
      std::memory_order_relaxed);
  return out;
}

Tensor matmul_scale_softmax(const Tensor& a, const Tensor& b, float s) {
  DCHAG_CHECK(a.rank() >= 2 && b.rank() >= 2,
              "matmul_scale_softmax ranks " << a.rank() << ", " << b.rank());
  const Index M = a.dim(-2);
  const Index K = a.dim(-1);
  const Index N = b.dim(-1);
  DCHAG_CHECK(K == b.dim(-2), "matmul_scale_softmax inner dims "
                                  << a.shape().to_string() << " x "
                                  << b.shape().to_string());
  const bool shared_b = b.rank() == 2 && a.rank() > 2;
  Index batch = 1;
  for (Index d = 0; d < a.rank() - 2; ++d) batch *= a.dim(d);
  if (!shared_b) {
    DCHAG_CHECK(a.rank() == b.rank(), "matmul_scale_softmax batch rank");
    for (Index d = 0; d < a.rank() - 2; ++d)
      DCHAG_CHECK(a.dim(d) == b.dim(d), "matmul_scale_softmax batch dims");
  }
  auto out_dims = a.shape().dims();
  out_dims.back() = N;
  Tensor out(Shape(std::move(out_dims)));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();

  // scale then softmax on a completed score row — the same scalar ops as
  // ops::scale + ops::softmax_lastdim, fused into the matmul's strips.
  auto epilogue_rows = [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r) {
      float* crow = po + r * N;
      for (Index j = 0; j < N; ++j) crow[j] = crow[j] * s;
      softmax_row(crow, crow, N);
    }
  };

  const KernelConfig cfg = kernel_config();
  if (cfg.backend == KernelBackend::kNaive) {
    for (Index bi = 0; bi < batch; ++bi) {
      const float* A = pa + bi * M * K;
      const float* B = pb + (shared_b ? 0 : bi * K * N);
      float* C = po + bi * M * N;
      for (Index i = 0; i < M; ++i) {
        float* crow = C + i * N;
        for (Index k = 0; k < K; ++k) {
          const float av = A[i * K + k];
          if (av == 0.0f) continue;
          const float* brow = B + k * N;
          for (Index j = 0; j < N; ++j) crow[j] += av * brow[j];
        }
      }
    }
    epilogue_rows(0, batch * M);
  } else {
    auto run_rows = [&](Index r0, Index r1) {
      Index r = r0;
      while (r < r1) {
        const Index bi = r / M;
        const Index i0 = r - bi * M;
        const Index rows = std::min(r1 - r, M - i0);
        gemm::gemm_blocked(rows, N, K, pa + (bi * M + i0) * K, K,
                           pb + (shared_b ? 0 : bi * K * N), N,
                           po + (bi * M + i0) * N, N);
        r += rows;
      }
      epilogue_rows(r0, r1);
    };
    const Index flops_per_row = 2 * N * K;
    const Index grain =
        std::max<Index>(1, (1 << 20) / std::max<Index>(1, flops_per_row));
    if (cfg.backend == KernelBackend::kParallel) {
      active_pool().parallel_for(batch * M, grain, run_rows, cfg.threads);
    } else {
      run_rows(0, batch * M);
    }
  }
  g_flops.fetch_add(
      static_cast<std::uint64_t>(2) * static_cast<std::uint64_t>(batch) *
          static_cast<std::uint64_t>(M) * static_cast<std::uint64_t>(N) *
          static_cast<std::uint64_t>(K),
      std::memory_order_relaxed);
  return out;
}

Tensor transpose_last2(const Tensor& a) {
  DCHAG_CHECK(a.rank() >= 2, "transpose_last2 rank " << a.rank());
  std::vector<Index> perm(static_cast<std::size_t>(a.rank()));
  for (Index d = 0; d < a.rank(); ++d) perm[static_cast<std::size_t>(d)] = d;
  std::swap(perm[static_cast<std::size_t>(a.rank() - 2)],
            perm[static_cast<std::size_t>(a.rank() - 1)]);
  return permute(a, perm);
}

Tensor permute(const Tensor& a, const std::vector<Index>& perm) {
  const Index rank = a.rank();
  DCHAG_CHECK(static_cast<Index>(perm.size()) == rank,
              "permute rank mismatch");
  std::vector<Index> out_dims(static_cast<std::size_t>(rank));
  std::vector<Index> src_strides(static_cast<std::size_t>(rank));
  std::vector<bool> seen(static_cast<std::size_t>(rank), false);
  for (Index d = 0; d < rank; ++d) {
    const Index s = perm[static_cast<std::size_t>(d)];
    DCHAG_CHECK(s >= 0 && s < rank && !seen[static_cast<std::size_t>(s)],
                "invalid permutation");
    seen[static_cast<std::size_t>(s)] = true;
    out_dims[static_cast<std::size_t>(d)] = a.dim(s);
    src_strides[static_cast<std::size_t>(d)] = a.shape().stride(s);
  }
  Shape out_shape{std::vector<Index>(out_dims)};
  Tensor out(out_shape);
  const float* p = a.data();
  float* o = out.data();
  std::vector<Index> idx(static_cast<std::size_t>(rank), 0);
  Index src = 0;
  const Index n = out_shape.numel();
  for (Index i = 0; i < n; ++i) {
    o[i] = p[src];
    for (Index d = rank - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      ++idx[ud];
      src += src_strides[ud];
      if (idx[ud] < out_dims[ud]) break;
      src -= src_strides[ud] * out_dims[ud];
      idx[ud] = 0;
    }
  }
  return out;
}

Tensor softmax_lastdim(const Tensor& a) {
  const Index D = a.dim(-1);
  const Index rows = a.numel() / D;
  Tensor out(a.shape());
  const float* p = a.data();
  float* o = out.data();
  dispatch_range(rows, std::max<Index>(1, kEwGrain / std::max<Index>(1, D)),
                 [&](Index lo, Index hi) {
                   for (Index r = lo; r < hi; ++r)
                     softmax_row(p + r * D, o + r * D, D);
                 });
  return out;
}

Tensor gelu(const Tensor& a) {
  return unary_op(a, [](float x) { return gelu_scalar(x); });
}

Tensor gelu_grad(const Tensor& a) {
  return unary_op(a, [](float x) {
    const float x3 = x * x * x;
    const float u = kGeluC * (x + 0.044715f * x3);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
  });
}

Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}

LayerNormResult layernorm(const Tensor& a, const Tensor& gamma,
                          const Tensor& beta, float eps) {
  const Index D = a.dim(-1);
  DCHAG_CHECK(gamma.shape() == Shape{D} && beta.shape() == Shape{D},
              "layernorm gamma/beta must be [" << D << "]");
  const Index rows = a.numel() / D;
  LayerNormResult r{Tensor(a.shape()), Tensor(a.shape().without_dim(-1)),
                    Tensor(a.shape().without_dim(-1))};
  const float* p = a.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* y = r.y.data();
  float* mean = r.mean.data();
  float* rstd = r.rstd.data();
  dispatch_range(rows, std::max<Index>(1, kEwGrain / std::max<Index>(1, D)),
                 [&](Index lo, Index hi) {
                   for (Index i = lo; i < hi; ++i)
                     ln_row(p + i * D, y + i * D, D, g, b, eps, mean + i,
                            rstd + i);
                 });
  return r;
}

Tensor layernorm_value(const Tensor& a, const Tensor& gamma,
                       const Tensor& beta, float eps) {
  const Index D = a.dim(-1);
  DCHAG_CHECK(gamma.shape() == Shape{D} && beta.shape() == Shape{D},
              "layernorm gamma/beta must be [" << D << "]");
  const Index rows = a.numel() / D;
  Tensor y(a.shape());
  const float* p = a.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* py = y.data();
  dispatch_range(rows, std::max<Index>(1, kEwGrain / std::max<Index>(1, D)),
                 [&](Index lo, Index hi) {
                   for (Index i = lo; i < hi; ++i)
                     ln_row(p + i * D, py + i * D, D, g, b, eps, nullptr,
                            nullptr);
                 });
  return y;
}

Tensor concat(std::span<const Tensor> ts, Index dim) {
  DCHAG_CHECK(!ts.empty(), "concat of zero tensors");
  const Index rank = ts[0].rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  Index total = 0;
  for (const Tensor& t : ts) {
    DCHAG_CHECK(t.rank() == rank, "concat rank mismatch");
    for (Index k = 0; k < rank; ++k) {
      if (k != d)
        DCHAG_CHECK(t.dim(k) == ts[0].dim(k),
                    "concat dim mismatch at " << k << ": "
                                              << t.shape().to_string());
    }
    total += t.dim(d);
  }
  Shape out_shape = ts[0].shape().with_dim(d, total);
  Tensor out(out_shape);
  Index outer = 1;
  for (Index k = 0; k < d; ++k) outer *= out_shape.dim(k);
  const Index inner = out_shape.stride(d);
  float* po = out.data();
  const Index out_block = total * inner;
  Index off = 0;
  for (const Tensor& t : ts) {
    const Index blk = t.dim(d) * inner;
    const float* p = t.data();
    for (Index i = 0; i < outer; ++i) {
      std::memcpy(po + i * out_block + off, p + i * blk,
                  static_cast<std::size_t>(blk) * sizeof(float));
    }
    off += blk;
  }
  return out;
}

Tensor slice(const Tensor& a, Index dim, Index start, Index len) {
  const Index rank = a.rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  DCHAG_CHECK(start >= 0 && len >= 0 && start + len <= a.dim(d),
              "slice(" << d << ", " << start << ", " << len << ") on "
                       << a.shape().to_string());
  Shape out_shape = a.shape().with_dim(d, len);
  Tensor out(out_shape);
  Index outer = 1;
  for (Index k = 0; k < d; ++k) outer *= a.dim(k);
  const Index inner = a.shape().stride(d);
  const Index in_block = a.dim(d) * inner;
  const Index out_block = len * inner;
  const float* p = a.data();
  float* po = out.data();
  for (Index i = 0; i < outer; ++i) {
    std::memcpy(po + i * out_block, p + i * in_block + start * inner,
                static_cast<std::size_t>(out_block) * sizeof(float));
  }
  return out;
}

void add_slice_inplace(Tensor& dst, const Tensor& src, Index dim,
                       Index start) {
  const Index rank = dst.rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  DCHAG_CHECK(src.rank() == rank, "add_slice rank mismatch");
  DCHAG_CHECK(start + src.dim(d) <= dst.dim(d), "add_slice out of range");
  Index outer = 1;
  for (Index k = 0; k < d; ++k) outer *= dst.dim(k);
  const Index inner = dst.shape().stride(d);
  const Index dst_block = dst.dim(d) * inner;
  const Index src_block = src.dim(d) * inner;
  const float* p = src.data();
  float* po = dst.data();
  for (Index i = 0; i < outer; ++i) {
    float* drow = po + i * dst_block + start * inner;
    const float* srow = p + i * src_block;
    for (Index j = 0; j < src_block; ++j) drow[j] += srow[j];
  }
}

Tensor sum_all(const Tensor& a) {
  double s = 0.0;  // accumulate in double: loss sums over many elements
  for (float x : a.span()) s += x;
  return Tensor::scalar(static_cast<float>(s));
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor sum_dim(const Tensor& a, Index dim) {
  const Index rank = a.rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  Shape out_shape = a.shape().without_dim(d);
  Tensor out(out_shape);
  Index outer = 1;
  for (Index k = 0; k < d; ++k) outer *= a.dim(k);
  const Index nd = a.dim(d);
  const Index inner = a.shape().stride(d);
  const float* p = a.data();
  float* po = out.data();
  // Fan out over whichever loop is actually wide: `outer` collapses to 1
  // for dim-0 reductions (the broadcast-gradient case), so split the
  // inner (kept-column) range instead there. Either split preserves each
  // output element's k-ascending accumulation order.
  const Index outer_grain =
      std::max<Index>(1, kEwGrain / std::max<Index>(1, nd * inner));
  if (outer >= 2 * outer_grain) {
    dispatch_range(outer, outer_grain, [&](Index lo, Index hi) {
      for (Index i = lo; i < hi; ++i) {
        const float* blk = p + i * nd * inner;
        float* orow = po + i * inner;
        for (Index k = 0; k < nd; ++k) {
          const float* srow = blk + k * inner;
          for (Index j = 0; j < inner; ++j) orow[j] += srow[j];
        }
      }
    });
  } else {
    const Index col_grain = std::max<Index>(1, kEwGrain / std::max<Index>(1, nd));
    dispatch_range(inner, col_grain, [&](Index jlo, Index jhi) {
      for (Index i = 0; i < outer; ++i) {
        const float* blk = p + i * nd * inner;
        float* orow = po + i * inner;
        for (Index k = 0; k < nd; ++k) {
          const float* srow = blk + k * inner;
          for (Index j = jlo; j < jhi; ++j) orow[j] += srow[j];
        }
      }
    });
  }
  return out;
}

Tensor mean_dim(const Tensor& a, Index dim) {
  const Index d = dim >= 0 ? dim : dim + a.rank();
  return scale(sum_dim(a, d), 1.0f / static_cast<float>(a.dim(d)));
}

Tensor expand_dim(const Tensor& a, Index dim, Index n) {
  const Index rank = a.rank() + 1;
  const Index d = dim >= 0 ? dim : dim + rank;
  auto dims = a.shape().dims();
  dims.insert(dims.begin() + static_cast<std::ptrdiff_t>(d), n);
  Shape out_shape{std::vector<Index>(dims)};
  Tensor out(out_shape);
  Index outer = 1;
  for (Index k = 0; k < d; ++k) outer *= a.dim(k);
  const Index inner = a.numel() / outer;
  const float* p = a.data();
  float* po = out.data();
  for (Index i = 0; i < outer; ++i) {
    for (Index k = 0; k < n; ++k) {
      std::memcpy(po + (i * n + k) * inner, p + i * inner,
                  static_cast<std::size_t>(inner) * sizeof(float));
    }
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  DCHAG_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch "
                                          << a.shape().to_string() << " vs "
                                          << b.shape().to_string());
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i) {
    const float diff = std::abs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::abs(pb[i])) return false;
  }
  return true;
}

std::uint64_t flops_executed() {
  return g_flops.load(std::memory_order_relaxed);
}
void reset_flops() { g_flops.store(0, std::memory_order_relaxed); }

}  // namespace dchag::tensor::ops
