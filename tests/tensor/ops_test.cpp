#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace dchag::tensor::ops {
namespace {

Tensor t2x3() { return Tensor::from_data(Shape{2, 3}, {1, 2, 3, 4, 5, 6}); }

TEST(ElementwiseOps, AddSameShape) {
  Tensor c = add(t2x3(), t2x3());
  EXPECT_EQ(c.at({1, 2}), 12.0f);
}

TEST(ElementwiseOps, SubMulDiv) {
  Tensor a = t2x3();
  EXPECT_EQ(sub(a, a).at({1, 1}), 0.0f);
  EXPECT_EQ(mul(a, a).at({1, 0}), 16.0f);
  EXPECT_EQ(div(a, a).at({0, 2}), 1.0f);
}

TEST(ElementwiseOps, BroadcastBiasOverLastDim) {
  Tensor bias = Tensor::from_data(Shape{3}, {10, 20, 30});
  Tensor c = add(t2x3(), bias);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(ElementwiseOps, BroadcastScalarTensor) {
  Tensor c = mul(t2x3(), Tensor::scalar(2.0f));
  EXPECT_EQ(c.at({1, 2}), 12.0f);
}

TEST(ElementwiseOps, BroadcastInteriorDim) {
  // [2,1,3] * [2,2,3]: middle dim broadcast
  Tensor a = Tensor::from_data(Shape{2, 1, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{2, 2, 3}, 1.0f);
  Tensor c = mul(b, a);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 3}));
  EXPECT_EQ(c.at({0, 0, 1}), 2.0f);
  EXPECT_EQ(c.at({0, 1, 1}), 2.0f);
  EXPECT_EQ(c.at({1, 1, 2}), 6.0f);
}

TEST(ElementwiseOps, IncompatibleBroadcastThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 4});
  EXPECT_THROW(add(a, b), Error);
}

TEST(ElementwiseOps, ScaleAndNeg) {
  EXPECT_EQ(scale(t2x3(), 0.5f).at({1, 2}), 3.0f);
  EXPECT_EQ(neg(t2x3()).at({0, 0}), -1.0f);
  EXPECT_EQ(add_scalar(t2x3(), 1.0f).at({0, 0}), 2.0f);
}

TEST(ReduceToShape, FoldsLeadingAndInteriorDims) {
  Tensor g(Shape{4, 2, 3}, 1.0f);
  Tensor r = reduce_to_shape(g, Shape{3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r.at({0}), 8.0f);
  Tensor r2 = reduce_to_shape(g, Shape{2, 3});
  EXPECT_EQ(r2.at({1, 2}), 4.0f);
  Tensor r3 = reduce_to_shape(g, Shape{4, 1, 3});
  EXPECT_EQ(r3.at({0, 0, 0}), 2.0f);
}

TEST(Matmul, Simple2D) {
  Tensor a = Tensor::from_data(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Matmul, BatchedEqualRanks) {
  Rng rng(1);
  Tensor a = rng.normal_tensor(Shape{4, 2, 3});
  Tensor b = rng.normal_tensor(Shape{4, 3, 5});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{4, 2, 5}));
  // Spot-check batch 2 against 2D matmul of the slices.
  Tensor a2 = slice(a, 0, 2, 1).reshape(Shape{2, 3});
  Tensor b2 = slice(b, 0, 2, 1).reshape(Shape{3, 5});
  Tensor c2 = matmul(a2, b2);
  Tensor c_slice = slice(c, 0, 2, 1).reshape(Shape{2, 5});
  EXPECT_LT(max_abs_diff(c2, c_slice), 1e-5f);
}

TEST(Matmul, SharedRhsBroadcastsOverBatch) {
  Rng rng(2);
  Tensor a = rng.normal_tensor(Shape{4, 2, 3});
  Tensor w = rng.normal_tensor(Shape{3, 5});
  Tensor c = matmul(a, w);
  EXPECT_EQ(c.shape(), (Shape{4, 2, 5}));
  Tensor a0 = slice(a, 0, 0, 1).reshape(Shape{2, 3});
  EXPECT_LT(max_abs_diff(matmul(a0, w),
                         slice(c, 0, 0, 1).reshape(Shape{2, 5})),
            1e-5f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(Shape{2, 3}), Tensor(Shape{4, 2})), Error);
}

TEST(Matmul, FlopLedgerCounts) {
  reset_flops();
  (void)matmul(Tensor(Shape{2, 3}), Tensor(Shape{3, 5}));
  EXPECT_EQ(flops_executed(), 2ull * 2 * 5 * 3);
  (void)matmul(Tensor(Shape{4, 2, 3}), Tensor(Shape{4, 3, 5}));
  EXPECT_EQ(flops_executed(), 2ull * 2 * 5 * 3 + 4ull * 2 * 2 * 5 * 3);
}

TEST(Permute, TransposeLast2) {
  Tensor a = t2x3();
  Tensor b = transpose_last2(a);
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.at({2, 1}), 6.0f);
  EXPECT_EQ(b.at({0, 1}), 4.0f);
}

TEST(Permute, Rank4AttentionLayout) {
  // [B, S, h, dh] -> [B, h, S, dh], the reshape used by attention.
  Rng rng(3);
  Tensor a = rng.normal_tensor(Shape{2, 4, 3, 5});
  Tensor b = permute(a, {0, 2, 1, 3});
  EXPECT_EQ(b.shape(), (Shape{2, 3, 4, 5}));
  EXPECT_EQ(b.at({1, 2, 3, 4}), a.at({1, 3, 2, 4}));
  // Inverse permutation restores the original.
  Tensor c = permute(b, {0, 2, 1, 3});
  EXPECT_LT(max_abs_diff(a, c), 0.0f + 1e-7f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  Tensor a = rng.normal_tensor(Shape{5, 7});
  Tensor y = softmax_lastdim(a);
  for (Index i = 0; i < 5; ++i) {
    float s = 0.0f;
    for (Index j = 0; j < 7; ++j) s += y.at({i, j});
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor a = Tensor::from_data(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = softmax_lastdim(a);
  EXPECT_NEAR(y.at({0, 0}), 1.0f / 3.0f, 1e-5f);
}

TEST(Gelu, KnownValues) {
  Tensor a = Tensor::from_data(Shape{3}, {0.0f, 1.0f, -1.0f});
  Tensor y = gelu(a);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at({1}), 0.8412f, 1e-3f);
  EXPECT_NEAR(y.at({2}), -0.1588f, 1e-3f);
}

TEST(Gelu, GradMatchesFiniteDifference) {
  Rng rng(5);
  Tensor x = rng.normal_tensor(Shape{32});
  Tensor g = gelu_grad(x);
  const float eps = 1e-3f;
  for (Index i = 0; i < x.numel(); ++i) {
    Tensor up = x.clone();
    up.data()[i] += eps;
    Tensor dn = x.clone();
    dn.data()[i] -= eps;
    const float fd = (gelu(up).data()[i] - gelu(dn).data()[i]) / (2 * eps);
    EXPECT_NEAR(g.data()[i], fd, 1e-3f);
  }
}

TEST(LayerNorm, NormalisesRows) {
  Rng rng(6);
  Tensor a = rng.normal_tensor(Shape{4, 16}, 3.0f, 2.0f);
  Tensor gamma(Shape{16}, 1.0f);
  Tensor beta(Shape{16}, 0.0f);
  auto r = layernorm(a, gamma, beta);
  for (Index i = 0; i < 4; ++i) {
    float m = 0.0f;
    for (Index j = 0; j < 16; ++j) m += r.y.at({i, j});
    EXPECT_NEAR(m / 16.0f, 0.0f, 1e-5f);
    float v = 0.0f;
    for (Index j = 0; j < 16; ++j) v += r.y.at({i, j}) * r.y.at({i, j});
    EXPECT_NEAR(v / 16.0f, 1.0f, 1e-3f);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  Tensor a = Tensor::from_data(Shape{1, 2}, {0.0f, 2.0f});
  Tensor gamma(Shape{2}, 2.0f);
  Tensor beta(Shape{2}, 5.0f);
  auto r = layernorm(a, gamma, beta);
  EXPECT_NEAR(r.y.at({0, 0}), 5.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(r.y.at({0, 1}), 5.0f + 2.0f, 1e-3f);
}

TEST(ConcatSlice, RoundTripDim0) {
  Tensor a(Shape{2, 3}, 1.0f);
  Tensor b(Shape{1, 3}, 2.0f);
  std::vector<Tensor> parts{a, b};
  Tensor c = concat(parts, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 3}));
  EXPECT_EQ(c.at({2, 0}), 2.0f);
  EXPECT_LT(max_abs_diff(slice(c, 0, 0, 2), a), 1e-7f);
  EXPECT_LT(max_abs_diff(slice(c, 0, 2, 1), b), 1e-7f);
}

TEST(ConcatSlice, MiddleDim) {
  Rng rng(7);
  Tensor a = rng.normal_tensor(Shape{2, 3, 4});
  Tensor b = rng.normal_tensor(Shape{2, 2, 4});
  std::vector<Tensor> parts{a, b};
  Tensor c = concat(parts, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 5, 4}));
  EXPECT_LT(max_abs_diff(slice(c, 1, 0, 3), a), 1e-7f);
  EXPECT_LT(max_abs_diff(slice(c, 1, 3, 2), b), 1e-7f);
}

TEST(ConcatSlice, NegativeDimIndex) {
  Tensor a(Shape{2, 3}, 1.0f);
  std::vector<Tensor> parts{a, a};
  Tensor c = concat(parts, -1);
  EXPECT_EQ(c.shape(), (Shape{2, 6}));
}

TEST(ConcatSlice, MismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{3, 3});
  std::vector<Tensor> parts{a, b};
  EXPECT_THROW(concat(parts, 1), Error);
}

TEST(AddSliceInplace, AccumulatesIntoRegion) {
  Tensor dst(Shape{2, 4}, 1.0f);
  Tensor src(Shape{2, 2}, 3.0f);
  add_slice_inplace(dst, src, 1, 1);
  EXPECT_EQ(dst.at({0, 0}), 1.0f);
  EXPECT_EQ(dst.at({0, 1}), 4.0f);
  EXPECT_EQ(dst.at({0, 2}), 4.0f);
  EXPECT_EQ(dst.at({0, 3}), 1.0f);
}

TEST(Reductions, SumMeanAll) {
  EXPECT_EQ(sum_all(t2x3()).item(), 21.0f);
  EXPECT_EQ(mean_all(t2x3()).item(), 3.5f);
}

TEST(Reductions, SumDimMiddle) {
  Tensor a = Tensor::from_data(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = sum_dim(a, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 4.0f);   // 1+3
  EXPECT_EQ(s.at({1, 1}), 14.0f);  // 6+8
}

TEST(Reductions, MeanDimLast) {
  Tensor m = mean_dim(t2x3(), -1);
  EXPECT_EQ(m.shape(), (Shape{2}));
  EXPECT_EQ(m.at({0}), 2.0f);
  EXPECT_EQ(m.at({1}), 5.0f);
}

TEST(Reductions, ExpandDimInverseOfSum) {
  Tensor a = Tensor::from_data(Shape{2}, {1, 2});
  Tensor e = expand_dim(a, 1, 3);
  EXPECT_EQ(e.shape(), (Shape{2, 3}));
  EXPECT_EQ(e.at({0, 2}), 1.0f);
  EXPECT_EQ(e.at({1, 0}), 2.0f);
  Tensor e0 = expand_dim(a, 0, 4);
  EXPECT_EQ(e0.shape(), (Shape{4, 2}));
  EXPECT_EQ(e0.at({3, 1}), 2.0f);
}

TEST(Compare, AllcloseAndMaxAbsDiff) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b(Shape{3}, 1.0f);
  b.data()[1] = 1.00001f;
  EXPECT_TRUE(allclose(a, b));
  b.data()[1] = 2.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace dchag::tensor::ops
