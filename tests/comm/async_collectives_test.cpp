// Non-blocking collectives: ICollective futures must deliver exactly the
// blocking results, tolerate many in-flight ops and out-of-order waits,
// and surface per-op failures at wait() — under quiet and faulty worlds.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/async.hpp"
#include "comm/fault.hpp"

namespace dchag::comm {
namespace {

std::vector<float> iota_data(int rank, std::size_t n) {
  std::vector<float> d(n);
  std::iota(d.begin(), d.end(), static_cast<float>(rank) * 100.0f);
  return d;
}

TEST(AsyncCollectives, AllOpsMatchBlockingResults) {
  World world(4);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    const int P = comm.size();
    const std::size_t n = 12;

    // Blocking reference results on the parent communicator.
    std::vector<float> ref_reduce = iota_data(comm.rank(), n);
    comm.all_reduce(ref_reduce);
    std::vector<float> ref_gather(n * static_cast<std::size_t>(P));
    comm.all_gather(iota_data(comm.rank(), n), ref_gather);
    std::vector<float> big =
        iota_data(comm.rank(), n * static_cast<std::size_t>(P));
    std::vector<float> ref_scatter(n);
    comm.reduce_scatter(big, ref_scatter);
    std::vector<float> ref_bcast = iota_data(2, n);

    std::vector<float> a = iota_data(comm.rank(), n);
    std::vector<float> g_send = iota_data(comm.rank(), n);
    std::vector<float> g(n * static_cast<std::size_t>(P));
    std::vector<float> s_send = big;
    std::vector<float> s(n);
    std::vector<float> b =
        comm.rank() == 2 ? iota_data(2, n) : std::vector<float>(n, -1.0f);

    CommFuture fa = async.iall_reduce(a);
    CommFuture fg = async.iall_gather(g_send, g);
    CommFuture fs = async.ireduce_scatter(s_send, s);
    CommFuture fb = async.ibroadcast(b, /*root=*/2);
    fa.wait();
    fg.wait();
    fs.wait();
    fb.wait();

    ASSERT_EQ(a, ref_reduce);
    ASSERT_EQ(g, ref_gather);
    ASSERT_EQ(s, ref_scatter);
    ASSERT_EQ(b, ref_bcast);
  });
}

TEST(AsyncCollectives, ManyInFlightWaitedOutOfOrder) {
  World world(3);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    constexpr int kOps = 8;
    std::vector<std::vector<float>> bufs;
    bufs.reserve(kOps);
    std::vector<CommFuture> futs;
    for (int i = 0; i < kOps; ++i) {
      bufs.push_back({static_cast<float>(comm.rank() + i), 1.0f});
      futs.push_back(async.iall_reduce(bufs.back()));
    }
    // Waiting newest-first must still observe every op's exact result:
    // completion is FIFO internally, wait order is the caller's business.
    for (int i = kOps - 1; i >= 0; --i) {
      futs[static_cast<std::size_t>(i)].wait();
      ASSERT_EQ(bufs[static_cast<std::size_t>(i)][0],
                3.0f + 3.0f * static_cast<float>(i));
      ASSERT_EQ(bufs[static_cast<std::size_t>(i)][1], 3.0f);
    }
    ASSERT_EQ(async.in_flight(), 0u);
    ASSERT_EQ(async.stats().calls_of(CollectiveKind::kAllReduce),
              static_cast<std::uint64_t>(kOps));
  });
}

TEST(AsyncCollectives, SyncCollectiveIsEagerAndBitIdenticalToAsync) {
  World world(4);
  world.run([](Communicator& comm) {
    SyncCollective sync(comm);
    AsyncCommunicator async(comm);
    std::vector<float> via_sync = iota_data(comm.rank(), 33);
    std::vector<float> via_async = via_sync;
    CommFuture fs = sync.iall_reduce(via_sync);
    ASSERT_TRUE(fs.ready());  // the oracle completes at issue time
    fs.wait();
    CommFuture fa = async.iall_reduce(via_async);
    fa.wait();
    for (std::size_t i = 0; i < via_sync.size(); ++i)
      ASSERT_EQ(via_sync[i], via_async[i]);
  });
}

TEST(AsyncCollectives, OpFailureSurfacesAtWaitAndLaneKeepsServing) {
  World world(2);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    std::vector<float> send(4);
    std::vector<float> recv(5);  // wrong: must be send * P = 8 on all ranks
    CommFuture bad = async.iall_gather(send, recv);
    EXPECT_THROW(bad.wait(), Error);
    // The failed op never reached a rendezvous (it threw validating its
    // arguments), so the shadow group is intact and later ops still work.
    std::vector<float> ok{static_cast<float>(comm.rank())};
    CommFuture good = async.iall_reduce(ok);
    good.wait();
    ASSERT_EQ(ok[0], 1.0f);
  });
}

TEST(AsyncCollectives, DrainQuiescesWithoutConsumingFutures) {
  World world(2);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    std::vector<float> a{static_cast<float>(comm.rank()), 2.0f};
    std::vector<float> b{3.0f, static_cast<float>(comm.rank())};
    CommFuture fa = async.iall_reduce(a);
    CommFuture fb = async.iall_reduce(b);
    async.drain();
    ASSERT_EQ(async.in_flight(), 0u);
    ASSERT_TRUE(fa.ready());
    ASSERT_TRUE(fb.ready());
    fa.wait();
    fb.wait();
    ASSERT_EQ(a[0], 1.0f);
    ASSERT_EQ(b[1], 1.0f);
  });
}

TEST(AsyncCollectives, ExactUnderFaultyWorldSchedules) {
  FaultSpec spec;
  spec.seed = 99;
  spec.min_edge_delay_us = 1;
  spec.max_edge_delay_us = 200;
  spec.drop_prob = 0.4;
  spec.retry_backoff_us = 20;
  spec.max_completion_jitter_us = 150;
  FaultyWorld world(4, spec);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    for (int round = 0; round < 4; ++round) {
      std::vector<float> d{static_cast<float>(comm.rank() + round), 7.0f};
      CommFuture f = async.iall_reduce(d);
      f.wait();
      ASSERT_EQ(d[0], 6.0f + 4.0f * static_cast<float>(round));
      ASSERT_EQ(d[1], 28.0f);
    }
  });
  // The plan must actually have fired (delays and/or retries injected) —
  // otherwise this test exercises nothing.
  ASSERT_GT(world.plan().injections(), 0u);
  ASSERT_GT(world.plan().injected_delay_us(), 0u);
}

}  // namespace
}  // namespace dchag::comm
