// The serving memory plan's kernel-level contracts:
//  * gemm_blocked_prepacked is bit-identical to gemm_blocked (same packed
//    panels, same loop order) on every shape the block/offset bookkeeping
//    could mishandle, and the packed storage is 32-byte aligned;
//  * the fused epilogue ops (linear_fused, matmul_scale_softmax,
//    layernorm_value) are bit-identical to the unfused op chains they
//    replace, on every backend;
//  * the Arena reuses buffers (zero heap allocations once warm), zeroes
//    them on acquire, and buffers outlive the arena itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"
#include "tensor/rng.hpp"

namespace dchag::tensor {
namespace {

namespace ops = tensor::ops;

const bool kForceLanes = [] {
  setenv("DCHAG_THREADS", "4", /*overwrite=*/1);
  return true;
}();

runtime::ContextPatch backend_patch(KernelBackend b) {
  return runtime::ContextPatch::with_kernels({b, 0});
}

/// gemm_blocked vs gemm_blocked_prepacked on raw buffers, plus a naive
/// k-ascending oracle with a scaled-input 1e-5 bound.
void expect_prepacked_parity(Index M, Index N, Index K, std::uint64_t seed) {
  const float s = 1.0f / std::sqrt(std::max<float>(1.0f, static_cast<float>(K)));
  Rng rng(seed);
  Tensor a = rng.normal_tensor(Shape{M, K}, 0.0f, s);
  Tensor b = rng.normal_tensor(Shape{K, N}, 0.0f, s);
  Tensor c_blocked(Shape{M, N});
  Tensor c_packed(Shape{M, N});
  gemm::gemm_blocked(M, N, K, a.data(), K, b.data(), N,
                     c_blocked.data(), N);
  gemm::PackedB pb = gemm::pack_b_matrix(b.data(), K, N, N);
  EXPECT_TRUE(pb.matches(K, N));
  EXPECT_TRUE(is_aligned(pb.data.data()));
  gemm::gemm_blocked_prepacked(M, a.data(), K, pb, c_packed.data(),
                               N);
  EXPECT_EQ(ops::max_abs_diff(c_blocked, c_packed), 0.0f)
      << "prepacked drifted from per-call packing at M=" << M << " N=" << N
      << " K=" << K;

  // Naive oracle: strictly k-ascending accumulation per element.
  Tensor c_ref(Shape{M, N});
  float* cr = c_ref.data();
  for (Index i = 0; i < M; ++i)
    for (Index k = 0; k < K; ++k) {
      const float av = a.data()[i * K + k];
      for (Index j = 0; j < N; ++j) cr[i * N + j] += av * b.data()[k * N + j];
    }
  EXPECT_LE(ops::max_abs_diff(c_ref, c_packed), 1e-5f);
}

TEST(GemmPrepacked, TileAlignedSingleBlock) {
  expect_prepacked_parity(120, 512, 256, 1);
  expect_prepacked_parity(6, 16, 256, 2);
}

TEST(GemmPrepacked, MultiBlockWithEdges) {
  // N spans two NC blocks plus an edge, K spans three KC blocks with an
  // edge: the offset table must step by the exact per-block panel count.
  expect_prepacked_parity(250, 1040, 600, 3);
  // Edge jc block narrower than one NR panel.
  expect_prepacked_parity(37, 513, 257, 4);
}

TEST(GemmPrepacked, OddShapesOffTileBoundaries) {
  expect_prepacked_parity(1, 1, 1, 5);
  expect_prepacked_parity(37, 29, 53, 6);
  expect_prepacked_parity(7, 17, 300, 7);
  expect_prepacked_parity(121, 15, 511, 8);
}

TEST(GemmPrepacked, PackMatchesRejectsOtherShapes) {
  Rng rng(9);
  Tensor b = rng.normal_tensor(Shape{8, 8});
  gemm::PackedB pb = gemm::pack_b_matrix(b.data(), 8, 8, 8);
  EXPECT_TRUE(pb.matches(8, 8));
  EXPECT_FALSE(pb.matches(8, 16));
  EXPECT_FALSE(pb.matches(16, 8));
}

// ----- fused epilogues -------------------------------------------------------

/// linear_fused (packed and per-call) vs the unfused op chain for a given
/// epilogue, bitwise, on the active backend.
void expect_fused_linear_parity(const Shape& x_shape, Index N,
                                std::uint64_t seed) {
  const Index K = x_shape.dim(-1);
  Rng rng(seed);
  const float s = 1.0f / std::sqrt(static_cast<float>(K));
  Tensor x = rng.normal_tensor(x_shape, 0.0f, s);
  Tensor w = rng.normal_tensor(Shape{K, N}, 0.0f, s);
  Tensor bias = rng.normal_tensor(Shape{N});
  Tensor gamma = rng.normal_tensor(Shape{N}, 1.0f, 0.1f);
  Tensor beta = rng.normal_tensor(Shape{N}, 0.0f, 0.1f);
  gemm::PackedB pb = gemm::pack_b_matrix(w.data(), K, N, N);

  Tensor base = ops::add(ops::matmul(x, w), bias);
  Tensor residual = rng.normal_tensor(base.shape(), 0.0f, s);

  ops::LinearEpilogue bias_only;
  bias_only.bias = &bias;
  ops::LinearEpilogue bias_gelu = bias_only;
  bias_gelu.gelu = true;
  ops::LinearEpilogue bias_res = bias_only;
  bias_res.residual = &residual;
  ops::LinearEpilogue full = bias_res;
  full.ln_gamma = &gamma;
  full.ln_beta = &beta;

  for (const gemm::PackedB* packed : {&pb, static_cast<gemm::PackedB*>(nullptr)}) {
    EXPECT_EQ(ops::max_abs_diff(ops::linear_fused(x, w, packed, bias_only),
                                base),
              0.0f);
    EXPECT_EQ(ops::max_abs_diff(ops::linear_fused(x, w, packed, bias_gelu),
                                ops::gelu(base)),
              0.0f);
    EXPECT_EQ(ops::max_abs_diff(ops::linear_fused(x, w, packed, bias_res),
                                ops::add(residual, base)),
              0.0f);
    EXPECT_EQ(
        ops::max_abs_diff(ops::linear_fused(x, w, packed, full),
                          ops::layernorm(ops::add(residual, base), gamma,
                                         beta)
                              .y),
        0.0f);
  }
}

TEST(FusedEpilogues, LinearBitIdenticalAcrossBackends) {
  for (KernelBackend b : {KernelBackend::kNaive, KernelBackend::kBlocked,
                          KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(b));
    expect_fused_linear_parity(Shape{33, 24}, 40, 11);
    expect_fused_linear_parity(Shape{2, 7, 19, 24}, 16, 12);  // flat rows
    expect_fused_linear_parity(Shape{1, 24}, 24, 13);
  }
}

TEST(FusedEpilogues, MatmulScaleSoftmaxBitIdenticalAcrossBackends) {
  Rng rng(14);
  Tensor a = rng.normal_tensor(Shape{2, 3, 9, 8}, 0.0f, 0.35f);
  Tensor bt = rng.normal_tensor(Shape{2, 3, 8, 13}, 0.0f, 0.35f);
  Tensor b2 = rng.normal_tensor(Shape{8, 13}, 0.0f, 0.35f);  // shared B
  const float s = 1.0f / std::sqrt(8.0f);
  for (KernelBackend b : {KernelBackend::kNaive, KernelBackend::kBlocked,
                          KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(b));
    EXPECT_EQ(
        ops::max_abs_diff(ops::matmul_scale_softmax(a, bt, s),
                          ops::softmax_lastdim(ops::scale(ops::matmul(a, bt),
                                                          s))),
        0.0f);
    EXPECT_EQ(
        ops::max_abs_diff(ops::matmul_scale_softmax(a, b2, s),
                          ops::softmax_lastdim(ops::scale(ops::matmul(a, b2),
                                                          s))),
        0.0f);
  }
}

TEST(FusedEpilogues, LayernormValueMatchesLayernormY) {
  Rng rng(15);
  Tensor x = rng.normal_tensor(Shape{257, 48});
  Tensor gamma = rng.normal_tensor(Shape{48}, 1.0f, 0.1f);
  Tensor beta = rng.normal_tensor(Shape{48}, 0.0f, 0.1f);
  for (KernelBackend b : {KernelBackend::kNaive, KernelBackend::kBlocked,
                          KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(b));
    EXPECT_EQ(ops::max_abs_diff(ops::layernorm_value(x, gamma, beta),
                                ops::layernorm(x, gamma, beta).y),
              0.0f);
  }
}

// ----- arena -----------------------------------------------------------------

TEST(Arena, ReusesReleasedBuffersAndCounts) {
  plan::Arena arena;
  const std::uint64_t before = plan::thread_buffer_allocations();
  {
    auto b1 = arena.acquire(64);
    EXPECT_TRUE(is_aligned(b1->data()));
    (*b1)[0] = 42.0f;
  }  // parked
  EXPECT_EQ(plan::thread_buffer_allocations() - before, 1u);
  auto b2 = arena.acquire(64);  // pool hit, zeroed
  EXPECT_EQ(plan::thread_buffer_allocations() - before, 1u);
  EXPECT_EQ((*b2)[0], 0.0f);
  auto b3 = arena.acquire(64);  // b2 still held: fresh
  EXPECT_EQ(plan::thread_buffer_allocations() - before, 2u);
  const plan::Arena::Stats s = arena.stats();
  EXPECT_EQ(s.fresh, 2u);
  EXPECT_EQ(s.reused, 1u);
  (void)b3;
}

TEST(Arena, BuffersOutliveTheArena) {
  std::shared_ptr<AlignedVec> escaped;
  {
    plan::Arena arena;
    escaped = arena.acquire(16);
  }
  (*escaped)[15] = 1.0f;  // state kept alive by the deleter
  escaped.reset();        // parks into the orphaned pool, then frees
}

TEST(Arena, ScopeRoutesTensorsAndSteadyStateAllocatesNothing) {
  plan::Arena arena;
  const Shape shape{13, 7};
  auto forward = [&] {
    // A miniature "request": a few op-sized temporaries plus a result.
    Tensor a(shape, 0.5f);
    Tensor b(shape, 0.25f);
    return ops::add(ops::mul(a, b), a);
  };
  Tensor result;
  {
    plan::ArenaScope scope(arena);
    result = forward();  // warm-up populates the pool
    result = forward();  // previous result's buffer returns mid-steady
    const std::uint64_t before = plan::thread_buffer_allocations();
    result = forward();
    EXPECT_EQ(plan::thread_buffer_allocations() - before, 0u)
        << "steady-state forward touched the heap";
  }
  EXPECT_GT(arena.stats().reused, 0u);
  // Outside the scope, construction is plain counted heap allocation.
  const std::uint64_t before = plan::thread_buffer_allocations();
  Tensor t(shape);
  EXPECT_EQ(plan::thread_buffer_allocations() - before, 1u);
}

}  // namespace
}  // namespace dchag::tensor
