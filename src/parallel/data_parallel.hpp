// Data-parallel gradient synchronisation (paper §2.2): one AllReduce per
// parameter gradient at the end of the backward pass; no communication in
// the forward pass.
#pragma once

#include "parallel/collective_ops.hpp"

namespace dchag::parallel {

/// Averages the gradients of `params` across the DP group in place.
/// Parameters without gradients are skipped symmetrically, so ranks must
/// run identical graphs (standard DP contract).
inline void all_reduce_gradients(std::span<const Variable> params,
                                 Communicator& comm) {
  for (const Variable& p : params) {
    if (!p.requires_grad()) continue;
    DCHAG_CHECK(p.has_grad(), "all_reduce_gradients: parameter '"
                                  << p.name() << "' has no gradient");
    tensor::Tensor g = p.node()->grad;  // aliases grad storage
    comm.all_reduce(g.span(), comm::ReduceOp::kAvg);
  }
}

/// True iff every parameter VALUE is identical across the group — the
/// replica-consistency invariant DP training must maintain.
inline bool parameters_in_sync(std::span<const Variable> params,
                               Communicator& comm, float tol = 0.0f) {
  bool ok = true;
  for (const Variable& p : params) {
    ok = is_replicated(p.value(), comm, tol) && ok;
  }
  return ok;
}

}  // namespace dchag::parallel
