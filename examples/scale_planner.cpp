// Capacity-planning CLI: for a model preset, channel count and GPU
// budget, enumerate every feasible (TP, FSDP, DP) x D-CHAG configuration
// on Frontier and rank them by predicted sustained throughput — the §6.2
// decision procedure as a tool.
//
// Usage: scale_planner [model] [channels] [gpus]
//        scale_planner 7B 500 16
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"

using namespace dchag;

int main(int argc, char** argv) {
  core::PlanRequest req;
  req.cfg = hw::ModelConfig::preset(argc > 1 ? argv[1] : "7B");
  req.channels = argc > 2 ? std::atoll(argv[2]) : 500;
  req.gpus = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf("planning %s with %lld channels on %d Frontier GPUs (%d "
              "nodes)\n\n",
              req.cfg.name.c_str(), static_cast<long long>(req.channels),
              req.gpus, (req.gpus + 7) / 8);

  auto plans = core::Planner::enumerate(req);
  if (plans.empty()) {
    std::printf("no feasible configuration — not even batch 1 fits.\n");
    return 1;
  }
  std::sort(plans.begin(), plans.end(),
            [](const core::Plan& a, const core::Plan& b) {
              return a.throughput_per_node() > b.throughput_per_node();
            });

  std::printf("%-4s %-34s %7s %9s %13s %10s\n", "#", "configuration",
              "batch", "mem(GB)", "TFLOPs/node", "comm(ms)");
  const std::size_t show = std::min<std::size_t>(plans.size(), 12);
  for (std::size_t i = 0; i < show; ++i) {
    const core::Plan& p = plans[i];
    char config[64];
    std::snprintf(config, sizeof(config), "tp=%d fsdp=%d dp=%d %s",
                  p.layout.tp, p.layout.fsdp, p.layout.dp,
                  p.dchag.enabled
                      ? (std::string("D-CHAG-") +
                         model::to_string(p.dchag.kind) + "-Tree" +
                         std::to_string(p.dchag.tree_units <= 1
                                            ? 0
                                            : p.dchag.tree_units))
                            .c_str()
                      : "baseline");
    std::printf("%-4zu %-34s %7lld %9.1f %13.1f %10.2f\n", i + 1, config,
                static_cast<long long>(p.batch_per_gpu),
                p.memory.total_gb(), p.step.sustained_tflops_per_node,
                1e3 * p.step.comm_s());
  }
  if (plans.size() > show)
    std::printf("... and %zu more feasible configurations\n",
                plans.size() - show);

  const core::Plan& best = plans.front();
  std::printf("\nrecommended: %s\n", best.describe().c_str());
  std::printf("memory breakdown: tokenizer %.1f GB | aggregation %.1f GB | "
              "transformer %.1f GB | activations %.1f GB\n",
              best.memory.tokenizer_state_gb,
              best.memory.aggregation_state_gb,
              best.memory.transformer_state_gb,
              best.memory.input_act_gb + best.memory.tokenizer_act_gb +
                  best.memory.aggregation_act_gb +
                  best.memory.gather_act_gb +
                  best.memory.transformer_act_gb);
  return 0;
}
