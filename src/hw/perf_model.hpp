// End-to-end training-step estimator: combines the FLOP model, the
// efficiency spec, and the communication cost model into step time and
// sustained TFLOPs — the quantities the paper's Figs. 6, 13, 15 and 16
// report. "Sustained" counts only the logical model FLOPs (redundant
// recomputation, e.g. baseline TP tokenizing every channel on every rank,
// burns time but earns no credit), matching how the paper computes
// TFLOPs/sec from model FLOPs and wall clock.
#pragma once

#include "hw/comm_model.hpp"
#include "hw/flop_model.hpp"
#include "hw/memory_model.hpp"

namespace dchag::hw {

struct StepEstimate {
  double compute_s = 0;      ///< per-GPU executed compute time
  double tp_comm_s = 0;      ///< Megatron-style per-block collectives
  double frontend_comm_s = 0;  ///< dist-tok / D-CHAG AllGather
  double fsdp_comm_s = 0;
  double dp_comm_s = 0;
  double step_s = 0;

  double useful_tflop_per_step = 0;  ///< logical fwd+bwd, global batch
  double sustained_tflops_per_gpu = 0;
  double sustained_tflops_per_node = 0;

  [[nodiscard]] double comm_s() const {
    return tp_comm_s + frontend_comm_s + fsdp_comm_s + dp_comm_s;
  }
};

[[nodiscard]] StepEstimate estimate_step(const ModelConfig& cfg,
                                         const Workload& w,
                                         const ParallelLayout& layout,
                                         const DchagSpec& dchag,
                                         const MachineSpec& machine);

}  // namespace dchag::hw
