// Figure 13: per-GPU gains of D-CHAG+TP over TP alone for 7B, 15B and 26B
// models, in the regime where TP is necessary. The paper's bands: 7B
// -L +30/70% and -C +10/60%, 15B >20/50%, 26B 10-30%; gains grow with the
// channel count and shrink with model size. Batch 26 (see EXPERIMENTS.md).
#include <map>

#include "bench_util.hpp"
#include "hw/perf_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using model::AggLayerKind;
}  // namespace

int main() {
  bench::header("Figure 13",
                "D-CHAG+TP vs TP alone across model sizes (batch 26)");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  struct Case {
    const char* preset;
    Index channels;
    int tp;  // fixed GPU budget at which TP is necessary
  };
  const Case cases[] = {{"7B", 256, 16},  {"7B", 512, 16},
                        {"15B", 128, 16}, {"15B", 256, 16},
                        {"26B", 64, 16},  {"26B", 128, 16}};

  // gains[preset][channels][kind] = memory gain %
  std::map<std::string, std::map<Index, std::map<char, double>>> gains;

  std::printf("%6s %5s %4s | %10s | %16s %16s\n", "model", "ch", "tp",
              "base(GB)", "gain -L (mem%)", "gain -C (mem%)");
  for (const Case& c : cases) {
    const ModelConfig cfg = ModelConfig::preset(c.preset);
    Workload w{26, c.channels, true};
    const auto base = estimate_memory(cfg, w, {c.tp, 1, 1}, DchagSpec::off());
    const bool base_fits = fits(base, frontier);
    double gl = 0;
    double gc = 0;
    for (AggLayerKind kind :
         {AggLayerKind::kLinear, AggLayerKind::kCrossAttention}) {
      const auto d =
          estimate_memory(cfg, w, {c.tp, 1, 1}, DchagSpec::tree(1, kind));
      const double gain =
          100.0 * (base.total_gb() - d.total_gb()) / base.total_gb();
      (kind == AggLayerKind::kLinear ? gl : gc) = gain;
      gains[c.preset][c.channels][kind == AggLayerKind::kLinear ? 'L' : 'C'] =
          gain;
    }
    std::printf("%6s %5lld %4d | %9.1f%s | %+15.1f%% %+15.1f%%\n", c.preset,
                static_cast<long long>(c.channels), c.tp, base.total_gb(),
                base_fits ? " " : "*", gl, gc);
  }
  std::printf("(* = baseline exceeds GCD memory at this configuration)\n");

  // Ordering claims from the paper.
  checks.expect(gains["7B"][512]['L'] > gains["7B"][512]['C'],
                "7B: linear partial layers beat cross-attention");
  checks.expect(gains["7B"][512]['L'] > gains["7B"][256]['L'],
                "7B: gains grow with the channel count");
  checks.expect(gains["15B"][256]['L'] > gains["15B"][128]['L'],
                "15B: gains grow with the channel count");
  checks.expect(gains["26B"][128]['L'] > gains["26B"][64]['L'],
                "26B: gains grow with the channel count");
  checks.expect(gains["7B"][256]['L'] > gains["15B"][128]['L'] - 5.0 &&
                    gains["15B"][128]['L'] > gains["26B"][64]['L'],
                "gains shrink as the transformer grows (7B > 15B > 26B)");
  checks.expect(gains["7B"][512]['L'] >= 50.0 &&
                    gains["7B"][512]['L'] <= 85.0,
                "7B/512ch -L gain in the paper's high band (~70%)");
  checks.expect(gains["26B"][64]['L'] >= 8.0 &&
                    gains["26B"][64]['L'] <= 40.0,
                "26B gain in the paper's 10-30% band");
  return checks.report();
}
