// Compute/comm overlap bench: end-to-end D-CHAG forward, sync oracle vs
// async pipeline, at 8 ranks under simulated per-edge link latency
// (FaultyWorld). The link delay is CALIBRATED to the machine: one quiet
// sync run measures per-chunk compute, and every edge then gets exactly
// that latency — the regime the paper targets, where communication and
// compute are comparable and overlap decides throughput. Emits
// BENCH_overlap.json in Google-Benchmark JSON so
// scripts/bench_compare.py --speedup can gate the ratio in CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "comm/fault.hpp"
#include "core/dchag_frontend.hpp"

using namespace dchag;

namespace {

constexpr int kRanks = 8;
constexpr tensor::Index kChannels = 8;
constexpr tensor::Index kBatch = 16;
constexpr int kChunks = 8;
constexpr int kReps = 3;

model::ModelConfig bench_config() {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  cfg.image_h = 32;  // S = 64 with patch 4: enough tree/attention work per
  cfg.image_w = 32;  // chunk for overlap to have something to hide behind
  return cfg;
}

core::DchagOptions options() {
  return core::DchagOptions{/*tree_units=*/1, model::AggLayerKind::kLinear};
}

/// Per-mode execution context: kBlocked kernels (the P rank threads are
/// the parallelism) + the pipelined comm config under test.
runtime::Context bench_context(comm::CommMode mode) {
  return runtime::ContextBuilder()
      .kernel_backend(tensor::KernelBackend::kBlocked)
      .comm(comm::CommConfig{mode, kChunks})
      .build();
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median per-forward wall ms across kReps timed forwards (after one
/// warmup), measured on rank 0 between barriers. `out` (optional)
/// receives rank 0's last forward output for bit-comparisons.
template <typename WorldT>
double measure_forward_ms(WorldT& world, comm::CommMode mode,
                          tensor::Tensor* out) {
  std::vector<double> reps;
  world.run([&](comm::Communicator& comm) {
    autograd::NoGradGuard no_grad;
    tensor::Rng master(2024);
    core::DchagFrontEnd fe(bench_config(), kChannels, comm, options(),
                           master, bench_context(mode));
    tensor::Tensor img = tensor::Rng(7).normal_tensor(
        tensor::Shape{kBatch, kChannels, 32, 32});
    tensor::Tensor local = fe.slice_local_channels(img);
    (void)fe.forward(local);  // warmup (lazy async lane, allocator)
    for (int r = 0; r < kReps; ++r) {
      comm.barrier();
      const double t0 = now_ms();
      autograd::Variable y = fe.forward(local);
      comm.barrier();
      if (comm.rank() == 0) {
        reps.push_back(now_ms() - t0);
        if (out && r == kReps - 1) *out = y.value().clone();
      }
    }
  });
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

/// Degraded-world forward: 6 of 8 ranks regroup as survivors (the elastic
/// recovery path in serve/spmd_engine) and serve the surviving channel
/// subset through the rebound front-end, under the same injected link
/// latency. Median per-forward wall ms on rank 0.
template <typename WorldT>
double measure_degraded_ms(WorldT& world, comm::CommMode mode) {
  constexpr int kAlive = 6;
  std::vector<double> reps;
  world.run([&](comm::Communicator& comm) {
    autograd::NoGradGuard no_grad;
    tensor::Rng master(2024);
    core::DchagFrontEnd fe(bench_config(), kChannels, comm, options(),
                           master, bench_context(mode));
    if (comm.rank() >= kAlive) return;  // the casualties
    std::vector<int> alive(kAlive);
    for (int r = 0; r < kAlive; ++r) alive[r] = r;
    comm::Communicator surv = comm.split_survivors(alive, "bench-degraded");
    fe.rebind(surv, alive);
    tensor::Tensor img = tensor::Rng(7).normal_tensor(
        tensor::Shape{kBatch, kChannels, 32, 32});
    // c_local = 1 at 8 ranks: survivors own channels [0, kAlive).
    tensor::Tensor sub = tensor::ops::slice(img, 1, 0, kAlive);
    std::vector<tensor::Index> chans(kAlive);
    for (int c = 0; c < kAlive; ++c) chans[c] = c;
    (void)fe.forward_subset(sub, chans);  // warmup
    for (int r = 0; r < kReps; ++r) {
      surv.barrier();
      const double t0 = now_ms();
      (void)fe.forward_subset(sub, chans);
      surv.barrier();
      if (comm.rank() == 0) reps.push_back(now_ms() - t0);
    }
  });
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

}  // namespace

int main() {
  bench::header("comm_overlap",
                "async non-blocking collectives: D-CHAG forward overlap at "
                "8 ranks under simulated link latency");

  // Calibrate: quiet-world sync forward -> per-chunk compute time. Each
  // simulated edge gets that as its latency, clamped to a sane range.
  comm::World quiet(kRanks);
  const double quiet_ms = measure_forward_ms(quiet, comm::CommMode::kSync,
                                             nullptr);
  const auto edge_us = static_cast<std::uint32_t>(std::clamp(
      quiet_ms * 1000.0 / kChunks, 100.0, 20000.0));
  bench::section("calibration");
  std::printf("quiet sync forward: %.2f ms -> per-edge latency %u us\n",
              quiet_ms, edge_us);

  comm::FaultSpec spec;
  spec.seed = 1;
  spec.min_edge_delay_us = edge_us;
  spec.max_edge_delay_us = edge_us;
  comm::FaultyWorld faulty(kRanks, spec);

  tensor::Tensor sync_out, async_out;
  const double sync_ms =
      measure_forward_ms(faulty, comm::CommMode::kSync, &sync_out);
  const double async_ms =
      measure_forward_ms(faulty, comm::CommMode::kAsync, &async_out);
  const double speedup = sync_ms / async_ms;
  const double degraded_ms =
      measure_degraded_ms(faulty, comm::CommMode::kSync);
  const double degraded_tp = sync_ms / degraded_ms;

  bench::section("8-rank forward under per-edge latency");
  std::printf("%8s %14s %14s\n", "mode", "forward ms", "speedup");
  std::printf("%8s %14.2f %14s\n", "sync", sync_ms, "1.00x");
  std::printf("%8s %14.2f %13.2fx\n", "async", async_ms, speedup);
  std::printf("%8s %14.2f %13.2fx\n", "degraded", degraded_ms, degraded_tp);

  const float diff = tensor::ops::max_abs_diff(sync_out, async_out);

  std::ofstream json("BENCH_overlap.json");
  json << "{\n  \"context\": {\"bench\": \"comm_overlap\", \"ranks\": "
       << kRanks << ", \"chunks\": " << kChunks
       << ", \"edge_latency_us\": " << edge_us << "},\n"
       << "  \"benchmarks\": [\n"
       << "    {\"name\": \"BM_DchagForward/ranks:8/mode:sync\", "
          "\"run_type\": \"iteration\", \"real_time\": "
       << sync_ms << ", \"time_unit\": \"ms\"},\n"
       << "    {\"name\": \"BM_DchagForward/ranks:8/mode:async\", "
          "\"run_type\": \"iteration\", \"real_time\": "
       << async_ms << ", \"time_unit\": \"ms\"},\n"
       << "    {\"name\": \"BM_DchagForward/ranks:8/mode:degraded\", "
          "\"run_type\": \"iteration\", \"real_time\": "
       << degraded_ms << ", \"time_unit\": \"ms\"}\n"
       << "  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_overlap.json\n");

  bench::ShapeChecks checks;
  checks.expect(diff == 0.0f,
                "async pipelined forward is bit-identical to the sync "
                "oracle under the injected schedule");
  checks.expect(speedup >= 1.3,
                "overlap hides calibrated link latency: async >= 1.3x "
                "faster than sync at 8 ranks");
  checks.expect(async_ms < sync_ms,
                "async never loses to sync when latency ~ compute");
  checks.expect(degraded_tp >= 0.5,
                "degraded serving (6/8 survivors on surviving channels) "
                "keeps >= 0.5x healthy throughput");
  return checks.report();
}
