// Pins the analytic memory model to the feasibility statements the paper
// makes in prose. Each test cites the claim it reproduces; per-figure
// batch sizes are the workload knobs recorded in EXPERIMENTS.md (the paper
// does not state batch sizes for its performance experiments).
#include <gtest/gtest.h>

#include "hw/memory_model.hpp"

namespace dchag::hw {
namespace {

const MachineSpec kFrontier = MachineSpec::frontier();

// Workload batches per experiment family (see EXPERIMENTS.md).
constexpr Index kFig6Batch = 15;    // single-GPU component study
constexpr Index kFig7Batch = 21;    // 1.7B TP study (Figs. 7-9)
constexpr Index kFig13Batch = 26;   // 7B/15B/26B scale study (Figs. 13-14)

bool fits_single_gpu(const char* preset, Index channels) {
  Workload w{kFig6Batch, channels, /*checkpoint_vit=*/true};
  return fits(estimate_memory(ModelConfig::preset(preset), w, {1, 1, 1},
                              DchagSpec::off()),
              kFrontier);
}

// ----- Fig. 6: single-GPU channel capacity ------------------------------------

TEST(CalibrationFig6, Model100MHandles512Not1024) {
  // "The 100M-parameter model can handle up to 512 channels"
  EXPECT_TRUE(fits_single_gpu("100M", 512));
  EXPECT_FALSE(fits_single_gpu("100M", 1024));
}

TEST(CalibrationFig6, Model1BHandles256Not512) {
  // "...while the 1B and 3B models can handle 256 and 128 channels"
  EXPECT_TRUE(fits_single_gpu("1B", 256));
  EXPECT_FALSE(fits_single_gpu("1B", 512));
}

TEST(CalibrationFig6, Model3BHandles128Not256) {
  EXPECT_TRUE(fits_single_gpu("3B", 128));
  EXPECT_FALSE(fits_single_gpu("3B", 256));
}

// ----- §4.3 / Fig. 7: TP feasibility boundaries -------------------------------

TEST(CalibrationFig7, Model17BNeeds2GpusFor512Channels) {
  // "for the 1.7B parameter model, two GPUs are required to fit images
  //  with 512 input channels"
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w{kFig7Batch, 512, true};
  EXPECT_EQ(min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16), 2);
}

TEST(CalibrationFig7, Model17BNeedsFullNodeFor1024Channels) {
  // "...while a full Frontier node is needed to fit images with 1024
  //  channels using TP"
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w{kFig7Batch, 1024, true};
  EXPECT_EQ(min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16), 8);
}

TEST(CalibrationFig7, Model7BNeedsHalfNodeFor256Channels) {
  // "for the 7B parameter model, images with 256 channels can fit on half
  //  of a Frontier node"
  ModelConfig cfg = ModelConfig::preset("7B");
  Workload w{kFig13Batch, 256, true};
  EXPECT_EQ(min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16), 4);
}

TEST(CalibrationFig7, Model7BNeedsTwoNodesFor512Channels) {
  // "...while two Frontier nodes are required to fit images with 512
  //  channels"
  ModelConfig cfg = ModelConfig::preset("7B");
  Workload w{kFig13Batch, 512, true};
  EXPECT_EQ(min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16), 16);
}

TEST(CalibrationFig7, TokenizationAndAggregationDominateMemory) {
  // "tokenization and channel aggregation account from 50% to 90% of the
  //  memory usage when the number of channels is large"
  ModelConfig cfg = ModelConfig::preset("1.7B");
  for (Index c : {512, 1024}) {
    Workload w{kFig7Batch, c, true};
    const int tp = min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16);
    ASSERT_GT(tp, 0);
    const auto m = estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off());
    EXPECT_GE(m.token_agg_fraction(), 0.5) << "channels=" << c;
    // The paper quotes "50% to 90%"; our model lands slightly above at the
    // 1024-channel extreme (93%) — see EXPERIMENTS.md.
    EXPECT_LE(m.token_agg_fraction(), 0.95) << "channels=" << c;
  }
}

// ----- §4.3 / §6.1: FSDP-only feasibility frontier ----------------------------

bool fits_fsdp(const char* preset, Index channels, int shards, Index batch) {
  Workload w{batch, channels, true};
  return fits(estimate_memory(ModelConfig::preset(preset), w,
                              {1, shards, 1}, DchagSpec::off()),
              kFrontier);
}

TEST(CalibrationFsdp, Model17BWith256ChannelsOnTwoGpus) {
  // "we can use FSDP to train a 1.7B parameter model with up to 256
  //  channels on two GPUs"
  EXPECT_TRUE(fits_fsdp("1.7B", 256, 2, kFig7Batch));
}

TEST(CalibrationFsdp, Model7BWith128ChannelsOnOneNode) {
  // "...or a 7B parameter model with 128 channels on a single node";
  // §6.1: "we can't fit 256 channels for the same model size"
  EXPECT_TRUE(fits_fsdp("7B", 128, 8, kFig13Batch));
  EXPECT_FALSE(fits_fsdp("7B", 256, 8, kFig13Batch));
}

TEST(CalibrationFsdp, Model15BWith64ChannelsOnOneNode) {
  // §6.1: "On a single Frontier node, we can only fit a 15B parameter
  //  model with up to 64 channels"
  EXPECT_TRUE(fits_fsdp("15B", 64, 8, kFig13Batch));
  EXPECT_FALSE(fits_fsdp("15B", 128, 8, kFig13Batch));
}

TEST(CalibrationFsdp, Model26BDoesNotFitOnOneNode) {
  // §6.1: "...while we can't fit a 26B parameter model on a single node at
  //  all" (any realistic channel count)
  EXPECT_FALSE(fits_fsdp("26B", 64, 8, kFig13Batch));
  EXPECT_FALSE(fits_fsdp("26B", 128, 8, kFig13Batch));
}

// ----- Fig. 14: 26B with 256 channels ------------------------------------------

TEST(CalibrationFig14, TpAloneCannotRun26BWith256Channels) {
  // "the baseline is the TP method alone, which isn't able to run the
  //  full model" — across the two-node GPU budget the figure sweeps.
  ModelConfig cfg = ModelConfig::preset("26B");
  Workload w{kFig13Batch, 256, true};
  for (int tp : {2, 4, 8, 16}) {
    EXPECT_FALSE(
        fits(estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off()),
             kFrontier))
        << "tp=" << tp;
  }
}

TEST(CalibrationFig14, DchagFits26BWith512ChannelsUnder80Percent) {
  // "when using the D-CHAG method, we can fit a 26B parameter model with
  //  512 channels, utilizing less than 80% of the available memory"
  ModelConfig cfg = ModelConfig::preset("26B");
  Workload w{kFig13Batch, 512, true};
  const auto m = estimate_memory(
      cfg, w, {16, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear));
  EXPECT_LE(m.total_gb(), 0.8 * kFrontier.gpu.mem_gb);
}

TEST(CalibrationFig14, DchagTokAggMemoryGrowsWithRanks) {
  // "as we use more ranks, the layers from the D-CHAG method increase,
  //  leading to a larger model size" (linear, not quadratic)
  ModelConfig cfg = ModelConfig::preset("26B");
  Workload w{kFig13Batch, 256, true};
  double prev = 0;
  for (int tp : {8, 16, 32}) {
    const auto m = estimate_memory(cfg, w, {tp, 1, 1},
                                   DchagSpec::tree(1, AggLayerKind::kLinear));
    const double gather_final = m.gather_act_gb;
    EXPECT_GT(gather_final, prev) << "tp=" << tp;
    prev = gather_final;
  }
}

// ----- Conclusion: headline memory-reduction claim ----------------------------

TEST(CalibrationHeadline, DchagCutsMemoryUpTo70PercentOrMore) {
  // Abstract/§1: "up to a 75% reduction in memory usage" / "up to 70%".
  // At the 1.7B/512-channel minimum-TP point the reduction sits in the
  // paper's band; at the 1024-channel extreme our model overshoots
  // slightly (~86% vs the paper's "up to 75%") — see EXPERIMENTS.md.
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w512{kFig7Batch, 512, true};
  const auto base512 =
      estimate_memory(cfg, w512, {2, 1, 1}, DchagSpec::off());
  const auto d512 = estimate_memory(
      cfg, w512, {2, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear));
  const double reduction512 = 1.0 - d512.total_gb() / base512.total_gb();
  EXPECT_GE(reduction512, 0.5);
  EXPECT_LE(reduction512, 0.85);

  Workload w1024{kFig7Batch, 1024, true};
  const auto base1024 =
      estimate_memory(cfg, w1024, {8, 1, 1}, DchagSpec::off());
  const auto d1024 = estimate_memory(
      cfg, w1024, {8, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear));
  EXPECT_GE(1.0 - d1024.total_gb() / base1024.total_gb(), 0.7);
}

}  // namespace
}  // namespace dchag::hw
