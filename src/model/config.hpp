// Architecture description shared by the executable layers (model/, core/)
// and the analytic hardware model (hw/). The parameter-count formulas here
// are validated against the executable modules' actual parameter counts in
// tests/model/config_test.cpp, so the at-scale memory projections rest on
// audited arithmetic.
#pragma once

#include <string>
#include <string_view>

#include "tensor/shape.hpp"

namespace dchag::model {

using tensor::Index;

/// How the channel-aggregation cross-attention forms its queries.
///
/// kChannelTokens: the channel tokens attend over themselves (C queries x
/// C keys) and the attended output is mean-pooled to one representation.
/// Memory is quadratic in C — this matches the paper's complexity
/// statements (§2.1, §3.2) and is the default.
///
/// kLearnedQuery: one learned query per spatial location (ClimaX-style);
/// memory is linear in C. Provided as an ablation (bench/ablation_aggregation).
enum class QueryMode { kChannelTokens, kLearnedQuery };

/// Layer type used inside the partial-channel aggregation module.
/// The final aggregation shared across ranks is always cross-attention
/// (paper §3.3); this only selects the local tree's layers:
/// -C (cross-attention) vs -L (linear), per the paper's naming.
enum class AggLayerKind { kCrossAttention, kLinear };

[[nodiscard]] inline const char* to_string(AggLayerKind k) {
  return k == AggLayerKind::kCrossAttention ? "C" : "L";
}

struct ModelConfig {
  std::string name = "custom";
  Index embed_dim = 64;
  Index num_layers = 2;
  Index num_heads = 4;
  Index mlp_ratio = 4;
  Index patch_size = 16;
  Index image_h = 224;
  Index image_w = 224;
  QueryMode query_mode = QueryMode::kChannelTokens;

  [[nodiscard]] Index seq_len() const {
    return (image_h / patch_size) * (image_w / patch_size);
  }
  [[nodiscard]] Index head_dim() const { return embed_dim / num_heads; }

  void validate() const {
    DCHAG_CHECK(embed_dim > 0 && num_layers > 0 && num_heads > 0,
                "invalid model dims");
    DCHAG_CHECK(embed_dim % num_heads == 0,
                "embed_dim " << embed_dim << " not divisible by heads "
                             << num_heads);
    DCHAG_CHECK(image_h % patch_size == 0 && image_w % patch_size == 0,
                "image " << image_h << "x" << image_w
                         << " not divisible by patch " << patch_size);
  }

  // ----- analytic parameter counts (validated against executable layers) ---

  /// Per-channel patch embedding (p^2 x D weight + D bias per channel),
  /// one channel-ID embedding per channel, plus one shared positional
  /// embedding over the sequence.
  [[nodiscard]] Index tokenizer_params(Index channels) const {
    const Index p2 = patch_size * patch_size;
    return channels * (p2 * embed_dim + embed_dim)  // per-channel embed
           + channels * embed_dim                   // channel-ID embeddings
           + seq_len() * embed_dim;                 // positional embedding
  }

  /// One aggregation unit reducing `width` channel tokens to one.
  [[nodiscard]] Index aggregator_params(AggLayerKind kind,
                                        Index width) const {
    const Index d = embed_dim;
    if (kind == AggLayerKind::kCrossAttention) {
      // Wq, Wk, Wv, Wo (d x d each + bias) + pre-LN (+ learned query).
      Index p = 4 * (d * d + d) + 2 * d;
      if (query_mode == QueryMode::kLearnedQuery) p += d;
      return p;
    }
    // Linear unit: learned channel-combine weights + output projection + LN.
    return width + (d * d + d) + 2 * d;
  }

  /// Standard pre-LN transformer blocks: attention (4 d^2) + MLP
  /// (2 * mlp_ratio * d^2) + biases + two LayerNorms per block, plus the
  /// final encoder LayerNorm.
  [[nodiscard]] Index transformer_params() const {
    const Index d = embed_dim;
    const Index per_block = 4 * (d * d + d)                        // attn
                            + (d * (mlp_ratio * d) + mlp_ratio * d)  // mlp up
                            + (mlp_ratio * d * d + d)                // mlp down
                            + 4 * d;                                 // 2 LNs
    return num_layers * per_block + 2 * d;
  }

  /// Named presets. 7B/15B/26B use the dims stated in the paper (§6.1);
  /// the smaller presets are ViT-family interpolations sized to the
  /// parameter counts the paper quotes.
  static ModelConfig preset(std::string_view name);

  /// A deliberately small config for unit tests and CPU training runs.
  static ModelConfig tiny();
};

inline ModelConfig ModelConfig::preset(std::string_view name) {
  ModelConfig c;
  c.name = std::string(name);
  if (name == "100M") {
    c.embed_dim = 768;
    c.num_layers = 12;
    c.num_heads = 12;
  } else if (name == "1B") {
    c.embed_dim = 1536;
    c.num_layers = 28;
    c.num_heads = 16;
  } else if (name == "1.7B") {
    c.embed_dim = 2048;
    c.num_layers = 32;
    c.num_heads = 16;
  } else if (name == "3B") {
    c.embed_dim = 2560;
    c.num_layers = 36;
    c.num_heads = 20;
  } else if (name == "7B") {  // paper: 4096 embed, 32 layers, 32 heads
    c.embed_dim = 4096;
    c.num_layers = 32;
    c.num_heads = 32;
  } else if (name == "15B") {  // paper: 6144 embed, 32 layers, 32 heads
    c.embed_dim = 6144;
    c.num_layers = 32;
    c.num_heads = 32;
  } else if (name == "26B") {  // paper: 8192 embed, 32 layers, 32 heads
    c.embed_dim = 8192;
    c.num_layers = 32;
    c.num_heads = 32;
  } else {
    DCHAG_FAIL("unknown model preset '" << name << "'");
  }
  c.validate();
  return c;
}

inline ModelConfig ModelConfig::tiny() {
  ModelConfig c;
  c.name = "tiny";
  c.embed_dim = 32;
  c.num_layers = 2;
  c.num_heads = 4;
  c.patch_size = 4;
  c.image_h = 16;
  c.image_w = 16;
  c.validate();
  return c;
}

}  // namespace dchag::model
