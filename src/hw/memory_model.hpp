// Per-GPU memory accounting for the foundation-model architecture under
// every parallel strategy the paper studies.
//
// Accounting rules (validated against the paper's feasibility statements
// in tests/hw/calibration_test.cpp and against the executable model's
// allocation census in tests/hw/memory_census_test.cpp):
//
//  * Mixed-precision Adam: bf16 params (2B) + bf16 grads (2B) + fp32
//    master/momentum/variance (12B) = 16 bytes per parameter.
//  * Activations are bf16 (2 bytes), stored for backward.
//  * TP shards: transformer parameters and per-layer internals, the
//    embedding dimension of aggregation projections. TP does NOT shard:
//    tokenizer parameters/activations (replicated — paper Fig. 2 top) or
//    cross-attention channel scores (channel dimension — paper Fig. 14:
//    "TP distributes the embedding space of the channel aggregation
//    module, but not in the channel dimension").
//  * FSDP shards parameter/gradient/optimizer memory of everything, never
//    activations. DP shards nothing (memory-wise).
//  * With QueryMode::kChannelTokens the aggregation scores are B*S*h*C^2;
//    with kLearnedQuery they are B*S*h*C (the ablation).
//  * ViT blocks checkpoint activations: stored block inputs L*B*S*D plus
//    one block's recompute workspace (FlashAttention-2 => no S^2 term).
//  * The reconstruction-head loss is computed in spatial chunks (as real
//    implementations do) and contributes no standing activation term.
#pragma once

#include "hw/machine.hpp"
#include "hw/workload.hpp"

namespace dchag::hw {

struct MemoryBreakdown {
  // Parameter + gradient + optimizer state (GB per GPU).
  double tokenizer_state_gb = 0;
  double aggregation_state_gb = 0;
  double transformer_state_gb = 0;
  // Activations (GB per GPU).
  double input_act_gb = 0;
  double tokenizer_act_gb = 0;
  double aggregation_act_gb = 0;
  double gather_act_gb = 0;  ///< AllGather landing buffers (dist-tok / D-CHAG)
  double transformer_act_gb = 0;

  [[nodiscard]] double total_gb() const {
    return tokenizer_state_gb + aggregation_state_gb + transformer_state_gb +
           input_act_gb + tokenizer_act_gb + aggregation_act_gb +
           gather_act_gb + transformer_act_gb;
  }
  /// Fraction of memory spent on tokenization + channel aggregation — the
  /// quantity the paper's Figs. 6-8 and 14 track.
  [[nodiscard]] double token_agg_fraction() const {
    const double ta = tokenizer_state_gb + aggregation_state_gb +
                      input_act_gb + tokenizer_act_gb + aggregation_act_gb +
                      gather_act_gb;
    return total_gb() > 0 ? ta / total_gb() : 0.0;
  }
};

/// Memory per GPU for the baseline architecture under (TP, FSDP, DP),
/// optionally with D-CHAG replacing the tokenization/aggregation path.
[[nodiscard]] MemoryBreakdown estimate_memory(const ModelConfig& cfg,
                                              const Workload& w,
                                              const ParallelLayout& layout,
                                              const DchagSpec& dchag);

/// Memory per GPU for the intermediate §3.1 scheme: tokenization is
/// distributed across TP ranks but aggregation stays monolithic, which
/// requires AllGathering the full token tensor (paper Fig. 8).
[[nodiscard]] MemoryBreakdown estimate_memory_distributed_tokenization(
    const ModelConfig& cfg, const Workload& w, const ParallelLayout& layout);

[[nodiscard]] inline bool fits(const MemoryBreakdown& mem,
                               const MachineSpec& machine) {
  return mem.total_gb() <= machine.usable_mem_gb();
}

/// Smallest power-of-two TP degree (1..max_tp) at which the workload fits;
/// returns -1 if none fits.
[[nodiscard]] int min_feasible_tp(const ModelConfig& cfg, const Workload& w,
                                  const DchagSpec& dchag,
                                  const MachineSpec& machine, int max_tp);

/// Largest batch per GPU (>= 1) that fits, or 0 if batch 1 already OOMs.
[[nodiscard]] Index max_batch_per_gpu(const ModelConfig& cfg, Index channels,
                                      const ParallelLayout& layout,
                                      const DchagSpec& dchag,
                                      const MachineSpec& machine,
                                      bool checkpoint_vit = true);

}  // namespace dchag::hw
