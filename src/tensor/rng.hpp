// Deterministic random number generation for initialisation and data
// synthesis. Every experiment takes an explicit seed so runs reproduce
// bit-for-bit on a fixed thread layout.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace dchag::tensor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  [[nodiscard]] float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }
  [[nodiscard]] float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  [[nodiscard]] Tensor normal_tensor(Shape shape, float mean = 0.0f,
                                     float stddev = 1.0f) {
    Tensor t(std::move(shape));
    for (float& x : t.span()) x = normal(mean, stddev);
    return t;
  }
  [[nodiscard]] Tensor uniform_tensor(Shape shape, float lo = 0.0f,
                                      float hi = 1.0f) {
    Tensor t(std::move(shape));
    for (float& x : t.span()) x = uniform(lo, hi);
    return t;
  }

  /// Xavier/Glorot-style init used for all attention / linear weights.
  [[nodiscard]] Tensor xavier(Shape shape) {
    DCHAG_CHECK(shape.rank() >= 2, "xavier needs rank >= 2");
    const auto fan_in = static_cast<float>(shape.dim(-2));
    const auto fan_out = static_cast<float>(shape.dim(-1));
    const float bound = std::sqrt(6.0f / (fan_in + fan_out));
    return uniform_tensor(std::move(shape), -bound, bound);
  }

  /// Derives an independent child stream keyed only by (seed, salt) — the
  /// parent's position is NOT consumed, so forks are stable no matter how
  /// many draws or other forks happened in between. Model layers rely on
  /// this to give each channel/layer the same weights on every rank
  /// regardless of how the work is partitioned.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    std::uint64_t h = seed_ ^ (salt + 0x9E3779B97F4A7C15ull +
                               (seed_ << 6) + (seed_ >> 2));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return Rng(h);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace dchag::tensor
