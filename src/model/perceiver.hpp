// Perceiver-style channel fusion (paper §3.5): Aurora replaces the single
// cross-attention aggregation with a Perceiver module — a small set of
// learned latent tokens iteratively cross-attending to the channel tokens.
// The paper argues such a heavier fusion module "is likely to show even
// greater performance benefits from D-CHAG"; this implementation plugs
// into the same ChannelAggregator interface, so it composes with the
// hierarchical tree and the D-CHAG front-end unchanged
// (bench/ablation_aggregation reports the cost comparison).
#pragma once

#include "model/attention.hpp"

namespace dchag::model {

class PerceiverAggregator : public ChannelAggregator {
 public:
  /// `latents` learned query tokens, `iterations` cross-attend+MLP rounds.
  PerceiverAggregator(Index dim, Index heads, Index channels, Index latents,
                      Index iterations, Rng& rng,
                      const std::string& name = "perceiver");

  /// tokens: [B, S, C, D] -> [B, S, D] (mean over the final latents).
  [[nodiscard]] Variable forward(const Variable& tokens) const override;
  [[nodiscard]] Index width() const override { return channels_; }
  [[nodiscard]] Index num_latents() const { return latents_; }
  [[nodiscard]] Index num_iterations() const {
    return static_cast<Index>(blocks_.size());
  }

 private:
  struct Block {
    std::unique_ptr<LayerNorm> ln_q, ln_kv, ln_mlp;
    std::unique_ptr<Linear> wq, wk, wv, wo, mlp_up, mlp_down;
  };

  Index dim_;
  Index heads_;
  Index channels_;
  Index latents_;
  Variable latent_tokens_;  // [K, D]
  std::vector<Block> blocks_;
};

/// Analytic parameter count (mirrors the module; used by tests/hw).
[[nodiscard]] Index perceiver_params(Index dim, Index latents,
                                     Index iterations, Index mlp_ratio = 2);

}  // namespace dchag::model
