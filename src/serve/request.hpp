// Typed request/response surface of the serving subsystem.
//
// A Request is one sample (no batch dimension): the batcher owns batching.
// Requests may carry any subset of the trained channels (paper §2.1's
// deployment flexibility); the engine routes subsets through the
// aggregation tree's partial-channel path. Responses travel back through
// std::future, so callers block (or poll) per request while the server
// coalesces and executes batches on its worker pool.
#pragma once

#include <future>
#include <vector>

#include "tensor/tensor.hpp"

namespace dchag::serve {

using tensor::Index;
using tensor::Tensor;

struct Request {
  /// One sample, [C_sub, H, W]. C_sub must equal channels.size() when a
  /// subset is given, or the model's full channel count when it is empty.
  Tensor images;
  /// Strictly increasing global channel ids carried by `images`; empty
  /// means "all trained channels".
  std::vector<Index> channels;
  /// Forecast lead time (metadata token); requests only batch together
  /// when their lead times match.
  float lead_time = 1.0f;
};

struct Response {
  /// Prediction for the sample, [S, C_target * p^2].
  Tensor pred;
  /// Size of the coalesced batch this request rode in (>= 1).
  Index batch_size = 0;
  /// Time from submit() to batch assembly (queueing + coalescing wait).
  double queue_ms = 0.0;
  /// Forward-pass time of the batch that carried this request.
  double forward_ms = 0.0;
  /// End-to-end time from submit() to response.
  double total_ms = 0.0;
};

using ResponseFuture = std::future<Response>;

}  // namespace dchag::serve
