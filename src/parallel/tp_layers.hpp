// Megatron-style tensor-parallel transformer layers (paper §4.3 baseline).
//
// Every parallel layer derives its shard from the SAME full-weight random
// stream a serial layer with the same name/seed would draw, so a TP model
// is bit-for-bit a sharding of the corresponding serial model — the
// equivalence tests in tests/parallel/tp_equivalence_test.cpp rely on it,
// and it mirrors how real checkpoints are TP-resharded.
#pragma once

#include "model/vit.hpp"
#include "parallel/collective_ops.hpp"

namespace dchag::parallel {

using autograd::LayerNorm;
using autograd::Module;
using model::ModelConfig;
using tensor::Rng;
using tensor::Tensor;

/// y_local = x @ W[:, shard] + b[shard]; output is sharded on the last dim.
class ColumnParallelLinear : public Module {
 public:
  ColumnParallelLinear(Index in, Index out, Communicator& comm, Rng& rng,
                       const std::string& name);
  /// Shards an externally generated full weight (for layers whose random
  /// stream is interleaved with others).
  ColumnParallelLinear(Tensor full_weight, Communicator& comm,
                       const std::string& name);

  [[nodiscard]] Variable forward(const Variable& x) const;
  [[nodiscard]] Index local_out() const { return local_out_; }

 private:
  void init_from_full(const Tensor& full, Communicator& comm,
                      const std::string& name);
  Index local_out_ = 0;
  Variable weight_;  // [in, out/P]
  Variable bias_;    // [out/P]
};

/// y = AllReduce_r(x_local @ W[shard, :]) + b; input sharded on last dim.
class RowParallelLinear : public Module {
 public:
  RowParallelLinear(Index in, Index out, Communicator& comm, Rng& rng,
                    const std::string& name);
  RowParallelLinear(Tensor full_weight, Communicator& comm,
                    const std::string& name);

  [[nodiscard]] Variable forward(const Variable& x_local) const;

 private:
  void init_from_full(const Tensor& full, Communicator& comm,
                      const std::string& name);
  Communicator* comm_ = nullptr;
  Variable weight_;  // [in/P, out]
  Variable bias_;    // [out], added once after the reduction
};

/// Self-attention with heads sharded across the TP group.
class ParallelSelfAttention : public Module {
 public:
  ParallelSelfAttention(Index dim, Index heads, Communicator& comm, Rng& rng,
                        const std::string& name = "attn");

  /// x replicated [B, S, D] -> replicated [B, S, D].
  [[nodiscard]] Variable forward(const Variable& x) const;

 private:
  Index dim_;
  Index local_heads_;
  Communicator* comm_;
  std::unique_ptr<ColumnParallelLinear> wq_, wk_, wv_;
  std::unique_ptr<RowParallelLinear> wo_;
};

/// Transformer MLP with the hidden dimension sharded.
class ParallelMlp : public Module {
 public:
  ParallelMlp(Index dim, Index hidden, Communicator& comm, Rng& rng,
              const std::string& name = "mlp");

  [[nodiscard]] Variable forward(const Variable& x) const;

 private:
  Communicator* comm_;
  std::unique_ptr<ColumnParallelLinear> up_;
  std::unique_ptr<RowParallelLinear> down_;
};

/// Pre-LN ViT block with TP attention + MLP; LayerNorms are replicated.
class ParallelViTBlock : public Module {
 public:
  ParallelViTBlock(const ModelConfig& cfg, Communicator& comm, Rng& rng,
                   const std::string& name);

  [[nodiscard]] Variable forward(const Variable& x) const;

 private:
  std::unique_ptr<LayerNorm> ln1_, ln2_;
  std::unique_ptr<ParallelSelfAttention> attn_;
  std::unique_ptr<ParallelMlp> mlp_;
};

/// Drop-in TP replacement for model::ViTEncoder (same seed => same math).
class ParallelViTEncoder : public Module {
 public:
  ParallelViTEncoder(const ModelConfig& cfg, Communicator& comm, Rng& rng,
                     const std::string& name = "vit");

  [[nodiscard]] Variable forward(const Variable& x) const;

 private:
  std::vector<std::unique_ptr<ParallelViTBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
};

}  // namespace dchag::parallel
