// Seeded fault-schedule generators shared by the stress and chaos suites
// (tests/integration/async_stress_test.cpp, spmd_chaos_test.cpp). Every
// schedule is a pure function of its seed so a failure message carrying
// `seed=<n>` plus FaultPlan::describe() reproduces the exact run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/fault.hpp"

namespace dchag::testing {

/// Timing-only adversarial schedule: random link delays, drops + retries,
/// completion jitter; odd seeds add a straggler rank. Aggressive but
/// microsecond-scale — cheap enough for 64 schedules in one ctest entry.
inline comm::FaultSpec timing_schedule(std::uint64_t seed) {
  comm::FaultSpec s;
  s.seed = seed;
  s.min_edge_delay_us = 0;
  s.max_edge_delay_us = 120;
  s.drop_prob = 0.3;
  s.max_retries = 2;
  s.retry_backoff_us = 20;
  s.max_completion_jitter_us = 100;
  // Odd seeds get a straggler rank on top of the random link delays.
  if (seed % 2 == 1) s.per_rank_delay_us = {0, 150};
  return s;
}

/// Structural chaos archetypes layered over a (milder) timing schedule.
enum class ChaosKind { kDeath, kPartition, kStraggler };

/// Deterministic chaos schedule for a `ranks`-wide world. kDeath kills one
/// seeded rank at a seeded early op; kPartition opens a seeded island
/// window (the minority side dies); kStraggler is timing-only with one
/// heavily delayed rank — liveness pressure without structural failure.
/// Structural events use at_op >= 1 so cold-start collectives complete.
inline comm::FaultSpec chaos_schedule(std::uint64_t seed, ChaosKind kind,
                                      int ranks) {
  comm::FaultSpec s;
  s.seed = seed;
  s.min_edge_delay_us = 0;
  s.max_edge_delay_us = 60;
  s.max_completion_jitter_us = 40;
  switch (kind) {
    case ChaosKind::kDeath: {
      comm::RankDeathEvent death;
      death.rank = static_cast<int>(seed % static_cast<std::uint64_t>(ranks));
      death.at_op = 1 + (seed / 7) % 3;
      s.deaths.push_back(death);
      break;
    }
    case ChaosKind::kPartition: {
      comm::PartitionEvent part;
      part.at_op = 1 + (seed / 5) % 3;
      part.duration_ops = 1 + seed % 3;
      // A contiguous island of 1..ranks-1 members at a seeded offset.
      const int k =
          1 + static_cast<int>(seed % static_cast<std::uint64_t>(ranks - 1));
      const int start =
          static_cast<int>((seed / 3) % static_cast<std::uint64_t>(ranks));
      for (int i = 0; i < k; ++i)
        part.island.push_back((start + i) % ranks);
      s.partitions.push_back(part);
      break;
    }
    case ChaosKind::kStraggler: {
      s.drop_prob = 0.25;
      s.max_retries = 2;
      s.retry_backoff_us = 30;
      s.per_rank_delay_us.assign(static_cast<std::size_t>(ranks), 0);
      s.per_rank_delay_us[seed % static_cast<std::uint64_t>(ranks)] = 400;
      break;
    }
  }
  return s;
}

/// The world ranks a chaos schedule will kill, sorted — the same rule the
/// comm layer applies (FaultPlan::partition_event): a death kills its
/// rank; a partition kills the minority side, ties killing the side
/// without world rank 0.
inline std::vector<int> chaos_casualties(const comm::FaultSpec& s,
                                         int ranks) {
  std::vector<int> dead;
  for (const comm::RankDeathEvent& d : s.deaths) dead.push_back(d.rank);
  for (const comm::PartitionEvent& p : s.partitions) {
    std::vector<int> island = p.island;
    std::sort(island.begin(), island.end());
    std::vector<int> rest;
    for (int r = 0; r < ranks; ++r)
      if (!std::binary_search(island.begin(), island.end(), r))
        rest.push_back(r);
    const bool island_loses =
        island.size() < rest.size() ||
        (island.size() == rest.size() && island.front() != 0);
    const std::vector<int>& side = island_loses ? island : rest;
    dead.insert(dead.end(), side.begin(), side.end());
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

}  // namespace dchag::testing
