// Figure 11: masked-autoencoder training on hyperspectral plant images —
// training-loss parity between the single-GPU baseline and D-CHAG-L run
// on two ranks, with identical hyperparameters (all tuned for the
// baseline, as in the paper), plus pseudo-RGB reconstructions written as
// PPM files. The paper's 40M model / 500-band APPL data are scaled to a
// CPU-trainable configuration with synthetic spectral-mixture scenes that
// preserve the many-correlated-channels structure (see DESIGN.md).
#include "bench_util.hpp"
#include "core/dchag_frontend.hpp"
#include "data/hyperspectral.hpp"
#include "train/loops.hpp"

namespace {

using namespace dchag;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

constexpr Index kChannels = 16;
constexpr Index kSteps = 40;
constexpr Index kBatch = 2;

ModelConfig mae_config() {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.embed_dim = 32;
  cfg.num_layers = 2;
  return cfg;
}

std::vector<Tensor> make_batches() {
  data::HyperspectralConfig hc;
  hc.channels = kChannels;
  hc.height = 16;
  hc.width = 16;
  data::HyperspectralGenerator gen(hc, 2024);
  std::vector<Tensor> batches;
  for (Index i = 0; i < kSteps; ++i)
    batches.push_back(gen.sample_batch(kBatch));
  return batches;
}

train::LoopConfig loop_config() {
  train::LoopConfig lc;
  lc.steps = kSteps;
  lc.batch = kBatch;
  lc.mask_ratio = 0.75f;
  lc.adam.lr = 2e-3f;  // tuned for the baseline, reused for D-CHAG
  lc.data_seed = 99;
  return lc;
}

}  // namespace

int main() {
  bench::header("Figure 11",
                "MAE training-loss parity on hyperspectral data "
                "(baseline 1 rank vs D-CHAG-L 2 ranks)");
  bench::ShapeChecks checks;
  const ModelConfig cfg = mae_config();
  const auto batches = make_batches();
  const auto next = [&](Index step) {
    return batches[static_cast<std::size_t>(step)];
  };

  // Baseline: single rank, full channel set.
  Rng base_rng(777);
  auto base_fe = model::make_baseline_frontend(cfg, kChannels, base_rng);
  model::MaeModel baseline(cfg, std::move(base_fe), kChannels, base_rng);
  const train::TrainCurve base_curve =
      train::train_mae(baseline, loop_config(), next);

  // D-CHAG-L on two ranks, same hyperparameters.
  std::vector<float> dchag_losses(static_cast<std::size_t>(kSteps), 0.0f);
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng rng(777);
    auto mae = core::make_dchag_mae(cfg, kChannels, comm,
                                    {1, AggLayerKind::kLinear}, rng);
    const train::TrainCurve curve =
        train::train_mae(*mae, loop_config(), next);
    // The reconstruction forward contains the D-CHAG AllGather, so EVERY
    // rank must run it (collective); only rank 0 writes the files.
    const Tensor& img = batches[0];
    Rng mask_rng(5);
    Tensor mask = model::MaeModel::make_mask(kBatch, cfg.seq_len(), 0.75f,
                                             mask_rng);
    auto out = mae->forward(mae->frontend().select_input(img), img, mask);
    if (comm.rank() == 0) {
      for (Index i = 0; i < kSteps; ++i)
        dchag_losses[static_cast<std::size_t>(i)] =
            curve.losses[static_cast<std::size_t>(i)];

      // Reconstruction visualisation (paper Fig. 11 right).
      Tensor recon = model::unpatchify(
          model::from_prediction_layout(out.pred.value(), kChannels,
                                        cfg.patch_size),
          cfg.patch_size, 16, 16);
      data::HyperspectralConfig hc;
      hc.channels = kChannels;
      data::HyperspectralGenerator bands(hc, 1);
      const Index r = bands.band_of_wavelength(650.0f);
      const Index g = bands.band_of_wavelength(550.0f);
      const Index b = bands.band_of_wavelength(450.0f);
      data::write_pseudo_rgb_ppm(
          "fig11_original.ppm",
          img.slice0(0, 1).reshape({kChannels, 16, 16}), r, g, b);
      data::write_pseudo_rgb_ppm(
          "fig11_reconstruction.ppm",
          recon.slice0(0, 1).reshape({kChannels, 16, 16}), r, g, b);
      std::printf("wrote fig11_original.ppm / fig11_reconstruction.ppm\n");
    }
  });

  bench::section("training loss (iterations, as in the paper)");
  std::printf("%6s %12s %12s\n", "iter", "baseline", "D-CHAG-L");
  for (Index i = 0; i < kSteps; i += 4) {
    std::printf("%6lld %12.4f %12.4f\n", static_cast<long long>(i),
                base_curve.losses[static_cast<std::size_t>(i)],
                dchag_losses[static_cast<std::size_t>(i)]);
  }
  std::printf("%6s %12.4f %12.4f  (mean of last 5)\n", "tail",
              base_curve.tail_mean(5), [&] {
                double s = 0;
                for (Index i = kSteps - 5; i < kSteps; ++i)
                  s += dchag_losses[static_cast<std::size_t>(i)];
                return static_cast<float>(s / 5.0);
              }());

  const float base_tail = base_curve.tail_mean(5);
  double dchag_tail = 0;
  for (Index i = kSteps - 5; i < kSteps; ++i)
    dchag_tail += dchag_losses[static_cast<std::size_t>(i)] / 5.0;

  checks.expect(base_curve.tail_mean(5) < base_curve.losses.front(),
                "baseline training loss decreases");
  checks.expect(dchag_tail < dchag_losses[0],
                "D-CHAG training loss decreases");
  checks.expect(std::abs(dchag_tail - base_tail) < 0.35 * base_tail,
                "good agreement between baseline and D-CHAG loss curves");
  return checks.report();
}
