// Serving demo (and ctest acceptance check for the serve subsystem):
//
//   1. "Train" a hierarchical-aggregation forecast model and save a
//      checkpoint.
//   2. Cold-start a server from that checkpoint: fresh model + load, a
//      dynamic micro-batcher, and a worker pool running the tape-free
//      no-grad forward.
//   3. Fire 120 concurrent requests from 4 client threads, mixing full-
//      channel and channel-subset requests (paper §2.1's deployment
//      flexibility — subsets route through the aggregation tree's
//      partial-channel path).
//   4. Verify every response is bit-for-bit identical to the direct
//      no-grad forward on the source model, and that the batcher actually
//      coalesced (mean batch size > 1).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/serve_demo
#include <cstdio>
#include <thread>

#include "serve/server.hpp"
#include "train/checkpoint.hpp"

using namespace dchag;

namespace {

constexpr tensor::Index kChannels = 6;

std::unique_ptr<model::ForecastModel> make_model(std::uint64_t seed) {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  tensor::Rng rng(seed);
  auto agg = model::AggregationTree::with_units(
      cfg, model::AggLayerKind::kCrossAttention, kChannels, /*units=*/2,
      rng);
  auto fe = std::make_unique<model::LocalFrontEnd>(cfg, kChannels,
                                                   std::move(agg), rng);
  return std::make_unique<model::ForecastModel>(cfg, std::move(fe),
                                                kChannels, rng);
}

}  // namespace

int main() {
  // ----- 1. checkpoint from the "training" side -------------------------------
  auto trained = make_model(7);
  const std::string ckpt = "serve_demo_checkpoint.bin";
  train::save_module(ckpt, *trained);
  std::printf("saved checkpoint: %lld parameters -> %s\n",
              static_cast<long long>(trained->num_parameters()),
              ckpt.c_str());

  // ----- 2. cold start the server from the checkpoint -------------------------
  auto servable = make_model(12345);  // different seed: load must matter
  train::load_module(ckpt, *servable);
  serve::Engine engine(*servable);
  serve::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait = std::chrono::microseconds(3000);
  // Execution config in one place: both workers inherit this context
  // (kernel backend, comm mode, tracing — see ARCHITECTURE §9).
  const runtime::Context ctx = runtime::Context::from_env();
  serve::Server server(engine.inference_fn(), cfg, ctx);

  // ----- 3. 120 concurrent mixed-channel-subset requests ----------------------
  const std::vector<std::vector<tensor::Index>> subsets{
      {},            // all channels
      {0, 1, 2, 3, 4, 5},
      {0, 2, 5},     // spans both first-level tree groups
      {1},           // single channel
  };
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::vector<serve::Request> requests(kClients * kPerClient);
  std::vector<serve::ResponseFuture> futures(kClients * kPerClient);
  {
    std::vector<std::thread> clients;
    for (int cl = 0; cl < kClients; ++cl) {
      clients.emplace_back([&, cl] {
        for (int i = 0; i < kPerClient; ++i) {
          const int id = cl * kPerClient + i;
          const auto& subset = subsets[static_cast<std::size_t>(id) % 4];
          const tensor::Index c =
              subset.empty() ? kChannels
                             : static_cast<tensor::Index>(subset.size());
          tensor::Rng rng(1000 + static_cast<std::uint64_t>(id));
          serve::Request r;
          r.images = rng.normal_tensor({c, 16, 16});
          r.channels = subset;
          requests[static_cast<std::size_t>(id)] = r;
          futures[static_cast<std::size_t>(id)] =
              server.submit(std::move(r));
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  std::printf("submitted %d concurrent requests (4 subset shapes), queue "
              "depth %zu\n",
              kClients * kPerClient, server.queue_depth());
  server.start();

  // ----- 4. verify: bit-for-bit parity + real coalescing ----------------------
  autograd::NoGradGuard no_grad;
  namespace ops = tensor::ops;
  int mismatches = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::Response resp = futures[i].get();
    const auto& s = requests[i].images.shape();
    tensor::Tensor batch1 = requests[i].images.reshape(
        {1, s.dim(0), s.dim(1), s.dim(2)});
    tensor::Tensor direct =
        requests[i].channels.empty()
            ? trained->predict(batch1).value()
            : trained->predict_subset(batch1, requests[i].channels).value();
    tensor::Tensor row =
        direct.reshape({direct.dim(1), direct.dim(2)});
    if (ops::max_abs_diff(resp.pred, row) != 0.0f) ++mismatches;
  }
  server.drain();
  const serve::Metrics::Snapshot m = server.metrics().summary();
  std::printf("served == direct no-grad forward bit-for-bit: %s "
              "(%d/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches, futures.size());
  std::printf("metrics: %s\n", m.to_string().c_str());

  const bool coalesced = m.mean_batch_size > 1.0;
  std::printf("batched coalescing (mean batch > 1): %s\n",
              coalesced ? "yes" : "NO");
  std::remove(ckpt.c_str());
  const bool ok = mismatches == 0 && coalesced &&
                  m.requests == futures.size() && m.failed == 0;
  std::printf("\nserve_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
