// Figure 14: 26B model with 256-channel images, normalised to the GCD's
// 64 GB. TP alone cannot run the model at any GPU count in the sweep
// (only the embedding slice of the aggregation shards — a small
// decrease); D-CHAG+TP runs it, and even fits 512 channels under 80% of
// memory. The D-CHAG tokenization+aggregation share grows (linearly) with
// the rank count as each rank adds partial-aggregation layers.
#include "bench_util.hpp"
#include "hw/memory_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using model::AggLayerKind;

double tok_agg_gb(const MemoryBreakdown& m) {
  return m.total_gb() * m.token_agg_fraction();
}
}  // namespace

int main() {
  bench::header("Figure 14", "26B model, 256 channels (batch 26)");
  const ModelConfig cfg = ModelConfig::preset("26B");
  const MachineSpec frontier = MachineSpec::frontier();
  const double cap = frontier.gpu.mem_gb;
  bench::ShapeChecks checks;
  Workload w{26, 256, true};

  std::printf("%6s | %12s %12s %6s | %12s %12s %6s %12s\n", "gpus",
              "base (x64GB)", "base tok+agg", "fits", "dchag (x64GB)",
              "dchag tok+agg", "fits", "agg-model(GB)");
  bool any_base_fits = false;
  double prev_base_ta = 1e30;
  double prev_agg_model = 0;
  double prev_gather = 0;
  bool base_ta_decreases = true;
  bool agg_model_grows = true;
  bool gather_grows = true;
  for (int tp : {2, 4, 8, 16}) {
    const auto base = estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off());
    const auto dchag = estimate_memory(
        cfg, w, {tp, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear));
    const bool bf = fits(base, frontier);
    const bool df = fits(dchag, frontier);
    any_base_fits = any_base_fits || bf;
    base_ta_decreases =
        base_ta_decreases && tok_agg_gb(base) <= prev_base_ta + 1e-9;
    // "as we use more ranks, the layers from the D-CHAG method increase,
    // leading to a larger model size": the aggregation state summed over
    // ranks (each rank owns its own partial tree) and the per-rank gather
    // + final-attention footprint both grow with the group size.
    const double agg_model_total = tp * dchag.aggregation_state_gb;
    agg_model_grows = agg_model_grows && agg_model_total > prev_agg_model;
    gather_grows = gather_grows && dchag.gather_act_gb > prev_gather;
    prev_base_ta = tok_agg_gb(base);
    prev_agg_model = agg_model_total;
    prev_gather = dchag.gather_act_gb;
    std::printf("%6d | %12.2f %12.2f %6s | %12.2f %12.2f %6s %12.2f\n", tp,
                base.total_gb() / cap, tok_agg_gb(base) / cap,
                bf ? "yes" : "OOM", dchag.total_gb() / cap,
                tok_agg_gb(dchag) / cap, df ? "yes" : "OOM",
                agg_model_total);
  }

  checks.expect(!any_base_fits,
                "TP alone cannot run 26B/256ch at any swept GPU count");
  checks.expect(base_ta_decreases,
                "baseline tok+agg shows only a (small) decrease with more "
                "GPUs (embedding-space sharding only)");
  checks.expect(agg_model_grows,
                "D-CHAG aggregation model size grows with rank count "
                "(each rank adds partial layers)");
  checks.expect(gather_grows,
                "per-rank gather + final-attention footprint grows with "
                "rank count");

  {
    // Linear growth check: gather buffer + per-rank layers scale ~P, so
    // tok+agg(16 ranks) must be < 4x tok+agg(4 ranks) (quadratic growth
    // would be 16x the 1-rank cost between these points).
    const auto d4 = estimate_memory(cfg, w, {4, 1, 1},
                                    DchagSpec::tree(1, AggLayerKind::kLinear));
    const auto d16 = estimate_memory(
        cfg, w, {16, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear));
    const double growth =
        (tok_agg_gb(d16) - tok_agg_gb(d4)) / tok_agg_gb(d4);
    checks.expect(growth < 3.0,
                  "D-CHAG model-size growth with ranks is linear, not "
                  "quadratic");
  }
  {
    Workload w512{26, 512, true};
    const auto d = estimate_memory(cfg, w512, {16, 1, 1},
                                   DchagSpec::tree(1, AggLayerKind::kLinear));
    std::printf("\nD-CHAG 26B @ 512 channels on 16 GPUs: %.1f GB (%.0f%% of "
                "capacity)\n",
                d.total_gb(), 100.0 * d.total_gb() / cap);
    checks.expect(d.total_gb() < 0.8 * cap,
                  "D-CHAG fits 26B with 512 channels under 80% of memory");
  }
  return checks.report();
}
