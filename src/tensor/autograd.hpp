// Reverse-mode automatic differentiation (define-by-run tape).
//
// A Variable wraps a shared graph Node holding the forward value, the
// accumulated gradient, and a backward closure that scatters the output
// gradient to the node's parents. Graphs are built per rank thread and are
// never shared between threads; custom distributed ops (differentiable
// collectives in parallel/) plug in through make_op().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace dchag::autograd {

using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

struct Node {
  Tensor value;
  Tensor grad;  ///< lazily allocated on first accumulation
  bool requires_grad = false;
  std::string name;  ///< non-empty for parameters (used by optimizers)
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates `grad_out` (same shape as value) into parents' grads.
  std::function<void(const Tensor& grad_out)> backward_fn;
};

/// Adds `g` into the node's gradient accumulator (allocating on first use).
/// No-op if the node does not require grad.
void accumulate_grad(Node& n, const Tensor& g);

/// Whether ops built on this thread record the tape (parents + backward
/// closures). Grad mode is thread-local: each SPMD rank thread and each
/// serving worker controls its own tape independently.
[[nodiscard]] bool is_grad_enabled();

/// Number of tape nodes (op nodes with recorded parents) created on this
/// thread since it started. Inference paths assert this stays flat across
/// a forward to prove they allocate zero autograd state.
[[nodiscard]] std::uint64_t tape_nodes_created();

/// RAII guard disabling tape recording on the current thread. While active,
/// make_op() produces bare value nodes: no parents, no backward closures,
/// no grad requirement — the serving fast path. Nests and restores the
/// previous mode on destruction.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

class Variable {
 public:
  Variable() = default;

  /// Constant input (does not require grad).
  static Variable input(Tensor v) { return leaf(std::move(v), false); }
  /// Trainable parameter (leaf, requires grad, named for optimizers).
  static Variable param(Tensor v, std::string name = "");
  static Variable leaf(Tensor v, bool requires_grad);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Tensor& value() const { return node_->value; }
  [[nodiscard]] Tensor& mutable_value() { return node_->value; }
  [[nodiscard]] const Tensor& grad() const { return node_->grad; }
  [[nodiscard]] bool has_grad() const { return node_->grad.defined(); }
  [[nodiscard]] bool requires_grad() const { return node_->requires_grad; }
  [[nodiscard]] const std::string& name() const { return node_->name; }
  [[nodiscard]] const Shape& shape() const { return node_->value.shape(); }
  [[nodiscard]] std::shared_ptr<Node> node() const { return node_; }

  void zero_grad() { node_->grad = Tensor(); }

  /// Runs reverse-mode accumulation from this (scalar) variable.
  void backward() const;

  /// Cuts the graph: same value, no history.
  [[nodiscard]] Variable detach() const {
    return input(node_->value);
  }

  explicit Variable(std::shared_ptr<Node> n) : node_(std::move(n)) {}

 private:
  std::shared_ptr<Node> node_;
};

/// Creates a non-leaf op node. `backward` receives the output gradient and
/// must scatter it to the parents via accumulate_grad().
Variable make_op(Tensor value, std::vector<Variable> parents,
                 std::function<void(const Tensor&)> backward);

// ----- differentiable ops (mirror tensor::ops) -------------------------------

Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable scale(const Variable& a, float s);
Variable neg(const Variable& a);

Variable matmul(const Variable& a, const Variable& b);
Variable reshape(const Variable& a, Shape s);
Variable permute(const Variable& a, std::vector<Index> perm);
Variable transpose_last2(const Variable& a);

Variable softmax_lastdim(const Variable& a);
Variable gelu(const Variable& a);
Variable layernorm(const Variable& a, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);

Variable concat(std::span<const Variable> vs, Index dim);
Variable slice(const Variable& a, Index dim, Index start, Index len);

Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);
Variable sum_dim(const Variable& a, Index dim);
Variable mean_dim(const Variable& a, Index dim);
Variable expand_dim(const Variable& a, Index dim, Index n);

/// Mean squared error: mean((a - b)^2) over all elements. b is a constant.
Variable mse_loss(const Variable& pred, const Tensor& target);
/// MSE restricted to elements where mask == 1; normalised by mask sum.
Variable masked_mse_loss(const Variable& pred, const Tensor& target,
                         const Tensor& mask);

}  // namespace dchag::autograd
