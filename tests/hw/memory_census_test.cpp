// Validates the analytic memory model's SCALING LAWS against a census of
// the executable model's real allocations (tensor::bytes_allocated()).
// Absolute bytes differ (the executable is fp32 and keeps autograd
// bookkeeping; the analytic model is bf16 with production assumptions),
// but the structural laws the paper's figures rest on — what is quadratic
// vs linear in C, what splits under D-CHAG — must agree.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "hw/memory_model.hpp"

namespace dchag::hw {
namespace {

using model::AggLayerKind;
using model::QueryMode;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Bytes allocated while running `fn`.
template <typename F>
std::uint64_t census(F&& fn) {
  tensor::reset_allocation_ledger();
  fn();
  return tensor::bytes_allocated();
}

std::uint64_t aggregator_forward_bytes(Index channels, QueryMode mode) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(1);
  model::CrossAttentionAggregator agg(cfg.embed_dim, cfg.num_heads, channels,
                                      mode, rng);
  Tensor tokens = Rng(2).normal_tensor(
      Shape{1, cfg.seq_len(), channels, cfg.embed_dim});
  return census([&] {
    (void)agg.forward(autograd::Variable::input(tokens));
  });
}

TEST(MemoryCensus, ChannelQueryAggregationGrowsSuperlinearly) {
  // Paper §3.2: cross-attention memory is quadratic in C. Doubling C must
  // more than double the executed allocation census (scores ~ C^2).
  const auto b16 = aggregator_forward_bytes(16, QueryMode::kChannelTokens);
  const auto b32 = aggregator_forward_bytes(32, QueryMode::kChannelTokens);
  const auto b64 = aggregator_forward_bytes(64, QueryMode::kChannelTokens);
  EXPECT_GT(static_cast<double>(b32), 2.2 * static_cast<double>(b16));
  EXPECT_GT(static_cast<double>(b64), 2.2 * static_cast<double>(b32));
}

TEST(MemoryCensus, LearnedQueryAggregationGrowsLinearly) {
  const auto b16 = aggregator_forward_bytes(16, QueryMode::kLearnedQuery);
  const auto b64 = aggregator_forward_bytes(64, QueryMode::kLearnedQuery);
  // 4x channels -> at most ~4x memory (within bookkeeping slack).
  EXPECT_LT(static_cast<double>(b64), 5.0 * static_cast<double>(b16));
}

TEST(MemoryCensus, AnalyticQuadraticRatioMatchesExecutable) {
  // The executable census ratio b(2C)/b(C) and the analytic model's
  // aggregation-activation ratio must agree within 25%.
  ModelConfig cfg = ModelConfig::tiny();
  const auto b32 = aggregator_forward_bytes(32, QueryMode::kChannelTokens);
  const auto b64 = aggregator_forward_bytes(64, QueryMode::kChannelTokens);
  const double exec_ratio =
      static_cast<double>(b64) / static_cast<double>(b32);

  Workload w32{1, 32, true};
  Workload w64{1, 64, true};
  const double analytic_ratio =
      estimate_memory(cfg, w64, {1, 1, 1}, DchagSpec::off())
          .aggregation_act_gb /
      estimate_memory(cfg, w32, {1, 1, 1}, DchagSpec::off())
          .aggregation_act_gb;
  EXPECT_NEAR(exec_ratio, analytic_ratio, 0.25 * analytic_ratio);
}

TEST(MemoryCensus, TokenizerAllocationsLinearInChannels) {
  ModelConfig cfg = ModelConfig::tiny();
  const auto run = [&](Index channels) {
    Rng rng(3);
    model::PatchTokenizer tok(cfg, channels, rng);
    Tensor img =
        Rng(4).normal_tensor(Shape{1, channels, cfg.image_h, cfg.image_w});
    return census([&] { (void)tok.forward(img); });
  };
  const auto b8 = run(8);
  const auto b16 = run(16);
  EXPECT_NEAR(static_cast<double>(b16) / static_cast<double>(b8), 2.0, 0.3);
}

TEST(MemoryCensus, DchagSplitsFrontendAllocationsAcrossRanks) {
  // The per-rank forward allocation census of a 4-rank D-CHAG front-end
  // must be far below the single-device front-end over all channels —
  // the executable counterpart of Fig. 13's memory gains.
  ModelConfig cfg = ModelConfig::tiny();
  const Index C = 16;
  Tensor img = Rng(5).normal_tensor(Shape{1, C, cfg.image_h, cfg.image_w});

  Rng base_rng(6);
  auto baseline = model::make_baseline_frontend(cfg, C, base_rng);
  const auto base_bytes = census([&] { (void)baseline->forward(img); });

  std::uint64_t rank_bytes = 0;
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    Rng rng(6);
    core::DchagFrontEnd fe(cfg, C, comm, {1, AggLayerKind::kLinear}, rng);
    Tensor local = fe.slice_local_channels(img);
    // The ledger is process-wide, so census the rank-LOCAL computation
    // (tokenize + partial tree — exactly what D-CHAG localises; it has no
    // collectives) on rank 0 alone, with the other ranks parked at
    // barriers.
    comm.barrier();
    if (comm.rank() == 0) {
      tensor::reset_allocation_ledger();
      autograd::Variable tokens = fe.forward_local_partial(local);
      rank_bytes = tensor::bytes_allocated();
      (void)tokens;
    }
    comm.barrier();
  });
  EXPECT_GT(rank_bytes, 0u);
  EXPECT_LT(static_cast<double>(rank_bytes),
            0.6 * static_cast<double>(base_bytes));
}

TEST(MemoryCensus, ParameterStateFormulasExact) {
  // The 16-bytes-per-parameter state terms must match the executable
  // module parameter counts exactly.
  ModelConfig cfg = ModelConfig::tiny();
  Workload w{1, 8, true};
  const auto m = estimate_memory(cfg, w, {1, 1, 1}, DchagSpec::off());
  Rng rng(7);
  model::PatchTokenizer tok(cfg, 8, rng);
  EXPECT_DOUBLE_EQ(m.tokenizer_state_gb,
                   static_cast<double>(tok.num_parameters()) * 16.0 / 1e9);
  model::ViTEncoder enc(cfg, rng);
  EXPECT_DOUBLE_EQ(m.transformer_state_gb,
                   static_cast<double>(enc.num_parameters()) * 16.0 / 1e9);
}

}  // namespace
}  // namespace dchag::hw
