// The fault-injecting comm test double: deterministic schedules, timing-
// only perturbation (results stay exact), and observability counters.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/fault.hpp"

namespace dchag::comm {
namespace {

FaultSpec aggressive(std::uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.min_edge_delay_us = 1;
  s.max_edge_delay_us = 120;
  s.drop_prob = 0.5;
  s.max_retries = 3;
  s.retry_backoff_us = 15;
  s.max_completion_jitter_us = 90;
  return s;
}

TEST(FaultyWorld, SameSeedSameSchedule) {
  // A plan is a pure function of (seed, size): two plans built from the
  // same spec must draw identical injections for identical op sequences.
  const auto a = make_fault_plan(aggressive(1234), 4);
  const auto b = make_fault_plan(aggressive(1234), 4);
  for (int r = 0; r < 4; ++r) {
    for (std::uint64_t seq = 0; seq < 32; ++seq) {
      const auto ia = a->draw(r, CollectiveKind::kAllGather, seq);
      const auto ib = b->draw(r, CollectiveKind::kAllGather, seq);
      ASSERT_EQ(ia.pre_delay_us, ib.pre_delay_us);
      ASSERT_EQ(ia.drops, ib.drops);
      ASSERT_EQ(ia.post_jitter_us, ib.post_jitter_us);
    }
  }
  ASSERT_EQ(a->injected_delay_us(), b->injected_delay_us());
  ASSERT_EQ(a->injected_retries(), b->injected_retries());
}

TEST(FaultyWorld, DifferentSeedsDifferentEdgeDelays) {
  const auto a = make_fault_plan(aggressive(1), 8);
  const auto b = make_fault_plan(aggressive(2), 8);
  int diffs = 0;
  for (int s = 0; s < 8; ++s)
    for (int d = 0; d < 8; ++d)
      if (a->edge_delay_us(s, d) != b->edge_delay_us(s, d)) ++diffs;
  ASSERT_GT(diffs, 0);
}

TEST(FaultyWorld, AllCollectivesStayExactUnderFaults) {
  // Faults perturb timing only: every collective must produce exactly the
  // result a quiet world produces, for every algorithm.
  FaultyWorld world(4, Topology::packed(4, 2), aggressive(777));
  world.run([](Communicator& comm) {
    const int P = comm.size();
    for (Algorithm alg :
         {Algorithm::kDirect, Algorithm::kRing, Algorithm::kHierarchical}) {
      std::vector<float> d(9);
      std::iota(d.begin(), d.end(), static_cast<float>(comm.rank()) * 9.0f);
      comm.all_reduce(d, ReduceOp::kSum, alg);
      for (std::size_t i = 0; i < d.size(); ++i) {
        // sum over ranks r of (r*9 + i) = 4i + 9*(0+1+2+3)
        ASSERT_EQ(d[i], 4.0f * static_cast<float>(i) + 54.0f);
      }
    }
    std::vector<float> send{static_cast<float>(comm.rank())};
    std::vector<float> recv(static_cast<std::size_t>(P));
    comm.all_gather(send, recv);
    for (int r = 0; r < P; ++r)
      ASSERT_EQ(recv[static_cast<std::size_t>(r)], static_cast<float>(r));
    std::vector<float> rs_send(static_cast<std::size_t>(P) * 2, 1.0f);
    std::vector<float> rs_recv(2);
    comm.reduce_scatter(rs_send, rs_recv);
    ASSERT_EQ(rs_recv[0], static_cast<float>(P));
    std::vector<float> bc{comm.rank() == 1 ? 42.0f : 0.0f};
    comm.broadcast(bc, 1);
    ASSERT_EQ(bc[0], 42.0f);
  });
  ASSERT_GT(world.plan().injections(), 0u);
}

TEST(FaultyWorld, DropsAreRetriedNotLost) {
  FaultSpec spec;
  spec.seed = 5150;
  spec.drop_prob = 1.0;  // every first attempt is dropped
  spec.max_retries = 2;
  spec.retry_backoff_us = 5;
  FaultyWorld world(2, spec);
  world.run([](Communicator& comm) {
    std::vector<float> d{static_cast<float>(comm.rank() + 1)};
    comm.all_reduce(d);
    ASSERT_EQ(d[0], 3.0f);  // retried, never dropped for good
  });
  ASSERT_GT(world.plan().injected_retries(), 0u);
}

TEST(FaultyWorld, PerRankStragglerIsInjected) {
  FaultSpec spec;
  spec.seed = 3;
  spec.per_rank_delay_us = {0, 500, 0, 0};  // rank 1 is the slow GCD
  const auto plan = make_fault_plan(spec, 4);
  const auto slow = plan->draw(1, CollectiveKind::kAllReduce, 0);
  const auto fast = plan->draw(0, CollectiveKind::kAllReduce, 0);
  ASSERT_GE(slow.pre_delay_us, 500u);
  ASSERT_EQ(fast.pre_delay_us, 0u);
}

TEST(FaultyWorld, PlanPropagatesThroughSplit) {
  // split() children (incl. AsyncCommunicator shadow groups) must inherit
  // the parent's plan, so faults reach overlapped traffic too.
  FaultSpec spec;
  spec.seed = 17;
  spec.min_edge_delay_us = 1;
  spec.max_edge_delay_us = 30;
  FaultyWorld world(4, spec);
  world.run([](Communicator& comm) {
    Communicator half = comm.split(comm.rank() % 2);
    std::vector<float> d{1.0f};
    half.all_reduce(d);
    ASSERT_EQ(d[0], 2.0f);
  });
  // 4 parent-facing draws would come from the world's own collectives;
  // the split-group reduces add more. Just assert injection happened at
  // all (the split groups are the only collectives issued above).
  ASSERT_GT(world.plan().injections(), 0u);
}

TEST(FaultyWorld, CounterResetIsObservable) {
  const auto plan = make_fault_plan(aggressive(9), 2);
  (void)plan->draw(0, CollectiveKind::kBarrier, 0);
  ASSERT_GT(plan->injections(), 0u);
  plan->reset_counters();
  ASSERT_EQ(plan->injections(), 0u);
  ASSERT_EQ(plan->injected_delay_us(), 0u);
  ASSERT_EQ(plan->injected_retries(), 0u);
}

}  // namespace
}  // namespace dchag::comm
