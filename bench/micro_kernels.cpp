// Microbenchmark (google-benchmark): tensor kernels and model building
// blocks of the CPU substrate (matmul, softmax, attention fwd/bwd,
// aggregation units). Characterises the simulator, not Frontier.
//
// The *Backend benches sweep the runtime-dispatched kernel backends
// (0 = naive, 1 = blocked, 2 = parallel; tensor/kernel_config.hpp).
// `micro_kernels --benchmark_filter=Backend --benchmark_out=BENCH_kernels.json
// --benchmark_out_format=json` regenerates the committed BENCH_kernels.json
// that scripts/bench_compare.py gates on (see .github/workflows/ci.yml).
#include <benchmark/benchmark.h>

#include "model/aggregation.hpp"
#include "model/tokenizer.hpp"
#include "model/vit.hpp"
#include "tensor/kernel_config.hpp"

namespace {

using namespace dchag;
using autograd::Variable;
using tensor::KernelBackend;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;
namespace ops = tensor::ops;

KernelBackend backend_arg(std::int64_t v) {
  switch (v) {
    case 0: return KernelBackend::kNaive;
    case 1: return KernelBackend::kBlocked;
    default: return KernelBackend::kParallel;
  }
}

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = rng.normal_tensor(Shape{n, n});
  Tensor b = rng.normal_tensor(Shape{n, n});
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

// ----- kernel-backend sweeps (the bench-gate surface) ----------------------

void BM_MatmulBackend(benchmark::State& state) {
  const auto n = state.range(0);
  runtime::Scope scope(
      runtime::ContextPatch::with_kernels({backend_arg(state.range(1)), 0}));
  Rng rng(1);
  Tensor a = rng.normal_tensor(Shape{n, n});
  Tensor b = rng.normal_tensor(Shape{n, n});
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBackend)
    ->ArgNames({"n", "backend"})
    ->ArgsProduct({{128, 256, 512}, {0, 1, 2}});

void BM_BatchedMatmulBackend(benchmark::State& state) {
  // The attention shape: [B*h, N, dh] x shared [dh, dh'] projections.
  runtime::Scope scope(
      runtime::ContextPatch::with_kernels({backend_arg(state.range(0)), 0}));
  Rng rng(2);
  Tensor a = rng.normal_tensor(Shape{16, 64, 64});
  Tensor b = rng.normal_tensor(Shape{64, 64});
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 2 * 64 * 64 * 64);
}
BENCHMARK(BM_BatchedMatmulBackend)->ArgNames({"backend"})->DenseRange(0, 2);

void BM_SoftmaxBackend(benchmark::State& state) {
  runtime::Scope scope(
      runtime::ContextPatch::with_kernels({backend_arg(state.range(0)), 0}));
  Rng rng(3);
  Tensor a = rng.normal_tensor(Shape{512, 1024});
  for (auto _ : state) {
    Tensor y = ops::softmax_lastdim(a);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxBackend)->ArgNames({"backend"})->DenseRange(0, 2);

void BM_ElementwiseBackend(benchmark::State& state) {
  runtime::Scope scope(
      runtime::ContextPatch::with_kernels({backend_arg(state.range(0)), 0}));
  Rng rng(4);
  Tensor a = rng.normal_tensor(Shape{1024, 1024});
  Tensor b = rng.normal_tensor(Shape{1024, 1024});
  for (auto _ : state) {
    Tensor y = ops::gelu(ops::add(a, b));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ElementwiseBackend)->ArgNames({"backend"})->DenseRange(0, 2);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(2);
  Tensor a = rng.normal_tensor(Shape{64, state.range(0)});
  for (auto _ : state) {
    Tensor y = ops::softmax_lastdim(a);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(128)->Arg(1024);

void BM_SelfAttentionForward(benchmark::State& state) {
  Rng rng(3);
  model::MultiHeadSelfAttention attn(64, 4, rng);
  Tensor x = rng.normal_tensor(Shape{2, state.range(0), 64});
  for (auto _ : state) {
    Variable y = attn.forward(Variable::input(x));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_SelfAttentionForward)->Arg(16)->Arg(64);

void BM_SelfAttentionBackward(benchmark::State& state) {
  Rng rng(4);
  model::MultiHeadSelfAttention attn(64, 4, rng);
  Tensor x = rng.normal_tensor(Shape{2, state.range(0), 64});
  for (auto _ : state) {
    attn.zero_grad();
    Variable y = attn.forward(Variable::input(x));
    autograd::sum_all(y).backward();
    benchmark::DoNotOptimize(attn.parameters().front().grad().data());
  }
}
BENCHMARK(BM_SelfAttentionBackward)->Arg(16)->Arg(64);

void BM_CrossAttentionAggregator(benchmark::State& state) {
  const auto channels = state.range(0);
  Rng rng(5);
  model::CrossAttentionAggregator agg(32, 4, channels,
                                      model::QueryMode::kChannelTokens, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 16, channels, 32});
  for (auto _ : state) {
    Variable y = agg.forward(Variable::input(tokens));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_CrossAttentionAggregator)->Arg(8)->Arg(32)->Arg(64);

void BM_AggregationTreeVsFlat(benchmark::State& state) {
  // Tree over 64 channels with width state.range(0).
  const auto width = state.range(0);
  model::ModelConfig cfg = model::ModelConfig::tiny();
  Rng rng(6);
  model::AggregationTree tree(cfg, model::AggLayerKind::kCrossAttention, 64,
                              width, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 16, 64, cfg.embed_dim});
  for (auto _ : state) {
    Variable y = tree.forward(Variable::input(tokens));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_AggregationTreeVsFlat)->Arg(64)->Arg(16)->Arg(4);

void BM_PatchTokenizer(benchmark::State& state) {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  Rng rng(7);
  model::PatchTokenizer tok(cfg, state.range(0), rng);
  Tensor img = rng.normal_tensor(Shape{2, state.range(0), 16, 16});
  for (auto _ : state) {
    Variable t = tok.forward(img);
    benchmark::DoNotOptimize(t.value().data());
  }
}
BENCHMARK(BM_PatchTokenizer)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
