// Backend parity: the naive scalar kernels are the oracle; blocked and
// parallel must agree with them within 1e-5 on every shape the tiling
// could mishandle (edges far from MR/NR/MC/KC multiples, rank-3 batches,
// shared rank-2 B, empty dims), and blocked vs parallel must be
// bit-identical (same accumulation order by construction).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/thread_pool.hpp"

namespace dchag::tensor {
namespace {

namespace ops = tensor::ops;

// The global pool is sized once from DCHAG_THREADS (default: core count),
// so on a 1-core runner every parallel_for would run inline and the
// chunk-boundary code paths would go untested. This binary pins itself
// to 4 lanes before the pool's first use: parity coverage must not
// depend on the host's core count or inherited environment.
const bool kForceLanes = [] {
  setenv("DCHAG_THREADS", "4", /*overwrite=*/1);
  return true;
}();

/// Kernels-only patch for the unified override stack (threads = whole
/// pool).
runtime::ContextPatch backend_patch(KernelBackend b) {
  return runtime::ContextPatch::with_kernels({b, 0});
}

Tensor run_matmul(KernelBackend b, const Tensor& x, const Tensor& y) {
  runtime::Scope scope(backend_patch(b));
  return ops::matmul(x, y);
}

/// Inputs scaled by 1/sqrt(K) keep outputs O(1), so an absolute 1e-5
/// bound is a genuine relative-precision statement at every K.
void expect_three_way_parity(const Shape& a_shape, const Shape& b_shape,
                             std::uint64_t seed) {
  const float k = static_cast<float>(a_shape.dim(-1));
  const float s = 1.0f / std::sqrt(std::max(1.0f, k));
  Rng rng(seed);
  Tensor a = rng.normal_tensor(a_shape, 0.0f, s);
  Tensor b = rng.normal_tensor(b_shape, 0.0f, s);
  Tensor naive = run_matmul(KernelBackend::kNaive, a, b);
  Tensor blocked = run_matmul(KernelBackend::kBlocked, a, b);
  Tensor parallel = run_matmul(KernelBackend::kParallel, a, b);
  EXPECT_LE(ops::max_abs_diff(naive, blocked), 1e-5f)
      << a_shape.to_string() << " x " << b_shape.to_string();
  EXPECT_EQ(ops::max_abs_diff(blocked, parallel), 0.0f)
      << a_shape.to_string() << " x " << b_shape.to_string()
      << " — blocked and parallel must be bit-identical";
}

TEST(MatmulParity, TileAlignedShapes) {
  expect_three_way_parity(Shape{120, 256}, Shape{256, 512}, 1);
  expect_three_way_parity(Shape{64, 64}, Shape{64, 64}, 2);
}

TEST(MatmulParity, OddShapesOffTileBoundaries) {
  // None of M, N, K is a multiple of MR=6, NR=16, MC=120, KC=256, NC=512.
  expect_three_way_parity(Shape{37, 53}, Shape{53, 29}, 3);
  expect_three_way_parity(Shape{1, 1}, Shape{1, 1}, 4);
  expect_three_way_parity(Shape{7, 3}, Shape{3, 513}, 5);
  expect_three_way_parity(Shape{121, 257}, Shape{257, 17}, 6);
  expect_three_way_parity(Shape{5, 300}, Shape{300, 5}, 7);
}

TEST(MatmulParity, Rank3BatchesAndSharedB) {
  expect_three_way_parity(Shape{3, 17, 13}, Shape{3, 13, 29}, 8);
  // Rank-2 B shared across the batch, rank-4 batch dims.
  expect_three_way_parity(Shape{2, 3, 19, 23}, Shape{23, 31}, 9);
}

TEST(MatmulParity, EmptyDims) {
  for (KernelBackend b : {KernelBackend::kNaive, KernelBackend::kBlocked,
                          KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(b));
    Tensor a(Shape{0, 5});
    Tensor w(Shape{5, 3});
    Tensor c = ops::matmul(a, w);
    EXPECT_EQ(c.shape(), (Shape{0, 3}));
    // K == 0: a well-defined all-zero product.
    Tensor zk = ops::matmul(Tensor(Shape{4, 0}), Tensor(Shape{0, 3}));
    EXPECT_EQ(zk.shape(), (Shape{4, 3}));
    for (float v : zk.span()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(MatmulParity, FlopLedgerIdenticalAcrossBackends) {
  Rng rng(10);
  Tensor a = rng.normal_tensor(Shape{33, 47});
  Tensor b = rng.normal_tensor(Shape{47, 21});
  std::uint64_t counts[3];
  int i = 0;
  for (KernelBackend be : {KernelBackend::kNaive, KernelBackend::kBlocked,
                           KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(be));
    ops::reset_flops();
    (void)ops::matmul(a, b);
    counts[i++] = ops::flops_executed();
  }
  EXPECT_EQ(counts[0], 2ull * 33 * 47 * 21);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
}

TEST(ElementwiseParity, ParallelMatchesNaiveAboveFanoutThreshold) {
  ASSERT_GE(ThreadPool::global().lanes(), 2)
      << "pool must fan out for these tests to mean anything";
  Rng rng(11);
  // 77k elements / 257 softmax rows: past the 2x-grain fan-out threshold
  // for the elementwise (32768) and row (32768/300) dispatches.
  Tensor a = rng.normal_tensor(Shape{257, 300});
  Tensor b = rng.normal_tensor(Shape{257, 300});
  Tensor gold_add, gold_gelu, gold_sm;
  {
    runtime::Scope scope(backend_patch(KernelBackend::kNaive));
    gold_add = ops::add(a, b);
    gold_gelu = ops::gelu(a);
    gold_sm = ops::softmax_lastdim(a);
  }
  {
    runtime::Scope scope(backend_patch(KernelBackend::kParallel));
    EXPECT_EQ(ops::max_abs_diff(ops::add(a, b), gold_add), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(ops::gelu(a), gold_gelu), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(ops::softmax_lastdim(a), gold_sm), 0.0f);
  }
}

TEST(SumDimParity, ParallelSplitsBothOuterAndInnerForms) {
  Rng rng(13);
  // dim 0: outer == 1, fans over the inner (column) range; dim 1 on the
  // rank-3 tensor: outer == 48, fans over outer rows.
  Tensor flat = rng.normal_tensor(Shape{64, 2048});
  Tensor batched = rng.normal_tensor(Shape{48, 33, 700});
  Tensor gold0, gold1;
  {
    runtime::Scope scope(backend_patch(KernelBackend::kNaive));
    gold0 = ops::sum_dim(flat, 0);
    gold1 = ops::sum_dim(batched, 1);
  }
  {
    runtime::Scope scope(backend_patch(KernelBackend::kParallel));
    EXPECT_EQ(ops::max_abs_diff(ops::sum_dim(flat, 0), gold0), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(ops::sum_dim(batched, 1), gold1), 0.0f);
  }
}

TEST(LayerNormParity, ParallelMatchesNaive) {
  Rng rng(12);
  // 1500 rows with D=64: row grain is 32768/64 = 512, so the parallel
  // dispatch really splits (>= 2 chunks of rows).
  Tensor a = rng.normal_tensor(Shape{1500, 64});
  Tensor g = rng.normal_tensor(Shape{64});
  Tensor be = rng.normal_tensor(Shape{64});
  ops::LayerNormResult gold, par;
  {
    runtime::Scope scope(backend_patch(KernelBackend::kNaive));
    gold = ops::layernorm(a, g, be);
  }
  {
    runtime::Scope scope(backend_patch(KernelBackend::kParallel));
    par = ops::layernorm(a, g, be);
  }
  EXPECT_EQ(ops::max_abs_diff(gold.y, par.y), 0.0f);
  EXPECT_EQ(ops::max_abs_diff(gold.mean, par.mean), 0.0f);
  EXPECT_EQ(ops::max_abs_diff(gold.rstd, par.rstd), 0.0f);
}

TEST(KernelConfig, ParseAndRoundTrip) {
  EXPECT_EQ(parse_backend("naive"), KernelBackend::kNaive);
  EXPECT_EQ(parse_backend("blocked"), KernelBackend::kBlocked);
  EXPECT_EQ(parse_backend("parallel"), KernelBackend::kParallel);
  EXPECT_THROW(parse_backend("simd"), Error);
  EXPECT_STREQ(to_string(KernelBackend::kBlocked), "blocked");
}

TEST(KernelConfig, ScopeOverridesAndRestores) {
  const KernelConfig before = kernel_config();
  {
    runtime::Scope outer(
        runtime::ContextPatch::with_kernels({KernelBackend::kNaive, 2}));
    EXPECT_EQ(kernel_config().backend, KernelBackend::kNaive);
    EXPECT_EQ(kernel_config().threads, 2);
    {
      runtime::Scope inner(
          runtime::ContextPatch::with_kernels({KernelBackend::kBlocked, 0}));
      EXPECT_EQ(kernel_config().backend, KernelBackend::kBlocked);
    }
    EXPECT_EQ(kernel_config().backend, KernelBackend::kNaive);
  }
  EXPECT_EQ(kernel_config().backend, before.backend);
}

}  // namespace
}  // namespace dchag::tensor
