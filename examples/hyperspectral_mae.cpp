// Hyperspectral masked-autoencoder pretraining with Hybrid D-CHAG — the
// paper's §5.1 application end-to-end: 4 simulated ranks arranged as
// 2 D-CHAG groups x 2 data-parallel replicas, training a small MAE on
// synthetic VNIR plant scenes (the APPL-data substitute), then writing
// pseudo-RGB original/reconstruction images.
//
// Run:  ./build/examples/hyperspectral_mae
#include <cstdio>

#include "core/dchag_frontend.hpp"
#include "data/hyperspectral.hpp"
#include "parallel/data_parallel.hpp"
#include "train/loops.hpp"

using namespace dchag;
using tensor::Index;
using tensor::Tensor;

namespace {
constexpr Index kChannels = 16;  // scaled stand-in for the 500 APPL bands
constexpr Index kSteps = 30;
constexpr Index kBatch = 2;
}  // namespace

int main() {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  data::HyperspectralConfig hc;
  hc.channels = kChannels;
  hc.height = 16;
  hc.width = 16;

  // Per-replica data streams (DP replicas see different scenes).
  std::vector<std::vector<Tensor>> replica_batches;
  for (int replica = 0; replica < 2; ++replica) {
    data::HyperspectralGenerator gen(hc, 1000 + replica);
    std::vector<Tensor> batches;
    for (Index i = 0; i < kSteps; ++i)
      batches.push_back(gen.sample_batch(kBatch));
    replica_batches.push_back(std::move(batches));
  }

  std::printf("training MAE on %lld-band synthetic hyperspectral scenes\n",
              static_cast<long long>(kChannels));
  std::printf("layout: 4 ranks = 2 D-CHAG groups x 2 DP replicas\n\n");

  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    comm::Communicator dchag_group = comm.split(comm.rank() / 2);
    comm::Communicator dp_group = comm.split(comm.rank() % 2);
    const int replica = comm.rank() / 2;

    tensor::Rng rng(2030);
    auto mae = core::make_dchag_mae(
        cfg, kChannels, dchag_group,
        {/*tree_units=*/1, model::AggLayerKind::kLinear}, rng);
    auto params = mae->parameters();
    train::Adam opt(params, {.lr = 2e-3f});

    for (Index step = 0; step < kSteps; ++step) {
      const Tensor& full =
          replica_batches[static_cast<std::size_t>(replica)]
                         [static_cast<std::size_t>(step)];
      Tensor local = mae->frontend().select_input(full);
      tensor::Rng mask_rng(7000 + static_cast<std::uint64_t>(step));
      Tensor mask = model::MaeModel::make_mask(kBatch, cfg.seq_len(), 0.75f,
                                               mask_rng);
      opt.zero_grad();
      auto out = mae->forward(local, full, mask);
      out.loss.backward();
      parallel::all_reduce_gradients(params, dp_group);
      opt.step();
      if (comm.rank() == 0 && step % 5 == 0) {
        std::printf("step %3lld  masked-MSE loss %.4f\n",
                    static_cast<long long>(step),
                    out.loss.value().item());
      }
    }

    // Reconstruction render. The forward pass is collective (it contains
    // the D-CHAG AllGather), so every rank runs it; rank 0 writes files.
    const Tensor& sample = replica_batches[0][0];
    tensor::Rng mask_rng(1);
    Tensor mask = model::MaeModel::make_mask(kBatch, cfg.seq_len(), 0.75f,
                                             mask_rng);
    auto out =
        mae->forward(mae->frontend().select_input(sample), sample, mask);
    if (comm.rank() == 0) {
      Tensor recon = model::unpatchify(
          model::from_prediction_layout(out.pred.value(), kChannels,
                                        cfg.patch_size),
          cfg.patch_size, hc.height, hc.width);
      data::HyperspectralGenerator bands(hc, 1);
      const Index r = bands.band_of_wavelength(650.0f);
      const Index g = bands.band_of_wavelength(550.0f);
      const Index b = bands.band_of_wavelength(450.0f);
      data::write_pseudo_rgb_ppm(
          "mae_original.ppm",
          sample.slice0(0, 1).reshape({kChannels, hc.height, hc.width}), r,
          g, b);
      data::write_pseudo_rgb_ppm(
          "mae_reconstruction.ppm",
          recon.slice0(0, 1).reshape({kChannels, hc.height, hc.width}), r, g,
          b);
      std::printf("\nwrote mae_original.ppm and mae_reconstruction.ppm "
                  "(pseudo-RGB, as in paper Fig. 11)\n");
    }
  });
  return 0;
}
