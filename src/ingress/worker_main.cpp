// Thin executable wrapper; all logic lives in the library so tests can
// exercise worker behaviour in-process where that is enough.
#include "ingress/worker.hpp"

int main(int argc, char** argv) {
  return dchag::ingress::worker_main(argc, argv);
}
