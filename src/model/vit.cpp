#include "model/vit.hpp"

namespace dchag::model {

ViTBlock::ViTBlock(const ModelConfig& cfg, Rng& rng,
                   const std::string& name) {
  Rng r = rng.fork(std::hash<std::string>{}(name));
  const Index d = cfg.embed_dim;
  const Index hidden = cfg.mlp_ratio * d;
  ln1_ = std::make_unique<LayerNorm>(d, name + ".ln1");
  attn_ = std::make_unique<MultiHeadSelfAttention>(d, cfg.num_heads, r,
                                                   name + ".attn");
  ln2_ = std::make_unique<LayerNorm>(d, name + ".ln2");
  mlp_up_ = std::make_unique<Linear>(d, hidden, r, name + ".mlp_up");
  mlp_down_ = std::make_unique<Linear>(hidden, d, r, name + ".mlp_down");
  register_child(*ln1_);
  register_child(*attn_);
  register_child(*ln2_);
  register_child(*mlp_up_);
  register_child(*mlp_down_);
}

Variable ViTBlock::forward(const Variable& x) const {
  if (is_frozen() && !autograd::is_grad_enabled()) {
    // Serving plan: both residual adds and the MLP's GELU ride their
    // producing GEMMs' row strips. The residual lands as (value +
    // residual) instead of add(residual, value) — a commutative float
    // add, so the output stays bit-identical to the path below.
    Variable h = attn_->forward_residual(ln1_->forward(x), x);
    return mlp_down_->forward_residual(
        mlp_up_->forward_gelu(ln2_->forward(h)), h);
  }
  Variable h = autograd::add(x, attn_->forward(ln1_->forward(x)));
  Variable mlp =
      mlp_down_->forward(autograd::gelu(mlp_up_->forward(ln2_->forward(h))));
  return autograd::add(h, mlp);
}

Variable ViTBlock::forward_post_ln(const Variable& x,
                                   const LayerNorm& final_ln) const {
  if (is_frozen() && !autograd::is_grad_enabled()) {
    Variable h = attn_->forward_residual(ln1_->forward(x), x);
    return mlp_down_->forward_residual_layernorm(
        mlp_up_->forward_gelu(ln2_->forward(h)), h, final_ln.gamma(),
        final_ln.beta());
  }
  return final_ln.forward(forward(x));
}

ViTEncoder::ViTEncoder(const ModelConfig& cfg, Rng& rng,
                       const std::string& name) {
  blocks_.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (Index i = 0; i < cfg.num_layers; ++i) {
    blocks_.push_back(std::make_unique<ViTBlock>(
        cfg, rng, name + ".block" + std::to_string(i)));
    register_child(*blocks_.back());
  }
  final_ln_ = std::make_unique<LayerNorm>(cfg.embed_dim, name + ".final_ln");
  register_child(*final_ln_);
}

Variable ViTEncoder::forward(const Variable& x) const {
  if (is_frozen() && !autograd::is_grad_enabled() && !blocks_.empty()) {
    // Serving plan: the final layernorm rides the last block's closing
    // MLP projection instead of a separate fan-out over the tokens.
    Variable h = x;
    for (std::size_t i = 0; i + 1 < blocks_.size(); ++i) {
      h = blocks_[i]->forward(h);
    }
    return blocks_.back()->forward_post_ln(h, *final_ln_);
  }
  Variable h = x;
  for (const auto& block : blocks_) h = block->forward(h);
  return final_ln_->forward(h);
}

}  // namespace dchag::model
