#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace dchag::tensor {
namespace {

TEST(Shape, RankAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(Shape{}.rank(), 0);
  EXPECT_EQ(Shape{}.numel(), 1);  // empty product
}

TEST(Shape, NegativeIndexing) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_EQ(s.dim(0), 2);
}

TEST(Shape, OutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(Shape, RowMajorStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 1);
}

TEST(Shape, WithAndWithoutDim) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.with_dim(1, 7), (Shape{2, 7, 4}));
  EXPECT_EQ(s.with_dim(-1, 9), (Shape{2, 3, 9}));
  EXPECT_EQ(s.without_dim(0), (Shape{3, 4}));
  EXPECT_EQ(s.without_dim(-1), (Shape{2, 3}));
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(Shape, ZeroDimAllowedNegativeRejected) {
  EXPECT_EQ((Shape{0, 3}).numel(), 0);
  EXPECT_THROW(Shape({-1, 3}), Error);
}

TEST(Shape, ToString) { EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]"); }

}  // namespace
}  // namespace dchag::tensor
