// Cache-blocked single-precision GEMM: C += A * B on row-major buffers.
// BLIS-style loop structure — NC/KC/MC tiling with A packed into MR-row
// panels and B into NR-column panels, finished by an MR x NR register
// micro-kernel. This translation unit alone is compiled with AVX2+FMA
// when the toolchain supports it (see src/tensor/CMakeLists.txt);
// kernel_config.cpp gates dispatch on a runtime CPUID check so a binary
// built that way still runs (naive backend) on older x86-64.
//
// Determinism contract: for a fixed (M, N, K) the accumulation order of
// every C element is fixed — independent of how callers partition rows
// across threads — so the blocked and parallel backends are bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/align.hpp"
#include "tensor/shape.hpp"

namespace dchag::tensor::gemm {

/// C[M,N] += A[M,K] * B[K,N]; lda/ldb/ldc are row strides. Callers hand
/// in zeroed C for a plain product. Safe for any sizes >= 0, including
/// empty dimensions and shapes far from the tile sizes.
void gemm_blocked(Index M, Index N, Index K, const float* A, Index lda,
                  const float* B, Index ldb, float* C, Index ldc);

/// A weight matrix's B-side panels, packed once ahead of serving so
/// pack_b leaves the per-call GEMM path entirely. The panel bytes are
/// exactly what gemm_blocked's per-call pack_b would produce for every
/// (jc, pc) cache block, stored back to back with an offset table, so
/// gemm_blocked_prepacked is bit-identical to gemm_blocked by
/// construction — same panels, same loop order, same micro-kernel.
struct PackedB {
  Index K = 0;
  Index N = 0;
  AlignedVec data;  ///< all (jc, pc) blocks, jc-major then pc
  std::vector<std::size_t> block_offset;  ///< [jc_blocks * pc_blocks]

  [[nodiscard]] bool matches(Index k, Index n) const {
    return K == k && N == n;
  }
};

/// Packs row-major B[K,N] (row stride ldb) into serving panels.
[[nodiscard]] PackedB pack_b_matrix(const float* B, Index K, Index N,
                                    Index ldb);

/// gemm_blocked with the B-side packing hoisted out: C[M,N] += A[M,K] *
/// B, where `pb` was produced by pack_b_matrix for this exact (K, N).
/// Bit-identical to gemm_blocked on the same operands.
void gemm_blocked_prepacked(Index M, const float* A, Index lda,
                            const PackedB& pb, float* C, Index ldc);

/// True when this TU was built with AVX2/FMA codegen (x86-64 only).
[[nodiscard]] bool compiled_with_avx2();

}  // namespace dchag::tensor::gemm
