// Elastic pool sizing: queue pressure grows the worker pool toward
// max_workers, and sustained idleness shrinks it back to min_workers —
// with every response still bit-exact across the resizes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ingress/client.hpp"
#include "ingress/dispatcher.hpp"
#include "ingress_test_util.hpp"

namespace dchag::ingress {
namespace {

using testutil::TrainedModel;

TEST(Scale, PressureGrowsThePoolAndIdlenessShrinksIt) {
  TrainedModel trained;
  IngressConfig cfg = testutil::base_config(trained);
  cfg.min_workers = 1;
  cfg.max_workers = 3;
  cfg.ring.slots = 2;
  cfg.queue_capacity = 256;
  cfg.scale_up_depth = 4;
  cfg.scale_down_idle = std::chrono::milliseconds(150);
  Ingress ingress(cfg);
  ASSERT_EQ(ingress.worker_count(), 1u);

  // Sustained pressure: 8 client threads, 8 sequential requests each.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::atomic<int> failures{0};
  std::atomic<std::size_t> peak_workers{0};
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (!done.load()) {
      std::size_t w = ingress.worker_count();
      std::size_t prev = peak_workers.load();
      while (w > prev && !peak_workers.compare_exchange_weak(prev, w)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client(ingress.port());
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seed =
            900 + static_cast<std::uint64_t>(t * kPerThread + i);
        const Tensor images = testutil::sample_image(seed);
        try {
          const Tensor pred = client.infer(images);
          testutil::expect_bit_exact(pred, trained.reference(images));
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  watcher.join();
  EXPECT_EQ(failures.load(), 0);

  const Counters::Snapshot during = ingress.counters();
  EXPECT_GE(during.scale_ups, 1u)
      << "64 requests against one worker must trip scale_up_depth=4";
  EXPECT_GE(std::max(peak_workers.load(), ingress.worker_count()), 2u);

  // Sustained idleness: shrink back to min_workers.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ingress.worker_count() > 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ingress.worker_count(), 1u);
  EXPECT_GE(ingress.counters().scale_downs, 1u);

  // Scaling never crosses the floor: a request after the shrink still
  // gets a bit-exact answer from the remaining worker.
  Client client(ingress.port());
  const Tensor images = testutil::sample_image(31337);
  testutil::expect_bit_exact(client.infer(images),
                             trained.reference(images));

  ingress.drain();
  const Counters::Snapshot c = ingress.counters();
  EXPECT_EQ(c.accepted, c.completed);
  EXPECT_EQ(c.worker_restarts, 0u)
      << "deliberate retirement must not be counted as a crash";
}

}  // namespace
}  // namespace dchag::ingress
