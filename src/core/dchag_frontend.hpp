// D-CHAG: Distributed Cross-Channel Hierarchical Aggregation (paper §3.3,
// Fig. 4) — the paper's primary contribution.
//
// Each rank of the TP/D-CHAG group:
//   1. tokenizes its contiguous slice of the input channels,
//   2. reduces those tokens to ONE channel representation with a local
//      partial-channel aggregation tree (TreeN of -C or -L units),
//   3. AllGathers the single representation per rank (the only front-end
//      communication, forward-only: the backward takes a local slice),
//   4. applies the final cross-attention — whose weights are replicated
//      across the group — over the P gathered representations.
//
// Downstream of step 4 every rank computes on identical data, so the
// replicated parameters stay in sync without gradient synchronisation and
// the rank-local tokenizer/tree parameters train on purely local
// gradients: no communication in the backward pass.
#pragma once

#include <optional>

#include "comm/async.hpp"
#include "model/foundation.hpp"
#include "parallel/dist_tokenizer.hpp"
#include "runtime/context.hpp"
#include "tensor/kernel_config.hpp"

namespace dchag::core {

using model::AggLayerKind;
using model::Index;
using model::ModelConfig;
using parallel::Communicator;
using tensor::Rng;

struct DchagOptions {
  DchagOptions() = default;
  DchagOptions(Index units, AggLayerKind kind)
      : tree_units(units), partial_kind(kind) {}
#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context three-field form; the kernel backend belongs to the
  /// runtime::Context argument of DchagFrontEnd now.
  DCHAG_DEPRECATED_CONFIG_API(
      "pass a runtime::Context to DchagFrontEnd instead")
  DchagOptions(Index units, AggLayerKind kind,
               std::optional<tensor::KernelConfig> kernel_cfg)
      : tree_units(units), partial_kind(kind), kernels(kernel_cfg) {}
#endif

  /// Paper's TreeN: number of first-level units in the partial module
  /// (0/1 = one unit over all local channels; Fig. 9's best is Tree0).
  Index tree_units = 1;
  /// -C (cross-attention) vs -L (linear) partial layers; the final shared
  /// aggregation is always cross-attention (paper §3.3).
  AggLayerKind partial_kind = AggLayerKind::kLinear;

#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context kernel pin. When set, it overlays the kernels field of
  /// the front-end's Context; SPMD deployments now express the same
  /// policy as Context::current().to_builder().kernel_backend(kBlocked)
  /// on the Context they hand the front-end.
  /// Deprecated: use ContextBuilder::kernels on the front-end Context.
  std::optional<tensor::KernelConfig> kernels;
  /// Pre-Context comm pin. When set, it overlays the comm field of the
  /// front-end's Context (whose default already follows DCHAG_COMM /
  /// DCHAG_COMM_CHUNKS via Context::from_env). kSync with
  /// pipeline_chunks <= 1 is the original monolithic forward (one
  /// blocking AllGather), kept verbatim as the parity oracle.
  /// Deprecated: use ContextBuilder::comm on the front-end Context.
  std::optional<comm::CommConfig> comm;
#endif
};

class DchagFrontEnd : public model::FrontEnd {
 public:
  /// All ranks must construct with the same `master_rng` seed — the final
  /// aggregation weights are derived from it and must be replicated.
  ///
  /// `ctx` pins this front-end's execution configuration (kernel backend,
  /// comm mode + pipeline depth, tracing). nullopt = unpinned: every
  /// forward reads the ambient runtime::Context::current() at call time.
  /// A pinned context is still outranked by any runtime::Scope active on
  /// the forwarding thread (the precedence ladder in runtime/context.hpp).
  DchagFrontEnd(const ModelConfig& cfg, Index total_channels,
                Communicator& comm, const DchagOptions& opts,
                Rng& master_rng,
                std::optional<runtime::Context> ctx = std::nullopt);

  /// local_images: [B, C/P, H, W] (this rank's channels, rank order).
  /// Returns [B, S, D], identical on every rank.
  [[nodiscard]] autograd::Variable forward(
      const tensor::Tensor& images) const override;

  /// Distributed channel-subset inference (paper §2.1 under §3.3's layout):
  /// unlike forward(), every rank receives the FULL subset batch
  /// [B, W, H, W] (W == channels.size(), strictly increasing global ids)
  /// and slices its own intersection internally. Ranks owning none of the
  /// subset contribute a zero placeholder to the AllGather (collectives
  /// must stay symmetric) which is dropped before the final aggregation,
  /// so the result matches the subset-only math on every rank.
  [[nodiscard]] autograd::Variable forward_subset(
      const tensor::Tensor& images,
      std::span<const Index> channels) const override;

  /// The rank-local stage only (tokenize + partial aggregation tree ->
  /// this rank's single channel representation [B, S, D]). Contains no
  /// collectives; useful for profiling the localised workload.
  [[nodiscard]] autograd::Variable forward_local_partial(
      const tensor::Tensor& images) const;

  [[nodiscard]] Index local_channels() const override {
    return tokenizer_->local_channels();
  }
  [[nodiscard]] Index total_channels() const {
    return tokenizer_->total_channels();
  }
  [[nodiscard]] const model::AggregationTree& partial_tree() const {
    return *tree_;
  }
  [[nodiscard]] const model::CrossAttentionAggregator& final_aggregator()
      const {
    return *final_;
  }
  [[nodiscard]] Communicator& communicator() const { return *comm_; }
  /// The full effective context a forward on this thread would run under
  /// (pinned construction context, if any, overlaid with active Scopes).
  [[nodiscard]] runtime::Context effective_context() const {
    return runtime::Context::effective_or_current(ctx_);
  }
  /// Effective comm config for a forward on this thread.
  [[nodiscard]] comm::CommConfig comm_config() const {
    return effective_context().comm();
  }
  /// Ledger of async collectives issued by pipelined forwards (null until
  /// the first async forward constructs the progress lane).
  [[nodiscard]] const comm::CommStats* async_stats() const {
    return async_ ? &async_->stats() : nullptr;
  }

  /// Elastic-recovery hook (serve/spmd_engine): rebinds this front-end to
  /// a regrouped communicator after a rank failure. `logical_slots` maps
  /// the new group's rank i to the ORIGINAL channel-partition slot it
  /// carries (strictly increasing, values < the construction-time world
  /// size; rank i's entry must be this rank's own original slot). Tears
  /// down the async progress lane (it holds a shadow group of the old
  /// comm) and rebuilds the sync lane; forward_subset and
  /// slice_local_channels consult the slot map, so a degraded group
  /// serves the surviving channels bit-exactly. The full-world forward()
  /// remains valid only when the group is back to the original size (the
  /// final aggregator's width is fixed at construction).
  void rebind(Communicator& comm, std::vector<int> logical_slots);
  /// Current rank -> original channel-slot map (identity until rebind).
  [[nodiscard]] const std::vector<int>& logical_slots() const {
    return logical_slots_;
  }
  /// Group size this front-end was constructed for (the channel-partition
  /// width; survives rebinds to smaller survivor groups).
  [[nodiscard]] int world_size() const { return world_size_; }

  /// The slice of the full input this rank consumes:
  /// images[:, slot*C/P : (slot+1)*C/P] (slot == rank until a rebind).
  [[nodiscard]] tensor::Tensor slice_local_channels(
      const tensor::Tensor& full_images) const;
  [[nodiscard]] tensor::Tensor select_input(
      const tensor::Tensor& full_images) const override {
    return slice_local_channels(full_images);
  }

 private:
  /// The overlap pipeline (double-buffered micro-chunks of the batch):
  /// level-k gather traffic is in flight while chunk k+1's tokenizer/tree
  /// GEMMs issue; wait() happens only at each chunk's combine point.
  [[nodiscard]] autograd::Variable forward_pipelined(
      const tensor::Tensor& images, Index chunks, comm::CommMode mode) const;
  /// The ICollective for `mode`. First async use constructs the
  /// AsyncCommunicator, which is COLLECTIVE (it splits a shadow group) —
  /// all ranks must take their first async forward together, the usual
  /// symmetric-SPMD contract.
  [[nodiscard]] comm::ICollective& collective_for(comm::CommMode mode) const;

  ModelConfig cfg_;
  Communicator* comm_;
  /// Construction-time group size == channel-partition width.
  int world_size_;
  /// Group rank -> original channel slot. Identity until rebind() maps a
  /// survivor group onto the original partition.
  std::vector<int> logical_slots_;
  /// Pinned execution context (nullopt = read the ambient context per
  /// forward). Legacy DchagOptions::kernels/comm overlays land here too.
  std::optional<runtime::Context> ctx_;
  mutable std::optional<comm::SyncCollective> sync_coll_;
  mutable std::unique_ptr<comm::AsyncCommunicator> async_;
  std::unique_ptr<parallel::DistributedTokenizer> tokenizer_;
  std::unique_ptr<model::AggregationTree> tree_;
  std::unique_ptr<model::CrossAttentionAggregator> final_;
};

/// Convenience: full D-CHAG MAE / forecast models (front-end + replicated
/// encoder and head) built from one master seed. `ctx` pins the
/// front-end's execution context exactly as in DchagFrontEnd.
[[nodiscard]] std::unique_ptr<model::MaeModel> make_dchag_mae(
    const ModelConfig& cfg, Index total_channels, Communicator& comm,
    const DchagOptions& opts, Rng& master_rng,
    std::optional<runtime::Context> ctx = std::nullopt);
[[nodiscard]] std::unique_ptr<model::ForecastModel> make_dchag_forecast(
    const ModelConfig& cfg, Index total_channels, Communicator& comm,
    const DchagOptions& opts, Rng& master_rng,
    std::optional<runtime::Context> ctx = std::nullopt);

}  // namespace dchag::core
