// Dynamic micro-batching: lane coalescing up to max_batch, max-wait
// timeout release, compatibility keys, and close/drain semantics.
#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace dchag::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

Request make_request(std::vector<Index> channels, float lead = 1.0f) {
  const Index c = channels.empty() ? 2 : static_cast<Index>(channels.size());
  Request r;
  r.images = Tensor(Shape{c, 4, 4}, 0.5f);
  r.channels = std::move(channels);
  r.lead_time = lead;
  return r;
}

TEST(Batcher, CoalescesCompatibleRequestsUpToMaxBatch) {
  Batcher b({/*max_batch=*/4, /*max_wait=*/std::chrono::microseconds(
                 10'000'000)});
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(b.submit(make_request({0, 2})));
  for (int i = 0; i < 3; ++i) futures.push_back(b.submit(make_request({1})));
  EXPECT_EQ(b.depth(), 8u);

  // Lane {0,2} reached max_batch -> ships 4 immediately (no wait needed).
  auto batch = b.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 4u);
  EXPECT_EQ(batch->items.front().request.channels, (std::vector<Index>{0, 2}));
  EXPECT_EQ(b.depth(), 4u);

  // close() flushes leftovers oldest-first: the {0,2} remainder, then {1}.
  b.close();
  batch = b.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 1u);
  EXPECT_EQ(batch->items.front().request.channels, (std::vector<Index>{0, 2}));
  batch = b.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 3u);
  EXPECT_EQ(batch->items.front().request.channels, (std::vector<Index>{1}));
  EXPECT_FALSE(b.pop().has_value());
  EXPECT_EQ(b.depth(), 0u);
}

TEST(Batcher, MaxWaitReleasesPartialBatch) {
  const auto wait = std::chrono::microseconds(30'000);
  Batcher b({/*max_batch=*/8, wait});
  (void)b.submit(make_request({0, 1}));
  (void)b.submit(make_request({0, 1}));
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = b.pop();  // blocks until the oldest request ages out
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 2u);
  EXPECT_GE(elapsed, std::chrono::microseconds(20'000));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(Batcher, IncompatibleRequestsNeverShareABatch) {
  Batcher b({/*max_batch=*/8, std::chrono::microseconds(1000)});
  (void)b.submit(make_request({0, 1}, 1.0f));
  (void)b.submit(make_request({0, 1}, 2.0f));  // same subset, other lead
  (void)b.submit(make_request({0, 3}, 1.0f));  // other subset
  b.close();
  for (int i = 0; i < 3; ++i) {
    auto batch = b.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->items.size(), 1u) << "batch " << i;
  }
  EXPECT_FALSE(b.pop().has_value());
}

TEST(Batcher, ValidatesRequestsAndRejectsAfterClose) {
  Batcher b({4, std::chrono::microseconds(1000)});
  Request bad = make_request({0, 1, 2});
  bad.images = Tensor(Shape{2, 4, 4}, 0.0f);  // 2 slabs, 3 channel ids
  EXPECT_THROW(b.submit(std::move(bad)), Error);
  Request batched = make_request({});
  batched.images = Tensor(Shape{1, 2, 4, 4}, 0.0f);  // rank-4: not a sample
  EXPECT_THROW(b.submit(std::move(batched)), Error);
  EXPECT_THROW(b.submit(make_request({2, 0})), Error);  // unsorted subset
  EXPECT_THROW(b.submit(make_request({1, 1})), Error);  // duplicate id
  b.close();
  EXPECT_THROW(b.submit(make_request({0})), Error);
}

}  // namespace
}  // namespace dchag::serve
