// Shared-memory ring pair: create/open geometry validation, SPSC
// request/response flow, full/empty edges, liveness words, and a
// cross-thread producer/consumer stress run (threads stand in for the
// worker process; the memory-ordering contract is identical).
#include "ingress/shm_ring.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dchag::ingress {
namespace {

RingConfig small_ring() {
  RingConfig cfg;
  cfg.slots = 2;
  cfg.max_payload_floats = 64;
  return cfg;
}

TEST(ShmRing, CreateOpenRoundTrip) {
  const std::string name = make_ring_name();
  ShmRing creator = ShmRing::create(name, small_ring());
  ShmRing opener = ShmRing::open(name);
  EXPECT_EQ(opener.slots(), 2u);
  EXPECT_EQ(opener.max_payload_floats(), 64u);
  EXPECT_EQ(opener.state(), WorkerState::kStarting);
  EXPECT_EQ(opener.control(), ControlWord::kRun);
  creator.unlink();
  // The name is gone, but live mappings stay usable.
  EXPECT_THROW((void)ShmRing::open(name), std::exception);
  EXPECT_TRUE(creator.quiescent());
}

TEST(ShmRing, StaleSegmentNameIsAnError) {
  const std::string name = make_ring_name();
  ShmRing first = ShmRing::create(name, small_ring());
  // O_EXCL: a second create on the same name must fail loudly instead of
  // silently adopting a stale segment.
  EXPECT_THROW((void)ShmRing::create(name, small_ring()), std::exception);
  first.unlink();
}

TEST(ShmRing, RequestFlowAndFullEmptyEdges) {
  const std::string name = make_ring_name();
  ShmRing disp = ShmRing::create(name, small_ring());
  ShmRing work = ShmRing::open(name);

  RingRequest req;
  req.lead_time = 1.5f;
  req.n_channels = 2;
  req.channels[0] = 0;
  req.channels[1] = 3;
  req.c = 1;
  req.h = 2;
  req.w = 2;
  const float payload[4] = {1.0f, 2.0f, 3.0f, 4.0f};

  req.id = 1;
  EXPECT_TRUE(disp.try_push_request(req, payload, 4));
  req.id = 2;
  EXPECT_TRUE(disp.try_push_request(req, payload, 4));
  req.id = 3;
  EXPECT_FALSE(disp.try_push_request(req, payload, 4));  // full at 2 slots
  EXPECT_EQ(disp.request_backlog(), 2u);
  EXPECT_FALSE(disp.quiescent());

  RingRequest got;
  std::vector<float> got_payload;
  ASSERT_TRUE(work.try_pop_request(&got, &got_payload));
  EXPECT_EQ(got.id, 1u);
  EXPECT_FLOAT_EQ(got.lead_time, 1.5f);
  EXPECT_EQ(got.n_channels, 2u);
  EXPECT_EQ(got.channels[1], 3);
  ASSERT_EQ(got_payload.size(), 4u);
  EXPECT_EQ(got_payload[3], 4.0f);

  // A consumed slot frees capacity for the next push.
  req.id = 3;
  EXPECT_TRUE(disp.try_push_request(req, payload, 4));
  ASSERT_TRUE(work.try_pop_request(&got, &got_payload));
  EXPECT_EQ(got.id, 2u);
  ASSERT_TRUE(work.try_pop_request(&got, &got_payload));
  EXPECT_EQ(got.id, 3u);
  EXPECT_FALSE(work.try_pop_request(&got, &got_payload));  // empty

  disp.unlink();
}

TEST(ShmRing, ResponseFlowCarriesResultsAndErrors) {
  const std::string name = make_ring_name();
  ShmRing disp = ShmRing::create(name, small_ring());
  ShmRing work = ShmRing::open(name);

  RingResponse ok;
  ok.id = 10;
  ok.status = 0;
  ok.s = 2;
  ok.d = 3;
  const float pred[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(work.try_push_response(ok, pred, nullptr));

  RingResponse bad;
  bad.id = 11;
  bad.status = static_cast<std::uint32_t>(ErrorCode::kInternal);
  const std::string msg = "boom";
  bad.error_bytes = static_cast<std::uint32_t>(msg.size());
  EXPECT_TRUE(work.try_push_response(bad, nullptr, msg.data()));

  RingResponse got;
  std::vector<float> payload;
  std::string error;
  ASSERT_TRUE(disp.try_pop_response(&got, &payload, &error));
  EXPECT_EQ(got.id, 10u);
  EXPECT_EQ(got.status, 0u);
  ASSERT_EQ(payload.size(), 6u);
  EXPECT_EQ(payload[5], 6.0f);

  ASSERT_TRUE(disp.try_pop_response(&got, &payload, &error));
  EXPECT_EQ(got.id, 11u);
  EXPECT_EQ(got.status, static_cast<std::uint32_t>(ErrorCode::kInternal));
  EXPECT_EQ(error, "boom");
  EXPECT_FALSE(disp.try_pop_response(&got, &payload, &error));

  disp.unlink();
}

TEST(ShmRing, LivenessWords) {
  const std::string name = make_ring_name();
  ShmRing disp = ShmRing::create(name, small_ring());
  ShmRing work = ShmRing::open(name);

  EXPECT_EQ(disp.heartbeat(), 0u);
  work.beat();
  work.beat();
  EXPECT_EQ(disp.heartbeat(), 2u);

  work.set_state(WorkerState::kReady);
  EXPECT_EQ(disp.state(), WorkerState::kReady);
  disp.set_control(ControlWord::kDrainStop);
  EXPECT_EQ(work.control(), ControlWord::kDrainStop);

  disp.unlink();
}

TEST(ShmRing, CrossThreadSpscStress) {
  const std::string name = make_ring_name();
  ShmRing disp = ShmRing::create(name, small_ring());
  ShmRing work = ShmRing::open(name);
  constexpr std::uint64_t kN = 5000;

  // "Worker": echo each request id back, payload sum as a 1x1 result.
  std::thread worker([&] {
    RingRequest req;
    std::vector<float> payload;
    std::uint64_t served = 0;
    while (served < kN) {
      if (!work.try_pop_request(&req, &payload)) {
        std::this_thread::yield();
        continue;
      }
      float sum = 0.0f;
      for (const float v : payload) sum += v;
      RingResponse resp;
      resp.id = req.id;
      resp.s = 1;
      resp.d = 1;
      while (!work.try_push_response(resp, &sum, nullptr))
        std::this_thread::yield();
      ++served;
    }
  });

  RingRequest req;
  req.c = 1;
  req.h = 1;
  req.w = 4;
  std::uint64_t pushed = 0, popped = 0;
  RingResponse resp;
  std::vector<float> payload;
  std::string error;
  while (popped < kN) {
    if (pushed < kN) {
      const float base = static_cast<float>(pushed);
      const float data[4] = {base, base + 1, base + 2, base + 3};
      req.id = pushed + 1;
      if (disp.try_push_request(req, data, 4)) ++pushed;
    }
    while (disp.try_pop_response(&resp, &payload, &error)) {
      ++popped;
      EXPECT_EQ(resp.id, popped);  // SPSC preserves order
      const float base = static_cast<float>(popped - 1);
      ASSERT_EQ(payload.size(), 1u);
      EXPECT_FLOAT_EQ(payload[0], 4 * base + 6);
    }
  }
  worker.join();
  EXPECT_TRUE(disp.quiescent());
  disp.unlink();
}

}  // namespace
}  // namespace dchag::ingress
