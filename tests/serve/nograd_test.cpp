// The serving fast path's contract with the tape: NoGradGuard forwards
// allocate zero tape nodes, produce bit-identical values to grad-mode
// forwards, nest correctly, and eval-mode plumbing reaches every child.
#include <gtest/gtest.h>

#include "model/foundation.hpp"

namespace dchag::serve {
namespace {

namespace ops = dchag::tensor::ops;
using dchag::autograd::NoGradGuard;
using dchag::autograd::Variable;
using dchag::model::ForecastModel;
using dchag::model::ModelConfig;
using dchag::tensor::Index;
using dchag::tensor::Rng;
using dchag::tensor::Shape;
using dchag::tensor::Tensor;

ForecastModel make_model(Index channels, std::uint64_t seed) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(seed);
  auto fe = dchag::model::make_baseline_frontend(cfg, channels, rng);
  return ForecastModel(cfg, std::move(fe), channels, rng);
}

TEST(NoGrad, GuardDisablesRecordingAndRestores) {
  EXPECT_TRUE(dchag::autograd::is_grad_enabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(dchag::autograd::is_grad_enabled());
    {
      NoGradGuard nested;
      EXPECT_FALSE(dchag::autograd::is_grad_enabled());
    }
    EXPECT_FALSE(dchag::autograd::is_grad_enabled());
  }
  EXPECT_TRUE(dchag::autograd::is_grad_enabled());
}

TEST(NoGrad, OpsUnderGuardHaveNoHistory) {
  Rng rng(1);
  Variable w = Variable::param(rng.normal_tensor(Shape{3, 3}), "w");
  NoGradGuard guard;
  Variable y = autograd::matmul(w, w);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.node()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(y.node()->backward_fn));
}

TEST(NoGrad, ModelForwardAllocatesZeroTapeNodes) {
  ForecastModel model = make_model(3, 7);
  Rng data(2);
  Tensor images = data.normal_tensor(Shape{2, 3, 16, 16});

  // Grad mode builds a tape...
  const std::uint64_t before_grad = dchag::autograd::tape_nodes_created();
  (void)model.predict(images);
  const std::uint64_t grad_nodes =
      dchag::autograd::tape_nodes_created() - before_grad;
  EXPECT_GT(grad_nodes, 100u);

  // ...the serving path builds none.
  const std::uint64_t before = dchag::autograd::tape_nodes_created();
  {
    NoGradGuard guard;
    (void)model.predict(images);
  }
  EXPECT_EQ(dchag::autograd::tape_nodes_created(), before);
}

TEST(NoGrad, InferenceValuesMatchGradModeBitForBit) {
  ForecastModel model = make_model(4, 9);
  Rng data(3);
  Tensor images = data.normal_tensor(Shape{1, 4, 16, 16});
  Tensor with_grad = model.predict(images, 2.0f).value();
  Tensor without_grad;
  {
    NoGradGuard guard;
    without_grad = model.predict(images, 2.0f).value();
  }
  EXPECT_EQ(ops::max_abs_diff(with_grad, without_grad), 0.0f);
}

TEST(EvalMode, TrainFlagReachesEveryChild) {
  ForecastModel model = make_model(2, 11);
  EXPECT_TRUE(model.is_training());
  EXPECT_TRUE(model.frontend().is_training());
  model.eval();
  EXPECT_FALSE(model.is_training());
  EXPECT_FALSE(model.frontend().is_training());
  model.train();
  EXPECT_TRUE(model.is_training());
  EXPECT_TRUE(model.frontend().is_training());
}

}  // namespace
}  // namespace dchag::serve
