// POSIX shared-memory ring pair connecting the dispatcher to one worker
// process: an SPSC request ring (dispatcher produces, worker consumes) and
// an SPSC response ring (worker produces, dispatcher consumes), plus the
// liveness words health monitoring reads:
//
//   * heartbeat — the worker increments it on every loop tick; a stalled
//     counter with work in flight means a hung (not dead) worker.
//   * state    — kStarting -> kReady -> kDraining -> kStopped.
//   * control  — dispatcher-owned command word; kDrainStop tells the
//     worker to finish its ring and exit cleanly.
//
// One segment per worker: a crashing worker can only corrupt its own
// rings, and respawn is "new segment, new generation". The dispatcher is
// the creator/unlinker; the worker opens by name (passed via argv).
//
// Slots are fixed-size (header + max_payload_floats), so pushes never
// allocate in shared memory and a torn writer cannot move another slot's
// boundaries. Head/tail are monotonic counters; `head - tail` is the
// occupancy and slot index is `counter % slots`.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ingress/wire.hpp"

namespace dchag::ingress {

struct RingConfig {
  std::uint32_t slots = 4;  ///< per-direction slot count (also the max
                            ///< requests in flight inside one worker)
  std::uint32_t max_payload_floats = 1u << 16;  ///< per-slot tensor budget
};

enum class WorkerState : std::uint32_t {
  kStarting = 0,  ///< process spawned, model still loading
  kReady = 1,     ///< serving the request ring
  kDraining = 2,  ///< finishing the ring after kDrainStop
  kStopped = 3,   ///< clean exit imminent
};

enum class ControlWord : std::uint32_t {
  kRun = 0,
  kDrainStop = 1,  ///< finish queued requests, then exit(0)
};

/// Fixed-size request header copied into a slot; `n_payload` floats of
/// image data follow immediately after.
struct RingRequest {
  std::uint64_t id = 0;  ///< dispatcher-global id (not the client id)
  float lead_time = 1.0f;
  std::uint32_t n_channels = 0;
  std::int64_t channels[kMaxWireChannels] = {};
  std::int64_t c = 0, h = 0, w = 0;  ///< sample shape [C, H, W]
};

/// Fixed-size response header; `s * d` floats (ok) or `error_bytes` chars
/// (error) follow.
struct RingResponse {
  std::uint64_t id = 0;
  std::uint32_t status = 0;  ///< 0 = ok, else an ErrorCode
  std::uint32_t error_bytes = 0;
  std::int64_t s = 0, d = 0;  ///< prediction shape [S, D]
};

class ShmRing {
 public:
  /// Dispatcher side: creates and maps a fresh segment (O_EXCL — a stale
  /// segment with the same name is an error; scripts/check.sh sweeps
  /// strays from interrupted runs).
  [[nodiscard]] static ShmRing create(const std::string& name,
                                      RingConfig cfg);
  /// Worker side: opens and maps an existing segment, validating magic,
  /// version, and geometry.
  [[nodiscard]] static ShmRing open(const std::string& name);

  ShmRing(ShmRing&& other) noexcept;
  ShmRing& operator=(ShmRing&& other) noexcept;
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;
  ~ShmRing();  ///< unmaps; does NOT unlink (creator calls unlink()).

  /// Removes the name from /dev/shm; mappings stay valid until unmapped.
  void unlink();

  // --- dispatcher side -----------------------------------------------------
  /// False when the request ring is full (caller keeps the job queued).
  bool try_push_request(const RingRequest& hdr, const float* payload,
                        std::size_t n_payload);
  /// Pops one worker response; false when none pending. On status != 0,
  /// `error` receives the message and `payload` is untouched.
  bool try_pop_response(RingResponse* hdr, std::vector<float>* payload,
                        std::string* error);

  // --- worker side ---------------------------------------------------------
  bool try_pop_request(RingRequest* hdr, std::vector<float>* payload);
  bool try_push_response(const RingResponse& hdr, const float* payload,
                         const char* error_bytes);

  // --- liveness / control --------------------------------------------------
  void beat();
  [[nodiscard]] std::uint64_t heartbeat() const;
  void set_state(WorkerState s);
  [[nodiscard]] WorkerState state() const;
  void set_control(ControlWord c);
  [[nodiscard]] ControlWord control() const;

  /// Requests produced but not yet consumed by the worker.
  [[nodiscard]] std::size_t request_backlog() const;
  /// True when every pushed request has been consumed AND every response
  /// has been popped — the worker-retirement precondition.
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t slots() const;
  [[nodiscard]] std::uint32_t max_payload_floats() const;

 private:
  ShmRing() = default;
  struct Header;
  [[nodiscard]] static std::size_t segment_bytes(const RingConfig& cfg);
  [[nodiscard]] Header* hdr() const;
  [[nodiscard]] std::uint8_t* req_slot(std::uint64_t seq) const;
  [[nodiscard]] std::uint8_t* resp_slot(std::uint64_t seq) const;

  std::string name_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  bool creator_ = false;
};

/// Globally-unique segment name: "/dchag_ing_<pid>_<seq>_<rand>". The
/// prefix is load-bearing — scripts/check.sh sweeps /dev/shm/dchag_ing_*
/// left behind by interrupted runs.
[[nodiscard]] std::string make_ring_name();

}  // namespace dchag::ingress
