// Shared fixtures for the ingress suites: a tiny "trained" model, its
// checkpoint on disk, and the bit-exact reference forward every served
// answer is compared against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingress/dispatcher.hpp"
#include "ingress/worker.hpp"
#include "serve/engine.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "train/checkpoint.hpp"

namespace dchag::ingress::testutil {

inline constexpr tensor::Index kChannels = 4;

inline ModelSpec tiny_spec() {
  ModelSpec spec;
  spec.preset = "tiny";
  spec.channels = kChannels;
  spec.units = 2;
  return spec;
}

/// The "trained" model (seed 7) plus its checkpoint file — workers are
/// seeded differently (build_model's default seed 1), so a bit-exact
/// served answer proves the checkpoint cold start, not luck.
struct TrainedModel {
  std::unique_ptr<model::ForecastModel> model;
  serve::Engine engine;
  std::string checkpoint;

  TrainedModel()
      : model(build_model(tiny_spec(), /*seed=*/7)),
        engine(*model),
        checkpoint(::testing::TempDir() + "ingress_ckpt.bin") {
    train::save_module(checkpoint, *model);
  }

  /// Reference prediction [S, D] for one sample, same path the worker
  /// runs (Engine::run on a singleton batch).
  [[nodiscard]] tensor::Tensor reference(
      const tensor::Tensor& images,
      const std::vector<tensor::Index>& channels = {},
      float lead_time = 1.0f) const {
    tensor::Tensor pred = engine.run(
        images.reshape(tensor::Shape{1, images.dim(0), images.dim(1),
                                     images.dim(2)}),
        channels, lead_time);
    return pred.reshape(tensor::Shape{pred.dim(1), pred.dim(2)});
  }
};

inline tensor::Tensor sample_image(std::uint64_t seed,
                                   tensor::Index channels = kChannels) {
  tensor::Rng rng(seed);
  return rng.normal_tensor(tensor::Shape{channels, 16, 16});
}

inline void expect_bit_exact(const tensor::Tensor& got,
                             const tensor::Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (tensor::Index i = 0; i < want.numel(); ++i)
    ASSERT_EQ(got.data()[i], want.data()[i]) << "element " << i;
}

inline IngressConfig base_config(const TrainedModel& trained) {
  IngressConfig cfg;
  cfg.checkpoint = trained.checkpoint;
  cfg.model = tiny_spec();
  return cfg;
}

}  // namespace dchag::ingress::testutil
