// End-to-end serving: checkpoint cold start (save -> load into a fresh
// model), served responses bit-identical to the direct no-grad forward,
// worker-pool robustness to bad requests, metrics accounting, and the
// SPMD D-CHAG serving engine.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>

#include "core/dchag_frontend.hpp"
#include "serve/spmd_engine.hpp"
#include "train/checkpoint.hpp"

namespace dchag::serve {
namespace {

namespace ops = tensor::ops;
using model::AggLayerKind;
using model::ForecastModel;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;

constexpr Index kChannels = 4;

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::unique_ptr<ForecastModel> make_tree_model(std::uint64_t seed) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(seed);
  auto agg = model::AggregationTree::with_units(
      cfg, AggLayerKind::kCrossAttention, kChannels, 2, rng);
  auto fe = std::make_unique<model::LocalFrontEnd>(cfg, kChannels,
                                                   std::move(agg), rng);
  return std::make_unique<ForecastModel>(cfg, std::move(fe), kChannels, rng);
}

Tensor sample_image(std::uint64_t seed, Index channels) {
  Rng rng(seed);
  return rng.normal_tensor(Shape{channels, 16, 16});
}

TEST(Server, ColdStartServesBitForBitAgainstSourceModel) {
  // The "trained" model writes the checkpoint...
  auto source = make_tree_model(1);
  const std::string path = tmp_path("serve_ckpt.bin");
  train::save_module(path, *source);
  // ...a fresh differently-seeded model cold-starts from it.
  auto served = make_tree_model(999);
  train::load_module(path, *served);

  Engine engine(*served);
  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = std::chrono::microseconds(2000);
  Server server(engine.inference_fn(), cfg);

  struct Case {
    Request request;
    ResponseFuture future;
  };
  std::vector<Case> cases;
  const std::vector<std::vector<Index>> subsets{
      {}, {0, 1, 2, 3}, {1, 3}, {2}};
  for (int i = 0; i < 24; ++i) {
    Request r;
    const auto& subset = subsets[static_cast<std::size_t>(i) % 4];
    const Index c =
        subset.empty() ? kChannels : static_cast<Index>(subset.size());
    r.images = sample_image(100 + static_cast<std::uint64_t>(i), c);
    r.channels = subset;
    Case cs{r, {}};
    cs.future = server.submit(std::move(r));
    cases.push_back(std::move(cs));
  }
  server.start();

  autograd::NoGradGuard no_grad;
  for (Case& cs : cases) {
    Response resp = cs.future.get();
    const auto& s = cs.request.images.shape();
    Tensor batch1 =
        cs.request.images.reshape(Shape{1, s.dim(0), s.dim(1), s.dim(2)});
    Tensor direct =
        cs.request.channels.empty()
            ? source->predict(batch1, cs.request.lead_time).value()
            : source
                  ->predict_subset(batch1, cs.request.channels,
                                   cs.request.lead_time)
                  .value();
    Tensor direct_row =
        direct.reshape(Shape{direct.dim(1), direct.dim(2)});
    EXPECT_EQ(ops::max_abs_diff(resp.pred, direct_row), 0.0f);
    EXPECT_GE(resp.batch_size, 1);
  }
  server.drain();
  const Metrics::Snapshot m = server.metrics().summary();
  EXPECT_EQ(m.requests, 24u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.mean_batch_size, 1.0);  // pre-start parking guarantees coalescing
  std::remove(path.c_str());
}

TEST(Server, WorkerSurvivesFailingBatchAndKeepsServing) {
  auto served = make_tree_model(3);
  Engine engine(*served);
  ServerConfig cfg;
  cfg.batcher.max_batch = 2;
  cfg.batcher.max_wait = std::chrono::microseconds(500);
  Server server(engine.inference_fn(), cfg);
  server.start();

  // Channel id out of the model's range -> the batch fails, the future
  // carries the exception, the worker survives.
  Request bad;
  bad.images = sample_image(7, 2);
  bad.channels = {1, 17};
  ResponseFuture bad_future = server.submit(std::move(bad));
  EXPECT_THROW(bad_future.get(), Error);

  Request good;
  good.images = sample_image(8, kChannels);
  Response resp = server.submit(std::move(good)).get();
  EXPECT_EQ(resp.pred.rank(), 2);
  server.drain();
  const Metrics::Snapshot m = server.metrics().summary();
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.requests, 1u);
}

TEST(Server, MetricsCountBatchesAndPercentiles) {
  auto served = make_tree_model(5);
  Engine engine(*served);
  ServerConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = std::chrono::microseconds(1000);
  Server server(engine.inference_fn(), cfg);
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.images = sample_image(200 + static_cast<std::uint64_t>(i), kChannels);
    (void)server.submit(std::move(r));
  }
  server.start();
  server.drain();
  const Metrics::Snapshot m = server.metrics().summary();
  EXPECT_EQ(m.requests, 8u);
  EXPECT_EQ(m.batches, 2u);  // 8 parked compatible requests, max_batch 4
  EXPECT_EQ(m.mean_batch_size, 4.0);
  EXPECT_GT(m.p50_ms, 0.0);
  EXPECT_GE(m.p99_ms, m.p50_ms);
  EXPECT_GT(m.requests_per_s, 0.0);
  EXPECT_GE(m.max_queue_depth, 8u);
}

TEST(Server, SpmdEngineServesSubsetsIdenticallyToDirectRun) {
  ModelConfig cfg = ModelConfig::tiny();
  constexpr Index kSpmdChannels = 8;
  const auto factory = [&cfg](comm::Communicator& comm) {
    Rng master(42);  // every rank: same master seed (D-CHAG contract)
    return core::make_dchag_forecast(
        cfg, kSpmdChannels, comm,
        {/*tree_units=*/1, AggLayerKind::kLinear}, master);
  };
  SpmdEngine engine(/*ranks=*/2, factory);
  SpmdEngine reference(/*ranks=*/2, factory);

  ServerConfig scfg;
  scfg.batcher.max_batch = 4;
  scfg.batcher.max_wait = std::chrono::microseconds(1000);
  Server server(engine.inference_fn(), scfg);

  const std::vector<std::vector<Index>> subsets{{}, {0, 1, 6}};
  std::vector<Request> requests;
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 8; ++i) {
    Request r;
    const auto& subset = subsets[static_cast<std::size_t>(i) % 2];
    const Index c =
        subset.empty() ? kSpmdChannels : static_cast<Index>(subset.size());
    r.images = sample_image(300 + static_cast<std::uint64_t>(i), c);
    r.channels = subset;
    requests.push_back(r);
    futures.push_back(server.submit(std::move(r)));
  }
  server.start();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response resp = futures[i].get();
    const auto& s = requests[i].images.shape();
    Tensor batch1 =
        requests[i].images.reshape(Shape{1, s.dim(0), s.dim(1), s.dim(2)});
    Tensor direct = reference.run(batch1, requests[i].channels,
                                  requests[i].lead_time);
    EXPECT_EQ(ops::max_abs_diff(
                  resp.pred,
                  direct.reshape(Shape{direct.dim(1), direct.dim(2)})),
              0.0f)
        << "request " << i;
  }

  // An out-of-range channel id throws uniformly on every rank before any
  // collective: the request's future fails but the world keeps serving.
  Request bad;
  bad.images = sample_image(99, 2);
  bad.channels = {1, 17};
  ResponseFuture bad_future = server.submit(std::move(bad));
  EXPECT_THROW(bad_future.get(), Error);
  Request good;
  good.images = sample_image(98, kSpmdChannels);
  Response after = server.submit(std::move(good)).get();
  EXPECT_EQ(after.pred.rank(), 2);

  server.drain();
  EXPECT_GT(server.metrics().summary().mean_batch_size, 1.0);
}

TEST(Server, SpmdEnginePartialConstructionFailureDoesNotDeadlock) {
  ModelConfig cfg = ModelConfig::tiny();
  const auto factory = [&cfg](comm::Communicator& comm)
      -> std::unique_ptr<ForecastModel> {
    if (comm.rank() == 1) DCHAG_FAIL("simulated cold-start failure");
    Rng master(42);
    return core::make_dchag_forecast(cfg, 8, comm, {1, AggLayerKind::kLinear},
                                     master);
  };
  // Rank 0 constructs fine; rank 1 throws. The constructor must surface
  // the failure (with rank context) instead of hanging on rank 0's
  // never-arriving jobs.
  try {
    SpmdEngine engine(/*ranks=*/2, factory);
    FAIL() << "partial construction failure did not surface";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("simulated cold-start failure"), std::string::npos)
        << what;
  }
}

TEST(CheckpointColdStart, TruncatedAndCorruptFilesFailLoudly) {
  auto m = make_tree_model(6);
  const std::string path = tmp_path("serve_trunc.bin");
  train::save_module(path, *m);

  // Cut into the last parameter's float payload: load must name the size
  // mismatch instead of silently misreading.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 17));
  out.close();
  try {
    train::load_module(path, *m);
    FAIL() << "truncated checkpoint loaded silently";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bytes"), std::string::npos) << what;
  }

  // A byte-swapped header must be diagnosed as an endianness mismatch.
  std::string swapped = bytes;
  for (int i = 0; i < 8; ++i) swapped[4 + i] = bytes[4 + 7 - i];
  std::ofstream out2(path, std::ios::binary | std::ios::trunc);
  out2.write(swapped.data(), static_cast<std::streamsize>(swapped.size()));
  out2.close();
  try {
    train::load_module(path, *m);
    FAIL() << "byte-swapped checkpoint loaded silently";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("endianness"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Server, WorkersInheritConstructorSideContextOverride) {
  // Regression for the pre-Context footgun: "a scope set on the caller
  // silently does not reach worker threads". A runtime::Scope active
  // where the Server is BUILT must be what its workers forward under —
  // observed here inside the InferenceFn on the worker thread.
  std::mutex mu;
  std::vector<tensor::KernelBackend> observed;
  auto infer = [&](const Tensor& images, const std::vector<Index>&,
                   float) {
    {
      std::lock_guard<std::mutex> lock(mu);
      observed.push_back(tensor::kernel_config().backend);
    }
    return Tensor(Shape{images.dim(0), 1, 1});
  };

  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 1;
  std::optional<Server> server;
  {
    // Caller-side override, gone again before any batch executes.
    runtime::Scope scope(runtime::ContextPatch::with_kernels(
        {tensor::KernelBackend::kNaive, 0}));
    server.emplace(infer, cfg);
  }
  server->start();
  constexpr int kRequests = 4;
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request r;
    r.images = sample_image(40 + static_cast<std::uint64_t>(i), 2);
    futures.push_back(server->submit(std::move(r)));
  }
  for (auto& f : futures) (void)f.get();
  server->drain();

  ASSERT_EQ(observed.size(), static_cast<std::size_t>(kRequests));
  for (tensor::KernelBackend b : observed) {
    EXPECT_EQ(b, tensor::KernelBackend::kNaive)
        << "worker forward did not observe the submitter's context";
  }
  // The override never leaked into this (caller) thread's ambient state
  // (meaningful wherever the default isn't already degraded to naive).
  if (tensor::blocked_kernels_supported()) {
    EXPECT_NE(tensor::kernel_config().backend,
              tensor::KernelBackend::kNaive);
  }
}

TEST(World, ThrowingRankFailsRunWithRankContext) {
  comm::World world(2);
  try {
    world.run([](comm::Communicator& comm) {
      if (comm.rank() == 1) DCHAG_FAIL("simulated rank failure");
      // rank 0 returns normally; no collectives, so no deadlock.
    });
    FAIL() << "exception from rank 1 did not surface";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("simulated rank failure"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace dchag::serve
