// Edge cases and failure-injection for the SPMD runtime.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/async.hpp"
#include "comm/communicator.hpp"

namespace dchag::comm {
namespace {

TEST(CommEdge, RingWithFewerElementsThanRanks) {
  // n < P leaves some ring chunks empty; results must still be exact.
  World world(8);
  world.run([](Communicator& comm) {
    std::vector<float> d{static_cast<float>(comm.rank()), 1.0f};
    comm.all_reduce(d, ReduceOp::kSum, Algorithm::kRing);
    ASSERT_EQ(d[0], 28.0f);  // 0+1+...+7
    ASSERT_EQ(d[1], 8.0f);
  });
}

TEST(CommEdge, SingleElementRingAllReduce) {
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<float> d{1.0f};
    comm.all_reduce(d, ReduceOp::kSum, Algorithm::kRing);
    ASSERT_EQ(d[0], 4.0f);
  });
}

TEST(CommEdge, HierarchicalMinAndAvg) {
  World world(8, Topology::packed(8, 4));
  world.run([](Communicator& comm) {
    std::vector<float> mn{static_cast<float>(comm.rank())};
    comm.all_reduce(mn, ReduceOp::kMin, Algorithm::kHierarchical);
    ASSERT_EQ(mn[0], 0.0f);
    std::vector<float> avg{static_cast<float>(comm.rank())};
    comm.all_reduce(avg, ReduceOp::kAvg, Algorithm::kHierarchical);
    ASSERT_NEAR(avg[0], 3.5f, 1e-6f);
  });
}

TEST(CommEdge, WorldReusableAcrossRuns) {
  World world(4);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Communicator& comm) {
      std::vector<float> d{static_cast<float>(comm.rank() + round)};
      comm.all_reduce(d);
      ASSERT_EQ(d[0], 6.0f + 4.0f * round);
    });
  }
}

TEST(CommEdge, MixedAlgorithmsAgreeBitwiseOnInts) {
  // Integer-valued floats: direct, ring and hierarchical must agree
  // exactly (associativity differences cannot appear).
  World world(8, Topology::packed(8, 2));
  world.run([](Communicator& comm) {
    std::vector<float> base(17);
    std::iota(base.begin(), base.end(),
              static_cast<float>(comm.rank() * 17));
    for (Algorithm alg :
         {Algorithm::kDirect, Algorithm::kRing, Algorithm::kHierarchical}) {
      std::vector<float> d = base;
      comm.all_reduce(d, ReduceOp::kSum, alg);
      std::vector<float> ref = base;
      comm.all_reduce(ref, ReduceOp::kSum, Algorithm::kDirect);
      for (std::size_t i = 0; i < d.size(); ++i) ASSERT_EQ(d[i], ref[i]);
    }
  });
}

TEST(CommEdge, ReduceScatterRingUnevenChunks) {
  // recv size 3 with 4 ranks: send is 12 elements, ring chunking must
  // respect the exact chunk boundaries.
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<float> send(12);
    for (std::size_t i = 0; i < send.size(); ++i)
      send[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i);
    std::vector<float> recv(3);
    comm.reduce_scatter(send, recv, ReduceOp::kSum, Algorithm::kRing);
    for (std::size_t i = 0; i < 3; ++i) {
      const float idx =
          static_cast<float>(comm.rank()) * 3.0f + static_cast<float>(i);
      ASSERT_EQ(recv[i], 10.0f * idx);  // (1+2+3+4) * element index
    }
  });
}

TEST(CommEdge, BroadcastInvalidRootThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
    std::vector<float> d(3);
    comm.broadcast(d, 5);
  }),
               Error);
}

TEST(CommEdge, SendToSelfThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
    std::vector<float> d(1);
    if (comm.rank() == 0) comm.send(d, 0, 0);
    // rank 1 throws too so the run stays symmetric
    if (comm.rank() == 1) comm.recv(d, 1, 0);
  }),
               Error);
}

TEST(CommEdge, ZeroElementCollectivesSync) {
  // Empty payloads are legal rendezvous: no data moves, nothing derefs a
  // null span, and the group stays usable for real traffic afterwards.
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<float> empty;
    for (Algorithm alg :
         {Algorithm::kDirect, Algorithm::kRing, Algorithm::kHierarchical}) {
      comm.all_reduce(empty, ReduceOp::kSum, alg);
      comm.all_gather(empty, empty, alg);
      comm.reduce_scatter(empty, empty, ReduceOp::kSum, alg);
    }
    comm.broadcast(empty, 0);
    ASSERT_EQ(comm.stats().bytes_of(CollectiveKind::kAllReduce), 0u);
    // The group still works after the degenerate calls.
    std::vector<float> d{1.0f};
    comm.all_reduce(d);
    ASSERT_EQ(d[0], 4.0f);
  });
}

TEST(CommEdge, ZeroElementCollectivesAsync) {
  World world(4);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    std::vector<float> empty;
    CommFuture f1 = async.iall_reduce(empty);
    CommFuture f2 = async.iall_gather(empty, empty);
    CommFuture f3 = async.ireduce_scatter(empty, empty);
    CommFuture f4 = async.ibroadcast(empty, 0);
    f1.wait();
    f2.wait();
    f3.wait();
    f4.wait();
    std::vector<float> d{2.0f};
    CommFuture f5 = async.iall_reduce(d);
    f5.wait();
    ASSERT_EQ(d[0], 8.0f);
  });
}

TEST(CommEdge, SingleRankCollectivesSync) {
  // P = 1 worlds must behave as identities (gather/scatter degenerate to
  // copies, avg of one value is itself) for every collective.
  World world(1);
  world.run([](Communicator& comm) {
    std::vector<float> d{3.0f, 4.0f};
    comm.all_reduce(d, ReduceOp::kAvg);
    ASSERT_EQ(d[0], 3.0f);
    std::vector<float> send{5.0f, 6.0f};
    std::vector<float> recv(2, 0.0f);
    comm.all_gather(send, recv);
    ASSERT_EQ(recv, send);
    std::vector<float> rs(2, 0.0f);
    comm.reduce_scatter(send, rs, ReduceOp::kMax);
    ASSERT_EQ(rs, send);
    std::vector<float> bc{7.0f};
    comm.broadcast(bc, 0);
    ASSERT_EQ(bc[0], 7.0f);
    comm.barrier();
  });
}

TEST(CommEdge, SingleRankCollectivesAsync) {
  World world(1);
  world.run([](Communicator& comm) {
    AsyncCommunicator async(comm);
    ASSERT_EQ(async.size(), 1);
    std::vector<float> d{3.0f};
    std::vector<float> send{5.0f, 6.0f};
    std::vector<float> recv(2, 0.0f);
    std::vector<float> rs(2, 0.0f);
    std::vector<float> bc{7.0f};
    CommFuture f1 = async.iall_reduce(d, ReduceOp::kAvg);
    CommFuture f2 = async.iall_gather(send, recv);
    CommFuture f3 = async.ireduce_scatter(send, rs);
    CommFuture f4 = async.ibroadcast(bc, 0);
    f1.wait();
    f2.wait();
    f3.wait();
    f4.wait();
    ASSERT_EQ(d[0], 3.0f);
    ASSERT_EQ(recv, send);
    ASSERT_EQ(rs, send);
    ASSERT_EQ(bc[0], 7.0f);
  });
}

TEST(CommEdge, LargePayloadAllReduce) {
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<float> d(1 << 18, 1.0f);  // 1 MiB per rank
    comm.all_reduce(d, ReduceOp::kSum, Algorithm::kRing);
    ASSERT_EQ(d.front(), 4.0f);
    ASSERT_EQ(d.back(), 4.0f);
    ASSERT_EQ(d[12345], 4.0f);
  });
}

}  // namespace
}  // namespace dchag::comm
