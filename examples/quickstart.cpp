// Quickstart: the smallest end-to-end D-CHAG program.
//
//   1. Build a small multi-channel foundation model.
//   2. Run it under D-CHAG on 4 simulated ranks (threads).
//   3. Verify the distributed forward pass equals the single-device model
//      and that the backward pass needs no communication.
//   4. Ask the capacity planner what the same architecture looks like at
//      paper scale (7B parameters, 512 channels, two Frontier nodes).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/dchag_frontend.hpp"
#include "core/planner.hpp"

using namespace dchag;

int main() {
  // ----- 1. a small foundation model over 8-channel images -------------------
  model::ModelConfig cfg = model::ModelConfig::tiny();  // D=32, 2 blocks
  constexpr tensor::Index kChannels = 8;
  tensor::Rng data_rng(1);
  tensor::Tensor images =
      data_rng.normal_tensor({2, kChannels, cfg.image_h, cfg.image_w});

  std::printf("model: D=%lld, %lld ViT blocks, %lld channels, %lldx%lld "
              "images\n",
              static_cast<long long>(cfg.embed_dim),
              static_cast<long long>(cfg.num_layers),
              static_cast<long long>(kChannels),
              static_cast<long long>(cfg.image_h),
              static_cast<long long>(cfg.image_w));

  // Execution configuration lives in ONE place: the runtime context.
  // from_env() honours DCHAG_KERNEL / DCHAG_THREADS / DCHAG_COMM /
  // DCHAG_COMM_CHUNKS; chain .to_builder().kernel_backend(...)... to pin
  // anything else per deployment.
  const runtime::Context ctx = runtime::Context::from_env();

  // ----- 2./3. D-CHAG on 4 simulated ranks -----------------------------------
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    tensor::Rng rng(42);  // every rank uses the same master seed
    core::DchagFrontEnd frontend(cfg, kChannels, comm,
                                 {/*tree_units=*/1,
                                  model::AggLayerKind::kLinear},
                                 rng, ctx);
    // Each rank consumes only its slice of the channels...
    tensor::Tensor local = frontend.slice_local_channels(images);
    autograd::Variable tokens = frontend.forward(local);
    // ...yet produces the full aggregated representation, replicated.
    const bool replicated = parallel::is_replicated(tokens.value(), comm,
                                                    1e-5f);

    const auto calls_after_forward = comm.stats().total_calls();
    autograd::mean_all(autograd::mul(tokens, tokens)).backward();
    const bool silent_backward =
        comm.stats().total_calls() == calls_after_forward;

    if (comm.rank() == 0) {
      std::printf("rank 0: output %s, replicated across ranks: %s\n",
                  tokens.shape().to_string().c_str(),
                  replicated ? "yes" : "NO");
      std::printf("rank 0: backward communication-free: %s (the D-CHAG "
                  "property)\n",
                  silent_backward ? "yes" : "NO");
      std::printf("rank 0: forward AllGather payload: %llu bytes\n",
                  static_cast<unsigned long long>(comm.stats().bytes_of(
                      comm::CollectiveKind::kAllGather)));
    }
  });

  // ----- 4. plan the paper-scale deployment -----------------------------------
  core::PlanRequest req;
  req.cfg = model::ModelConfig::preset("7B");
  req.channels = 512;
  req.gpus = 16;  // two Frontier nodes
  const core::Plan best = core::Planner::best(req);
  std::printf("\nplanner: best 7B/512ch layout on 16 GPUs -> %s\n",
              best.describe().c_str());
  return 0;
}
