// Chaos suite for elastic SPMD serving: 64 seeded schedules spread
// across {rank death, link partition, straggler} x {2, 4, 8} ranks. For
// every structural failure the engine must (a) keep answering during
// recovery — each answer bit-exact with a healthy world's forward over
// either the full or the surviving channel set — and (b) after the
// respawned rank rejoins, answer bit-exactly like a world that never
// failed. Every assertion message carries the seed + one-line schedule
// (FaultPlan::describe), so a red run reproduces from the log alone.
// Runs under both DCHAG_COMM modes (the CI comm matrix flips the env).
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <sstream>

#include "core/dchag_frontend.hpp"
#include "serve/spmd_engine.hpp"
#include "testing/schedules.hpp"

namespace dchag::serve {
namespace {

namespace ops = tensor::ops;
using dchag::testing::ChaosKind;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;

constexpr Index kChannels = 8;  // divisible by every world size in play

SpmdEngine::RankModelFactory factory_for(ModelConfig cfg) {
  return [cfg](comm::Communicator& comm) {
    Rng master(42);  // every rank (and respawn): same master seed
    core::DchagOptions opts{/*tree_units=*/1, AggLayerKind::kLinear};
    return core::make_dchag_forecast(cfg, kChannels, comm, opts, master);
  };
}

TEST(SpmdChaos, SixtyFourSeededSchedulesServeDegradedThenHealBitExact) {
  const ModelConfig cfg = ModelConfig::tiny();
  // One healthy oracle per world size, reused across schedules.
  std::map<int, std::unique_ptr<SpmdEngine>> oracles;
  for (int P : {2, 4, 8})
    oracles[P] = std::make_unique<SpmdEngine>(P, factory_for(cfg));

  constexpr int kSchedules = 64;
  constexpr std::array<int, 3> kSizes{2, 4, 8};
  constexpr std::array<ChaosKind, 3> kKinds{
      ChaosKind::kDeath, ChaosKind::kPartition, ChaosKind::kStraggler};

  for (int sched = 0; sched < kSchedules; ++sched) {
    const int P = kSizes[static_cast<std::size_t>(sched % 3)];
    const ChaosKind kind = kKinds[static_cast<std::size_t>((sched / 3) % 3)];
    const comm::FaultSpec spec = dchag::testing::chaos_schedule(
        static_cast<std::uint64_t>(sched), kind, P);
    const auto plan = comm::make_fault_plan(spec, P);
    std::ostringstream os;
    os << "sched=" << sched << " P=" << P << " | " << plan->describe();
    const std::string repro = os.str();

    SpmdEngineConfig ecfg;
    ecfg.metrics = std::make_shared<Metrics>();
    SpmdEngine engine(
        P, factory_for(cfg), ecfg,
        runtime::Context::current().to_builder().fault_plan(plan).build());
    SpmdEngine& oracle = *oracles[P];

    const Tensor img = Rng(1000 + static_cast<std::uint64_t>(sched))
                           .normal_tensor(Shape{1, kChannels, 16, 16});
    const Tensor full = oracle.run(img, {}, 1.0f);
    const std::vector<int> dead =
        dchag::testing::chaos_casualties(spec, P);

    if (dead.empty()) {
      // Straggler schedule: slowness is never failure — every answer is
      // the healthy one and no recovery machinery fires.
      for (int i = 0; i < 3; ++i)
        ASSERT_EQ(ops::max_abs_diff(engine.run(img, {}, 1.0f), full), 0.0f)
            << "job " << i << " | " << repro;
      const Metrics::Snapshot m = ecfg.metrics->summary();
      EXPECT_EQ(m.recoveries, 0u) << repro;
      EXPECT_EQ(m.degraded_responses, 0u) << repro;
      continue;
    }

    // Degraded ground truth: the healthy oracle's answer over exactly
    // the surviving channels.
    const Index c_local = kChannels / P;
    std::vector<Index> surviving;
    std::vector<Tensor> slabs;
    for (int r = 0; r < P; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) continue;
      for (Index c = 0; c < c_local; ++c)
        surviving.push_back(static_cast<Index>(r) * c_local + c);
      slabs.push_back(ops::slice(img, 1,
                                 static_cast<Index>(r) * c_local, c_local));
    }
    const Tensor degraded_img =
        slabs.size() == 1 ? slabs.front() : ops::concat(slabs, 1);
    const Tensor degraded = oracle.run(degraded_img, surviving, 1.0f);

    // Drive jobs through the event: the interrupted job is retried by
    // the survivors and returns the degraded answer; once the respawn
    // finishes, answers flip back to the full one. Nothing else is
    // acceptable.
    bool saw_degraded = false;
    for (int i = 0; i < 8; ++i) {
      const Tensor got = engine.run(img, {}, 1.0f);
      const bool is_full = ops::max_abs_diff(got, full) == 0.0f;
      const bool is_degraded = ops::max_abs_diff(got, degraded) == 0.0f;
      ASSERT_TRUE(is_full || is_degraded)
          << "job " << i << " matches neither healthy nor degraded | "
          << repro;
      saw_degraded = saw_degraded || is_degraded;
    }
    ASSERT_TRUE(saw_degraded) << "event never fired in 8 jobs | " << repro;

    engine.wait_recovered();
    ASSERT_EQ(ops::max_abs_diff(engine.run(img, {}, 1.0f), full), 0.0f)
        << "post-heal parity | " << repro;
    const Metrics::Snapshot m = ecfg.metrics->summary();
    EXPECT_GE(m.recoveries, 1u) << repro;
    EXPECT_GT(m.mean_recovery_ms, 0.0) << repro;
    EXPECT_GE(m.degraded_responses, 1u) << repro;
  }
}

}  // namespace
}  // namespace dchag::serve
