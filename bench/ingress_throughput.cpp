// Ingress tier overhead bench: end-to-end requests/s through the full
// network path (TCP -> dispatcher -> shm ring -> worker process) versus
// the zero-overhead in-process serve::Engine bound on the same model and
// checkpoint. Emits BENCH_ingress.json in Google-Benchmark JSON shape so
// scripts/bench_compare.py can gate the ratio scale-free in CI:
//
//   scripts/bench_compare.py --fresh BENCH_ingress.json \
//       --speedup BM_ServeInProcess BM_ServeIngress 0.7
//
// (ratio = inproc_time / ingress_time = ingress_thpt / inproc_thpt.)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ingress/client.hpp"
#include "ingress/dispatcher.hpp"
#include "ingress/worker.hpp"
#include "serve/engine.hpp"
#include "tensor/rng.hpp"
#include "train/checkpoint.hpp"

using namespace dchag;

namespace {

constexpr tensor::Index kChannels = 6;
constexpr tensor::Index kImage = 16;
constexpr int kRequests = 256;
constexpr int kClients = 4;
constexpr int kWorkers = 2;

ingress::ModelSpec spec() {
  ingress::ModelSpec s;
  s.preset = "tiny";
  s.channels = kChannels;
  s.units = 2;
  return s;
}

tensor::Tensor sample(std::uint64_t seed) {
  tensor::Rng rng(seed);
  return rng.normal_tensor({kChannels, kImage, kImage});
}

/// ns per request of a plain single-thread Engine::run loop — the
/// in-process bound the ingress tier is measured against.
double run_in_process(serve::Engine& engine) {
  // Warm-up outside the timed window.
  (void)engine.run(sample(1).reshape({1, kChannels, kImage, kImage}), {},
                   1.0f);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const tensor::Tensor image = sample(100 + static_cast<std::uint64_t>(i));
    (void)engine.run(image.reshape({1, kChannels, kImage, kImage}), {},
                     1.0f);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         kRequests;
}

/// ns per request of the full network path: kClients concurrent
/// connections against a kWorkers-process pool.
double run_ingress(const std::string& checkpoint) {
  ingress::IngressConfig cfg;
  cfg.min_workers = kWorkers;
  cfg.max_workers = kWorkers;
  cfg.queue_capacity = 512;
  cfg.checkpoint = checkpoint;
  cfg.model = spec();
  ingress::Ingress ing(cfg);

  // Warm-up: one request per client-to-be so every worker has faulted in
  // its pages before the timed window.
  {
    ingress::Client warm(ing.port());
    for (int i = 0; i < 2 * kWorkers; ++i) (void)warm.infer(sample(2));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ingress::Client client(ing.port());
      for (int i = 0; i < kRequests / kClients; ++i) {
        const std::uint64_t seed =
            1000 + static_cast<std::uint64_t>(c * kRequests + i);
        (void)client.infer(sample(seed));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double ns_per_req =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kRequests;
  ing.drain();
  return ns_per_req;
}

void emit_row(std::ofstream& json, const char* name, double ns,
              bool trailing_comma) {
  json << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\","
       << " \"iterations\": " << kRequests << ", \"real_time\": " << ns
       << ", \"cpu_time\": " << ns << ", \"time_unit\": \"ns\","
       << " \"requests_per_second\": " << 1e9 / ns << "}"
       << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

int main() {
  bench::header("ingress_throughput",
                "network ingress tier vs in-process serving bound");

  // One trained model; the workers cold-start from its checkpoint, the
  // in-process engine serves it directly — identical math on both paths.
  auto model = ingress::build_model(spec(), /*seed=*/11);
  serve::Engine engine(*model);
  const char* tmp = std::getenv("TMPDIR");
  const std::string checkpoint =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_ingress_ckpt.bin";
  train::save_module(checkpoint, *model);

  bench::section("requests/s (tiny model, 16x16 images, 256 requests)");
  const double inproc_ns = run_in_process(engine);
  std::printf("%-18s %12.1f req/s  %10.3f ms/req\n", "in-process",
              1e9 / inproc_ns, inproc_ns / 1e6);
  const double ingress_ns = run_ingress(checkpoint);
  std::printf("%-18s %12.1f req/s  %10.3f ms/req  (%d workers, %d clients)\n",
              "ingress", 1e9 / ingress_ns, ingress_ns / 1e6, kWorkers,
              kClients);
  const double ratio = inproc_ns / ingress_ns;
  std::printf("%-18s %12.2fx of in-process throughput\n", "ingress tier",
              ratio);

  std::ofstream json("BENCH_ingress.json");
  json << "{\n  \"context\": {\"bench\": \"ingress_throughput\","
       << " \"model\": \"tiny, " << kChannels << " channels, " << kImage
       << "x" << kImage << "\", \"requests\": " << kRequests
       << ", \"workers\": " << kWorkers << ", \"clients\": " << kClients
       << "},\n  \"benchmarks\": [\n";
  emit_row(json, "BM_ServeInProcess", inproc_ns, true);
  emit_row(json, "BM_ServeIngress", ingress_ns, false);
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_ingress.json\n");
  std::remove(checkpoint.c_str());

  bench::ShapeChecks checks;
  checks.expect(inproc_ns > 0 && ingress_ns > 0, "both paths measured");
  checks.expect(ratio >= 0.7,
                "ingress tier sustains >= 0.7x of in-process throughput");
  return checks.report();
}
