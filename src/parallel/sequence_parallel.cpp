#include "parallel/sequence_parallel.hpp"

#include "model/attention.hpp"

namespace dchag::parallel {

namespace ops = tensor::ops;
using model::detail::merge_heads;
using model::detail::scaled_attention;
using model::detail::split_heads;

Variable scatter_sequence(const Variable& x, Communicator& comm) {
  const Index S = x.shape().dim(1);
  const int P = comm.size();
  DCHAG_CHECK(S % P == 0,
              "sequence " << S << " not divisible by SP group " << P);
  const Index shard = S / P;
  // x is replicated; each rank's slice grads recombine additively into
  // the replicated tensor's grad via the slice backward.
  return autograd::slice(x, 1, comm.rank() * shard, shard);
}

Variable gather_sequence(const Variable& x_local, Communicator& comm) {
  if (comm.size() == 1) return x_local;
  return all_gather_cat(x_local, comm, /*dim=*/1,
                        GatherBackward::kLocalSlice);
}

SequenceParallelViTBlock::SequenceParallelViTBlock(const ModelConfig& cfg,
                                                   Communicator& comm,
                                                   tensor::Rng& rng,
                                                   const std::string& name)
    : heads_(cfg.num_heads), comm_(&comm) {
  // Same draw order as model::ViTBlock so weights replicate the serial
  // encoder exactly: attention fork (wq, wk, wv, wo), then the MLP from
  // the block stream.
  tensor::Rng r = rng.fork(std::hash<std::string>{}(name));
  const Index d = cfg.embed_dim;
  ln1_ = std::make_unique<autograd::LayerNorm>(d, name + ".ln1");
  tensor::Rng attn_rng = r.fork(std::hash<std::string>{}(name + ".attn"));
  wq_ = std::make_unique<autograd::Linear>(d, d, attn_rng, name + ".wq");
  wk_ = std::make_unique<autograd::Linear>(d, d, attn_rng, name + ".wk");
  wv_ = std::make_unique<autograd::Linear>(d, d, attn_rng, name + ".wv");
  wo_ = std::make_unique<autograd::Linear>(d, d, attn_rng, name + ".wo");
  ln2_ = std::make_unique<autograd::LayerNorm>(d, name + ".ln2");
  mlp_up_ = std::make_unique<autograd::Linear>(d, cfg.mlp_ratio * d, r,
                                               name + ".mlp_up");
  mlp_down_ = std::make_unique<autograd::Linear>(cfg.mlp_ratio * d, d, r,
                                                 name + ".mlp_down");
  register_child(*ln1_);
  register_child(*wq_);
  register_child(*wk_);
  register_child(*wv_);
  register_child(*wo_);
  register_child(*ln2_);
  register_child(*mlp_up_);
  register_child(*mlp_down_);
}

Variable SequenceParallelViTBlock::forward(const Variable& x_local) const {
  Variable normed = ln1_->forward(x_local);
  // Queries from the local slice only; keys/values gathered over the full
  // sequence (each rank's kv contribution feeds every rank's attention ->
  // general reduce-scatter backward).
  Variable q = split_heads(wq_->forward(normed), heads_);
  Variable kv_full =
      comm_->size() == 1
          ? normed
          : all_gather_cat(normed, *comm_, /*dim=*/1,
                           GatherBackward::kReduceScatter);
  Variable k = split_heads(wk_->forward(kv_full), heads_);
  Variable v = split_heads(wv_->forward(kv_full), heads_);
  Variable attn = wo_->forward(merge_heads(scaled_attention(q, k, v)));
  Variable h = autograd::add(x_local, attn);
  Variable mlp = mlp_down_->forward(
      autograd::gelu(mlp_up_->forward(ln2_->forward(h))));
  return autograd::add(h, mlp);
}

SequenceParallelViTEncoder::SequenceParallelViTEncoder(
    const ModelConfig& cfg, Communicator& comm, tensor::Rng& rng,
    const std::string& name) {
  blocks_.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (Index i = 0; i < cfg.num_layers; ++i) {
    blocks_.push_back(std::make_unique<SequenceParallelViTBlock>(
        cfg, comm, rng, name + ".block" + std::to_string(i)));
    register_child(*blocks_.back());
  }
  final_ln_ =
      std::make_unique<autograd::LayerNorm>(cfg.embed_dim, name + ".final_ln");
  register_child(*final_ln_);
}

Variable SequenceParallelViTEncoder::forward(const Variable& x_local) const {
  Variable h = x_local;
  for (const auto& block : blocks_) h = block->forward(h);
  return final_ln_->forward(h);
}

void SequenceParallelViTEncoder::sync_gradients(Communicator& comm) const {
  for (const Variable& p : parameters()) {
    if (!p.has_grad()) continue;
    tensor::Tensor g = p.node()->grad;  // aliases grad storage
    comm.all_reduce(g.span(), comm::ReduceOp::kSum);
  }
}

}  // namespace dchag::parallel
