#include "train/loops.hpp"

#include <gtest/gtest.h>

#include "data/hyperspectral.hpp"
#include "data/weather.hpp"

namespace dchag::train {
namespace {

using data::HyperspectralConfig;
using data::HyperspectralGenerator;
using data::WeatherConfig;
using data::WeatherGenerator;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

ModelConfig tiny() { return ModelConfig::tiny(); }

TEST(TrainMae, LossDecreasesOnHyperspectralData) {
  ModelConfig cfg = tiny();
  const Index C = 6;
  HyperspectralConfig hc;
  hc.channels = C;
  hc.height = 16;
  hc.width = 16;
  HyperspectralGenerator gen(hc, 1);

  Rng rng(2024);
  auto fe = model::make_baseline_frontend(cfg, C, rng);
  model::MaeModel mae(cfg, std::move(fe), C, rng);

  // Deterministic data stream: pre-generate batches.
  std::vector<Tensor> batches;
  for (int i = 0; i < 30; ++i) batches.push_back(gen.sample_batch(2));

  LoopConfig lc;
  lc.steps = 30;
  lc.batch = 2;
  lc.adam.lr = 3e-3f;
  TrainCurve curve = train_mae(mae, lc, [&](Index step) {
    return batches[static_cast<std::size_t>(step)];
  });
  ASSERT_EQ(curve.losses.size(), 30u);
  const float early = (curve.losses[0] + curve.losses[1] + curve.losses[2]) / 3;
  EXPECT_LT(curve.tail_mean(5), 0.7f * early);
  for (float l : curve.losses) EXPECT_TRUE(std::isfinite(l));
}

TEST(TrainForecast, LossDecreasesOnWeatherData) {
  ModelConfig cfg = tiny();
  WeatherConfig wc;
  wc.num_variables = 2;
  wc.levels_per_variable = 2;
  wc.surface_variables = 2;  // 6 channels
  wc.height = 16;
  wc.width = 16;
  WeatherGenerator gen(wc, 3);

  Rng rng(2025);
  auto fe = model::make_baseline_frontend(cfg, wc.channels(), rng);
  model::ForecastModel fm(cfg, std::move(fe), wc.channels(), rng);

  std::vector<WeatherGenerator::Pair> pairs;
  for (int i = 0; i < 30; ++i) pairs.push_back(gen.sample_pair(2, 1.0f));

  LoopConfig lc;
  lc.steps = 30;
  lc.adam.lr = 3e-3f;
  TrainCurve curve = train_forecast(fm, lc, [&](Index step) {
    const auto& p = pairs[static_cast<std::size_t>(step)];
    return std::make_pair(p.now, p.future);
  });
  const float early = curve.losses[0];
  EXPECT_LT(curve.tail_mean(5), 0.8f * early);
}

TEST(EvaluateForecastRmse, ReturnsPerChannelValues) {
  ModelConfig cfg = tiny();
  WeatherConfig wc;
  wc.num_variables = 1;
  wc.levels_per_variable = 2;
  wc.surface_variables = 1;  // 3 channels
  wc.height = 16;
  wc.width = 16;
  WeatherGenerator gen(wc, 4);
  Rng rng(2026);
  auto fe = model::make_baseline_frontend(cfg, wc.channels(), rng);
  model::ForecastModel fm(cfg, std::move(fe), wc.channels(), rng);

  auto rmse = evaluate_forecast_rmse(
      fm, cfg.patch_size,
      [&](Index) {
        auto p = gen.sample_pair(1, 1.0f);
        return std::make_pair(p.now, p.future);
      },
      3);
  ASSERT_EQ(rmse.size(), 3u);
  for (float r : rmse) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0f);
  }
}

TEST(TrainCurve, TailMeanAveragesLastK) {
  TrainCurve c;
  c.losses = {10.0f, 2.0f, 4.0f};
  EXPECT_NEAR(c.tail_mean(2), 3.0f, 1e-6f);
  EXPECT_NEAR(c.tail_mean(100), 16.0f / 3.0f, 1e-5f);
  EXPECT_EQ(c.final_loss(), 4.0f);
}

}  // namespace
}  // namespace dchag::train
