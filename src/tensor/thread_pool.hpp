// Fixed-size thread pool with a parallel_for primitive — the substrate of
// the parallel kernel backend (kernel_config.hpp). Deliberately
// work-stealing-free: chunks are handed out through one shared atomic
// cursor, so execution order is deterministic enough for the blocked and
// parallel matmul backends to stay bit-identical (each output element's
// accumulation order never depends on the thread count).
//
// The caller always participates in its own parallel_for, so a pool sized
// for N hardware threads spawns N-1 workers. Many threads may issue
// parallel_for concurrently (serve workers, SPMD ranks): their chunks
// interleave on the shared workers instead of oversubscribing the machine.
// A parallel_for issued from inside another parallel_for runs inline on
// the calling thread — nesting never deadlocks and never over-splits.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "tensor/shape.hpp"

namespace dchag::tensor {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: every parallel_for runs inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, sized on first use from the environment's
  /// thread budget (DCHAG_THREADS via Context::from_env()) minus the
  /// caller lane; default: hardware_concurrency - 1. A Context's
  /// KernelConfig::threads only CAPS individual parallel_fors — it
  /// never resizes this pool.
  static ThreadPool& global();

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }
  /// Concurrency of a parallel_for on this pool: workers + the caller.
  [[nodiscard]] int lanes() const { return workers() + 1; }

  /// Splits [0, n) into contiguous chunks of at least `grain` iterations
  /// and runs fn(begin, end) on the pool + the calling thread. Blocks
  /// until every chunk finished. The first exception thrown by any chunk
  /// is rethrown here (remaining chunks are skipped). Runs fully inline
  /// when the range is small, the pool has no workers, or the call is
  /// nested inside another parallel_for. `max_lanes` > 0 caps the number
  /// of chunks (KernelConfig::threads plumbs through here).
  ///
  /// Pool workers run their chunks under the SUBMITTER's effective
  /// runtime::Context (captured here, installed as a runtime::Scope on
  /// the worker), so overrides active on the calling thread — backend,
  /// tracing sink, everything — follow the work across the fan-out.
  void parallel_for(Index n, Index grain,
                    const std::function<void(Index, Index)>& fn,
                    int max_lanes = 0);

  /// True while the current thread is executing a parallel_for chunk
  /// (pool worker or participating caller). Nested calls check this.
  [[nodiscard]] static bool in_parallel_region();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> threads_;
};

/// The pool the calling thread's effective runtime::Context designates:
/// Context::pool() when set, else the process-wide global() pool. All
/// kernel fan-out (dispatch.hpp, ops.cpp) routes through here.
[[nodiscard]] ThreadPool& active_pool();

}  // namespace dchag::tensor
