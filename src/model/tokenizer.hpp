// Per-channel patch tokenization (paper Fig. 1, left).
//
// Every channel of the input image is patchified and embedded with its own
// projection weights (as in ClimaX/ORBIT, where each physical variable has
// its own patch embedding), then tagged with a channel-ID embedding and a
// shared positional embedding. This per-channel independence is exactly
// what lets D-CHAG split tokenization across ranks without changing the
// math: a tokenizer over a channel subset produces bit-identical tokens to
// the corresponding slice of a full tokenizer with the same weights.
#pragma once

#include <span>
#include <vector>

#include "model/config.hpp"
#include "tensor/module.hpp"

namespace dchag::model {

using autograd::Linear;
using autograd::Module;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Rearranges images [B, C, H, W] into patches [B, C, S, p*p]
/// (S = (H/p)*(W/p), patches in row-major spatial order).
[[nodiscard]] Tensor patchify(const Tensor& images, Index patch);

/// Inverse of patchify: [B, C, S, p*p] -> [B, C, H, W].
[[nodiscard]] Tensor unpatchify(const Tensor& patches, Index patch, Index h,
                                Index w);

class PatchTokenizer : public Module {
 public:
  /// Tokenizes the channel subset `channel_ids` (global channel indices;
  /// used to seed per-channel weights identically regardless of how the
  /// channels are partitioned across ranks). A full tokenizer passes
  /// {0..C-1}.
  PatchTokenizer(const ModelConfig& cfg, std::vector<Index> channel_ids,
                 Rng& rng);

  /// Convenience: tokenizer over all `channels` channels.
  PatchTokenizer(const ModelConfig& cfg, Index channels, Rng& rng);

  /// images: [B, C_local, H, W] with channels ordered as channel_ids.
  /// Returns tokens [B, C_local, S, D].
  [[nodiscard]] Variable forward(const Tensor& images) const;

  /// Tokenizes only the listed global channels (a strictly increasing
  /// subsequence of channel_ids()). `images` is [B, W, H, W] holding those
  /// channels in the same order; each is embedded with the weights of its
  /// global id, so the result is bit-identical to the corresponding rows
  /// of a full forward(). Serving's channel-subset path (paper §2.1).
  [[nodiscard]] Variable forward_subset(
      const Tensor& images, std::span<const Index> channels) const;

  /// Local positions (indices into channel_ids()) of the given global
  /// channel ids; fails loudly on channels this tokenizer does not own.
  [[nodiscard]] std::vector<Index> local_positions(
      std::span<const Index> channels) const;

  /// Tokenizes `images` [B, W, H, W] whose slabs correspond, in order, to
  /// channel_ids()[positions[i]]. The shared core of forward() and
  /// forward_subset(), public so subset callers can reuse an already
  /// computed local_positions() result instead of mapping twice.
  [[nodiscard]] Variable forward_at_positions(
      const Tensor& images, const std::vector<Index>& positions) const;

  [[nodiscard]] Index num_channels() const {
    return static_cast<Index>(channel_ids_.size());
  }
  [[nodiscard]] const std::vector<Index>& channel_ids() const {
    return channel_ids_;
  }

 private:
  ModelConfig cfg_;
  std::vector<Index> channel_ids_;
  std::vector<std::unique_ptr<Linear>> embeds_;  // one per local channel
  Variable channel_emb_;  // [C_local, D]
  Variable pos_emb_;      // [S, D]
};

}  // namespace dchag::model
