#include "data/weather.hpp"

#include <cmath>

namespace dchag::data {

namespace {
constexpr float kTwoPi = 6.283185307179586f;
}

WeatherGenerator::WeatherGenerator(WeatherConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  DCHAG_CHECK(cfg_.channels() > 0 && cfg_.height > 0 && cfg_.width > 0,
              "bad weather config");
  const Index groups = cfg_.num_variables + cfg_.surface_variables;
  waves_.resize(static_cast<std::size_t>(groups));
  for (Index g = 0; g < groups; ++g) {
    Rng group_rng = rng_.fork(static_cast<std::uint64_t>(g) + 11);
    auto& waves = waves_[static_cast<std::size_t>(g)];
    waves.resize(static_cast<std::size_t>(cfg_.waves_per_variable));
    for (auto& w : waves) {
      // Low zonal/meridional wavenumbers dominate, like planetary waves.
      w.kx = static_cast<float>(group_rng.uniform_int(1, 4));
      w.ky = static_cast<float>(group_rng.uniform_int(1, 3));
      w.omega = group_rng.uniform(0.2f, 1.2f);
      w.phase = group_rng.uniform(0.0f, kTwoPi);
      w.amp = group_rng.uniform(0.3f, 1.0f) /
              std::sqrt(static_cast<float>(cfg_.waves_per_variable));
    }
  }
}

Tensor WeatherGenerator::state(std::uint64_t sample_id, float t) const {
  const Index C = cfg_.channels();
  const Index H = cfg_.height;
  const Index W = cfg_.width;
  Tensor out(tensor::Shape{C, H, W});
  // Sample-dependent global phase shift makes each realisation distinct
  // while keeping the dynamics deterministic in t.
  Rng sample_rng(sample_id * 0x9E3779B97F4A7C15ull + 7);
  const float sample_phase = sample_rng.uniform(0.0f, kTwoPi);

  float* dst = out.data();
  Index c = 0;
  const Index groups = cfg_.num_variables + cfg_.surface_variables;
  for (Index g = 0; g < groups; ++g) {
    const bool surface = g >= cfg_.num_variables;
    const Index levels = surface ? 1 : cfg_.levels_per_variable;
    const auto& waves = waves_[static_cast<std::size_t>(g)];
    for (Index lvl = 0; lvl < levels; ++lvl, ++c) {
      // Amplitude decays smoothly with level -> adjacent levels correlate.
      const float level_amp =
          surface ? 1.0f
                  : std::exp(-0.08f * static_cast<float>(lvl));
      const float level_shift = 0.15f * static_cast<float>(lvl);
      float* plane = dst + c * H * W;
      for (Index y = 0; y < H; ++y) {
        // Meridional envelope: waves weaken toward the poles.
        const float lat =
            (static_cast<float>(y) / static_cast<float>(H - 1) - 0.5f) *
            3.14159265f;
        const float envelope = std::cos(lat);
        for (Index x = 0; x < W; ++x) {
          float v = 0.0f;
          for (const auto& w : waves) {
            v += w.amp * std::sin(kTwoPi * (w.kx * static_cast<float>(x) /
                                                static_cast<float>(W) +
                                            w.ky * static_cast<float>(y) /
                                                static_cast<float>(H)) -
                                  w.omega * t + w.phase + sample_phase +
                                  level_shift);
          }
          plane[y * W + x] = level_amp * envelope * v;
        }
      }
    }
  }
  return out;
}

WeatherGenerator::Pair WeatherGenerator::sample_pair(Index batch,
                                                     float lead) {
  const Index C = cfg_.channels();
  Pair pair{Tensor(tensor::Shape{batch, C, cfg_.height, cfg_.width}),
            Tensor(tensor::Shape{batch, C, cfg_.height, cfg_.width})};
  const Index plane = C * cfg_.height * cfg_.width;
  for (Index b = 0; b < batch; ++b) {
    const auto sample_id =
        static_cast<std::uint64_t>(rng_.uniform_int(0, 1 << 30));
    const float t = rng_.uniform(0.0f, 50.0f);
    Tensor now = state(sample_id, t);
    Tensor future = state(sample_id, t + lead);
    // Observation noise on the input only (the target is the true state).
    for (float& v : now.span()) v += rng_.normal(0.0f, cfg_.noise_std);
    std::copy(now.span().begin(), now.span().end(),
              pair.now.data() + b * plane);
    std::copy(future.span().begin(), future.span().end(),
              pair.future.data() + b * plane);
  }
  return pair;
}

Index WeatherGenerator::z500_channel() const {
  // Variable group 0 ("geopotential"), mid-level.
  return cfg_.levels_per_variable / 2;
}

Index WeatherGenerator::t850_channel() const {
  // Variable group 1 ("temperature"), low level.
  return cfg_.levels_per_variable + (cfg_.levels_per_variable * 4) / 5;
}

Index WeatherGenerator::u10_channel() const {
  // First surface variable ("10m u-wind").
  return cfg_.num_variables * cfg_.levels_per_variable;
}

std::string WeatherGenerator::channel_name(Index c) const {
  static const char* kVars[] = {"z", "t", "u", "v", "q"};
  const Index atm = cfg_.num_variables * cfg_.levels_per_variable;
  if (c < atm) {
    const Index g = c / cfg_.levels_per_variable;
    const Index lvl = c % cfg_.levels_per_variable;
    const char* base =
        g < 5 ? kVars[g] : "x";
    return std::string(base) + "_lvl" + std::to_string(lvl);
  }
  static const char* kSurf[] = {"u10", "v10", "t2m", "sp", "tp"};
  const Index s = c - atm;
  return s < 5 ? kSurf[s] : "surf" + std::to_string(s);
}

}  // namespace dchag::data
