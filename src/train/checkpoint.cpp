#include "train/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <map>

namespace dchag::train {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'H', 'K'};
constexpr std::uint64_t kVersion = 1;

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  DCHAG_CHECK(f.good(), "truncated checkpoint");
  return v;
}

struct RawEntry {
  tensor::Shape shape;
  std::streampos data_pos;
};

std::map<std::string, RawEntry> index_file(std::ifstream& f,
                                           const std::string& path) {
  char magic[4];
  f.read(magic, 4);
  DCHAG_CHECK(f.good() && std::memcmp(magic, kMagic, 4) == 0,
              path << " is not a D-CHAG checkpoint");
  const std::uint64_t version = read_u64(f);
  DCHAG_CHECK(version == kVersion, "unsupported checkpoint version "
                                       << version);
  const std::uint64_t count = read_u64(f);
  std::map<std::string, RawEntry> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(f);
    std::string name(name_len, '\0');
    f.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint64_t rank = read_u64(f);
    std::vector<tensor::Index> dims(rank);
    for (auto& d : dims) d = static_cast<tensor::Index>(read_u64(f));
    tensor::Shape shape{std::vector<tensor::Index>(dims)};
    RawEntry e{shape, f.tellg()};
    DCHAG_CHECK(!entries.contains(name),
                "duplicate parameter '" << name << "' in " << path);
    entries.emplace(std::move(name), std::move(e));
    f.seekg(static_cast<std::streamoff>(shape.numel() * sizeof(float)),
            std::ios::cur);
    DCHAG_CHECK(f.good(), "truncated checkpoint " << path);
  }
  return entries;
}

}  // namespace

void save_parameters(const std::string& path,
                     std::span<const autograd::Variable> params) {
  std::ofstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path << " for writing");
  f.write(kMagic, 4);
  write_u64(f, kVersion);
  write_u64(f, params.size());
  for (const autograd::Variable& p : params) {
    DCHAG_CHECK(!p.name().empty(),
                "cannot checkpoint an unnamed parameter");
    write_u64(f, p.name().size());
    f.write(p.name().data(),
            static_cast<std::streamsize>(p.name().size()));
    const auto& shape = p.shape();
    write_u64(f, static_cast<std::uint64_t>(shape.rank()));
    for (tensor::Index d = 0; d < shape.rank(); ++d)
      write_u64(f, static_cast<std::uint64_t>(shape.dim(d)));
    f.write(reinterpret_cast<const char*>(p.value().data()),
            static_cast<std::streamsize>(shape.numel() * sizeof(float)));
  }
  DCHAG_CHECK(f.good(), "write failed for " << path);
}

void load_parameters(const std::string& path,
                     std::span<autograd::Variable> params) {
  std::ifstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path);
  const auto entries = index_file(f, path);
  for (autograd::Variable& p : params) {
    const auto it = entries.find(p.name());
    DCHAG_CHECK(it != entries.end(),
                "parameter '" << p.name() << "' not found in " << path);
    DCHAG_CHECK(it->second.shape == p.shape(),
                "shape mismatch for '" << p.name() << "': checkpoint "
                                       << it->second.shape.to_string()
                                       << " vs model "
                                       << p.shape().to_string());
    f.clear();
    f.seekg(it->second.data_pos);
    f.read(reinterpret_cast<char*>(p.mutable_value().data()),
           static_cast<std::streamsize>(p.shape().numel() * sizeof(float)));
    DCHAG_CHECK(f.good(), "truncated data for '" << p.name() << "'");
  }
}

std::vector<CheckpointEntry> list_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path);
  std::vector<CheckpointEntry> out;
  for (const auto& [name, entry] : index_file(f, path)) {
    out.push_back({name, entry.shape});
  }
  return out;
}

}  // namespace dchag::train
