#include "parallel/collective_ops.hpp"

namespace dchag::parallel {

namespace ops = tensor::ops;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// Reassembles a raw [P, numel] gather buffer into the concatenation of
/// the P per-rank tensors along `d`. Shared by the blocking and
/// split-phase gather ops so both produce bit-identical layouts.
Tensor cat_from_flat(const Tensor& flat, const Shape& piece_shape, int P,
                     tensor::Index d) {
  std::vector<Tensor> pieces;
  pieces.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    pieces.push_back(flat.slice0(r, 1).reshape(piece_shape));
  }
  return ops::concat(pieces, d);
}

}  // namespace

Variable reduce_from_parallel(const Variable& x, Communicator& comm) {
  Tensor out = x.value().clone();
  comm.all_reduce(out.span(), comm::ReduceOp::kSum);
  auto nx = x.node();
  return autograd::make_op(std::move(out), {x}, [nx](const Tensor& g) {
    autograd::accumulate_grad(*nx, g);  // identity backward
  });
}

Variable copy_to_parallel(const Variable& x, Communicator& comm) {
  auto nx = x.node();
  Communicator* c = &comm;
  return autograd::make_op(x.value(), {x}, [nx, c](const Tensor& g) {
    Tensor gr = g.clone();
    c->all_reduce(gr.span(), comm::ReduceOp::kSum);
    autograd::accumulate_grad(*nx, gr);
  });
}

Variable all_gather_cat(const Variable& x, Communicator& comm, Index dim,
                        GatherBackward backward) {
  const int P = comm.size();
  const int rank = comm.rank();
  const Index d = dim >= 0 ? dim : dim + x.shape().rank();
  const Index n_local = x.shape().dim(d);

  // Gather the raw contiguous buffers, then reassemble along `dim`.
  Tensor flat(Shape{static_cast<Index>(P), x.shape().numel()});
  comm.all_gather(x.value().span(), flat.span());
  Tensor gathered = cat_from_flat(flat, x.shape(), P, d);

  auto nx = x.node();
  Communicator* c = &comm;
  return autograd::make_op(
      std::move(gathered), {x},
      [nx, c, d, n_local, rank, backward](const Tensor& g) {
        if (backward == GatherBackward::kLocalSlice) {
          // Downstream is replicated: my shard's gradient is simply my
          // slice of the (identical-everywhere) upstream gradient.
          autograd::accumulate_grad(
              *nx, ops::slice(g, d, rank * n_local, n_local));
          return;
        }
        // General case: sum gradient slices across ranks.
        Tensor gr = g.clone();
        c->all_reduce(gr.span(), comm::ReduceOp::kSum);
        autograd::accumulate_grad(
            *nx, ops::slice(gr, d, rank * n_local, n_local));
      });
}

PendingGatherCat all_gather_cat_start(const Variable& x,
                                      comm::ICollective& coll, Index dim) {
  PendingGatherCat p;
  p.input_ = x;
  p.dim_ = dim >= 0 ? dim : dim + x.shape().rank();
  p.rank_ = coll.rank();
  p.flat_ = Tensor(Shape{static_cast<Index>(coll.size()), x.shape().numel()});
  // x's storage is pinned by p.input_ until the future completes; the
  // receive buffer by p.flat_. Both spans outlive the in-flight op.
  p.future_ = coll.iall_gather(x.value().span(), p.flat_.span());
  return p;
}

Variable PendingGatherCat::wait() {
  DCHAG_CHECK(future_.valid(), "PendingGatherCat waited twice");
  future_.wait();
  future_ = comm::CommFuture();
  const int P = static_cast<int>(flat_.dim(0));
  Tensor gathered = cat_from_flat(flat_, input_.shape(), P, dim_);
  const Index n_local = input_.shape().dim(dim_);
  auto nx = input_.node();
  const Index d = dim_;
  const int rank = rank_;
  return autograd::make_op(
      std::move(gathered), {input_}, [nx, d, n_local, rank](const Tensor& g) {
        // kLocalSlice backward: downstream is replicated, so my shard's
        // gradient is my slice of the identical-everywhere upstream grad.
        autograd::accumulate_grad(*nx,
                                  ops::slice(g, d, rank * n_local, n_local));
      });
}

void sync_parameters(std::span<const Variable> params, Communicator& comm,
                     int root) {
  for (const Variable& p : params) {
    Tensor v = p.value();  // aliases the parameter storage
    comm.broadcast(v.span(), root);
  }
}

bool is_replicated(const tensor::Tensor& t, Communicator& comm, float tol) {
  Tensor mx = t.clone();
  Tensor mn = t.clone();
  comm.all_reduce(mx.span(), comm::ReduceOp::kMax);
  comm.all_reduce(mn.span(), comm::ReduceOp::kMin);
  return ops::max_abs_diff(mx, mn) <= tol;
}

}  // namespace dchag::parallel
