// Figure 9: D-CHAG gains per GPU over the TP-only baseline for a 1.7B
// model across partial-aggregation configurations TreeN-{C,L}
// (N in {0, 2, 4, 8}; Tree0 = one local aggregation layer). The paper's
// "performance gain per GPU" tracks the per-GPU memory reduction (its
// §6.1 discussion of the same metric is in memory terms); we report the
// throughput change alongside.
#include "bench_util.hpp"
#include <map>

#include "hw/perf_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using model::AggLayerKind;
}  // namespace

int main() {
  bench::header("Figure 9", "D-CHAG gains vs tree depth (1.7B, batch 21)");
  const ModelConfig cfg = ModelConfig::preset("1.7B");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  struct Gain {
    double mem;
    double tput;
  };
  // gains[channels][kind][treeN]
  std::map<Index, std::map<char, std::map<Index, Gain>>> gains;

  for (Index channels : {512, 1024}) {
    Workload w{21, channels, true};
    const int tp = min_feasible_tp(cfg, w, DchagSpec::off(), frontier, 16);
    const auto base_mem =
        estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off());
    const auto base_step =
        estimate_step(cfg, w, {tp, 1, 1}, DchagSpec::off(), frontier);

    bench::section(std::to_string(channels) + " channels on tp=" +
                   std::to_string(tp) + " (baseline " +
                   std::to_string(base_mem.total_gb()) + " GB)");
    std::printf("%14s %12s %14s %14s\n", "config", "mem(GB)", "mem gain %",
                "tput gain %");
    for (AggLayerKind kind :
         {AggLayerKind::kCrossAttention, AggLayerKind::kLinear}) {
      for (Index tree : {0, 2, 4, 8}) {
        const DchagSpec spec = DchagSpec::tree(tree == 0 ? 1 : tree, kind);
        const auto mem = estimate_memory(cfg, w, {tp, 1, 1}, spec);
        const auto step = estimate_step(cfg, w, {tp, 1, 1}, spec, frontier);
        const double mem_gain =
            100.0 * (base_mem.total_gb() - mem.total_gb()) /
            base_mem.total_gb();
        const double tput_gain =
            100.0 * (step.sustained_tflops_per_gpu /
                         base_step.sustained_tflops_per_gpu -
                     1.0);
        std::printf("%9s-Tree%lld %12.1f %+13.1f%% %+13.1f%%\n",
                    kind == AggLayerKind::kLinear ? "D-CHAG-L" : "D-CHAG-C",
                    static_cast<long long>(tree), mem.total_gb(), mem_gain,
                    tput_gain);
        gains[channels][kind == AggLayerKind::kLinear ? 'L' : 'C']
             [tree] = {mem_gain, tput_gain};
      }
    }
  }

  // Paper Fig. 9 qualitative claims.
  checks.expect(gains[1024]['C'][0].mem > 40.0,
                "-C Tree0 @1024ch: large gain (paper: ~60%)");
  checks.expect(gains[1024]['C'][0].mem > gains[512]['C'][0].mem,
                "-C Tree0 gains grow with channel count");
  checks.expect(gains[512]['C'][4].mem > gains[512]['C'][0].mem,
                "deeper -C trees help at 512 channels");
  const double spread1024 =
      std::abs(gains[1024]['C'][8].mem - gains[1024]['C'][2].mem);
  checks.expect(spread1024 < 10.0,
                "-C gains roughly flat in depth at 1024 channels");
  checks.expect(gains[512]['L'][0].mem > 0 && gains[1024]['L'][0].mem > 0,
                "-L improves even with the shallow Tree0 at both sizes");
  bool l_best = true;
  for (Index tree : {2, 4, 8}) {
    l_best = l_best &&
             gains[512]['L'][0].mem >= gains[512]['L'][tree].mem - 1.0 &&
             gains[1024]['L'][0].mem >= gains[1024]['L'][tree].mem - 1.0;
  }
  checks.expect(l_best, "-L Tree0 is the best overall configuration");
  checks.expect(gains[512]['L'][0].mem > gains[512]['C'][0].mem,
                "-L beats -C (fewer parameters, no quadratic scores)");
  return checks.report();
}
