// Synthetic hyperspectral plant imagery — the stand-in for the APPL
// poplar VNIR dataset (494 images, 500 bands over 400-900 nm) used in
// paper §5.1, which is not publicly available.
//
// Generative model (a standard linear spectral-mixture scene):
//   * each scene contains `num_materials` endmembers (leaf, stem, soil,
//     background), each with a smooth reflectance spectrum r_m(lambda)
//     built from a few Gaussians over the 400-900 nm range (leaf-like
//     spectra get a green bump + near-infrared plateau);
//   * per-scene spatial abundance maps a_m(x, y) are soft blobs
//     (normalised Gaussian bumps), so neighbouring pixels are correlated;
//   * pixel spectra are abundance-weighted mixtures plus sensor noise.
//
// What this preserves from the real data, and why it suffices for the
// paper's Fig. 11 experiment: hundreds of strongly-correlated channels
// that share spatial structure — exactly the property that makes the
// channel dimension the bottleneck and masked reconstruction learnable.
#pragma once

#include <vector>

#include "tensor/rng.hpp"

namespace dchag::data {

using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

struct HyperspectralConfig {
  Index channels = 500;  ///< spectral bands, 400-900 nm
  Index height = 64;
  Index width = 64;
  Index num_materials = 4;
  float noise_std = 0.01f;
  float wavelength_min_nm = 400.0f;
  float wavelength_max_nm = 900.0f;
};

class HyperspectralGenerator {
 public:
  HyperspectralGenerator(HyperspectralConfig cfg, std::uint64_t seed);

  /// Fresh batch of scenes: [B, C, H, W], values roughly in [0, 1].
  [[nodiscard]] Tensor sample_batch(Index batch);

  /// Reflectance spectrum of material `m` at every band, [C].
  [[nodiscard]] const std::vector<float>& material_spectrum(Index m) const {
    return spectra_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] const HyperspectralConfig& config() const { return cfg_; }

  /// Band index closest to a wavelength (for pseudo-RGB rendering).
  [[nodiscard]] Index band_of_wavelength(float nm) const;

 private:
  HyperspectralConfig cfg_;
  Rng rng_;
  // spectra_[material][band]
  std::vector<std::vector<float>> spectra_;
};

/// Renders [C, H, W] hyperspectral data to an 8-bit PPM using three bands
/// as pseudo-RGB (the paper's Fig. 11 visualisation). Values are
/// min-max normalised per band.
void write_pseudo_rgb_ppm(const std::string& path, const Tensor& image,
                          Index band_r, Index band_g, Index band_b);

}  // namespace dchag::data
