#include "model/tokenizer.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/dispatch.hpp"

namespace dchag::model {

namespace ops = tensor::ops;

namespace {

/// Patch extraction is pure data movement over independent (b, c) image
/// planes — fan planes out via the shared kernel dispatch policy. The
/// grain scales with plane size so tiny inputs stay on the fast serial
/// path instead of paying a pool fork/join for a 2 KB copy.
template <typename F>
void for_each_plane(tensor::Index planes, tensor::Index plane_elems, F&& fn) {
  const tensor::Index grain = std::max<tensor::Index>(
      1, tensor::kDispatchGrain / std::max<tensor::Index>(1, plane_elems));
  tensor::dispatch_range(planes, grain,
                         [&](tensor::Index lo, tensor::Index hi) {
                           for (tensor::Index p = lo; p < hi; ++p) fn(p);
                         });
}

}  // namespace

Tensor patchify(const Tensor& images, Index patch) {
  DCHAG_CHECK(images.rank() == 4, "patchify expects [B, C, H, W], got "
                                      << images.shape().to_string());
  const Index B = images.dim(0);
  const Index C = images.dim(1);
  const Index H = images.dim(2);
  const Index W = images.dim(3);
  DCHAG_CHECK(H % patch == 0 && W % patch == 0,
              "image " << H << "x" << W << " not divisible by patch "
                       << patch);
  const Index gh = H / patch;
  const Index gw = W / patch;
  Tensor out(Shape{B, C, gh * gw, patch * patch});
  const float* src = images.data();
  float* dst = out.data();
  for_each_plane(B * C, H * W, [&](Index plane) {
    const float* img = src + plane * H * W;
    float* chan = dst + plane * gh * gw * patch * patch;
    for (Index py = 0; py < gh; ++py) {
      for (Index px = 0; px < gw; ++px) {
        float* cell = chan + (py * gw + px) * patch * patch;
        for (Index y = 0; y < patch; ++y) {
          const float* row = img + (py * patch + y) * W + px * patch;
          for (Index x = 0; x < patch; ++x) cell[y * patch + x] = row[x];
        }
      }
    }
  });
  return out;
}

Tensor unpatchify(const Tensor& patches, Index patch, Index h, Index w) {
  DCHAG_CHECK(patches.rank() == 4, "unpatchify expects [B, C, S, p*p]");
  const Index B = patches.dim(0);
  const Index C = patches.dim(1);
  const Index gh = h / patch;
  const Index gw = w / patch;
  DCHAG_CHECK(patches.dim(2) == gh * gw &&
                  patches.dim(3) == patch * patch,
              "unpatchify shape mismatch: " << patches.shape().to_string());
  Tensor out(Shape{B, C, h, w});
  const float* src = patches.data();
  float* dst = out.data();
  for_each_plane(B * C, h * w, [&](Index plane) {
    const float* chan = src + plane * gh * gw * patch * patch;
    float* img = dst + plane * h * w;
    for (Index py = 0; py < gh; ++py) {
      for (Index px = 0; px < gw; ++px) {
        const float* cell = chan + (py * gw + px) * patch * patch;
        for (Index y = 0; y < patch; ++y) {
          float* row = img + (py * patch + y) * w + px * patch;
          for (Index x = 0; x < patch; ++x) row[x] = cell[y * patch + x];
        }
      }
    }
  });
  return out;
}

namespace {
std::vector<Index> iota_channels(Index channels) {
  std::vector<Index> ids(static_cast<std::size_t>(channels));
  std::iota(ids.begin(), ids.end(), Index{0});
  return ids;
}
}  // namespace

PatchTokenizer::PatchTokenizer(const ModelConfig& cfg,
                               std::vector<Index> channel_ids, Rng& rng)
    : cfg_(cfg), channel_ids_(std::move(channel_ids)) {
  cfg_.validate();
  DCHAG_CHECK(!channel_ids_.empty(), "tokenizer needs at least one channel");
  const Index p2 = cfg_.patch_size * cfg_.patch_size;
  const Index d = cfg_.embed_dim;
  embeds_.reserve(channel_ids_.size());
  Tensor chan_emb(Shape{num_channels(), d});
  for (std::size_t i = 0; i < channel_ids_.size(); ++i) {
    const Index gid = channel_ids_[i];
    // Weights derive from the *global* channel id so that any partition of
    // the channels across ranks reproduces the same per-channel weights.
    Rng chan_rng = rng.fork(static_cast<std::uint64_t>(gid) + 1);
    embeds_.push_back(std::make_unique<Linear>(
        p2, d, chan_rng, "tokenizer.embed" + std::to_string(gid)));
    register_child(*embeds_.back());
    Tensor e = chan_rng.normal_tensor(Shape{d}, 0.0f, 0.02f);
    std::copy(e.span().begin(), e.span().end(),
              chan_emb.data() + static_cast<Index>(i) * d);
  }
  channel_emb_ = register_param("tokenizer.channel_emb", chan_emb);
  Rng pos_rng = rng.fork(0);
  pos_emb_ = register_param(
      "tokenizer.pos_emb",
      pos_rng.normal_tensor(Shape{cfg_.seq_len(), d}, 0.0f, 0.02f));
}

PatchTokenizer::PatchTokenizer(const ModelConfig& cfg, Index channels,
                               Rng& rng)
    : PatchTokenizer(cfg, iota_channels(channels), rng) {}

Variable PatchTokenizer::forward(const Tensor& images) const {
  return forward_at_positions(images, iota_channels(num_channels()));
}

std::vector<Index> PatchTokenizer::local_positions(
    std::span<const Index> channels) const {
  std::vector<Index> positions;
  positions.reserve(channels.size());
  Index prev = -1;
  for (Index gid : channels) {
    DCHAG_CHECK(gid > prev, "subset channels must be strictly increasing");
    prev = gid;
    const auto it =
        std::find(channel_ids_.begin(), channel_ids_.end(), gid);
    DCHAG_CHECK(it != channel_ids_.end(),
                "channel " << gid << " is not tokenized by this tokenizer");
    positions.push_back(
        static_cast<Index>(std::distance(channel_ids_.begin(), it)));
  }
  return positions;
}

Variable PatchTokenizer::forward_subset(
    const Tensor& images, std::span<const Index> channels) const {
  return forward_at_positions(images, local_positions(channels));
}

Variable PatchTokenizer::forward_at_positions(
    const Tensor& images, const std::vector<Index>& positions) const {
  DCHAG_CHECK(!positions.empty(), "tokenization needs >= 1 channel");
  DCHAG_CHECK(images.rank() == 4 &&
                  images.dim(1) == static_cast<Index>(positions.size()),
              "tokenizer expects [B, " << positions.size()
                                       << ", H, W], got "
                                       << images.shape().to_string());
  for (Index pos : positions) {
    DCHAG_CHECK(pos >= 0 && pos < num_channels(),
                "tokenizer position " << pos << " out of [0, "
                                      << num_channels() << ")");
  }
  const Index B = images.dim(0);
  const Index S = cfg_.seq_len();
  const Index p2 = cfg_.patch_size * cfg_.patch_size;
  Tensor patches = patchify(images, cfg_.patch_size);  // [B, W, S, p2]

  std::vector<Variable> per_channel;
  per_channel.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Index pos = positions[i];
    Tensor chan = tensor::ops::slice(patches, 1, static_cast<Index>(i), 1)
                      .reshape(Shape{B, S, p2});
    Variable tok = embeds_[static_cast<std::size_t>(pos)]->forward(
        Variable::input(chan));                          // [B, S, D]
    Variable cid = autograd::slice(channel_emb_, 0, pos, 1);  // [1, D]
    tok = autograd::add(tok, cid);      // broadcast channel-ID embedding
    tok = autograd::add(tok, pos_emb_); // broadcast positional embedding
    per_channel.push_back(
        autograd::reshape(tok, Shape{B, 1, S, cfg_.embed_dim}));
  }
  return per_channel.size() == 1 ? per_channel.front()
                                 : autograd::concat(per_channel, 1);
}

}  // namespace dchag::model
