#include "parallel/tp_layers.hpp"

namespace dchag::parallel {

namespace ops = tensor::ops;
using tensor::Shape;

// ----- ColumnParallelLinear ---------------------------------------------------

ColumnParallelLinear::ColumnParallelLinear(Index in, Index out,
                                           Communicator& comm, Rng& rng,
                                           const std::string& name) {
  init_from_full(rng.xavier(Shape{in, out}), comm, name);
}

ColumnParallelLinear::ColumnParallelLinear(Tensor full_weight,
                                           Communicator& comm,
                                           const std::string& name) {
  init_from_full(full_weight, comm, name);
}

void ColumnParallelLinear::init_from_full(const Tensor& full,
                                          Communicator& comm,
                                          const std::string& name) {
  const Index out = full.dim(1);
  const int P = comm.size();
  DCHAG_CHECK(out % P == 0, "column-parallel: out dim " << out
                                                        << " % tp " << P);
  local_out_ = out / P;
  Tensor shard = ops::slice(full, 1, comm.rank() * local_out_, local_out_);
  weight_ = register_param(name + ".weight", shard);
  bias_ = register_param(name + ".bias", Tensor({local_out_}, 0.0f));
}

Variable ColumnParallelLinear::forward(const Variable& x) const {
  return autograd::add(autograd::matmul(x, weight_), bias_);
}

// ----- RowParallelLinear ------------------------------------------------------

RowParallelLinear::RowParallelLinear(Index in, Index out, Communicator& comm,
                                     Rng& rng, const std::string& name)
    : comm_(&comm) {
  init_from_full(rng.xavier(Shape{in, out}), comm, name);
}

RowParallelLinear::RowParallelLinear(Tensor full_weight, Communicator& comm,
                                     const std::string& name)
    : comm_(&comm) {
  init_from_full(full_weight, comm, name);
}

void RowParallelLinear::init_from_full(const Tensor& full, Communicator& comm,
                                       const std::string& name) {
  const Index in = full.dim(0);
  const Index out = full.dim(1);
  const int P = comm.size();
  DCHAG_CHECK(in % P == 0, "row-parallel: in dim " << in << " % tp " << P);
  const Index local_in = in / P;
  Tensor shard = ops::slice(full, 0, comm.rank() * local_in, local_in);
  weight_ = register_param(name + ".weight", shard);
  bias_ = register_param(name + ".bias", Tensor({out}, 0.0f));
}

Variable RowParallelLinear::forward(const Variable& x_local) const {
  Variable partial = autograd::matmul(x_local, weight_);
  // Sum the partial products across the TP group, then add the bias once.
  return autograd::add(reduce_from_parallel(partial, *comm_), bias_);
}

// ----- ParallelSelfAttention --------------------------------------------------

namespace {

/// [B, S, Dl] -> [B, hl, S, dh] for the local head shard.
Variable split_local_heads(const Variable& x, Index local_heads) {
  const auto& s = x.shape();
  const Index B = s.dim(0);
  const Index S = s.dim(1);
  const Index dl = s.dim(2);
  Variable y =
      autograd::reshape(x, Shape{B, S, local_heads, dl / local_heads});
  return autograd::permute(y, {0, 2, 1, 3});
}

Variable merge_local_heads(const Variable& x) {
  const auto& s = x.shape();  // [B, hl, S, dh]
  Variable y = autograd::permute(x, {0, 2, 1, 3});
  return autograd::reshape(
      y, Shape{s.dim(0), s.dim(2), s.dim(1) * s.dim(3)});
}

}  // namespace

ParallelSelfAttention::ParallelSelfAttention(Index dim, Index heads,
                                             Communicator& comm, Rng& rng,
                                             const std::string& name)
    : dim_(dim), comm_(&comm) {
  const int P = comm.size();
  DCHAG_CHECK(heads % P == 0, "attention heads " << heads << " % tp " << P);
  DCHAG_CHECK(dim % heads == 0, "dim % heads");
  local_heads_ = heads / P;
  // Same draw order as model::MultiHeadSelfAttention (wq, wk, wv, wo) from
  // the same fork, so the full weights match the serial layer exactly.
  Rng r = rng.fork(std::hash<std::string>{}(name));
  wq_ = std::make_unique<ColumnParallelLinear>(r.xavier(Shape{dim, dim}),
                                               comm, name + ".wq");
  wk_ = std::make_unique<ColumnParallelLinear>(r.xavier(Shape{dim, dim}),
                                               comm, name + ".wk");
  wv_ = std::make_unique<ColumnParallelLinear>(r.xavier(Shape{dim, dim}),
                                               comm, name + ".wv");
  wo_ = std::make_unique<RowParallelLinear>(r.xavier(Shape{dim, dim}), comm,
                                            name + ".wo");
  register_child(*wq_);
  register_child(*wk_);
  register_child(*wv_);
  register_child(*wo_);
}

Variable ParallelSelfAttention::forward(const Variable& x) const {
  DCHAG_CHECK(x.shape().dim(-1) == dim_, "attention dim mismatch");
  // Megatron g-op: identity forward, AllReduce backward — the replicated
  // input feeds rank-local head computation.
  Variable xp = copy_to_parallel(x, *comm_);
  Variable q = split_local_heads(wq_->forward(xp), local_heads_);
  Variable k = split_local_heads(wk_->forward(xp), local_heads_);
  Variable v = split_local_heads(wv_->forward(xp), local_heads_);
  const Index dh = q.shape().dim(-1);
  Variable scores = autograd::scale(
      autograd::matmul(q, autograd::transpose_last2(k)),
      1.0f / std::sqrt(static_cast<float>(dh)));
  Variable attn = autograd::matmul(autograd::softmax_lastdim(scores), v);
  return wo_->forward(merge_local_heads(attn));
}

// ----- ParallelMlp ------------------------------------------------------------

ParallelMlp::ParallelMlp(Index dim, Index hidden, Communicator& comm,
                         Rng& rng, const std::string& name)
    : comm_(&comm) {
  up_ = std::make_unique<ColumnParallelLinear>(rng.xavier(Shape{dim, hidden}),
                                               comm, name + "_up");
  down_ = std::make_unique<RowParallelLinear>(
      rng.xavier(Shape{hidden, dim}), comm, name + "_down");
  register_child(*up_);
  register_child(*down_);
}

Variable ParallelMlp::forward(const Variable& x) const {
  Variable xp = copy_to_parallel(x, *comm_);
  return down_->forward(autograd::gelu(up_->forward(xp)));
}

// ----- ParallelViTBlock / Encoder ---------------------------------------------

ParallelViTBlock::ParallelViTBlock(const ModelConfig& cfg, Communicator& comm,
                                   Rng& rng, const std::string& name) {
  Rng r = rng.fork(std::hash<std::string>{}(name));
  const Index d = cfg.embed_dim;
  ln1_ = std::make_unique<LayerNorm>(d, name + ".ln1");
  attn_ = std::make_unique<ParallelSelfAttention>(d, cfg.num_heads, comm, r,
                                                  name + ".attn");
  ln2_ = std::make_unique<LayerNorm>(d, name + ".ln2");
  mlp_ = std::make_unique<ParallelMlp>(d, cfg.mlp_ratio * d, comm, r,
                                       name + ".mlp");
  register_child(*ln1_);
  register_child(*attn_);
  register_child(*ln2_);
  register_child(*mlp_);
}

Variable ParallelViTBlock::forward(const Variable& x) const {
  Variable h = autograd::add(x, attn_->forward(ln1_->forward(x)));
  return autograd::add(h, mlp_->forward(ln2_->forward(h)));
}

ParallelViTEncoder::ParallelViTEncoder(const ModelConfig& cfg,
                                       Communicator& comm, Rng& rng,
                                       const std::string& name) {
  blocks_.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (Index i = 0; i < cfg.num_layers; ++i) {
    blocks_.push_back(std::make_unique<ParallelViTBlock>(
        cfg, comm, rng, name + ".block" + std::to_string(i)));
    register_child(*blocks_.back());
  }
  final_ln_ = std::make_unique<LayerNorm>(cfg.embed_dim, name + ".final_ln");
  register_child(*final_ln_);
}

Variable ParallelViTEncoder::forward(const Variable& x) const {
  Variable h = x;
  for (const auto& block : blocks_) h = block->forward(h);
  return final_ln_->forward(h);
}

}  // namespace dchag::parallel
