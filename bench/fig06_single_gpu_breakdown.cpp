// Figure 6: single-GPU memory usage and TFLOPs per model component
// (tokenization, channel aggregation, transformer blocks) vs channel
// count, for 100M / 1B / 3B models. Memory is normalised to the peak of
// the full application, as in the paper; OOM marks configurations beyond
// the 64 GB GCD. Workload: batch 15, 224x224 images, patch 16 (see
// EXPERIMENTS.md).
#include "bench_util.hpp"
#include "hw/perf_model.hpp"

namespace {

using namespace dchag;
using namespace dchag::hw;

constexpr Index kBatch = 15;

struct Row {
  Index channels;
  MemoryBreakdown mem;
  bool fits;
  double tok_tf, agg_tf, vit_tf;  // executed TFLOP per step component
};

}  // namespace

int main() {
  bench::header("Figure 6",
                "Single-GPU component breakdown vs channels (100M/1B/3B)");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  Index max_fit_100m = 0;
  Index max_fit_1b = 0;
  Index max_fit_3b = 0;

  for (const char* preset : {"100M", "1B", "3B"}) {
    const ModelConfig cfg = ModelConfig::preset(preset);
    bench::section(std::string("model ") + preset);
    std::printf("%8s %10s %10s %10s %10s %6s %9s %9s %9s\n", "channels",
                "mem(norm)", "tok_frac", "agg_frac", "vit_frac", "fits",
                "tok_TF", "agg_TF", "vit_TF");

    // First pass: find the normalisation peak (max memory among fitting
    // configurations, as the paper normalises to the full application).
    std::vector<Row> rows;
    double peak = 0;
    for (Index c : {32, 64, 128, 256, 512, 1024}) {
      Workload w{kBatch, c, /*checkpoint_vit=*/true};
      Row row;
      row.channels = c;
      row.mem = estimate_memory(cfg, w, {1, 1, 1}, DchagSpec::off());
      row.fits = fits(row.mem, frontier);
      const double B = static_cast<double>(kBatch);
      row.tok_tf = 3.0 * FlopModel::tokenizer_flops(cfg, B,
                                                    static_cast<double>(c)) /
                   1e12;
      const auto agg = FlopModel::aggregation_flops(
          cfg, B, c, model::AggLayerKind::kCrossAttention);
      row.agg_tf = 3.0 * (agg.scores + agg.proj) / 1e12;
      row.vit_tf = 4.0 * FlopModel::transformer_flops(cfg, B) / 1e12;
      if (row.fits) peak = std::max(peak, row.mem.total_gb());
      rows.push_back(row);
    }
    for (const Row& r : rows) {
      const double total = r.mem.total_gb();
      const double tok = r.mem.tokenizer_state_gb + r.mem.tokenizer_act_gb +
                         r.mem.input_act_gb;
      const double agg =
          r.mem.aggregation_state_gb + r.mem.aggregation_act_gb;
      const double vit =
          r.mem.transformer_state_gb + r.mem.transformer_act_gb;
      std::printf("%8lld %10.3f %10.3f %10.3f %10.3f %6s %9.2f %9.2f %9.2f\n",
                  static_cast<long long>(r.channels),
                  peak > 0 ? total / peak : 0.0, tok / total, agg / total,
                  vit / total, r.fits ? "yes" : "OOM", r.tok_tf, r.agg_tf,
                  r.vit_tf);
      if (r.fits) {
        auto& slot = std::string(preset) == "100M"
                         ? max_fit_100m
                         : (std::string(preset) == "1B" ? max_fit_1b
                                                        : max_fit_3b);
        slot = std::max(slot, r.channels);
      }
    }
  }

  // Paper claims.
  checks.expect(max_fit_100m == 512,
                "100M model handles up to 512 channels (OOM at 1024)");
  checks.expect(max_fit_1b == 256,
                "1B model handles up to 256 channels (OOM at 512)");
  checks.expect(max_fit_3b == 128,
                "3B model handles up to 128 channels (OOM at 256)");
  {
    // "for the 100M and 1B parameter models, cross-attention and channel
    //  aggregation are the primary contributors to memory usage" at high C.
    const ModelConfig cfg = ModelConfig::preset("1B");
    Workload w{kBatch, 256, true};
    const auto m = estimate_memory(cfg, w, {1, 1, 1}, DchagSpec::off());
    const double agg = m.aggregation_state_gb + m.aggregation_act_gb;
    checks.expect(agg > m.transformer_state_gb + m.transformer_act_gb -
                            m.transformer_state_gb,  // vs activations
                  "1B/256ch: aggregation memory exceeds transformer "
                  "activations");
    // "for the 3B parameter model, the transformer blocks dominate".
    const ModelConfig cfg3 = ModelConfig::preset("3B");
    const auto m3 =
        estimate_memory(cfg3, Workload{kBatch, 128, true}, {1, 1, 1},
                        DchagSpec::off());
    checks.expect(m3.transformer_state_gb + m3.transformer_act_gb >
                      m3.total_gb() * 0.5,
                  "3B/128ch: transformer blocks dominate memory");
  }
  {
    // "the majority of the compute (FLOPs) is directed toward channel
    //  aggregation and tokenization as the model grows" (with channels).
    const ModelConfig cfg = ModelConfig::preset("1B");
    const double B = kBatch;
    const auto agg = FlopModel::aggregation_flops(
        cfg, B, 256, model::AggLayerKind::kCrossAttention);
    const double frontend = FlopModel::tokenizer_flops(cfg, B, 256) +
                            agg.scores + agg.proj;
    checks.expect(frontend > FlopModel::transformer_flops(cfg, B),
                  "1B/256ch: tokenization+aggregation FLOPs exceed "
                  "transformer FLOPs");
  }
  return checks.report();
}
