// Shim TU: consumes the deprecated ServerConfig::kernels overlay.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "serve/server.hpp"

#include <chrono>

#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace dchag::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(InferenceFn infer, ServerConfig cfg,
               const runtime::Context& ctx)
    : infer_(std::move(infer)),
      cfg_(cfg),
      // Capture the submitter's EFFECTIVE context: scopes active on the
      // constructing thread fold in here and reach every worker.
      ctx_(ctx.effective()),
      batcher_(cfg.batcher) {
  DCHAG_CHECK(infer_ != nullptr, "Server needs an InferenceFn");
  DCHAG_CHECK(cfg_.num_workers >= 1, "Server needs >= 1 worker");
#ifdef DCHAG_DEPRECATED_CONFIG
  // Legacy per-worker kernel pin folds into the context workers inherit.
  if (cfg_.kernels)
    ctx_ = ctx_.to_builder().kernels(*cfg_.kernels).build();
#endif
}

Server::~Server() { drain(); }

ResponseFuture Server::submit(Request r) {
  ResponseFuture f = batcher_.submit(std::move(r));
  metrics_.observe_queue_depth(batcher_.depth());
  metrics_.mark_window(now_ms());
  return f;
}

void Server::start() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::drain() {
  if (drained_) return;
  drained_ = true;
  batcher_.close();
  // Unstarted servers still owe answers for parked requests.
  if (!started_) start();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void Server::worker_loop() {
  // Serving is tape-free for the whole worker thread; every forward under
  // this guard allocates zero autograd nodes.
  autograd::NoGradGuard no_grad;
  // Every worker runs under the server's captured context — the
  // submitter's overrides reach here by construction.
  runtime::Scope ctx_scope(ctx_);
  while (std::optional<Batch> batch = batcher_.pop()) {
    execute(std::move(*batch));
  }
}

void Server::execute(Batch batch) {
  const auto assembled = std::chrono::steady_clock::now();
  const auto n = batch.items.size();
  try {
    // Stack the samples into one [B, C, H, W] forward. Lane keys guarantee
    // identical shapes / channel subsets / lead times within a batch.
    std::vector<Tensor> slabs;
    slabs.reserve(n);
    for (const PendingRequest& p : batch.items) {
      const auto& s = p.request.images.shape();
      slabs.push_back(p.request.images.reshape(
          tensor::Shape{1, s.dim(0), s.dim(1), s.dim(2)}));
    }
    Tensor images =
        n == 1 ? slabs.front() : tensor::ops::concat(slabs, 0);
    const Request& head = batch.items.front().request;

    // Heap-buffer delta across the forward: the Engine runs it on this
    // worker thread, so the thread-local counter captures exactly its
    // allocations (zero in steady state under a memory plan). SPMD
    // forwards run on rank threads and read ~0 here by construction.
    const std::uint64_t allocs0 = tensor::plan::thread_buffer_allocations();
    const auto t0 = std::chrono::steady_clock::now();
    Tensor pred = infer_(images, head.channels, head.lead_time);
    const auto t1 = std::chrono::steady_clock::now();
    const double forward_ms = ms_between(t0, t1);
    const std::uint64_t forward_allocs =
        tensor::plan::thread_buffer_allocations() - allocs0;
    DCHAG_CHECK(pred.rank() == 3 &&
                    pred.dim(0) == static_cast<Index>(n),
                "InferenceFn returned " << pred.shape().to_string()
                                        << " for a batch of " << n);

    runtime::trace_here("serve.batch.size", static_cast<double>(n));
    runtime::trace_here("serve.batch.forward_ms", forward_ms);

    for (std::size_t i = 0; i < n; ++i) {
      PendingRequest& p = batch.items[i];
      Response resp;
      resp.pred = tensor::ops::slice(pred, 0, static_cast<Index>(i), 1)
                      .reshape(tensor::Shape{pred.dim(1), pred.dim(2)});
      resp.batch_size = static_cast<Index>(n);
      resp.queue_ms = ms_between(p.enqueued, assembled);
      resp.forward_ms = forward_ms;
      const auto done = std::chrono::steady_clock::now();
      resp.total_ms = ms_between(p.enqueued, done);
      metrics_.record_request(resp.total_ms, resp.queue_ms);
      p.promise.set_value(std::move(resp));
    }
    metrics_.record_batch(n, forward_ms, forward_allocs);
    metrics_.mark_window(now_ms());
  } catch (...) {
    // A worker never leaks: the batch's requests fail individually and the
    // pool keeps serving subsequent batches.
    const std::exception_ptr err = std::current_exception();
    for (PendingRequest& p : batch.items) {
      metrics_.record_failure();
      p.promise.set_exception(err);
    }
  }
}

}  // namespace dchag::serve
