// Wire protocol of the ingress tier: length-prefixed binary frames over a
// byte stream (TCP), plus the typed error surface shared by the socket
// protocol and the shared-memory rings.
//
// Frame layout (all integers little-endian):
//
//   u32 payload_bytes | u8 MsgType | payload
//
// Payloads:
//   kInfer        u64 id, f32 lead_time, u32 n_channels, i64 channels[n],
//                 i64 c, i64 h, i64 w, f32 data[c*h*w]
//   kResult       u64 id, i64 s, i64 d, f32 data[s*d]
//   kError        u64 id, u32 ErrorCode, u32 len, char message[len]
//   kMetricsQuery (empty)            -> kMetricsText  (char text[])
//   kHealthQuery  (empty)            -> kHealthOk     (char "ok")
//
// The codec never trusts the peer: every decode checks bounds and every
// malformed frame surfaces as IngressError{kBadRequest} instead of a read
// past the buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dchag::ingress {

using tensor::Index;
using tensor::Tensor;

/// Most channels one request may name; bounds the fixed-size ring slots.
constexpr std::uint32_t kMaxWireChannels = 64;

enum class MsgType : std::uint8_t {
  kInfer = 1,
  kResult = 2,
  kError = 3,
  kMetricsQuery = 4,
  kMetricsText = 5,
  kHealthQuery = 6,
  kHealthOk = 7,
};

/// Typed rejection/failure codes; these travel on the wire, so values are
/// part of the protocol.
enum class ErrorCode : std::uint32_t {
  kSaturated = 1,      ///< admission queue full — retry later
  kBadRequest = 2,     ///< malformed frame or out-of-bounds request
  kShuttingDown = 3,   ///< ingress is draining; no new work accepted
  kInternal = 4,       ///< worker-side failure executing the request
};

[[nodiscard]] const char* to_string(ErrorCode c);

/// The client-visible exception for kError responses and protocol faults.
class IngressError : public std::runtime_error {
 public:
  IngressError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct InferRequest {
  std::uint64_t id = 0;  ///< client-chosen correlation id, echoed back
  float lead_time = 1.0f;
  std::vector<Index> channels;  ///< empty = all trained channels
  Tensor images;                ///< one sample, [C, H, W]
};

struct InferResult {
  std::uint64_t id = 0;
  Tensor pred;  ///< [S, C_target * p^2]
};

struct WireError {
  std::uint64_t id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_infer(const InferRequest& r);
[[nodiscard]] InferRequest decode_infer(const std::uint8_t* data,
                                        std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> encode_result(const InferResult& r);
[[nodiscard]] InferResult decode_result(const std::uint8_t* data,
                                        std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const WireError& e);
[[nodiscard]] WireError decode_error(const std::uint8_t* data,
                                     std::size_t size);

// ---------------------------------------------------------------------------
// Framed blocking socket I/O
// ---------------------------------------------------------------------------

struct Frame {
  MsgType type{};
  std::vector<std::uint8_t> payload;
};

/// Writes one complete frame (handles partial writes / EINTR; suppresses
/// SIGPIPE). Returns false when the peer is gone.
bool write_frame(int fd, MsgType type, const std::uint8_t* payload,
                 std::size_t size);
inline bool write_frame(int fd, MsgType type,
                        const std::vector<std::uint8_t>& payload) {
  return write_frame(fd, type, payload.data(), payload.size());
}

/// Reads one complete frame. nullopt on orderly EOF or a dead peer.
/// Throws IngressError{kBadRequest} on an oversized or truncated frame.
[[nodiscard]] std::optional<Frame> read_frame(int fd);

/// Frames larger than this are protocol violations (guards the listener
/// against a garbage length prefix allocating gigabytes).
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

}  // namespace dchag::ingress
