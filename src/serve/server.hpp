// The request-facing serving layer: a Batcher in front of a worker pool
// executing an InferenceFn (single-device Engine or SpmdEngine) over a
// loaded checkpoint, with Metrics accounting on every stage.
//
// Lifecycle: construct -> (optionally submit early; requests park in the
// batcher) -> start() -> submit()/futures -> drain() or destructor.
// Workers never leak exceptions: a failing batch fails its requests'
// futures and the worker keeps serving.
#pragma once

#include <optional>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "tensor/kernel_config.hpp"

namespace dchag::serve {

struct ServerConfig {
  /// Worker threads executing batches. More than one only helps when the
  /// InferenceFn is itself thread-safe (the single-device Engine is; an
  /// SpmdEngine serializes internally).
  int num_workers = 1;
  BatcherConfig batcher;
#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context per-worker kernel pin; overlays the kernels field of
  /// the server's Context. A many-worker latency-oriented server
  /// typically pins kBlocked so each worker stays on its own core —
  /// express that as Context::current().to_builder().kernel_backend(
  /// kBlocked) on the Context handed to the Server now. Unset = inherit.
  /// Deprecated: use ContextBuilder::kernels on the Server Context.
  std::optional<tensor::KernelConfig> kernels;
#endif
};

class Server {
 public:
  /// `ctx` (default: the CONSTRUCTING thread's effective context) is the
  /// server's execution context: every worker thread scopes into it, so
  /// an override active where the server is built — kernel backend,
  /// tracing sink — reaches every worker forward by construction. The
  /// pre-Context footgun ("a scope set on the caller silently does not
  /// reach worker threads") is gone: workers inherit, always.
  ///
  /// Workers never get private pools: on the parallel backend all of
  /// them fan out onto the context's ThreadPool (the process-wide pool
  /// unless the context pins another), whose lane count is fixed no
  /// matter how many workers run — batches queue instead of
  /// oversubscribing cores.
  Server(InferenceFn infer, ServerConfig cfg,
         const runtime::Context& ctx = runtime::Context::current());
  /// Drains on destruction: closes the batcher, finishes parked work,
  /// joins workers.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request. Valid before start() — requests park in the
  /// batcher until workers spin up (handy for deterministic coalescing
  /// tests and warm-up bursts).
  [[nodiscard]] ResponseFuture submit(Request r);

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Stops accepting requests, completes everything parked, joins the
  /// workers. Idempotent; implied by the destructor.
  void drain();

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t queue_depth() const { return batcher_.depth(); }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  /// The execution context workers run under.
  [[nodiscard]] const runtime::Context& context() const { return ctx_; }

 private:
  void worker_loop();
  void execute(Batch batch);

  InferenceFn infer_;
  ServerConfig cfg_;
  runtime::Context ctx_;
  Batcher batcher_;
  Metrics metrics_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace dchag::serve
