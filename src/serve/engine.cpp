#include "serve/engine.hpp"

namespace dchag::serve {

Engine::Engine(model::ForecastModel& model) : model_(&model) {
  model_->eval();
}

Tensor Engine::run(const Tensor& images, const std::vector<Index>& channels,
                   float lead_time) const {
  DCHAG_CHECK(!model_->is_training(),
              "serving requires an eval-mode model");
  autograd::NoGradGuard no_grad;
  if (channels.empty()) {
    // Full-channel request; strategy-agnostic input selection (identity
    // for the single-device front-end).
    return model_
        ->predict(model_->frontend().select_input(images), lead_time)
        .value();
  }
  return model_->predict_subset(images, channels, lead_time).value();
}

InferenceFn Engine::inference_fn() const {
  return [this](const Tensor& images, const std::vector<Index>& channels,
                float lead_time) { return run(images, channels, lead_time); };
}

}  // namespace dchag::serve
