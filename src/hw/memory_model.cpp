#include "hw/memory_model.hpp"

#include <algorithm>
#include <cmath>

namespace dchag::hw {

namespace {

constexpr double kGb = 1e9;
constexpr double kStateBytesPerParam = 16.0;  // bf16 p+g, fp32 master+m+v
constexpr double kActBytes = 2.0;             // bf16 activations

double gb(double bytes) { return bytes / kGb; }

/// Stored activations of the channel-aggregation path for one aggregation
/// unit of `width` channels (scores + K/Q/V/out projections). `d_shard`
/// is the embedding slice held locally (D or D/tp) and `head_shard` the
/// attention-head split (Megatron shards heads across TP, so the C x C
/// score tensor divides by min(tp, heads); rank-local D-CHAG tree units
/// pass 1 — their channels differ per rank, nothing can shard).
double aggregation_unit_act_bytes(const ModelConfig& cfg, double batch_seq,
                                  Index width, AggLayerKind kind,
                                  double d_shard, double head_shard) {
  if (kind == AggLayerKind::kLinear) {
    // LN + weighted combine + projection: a handful of [B,S,D] tensors.
    return batch_seq * (static_cast<double>(width) * kActBytes  // weights bc
                        + 3.0 * d_shard * kActBytes);
  }
  const double wd = static_cast<double>(width);
  const double scores =
      cfg.query_mode == model::QueryMode::kChannelTokens ? wd * wd : wd;
  return batch_seq *
         (static_cast<double>(cfg.num_heads) / head_shard * scores *
              kActBytes                                        // scores
          + 3.0 * wd * d_shard * kActBytes                     // q,k,v
          + d_shard * kActBytes);                              // output
}

/// ViT block activations per GPU.
double transformer_act_bytes(const ModelConfig& cfg, const Workload& w,
                             double batch_seq, int tp) {
  const double d = static_cast<double>(cfg.embed_dim);
  const double layers = static_cast<double>(cfg.num_layers);
  const double r = static_cast<double>(cfg.mlp_ratio);
  if (w.checkpoint_vit) {
    // Stored block inputs (replicated across TP) + one block's live
    // recompute workspace (internals sharded by TP).
    const double stored = layers * batch_seq * d * kActBytes;
    const double workspace =
        (6.0 + 2.0 * r) * batch_seq * d * kActBytes / tp;
    return stored + workspace;
  }
  // No checkpointing: every block keeps its internals. Roughly 8 full-D
  // tensors (residuals, LN outputs) plus (10 + 2r)/tp sharded internals.
  const double per_block =
      (8.0 + (10.0 + 2.0 * r) / tp) * batch_seq * d * kActBytes;
  return layers * per_block;
}

}  // namespace

MemoryBreakdown estimate_memory(const ModelConfig& cfg, const Workload& w,
                                const ParallelLayout& layout,
                                const DchagSpec& dchag) {
  cfg.validate();
  layout.validate();
  DCHAG_CHECK(w.channels >= 1, "workload needs channels");
  const double B = static_cast<double>(w.batch_per_gpu);
  const double S = static_cast<double>(cfg.seq_len());
  const double BS = B * S;
  const double D = static_cast<double>(cfg.embed_dim);
  const int tp = layout.tp;
  const double fsdp = static_cast<double>(layout.fsdp);
  const double p2 = static_cast<double>(cfg.patch_size * cfg.patch_size);

  MemoryBreakdown m;
  m.transformer_state_gb =
      gb(static_cast<double>(cfg.transformer_params()) * kStateBytesPerParam /
         (tp * fsdp));
  m.transformer_act_gb = gb(transformer_act_bytes(cfg, w, BS, tp));

  if (!dchag.enabled) {
    // Baseline: every TP rank tokenizes and aggregates all C channels.
    const double C = static_cast<double>(w.channels);
    // Tokenizer params replicate across TP (no implementation shards them
    // — paper §4.3); FSDP shards their optimizer state.
    m.tokenizer_state_gb = gb(
        static_cast<double>(cfg.tokenizer_params(w.channels)) *
        kStateBytesPerParam / fsdp);
    m.input_act_gb = gb(BS * C * p2 * kActBytes);
    m.tokenizer_act_gb = gb(BS * C * D * kActBytes);
    m.aggregation_state_gb =
        gb(static_cast<double>(cfg.aggregator_params(
               AggLayerKind::kCrossAttention, w.channels)) *
           kStateBytesPerParam / (tp * fsdp));
    const double head_shard =
        static_cast<double>(std::min<Index>(tp, cfg.num_heads));
    m.aggregation_act_gb = gb(aggregation_unit_act_bytes(
        cfg, BS, w.channels, AggLayerKind::kCrossAttention, D / tp,
        head_shard));
    return m;
  }

  // ----- D-CHAG path (paper §3.3) -------------------------------------------
  DCHAG_CHECK(w.channels % tp == 0 || tp == 1,
              "D-CHAG: channels " << w.channels << " not divisible by tp "
                                  << tp);
  const Index c_local = std::max<Index>(1, w.channels / tp);
  const double Cl = static_cast<double>(c_local);
  m.tokenizer_state_gb =
      gb(static_cast<double>(cfg.tokenizer_params(c_local)) *
         kStateBytesPerParam / fsdp);
  m.input_act_gb = gb(BS * Cl * p2 * kActBytes);
  m.tokenizer_act_gb = gb(BS * Cl * D * kActBytes);

  // Partial aggregation tree over the local channels.
  const Index width = model::tree_units_to_width(
      c_local, std::min<Index>(dchag.tree_units, c_local));
  const model::TreePlan plan = model::plan_tree(c_local, width);
  double tree_state_bytes =
      static_cast<double>(model::tree_params(cfg, dchag.kind, plan)) *
      kStateBytesPerParam / fsdp;  // rank-local: TP cannot shard them
  double tree_act_bytes = 0;
  for (const auto& level : plan.level_widths) {
    for (Index uw : level) {
      tree_act_bytes += aggregation_unit_act_bytes(cfg, BS, uw, dchag.kind,
                                                   D, /*head_shard=*/1.0);
    }
  }

  // Final shared cross-attention over one token per TP rank; its embedding
  // space is sharded by TP like the rest of the model (paper §3.3 end).
  const double final_state_bytes =
      static_cast<double>(
          cfg.aggregator_params(AggLayerKind::kCrossAttention, tp)) *
      kStateBytesPerParam / (tp * fsdp);
  const double final_act_bytes = aggregation_unit_act_bytes(
      cfg, BS, tp, AggLayerKind::kCrossAttention, D / tp,
      static_cast<double>(std::min<Index>(tp, cfg.num_heads)));

  m.aggregation_state_gb = gb(tree_state_bytes + final_state_bytes);
  m.aggregation_act_gb = gb(tree_act_bytes + final_act_bytes);
  // AllGather landing buffer: one channel representation per TP rank.
  m.gather_act_gb = gb(BS * static_cast<double>(tp) * D * kActBytes);
  return m;
}

MemoryBreakdown estimate_memory_distributed_tokenization(
    const ModelConfig& cfg, const Workload& w, const ParallelLayout& layout) {
  // Start from the baseline and replace the tokenization terms: each rank
  // tokenizes C/tp channels but must AllGather the full [B, C, S, D] token
  // tensor (both channel and spatial dimensions) before aggregation.
  MemoryBreakdown m = estimate_memory(cfg, w, layout, DchagSpec::off());
  const double B = static_cast<double>(w.batch_per_gpu);
  const double S = static_cast<double>(cfg.seq_len());
  const double D = static_cast<double>(cfg.embed_dim);
  const double C = static_cast<double>(w.channels);
  const double p2 = static_cast<double>(cfg.patch_size * cfg.patch_size);
  const double Cl = C / layout.tp;

  m.tokenizer_state_gb /= layout.tp;  // per-channel weights now split
  m.input_act_gb = gb(B * S * Cl * p2 * kActBytes);
  m.tokenizer_act_gb = gb(B * S * Cl * D * kActBytes);
  // Full token tensor materialised on every rank by the AllGather.
  m.gather_act_gb = gb(B * S * C * D * kActBytes);
  return m;
}

int min_feasible_tp(const ModelConfig& cfg, const Workload& w,
                    const DchagSpec& dchag, const MachineSpec& machine,
                    int max_tp) {
  for (int tp = 1; tp <= max_tp; tp *= 2) {
    ParallelLayout layout{tp, 1, 1};
    if (dchag.enabled && w.channels % tp != 0) continue;
    if (fits(estimate_memory(cfg, w, layout, dchag), machine)) return tp;
  }
  return -1;
}

Index max_batch_per_gpu(const ModelConfig& cfg, Index channels,
                        const ParallelLayout& layout, const DchagSpec& dchag,
                        const MachineSpec& machine, bool checkpoint_vit) {
  const auto fits_batch = [&](Index b) {
    Workload w{b, channels, checkpoint_vit};
    return fits(estimate_memory(cfg, w, layout, dchag), machine);
  };
  if (!fits_batch(1)) return 0;
  Index lo = 1;
  Index hi = 2;
  while (fits_batch(hi)) {
    lo = hi;
    hi *= 2;
    if (hi > (Index{1} << 20)) break;  // guard against degenerate configs
  }
  while (lo + 1 < hi) {
    const Index mid = (lo + hi) / 2;
    (fits_batch(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace dchag::hw
