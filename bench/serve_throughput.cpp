// Serving throughput/latency bench: requests/s and tail latency of the
// batched serving subsystem at max_batch 1 / 8 / 32, over a tiny
// hierarchical-aggregation forecast model. Emits BENCH_serving.json
// (same spirit as BENCH_baseline.json: a committed snapshot future PRs
// can diff against) in the working directory.
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "serve/server.hpp"

using namespace dchag;

namespace {

constexpr tensor::Index kChannels = 6;
constexpr int kRequests = 192;

std::unique_ptr<model::ForecastModel> make_model() {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  tensor::Rng rng(17);
  auto agg = model::AggregationTree::with_units(
      cfg, model::AggLayerKind::kCrossAttention, kChannels, 2, rng);
  auto fe = std::make_unique<model::LocalFrontEnd>(cfg, kChannels,
                                                   std::move(agg), rng);
  return std::make_unique<model::ForecastModel>(cfg, std::move(fe),
                                                kChannels, rng);
}

struct Row {
  tensor::Index max_batch;
  serve::Metrics::Snapshot m;
};

Row run_point(serve::Engine& engine, tensor::Index max_batch) {
  serve::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.max_wait = std::chrono::microseconds(2000);
  serve::Server server(engine.inference_fn(), cfg);

  const std::vector<std::vector<tensor::Index>> subsets{{}, {0, 2, 5}};
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(kRequests);
  server.start();
  for (int i = 0; i < kRequests; ++i) {
    const auto& subset = subsets[static_cast<std::size_t>(i) % 2];
    const tensor::Index c =
        subset.empty() ? kChannels
                       : static_cast<tensor::Index>(subset.size());
    tensor::Rng rng(500 + static_cast<std::uint64_t>(i));
    serve::Request r;
    r.images = rng.normal_tensor({c, 16, 16});
    r.channels = subset;
    futures.push_back(server.submit(std::move(r)));
  }
  for (auto& f : futures) (void)f.get();
  server.drain();
  return {max_batch, server.metrics().summary()};
}

}  // namespace

int main() {
  bench::header("serve_throughput",
                "batched serving: requests/s and tail latency vs max_batch");
  auto model = make_model();
  serve::Engine engine(*model);

  std::vector<Row> rows;
  bench::section("throughput (tiny model, 2 workers, 192 live requests)");
  std::printf("%10s %12s %10s %10s %10s %12s\n", "max_batch", "req/s",
              "p50 ms", "p99 ms", "mean batch", "forward ms");
  for (tensor::Index mb : {1, 8, 32}) {
    rows.push_back(run_point(engine, mb));
    const auto& m = rows.back().m;
    std::printf("%10lld %12.1f %10.2f %10.2f %10.2f %12.3f\n",
                static_cast<long long>(mb), m.requests_per_s, m.p50_ms,
                m.p99_ms, m.mean_batch_size, m.mean_forward_ms);
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"bench\": \"serve_throughput\",\n"
       << "  \"model\": \"tiny, 6 channels, Tree2 cross-attention\",\n"
       << "  \"requests\": " << kRequests << ",\n  \"workers\": 2,\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"max_batch\": " << r.max_batch
         << ", \"requests_per_s\": " << r.m.requests_per_s
         << ", \"p50_ms\": " << r.m.p50_ms
         << ", \"p99_ms\": " << r.m.p99_ms
         << ", \"mean_batch_size\": " << r.m.mean_batch_size
         << ", \"mean_forward_ms\": " << r.m.mean_forward_ms << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_serving.json\n");

  bench::ShapeChecks checks;
  checks.expect(rows[0].m.mean_batch_size == 1.0,
                "max_batch=1 serves strictly unbatched");
  checks.expect(rows[1].m.mean_batch_size > 1.0,
                "max_batch=8 actually coalesces under live load");
  checks.expect(
      rows[1].m.requests_per_s > rows[0].m.requests_per_s,
      "batching raises throughput over unbatched serving");
  for (const Row& r : rows)
    checks.expect(r.m.requests == kRequests && r.m.failed == 0,
                  "all requests served at max_batch=" +
                      std::to_string(r.max_batch));
  return checks.report();
}
