#include "parallel/dist_tokenizer.hpp"

#include <gtest/gtest.h>

namespace dchag::parallel {
namespace {

namespace ops = tensor::ops;
using comm::World;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(ChannelShard, ContiguousAndComplete) {
  auto r0 = channel_shard(8, 4, 0);
  auto r3 = channel_shard(8, 4, 3);
  EXPECT_EQ(r0, (std::vector<tensor::Index>{0, 1}));
  EXPECT_EQ(r3, (std::vector<tensor::Index>{6, 7}));
  EXPECT_THROW(channel_shard(10, 4, 0), Error);
}

TEST(DistributedTokenizer, GatheredTokensMatchSerialTokenizer) {
  // §3.1: distributing tokenization must be math-neutral — the gathered
  // token tensor equals the serial tokenizer's output exactly.
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 8;
  Rng data_rng(5);
  Tensor img = data_rng.normal_tensor(Shape{2, C, 16, 16});

  Rng serial_rng(99);
  model::PatchTokenizer serial(cfg, C, serial_rng);
  Tensor ref = serial.forward(img).value();

  for (int P : {1, 2, 4}) {
    World world(P);
    world.run([&](Communicator& comm) {
      Rng rng(99);
      DistributedTokenizer dist(cfg, C, comm, rng);
      const tensor::Index cl = C / P;
      Tensor local = ops::slice(img, 1, comm.rank() * cl, cl);
      Variable full = dist.forward(local);
      ASSERT_EQ(full.shape(), ref.shape());
      ASSERT_LT(ops::max_abs_diff(full.value(), ref), 1e-5f)
          << "P=" << P << " rank=" << comm.rank();
    });
  }
}

TEST(DistributedTokenizer, LocalForwardIsOwnSlice) {
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 4;
  Rng data_rng(6);
  Tensor img = data_rng.normal_tensor(Shape{1, C, 16, 16});
  Rng serial_rng(100);
  model::PatchTokenizer serial(cfg, C, serial_rng);
  Tensor ref = serial.forward(img).value();

  World world(2);
  world.run([&](Communicator& comm) {
    Rng rng(100);
    DistributedTokenizer dist(cfg, C, comm, rng);
    Tensor local = ops::slice(img, 1, comm.rank() * 2, 2);
    Variable mine = dist.forward_local(local);
    Tensor expected = ops::slice(ref, 1, comm.rank() * 2, 2);
    ASSERT_LT(ops::max_abs_diff(mine.value(), expected), 1e-5f);
  });
}

TEST(DistributedTokenizer, BackwardGradMatchesSerialWithReplicatedLoss) {
  // Replicated downstream loss: each rank's per-channel weight gradients
  // must equal the serial tokenizer's gradients for those channels.
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 4;
  Rng data_rng(7);
  Tensor img = data_rng.normal_tensor(Shape{1, C, 16, 16});

  Rng serial_rng(101);
  model::PatchTokenizer serial(cfg, C, serial_rng);
  {
    Variable tokens = serial.forward(img);
    autograd::mean_all(autograd::mul(tokens, tokens)).backward();
  }
  auto serial_params = serial.parameters();

  World world(2);
  world.run([&](Communicator& comm) {
    Rng rng(101);
    DistributedTokenizer dist(cfg, C, comm, rng);
    Tensor local = ops::slice(img, 1, comm.rank() * 2, 2);
    Variable gathered = dist.forward(local);
    autograd::mean_all(autograd::mul(gathered, gathered)).backward();

    // Match by parameter name: per-channel embed weights carry the global
    // channel id in their name. The positional embedding is excluded: it
    // is a rank-local replica that accumulates only its own channels'
    // gradients (the serial one sums over all channels).
    for (const Variable& p : dist.parameters()) {
      if (!p.has_grad() || p.name() == "tokenizer.pos_emb") continue;
      for (const Variable& sp : serial_params) {
        if (sp.name() == p.name() && sp.shape() == p.shape()) {
          ASSERT_LT(ops::max_abs_diff(p.grad(), sp.grad()), 1e-4f)
              << p.name() << " rank " << comm.rank();
        }
      }
    }
  });
}

TEST(DistributedTokenizer, MemorySavingIsRealPerRank) {
  // The §3.1 motivation: each rank holds 1/P of the per-channel weights.
  ModelConfig cfg = ModelConfig::tiny();
  World world(4);
  world.run([&](Communicator& comm) {
    Rng rng(102);
    DistributedTokenizer dist(cfg, 8, comm, rng);
    Rng rng2(102);
    model::PatchTokenizer full(cfg, 8, rng2);
    // Per-channel weights shrink 4x; the shared positional embedding stays.
    ASSERT_LT(dist.num_parameters(),
              full.num_parameters() / 2);
    ASSERT_EQ(dist.local_channels(), 2);
  });
}

}  // namespace
}  // namespace dchag::parallel
