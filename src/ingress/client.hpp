// Blocking socket client for the ingress tier: the reference
// implementation of the wire protocol's client side, used by the tests,
// the example, and the benchmark. One connection, synchronous
// request/response; open several Clients for concurrency (the dispatcher
// multiplexes connections server-side).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ingress/wire.hpp"

namespace dchag::ingress {

class Client {
 public:
  /// Connects to an Ingress on 127.0.0.1:port; throws on refusal.
  explicit Client(std::uint16_t port);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One synchronous inference: sends kInfer, waits for the matching
  /// kResult and returns its prediction [S, D]. A kError response
  /// rethrows as IngressError carrying the typed code (kSaturated,
  /// kShuttingDown, kBadRequest, kInternal).
  [[nodiscard]] Tensor infer(const Tensor& images,
                             const std::vector<Index>& channels = {},
                             float lead_time = 1.0f);

  /// The /metrics-style exposition text (kMetricsQuery round trip).
  [[nodiscard]] std::string metrics_text();
  /// The /healthz-style liveness probe; true iff the ingress answered ok.
  [[nodiscard]] bool healthz();

 private:
  [[nodiscard]] Frame round_trip(MsgType type,
                                 const std::vector<std::uint8_t>& payload);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace dchag::ingress
