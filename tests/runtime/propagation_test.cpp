// Scopes must cross worker-thread boundaries: ThreadPool workers run
// chunks under the submitter's effective context, and AsyncCommunicator's
// progress thread runs each op under its issuer's effective context. Both
// are observed here through a recording TraceSink installed via a
// caller-side runtime::Scope — the sink sees events from the worker
// threads, and records what kernel config those threads observed.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "comm/async.hpp"
#include "runtime/context.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/thread_pool.hpp"

namespace dchag::runtime {
namespace {

/// Thread-safe sink recording (key, value, recording thread, and the
/// kernel backend that thread observed at record time).
class RecordingSink : public TraceSink {
 public:
  struct Entry {
    std::string key;
    double value;
    std::thread::id thread;
    KernelBackend observed_backend;
  };

  void record(const TraceEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(Entry{std::string(event.key), event.value,
                             std::this_thread::get_id(),
                             active_kernel_config().backend});
  }

  [[nodiscard]] std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

TEST(ScopePropagation, ParallelForWorkersInheritSubmitterContext) {
  tensor::ThreadPool pool(2);
  auto sink = std::make_shared<RecordingSink>();

  ContextPatch patch;
  patch.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
  patch.tracing = std::shared_ptr<TraceSink>(sink);
  Scope scope(patch);

  // 64 chunks x ~1ms: the two idle workers will claim some, and every
  // chunk records which thread ran it and what config it observed.
  constexpr tensor::Index kChunks = 64;
  pool.parallel_for(kChunks, 1, [&](tensor::Index b, tensor::Index e) {
    for (tensor::Index i = b; i < e; ++i) {
      trace_here("test.chunk", static_cast<double>(i));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto entries = sink->entries();
  ASSERT_EQ(entries.size(), static_cast<std::size_t>(kChunks));
  std::set<std::thread::id> threads;
  for (const auto& entry : entries) {
    threads.insert(entry.thread);
    // Every chunk — wherever it ran — observed the submitter's override.
    EXPECT_EQ(entry.observed_backend, KernelBackend::kNaive);
  }
  EXPECT_GE(threads.size(), 2u)
      << "expected pool workers to claim some chunks";
  EXPECT_NE(threads.count(std::this_thread::get_id()), 0u)
      << "the caller participates in its own parallel_for";
}

TEST(ScopePropagation, ParallelForRestoresWorkerStateBetweenJobs) {
  tensor::ThreadPool pool(1);
  auto sink = std::make_shared<RecordingSink>();
  {
    ContextPatch patch;
    patch.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
    patch.tracing = std::shared_ptr<TraceSink>(sink);
    Scope scope(patch);
    pool.parallel_for(8, 1, [](tensor::Index, tensor::Index) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  // Scope gone: a second job must observe the surrounding (default)
  // config on every lane — the worker's Scope was popped with the job.
  std::mutex mu;
  std::vector<KernelBackend> seen;
  pool.parallel_for(8, 1, [&](tensor::Index, tensor::Index) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(active_kernel_config().backend);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const KernelBackend ambient = active_kernel_config().backend;
  for (KernelBackend b : seen) EXPECT_EQ(b, ambient);
}

TEST(ScopePropagation, AsyncProgressThreadInheritsIssuerContext) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    comm::AsyncCommunicator async(comm);
    auto sink = std::make_shared<RecordingSink>();
    std::vector<float> data(64, 1.0f);
    {
      ContextPatch patch;
      patch.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
      patch.tracing = std::shared_ptr<TraceSink>(sink);
      Scope scope(patch);
      comm::CommFuture fut = async.iall_reduce(std::span<float>(data));
      fut.wait();
    }
    async.drain();

    const auto entries = sink->entries();
    ASSERT_EQ(entries.size(), 1u)
        << "the issuer's sink must observe the async op";
    EXPECT_EQ(entries[0].key, "comm.async.op.bytes");
    EXPECT_EQ(entries[0].value, 64.0 * sizeof(float));
    // The op ran on the progress thread, not the issuing rank thread —
    // and that thread observed the issuer's kernel override.
    EXPECT_NE(entries[0].thread, std::this_thread::get_id());
    EXPECT_EQ(entries[0].observed_backend, KernelBackend::kNaive);
  });
}

TEST(ScopePropagation, SyncCollectiveLeavesIssuerScopeUntouched) {
  // The sync oracle runs inline: same thread, same scope, no surprises.
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    comm::SyncCollective sync(comm);
    std::vector<float> data(8, static_cast<float>(comm.rank()));
    Scope scope(ContextPatch::with_kernels({KernelBackend::kBlocked, 0}));
    comm::CommFuture fut = sync.iall_reduce(std::span<float>(data));
    fut.wait();
    EXPECT_EQ(active_kernel_config().backend, KernelBackend::kBlocked);
    EXPECT_EQ(data[0], 1.0f);  // 0 + 1
  });
}

}  // namespace
}  // namespace dchag::runtime
