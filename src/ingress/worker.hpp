// The worker-process side of the ingress tier. Each worker is a separate
// OS process (spawned by the dispatcher, see dispatcher.hpp) that:
//
//   1. builds its runtime::Context from the environment — the dispatcher
//      re-exports its own effective context as DCHAG_* variables, so
//      Context::from_env() IS the context hand-off across the process
//      boundary,
//   2. reconstructs the model from a ModelSpec + checkpoint cold start
//      (the PR 2 serving path), wraps it in a serve::Engine,
//   3. serves its shared-memory request ring until told to drain.
//
// A crash anywhere in the forward kills only this process; the dispatcher
// detects it through waitpid/heartbeat and re-dispatches the in-flight
// requests to surviving workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/foundation.hpp"

namespace dchag::ingress {

/// Environment variables of the worker protocol. All live under the
/// DCHAG_ING_ prefix, which Context::from_env treats as a known-namespace
/// pass-through (not an "unknown variable" diagnostic).
inline constexpr const char* kEnvWorkerExe = "DCHAG_ING_WORKER";
inline constexpr const char* kEnvCheckpoint = "DCHAG_ING_CKPT";
inline constexpr const char* kEnvModelSpec = "DCHAG_ING_MODEL";
inline constexpr const char* kEnvCrashAt = "DCHAG_ING_CRASH_AT";

/// Compact description of the architecture a worker must rebuild before
/// loading the checkpoint (weights come from the checkpoint; the spec
/// only pins the geometry). Serialized as "preset:channels:units".
struct ModelSpec {
  std::string preset = "tiny";  ///< ModelConfig::tiny() or preset(name)
  tensor::Index channels = 6;
  tensor::Index units = 2;  ///< first-level aggregation units (TreeN)

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static ModelSpec parse(const std::string& text);
};

/// Builds a freshly initialised model of the spec'd architecture. The
/// seed only shapes throwaway init values — load_module overwrites every
/// parameter — but is a parameter so tests can build reference models.
[[nodiscard]] std::unique_ptr<model::ForecastModel> build_model(
    const ModelSpec& spec, std::uint64_t seed = 1);

/// Entry point of the dchag_ingress_worker binary: argv[1] is the shm
/// ring name; everything else arrives via DCHAG_ING_* / DCHAG_* env.
/// Returns the process exit code.
int worker_main(int argc, char** argv);

}  // namespace dchag::ingress
