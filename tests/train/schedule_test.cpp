#include "train/schedule.hpp"

#include <gtest/gtest.h>

namespace dchag::train {
namespace {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

TEST(WarmupCosine, LinearWarmup) {
  WarmupCosineSchedule sched(1.0f, 10, 100);
  EXPECT_NEAR(sched.lr(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.lr(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.lr(9), 1.0f, 1e-6f);
}

TEST(WarmupCosine, CosineDecayToMin) {
  WarmupCosineSchedule sched(1.0f, 10, 110, 0.1f);
  EXPECT_NEAR(sched.lr(10), 1.0f, 1e-5f);           // decay start
  EXPECT_NEAR(sched.lr(60), 0.55f, 1e-5f);          // halfway: (1+0.1)/2
  EXPECT_NEAR(sched.lr(109), 0.1f, 1e-2f);          // near the end
  EXPECT_NEAR(sched.lr(500), 0.1f, 1e-6f);          // held at min
}

TEST(WarmupCosine, MonotoneDecreasingAfterWarmup) {
  WarmupCosineSchedule sched(3e-4f, 5, 50);
  float prev = sched.lr(5);
  for (std::int64_t s = 6; s < 50; ++s) {
    const float lr = sched.lr(s);
    EXPECT_LE(lr, prev + 1e-9f) << "step " << s;
    prev = lr;
  }
}

TEST(WarmupCosine, RejectsBadConfig) {
  EXPECT_THROW(WarmupCosineSchedule(1.0f, 10, 10), Error);
  EXPECT_THROW(WarmupCosineSchedule(-1.0f, 0, 10), Error);
  EXPECT_THROW(WarmupCosineSchedule(1.0f, 0, 10, 2.0f), Error);
}

TEST(ClipGradNorm, NoOpBelowThreshold) {
  Variable p = Variable::param(Tensor(Shape{4}, 1.0f), "p");
  autograd::sum_all(p).backward();  // grad = 1 each, norm = 2
  std::vector<Variable> params{p};
  const float norm = clip_grad_norm(params, 10.0f);
  EXPECT_NEAR(norm, 2.0f, 1e-5f);
  for (float g : p.grad().span()) EXPECT_NEAR(g, 1.0f, 1e-6f);
}

TEST(ClipGradNorm, ScalesDownAboveThreshold) {
  Variable p = Variable::param(Tensor(Shape{4}, 1.0f), "p");
  autograd::scale(autograd::sum_all(p), 10.0f).backward();  // grad 10, norm 20
  std::vector<Variable> params{p};
  const float norm = clip_grad_norm(params, 2.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-3f);
  // post-clip norm == max_norm
  double sq = 0;
  for (float g : p.grad().span()) sq += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(sq), 2.0, 1e-4);
}

TEST(ClipGradNorm, GlobalAcrossParams) {
  Variable a = Variable::param(Tensor(Shape{1}, 1.0f), "a");
  Variable b = Variable::param(Tensor(Shape{1}, 1.0f), "b");
  autograd::add(autograd::scale(autograd::sum_all(a), 3.0f),
                autograd::scale(autograd::sum_all(b), 4.0f))
      .backward();  // grads 3 and 4 -> global norm 5
  std::vector<Variable> params{a, b};
  const float norm = clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(a.grad().at({0}), 0.6f, 1e-5f);
  EXPECT_NEAR(b.grad().at({0}), 0.8f, 1e-5f);
}

TEST(ClipGradNorm, SkipsParamsWithoutGrads) {
  Variable a = Variable::param(Tensor(Shape{2}, 1.0f), "a");
  std::vector<Variable> params{a};
  EXPECT_EQ(clip_grad_norm(params, 1.0f), 0.0f);
  EXPECT_THROW(clip_grad_norm(params, 0.0f), Error);
}

}  // namespace
}  // namespace dchag::train
