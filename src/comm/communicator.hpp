// In-process SPMD communication runtime.
//
// World spawns one std::thread per rank and hands each a Communicator bound
// to a shared GroupState. Collectives move real data between rank-private
// buffers through shared memory, with the same semantics (and, for kRing /
// kHierarchical, the same step structure) as NCCL/RCCL collectives on a
// GPU cluster. This is the executable substrate for every distributed
// algorithm in the library; the analytic hw::CommCostModel prices the same
// operations on Frontier's fabric for at-scale projections.
//
// Usage contract (as in MPI/NCCL): every rank of a communicator must call
// the same sequence of collectives with compatible sizes; collectives are
// rendezvous points and asymmetric call sequences deadlock.
//
// Fault semantics: a World carries one FailureLedger shared by every group
// descended from it (split() children and async shadow groups included).
// When a FaultPlan structural event fires — rank death or link partition
// (fault.hpp) — the ledger's fault epoch advances, and every communicator
// handle created before that epoch is permanently POISONED: any collective,
// barrier, or send/recv on it throws a typed RankFailure instead of
// hanging on a peer that will never arrive. Survivors regroup with
// split_survivors(), which rendezvouses through the ledger (no barriers,
// so it works on poisoned groups) and yields a fresh, un-poisoned group
// over an explicit membership list.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "comm/types.hpp"
#include "tensor/check.hpp"

namespace dchag::comm {

class FaultPlan;  // fault.hpp: deterministic delay/drop/jitter/event plan

/// Typed error for an injected (or detected) rank failure. The message
/// always embeds the failing world ranks plus the fault plan's seed,
/// event index, and full schedule string, so any seeded chaos failure is
/// reproducible straight from a test log.
class RankFailure : public Error {
 public:
  RankFailure(const std::string& context, std::vector<int> failed_ranks,
              std::uint64_t seed, int event_index, std::string schedule);

  [[nodiscard]] const std::vector<int>& failed_ranks() const {
    return failed_ranks_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] int event_index() const { return event_index_; }
  [[nodiscard]] const std::string& schedule() const { return schedule_; }

 private:
  std::vector<int> failed_ranks_;
  std::uint64_t seed_;
  int event_index_;
  std::string schedule_;
};

namespace detail {

struct GroupState;

/// World-scoped failure record, shared by all groups of one World. The
/// epoch is the poisoning clock: every structural fault event advances it
/// exactly once, and handles compare their construction-time epoch
/// against it on every operation.
class FailureLedger {
 public:
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Fires `event_index` (idempotent — at most once per plan event):
  /// marks `ranks` dead, advances the epoch, records repro info. Returns
  /// the epoch at which the event fired, whether now or earlier; callers
  /// throw iff that epoch postdates their handle.
  std::uint64_t fail(int event_index, const std::vector<int>& ranks,
                     std::uint64_t seed, const std::string& schedule);

  [[nodiscard]] bool is_dead(int world_rank) const;
  [[nodiscard]] std::vector<int> dead_ranks() const;

  struct Repro {
    std::vector<int> failed;
    std::uint64_t seed = 0;
    int event_index = -1;
    std::string schedule;
  };
  [[nodiscard]] Repro last_failure() const;

  /// Barrier-free rendezvous for post-failure regrouping: the first
  /// caller under `key` creates the group via `make`; everyone else gets
  /// the same GroupState. Keys are caller-chosen (the serving layer uses
  /// "phase#generation" tags) so repeated recoveries stay distinct.
  std::shared_ptr<GroupState> recovery_group(
      const std::string& key,
      const std::function<std::shared_ptr<GroupState>()>& make);

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> epoch_{0};
  std::map<int, std::uint64_t> fired_;  ///< event index -> firing epoch
  std::vector<int> dead_;               ///< sorted world ranks
  Repro last_;
  std::map<std::string, std::shared_ptr<GroupState>> groups_;
};

/// Rendezvous barrier that can break. Functionally std::barrier with a
/// fixed participant count, except waiters poll the FailureLedger: when
/// the fault epoch moves past the waiter's view, the wait RETRACTS its
/// arrival and returns false so the caller can throw RankFailure —
/// turning what would be a permanent hang on a dead peer into an error.
class SeqBarrier {
 public:
  SeqBarrier(int expected, const FailureLedger* ledger)
      : expected_(expected), ledger_(ledger) {}

  /// True: all ranks arrived, barrier passed. False: the world's fault
  /// epoch advanced past `seen_epoch` while waiting (arrival retracted).
  [[nodiscard]] bool arrive_and_wait(std::uint64_t seen_epoch);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int expected_;
  int arrived_ = 0;
  std::uint64_t phase_ = 0;
  const FailureLedger* ledger_;
};

/// State shared by all ranks of one communicator group.
struct GroupState {
  GroupState(int size, Topology topo,
             std::shared_ptr<const FaultPlan> plan = nullptr,
             std::shared_ptr<FailureLedger> ledger = nullptr,
             std::vector<int> world_ranks = {});

  int size;
  Topology topology;
  /// Optional fault injection consulted by every collective (timing plus
  /// structural events). Propagates into split() children.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// World-scoped failure ledger; created by the root group, shared by
  /// every descendant (split children, shadow groups, recovery groups).
  std::shared_ptr<FailureLedger> ledger;
  /// Group rank -> root-world rank, composed through split(). Structural
  /// fault events are specified in world ranks, so nested groups can
  /// still match them.
  std::vector<int> world_ranks;

  // Pointer-exchange slots for the direct/ring/hierarchical algorithms.
  std::vector<const float*> send_slots;
  std::vector<float*> recv_slots;
  std::vector<std::int64_t> count_slots;
  SeqBarrier barrier;

  // split() rendezvous.
  std::mutex split_mu;
  std::vector<int> split_colors;
  std::vector<int> split_keys;
  std::map<int, std::shared_ptr<GroupState>> split_groups;
  std::map<int, std::vector<int>> split_members;  // color -> parent ranks

  // Point-to-point mailbox (synchronous rendezvous send).
  struct Parcel {
    const float* data = nullptr;
    std::int64_t count = 0;
    bool consumed = false;
  };
  std::mutex mail_mu;
  std::condition_variable mail_cv;
  std::map<std::tuple<int, int, int>, Parcel> mailbox;  // (src,dst,tag)
};

}  // namespace detail

/// Per-rank handle to a communicator group. Not copyable: a handle also
/// carries this rank's traffic ledger (stats()), which callers inspect to
/// verify communication properties (e.g. D-CHAG's communication-free
/// backward pass).
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::GroupState> state, int rank);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;
  Communicator(Communicator&&) = default;
  Communicator& operator=(Communicator&&) = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size; }
  [[nodiscard]] const Topology& topology() const { return state_->topology; }

  /// This rank's position in the ROOT world (== rank() on the root group;
  /// composed through split() / split_survivors() for nested groups).
  [[nodiscard]] int world_rank() const {
    return state_->world_ranks[static_cast<std::size_t>(rank_)];
  }
  [[nodiscard]] const std::vector<int>& world_ranks() const {
    return state_->world_ranks;
  }

  /// True once a fault event has poisoned this handle: every subsequent
  /// collective / barrier / send / recv throws RankFailure.
  [[nodiscard]] bool poisoned() const;
  /// This group's membership minus the ledger's dead set (world ranks).
  [[nodiscard]] std::vector<int> alive_world_ranks() const;
  /// The ledger's current fault epoch (advances once per structural fault
  /// event). Recovery code snapshots it to tag regrouping rendezvous and
  /// re-checks it after regrouping to detect events that raced in.
  [[nodiscard]] std::uint64_t fault_epoch() const;

  /// Synchronisation point for all ranks in the group.
  void barrier();

  /// In-place sum/avg/max/min across ranks; every rank ends with the result.
  void all_reduce(std::span<float> data, ReduceOp op = ReduceOp::kSum,
                  Algorithm alg = Algorithm::kAuto);

  /// Gathers each rank's `send` into `recv` ordered by rank.
  /// recv.size() must equal send.size() * size().
  void all_gather(std::span<const float> send, std::span<float> recv,
                  Algorithm alg = Algorithm::kAuto);

  /// Reduces element-wise across ranks, scattering contiguous chunks:
  /// rank r receives chunk r. send.size() must equal recv.size() * size().
  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp op = ReduceOp::kSum,
                      Algorithm alg = Algorithm::kAuto);

  /// Copies root's `data` to every rank (in place).
  void broadcast(std::span<float> data, int root);

  /// Synchronous (rendezvous) point-to-point send/recv with message tags.
  void send(std::span<const float> data, int dst, int tag);
  void recv(std::span<float> data, int src, int tag);

  /// Collective: partitions ranks by `color` into child communicators.
  /// Ranks are ordered within the child group by (key, parent rank);
  /// key < 0 means "use parent rank order".
  [[nodiscard]] Communicator split(int color, int key = -1);

  /// Post-failure regrouping over an explicit membership of WORLD ranks
  /// (sorted, unique, containing this handle's world_rank). Rendezvouses
  /// through the FailureLedger rather than barriers, so it works on a
  /// poisoned handle; every member must call it with the same
  /// (world_members, tag). The fresh group inherits the fault plan and
  /// ledger (already-fired events cannot re-fire) and uses a flat
  /// topology. Tags namespace concurrent recoveries — reuse a tag only
  /// for the same membership.
  [[nodiscard]] Communicator split_survivors(
      const std::vector<int>& world_members, const std::string& tag);

  /// split_survivors on behalf of `world_rank` — lets a surviving leader
  /// mint the (movable) handle a respawned rank thread will use, without
  /// that thread needing any communicator of its own first.
  [[nodiscard]] Communicator split_survivors_for(
      int world_rank, const std::vector<int>& world_members,
      const std::string& tag);

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  /// Throws RankFailure if the handle is poisoned. Every public entry
  /// point calls this first.
  void check_failure() const;
  [[noreturn]] void throw_failure(const std::string& context) const;
  /// Group-internal barrier step: arrive, and convert a broken wait
  /// (peer died) into RankFailure.
  void sync();

  /// Sleeps per the group's FaultPlan (if any) before/after a collective's
  /// data movement, and fires structural events (death / partition) due at
  /// this op. No-ops without a plan; never touches payloads.
  void inject_entry_faults(CollectiveKind kind);
  void inject_exit_faults(CollectiveKind kind);

  void all_reduce_direct(std::span<float> data, ReduceOp op);
  void all_reduce_ring(std::span<float> data, ReduceOp op);
  void all_reduce_hierarchical(std::span<float> data, ReduceOp op);
  void all_gather_direct(std::span<const float> send, std::span<float> recv);
  void all_gather_ring(std::span<const float> send, std::span<float> recv);
  void reduce_scatter_direct(std::span<const float> send,
                             std::span<float> recv, ReduceOp op);
  void reduce_scatter_ring(std::span<const float> send, std::span<float> recv,
                           ReduceOp op);

  std::shared_ptr<detail::GroupState> state_;
  int rank_;
  CommStats stats_;
  /// Ledger epoch observed when this handle was created; the handle is
  /// poisoned forever once the ledger moves past it.
  std::uint64_t seen_epoch_ = 0;
  /// Per-rank collective sequence number feeding FaultPlan::draw; symmetric
  /// SPMD call sequences keep it aligned across ranks, which is what makes
  /// injected schedules deterministic.
  std::uint64_t fault_seq_ = 0;
  /// Completion jitter drawn at entry, slept at exit of the same op.
  std::uint32_t pending_exit_jitter_us_ = 0;
};

/// Owns the shared state for `size` ranks and runs SPMD functions.
class World {
 public:
  explicit World(int size, Topology topo);
  explicit World(int size) : World(size, Topology::flat(size)) {}

  [[nodiscard]] int size() const { return size_; }

  /// Installs deterministic fault injection (fault.hpp) on every group this
  /// world creates, including split() children. Pass nullptr to clear.
  /// This is how FaultyWorld wraps a World; call before run().
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  [[nodiscard]] const std::shared_ptr<const FaultPlan>& fault_plan() const {
    return fault_plan_;
  }

  /// Runs `fn(comm)` on every rank in its own thread and joins. If any rank
  /// throws, the first exception is rethrown after all threads finish —
  /// RankFailure errors keep their type (and repro payload) through the
  /// rethrow. Rank bodies must keep collective call sequences symmetric.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  int size_;
  Topology topo_;
  std::shared_ptr<const FaultPlan> fault_plan_;
};

/// Accumulates the element-wise reduction `op` of `src` into `dst`.
void reduce_into(std::span<float> dst, std::span<const float> src,
                 ReduceOp op);

}  // namespace dchag::comm
