// The pre-Context configuration shims must keep working for one release
// when compiled in (-DDCHAG_DEPRECATED_CONFIG=ON): KernelScope/CommScope
// forward into the one runtime::Scope stack, set_kernel_config /
// comm_config_from_env forward into the process-default Context, and the
// legacy per-subsystem fields (DchagOptions::kernels/comm,
// ServerConfig::kernels, SpmdEngineConfig::fault_plan, LoopConfig::comm)
// overlay the owning subsystem's Context. Compiled to a no-op suite when
// the shims are configured out.

// This TU exercises the deprecated surface on purpose.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "serve/server.hpp"
#include "serve/spmd_engine.hpp"
#include "train/loops.hpp"

namespace dchag::runtime {
namespace {

#ifdef DCHAG_DEPRECATED_CONFIG

using model::AggLayerKind;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(DeprecatedShims, KernelScopeForwardsIntoRuntimeStack) {
  const KernelBackend before = tensor::kernel_config().backend;
  {
    tensor::KernelScope scope({KernelBackend::kNaive, 3});
    EXPECT_EQ(tensor::kernel_config().backend, KernelBackend::kNaive);
    EXPECT_EQ(tensor::kernel_config().threads, 3);
    // The shim and the new API are ONE stack, not two.
    EXPECT_EQ(active_kernel_config().backend, KernelBackend::kNaive);
    EXPECT_EQ(Context::current().kernels().threads, 3);
    {
      Scope inner(ContextPatch::with_kernels({KernelBackend::kBlocked, 0}));
      EXPECT_EQ(tensor::kernel_config().backend, KernelBackend::kBlocked);
    }
    EXPECT_EQ(tensor::kernel_config().backend, KernelBackend::kNaive);
  }
  EXPECT_EQ(tensor::kernel_config().backend, before);
}

TEST(DeprecatedShims, CommScopeForwardsIntoRuntimeStack) {
  EXPECT_FALSE(comm::comm_scope_override().has_value());
  {
    comm::CommScope scope(comm::CommConfig{CommMode::kAsync, 5});
    ASSERT_TRUE(comm::comm_scope_override().has_value());
    EXPECT_EQ(comm::comm_scope_override()->mode, CommMode::kAsync);
    EXPECT_EQ(active_comm_config().pipeline_chunks, 5);
    EXPECT_EQ(Context::current().comm().mode, CommMode::kAsync);
  }
  EXPECT_FALSE(comm::comm_scope_override().has_value());
}

TEST(DeprecatedShims, SetKernelConfigUpdatesProcessDefaultContext) {
  const Context saved = Context::process_default();
  tensor::set_kernel_config({KernelBackend::kNaive, 2});
  EXPECT_EQ(Context::process_default().kernels().backend,
            KernelBackend::kNaive);
  EXPECT_EQ(tensor::kernel_config().threads, 2);
  // Non-kernel fields of the default survive the legacy setter.
  EXPECT_EQ(Context::process_default().comm().mode, saved.comm().mode);
  Context::set_process_default(saved);
}

TEST(DeprecatedShims, CommConfigFromEnvMatchesContextFromEnv) {
  const comm::CommConfig legacy = comm::comm_config_from_env();
  const comm::CommConfig unified = Context::from_env().comm();
  EXPECT_EQ(legacy.mode, unified.mode);
  EXPECT_EQ(legacy.pipeline_chunks, unified.pipeline_chunks);
}

TEST(DeprecatedShims, DchagOptionsFieldsOverlayFrontEndContext) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    ModelConfig cfg = ModelConfig::tiny();
    Rng master(7);
    core::DchagOptions opts{1, AggLayerKind::kLinear};
    opts.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
    opts.comm = comm::CommConfig{CommMode::kAsync, 2};
    core::DchagFrontEnd fe(cfg, 4, comm, opts, master);
    EXPECT_EQ(fe.comm_config().mode, CommMode::kAsync);
    EXPECT_EQ(fe.comm_config().pipeline_chunks, 2);
    EXPECT_EQ(fe.effective_context().kernels().backend,
              KernelBackend::kNaive);
    // A runtime::Scope still outranks the legacy pin at forward time.
    {
      Scope scope(ContextPatch::with_comm({CommMode::kSync, 1}));
      EXPECT_EQ(fe.comm_config().mode, CommMode::kSync);
    }
    // And the forward still runs (async pipelined, P=1).
    autograd::NoGradGuard no_grad;
    Tensor img = Rng(3).normal_tensor(Shape{2, 4, 16, 16});
    EXPECT_EQ(fe.forward(img).value().dim(0), 2);
  });
}

TEST(DeprecatedShims, ServerConfigKernelsReachWorkers) {
  std::mutex mu;
  std::vector<KernelBackend> observed;
  serve::ServerConfig cfg;
  cfg.batcher.max_batch = 1;
  cfg.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
  serve::Server server(
      [&](const Tensor& images, const std::vector<tensor::Index>&, float) {
        {
          std::lock_guard<std::mutex> lock(mu);
          observed.push_back(tensor::kernel_config().backend);
        }
        return Tensor(
            Shape{images.dim(0), 1, 1});  // [B, S, C*p^2] stand-in
      },
      cfg);
  server.start();
  serve::Request r;
  r.images = Rng(1).normal_tensor(Shape{2, 4, 4});
  (void)server.submit(std::move(r)).get();
  server.drain();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], KernelBackend::kNaive);
}

TEST(DeprecatedShims, SpmdEngineConfigFaultPlanInstallsOnWorld) {
  comm::FaultSpec spec;
  spec.seed = 11;
  spec.max_edge_delay_us = 10;
  auto plan = comm::make_fault_plan(spec, 2);
  serve::SpmdEngineConfig cfg;
  cfg.fault_plan = plan;
  serve::SpmdEngine engine(
      2,
      [](comm::Communicator& comm) {
        Rng master(42);
        return core::make_dchag_forecast(ModelConfig::tiny(), 4, comm,
                                         {1, AggLayerKind::kLinear}, master);
      },
      cfg);
  Tensor batch = Rng(5).normal_tensor(Shape{1, 4, 16, 16});
  (void)engine.run(batch, {}, 1.0f);
  EXPECT_GT(plan->injections(), 0u)
      << "legacy fault slot must reach the engine's World";
}

TEST(DeprecatedShims, LoopConfigPinsOverlayLoopContext) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    ModelConfig cfg = ModelConfig::tiny();
    Rng master(11);
    auto mae = core::make_dchag_mae(cfg, 4, comm,
                                    {1, AggLayerKind::kLinear}, master);
    train::LoopConfig lc;
    lc.steps = 2;
    lc.batch = 2;
    lc.kernels = tensor::KernelConfig{KernelBackend::kNaive, 0};
    lc.comm = comm::CommConfig{CommMode::kSync, 1};
    const train::TrainCurve curve =
        train::train_mae(*mae, lc, [&](tensor::Index step) {
          return Rng(100 + static_cast<std::uint64_t>(step))
              .normal_tensor(Shape{2, 4, 16, 16});
        });
    EXPECT_EQ(curve.losses.size(), 2u);
  });
}

#else  // !DCHAG_DEPRECATED_CONFIG

TEST(DeprecatedShims, CompiledOut) {
  // -DDCHAG_DEPRECATED_CONFIG=OFF: the legacy surface does not exist;
  // this suite exists so the ctest entry stays present in both modes.
  EXPECT_TRUE(true);
}

#endif  // DCHAG_DEPRECATED_CONFIG

}  // namespace
}  // namespace dchag::runtime
