// Autograd-integrated collectives: the bridge between the SPMD runtime
// (comm/) and the tape (tensor/autograd.hpp). These encode the
// communication calculus of tensor parallelism (Megatron's f/g conjugate
// pair) and of D-CHAG's forward-only AllGather.
#pragma once

#include "comm/async.hpp"
#include "comm/communicator.hpp"
#include "tensor/autograd.hpp"

namespace dchag::parallel {

using autograd::Variable;
using comm::Communicator;
using tensor::Index;

/// Backward behaviour of all_gather_cat.
enum class GatherBackward {
  /// Downstream computation is replicated across ranks, so the incoming
  /// gradient is identical everywhere and each rank can just slice out its
  /// own shard — zero backward communication. This is D-CHAG's key
  /// property (paper §3.3: "during the backward pass, we gather only the
  /// relevant gradients for each GPU, avoiding any additional
  /// communication").
  kLocalSlice,
  /// General case: shards feed rank-dependent computation, so the true
  /// input gradient is the sum of every rank's gradient slice.
  kReduceScatter,
};

/// Megatron "f" op: AllReduce-sum in the forward pass, identity backward.
/// Closes a row-parallel linear (partial sums live on each rank).
[[nodiscard]] Variable reduce_from_parallel(const Variable& x,
                                            Communicator& comm);

/// Megatron "g" op: identity forward, AllReduce-sum backward. Opens a
/// column-parallel region from a replicated activation.
[[nodiscard]] Variable copy_to_parallel(const Variable& x,
                                        Communicator& comm);

/// Concatenates every rank's `x` along `dim` (rank order). All ranks
/// receive the same gathered tensor.
[[nodiscard]] Variable all_gather_cat(const Variable& x, Communicator& comm,
                                      Index dim, GatherBackward backward);

/// Split-phase all_gather_cat: the non-blocking half of D-CHAG's overlap.
/// start() issues the gather on an ICollective and returns immediately;
/// finish() (or the handle's wait()) blocks on the traffic and assembles
/// the concatenated Variable — including the kLocalSlice tape node, so
/// train-mode backward works exactly like the blocking op. The handle owns
/// the receive buffer; keep it alive until wait(). Backward is restricted
/// to kLocalSlice (zero backward communication), which is the only mode
/// the overlap pipeline needs — the general kReduceScatter backward would
/// reintroduce a blocking collective inside the tape.
class PendingGatherCat {
 public:
  [[nodiscard]] Variable wait();
  [[nodiscard]] bool ready() const { return future_.ready(); }

 private:
  friend PendingGatherCat all_gather_cat_start(const Variable& x,
                                               comm::ICollective& coll,
                                               Index dim);
  comm::CommFuture future_;
  tensor::Tensor flat_;  ///< [P, numel(x)] receive buffer
  Variable input_;
  Index dim_ = 0;
  int rank_ = 0;
};

[[nodiscard]] PendingGatherCat all_gather_cat_start(const Variable& x,
                                                    comm::ICollective& coll,
                                                    Index dim);

/// Broadcasts the values of `params` from `root`, forcing bit-identical
/// replicated parameters across the group (used at model construction).
void sync_parameters(std::span<const Variable> params, Communicator& comm,
                     int root = 0);

/// True iff `t` holds identical values on every rank (debug/test helper;
/// uses collectives, so call it symmetrically).
[[nodiscard]] bool is_replicated(const tensor::Tensor& t, Communicator& comm,
                                 float tol = 0.0f);

}  // namespace dchag::parallel
