// FsdpAdam (ZeRO-1) must be mathematically identical to data-parallel
// Adam while sharding the optimizer state across the group.
#include <gtest/gtest.h>

#include "parallel/data_parallel.hpp"
#include "train/optim.hpp"

namespace dchag::train {
namespace {

namespace ops = tensor::ops;
using comm::World;
using tensor::Rng;
using tensor::Shape;

/// Toy model: y = x*w + b, loss = mean((y - target)^2); each rank gets a
/// different data shard, like real FSDP/DP training.
struct Toy {
  Variable w = Variable::param(Tensor(Shape{4, 4}, 0.5f), "w");
  Variable b = Variable::param(Tensor(Shape{4}, 0.0f), "b");

  Variable loss(const Tensor& x, const Tensor& target) const {
    Variable y = autograd::add(autograd::matmul(Variable::input(x), w), b);
    return autograd::mse_loss(y, target);
  }
};

struct Batch {
  Tensor x;
  Tensor target;
};

Batch rank_batch(int rank, int step) {
  Rng rng(static_cast<std::uint64_t>(rank * 1000 + step));
  return {rng.normal_tensor(Shape{3, 4}), rng.normal_tensor(Shape{3, 4})};
}

TEST(FsdpAdam, MatchesSingleRankAdamOnAveragedGradients) {
  const int P = 4;
  const int steps = 5;

  // Reference: single-rank Adam where each step's gradient is the average
  // over all P ranks' batches (what DP/ZeRO-1 compute).
  Toy ref;
  Adam ref_opt({ref.w, ref.b}, {});
  for (int s = 0; s < steps; ++s) {
    ref_opt.zero_grad();
    Variable total = Variable::input(Tensor::scalar(0.0f));
    for (int r = 0; r < P; ++r) {
      Batch batch = rank_batch(r, s);
      total = autograd::add(total, ref.loss(batch.x, batch.target));
    }
    autograd::scale(total, 1.0f / P).backward();
    ref_opt.step();
  }

  World world(P);
  world.run([&](comm::Communicator& comm) {
    Toy toy;
    FsdpAdam opt({toy.w, toy.b}, comm, {});
    for (int s = 0; s < steps; ++s) {
      opt.zero_grad();
      Batch batch = rank_batch(comm.rank(), s);
      toy.loss(batch.x, batch.target).backward();
      opt.step();
    }
    ASSERT_LT(ops::max_abs_diff(toy.w.value(), ref.w.value()), 1e-4f);
    ASSERT_LT(ops::max_abs_diff(toy.b.value(), ref.b.value()), 1e-4f);
    // Replicas must remain bit-consistent with each other.
    std::vector<Variable> params{toy.w, toy.b};
    ASSERT_TRUE(parallel::parameters_in_sync(params, comm, 1e-6f));
  });
}

TEST(FsdpAdam, OptimizerStateIsSharded) {
  const int P = 4;
  World world(P);
  world.run([&](comm::Communicator& comm) {
    std::vector<Variable> params;
    for (int i = 0; i < 8; ++i) {
      params.push_back(Variable::param(Tensor(Shape{2}, 1.0f),
                                       "p" + std::to_string(i)));
    }
    FsdpAdam opt(params, comm, {});
    // 8 params over 4 ranks round-robin -> each rank owns exactly 2.
    ASSERT_EQ(opt.owned_params(), 2u);
    for (std::size_t i = 0; i < params.size(); ++i) {
      ASSERT_EQ(opt.owner_of(i), static_cast<int>(i % 4));
    }
  });
}

TEST(FsdpAdam, SingleRankDegeneratesToAdam) {
  Rng rng(3);
  Tensor init = rng.normal_tensor(Shape{4});

  Variable p_ref = Variable::param(init.clone(), "p");
  Adam ref({p_ref}, {});
  for (int s = 0; s < 3; ++s) {
    ref.zero_grad();
    autograd::sum_all(autograd::mul(p_ref, p_ref)).backward();
    ref.step();
  }

  World world(1);
  world.run([&](comm::Communicator& comm) {
    Variable p = Variable::param(init.clone(), "p");
    FsdpAdam opt({p}, comm, {});
    for (int s = 0; s < 3; ++s) {
      opt.zero_grad();
      autograd::sum_all(autograd::mul(p, p)).backward();
      opt.step();
    }
    ASSERT_LT(ops::max_abs_diff(p.value(), p_ref.value()), 1e-7f);
  });
}

TEST(DataParallel, GradAveragingMatchesBigBatch) {
  // DP over P ranks with per-rank batch b == single rank with batch P*b
  // (for a mean-reduced loss).
  const int P = 2;
  Rng rng(5);
  Tensor x_all = rng.normal_tensor(Shape{4, 4});
  Tensor t_all = rng.normal_tensor(Shape{4, 4});

  Toy ref;
  ref.loss(x_all, t_all).backward();
  Tensor ref_grad = ref.w.grad().clone();

  World world(P);
  world.run([&](comm::Communicator& comm) {
    Toy toy;
    Tensor x = tensor::ops::slice(x_all, 0, comm.rank() * 2, 2);
    Tensor t = tensor::ops::slice(t_all, 0, comm.rank() * 2, 2);
    toy.loss(x, t).backward();
    std::vector<Variable> params{toy.w, toy.b};
    parallel::all_reduce_gradients(params, comm);
    ASSERT_LT(ops::max_abs_diff(toy.w.grad(), ref_grad), 1e-5f);
  });
}

TEST(DataParallel, MissingGradThrows) {
  World world(2);
  EXPECT_THROW(world.run([](comm::Communicator& comm) {
    Variable p = Variable::param(Tensor(Shape{2}, 1.0f), "p");
    std::vector<Variable> params{p};
    parallel::all_reduce_gradients(params, comm);
  }),
               Error);
}

}  // namespace
}  // namespace dchag::train
