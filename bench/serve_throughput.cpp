// Serving throughput/latency bench: requests/s and tail latency of the
// batched serving subsystem at max_batch 1 / 8 / 32, over a tiny
// hierarchical-aggregation forecast model — served PLANNED (frozen model,
// pre-packed GEMM panels, fused epilogues, arena buffers) and UNPLANNED
// (the plain tape-free forward), from identically-seeded models.
//
// Emits BENCH_serving.json: the human-readable "points" snapshot for both
// engines, plus a Google-Benchmark-style "benchmarks" array that
// scripts/bench_compare.py gates on in CI:
//   BM_ServeForward/unplanned, BM_ServeForward/planned — direct forward
//     latency (ms, batch 8), gated planned >= 1.2x faster;
//   BM_ServeSteadyAllocs — heap buffer allocations per steady-state
//     planned request (a count in real_time), gated <= 0.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "serve/server.hpp"
#include "tensor/plan.hpp"

using namespace dchag;

namespace {

constexpr tensor::Index kChannels = 6;
constexpr int kRequests = 192;

std::unique_ptr<model::ForecastModel> make_model() {
  model::ModelConfig cfg = model::ModelConfig::tiny();
  tensor::Rng rng(17);
  auto agg = model::AggregationTree::with_units(
      cfg, model::AggLayerKind::kCrossAttention, kChannels, 2, rng);
  auto fe = std::make_unique<model::LocalFrontEnd>(cfg, kChannels,
                                                   std::move(agg), rng);
  return std::make_unique<model::ForecastModel>(cfg, std::move(fe),
                                                kChannels, rng);
}

struct Row {
  tensor::Index max_batch;
  serve::Metrics::Snapshot m;
};

Row run_point(serve::Engine& engine, tensor::Index max_batch) {
  serve::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.max_wait = std::chrono::microseconds(2000);
  serve::Server server(engine.inference_fn(), cfg);

  const std::vector<std::vector<tensor::Index>> subsets{{}, {0, 2, 5}};
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(kRequests);
  server.start();
  for (int i = 0; i < kRequests; ++i) {
    const auto& subset = subsets[static_cast<std::size_t>(i) % 2];
    const tensor::Index c =
        subset.empty() ? kChannels
                       : static_cast<tensor::Index>(subset.size());
    tensor::Rng rng(500 + static_cast<std::uint64_t>(i));
    serve::Request r;
    r.images = rng.normal_tensor({c, 16, 16});
    r.channels = subset;
    futures.push_back(server.submit(std::move(r)));
  }
  for (auto& f : futures) (void)f.get();
  server.drain();
  return {max_batch, server.metrics().summary()};
}

/// Direct forward latency (no batching noise): mean ms per engine.run on
/// a fixed batch-8 full-channel request, after warm-up.
double direct_forward_ms(serve::Engine& engine, const tensor::Tensor& images,
                         int iters) {
  tensor::Tensor out;
  for (int i = 0; i < 3; ++i) out = engine.run(images, {}, 1.0f);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) out = engine.run(images, {}, 1.0f);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

void emit_points(std::ofstream& json, const char* key,
                 const std::vector<Row>& rows) {
  json << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"max_batch\": " << r.max_batch
         << ", \"requests_per_s\": " << r.m.requests_per_s
         << ", \"p50_ms\": " << r.m.p50_ms
         << ", \"p99_ms\": " << r.m.p99_ms
         << ", \"mean_batch_size\": " << r.m.mean_batch_size
         << ", \"mean_forward_ms\": " << r.m.mean_forward_ms
         << ", \"forward_allocations\": " << r.m.forward_allocations << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
}

}  // namespace

int main() {
  bench::header("serve_throughput",
                "batched serving: planned vs unplanned forward");
  auto planned_model = make_model();
  auto unplanned_model = make_model();  // same seed: identical weights
  serve::Engine planned(*planned_model);
  serve::EngineOptions off;
  off.plan = false;
  serve::Engine unplanned(*unplanned_model, std::nullopt, off);

  // Parity oracle: the planned forward must be bit-identical to the
  // unplanned one before any throughput number means anything.
  tensor::Tensor probe = tensor::Rng(99).normal_tensor(
      {2, kChannels, 16, 16});
  const float parity_diff = tensor::ops::max_abs_diff(
      planned.run(probe, {}, 1.0f), unplanned.run(probe, {}, 1.0f));

  tensor::Tensor batch8 =
      tensor::Rng(7).normal_tensor({8, kChannels, 16, 16});
  const double unplanned_ms = direct_forward_ms(unplanned, batch8, 30);
  const double planned_ms = direct_forward_ms(planned, batch8, 30);

  // Steady-state allocations per planned request (warmed by the latency
  // loop above; this thread runs the forward, so the TLS counter is
  // exact). Unplanned for contrast.
  tensor::Tensor sink;
  for (int i = 0; i < 2; ++i) sink = planned.run(batch8, {}, 1.0f);
  const std::uint64_t a0 = tensor::plan::thread_buffer_allocations();
  sink = planned.run(batch8, {}, 1.0f);
  const std::uint64_t steady_allocs =
      tensor::plan::thread_buffer_allocations() - a0;
  const std::uint64_t u0 = tensor::plan::thread_buffer_allocations();
  sink = unplanned.run(batch8, {}, 1.0f);
  const std::uint64_t unplanned_allocs =
      tensor::plan::thread_buffer_allocations() - u0;

  bench::section("direct forward (batch 8, full channels)");
  std::printf("%12s %12s %10s\n", "engine", "ms/fwd", "allocs");
  std::printf("%12s %12.3f %10llu\n", "unplanned", unplanned_ms,
              static_cast<unsigned long long>(unplanned_allocs));
  std::printf("%12s %12.3f %10llu\n", "planned", planned_ms,
              static_cast<unsigned long long>(steady_allocs));
  std::printf("%12s %12.2fx\n", "speedup", unplanned_ms / planned_ms);

  std::vector<Row> planned_rows;
  std::vector<Row> unplanned_rows;
  bench::section("throughput (tiny model, 2 workers, 192 live requests)");
  std::printf("%10s %10s %12s %10s %10s %10s %12s\n", "engine", "max_batch",
              "req/s", "p50 ms", "p99 ms", "mean batch", "forward ms");
  for (tensor::Index mb : {1, 8, 32}) {
    unplanned_rows.push_back(run_point(unplanned, mb));
    planned_rows.push_back(run_point(planned, mb));
    for (const auto* rows : {&unplanned_rows, &planned_rows}) {
      const auto& r = rows->back();
      std::printf("%10s %10lld %12.1f %10.2f %10.2f %10.2f %12.3f\n",
                  rows == &planned_rows ? "planned" : "unplanned",
                  static_cast<long long>(r.max_batch), r.m.requests_per_s,
                  r.m.p50_ms, r.m.p99_ms, r.m.mean_batch_size,
                  r.m.mean_forward_ms);
    }
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"bench\": \"serve_throughput\",\n"
       << "  \"model\": \"tiny, 6 channels, Tree2 cross-attention\",\n"
       << "  \"requests\": " << kRequests << ",\n  \"workers\": 2,\n";
  emit_points(json, "points", planned_rows);
  emit_points(json, "unplanned_points", unplanned_rows);
  json << "  \"benchmarks\": [\n"
       << "    {\"name\": \"BM_ServeForward/unplanned\", \"run_type\": "
          "\"iteration\", \"real_time\": "
       << unplanned_ms << ", \"time_unit\": \"ms\"},\n"
       << "    {\"name\": \"BM_ServeForward/planned\", \"run_type\": "
          "\"iteration\", \"real_time\": "
       << planned_ms << ", \"time_unit\": \"ms\"},\n"
       << "    {\"name\": \"BM_ServeSteadyAllocs\", \"run_type\": "
          "\"iteration\", \"real_time\": "
       << steady_allocs << ", \"time_unit\": \"count\"}\n"
       << "  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_serving.json\n");

  bench::ShapeChecks checks;
  checks.expect(parity_diff == 0.0f,
                "planned forward bit-identical to unplanned");
  checks.expect(steady_allocs == 0,
                "steady-state planned forward allocates zero buffers");
  checks.expect(unplanned_allocs > 0,
                "unplanned baseline still allocates per request");
  for (const auto* rows : {&planned_rows, &unplanned_rows}) {
    checks.expect((*rows)[0].m.mean_batch_size == 1.0,
                  "max_batch=1 serves strictly unbatched");
    checks.expect((*rows)[1].m.mean_batch_size > 1.0,
                  "max_batch=8 actually coalesces under live load");
    for (const Row& r : *rows)
      checks.expect(r.m.requests == kRequests && r.m.failed == 0,
                    "all requests served at max_batch=" +
                        std::to_string(r.max_batch));
  }
  checks.expect(
      planned_rows[1].m.requests_per_s > unplanned_rows[0].m.requests_per_s,
      "planned batched serving beats unplanned unbatched");
  return checks.report();
}
