// Non-blocking collectives over the in-process SPMD runtime.
//
// ICollective is the issue-side interface: iall_gather / iall_reduce /
// ireduce_scatter / ibroadcast each return a waitable CommFuture
// immediately. Two implementations share it:
//
//   SyncCollective    — the parity oracle. Runs the blocking collective
//                       inline on the caller's communicator and returns an
//                       already-completed future. Identical data path,
//                       zero overlap: any code written against ICollective
//                       can flip to it for bit-exact baseline runs.
//   AsyncCommunicator — real overlap. A per-rank progress thread drains a
//                       FIFO of issued ops against a SHADOW communicator
//                       (split() twin of the parent group), so in-flight
//                       traffic rendezvouses progress-thread-to-progress-
//                       thread while the rank thread keeps computing.
//
// Usage contract (inherited from the blocking layer, per-implementation
// ordering added): every rank must issue the same async ops in the same
// order, and a buffer handed to an i-op stays owned by the runtime until
// that op's future completes. wait() rethrows an op's failure on the
// waiting thread.
//
// Sync vs async (plus the forward pipeline depth) is the comm slice of
// the unified runtime::Context: CommMode/CommConfig are aliases of the
// runtime types, process defaults come from Context::from_env()
// (DCHAG_COMM / DCHAG_COMM_CHUNKS) so CI can run the whole suite under
// either mode without code changes, and runtime::Scope overrides per
// thread. The pre-Context CommScope/comm_config_from_env surface
// survives only as deprecated shims behind DCHAG_DEPRECATED_CONFIG.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <thread>

#include "comm/communicator.hpp"
#include "runtime/context.hpp"

namespace dchag::comm {

namespace detail {
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};
}  // namespace detail

/// Waitable handle to one issued collective. Copyable (shared state);
/// default-constructed futures are vacuously ready.
class CommFuture {
 public:
  CommFuture() = default;
  explicit CommFuture(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool ready() const {
    if (!state_) return true;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  /// Blocks until the op completes; rethrows the op's exception if it
  /// failed. Idempotent (and re-throwing on every call for failed ops).
  void wait() const {
    if (!state_) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error) std::rethrow_exception(state_->error);
  }

 private:
  std::shared_ptr<detail::FutureState> state_;
};

/// Issue-side interface for non-blocking collectives. Buffer spans must
/// stay alive and untouched until the returned future completes.
/// Non-virtual entry points keep the default arguments in one place;
/// implementations override the protected do_* hooks.
class ICollective {
 public:
  virtual ~ICollective() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  [[nodiscard]] CommFuture iall_reduce(std::span<float> data,
                                       ReduceOp op = ReduceOp::kSum,
                                       Algorithm alg = Algorithm::kAuto) {
    return do_iall_reduce(data, op, alg);
  }
  [[nodiscard]] CommFuture iall_gather(std::span<const float> send,
                                       std::span<float> recv,
                                       Algorithm alg = Algorithm::kAuto) {
    return do_iall_gather(send, recv, alg);
  }
  [[nodiscard]] CommFuture ireduce_scatter(std::span<const float> send,
                                           std::span<float> recv,
                                           ReduceOp op = ReduceOp::kSum,
                                           Algorithm alg = Algorithm::kAuto) {
    return do_ireduce_scatter(send, recv, op, alg);
  }
  [[nodiscard]] CommFuture ibroadcast(std::span<float> data, int root) {
    return do_ibroadcast(data, root);
  }

 protected:
  [[nodiscard]] virtual CommFuture do_iall_reduce(std::span<float> data,
                                                  ReduceOp op,
                                                  Algorithm alg) = 0;
  [[nodiscard]] virtual CommFuture do_iall_gather(std::span<const float> send,
                                                  std::span<float> recv,
                                                  Algorithm alg) = 0;
  [[nodiscard]] virtual CommFuture do_ireduce_scatter(
      std::span<const float> send, std::span<float> recv, ReduceOp op,
      Algorithm alg) = 0;
  [[nodiscard]] virtual CommFuture do_ibroadcast(std::span<float> data,
                                                 int root) = 0;
};

/// Blocking-execution oracle: each i-op completes before it returns, on
/// the caller's own communicator (stats land there too). Constructing one
/// is rank-local and free.
class SyncCollective final : public ICollective {
 public:
  explicit SyncCollective(Communicator& comm) : comm_(&comm) {}

  [[nodiscard]] int rank() const override { return comm_->rank(); }
  [[nodiscard]] int size() const override { return comm_->size(); }

 protected:
  [[nodiscard]] CommFuture do_iall_reduce(std::span<float> data, ReduceOp op,
                                          Algorithm alg) override;
  [[nodiscard]] CommFuture do_iall_gather(std::span<const float> send,
                                          std::span<float> recv,
                                          Algorithm alg) override;
  [[nodiscard]] CommFuture do_ireduce_scatter(std::span<const float> send,
                                              std::span<float> recv,
                                              ReduceOp op,
                                              Algorithm alg) override;
  [[nodiscard]] CommFuture do_ibroadcast(std::span<float> data,
                                         int root) override;

 private:
  CommFuture run_inline(const std::function<void(Communicator&)>& fn);

  Communicator* comm_;
};

/// Progress-thread implementation. CONSTRUCTION IS COLLECTIVE: it calls
/// parent.split() to carve the shadow group, so every rank of the parent
/// must construct its AsyncCommunicator together (same for destruction —
/// destroy only once all of this rank's issued ops are waited, which
/// symmetric SPMD code gets for free).
class AsyncCommunicator final : public ICollective {
 public:
  explicit AsyncCommunicator(Communicator& parent);
  ~AsyncCommunicator() override;
  AsyncCommunicator(const AsyncCommunicator&) = delete;
  AsyncCommunicator& operator=(const AsyncCommunicator&) = delete;

  [[nodiscard]] int rank() const override { return shadow_.rank(); }
  [[nodiscard]] int size() const override { return shadow_.size(); }

  /// Blocks until every issued op has completed (does not rethrow their
  /// errors — wait each future for that).
  void drain();

  /// Ops issued but not yet completed.
  [[nodiscard]] std::size_t in_flight() const;

  /// Traffic ledger of issued async ops, recorded at issue time on the
  /// issuing thread (so reads from that thread are race-free).
  [[nodiscard]] const CommStats& stats() const { return stats_; }

 protected:
  [[nodiscard]] CommFuture do_iall_reduce(std::span<float> data, ReduceOp op,
                                          Algorithm alg) override;
  [[nodiscard]] CommFuture do_iall_gather(std::span<const float> send,
                                          std::span<float> recv,
                                          Algorithm alg) override;
  [[nodiscard]] CommFuture do_ireduce_scatter(std::span<const float> send,
                                              std::span<float> recv,
                                              ReduceOp op,
                                              Algorithm alg) override;
  [[nodiscard]] CommFuture do_ibroadcast(std::span<float> data,
                                         int root) override;

 private:
  struct PendingOp {
    std::function<void(Communicator&)> fn;
    std::shared_ptr<detail::FutureState> state;
    /// The issuing thread's effective context: the progress thread runs
    /// the op under it (runtime::Scope), so overrides — tracing sink
    /// included — cross the issue/progress boundary.
    runtime::Context ctx;
    std::uint64_t bytes = 0;
  };

  CommFuture enqueue(CollectiveKind kind, std::uint64_t bytes,
                     std::function<void(Communicator&)> fn);
  void progress_loop();

  Communicator shadow_;
  CommStats stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_ops_;    ///< progress thread waits for work
  std::condition_variable cv_idle_;   ///< drain() waits for quiescence
  std::deque<PendingOp> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::thread progress_;  ///< last member: starts after state is ready
};

/// Sync-vs-async switch consumed by the D-CHAG front-end, serving, and
/// training — the comm slice of the unified runtime::Context.
/// pipeline_chunks is the forward's software-pipeline depth (micro-chunks
/// of the batch, double-buffered); <= 1 keeps the original monolithic
/// one-gather forward.
using CommMode = runtime::CommMode;
using CommConfig = runtime::CommConfig;

using runtime::parse_comm_mode;
using runtime::to_string;

#ifdef DCHAG_DEPRECATED_CONFIG

/// Pre-Context process default from the environment.
DCHAG_DEPRECATED_CONFIG_API(
    "use runtime::Context::from_env().comm() — the one env entry point")
[[nodiscard]] CommConfig comm_config_from_env();

/// Pre-Context thread-local override. Thin shim over runtime::Scope with
/// a comm-only patch: nesting, worker propagation, and precedence are
/// the runtime stack's. All ranks of a group must scope symmetrically.
class DCHAG_DEPRECATED_CONFIG_API(
    "use runtime::Scope with ContextPatch::with_comm") CommScope {
 public:
  explicit CommScope(CommConfig cfg)
      : scope_(runtime::ContextPatch::with_comm(cfg)) {}
  CommScope(const CommScope&) = delete;
  CommScope& operator=(const CommScope&) = delete;

 private:
  runtime::Scope scope_;
};

/// Innermost active comm override on this thread, if any. Pre-Context
/// query; new code reads runtime::active_comm_config() (or resolves a
/// full Context with Context::effective()).
DCHAG_DEPRECATED_CONFIG_API("use runtime::active_comm_config()")
[[nodiscard]] std::optional<CommConfig> comm_scope_override();

#endif  // DCHAG_DEPRECATED_CONFIG

}  // namespace dchag::comm
