// Attention modules: multi-head self-attention (ViT blocks) and the two
// channel-aggregation unit types the paper studies — cross-attention (-C)
// and lightweight linear (-L).
#pragma once

#include <memory>
#include <span>

#include "model/config.hpp"
#include "tensor/module.hpp"

namespace dchag::model {

using autograd::LayerNorm;
using autograd::Linear;
using autograd::Module;
using autograd::Variable;
using tensor::Rng;

namespace detail {
/// [*, N, D] -> [*, h, N, dh]: split heads ahead of the token dimension.
[[nodiscard]] Variable split_heads(const Variable& x, Index heads);
/// Inverse of split_heads: [*, h, N, dh] -> [*, N, h*dh].
[[nodiscard]] Variable merge_heads(const Variable& x);
/// softmax(q k^T / sqrt(dh)) v on head-split operands
/// q: [*, h, Nq, dh], k/v: [*, h, Nk, dh]. With `fused` (a frozen owner)
/// and gradients off, the scale+softmax rows ride the score GEMM's row
/// strips (ops::matmul_scale_softmax) — bit-identical, tape-free.
[[nodiscard]] Variable scaled_attention(const Variable& q, const Variable& k,
                                        const Variable& v,
                                        bool fused = false);
/// Validates a partial-channel slot list: strictly increasing indices in
/// [0, width), one per token (ntokens == slots.size()).
void check_subset_slots(std::span<const Index> slots, Index width,
                        Index ntokens);
}  // namespace detail

/// Standard multi-head self-attention over the last-but-one dimension:
/// input [*, S, D] -> output [*, S, D].
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(Index dim, Index heads, Rng& rng,
                         const std::string& name = "attn");

  [[nodiscard]] Variable forward(const Variable& x) const;
  /// residual + forward(x), with the residual add fused into the output
  /// projection's GEMM tail when frozen for serving (bit-identical).
  [[nodiscard]] Variable forward_residual(const Variable& x,
                                          const Variable& residual) const;

 private:
  Index dim_;
  Index heads_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
};

/// Interface for anything that reduces channel tokens [B, S, C, D] to a
/// single representation [B, S, D]. Implementations: cross-attention unit,
/// linear unit, the hierarchical tree (aggregation.hpp), and D-CHAG's
/// distributed aggregator (core/).
class ChannelAggregator : public Module {
 public:
  [[nodiscard]] virtual Variable forward(const Variable& tokens) const = 0;
  /// Number of channel tokens this aggregator consumes.
  [[nodiscard]] virtual Index width() const = 0;
  /// Partial-channel inference (paper §2.1): `tokens` is [B, S, W, D] with
  /// W == slots.size(), and `slots` are the strictly increasing positions
  /// (in [0, width())) those tokens occupy in the full-width layout. The
  /// base implementation only accepts the full set; width-agnostic or
  /// slot-sliceable aggregators override.
  [[nodiscard]] virtual Variable forward_subset(
      const Variable& tokens, std::span<const Index> slots) const;
};

/// Cross-attention channel aggregation (paper §2.1). With
/// QueryMode::kChannelTokens the C channel tokens attend over themselves
/// (C x C score matrix — quadratic in C, matching the paper's memory
/// analysis) and the result is mean-pooled; with kLearnedQuery a single
/// learned query attends over the C tokens (linear in C).
///
/// Cross-attention is width-agnostic: forward() accepts ANY channel count
/// 1..width(). This is the property the paper highlights in §2.1 — the
/// model can "generalize or fine-tune on subsets of the original channel
/// dimensions while still leveraging the full model capacity".
class CrossAttentionAggregator : public ChannelAggregator {
 public:
  CrossAttentionAggregator(Index dim, Index heads, Index channels,
                           QueryMode mode, Rng& rng,
                           const std::string& name = "xattn");

  /// tokens: [B, S, W, D] with 1 <= W <= width() -> [B, S, D].
  [[nodiscard]] Variable forward(const Variable& tokens) const override;
  /// Cross-attention has no per-slot weights, so any subset reduces to a
  /// plain forward over the present tokens.
  [[nodiscard]] Variable forward_subset(
      const Variable& tokens, std::span<const Index> slots) const override;
  [[nodiscard]] Index width() const override { return channels_; }
  [[nodiscard]] QueryMode mode() const { return mode_; }

 private:
  Index dim_;
  Index heads_;
  Index channels_;
  QueryMode mode_;
  std::unique_ptr<LayerNorm> ln_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
  Variable query_;  // defined only for kLearnedQuery
};

/// Lightweight linear aggregation unit (paper §3.2/-L variants): a learned
/// convex-ish combination over the channel dimension followed by an output
/// projection. Parameter cost is width + D^2 + D (vs 4 D^2 for
/// cross-attention), which is why -L wins at scale (paper Fig. 9/13).
class LinearAggregator : public ChannelAggregator {
 public:
  LinearAggregator(Index dim, Index channels, Rng& rng,
                   const std::string& name = "linagg");

  /// tokens: [B, S, C, D] -> [B, S, D].
  [[nodiscard]] Variable forward(const Variable& tokens) const override;
  /// Subsets mix with the combine weights of the present slots only.
  [[nodiscard]] Variable forward_subset(
      const Variable& tokens, std::span<const Index> slots) const override;
  [[nodiscard]] Index width() const override { return channels_; }

 private:
  Index dim_;
  Index channels_;
  std::unique_ptr<LayerNorm> ln_;
  Variable combine_;  // [C] channel mixing weights
  std::unique_ptr<Linear> proj_;
};

/// Factory used by the aggregation tree and D-CHAG partial modules.
[[nodiscard]] std::unique_ptr<ChannelAggregator> make_aggregator(
    AggLayerKind kind, Index dim, Index heads, Index channels,
    QueryMode mode, Rng& rng, const std::string& name);

}  // namespace dchag::model
