// Weather forecasting with D-CHAG — the paper's §5.2 application: an
// image-to-image (ClimaX-style) model predicting the next state of an
// ERA5-like multi-level atmosphere, trained under D-CHAG on 4 simulated
// ranks and evaluated with per-variable RMSE (Z500 / T850 / U10).
//
// Run:  ./build/examples/weather_forecast
#include <cstdio>

#include "core/dchag_frontend.hpp"
#include "data/weather.hpp"
#include "train/loops.hpp"

using namespace dchag;
using tensor::Index;

int main() {
  data::WeatherConfig wc;
  wc.num_variables = 3;
  wc.levels_per_variable = 4;
  wc.surface_variables = 4;  // 16 channels
  wc.height = 16;
  wc.width = 32;
  data::WeatherGenerator gen(wc, 99);

  model::ModelConfig cfg;
  cfg.embed_dim = 32;
  cfg.num_layers = 2;
  cfg.num_heads = 4;
  cfg.patch_size = 4;
  cfg.image_h = wc.height;
  cfg.image_w = wc.width;
  cfg.validate();

  constexpr Index kSteps = 30;
  std::vector<data::WeatherGenerator::Pair> train_pairs;
  std::vector<data::WeatherGenerator::Pair> test_pairs;
  for (Index i = 0; i < kSteps; ++i)
    train_pairs.push_back(gen.sample_pair(2, /*lead=*/1.0f));
  for (Index i = 0; i < 4; ++i) test_pairs.push_back(gen.sample_pair(2, 1.0f));

  std::printf("forecasting %lld channels (%lld vars x %lld levels + %lld "
              "surface) on a %lldx%lld grid\n\n",
              static_cast<long long>(wc.channels()),
              static_cast<long long>(wc.num_variables),
              static_cast<long long>(wc.levels_per_variable),
              static_cast<long long>(wc.surface_variables),
              static_cast<long long>(wc.height),
              static_cast<long long>(wc.width));

  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    tensor::Rng rng(777);
    auto fm = core::make_dchag_forecast(
        cfg, wc.channels(), comm,
        {/*tree_units=*/1, model::AggLayerKind::kCrossAttention}, rng);

    train::LoopConfig lc;
    lc.steps = kSteps;
    lc.adam.lr = 2e-3f;
    const train::TrainCurve curve = train::train_forecast(
        *fm, lc, [&](Index step) {
          const auto& p = train_pairs[static_cast<std::size_t>(step)];
          return std::make_pair(p.now, p.future);
        });

    const auto rmse = train::evaluate_forecast_rmse(
        *fm, cfg.patch_size,
        [&](Index i) {
          const auto& p = test_pairs[static_cast<std::size_t>(i)];
          return std::make_pair(p.now, p.future);
        },
        4);

    if (comm.rank() == 0) {
      std::printf("training loss: first %.4f -> last %.4f\n",
                  curve.losses.front(), curve.tail_mean(5));
      std::printf("\ntest RMSE per evaluation variable:\n");
      for (auto [name, ch] :
           {std::pair<const char*, Index>{"Z500", gen.z500_channel()},
            {"T850", gen.t850_channel()},
            {"U10", gen.u10_channel()}}) {
        std::printf("  %-5s (channel %2lld, %s): %.4f\n", name,
                    static_cast<long long>(ch),
                    gen.channel_name(ch).c_str(),
                    rmse[static_cast<std::size_t>(ch)]);
      }
    }
  });
  return 0;
}
