// The paper's deployment-flexibility claims (§2.1 and Fig. 1): inference
// on channel subsets through the width-agnostic cross-attention, and
// lead-time metadata conditioning of the forecast model.
#include <gtest/gtest.h>

#include "model/foundation.hpp"

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(ChannelSubsets, AggregatorAcceptsAnyWidthUpToNominal) {
  // §2.1: the model can "generalize or fine-tune on subsets of the
  // original channel dimensions".
  Rng rng(1);
  CrossAttentionAggregator agg(32, 4, /*channels=*/8,
                               QueryMode::kChannelTokens, rng);
  for (tensor::Index w : {1, 3, 8}) {
    Tensor tokens = rng.normal_tensor(Shape{2, 4, w, 32});
    Variable out = agg.forward(Variable::input(tokens));
    EXPECT_EQ(out.shape(), (Shape{2, 4, 32})) << "width " << w;
    for (float v : out.value().span()) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_THROW(agg.forward(Variable::input(Tensor(Shape{2, 4, 9, 32}))),
               Error);
}

TEST(ChannelSubsets, SubsetInferenceMatchesSubsetTokens) {
  // Aggregating a 4-channel subset equals running the aggregator on just
  // those four token rows — cross-attention has no per-slot weights.
  Rng rng(2);
  CrossAttentionAggregator agg(16, 2, 8, QueryMode::kChannelTokens, rng);
  Tensor full = rng.normal_tensor(Shape{1, 3, 8, 16});
  Tensor subset = ops::slice(full, 2, 2, 4);
  Tensor direct = agg.forward(Variable::input(subset)).value();
  // The same four channels re-materialised in a fresh tensor.
  Tensor copy = subset.clone();
  Tensor again = agg.forward(Variable::input(copy)).value();
  EXPECT_LT(ops::max_abs_diff(direct, again), 1e-7f);
  // And the subset output differs from the full-set output (fewer inputs).
  Tensor full_out = agg.forward(Variable::input(full)).value();
  EXPECT_GT(ops::max_abs_diff(direct, full_out), 1e-4f);
}

TEST(ChannelSubsets, SubsetTokenizerPlusAggregatorEndToEnd) {
  // Deployment recipe: tokenizer built over the subset's global channel
  // ids + the full model's (width-agnostic) aggregator.
  ModelConfig cfg = ModelConfig::tiny();
  Rng master(3);
  Rng full_rng = master.fork(1);
  PatchTokenizer full_tok(cfg, 8, full_rng);
  Rng sub_rng = master.fork(1);
  PatchTokenizer sub_tok(cfg, std::vector<tensor::Index>{1, 4, 6}, sub_rng);
  Rng agg_rng = master.fork(2);
  CrossAttentionAggregator agg(cfg.embed_dim, cfg.num_heads, 8,
                               cfg.query_mode, agg_rng);

  Tensor img = Rng(4).normal_tensor(Shape{1, 8, 16, 16});
  Tensor sub_img = ops::concat(
      std::vector<Tensor>{ops::slice(img, 1, 1, 1), ops::slice(img, 1, 4, 1),
                          ops::slice(img, 1, 6, 1)},
      1);
  Variable tokens = sub_tok.forward(sub_img);
  Variable out =
      agg.forward(autograd::permute(tokens, {0, 2, 1, 3}));
  EXPECT_EQ(out.shape(), (Shape{1, cfg.seq_len(), cfg.embed_dim}));
}

TEST(LeadConditioning, DifferentLeadsGiveDifferentForecasts) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(5);
  auto fe = make_baseline_frontend(cfg, 3, rng);
  ForecastModel fm(cfg, std::move(fe), 3, rng, /*lead_conditioned=*/true);
  Tensor now = rng.normal_tensor(Shape{1, 3, 16, 16});
  Tensor future = rng.normal_tensor(Shape{1, 3, 16, 16});
  Tensor p1 = fm.forward(now, future, 1.0f).pred.value();
  Tensor p2 = fm.forward(now, future, 5.0f).pred.value();
  EXPECT_GT(ops::max_abs_diff(p1, p2), 1e-5f);
  EXPECT_TRUE(fm.lead_conditioned());
}

TEST(LeadConditioning, UnconditionedModelIgnoresLead) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(6);
  auto fe = make_baseline_frontend(cfg, 3, rng);
  ForecastModel fm(cfg, std::move(fe), 3, rng);  // default: off
  Tensor now = rng.normal_tensor(Shape{1, 3, 16, 16});
  Tensor future = rng.normal_tensor(Shape{1, 3, 16, 16});
  Tensor p1 = fm.forward(now, future, 1.0f).pred.value();
  Tensor p2 = fm.forward(now, future, 9.0f).pred.value();
  EXPECT_LT(ops::max_abs_diff(p1, p2), 1e-9f);
}

TEST(LeadConditioning, EmbeddingReceivesGradient) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(7);
  auto fe = make_baseline_frontend(cfg, 2, rng);
  ForecastModel fm(cfg, std::move(fe), 2, rng, true);
  Tensor now = rng.normal_tensor(Shape{1, 2, 16, 16});
  Tensor future = rng.normal_tensor(Shape{1, 2, 16, 16});
  fm.forward(now, future, 2.5f).loss.backward();
  bool lead_grad = false;
  for (const auto& p : fm.parameters()) {
    if (p.name() == "forecast.lead_embed.weight") {
      lead_grad = p.has_grad();
    }
  }
  EXPECT_TRUE(lead_grad);
}

TEST(LeadConditioning, ParameterOverheadIsExact) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(8);
  auto fe1 = make_baseline_frontend(cfg, 2, rng);
  Rng rng2(8);
  auto fe2 = make_baseline_frontend(cfg, 2, rng2);
  ForecastModel off(cfg, std::move(fe1), 2, rng, false);
  ForecastModel on(cfg, std::move(fe2), 2, rng2, true);
  EXPECT_EQ(on.num_parameters() - off.num_parameters(),
            16 * cfg.embed_dim + cfg.embed_dim);  // weight + bias
}

}  // namespace
}  // namespace dchag::model
