// Network ingress demo (and ctest acceptance check for the ingress tier):
//
//   1. "Train" a hierarchical-aggregation forecast model and save a
//      checkpoint.
//   2. Start the ingress: a TCP listener dispatching onto a pool of
//      worker PROCESSES over shared-memory rings, each cold-starting a
//      serve::Engine from the checkpoint (the runtime::Context crosses
//      the process boundary as DCHAG_* environment).
//   3. Fire 48 requests from 4 socket clients, mixing full-channel and
//      channel-subset requests.
//   4. Verify every response is bit-for-bit identical to the direct
//      no-grad forward on the source model, pull the /metrics and
//      /healthz queries over the same socket protocol, and drain.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/ingress_demo
#include <cstdio>
#include <thread>

#include "ingress/client.hpp"
#include "ingress/dispatcher.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"

using namespace dchag;

namespace {

constexpr tensor::Index kChannels = 6;

}  // namespace

int main() {
  // ----- 1. checkpoint from the "training" side -------------------------------
  ingress::ModelSpec spec;
  spec.preset = "tiny";
  spec.channels = kChannels;
  spec.units = 2;
  auto trained = ingress::build_model(spec, /*seed=*/7);
  const std::string ckpt = "ingress_demo_checkpoint.bin";
  train::save_module(ckpt, *trained);
  std::printf("saved checkpoint: %lld parameters -> %s\n",
              static_cast<long long>(trained->num_parameters()),
              ckpt.c_str());

  // ----- 2. start the multi-process serving tier ------------------------------
  ingress::IngressConfig cfg;
  cfg.checkpoint = ckpt;
  cfg.model = spec;
  cfg.min_workers = 2;
  cfg.max_workers = 4;
  cfg.ring.slots = 4;
  ingress::Ingress server(cfg, runtime::Context::from_env());
  std::printf("ingress listening on 127.0.0.1:%u with %zu worker "
              "processes\n",
              static_cast<unsigned>(server.port()), server.worker_count());

  // ----- 3. 48 requests from 4 socket clients ---------------------------------
  const std::vector<std::vector<tensor::Index>> subsets{
      {},                  // all channels
      {0, 1, 2, 3, 4, 5},  // explicit full set
      {0, 2, 5},           // spans both first-level tree groups
      {1},                 // single channel
  };
  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  serve::Engine reference(*trained);
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int cl = 0; cl < kClients; ++cl) {
      clients.emplace_back([&, cl] {
        ingress::Client client(server.port());
        for (int i = 0; i < kPerClient; ++i) {
          const int id = cl * kPerClient + i;
          const auto& subset = subsets[static_cast<std::size_t>(id) % 4];
          const tensor::Index c =
              subset.empty() ? kChannels
                             : static_cast<tensor::Index>(subset.size());
          tensor::Rng rng(1000 + static_cast<std::uint64_t>(id));
          const tensor::Tensor images = rng.normal_tensor({c, 16, 16});
          try {
            const tensor::Tensor pred = client.infer(images, subset);
            const tensor::Tensor direct = reference.run(
                images.reshape({1, c, images.dim(1), images.dim(2)}),
                subset, 1.0f);
            const tensor::Tensor row =
                direct.reshape({direct.dim(1), direct.dim(2)});
            if (tensor::ops::max_abs_diff(pred, row) != 0.0f)
              ++mismatches[static_cast<std::size_t>(cl)];
          } catch (const std::exception& e) {
            std::fprintf(stderr, "request %d failed: %s\n", id, e.what());
            ++failures[static_cast<std::size_t>(cl)];
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  int total_mismatches = 0, total_failures = 0;
  for (int cl = 0; cl < kClients; ++cl) {
    total_mismatches += mismatches[static_cast<std::size_t>(cl)];
    total_failures += failures[static_cast<std::size_t>(cl)];
  }
  std::printf("served == direct no-grad forward bit-for-bit: %s "
              "(%d mismatches, %d failures / %d requests)\n",
              total_mismatches == 0 && total_failures == 0 ? "yes" : "NO",
              total_mismatches, total_failures, kClients * kPerClient);

  // ----- 4. observability over the same socket, then drain --------------------
  ingress::Client observer(server.port());
  const bool healthy = observer.healthz();
  const std::string metrics = observer.metrics_text();
  std::printf("healthz: %s\n/metrics:\n%s", healthy ? "ok" : "NOT OK",
              metrics.c_str());
  const bool metrics_ok =
      metrics.find("dchag_serve_requests_total 48") != std::string::npos &&
      metrics.find("dchag_ingress_accepted_total 48") != std::string::npos &&
      metrics.find("dchag_ingress_workers") != std::string::npos;

  server.drain();
  const ingress::Counters::Snapshot c = server.counters();
  const bool accounted =
      c.accepted == c.completed && c.accepted == 48 &&
      c.rejected_saturated == 0 && c.worker_restarts == 0;

  std::remove(ckpt.c_str());
  const bool ok = total_mismatches == 0 && total_failures == 0 && healthy &&
                  metrics_ok && accounted;
  std::printf("\ningress_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
