#!/usr/bin/env python3
"""Diff a fresh Google-Benchmark JSON against a committed BENCH_*.json.

Two kinds of gates, both machine-readable and CI-friendly:

  * --tolerance: per-benchmark regression check of `--metric` (default
    real_time) for every name present in both files. Only meaningful when
    baseline and fresh ran on comparable hardware, so it is the LOCAL
    gate: rerun the bench on the machine that produced the baseline and
    fail on > tolerance slowdowns.

  * --speedup SLOW FAST MIN: asserts fresh[SLOW]/fresh[FAST] >= MIN using
    only the fresh file. Scale-free, so it is the CI gate — e.g. the
    blocked matmul backend must stay >= 3x faster than naive at 512^3
    whatever the runner's absolute speed.

  * --max-value NAME LIMIT: asserts fresh[NAME] <= LIMIT on the raw
    metric. For count-like benchmarks (e.g. BM_ServeSteadyAllocs reports
    allocations-per-request in real_time), a hard absolute ceiling —
    `--max-value BM_ServeSteadyAllocs 0` is the zero-allocation gate.

Exit code 0 iff every requested gate holds.

Examples:
  scripts/bench_compare.py --fresh fresh.json --baseline BENCH_kernels.json \
      --tolerance 0.5
  scripts/bench_compare.py --fresh fresh.json \
      --speedup 'BM_MatmulBackend/n:512/backend:0' \
                'BM_MatmulBackend/n:512/backend:2' 3.0
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Aggregate reports (mean/median/stddev) would double-count;
        # keep plain iteration rows only.
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--fresh", required=True, help="freshly produced bench JSON")
    ap.add_argument("--baseline", help="committed BENCH_*.json to diff against")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="max allowed relative slowdown vs baseline (0.5 = +50%%)",
    )
    ap.add_argument(
        "--metric",
        default="real_time",
        help="benchmark field to compare (real_time, cpu_time, ...)",
    )
    ap.add_argument(
        "--filter",
        default="",
        help="regex; only baseline-compare benchmarks whose name matches",
    )
    ap.add_argument(
        "--speedup",
        nargs=3,
        action="append",
        default=[],
        metavar=("SLOW", "FAST", "MIN"),
        help="require fresh[SLOW]/fresh[FAST] >= MIN (repeatable)",
    )
    ap.add_argument(
        "--max-value",
        nargs=2,
        action="append",
        default=[],
        metavar=("NAME", "LIMIT"),
        help="require fresh[NAME] <= LIMIT on the raw metric (repeatable)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless NAME exists in the fresh file (repeatable)",
    )
    args = ap.parse_args()

    fresh = load_benchmarks(args.fresh)
    failures = []
    checked = 0

    for name in args.require:
        checked += 1
        if name in fresh:
            print(f"ok    present {name}")
        else:
            failures.append(f"MISSING   {name}: not in {args.fresh}")

    for slow, fast, min_ratio in args.speedup:
        for name in (slow, fast):
            if name not in fresh:
                failures.append(f"MISSING   {name}: needed by --speedup")
        if slow not in fresh or fast not in fresh:
            continue
        checked += 1
        ratio = fresh[slow][args.metric] / fresh[fast][args.metric]
        ok = ratio >= float(min_ratio)
        print(
            f"{'ok   ' if ok else 'FAIL '} speedup {fast} vs {slow}: "
            f"{ratio:.2f}x (want >= {float(min_ratio):.2f}x)"
        )
        if not ok:
            failures.append(
                f"SPEEDUP   {fast} only {ratio:.2f}x over {slow} "
                f"(want >= {float(min_ratio):.2f}x)"
            )

    for name, limit in args.max_value:
        if name not in fresh:
            failures.append(f"MISSING   {name}: needed by --max-value")
            continue
        checked += 1
        value = fresh[name][args.metric]
        ok = value <= float(limit)
        print(
            f"{'ok   ' if ok else 'FAIL '} max-value {name}: "
            f"{value:g} (want <= {float(limit):g})"
        )
        if not ok:
            failures.append(
                f"MAX-VALUE {name}: {value:g} exceeds limit {float(limit):g}"
            )

    if args.baseline:
        base = load_benchmarks(args.baseline)
        pattern = re.compile(args.filter) if args.filter else None
        common = [
            n
            for n in base
            if n in fresh and (pattern is None or pattern.search(n))
        ]
        if not common:
            failures.append(
                f"NO-OVERLAP no benchmark names shared between "
                f"{args.baseline} and {args.fresh}"
            )
        for name in sorted(common):
            checked += 1
            b = base[name][args.metric]
            f = fresh[name][args.metric]
            rel = (f - b) / b if b > 0 else 0.0
            ok = rel <= args.tolerance
            print(
                f"{'ok   ' if ok else 'FAIL '} {name}: "
                f"{b:.0f} -> {f:.0f} {base[name].get('time_unit', 'ns')} "
                f"({rel:+.1%})"
            )
            if not ok:
                failures.append(
                    f"REGRESSION {name}: {rel:+.1%} vs baseline "
                    f"(tolerance {args.tolerance:+.1%})"
                )
        only_base = sorted(set(base) - set(fresh))
        if only_base:
            print(f"note: {len(only_base)} baseline benchmarks not re-run "
                  f"(filter or bench change): {', '.join(only_base[:5])}...")

    if checked == 0 and not failures:
        print("bench_compare: nothing to check (no gates requested?)")
        return 1
    if failures:
        print(f"\nbench_compare: {len(failures)} gate(s) failed")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nbench_compare: all {checked} gate(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
