#include <gtest/gtest.h>

#include "comm/types.hpp"

namespace dchag::comm {
namespace {

TEST(Topology, FlatPutsAllRanksOnOneNode) {
  Topology t = Topology::flat(8);
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_TRUE(t.same_node(0, 7));
}

TEST(Topology, PackedFrontierLayout) {
  // Frontier: 8 logical GPUs (GCDs) per node.
  Topology t = Topology::packed(24, 8);
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(23), 2);
  EXPECT_TRUE(t.same_node(8, 15));
  EXPECT_FALSE(t.same_node(7, 8));
}

TEST(Topology, PackedUnevenLastNode) {
  Topology t = Topology::packed(10, 8);
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.node_of(9), 1);
}

TEST(Topology, SubgroupRemapsNodeIds) {
  Topology t = Topology::packed(16, 8);
  Topology sub = t.subgroup({0, 8});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_FALSE(sub.same_node(0, 1));
  Topology sub2 = t.subgroup({0, 1, 2});
  EXPECT_EQ(sub2.num_nodes(), 1);
}

TEST(CommStats, RecordAndTotals) {
  CommStats s;
  s.record(CollectiveKind::kAllReduce, 100);
  s.record(CollectiveKind::kAllReduce, 50);
  s.record(CollectiveKind::kBroadcast, 10);
  EXPECT_EQ(s.calls_of(CollectiveKind::kAllReduce), 2u);
  EXPECT_EQ(s.bytes_of(CollectiveKind::kAllReduce), 150u);
  EXPECT_EQ(s.total_calls(), 3u);
  EXPECT_EQ(s.total_payload_bytes(), 160u);
}

TEST(CommStats, KindNames) {
  EXPECT_STREQ(to_string(CollectiveKind::kAllReduce), "AllReduce");
  EXPECT_STREQ(to_string(CollectiveKind::kReduceScatter), "ReduceScatter");
}

}  // namespace
}  // namespace dchag::comm
