#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (tests + examples + benches),
# and run ctest. With --format, also check clang-format compliance first.
#
# Usage:  scripts/check.sh [--format] [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
check_format=0
build_dir="build"
for arg in "$@"; do
  case "$arg" in
    --format) check_format=1 ;;
    -h|--help) echo "usage: scripts/check.sh [--format] [build-dir]"; exit 0 ;;
    *) build_dir="$arg" ;;
  esac
done

cd "$repo_root"

if [[ "$check_format" == 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format check"
    mapfile -t sources < <(git ls-files '*.cpp' '*.hpp')
    clang-format --dry-run --Werror "${sources[@]}"
  else
    echo "== clang-format not found; skipping format check" >&2
  fi
fi

echo "== configure"
cmake -B "$build_dir" -S . -DDCHAG_BUILD_BENCH=ON
echo "== build"
cmake --build "$build_dir" -j "$(nproc)"
echo "== ctest"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "== OK"
