// The request-facing serving layer: a Batcher in front of a worker pool
// executing an InferenceFn (single-device Engine or SpmdEngine) over a
// loaded checkpoint, with Metrics accounting on every stage.
//
// Lifecycle: construct -> (optionally submit early; requests park in the
// batcher) -> start() -> submit()/futures -> drain() or destructor.
// Workers never leak exceptions: a failing batch fails its requests'
// futures and the worker keeps serving.
#pragma once

#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"

namespace dchag::serve {

struct ServerConfig {
  /// Worker threads executing batches. More than one only helps when the
  /// InferenceFn is itself thread-safe (the single-device Engine is; an
  /// SpmdEngine serializes internally).
  int num_workers = 1;
  BatcherConfig batcher;
};

class Server {
 public:
  Server(InferenceFn infer, ServerConfig cfg);
  /// Drains on destruction: closes the batcher, finishes parked work,
  /// joins workers.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request. Valid before start() — requests park in the
  /// batcher until workers spin up (handy for deterministic coalescing
  /// tests and warm-up bursts).
  [[nodiscard]] ResponseFuture submit(Request r);

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Stops accepting requests, completes everything parked, joins the
  /// workers. Idempotent; implied by the destructor.
  void drain();

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t queue_depth() const { return batcher_.depth(); }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  void worker_loop();
  void execute(Batch batch);

  InferenceFn infer_;
  ServerConfig cfg_;
  Batcher batcher_;
  Metrics metrics_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace dchag::serve
