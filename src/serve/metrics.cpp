#include "serve/metrics.hpp"

#include <sstream>

namespace dchag::serve {

std::string Metrics::Snapshot::to_string() const {
  std::ostringstream os;
  os << "requests=" << requests << " batches=" << batches
     << " failed=" << failed << " mean_batch=" << mean_batch_size
     << " p50=" << p50_ms << "ms p95=" << p95_ms << "ms p99=" << p99_ms
     << "ms queue=" << mean_queue_ms << "ms forward=" << mean_forward_ms
     << "ms rate=" << requests_per_s << "req/s max_depth="
     << max_queue_depth << " recoveries=" << recoveries << " recovery="
     << mean_recovery_ms << "ms hedged=" << hedged_dispatches
     << " degraded=" << degraded_responses
     << " fwd_allocs=" << forward_allocations
     << " last_fwd_allocs=" << last_forward_allocations;
  return os.str();
}

std::string Metrics::Snapshot::to_exposition() const {
  std::ostringstream os;
  os << "dchag_serve_requests_total " << requests << "\n"
     << "dchag_serve_batches_total " << batches << "\n"
     << "dchag_serve_failed_total " << failed << "\n"
     << "dchag_serve_latency_ms{quantile=\"0.5\"} " << p50_ms << "\n"
     << "dchag_serve_latency_ms{quantile=\"0.95\"} " << p95_ms << "\n"
     << "dchag_serve_latency_ms{quantile=\"0.99\"} " << p99_ms << "\n"
     << "dchag_serve_mean_queue_ms " << mean_queue_ms << "\n"
     << "dchag_serve_mean_forward_ms " << mean_forward_ms << "\n"
     << "dchag_serve_requests_per_second " << requests_per_s << "\n"
     << "dchag_serve_max_queue_depth " << max_queue_depth << "\n"
     << "dchag_serve_recoveries_total " << recoveries << "\n"
     << "dchag_serve_mean_recovery_ms " << mean_recovery_ms << "\n"
     << "dchag_serve_hedged_dispatches_total " << hedged_dispatches << "\n"
     << "dchag_serve_degraded_responses_total " << degraded_responses << "\n"
     << "dchag_serve_forward_allocations_total " << forward_allocations
     << "\n"
     << "dchag_serve_last_forward_allocations " << last_forward_allocations
     << "\n";
  return os.str();
}

}  // namespace dchag::serve
