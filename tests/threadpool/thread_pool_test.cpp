// ThreadPool contract: correct partitioning at any lane count, inline
// fallbacks (tiny ranges, zero workers, nesting), exception propagation,
// and safety under concurrent submission from many external threads —
// the exact pattern serve workers and SPMD ranks produce in production.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "tensor/thread_pool.hpp"

namespace dchag::tensor {
namespace {

std::vector<float> iota(Index n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0f);
  return v;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const Index n = 100000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(n, 64, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, MatchesSerialSum) {
  ThreadPool pool(4);
  const Index n = 250000;
  std::vector<float> data = iota(n);
  std::vector<double> partial(static_cast<std::size_t>(n), 0.0);
  pool.parallel_for(n, 1024, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i)
      partial[static_cast<std::size_t>(i)] =
          2.0 * data[static_cast<std::size_t>(i)];
  });
  const double got = std::accumulate(partial.begin(), partial.end(), 0.0);
  const double want = static_cast<double>(n - 1) * n;  // 2 * sum(0..n-1)
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  EXPECT_EQ(pool.lanes(), 1);
  Index calls = 0;
  std::thread::id tid;
  pool.parallel_for(1000, 10, [&](Index lo, Index hi) {
    ++calls;
    tid = std::this_thread::get_id();
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1000);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(tid, std::this_thread::get_id());
}

TEST(ThreadPool, TinyRangeStaysInlineAndEmptyRangeIsNoop) {
  ThreadPool pool(4);
  Index calls = 0;
  pool.parallel_for(5, 100, [&](Index, Index) { ++calls; });  // < 2 chunks
  EXPECT_EQ(calls, 1);
  pool.parallel_for(0, 1, [&](Index, Index) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunkRangesAreAlwaysValidWhenLanesExceedDivisibility) {
  // 9 items over 8 lanes: ceil(9/8)=2-wide chunks must yield 5 chunks,
  // never a trailing fn(10, 9) inverted range.
  ThreadPool pool(7);
  std::mutex mu;
  std::vector<std::pair<Index, Index>> ranges;
  pool.parallel_for(9, 1, [&](Index lo, Index hi) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(lo, hi);
  });
  Index covered = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi, 9);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 9);
}

TEST(ThreadPool, MaxLanesCapsFanout) {
  ThreadPool pool(7);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      1 << 20, 1, [&](Index, Index) { chunks.fetch_add(1); },
      /*max_lanes=*/2);
  EXPECT_EQ(chunks.load(), 2);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<Index> total{0};
  pool.parallel_for(64, 1, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      // Inner call from inside a chunk: must run inline on this thread,
      // not re-enter the pool (classic self-join deadlock otherwise).
      EXPECT_TRUE(ThreadPool::in_parallel_region());
      pool.parallel_for(100, 1, [&](Index ilo, Index ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 6400);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(10000, 16,
                        [&](Index lo, Index) {
                          if (lo == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // The pool must survive a throwing job and keep serving.
  std::atomic<Index> n{0};
  pool.parallel_for(10000, 16,
                    [&](Index lo, Index hi) { n.fetch_add(hi - lo); });
  EXPECT_EQ(n.load(), 10000);
}

TEST(ThreadPool, ConcurrentSubmissionFromManyThreads) {
  // Several external threads fan out on ONE shared pool at once — the
  // serve worker / SPMD rank pattern. Each submission must see exactly
  // its own range, and nothing may deadlock or double-run.
  ThreadPool pool(3);
  constexpr int kSubmitters = 6;
  std::vector<double> sums(kSubmitters, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      const Index n = 40000 + 1000 * t;
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      for (int rep = 0; rep < 10; ++rep) {
        for (auto& h : hits) h.store(0);
        pool.parallel_for(n, 256, [&](Index lo, Index hi) {
          for (Index i = lo; i < hi; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
      }
      sums[static_cast<std::size_t>(t)] = static_cast<double>(n);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kSubmitters; ++t)
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], 40000.0 + 1000.0 * t);
}

TEST(ThreadPool, StressManySmallJobs) {
  ThreadPool pool(2);
  std::atomic<Index> total{0};
  for (int rep = 0; rep < 2000; ++rep) {
    pool.parallel_for(64, 8,
                      [&](Index lo, Index hi) { total.fetch_add(hi - lo); });
  }
  EXPECT_EQ(total.load(), 2000 * 64);
}

TEST(ThreadPool, GlobalPoolSingletonIsUsable) {
  ThreadPool& g = ThreadPool::global();
  EXPECT_GE(g.lanes(), 1);
  std::atomic<Index> n{0};
  g.parallel_for(5000, 100,
                 [&](Index lo, Index hi) { n.fetch_add(hi - lo); });
  EXPECT_EQ(n.load(), 5000);
}

}  // namespace
}  // namespace dchag::tensor
