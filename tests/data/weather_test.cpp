#include "data/weather.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace dchag::data {
namespace {

namespace ops = tensor::ops;
using tensor::Shape;

WeatherConfig small() {
  WeatherConfig cfg;
  cfg.num_variables = 3;
  cfg.levels_per_variable = 4;
  cfg.surface_variables = 2;
  cfg.height = 16;
  cfg.width = 32;
  return cfg;
}

TEST(Weather, PaperChannelCount) {
  // Paper §5.2: 5 variables x >10 levels + 3 surface = 80 channels.
  WeatherConfig cfg;
  cfg.num_variables = 5;
  cfg.levels_per_variable = 15;
  cfg.surface_variables = 5;
  EXPECT_EQ(cfg.channels(), 80);
  // Default grid is the paper's 5.625-degree regrid: 32 x 64.
  EXPECT_EQ(cfg.height, 32);
  EXPECT_EQ(cfg.width, 64);
}

TEST(Weather, StateShapeAndDeterminism) {
  WeatherGenerator gen(small(), 1);
  Tensor a = gen.state(42, 3.0f);
  EXPECT_EQ(a.shape(), (Shape{14, 16, 32}));
  Tensor b = gen.state(42, 3.0f);
  EXPECT_LT(ops::max_abs_diff(a, b), 1e-9f);
  Tensor c = gen.state(43, 3.0f);
  EXPECT_GT(ops::max_abs_diff(a, c), 1e-3f);
}

TEST(Weather, TemporalCoherence) {
  // Small lead: nearly identical; large lead: decorrelated. This is what
  // makes "forecast t -> t+lead" non-trivial but learnable.
  WeatherGenerator gen(small(), 2);
  Tensor now = gen.state(7, 10.0f);
  Tensor soon = gen.state(7, 10.05f);
  Tensor later = gen.state(7, 30.0f);
  EXPECT_LT(ops::max_abs_diff(now, soon), 0.15f);
  EXPECT_GT(ops::max_abs_diff(now, later), 0.3f);
}

TEST(Weather, AdjacentLevelsCorrelated) {
  WeatherGenerator gen(small(), 3);
  Tensor s = gen.state(5, 1.0f);
  const Index hw = 16 * 32;
  // Levels 0 and 1 of variable group 0.
  const float* l0 = s.data();
  const float* l1 = s.data() + hw;
  double cov = 0;
  double v0 = 0;
  double v1 = 0;
  for (Index i = 0; i < hw; ++i) {
    cov += l0[i] * l1[i];
    v0 += l0[i] * l0[i];
    v1 += l1[i] * l1[i];
  }
  EXPECT_GT(cov / std::sqrt(v0 * v1 + 1e-12), 0.7);
}

TEST(Weather, PolesAreCalm) {
  // The meridional envelope suppresses waves at the domain edges.
  WeatherGenerator gen(small(), 4);
  Tensor s = gen.state(9, 2.0f);
  double pole = 0;
  double equator = 0;
  for (Index x = 0; x < 32; ++x) {
    pole += std::abs(s.at({0, 0, x}));
    equator += std::abs(s.at({0, 8, x}));
  }
  EXPECT_LT(pole, 0.3 * equator);
}

TEST(Weather, SamplePairShapesAndLead) {
  WeatherGenerator gen(small(), 5);
  auto pair = gen.sample_pair(3, 1.0f);
  EXPECT_EQ(pair.now.shape(), (Shape{3, 14, 16, 32}));
  EXPECT_EQ(pair.future.shape(), (Shape{3, 14, 16, 32}));
  // Input and target differ (noise + advection) but are correlated.
  EXPECT_GT(ops::max_abs_diff(pair.now, pair.future), 1e-3f);
}

TEST(Weather, EvaluationChannelIndicesValid) {
  WeatherConfig cfg;  // paper-sized default
  WeatherGenerator gen(cfg, 6);
  EXPECT_GE(gen.z500_channel(), 0);
  EXPECT_LT(gen.z500_channel(), cfg.levels_per_variable);
  EXPECT_GE(gen.t850_channel(), cfg.levels_per_variable);
  EXPECT_LT(gen.t850_channel(), 2 * cfg.levels_per_variable);
  EXPECT_EQ(gen.u10_channel(), cfg.num_variables * cfg.levels_per_variable);
  EXPECT_LT(gen.u10_channel(), cfg.channels());
}

TEST(Weather, ChannelNames) {
  WeatherGenerator gen(small(), 7);
  EXPECT_EQ(gen.channel_name(0), "z_lvl0");
  EXPECT_EQ(gen.channel_name(4), "t_lvl0");
  EXPECT_EQ(gen.channel_name(12), "u10");
}

}  // namespace
}  // namespace dchag::data
