#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "comm/fault.hpp"

namespace dchag::comm {

namespace {

/// Contiguous chunk layout used by ring and scatter collectives: element
/// counts per part differ by at most one when n % parts != 0.
struct Chunk {
  std::int64_t offset;
  std::int64_t len;
};

std::vector<Chunk> make_chunks(std::int64_t n, int parts) {
  std::vector<Chunk> out(static_cast<std::size_t>(parts));
  const std::int64_t base = n / parts;
  const std::int64_t rem = n % parts;
  std::int64_t off = 0;
  for (int i = 0; i < parts; ++i) {
    const std::int64_t len = base + (i < rem ? 1 : 0);
    out[static_cast<std::size_t>(i)] = {off, len};
    off += len;
  }
  return out;
}

constexpr std::uint64_t bytes_of_count(std::size_t n) {
  return static_cast<std::uint64_t>(n) * sizeof(float);
}

void sleep_us(std::uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

namespace detail {

GroupState::GroupState(int size_in, Topology topo,
                       std::shared_ptr<const FaultPlan> plan)
    : size(size_in),
      topology(std::move(topo)),
      fault_plan(std::move(plan)),
      send_slots(static_cast<std::size_t>(size_in), nullptr),
      recv_slots(static_cast<std::size_t>(size_in), nullptr),
      count_slots(static_cast<std::size_t>(size_in), 0),
      barrier(size_in) {
  DCHAG_CHECK(size_in > 0, "communicator size must be positive");
  DCHAG_CHECK(topology.size() == size_in,
              "topology size " << topology.size() << " != group size "
                               << size_in);
}

}  // namespace detail

void reduce_into(std::span<float> dst, std::span<const float> src,
                 ReduceOp op) {
  DCHAG_CHECK(dst.size() == src.size(), "reduce_into size mismatch");
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:  // averaging is a post-scale by the caller
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::min(dst[i], src[i]);
      break;
  }
}

void Communicator::inject_entry_faults(CollectiveKind kind) {
  const FaultPlan* plan = state_->fault_plan.get();
  if (!plan) return;
  const FaultPlan::Injection inj = plan->draw(rank_, kind, fault_seq_++);
  // Dropped contribution: each resend attempt costs one backoff window.
  sleep_us(static_cast<std::uint64_t>(inj.drops) * inj.retry_backoff_us);
  sleep_us(inj.pre_delay_us);
  pending_exit_jitter_us_ = inj.post_jitter_us;
}

void Communicator::inject_exit_faults(CollectiveKind) {
  if (!state_->fault_plan) return;
  sleep_us(pending_exit_jitter_us_);
  pending_exit_jitter_us_ = 0;
}

void Communicator::barrier() {
  stats_.record(CollectiveKind::kBarrier, 0);
  inject_entry_faults(CollectiveKind::kBarrier);
  state_->barrier.arrive_and_wait();
  inject_exit_faults(CollectiveKind::kBarrier);
}

// ----- AllReduce -------------------------------------------------------------

void Communicator::all_reduce(std::span<float> data, ReduceOp op,
                              Algorithm alg) {
  stats_.record(CollectiveKind::kAllReduce, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kAllReduce);
  // Zero elements / one rank: nothing moves. Sizes must match across ranks
  // (usage contract), so every rank takes this exit symmetrically.
  if (size() == 1 || data.empty()) {
    inject_exit_faults(CollectiveKind::kAllReduce);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
      all_reduce_direct(data, op);
      break;
    case Algorithm::kRing:
      all_reduce_ring(data, op);
      break;
    case Algorithm::kHierarchical:
      all_reduce_hierarchical(data, op);
      break;
  }
  if (op == ReduceOp::kAvg) {
    const float inv = 1.0f / static_cast<float>(size());
    for (float& x : data) x *= inv;
  }
  inject_exit_faults(CollectiveKind::kAllReduce);
}

void Communicator::all_reduce_direct(std::span<float> data, ReduceOp op) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = data.data();
  st.count_slots[static_cast<std::size_t>(rank_)] =
      static_cast<std::int64_t>(data.size());
  st.barrier.arrive_and_wait();
  std::vector<float> temp(data.begin(), data.end());
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    DCHAG_CHECK(st.count_slots[static_cast<std::size_t>(r)] ==
                    static_cast<std::int64_t>(data.size()),
                "all_reduce size mismatch across ranks");
    reduce_into(temp,
                {st.send_slots[static_cast<std::size_t>(r)], data.size()},
                op);
  }
  st.barrier.arrive_and_wait();  // all reads done before anyone writes
  std::copy(temp.begin(), temp.end(), data.begin());
  st.barrier.arrive_and_wait();  // writes done before buffers are reused
}

void Communicator::all_reduce_ring(std::span<float> data, ReduceOp op) {
  auto& st = *state_;
  const int P = size();
  const auto chunks = make_chunks(static_cast<std::int64_t>(data.size()), P);
  st.recv_slots[static_cast<std::size_t>(rank_)] = data.data();
  st.barrier.arrive_and_wait();
  const int left = (rank_ - 1 + P) % P;
  float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  // Reduce-scatter phase: after step s, the chunk received at step s has
  // s+2 contributions; after P-1 steps rank r owns complete chunk (r+1)%P.
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    const auto& c = chunks[static_cast<std::size_t>(idx)];
    reduce_into({data.data() + c.offset, static_cast<std::size_t>(c.len)},
                {left_buf + c.offset, static_cast<std::size_t>(c.len)}, op);
    st.barrier.arrive_and_wait();
  }
  // All-gather phase: complete chunks travel around the ring.
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s) % P + P) % P;
    const auto& c = chunks[static_cast<std::size_t>(idx)];
    std::memcpy(data.data() + c.offset, left_buf + c.offset,
                static_cast<std::size_t>(c.len) * sizeof(float));
    st.barrier.arrive_and_wait();
  }
}

void Communicator::all_reduce_hierarchical(std::span<float> data,
                                           ReduceOp op) {
  auto& st = *state_;
  const Topology& topo = st.topology;
  const int my_node = topo.node_of(rank_);
  int leader = rank_;
  for (int r = 0; r < size(); ++r) {
    if (topo.node_of(r) == my_node) {
      leader = r;
      break;
    }
  }
  const bool is_leader = leader == rank_;

  st.recv_slots[static_cast<std::size_t>(rank_)] = data.data();
  st.barrier.arrive_and_wait();

  // Phase 1: each leader reduces its node's members.
  std::vector<float> temp;
  if (is_leader) {
    temp.assign(data.begin(), data.end());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_ || topo.node_of(r) != my_node) continue;
      reduce_into(temp,
                  {st.recv_slots[static_cast<std::size_t>(r)], data.size()},
                  op);
    }
    st.send_slots[static_cast<std::size_t>(rank_)] = temp.data();
  }
  st.barrier.arrive_and_wait();

  // Phase 2: leaders reduce across nodes into a private buffer.
  std::vector<float> final_buf;
  if (is_leader) {
    final_buf = temp;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      int r_leader = -1;
      for (int q = 0; q < size(); ++q) {
        if (topo.node_of(q) == topo.node_of(r)) {
          r_leader = q;
          break;
        }
      }
      if (r != r_leader || topo.node_of(r) == my_node) continue;
      reduce_into(final_buf,
                  {st.send_slots[static_cast<std::size_t>(r)], data.size()},
                  op);
    }
  }
  st.barrier.arrive_and_wait();

  // Phase 3: leaders publish; members copy from their leader.
  if (is_leader) std::copy(final_buf.begin(), final_buf.end(), data.begin());
  st.barrier.arrive_and_wait();
  if (!is_leader) {
    const float* src = st.recv_slots[static_cast<std::size_t>(leader)];
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
  st.barrier.arrive_and_wait();
}

// ----- AllGather -------------------------------------------------------------

void Communicator::all_gather(std::span<const float> send,
                              std::span<float> recv, Algorithm alg) {
  DCHAG_CHECK(recv.size() == send.size() * static_cast<std::size_t>(size()),
              "all_gather: recv size " << recv.size() << " != send "
                                       << send.size() << " * " << size());
  stats_.record(CollectiveKind::kAllGather, bytes_of_count(recv.size()));
  inject_entry_faults(CollectiveKind::kAllGather);
  if (size() == 1 || send.empty()) {
    std::copy(send.begin(), send.end(), recv.begin());
    inject_exit_faults(CollectiveKind::kAllGather);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
    case Algorithm::kHierarchical:  // in-process: same data path as direct
      all_gather_direct(send, recv);
      break;
    case Algorithm::kRing:
      all_gather_ring(send, recv);
      break;
  }
  inject_exit_faults(CollectiveKind::kAllGather);
}

void Communicator::all_gather_direct(std::span<const float> send,
                                     std::span<float> recv) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = send.data();
  st.count_slots[static_cast<std::size_t>(rank_)] =
      static_cast<std::int64_t>(send.size());
  st.barrier.arrive_and_wait();
  const std::size_t n = send.size();
  for (int r = 0; r < size(); ++r) {
    DCHAG_CHECK(st.count_slots[static_cast<std::size_t>(r)] ==
                    static_cast<std::int64_t>(n),
                "all_gather size mismatch across ranks");
    std::memcpy(recv.data() + static_cast<std::size_t>(r) * n,
                st.send_slots[static_cast<std::size_t>(r)],
                n * sizeof(float));
  }
  st.barrier.arrive_and_wait();  // senders keep buffers alive until here
}

void Communicator::all_gather_ring(std::span<const float> send,
                                   std::span<float> recv) {
  auto& st = *state_;
  const int P = size();
  const std::size_t n = send.size();
  std::memcpy(recv.data() + static_cast<std::size_t>(rank_) * n, send.data(),
              n * sizeof(float));
  st.recv_slots[static_cast<std::size_t>(rank_)] = recv.data();
  st.barrier.arrive_and_wait();
  const int left = (rank_ - 1 + P) % P;
  const float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    std::memcpy(recv.data() + static_cast<std::size_t>(idx) * n,
                left_buf + static_cast<std::size_t>(idx) * n,
                n * sizeof(float));
    st.barrier.arrive_and_wait();
  }
}

// ----- ReduceScatter ---------------------------------------------------------

void Communicator::reduce_scatter(std::span<const float> send,
                                  std::span<float> recv, ReduceOp op,
                                  Algorithm alg) {
  DCHAG_CHECK(send.size() == recv.size() * static_cast<std::size_t>(size()),
              "reduce_scatter: send size " << send.size() << " != recv "
                                           << recv.size() << " * " << size());
  stats_.record(CollectiveKind::kReduceScatter, bytes_of_count(send.size()));
  inject_entry_faults(CollectiveKind::kReduceScatter);
  if (size() == 1 || recv.empty()) {
    std::copy(send.begin(), send.end(), recv.begin());
    inject_exit_faults(CollectiveKind::kReduceScatter);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
    case Algorithm::kHierarchical:
      reduce_scatter_direct(send, recv, op);
      break;
    case Algorithm::kRing:
      reduce_scatter_ring(send, recv, op);
      break;
  }
  if (op == ReduceOp::kAvg) {
    const float inv = 1.0f / static_cast<float>(size());
    for (float& x : recv) x *= inv;
  }
  inject_exit_faults(CollectiveKind::kReduceScatter);
}

void Communicator::reduce_scatter_direct(std::span<const float> send,
                                         std::span<float> recv,
                                         ReduceOp op) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = send.data();
  st.barrier.arrive_and_wait();
  const std::size_t n = recv.size();
  const std::size_t my_off = static_cast<std::size_t>(rank_) * n;
  std::memcpy(recv.data(), send.data() + my_off, n * sizeof(float));
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    reduce_into(recv,
                {st.send_slots[static_cast<std::size_t>(r)] + my_off, n},
                op == ReduceOp::kAvg ? ReduceOp::kSum : op);
  }
  st.barrier.arrive_and_wait();
}

void Communicator::reduce_scatter_ring(std::span<const float> send,
                                       std::span<float> recv, ReduceOp op) {
  auto& st = *state_;
  const int P = size();
  // Workspace copy of send (ring mutates partial sums in place).
  std::vector<float> work(send.begin(), send.end());
  st.recv_slots[static_cast<std::size_t>(rank_)] = work.data();
  st.barrier.arrive_and_wait();
  const int left = (rank_ - 1 + P) % P;
  float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  const std::size_t n = recv.size();
  const ReduceOp eff = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    const std::size_t off = static_cast<std::size_t>(idx) * n;
    reduce_into({work.data() + off, n}, {left_buf + off, n}, eff);
    st.barrier.arrive_and_wait();
  }
  // Rank r now owns complete chunk (r+1)%P; chunk r lives on the left
  // neighbour — one final shift delivers reduce_scatter semantics.
  const std::size_t final_off = static_cast<std::size_t>(rank_) * n;
  std::memcpy(recv.data(), left_buf + final_off, n * sizeof(float));
  st.barrier.arrive_and_wait();  // keep workspaces alive until all copied
}

// ----- Broadcast / point-to-point -------------------------------------------

void Communicator::broadcast(std::span<float> data, int root) {
  DCHAG_CHECK(root >= 0 && root < size(), "broadcast root " << root);
  stats_.record(CollectiveKind::kBroadcast, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kBroadcast);
  if (size() == 1 || data.empty()) {
    inject_exit_faults(CollectiveKind::kBroadcast);
    return;
  }
  auto& st = *state_;
  if (rank_ == root)
    st.send_slots[static_cast<std::size_t>(rank_)] = data.data();
  st.barrier.arrive_and_wait();
  if (rank_ != root) {
    std::memcpy(data.data(), st.send_slots[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  st.barrier.arrive_and_wait();
  inject_exit_faults(CollectiveKind::kBroadcast);
}

void Communicator::send(std::span<const float> data, int dst, int tag) {
  DCHAG_CHECK(dst != rank_, "send to self");
  stats_.record(CollectiveKind::kSendRecv, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kSendRecv);
  auto& st = *state_;
  const auto key = std::make_tuple(rank_, dst, tag);
  std::unique_lock lk(st.mail_mu);
  st.mail_cv.wait(lk, [&] { return !st.mailbox.contains(key); });
  st.mailbox[key] = {data.data(), static_cast<std::int64_t>(data.size()),
                     false};
  st.mail_cv.notify_all();
  st.mail_cv.wait(lk, [&] {
    auto it = st.mailbox.find(key);
    return it != st.mailbox.end() && it->second.consumed;
  });
  st.mailbox.erase(key);
  st.mail_cv.notify_all();
  lk.unlock();  // jitter sleeps must never hold the shared mailbox lock
  inject_exit_faults(CollectiveKind::kSendRecv);
}

void Communicator::recv(std::span<float> data, int src, int tag) {
  DCHAG_CHECK(src != rank_, "recv from self");
  stats_.record(CollectiveKind::kSendRecv, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kSendRecv);
  auto& st = *state_;
  const auto key = std::make_tuple(src, rank_, tag);
  std::unique_lock lk(st.mail_mu);
  st.mail_cv.wait(lk, [&] {
    auto it = st.mailbox.find(key);
    return it != st.mailbox.end() && !it->second.consumed;
  });
  auto& parcel = st.mailbox.at(key);
  DCHAG_CHECK(parcel.count == static_cast<std::int64_t>(data.size()),
              "recv size " << data.size() << " != sent " << parcel.count);
  if (!data.empty())
    std::memcpy(data.data(), parcel.data, data.size() * sizeof(float));
  parcel.consumed = true;
  st.mail_cv.notify_all();
  lk.unlock();
  inject_exit_faults(CollectiveKind::kSendRecv);
}

// ----- split -----------------------------------------------------------------

Communicator Communicator::split(int color, int key) {
  auto& st = *state_;
  {
    std::scoped_lock lk(st.split_mu);
    if (st.split_colors.empty()) {
      st.split_colors.assign(static_cast<std::size_t>(size()), 0);
      st.split_keys.assign(static_cast<std::size_t>(size()), 0);
    }
    st.split_colors[static_cast<std::size_t>(rank_)] = color;
    st.split_keys[static_cast<std::size_t>(rank_)] =
        key >= 0 ? key : rank_;
  }
  st.barrier.arrive_and_wait();

  // Determine this color's membership, ordered by (key, parent rank).
  std::vector<int> members;
  for (int r = 0; r < size(); ++r) {
    if (st.split_colors[static_cast<std::size_t>(r)] == color)
      members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return st.split_keys[static_cast<std::size_t>(a)] <
           st.split_keys[static_cast<std::size_t>(b)];
  });
  const bool is_creator = members.front() == rank_;
  if (is_creator) {
    // Children inherit the parent's fault plan: flaky links stay flaky
    // for every subgroup carved out of the world.
    auto child = std::make_shared<detail::GroupState>(
        static_cast<int>(members.size()), st.topology.subgroup(members),
        st.fault_plan);
    std::scoped_lock lk(st.split_mu);
    st.split_groups[color] = std::move(child);
    st.split_members[color] = members;
  }
  st.barrier.arrive_and_wait();

  std::shared_ptr<detail::GroupState> child;
  {
    std::scoped_lock lk(st.split_mu);
    child = st.split_groups.at(color);
  }
  int child_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank_) child_rank = static_cast<int>(i);
  }
  DCHAG_CHECK(child_rank >= 0, "split: rank not in own color group");
  st.barrier.arrive_and_wait();

  // Reset rendezvous state for the next split call.
  if (rank_ == 0) {
    std::scoped_lock lk(st.split_mu);
    st.split_groups.clear();
    st.split_members.clear();
    st.split_colors.clear();
    st.split_keys.clear();
  }
  st.barrier.arrive_and_wait();
  return Communicator(std::move(child), child_rank);
}

// ----- World -----------------------------------------------------------------

World::World(int size, Topology topo) : size_(size), topo_(std::move(topo)) {
  DCHAG_CHECK(size_ > 0, "world size must be positive");
  DCHAG_CHECK(topo_.size() == size_, "topology/world size mismatch");
}

void World::run(const std::function<void(Communicator&)>& fn) {
  auto state = std::make_shared<detail::GroupState>(size_, topo_, fault_plan_);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    // Every rank body runs inside a catch-all: a throwing closure must
    // surface as a failed run() on the spawning thread (with the rank
    // identified), never escape a std::thread and std::terminate the
    // process.
    threads.emplace_back([&, r]() noexcept {
      try {
        Communicator comm(state, r);
        fn(comm);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = std::make_exception_ptr(
            Error("rank " + std::to_string(r) + ": " + ex.what()));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::make_exception_ptr(
            Error("rank " + std::to_string(r) +
                  " threw a non-standard exception"));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace dchag::comm
