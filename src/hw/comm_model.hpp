// Alpha-beta cost model for collectives on the Frontier fabric.
//
// A process group of P ranks occupies `ranks_per_node` GCDs on each of
// P/ranks_per_node nodes. Within a node traffic rides Infinity Fabric;
// across nodes all colocated ranks share the node's Slingshot budget
// (paper §4.1: 100 GB/s per node), which is exactly why the paper's hybrid
// layout pushes heavy collectives inside the node (§6.3).
#pragma once

#include "hw/machine.hpp"

namespace dchag::hw {

class CommCostModel {
 public:
  explicit CommCostModel(MachineSpec machine) : machine_(machine) {}

  /// Ring AllReduce of `bytes` per rank.
  [[nodiscard]] double all_reduce_s(double bytes, int group_size,
                                    int ranks_per_node) const;
  /// AllGather where every rank ends with `recv_bytes_total`.
  [[nodiscard]] double all_gather_s(double recv_bytes_total, int group_size,
                                    int ranks_per_node) const;
  /// ReduceScatter of `send_bytes_total` per rank.
  [[nodiscard]] double reduce_scatter_s(double send_bytes_total,
                                        int group_size,
                                        int ranks_per_node) const;

  /// Effective per-rank bandwidth (GB/s) and latency for a group.
  [[nodiscard]] double effective_bandwidth_gbs(int group_size,
                                               int ranks_per_node) const;
  [[nodiscard]] double effective_latency_s(int group_size,
                                           int ranks_per_node) const;

  [[nodiscard]] const MachineSpec& machine() const { return machine_; }

 private:
  MachineSpec machine_;
};

/// Ranks per node occupied by each group of the (tp, fsdp, dp)
/// factorisation when ranks are packed tp-innermost onto nodes of
/// `gpus_per_node` (paper Fig. 5 layout).
struct GroupPlacement {
  int tp_ranks_per_node;
  int fsdp_ranks_per_node;
  int dp_ranks_per_node;
};
[[nodiscard]] GroupPlacement place_groups(int tp, int fsdp, int dp,
                                          int gpus_per_node);

}  // namespace dchag::hw
