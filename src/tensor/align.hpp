// 32-byte-aligned storage for tensor buffers and GEMM pack panels.
//
// Every float buffer the tensor layer hands to a kernel comes from this
// allocator, so the AVX2 micro-kernel's loads land on cache-line-friendly
// addresses and the pack panels satisfy the alignment the vectorised
// loops were written for. std::vector keeps value semantics (sized
// construction zero-fills, moves are pointer swaps); only the underlying
// operator new/delete pair is alignment-aware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace dchag::tensor {

/// Minimum alignment of tensor/panel storage: one AVX2 vector (and half a
/// typical cache line), matching the widest load in the GEMM micro-kernel.
inline constexpr std::size_t kBufferAlignment = 32;

template <typename T, std::size_t Alignment = kBufferAlignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The storage type behind every Tensor buffer and GEMM pack panel.
using AlignedVec = std::vector<float, AlignedAllocator<float>>;

[[nodiscard]] inline bool is_aligned(const void* p,
                                     std::size_t alignment = kBufferAlignment) {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

}  // namespace dchag::tensor
