// Optimizers: SGD, Adam, and the ZeRO-style sharded Adam used as the
// executable FSDP analogue.
//
// FsdpAdam implements ZeRO-1 semantics: gradients are averaged across the
// group, optimizer state lives only on each parameter's owner rank, and
// updated values are broadcast back. The math is exactly DP-Adam (tested
// in tests/train/fsdp_test.cpp); the memory property (state sharded P
// ways) is what FSDP buys. Full ZeRO-3 parameter-shard memory behaviour
// is covered analytically by hw::estimate_memory.
#pragma once

#include <optional>

#include "comm/communicator.hpp"
#include "tensor/module.hpp"

namespace dchag::train {

using autograd::Variable;
using tensor::Index;
using tensor::Tensor;

class Sgd {
 public:
  Sgd(std::vector<Variable> params, float lr) : params_(std::move(params)), lr_(lr) {}

  void step();
  void zero_grad();

 private:
  std::vector<Variable> params_;
  float lr_;
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Applies one AdamW update to `value` given `grad` and state (m, v).
/// Exposed so Adam and FsdpAdam share one audited implementation.
void adamw_update(Tensor& value, const Tensor& grad, Tensor& m, Tensor& v,
                  std::int64_t t, const AdamConfig& cfg);

class Adam {
 public:
  Adam(std::vector<Variable> params, AdamConfig cfg = {});

  void step();
  void zero_grad();
  [[nodiscard]] std::int64_t iterations() const { return t_; }

 private:
  std::vector<Variable> params_;
  AdamConfig cfg_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

/// ZeRO-1 sharded Adam over an FSDP group. Parameters are assigned to
/// owner ranks round-robin by registration order; step() = AllReduce(avg)
/// grads -> owner updates -> Broadcast values.
class FsdpAdam {
 public:
  FsdpAdam(std::vector<Variable> params, comm::Communicator& comm,
           AdamConfig cfg = {});

  void step();
  void zero_grad();

  /// Number of parameter tensors whose optimizer state this rank holds —
  /// the sharding property (≈ params/P).
  [[nodiscard]] std::size_t owned_params() const { return owned_count_; }
  [[nodiscard]] int owner_of(std::size_t param_index) const {
    return static_cast<int>(param_index % static_cast<std::size_t>(
                                               comm_->size()));
  }

 private:
  std::vector<Variable> params_;
  comm::Communicator* comm_;
  AdamConfig cfg_;
  std::vector<std::optional<std::pair<Tensor, Tensor>>> state_;  // owner only
  std::size_t owned_count_ = 0;
  std::int64_t t_ = 0;
};

}  // namespace dchag::train
