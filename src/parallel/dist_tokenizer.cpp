#include "parallel/dist_tokenizer.hpp"

namespace dchag::parallel {

std::vector<Index> channel_shard(Index channels, int world, int rank) {
  DCHAG_CHECK(world >= 1 && rank >= 0 && rank < world, "bad shard query");
  DCHAG_CHECK(channels % world == 0, "channels " << channels
                                                 << " not divisible by world "
                                                 << world);
  const Index per = channels / world;
  std::vector<Index> ids(static_cast<std::size_t>(per));
  for (Index i = 0; i < per; ++i) ids[static_cast<std::size_t>(i)] = rank * per + i;
  return ids;
}

DistributedTokenizer::DistributedTokenizer(const model::ModelConfig& cfg,
                                           Index total_channels,
                                           Communicator& comm,
                                           tensor::Rng& rng)
    : total_channels_(total_channels), comm_(&comm) {
  tokenizer_ = std::make_unique<model::PatchTokenizer>(
      cfg, channel_shard(total_channels, comm.size(), comm.rank()), rng);
  register_child(*tokenizer_);
}

Variable DistributedTokenizer::forward_local(
    const tensor::Tensor& local_images) const {
  return tokenizer_->forward(local_images);  // [B, C/P, S, D]
}

Variable DistributedTokenizer::forward(
    const tensor::Tensor& local_images) const {
  Variable local = forward_local(local_images);
  // The gathered tensor feeds a replicated aggregator, so the upstream
  // gradient is identical on every rank and each rank takes its own
  // channel slice locally (GatherBackward::kLocalSlice). Summing across
  // ranks here would overcount by the group size.
  return all_gather_cat(local, *comm_, /*dim=*/1,
                        GatherBackward::kLocalSlice);
}

}  // namespace dchag::parallel
