#include "train/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <map>

namespace dchag::train {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'H', 'K'};
constexpr std::uint64_t kVersion = 1;

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  DCHAG_CHECK(f.good(), "truncated checkpoint");
  return v;
}

constexpr std::uint64_t byteswap_u64(std::uint64_t v) {
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | (v & 0xFFu);
    v >>= 8;
  }
  return out;
}

std::uint64_t file_size_of(std::ifstream& f) {
  const std::streampos cur = f.tellg();
  f.seekg(0, std::ios::end);
  const std::streampos end = f.tellg();
  f.seekg(cur);
  return static_cast<std::uint64_t>(end);
}

struct RawEntry {
  tensor::Shape shape;
  std::streampos data_pos;
};

std::map<std::string, RawEntry> index_file(std::ifstream& f,
                                           const std::string& path) {
  const std::uint64_t file_bytes = file_size_of(f);
  char magic[4];
  f.read(magic, 4);
  DCHAG_CHECK(f.good() && std::memcmp(magic, kMagic, 4) == 0,
              path << " is not a D-CHAG checkpoint");
  const std::uint64_t version = read_u64(f);
  // A byte-swapped version number means the file was written on a machine
  // of the opposite endianness: every u64 and float payload would be
  // silently misread, so fail with the actual cause instead.
  DCHAG_CHECK(byteswap_u64(version) != kVersion,
              path << " was written on a machine of opposite endianness "
                      "(byte-swapped header); re-export the checkpoint on "
                      "a same-endianness host");
  DCHAG_CHECK(version == kVersion, "unsupported checkpoint version "
                                       << version);
  const std::uint64_t count = read_u64(f);
  std::map<std::string, RawEntry> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(f);
    DCHAG_CHECK(name_len > 0 && name_len <= file_bytes,
                path << ": implausible parameter-name length " << name_len
                     << " (corrupt or truncated header)");
    std::string name(name_len, '\0');
    f.read(name.data(), static_cast<std::streamsize>(name_len));
    DCHAG_CHECK(f.good(), "truncated parameter name in " << path);
    const std::uint64_t rank = read_u64(f);
    DCHAG_CHECK(rank <= 8, path << ": implausible tensor rank " << rank
                                << " for '" << name << "'");
    std::vector<tensor::Index> dims(rank);
    for (auto& d : dims) d = static_cast<tensor::Index>(read_u64(f));
    tensor::Shape shape{std::vector<tensor::Index>(dims)};
    RawEntry e{shape, f.tellg()};
    DCHAG_CHECK(!entries.contains(name),
                "duplicate parameter '" << name << "' in " << path);
    const std::uint64_t data_bytes =
        static_cast<std::uint64_t>(shape.numel()) * sizeof(float);
    const std::uint64_t data_end =
        static_cast<std::uint64_t>(e.data_pos) + data_bytes;
    // seekg past EOF does not fail until the next read, so check the size
    // explicitly — otherwise a truncated file loads garbage silently.
    DCHAG_CHECK(data_end <= file_bytes,
                path << ": parameter '" << name << "' needs " << data_bytes
                     << " bytes at offset "
                     << static_cast<std::uint64_t>(e.data_pos)
                     << " but the file has only " << file_bytes
                     << " bytes (truncated or size-mismatched checkpoint)");
    entries.emplace(std::move(name), std::move(e));
    f.seekg(static_cast<std::streamoff>(data_bytes), std::ios::cur);
    DCHAG_CHECK(f.good(), "truncated checkpoint " << path);
  }
  return entries;
}

}  // namespace

void save_parameters(const std::string& path,
                     std::span<const autograd::Variable> params) {
  std::ofstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path << " for writing");
  f.write(kMagic, 4);
  write_u64(f, kVersion);
  write_u64(f, params.size());
  for (const autograd::Variable& p : params) {
    DCHAG_CHECK(!p.name().empty(),
                "cannot checkpoint an unnamed parameter");
    write_u64(f, p.name().size());
    f.write(p.name().data(),
            static_cast<std::streamsize>(p.name().size()));
    const auto& shape = p.shape();
    write_u64(f, static_cast<std::uint64_t>(shape.rank()));
    for (tensor::Index d = 0; d < shape.rank(); ++d)
      write_u64(f, static_cast<std::uint64_t>(shape.dim(d)));
    f.write(reinterpret_cast<const char*>(p.value().data()),
            static_cast<std::streamsize>(shape.numel() * sizeof(float)));
  }
  DCHAG_CHECK(f.good(), "write failed for " << path);
}

void load_parameters(const std::string& path,
                     std::span<autograd::Variable> params) {
  std::ifstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path);
  const auto entries = index_file(f, path);
  for (autograd::Variable& p : params) {
    const auto it = entries.find(p.name());
    DCHAG_CHECK(it != entries.end(),
                "parameter '" << p.name() << "' not found in " << path);
    DCHAG_CHECK(it->second.shape == p.shape(),
                "shape mismatch for '" << p.name() << "': checkpoint "
                                       << it->second.shape.to_string()
                                       << " vs model "
                                       << p.shape().to_string());
    f.clear();
    f.seekg(it->second.data_pos);
    f.read(reinterpret_cast<char*>(p.mutable_value().data()),
           static_cast<std::streamsize>(p.shape().numel() * sizeof(float)));
    DCHAG_CHECK(f.good(), "truncated data for '" << p.name() << "'");
  }
}

void save_module(const std::string& path, const autograd::Module& m) {
  const std::vector<autograd::Variable> params = m.parameters();
  save_parameters(path, params);
}

void load_module(const std::string& path, const autograd::Module& m) {
  std::vector<autograd::Variable> params = m.parameters();
  load_parameters(path, params);
}

std::vector<CheckpointEntry> list_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path);
  std::vector<CheckpointEntry> out;
  for (const auto& [name, entry] : index_file(f, path)) {
    out.push_back({name, entry.shape});
  }
  return out;
}

}  // namespace dchag::train
