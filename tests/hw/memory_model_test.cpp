#include "hw/memory_model.hpp"

#include <gtest/gtest.h>

namespace dchag::hw {
namespace {

const MachineSpec kFrontier = MachineSpec::frontier();

ModelConfig small() { return ModelConfig::preset("1.7B"); }

TEST(MemoryModel, TotalIsSumOfComponents) {
  Workload w{8, 128, true};
  const auto m = estimate_memory(small(), w, {2, 1, 1}, DchagSpec::off());
  const double sum = m.tokenizer_state_gb + m.aggregation_state_gb +
                     m.transformer_state_gb + m.input_act_gb +
                     m.tokenizer_act_gb + m.aggregation_act_gb +
                     m.gather_act_gb + m.transformer_act_gb;
  EXPECT_NEAR(m.total_gb(), sum, 1e-9);
  EXPECT_GT(m.total_gb(), 0.0);
}

TEST(MemoryModel, BaselineAggregationQuadraticInChannels) {
  // Paper §3.2: cross-attention memory scales quadratically with C.
  Workload w1{8, 256, true};
  Workload w2{8, 512, true};
  const auto m1 = estimate_memory(small(), w1, {1, 1, 1}, DchagSpec::off());
  const auto m2 = estimate_memory(small(), w2, {1, 1, 1}, DchagSpec::off());
  // Subtract the linear projection part by fitting: act(C)= a*C^2 + b*C.
  // Doubling C must more than double aggregation activations.
  EXPECT_GT(m2.aggregation_act_gb, 2.5 * m1.aggregation_act_gb);
}

TEST(MemoryModel, LearnedQueryAblationIsLinearInChannels) {
  ModelConfig cfg = small();
  cfg.query_mode = model::QueryMode::kLearnedQuery;
  Workload w1{8, 256, true};
  Workload w2{8, 512, true};
  const auto m1 = estimate_memory(cfg, w1, {1, 1, 1}, DchagSpec::off());
  const auto m2 = estimate_memory(cfg, w2, {1, 1, 1}, DchagSpec::off());
  EXPECT_NEAR(m2.aggregation_act_gb / m1.aggregation_act_gb, 2.0, 0.1);
}

TEST(MemoryModel, TpDoesNotShardTokenizer) {
  // Paper Fig. 7: "the absolute memory usage for tokenization ... remains
  // unchanged" as TP grows.
  Workload w{8, 512, true};
  const auto m2 = estimate_memory(small(), w, {2, 1, 1}, DchagSpec::off());
  const auto m8 = estimate_memory(small(), w, {8, 1, 1}, DchagSpec::off());
  EXPECT_NEAR(m2.tokenizer_act_gb, m8.tokenizer_act_gb, 1e-9);
  EXPECT_NEAR(m2.tokenizer_state_gb, m8.tokenizer_state_gb, 1e-9);
  EXPECT_LT(m8.transformer_state_gb, m2.transformer_state_gb);
}

TEST(MemoryModel, FsdpShardsStateNotActivations) {
  Workload w{8, 256, true};
  const auto m1 = estimate_memory(small(), w, {1, 1, 1}, DchagSpec::off());
  const auto m4 = estimate_memory(small(), w, {1, 4, 1}, DchagSpec::off());
  EXPECT_NEAR(m4.transformer_state_gb, m1.transformer_state_gb / 4, 1e-6);
  EXPECT_NEAR(m4.tokenizer_state_gb, m1.tokenizer_state_gb / 4, 1e-6);
  EXPECT_NEAR(m4.tokenizer_act_gb, m1.tokenizer_act_gb, 1e-9);
  EXPECT_NEAR(m4.aggregation_act_gb, m1.aggregation_act_gb, 1e-9);
}

TEST(MemoryModel, DpShardsNothing) {
  Workload w{8, 256, true};
  const auto m1 = estimate_memory(small(), w, {2, 2, 1}, DchagSpec::off());
  const auto m4 = estimate_memory(small(), w, {2, 2, 4}, DchagSpec::off());
  EXPECT_NEAR(m1.total_gb(), m4.total_gb(), 1e-9);
}

TEST(MemoryModel, DchagSplitsTokenizerAcrossTp) {
  Workload w{8, 512, true};
  const auto base = estimate_memory(small(), w, {8, 1, 1}, DchagSpec::off());
  const auto d = estimate_memory(small(), w, {8, 1, 1},
                                 DchagSpec::tree(1, AggLayerKind::kLinear));
  EXPECT_NEAR(d.tokenizer_act_gb, base.tokenizer_act_gb / 8, 1e-6);
  EXPECT_LT(d.input_act_gb, base.input_act_gb);
  EXPECT_GT(d.gather_act_gb, 0.0);  // AllGather landing buffer exists
}

TEST(MemoryModel, DchagLinearTreeSmallerThanCrossTree) {
  // Paper Fig. 9/13: -L outperforms -C because linear layers carry fewer
  // parameters and no quadratic score memory.
  Workload w{8, 512, true};
  const auto dl = estimate_memory(small(), w, {4, 1, 1},
                                  DchagSpec::tree(1, AggLayerKind::kLinear));
  const auto dc = estimate_memory(
      small(), w, {4, 1, 1}, DchagSpec::tree(1, AggLayerKind::kCrossAttention));
  EXPECT_LT(dl.aggregation_act_gb, dc.aggregation_act_gb);
  EXPECT_LT(dl.aggregation_state_gb, dc.aggregation_state_gb);
}

TEST(MemoryModel, DeeperTreesReducePeakScoresButAddState) {
  // Paper §3.2: deeper hierarchy -> smaller per-layer score memory but
  // more parameters.
  Workload w{8, 1024, true};
  const auto t1 = estimate_memory(
      small(), w, {2, 1, 1}, DchagSpec::tree(1, AggLayerKind::kCrossAttention));
  const auto t8 = estimate_memory(
      small(), w, {2, 1, 1}, DchagSpec::tree(8, AggLayerKind::kCrossAttention));
  EXPECT_LT(t8.aggregation_act_gb, t1.aggregation_act_gb);
  EXPECT_GT(t8.aggregation_state_gb, t1.aggregation_state_gb);
}

TEST(MemoryModel, DistributedTokenizationNegatesItsOwnGains) {
  // Paper Fig. 8: the full-token AllGather makes §3.1 alone no better
  // than the baseline at 512 channels.
  ModelConfig cfg = small();
  Workload w{21, 512, true};
  const auto base = estimate_memory(cfg, w, {2, 1, 1}, DchagSpec::off());
  const auto dist =
      estimate_memory_distributed_tokenization(cfg, w, {2, 1, 1});
  EXPECT_GT(dist.total_gb(), 0.95 * base.total_gb());
  // ...but its tokenization-only share is genuinely smaller (red vs green
  // bars in Fig. 8).
  EXPECT_LT(dist.tokenizer_act_gb + dist.tokenizer_state_gb,
            base.tokenizer_act_gb + base.tokenizer_state_gb);
}

TEST(MemoryModel, CheckpointingReducesTransformerActivations) {
  Workload on{8, 64, true};
  Workload off{8, 64, false};
  const auto m_on = estimate_memory(small(), on, {1, 1, 1}, DchagSpec::off());
  const auto m_off =
      estimate_memory(small(), off, {1, 1, 1}, DchagSpec::off());
  EXPECT_LT(m_on.transformer_act_gb, 0.3 * m_off.transformer_act_gb);
}

TEST(MemoryModel, MinFeasibleTpMonotonicInChannels) {
  ModelConfig cfg = small();
  int prev = 1;
  for (Index c : {128, 256, 512, 1024}) {
    Workload w{21, c, true};
    const int tp = min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 64);
    ASSERT_GT(tp, 0) << "channels=" << c;
    EXPECT_GE(tp, prev) << "channels=" << c;
    prev = tp;
  }
}

TEST(MemoryModel, MinFeasibleTpReturnsMinusOneWhenImpossible) {
  ModelConfig cfg = ModelConfig::preset("26B");
  Workload w{26, 256, true};
  EXPECT_EQ(min_feasible_tp(cfg, w, DchagSpec::off(), kFrontier, 16), -1);
}

TEST(MemoryModel, MaxBatchPositiveAndTight) {
  ModelConfig cfg = small();
  const Index b =
      max_batch_per_gpu(cfg, 256, {2, 1, 1}, DchagSpec::off(), kFrontier);
  ASSERT_GT(b, 0);
  Workload at{b, 256, true};
  Workload over{b + 1, 256, true};
  EXPECT_TRUE(fits(estimate_memory(cfg, at, {2, 1, 1}, DchagSpec::off()),
                   kFrontier));
  EXPECT_FALSE(fits(estimate_memory(cfg, over, {2, 1, 1}, DchagSpec::off()),
                    kFrontier));
}

TEST(MemoryModel, DchagAllowsLargerBatchThanBaseline) {
  // The memory freed by D-CHAG converts into batch (paper Fig. 15).
  ModelConfig cfg = ModelConfig::preset("7B");
  const Index base_b =
      max_batch_per_gpu(cfg, 512, {16, 1, 1}, DchagSpec::off(), kFrontier);
  const Index dchag_b = max_batch_per_gpu(
      cfg, 512, {16, 1, 1}, DchagSpec::tree(1, AggLayerKind::kLinear),
      kFrontier);
  EXPECT_GT(dchag_b, base_b);
}

TEST(MemoryModel, RejectsBadInputs) {
  Workload w{8, 0, true};
  EXPECT_THROW(estimate_memory(small(), w, {1, 1, 1}, DchagSpec::off()),
               Error);
  Workload w2{8, 100, true};  // 100 % 8 != 0
  EXPECT_THROW(estimate_memory(small(), w2, {8, 1, 1},
                               DchagSpec::tree(1, AggLayerKind::kLinear)),
               Error);
}

}  // namespace
}  // namespace dchag::hw
