#include "tensor/autograd.hpp"

#include <gtest/gtest.h>

#include "tensor/module.hpp"
#include "tensor/rng.hpp"
#include "testing/gradcheck.hpp"

namespace dchag::autograd {
namespace {

using dchag::testing::gradcheck;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

constexpr float kTol = 2e-2f;  // relative error budget for fp32 central FD

TEST(Autograd, BackwardRequiresScalar) {
  Variable v = Variable::param(Tensor(Shape{2}, 1.0f));
  EXPECT_THROW(v.backward(), Error);
}

TEST(Autograd, SimpleChainRule) {
  // loss = sum(2 * x); dloss/dx = 2
  Variable x = Variable::param(Tensor(Shape{3}, 1.0f));
  Variable loss = sum_all(scale(x, 2.0f));
  loss.backward();
  EXPECT_EQ(loss.value().item(), 6.0f);
  for (float g : x.grad().span()) EXPECT_EQ(g, 2.0f);
}

TEST(Autograd, GradAccumulatesAcrossUses) {
  // loss = sum(x) + sum(x) => grad 2 per element
  Variable x = Variable::param(Tensor(Shape{4}, 1.0f));
  Variable loss = add(sum_all(x), sum_all(x));
  loss.backward();
  for (float g : x.grad().span()) EXPECT_EQ(g, 2.0f);
}

TEST(Autograd, NoGradForInputs) {
  Variable x = Variable::input(Tensor(Shape{3}, 1.0f));
  Variable p = Variable::param(Tensor(Shape{3}, 2.0f));
  Variable loss = sum_all(mul(x, p));
  loss.backward();
  EXPECT_FALSE(x.has_grad());
  EXPECT_TRUE(p.has_grad());
}

TEST(Autograd, DetachCutsGraph) {
  Variable p = Variable::param(Tensor(Shape{3}, 2.0f));
  Variable loss = sum_all(mul(p.detach(), p));
  loss.backward();
  // Only the non-detached path contributes: grad = detached value = 2.
  for (float g : p.grad().span()) EXPECT_EQ(g, 2.0f);
}

TEST(Autograd, ZeroGradClears) {
  Variable x = Variable::param(Tensor(Shape{2}, 1.0f));
  sum_all(x).backward();
  EXPECT_TRUE(x.has_grad());
  x.zero_grad();
  EXPECT_FALSE(x.has_grad());
}

// ----- finite-difference checks per op ---------------------------------------

TEST(GradCheck, AddWithBroadcastBias) {
  Rng rng(1);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(mul(add(v[0], v[1]), add(v[0], v[1])));
  };
  float err = gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{2, 3})),
                             Variable::param(rng.normal_tensor(Shape{3}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, SubAndMul) {
  Rng rng(2);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(mul(sub(v[0], v[1]), v[0]));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{4})),
                     Variable::param(rng.normal_tensor(Shape{4}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MatmulBothSides) {
  Rng rng(3);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(matmul(v[0], v[1]));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{3, 4})),
                     Variable::param(rng.normal_tensor(Shape{4, 2}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MatmulBatchedSharedWeight) {
  Rng rng(4);
  auto fn = [](const std::vector<Variable>& v) {
    Variable y = matmul(v[0], v[1]);  // [2,3,4]x[4,2] shared weight
    return mean_all(mul(y, y));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{2, 3, 4})),
                     Variable::param(rng.normal_tensor(Shape{4, 2}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MatmulBatchedBothBatched) {
  Rng rng(5);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(matmul(v[0], v[1]));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{2, 3, 4})),
                     Variable::param(rng.normal_tensor(Shape{2, 4, 2}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, ReshapePermuteChain) {
  Rng rng(6);
  auto fn = [](const std::vector<Variable>& v) {
    Variable y = permute(reshape(v[0], Shape{2, 3, 2}), {1, 0, 2});
    return sum_all(mul(y, y));
  };
  float err = gradcheck(
      fn, {Variable::param(rng.normal_tensor(Shape{2, 6}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, TransposeLast2) {
  Rng rng(7);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(matmul(v[0], transpose_last2(v[0])));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{3, 4}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, SoftmaxLastDim) {
  Rng rng(8);
  Tensor w = rng.normal_tensor(Shape{3, 5});
  auto fn = [w](const std::vector<Variable>& v) {
    return sum_all(mul(softmax_lastdim(v[0]), Variable::input(w)));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{3, 5}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, Gelu) {
  Rng rng(9);
  auto fn = [](const std::vector<Variable>& v) {
    return sum_all(gelu(v[0]));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{16}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, LayerNormAllThreeInputs) {
  Rng rng(10);
  Tensor w = rng.normal_tensor(Shape{4, 8});
  auto fn = [w](const std::vector<Variable>& v) {
    return sum_all(mul(layernorm(v[0], v[1], v[2]), Variable::input(w)));
  };
  float err = gradcheck(
      fn, {Variable::param(rng.normal_tensor(Shape{4, 8}, 0.0f, 2.0f)),
           Variable::param(rng.normal_tensor(Shape{8}, 1.0f, 0.1f)),
           Variable::param(rng.normal_tensor(Shape{8}))});
  EXPECT_LT(err, 5e-2f);  // layernorm FD is noisier (rsqrt nonlinearity)
}

TEST(GradCheck, ConcatAndSlice) {
  Rng rng(11);
  auto fn = [](const std::vector<Variable>& v) {
    std::vector<Variable> parts{v[0], v[1]};
    Variable c = concat(parts, 1);
    Variable s = slice(c, 1, 1, 3);
    return sum_all(mul(s, s));
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{2, 2})),
                     Variable::param(rng.normal_tensor(Shape{2, 3}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, SumMeanDimExpand) {
  Rng rng(12);
  auto fn = [](const std::vector<Variable>& v) {
    Variable m = mean_dim(v[0], 1);        // [2,4,3] -> [2,3]
    Variable e = expand_dim(m, 1, 4);      // back to [2,4,3]
    Variable d = sub(v[0], e);
    return sum_all(mul(d, d));
  };
  float err = gradcheck(
      fn, {Variable::param(rng.normal_tensor(Shape{2, 4, 3}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MseLoss) {
  Rng rng(13);
  Tensor target = rng.normal_tensor(Shape{3, 4});
  auto fn = [target](const std::vector<Variable>& v) {
    return mse_loss(v[0], target);
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{3, 4}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MaskedMseLoss) {
  Rng rng(14);
  Tensor target = rng.normal_tensor(Shape{3, 4});
  Tensor mask(Shape{3, 4});
  for (tensor::Index i = 0; i < mask.numel(); ++i)
    mask.data()[i] = (i % 3 == 0) ? 1.0f : 0.0f;
  auto fn = [target, mask](const std::vector<Variable>& v) {
    return masked_mse_loss(v[0], target, mask);
  };
  float err =
      gradcheck(fn, {Variable::param(rng.normal_tensor(Shape{3, 4}))});
  EXPECT_LT(err, kTol);
}

TEST(GradCheck, MaskedMseIgnoresUnmaskedElements) {
  Rng rng(15);
  Tensor target(Shape{4}, 0.0f);
  Tensor mask = Tensor::from_data(Shape{4}, {1, 0, 0, 1});
  Variable pred = Variable::param(rng.normal_tensor(Shape{4}));
  Variable loss = masked_mse_loss(pred, target, mask);
  loss.backward();
  EXPECT_NE(pred.grad().at({0}), 0.0f);
  EXPECT_EQ(pred.grad().at({1}), 0.0f);
  EXPECT_EQ(pred.grad().at({2}), 0.0f);
}

TEST(GradCheck, EmptyMaskThrows) {
  Tensor target(Shape{2}, 0.0f);
  Tensor mask(Shape{2}, 0.0f);
  Variable pred = Variable::param(Tensor(Shape{2}, 1.0f));
  EXPECT_THROW(masked_mse_loss(pred, target, mask), Error);
}

// ----- Module / Linear / LayerNorm layers -----------------------------------

TEST(Module, LinearForwardMatchesManual) {
  Rng rng(16);
  Linear lin(4, 3, rng);
  Tensor x = rng.normal_tensor(Shape{2, 4});
  Variable y = lin.forward(Variable::input(x));
  Tensor manual = tensor::ops::add(
      tensor::ops::matmul(x, lin.weight().value()), lin.bias().value());
  EXPECT_LT(tensor::ops::max_abs_diff(y.value(), manual), 1e-6f);
}

TEST(Module, ParametersEnumeratedInOrder) {
  Rng rng(17);
  Linear lin(4, 3, rng, "l0");
  auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name(), "l0.weight");
  EXPECT_EQ(params[1].name(), "l0.bias");
  EXPECT_EQ(lin.num_parameters(), 4 * 3 + 3);
}

TEST(Module, LinearGradcheck) {
  Rng rng(18);
  Linear lin(3, 2, rng);
  Tensor x = rng.normal_tensor(Shape{4, 3});
  auto params = lin.parameters();
  auto fn = [&lin, x](const std::vector<Variable>& v) {
    // Rebind: construct the same computation from the leaf list.
    Variable y = add(matmul(Variable::input(x), v[0]), v[1]);
    return sum_all(mul(y, y));
  };
  float err = gradcheck(fn, {params[0], params[1]});
  EXPECT_LT(err, kTol);
}

TEST(Module, LayerNormModuleGradFlows) {
  Rng rng(19);
  LayerNorm ln(8);
  Variable x = Variable::param(rng.normal_tensor(Shape{3, 8}));
  Variable loss = sum_all(mul(ln.forward(x), ln.forward(x)));
  loss.backward();
  EXPECT_TRUE(x.has_grad());
  auto params = ln.parameters();
  EXPECT_TRUE(params[0].has_grad());
  EXPECT_TRUE(params[1].has_grad());
}

TEST(Module, ZeroGradClearsAllParams) {
  Rng rng(20);
  Linear lin(3, 3, rng);
  Variable y = lin.forward(Variable::input(rng.normal_tensor(Shape{2, 3})));
  sum_all(y).backward();
  lin.zero_grad();
  for (const Variable& p : lin.parameters()) EXPECT_FALSE(p.has_grad());
}

}  // namespace
}  // namespace dchag::autograd
