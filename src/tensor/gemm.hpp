// Cache-blocked single-precision GEMM: C += A * B on row-major buffers.
// BLIS-style loop structure — NC/KC/MC tiling with A packed into MR-row
// panels and B into NR-column panels, finished by an MR x NR register
// micro-kernel. This translation unit alone is compiled with AVX2+FMA
// when the toolchain supports it (see src/tensor/CMakeLists.txt);
// kernel_config.cpp gates dispatch on a runtime CPUID check so a binary
// built that way still runs (naive backend) on older x86-64.
//
// Determinism contract: for a fixed (M, N, K) the accumulation order of
// every C element is fixed — independent of how callers partition rows
// across threads — so the blocked and parallel backends are bit-identical.
#pragma once

#include "tensor/shape.hpp"

namespace dchag::tensor::gemm {

/// C[M,N] += A[M,K] * B[K,N]; lda/ldb/ldc are row strides. Callers hand
/// in zeroed C for a plain product. Safe for any sizes >= 0, including
/// empty dimensions and shapes far from the tile sizes.
void gemm_blocked(Index M, Index N, Index K, const float* A, Index lda,
                  const float* B, Index ldb, float* C, Index ldc);

/// True when this TU was built with AVX2/FMA codegen (x86-64 only).
[[nodiscard]] bool compiled_with_avx2();

}  // namespace dchag::tensor::gemm
