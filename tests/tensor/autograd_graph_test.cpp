// Graph-shape stress tests for the autograd engine: diamonds, deep
// chains, shared subexpressions, repeated backward calls.
#include <gtest/gtest.h>

#include "tensor/autograd.hpp"
#include "tensor/rng.hpp"

namespace dchag::autograd {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(AutogradGraph, DiamondAccumulatesBothPaths) {
  // y = a*x;  z = b*x;  loss = sum(y + z) => dx = a + b.
  Variable x = Variable::param(Tensor(Shape{3}, 1.0f));
  Variable y = scale(x, 2.0f);
  Variable z = scale(x, 5.0f);
  sum_all(add(y, z)).backward();
  for (float g : x.grad().span()) EXPECT_EQ(g, 7.0f);
}

TEST(AutogradGraph, SharedSubexpressionEvaluatedOnce) {
  // s = x*x used twice: loss = sum(s) + sum(s) => dx = 4x.
  Variable x = Variable::param(Tensor(Shape{4}, 3.0f));
  Variable s = mul(x, x);
  add(sum_all(s), sum_all(s)).backward();
  for (float g : x.grad().span()) EXPECT_EQ(g, 12.0f);
}

TEST(AutogradGraph, DeepChainGradientExact) {
  // 64 successive halvings: d/dx of sum(x / 2^64) = 2^-64.
  Variable x = Variable::param(Tensor(Shape{2}, 1.0f));
  Variable h = x;
  for (int i = 0; i < 64; ++i) h = scale(h, 0.5f);
  sum_all(h).backward();
  const float expected = std::pow(0.5f, 64.0f);
  for (float g : x.grad().span()) EXPECT_FLOAT_EQ(g, expected);
}

TEST(AutogradGraph, WideFanOutConcat) {
  // x sliced into 8 pieces, each scaled differently, re-concatenated.
  Variable x = Variable::param(Tensor(Shape{8, 2}, 1.0f));
  std::vector<Variable> parts;
  for (int i = 0; i < 8; ++i)
    parts.push_back(scale(slice(x, 0, i, 1), static_cast<float>(i)));
  sum_all(concat(parts, 0)).backward();
  for (tensor::Index r = 0; r < 8; ++r) {
    EXPECT_EQ(x.grad().at({r, 0}), static_cast<float>(r));
  }
}

TEST(AutogradGraph, SecondBackwardAccumulatesIntoGrad) {
  // Calling backward twice (without zero_grad) doubles the gradient —
  // the accumulate contract optimizers rely on for grad accumulation.
  Variable x = Variable::param(Tensor(Shape{2}, 1.0f));
  Variable loss1 = sum_all(scale(x, 3.0f));
  loss1.backward();
  Variable loss2 = sum_all(scale(x, 3.0f));
  loss2.backward();
  for (float g : x.grad().span()) EXPECT_EQ(g, 6.0f);
}

TEST(AutogradGraph, MixedRequiresGradSubgraphs) {
  Rng rng(1);
  Variable frozen = Variable::input(rng.normal_tensor(Shape{3, 3}));
  Variable live = Variable::param(rng.normal_tensor(Shape{3, 3}));
  Variable out = matmul(frozen, matmul(live, frozen));
  sum_all(out).backward();
  EXPECT_TRUE(live.has_grad());
  EXPECT_FALSE(frozen.has_grad());
}

TEST(AutogradGraph, GraphFreedAfterVariablesDropped) {
  // Nodes are shared_ptr-owned by their consumers; dropping the loss
  // releases the tape (no leak tooling here, but use_count must drop).
  Variable x = Variable::param(Tensor(Shape{2}, 1.0f));
  std::weak_ptr<Node> probe;
  {
    Variable y = scale(x, 2.0f);
    probe = y.node();
    Variable loss = sum_all(y);
    EXPECT_FALSE(probe.expired());
  }
  EXPECT_TRUE(probe.expired());
}

TEST(AutogradGraph, LongAlternatingOpChainGradcheckFree) {
  // Analytic gradient through a 20-op alternating chain has a closed
  // form: d/dx sum(((x*2)+1)*2+1...) with 10 rounds => 2^10 per element.
  Variable x = Variable::param(Tensor(Shape{3}, 0.1f));
  Variable h = x;
  for (int i = 0; i < 10; ++i) {
    h = scale(h, 2.0f);
    h = add(h, Variable::input(Tensor(Shape{3}, 1.0f)));
  }
  sum_all(h).backward();
  for (float g : x.grad().span()) EXPECT_FLOAT_EQ(g, 1024.0f);
}

}  // namespace
}  // namespace dchag::autograd
