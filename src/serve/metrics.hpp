// Serving metrics: latency percentiles, throughput, queue depth, and
// per-stage timing. One Metrics instance per Server, shared by all worker
// threads behind a mutex — recording is O(1) per event; percentiles sort a
// copy on read (summary()), which is assumed rare relative to traffic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/check.hpp"

namespace dchag::serve {

class Metrics {
 public:
  struct Snapshot {
    std::uint64_t requests = 0;  ///< responses delivered
    std::uint64_t batches = 0;   ///< forwards executed
    std::uint64_t failed = 0;    ///< requests completed with an exception
    double mean_batch_size = 0.0;
    double p50_ms = 0.0;  ///< end-to-end request latency percentiles
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_queue_ms = 0.0;    ///< submit -> batch assembly
    double mean_forward_ms = 0.0;  ///< model forward per batch
    double requests_per_s = 0.0;   ///< over the recording window
    std::uint64_t max_queue_depth = 0;
    std::uint64_t recoveries = 0;  ///< rank failures healed (respawn done)
    double mean_recovery_ms = 0.0;  ///< failure detection -> heal ready
    std::uint64_t hedged_dispatches = 0;  ///< jobs re-dispatched past the
                                          ///< straggler hedge timeout
    std::uint64_t degraded_responses = 0;  ///< answers served from a
                                           ///< survivor channel subset
    std::uint64_t forward_allocations = 0;  ///< heap buffer allocations on
                                            ///< the forward path, summed
    std::uint64_t last_forward_allocations = 0;  ///< most recent batch; the
                                                 ///< steady-state-zero gauge

    [[nodiscard]] std::string to_string() const;
    /// /metrics-style exposition lines ("dchag_serve_<name> <value>",
    /// percentiles as quantile-labelled gauges) — what the ingress tier
    /// serves for kMetricsQuery.
    [[nodiscard]] std::string to_exposition() const;
  };

  void record_request(double total_ms, double queue_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    latencies_ms_.push_back(total_ms);
    queue_ms_sum_ += queue_ms;
  }

  /// `allocations` is the forward's heap-buffer count on the executing
  /// thread (tensor::plan::thread_buffer_allocations delta) — non-zero
  /// only during warm-up when the engine serves under a memory plan.
  void record_batch(std::uint64_t size, double forward_ms,
                    std::uint64_t allocations = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    batched_requests_ += size;
    forward_ms_sum_ += forward_ms;
    forward_allocations_ += allocations;
    last_forward_allocations_ = allocations;
  }

  void record_failure() {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
  }

  /// One completed elastic recovery: a failed rank was respawned and the
  /// world is back at full channel width. `recovery_ms` spans failure
  /// detection to heal-ready (degraded serving continues throughout).
  void record_recovery(double recovery_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    ++recoveries_;
    recovery_ms_sum_ += recovery_ms;
  }

  /// run() re-dispatched a job whose first pass was stuck past the hedge
  /// timeout (straggler or in-flight recovery).
  void record_hedged_dispatch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++hedged_dispatches_;
  }

  /// An answer served from the surviving channel subset of a degraded
  /// world (correct for those channels, narrower than requested inputs).
  void record_degraded_response() {
    std::lock_guard<std::mutex> lock(mu_);
    ++degraded_responses_;
  }

  void observe_queue_depth(std::uint64_t depth) {
    std::lock_guard<std::mutex> lock(mu_);
    max_queue_depth_ = std::max(max_queue_depth_, depth);
  }

  /// Wall-clock window for requests_per_s; set once serving starts and
  /// once it drains (idempotent: the window is [first_mark, last_mark]).
  void mark_window(double now_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_start_ms_ < 0.0) window_start_ms_ = now_ms;
    window_end_ms_ = now_ms;
  }

  [[nodiscard]] Snapshot summary() const {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.requests = requests_;
    s.batches = batches_;
    s.failed = failed_;
    s.max_queue_depth = max_queue_depth_;
    s.recoveries = recoveries_;
    s.hedged_dispatches = hedged_dispatches_;
    s.degraded_responses = degraded_responses_;
    s.forward_allocations = forward_allocations_;
    s.last_forward_allocations = last_forward_allocations_;
    if (recoveries_ > 0)
      s.mean_recovery_ms = recovery_ms_sum_ / static_cast<double>(recoveries_);
    if (batches_ > 0) {
      s.mean_batch_size = static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
      s.mean_forward_ms = forward_ms_sum_ / static_cast<double>(batches_);
    }
    if (requests_ > 0) {
      s.mean_queue_ms = queue_ms_sum_ / static_cast<double>(requests_);
      std::vector<double> sorted = latencies_ms_;
      std::sort(sorted.begin(), sorted.end());
      s.p50_ms = percentile(sorted, 0.50);
      s.p95_ms = percentile(sorted, 0.95);
      s.p99_ms = percentile(sorted, 0.99);
    }
    const double window_ms = window_end_ms_ - window_start_ms_;
    if (requests_ > 0 && window_ms > 0.0) {
      s.requests_per_s = static_cast<double>(requests_) / (window_ms / 1e3);
    }
    return s;
  }

 private:
  /// Nearest-rank percentile on a sorted sample.
  static double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto idx = static_cast<std::size_t>(q * (n - 1.0) + 0.5);
    idx = std::min(idx, sorted.size() - 1);
    return sorted[idx];
  }

  mutable std::mutex mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t hedged_dispatches_ = 0;
  std::uint64_t degraded_responses_ = 0;
  std::uint64_t forward_allocations_ = 0;
  std::uint64_t last_forward_allocations_ = 0;
  double recovery_ms_sum_ = 0.0;
  double queue_ms_sum_ = 0.0;
  double forward_ms_sum_ = 0.0;
  double window_start_ms_ = -1.0;
  double window_end_ms_ = -1.0;
  std::vector<double> latencies_ms_;
};

}  // namespace dchag::serve
