// SPMD D-CHAG serving workers over the in-process comm::World runtime.
//
// The engine owns one long-lived World whose rank threads each construct
// their own rank-local model (via the factory) once, then loop on a shared
// job slot: every rank reads the same full batch, slices its own channels
// (DchagFrontEnd does this internally, including the partial-channel
// subset path), runs the tape-free forward — whose final aggregation
// output is replicated across ranks — and rank 0 publishes the result.
// Construction cost (tokenizer/tree weights per rank) is paid once at
// cold start, not per batch.
#pragma once

#include <memory>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "runtime/context.hpp"
#include "serve/engine.hpp"

namespace dchag::serve {

/// Structural knobs for the engine's internal World. Execution policy —
/// comm mode, kernel backend, and the fault plan installed on the World
/// — lives in the runtime::Context the engine is constructed with; rank
/// threads scope into that context, so the factory's front-ends inherit
/// it unless the factory pins its own.
struct SpmdEngineConfig {
#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context fault slot; overlays the Context's fault_plan. The
  /// serving path must stay live and deadlock-free under a plan; tests
  /// assert tail-latency metrics still populate.
  /// Deprecated: use ContextBuilder::fault_plan on the engine Context.
  std::shared_ptr<const comm::FaultPlan> fault_plan;
#endif
};

class SpmdEngine {
 public:
  /// Builds this rank's model; called once per rank inside the world. All
  /// ranks must construct replicated parameters from the same master seed
  /// (or load the same checkpoint shards) — the usual D-CHAG contract.
  using RankModelFactory =
      std::function<std::unique_ptr<model::ForecastModel>(
          comm::Communicator&)>;

  /// Spawns `ranks` worker ranks and blocks until every rank's model is
  /// constructed (cold start). Throws if any rank fails to construct.
  ///
  /// `ctx` (default: the CONSTRUCTING thread's effective context) is the
  /// engine's execution context: its fault_plan installs on the World
  /// and every rank thread scopes into it, so caller-side overrides
  /// reach the rank-local forwards by construction.
  SpmdEngine(int ranks, RankModelFactory factory, SpmdEngineConfig cfg = {},
             const runtime::Context& ctx = runtime::Context::current());
  ~SpmdEngine();
  SpmdEngine(const SpmdEngine&) = delete;
  SpmdEngine& operator=(const SpmdEngine&) = delete;

  /// Runs one batched forward across all ranks. `images` is the FULL batch
  /// [B, C, H, W] for full-channel requests (each rank takes its slice) or
  /// the full subset batch [B, W, H, W] when `channels` names a subset.
  /// Serialized: concurrent callers queue on an internal mutex (the world
  /// is one SPMD pipeline). A forward that throws (e.g. an out-of-range
  /// channel id) rethrows here but leaves the world serving — model
  /// validation runs on identical inputs on every rank, so such failures
  /// are uniform and the ranks stay in step.
  [[nodiscard]] Tensor run(const Tensor& images,
                           const std::vector<Index>& channels,
                           float lead_time);

  [[nodiscard]] InferenceFn inference_fn();

  [[nodiscard]] int ranks() const { return ranks_; }

 private:
  struct Job {
    const Tensor* images = nullptr;
    const std::vector<Index>* channels = nullptr;
    float lead_time = 1.0f;
  };

  void stop_and_join();

  int ranks_;
  runtime::Context ctx_;
  std::thread world_thread_;

  std::mutex run_mu_;  // serializes run() callers
  std::mutex mu_;      // guards everything below
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  Job job_;
  Tensor result_;
  std::exception_ptr job_error_;  ///< failure of the last job, if any
  std::uint64_t job_seq_ = 0;
  std::uint64_t done_seq_ = 0;
  int ready_ranks_ = 0;
  int failed_ranks_ = 0;  ///< ranks whose model factory threw
  bool stop_ = false;
  std::exception_ptr failure_;  ///< fatal: the world itself died
};

}  // namespace dchag::serve
