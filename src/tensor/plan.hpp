// Static memory plan for the tape-free serving forward: a size-keyed
// arena of aligned, reusable tensor buffers.
//
// A forward pass builds the same graph every request, so the multiset of
// buffer sizes it allocates is identical from one request to the next.
// Installing an ArenaScope on the serving thread reroutes every Tensor
// construction on that thread through the arena: the first request per
// (batch, channel-subset) lane populates the pool (warm-up), and every
// later request draws exclusively from it — zero heap allocations in
// steady state, which tests and the serving bench gate on via
// thread_buffer_allocations().
//
// Lifetime: buffers carry a deleter owning a reference to the arena's
// shared state, so result tensors that escape the scope (responses, the
// SPMD published result) stay valid past the arena — and still return
// their buffer to the pool when the last Tensor referencing it dies.
// The pool itself is mutex-protected: one Engine-owned arena is shared
// by every server worker thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/align.hpp"
#include "tensor/shape.hpp"

namespace dchag::tensor::plan {

/// Physical buffer allocations (operator new of an AlignedVec) performed
/// on the CALLING thread since it started — arena reuses do not count.
/// The serving steady-state contract is that this stays flat across a
/// warmed-up forward.
[[nodiscard]] std::uint64_t thread_buffer_allocations();

class Arena {
 public:
  struct Stats {
    std::uint64_t fresh = 0;   ///< pool misses (heap allocations)
    std::uint64_t reused = 0;  ///< pool hits
    std::uint64_t pooled = 0;  ///< buffers currently parked in the pool
  };

  Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() = default;  // outstanding buffers keep the shared state alive

  /// A zero-filled buffer of exactly `n` floats, pooled if available.
  [[nodiscard]] std::shared_ptr<AlignedVec> acquire(Index n);
  /// Same, but contents are unspecified (reused buffers keep stale data);
  /// callers must overwrite every element.
  [[nodiscard]] std::shared_ptr<AlignedVec> acquire_raw(Index n);

  [[nodiscard]] Stats stats() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// RAII: routes Tensor buffer acquisition on this thread through `arena`
/// for the scope's lifetime. Nests; restores the previous arena (or none)
/// on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

namespace detail {
/// Tensor's allocation hook: the active arena's acquire (zeroed /
/// uninitialised) when an ArenaScope is installed on this thread, a plain
/// counted heap allocation otherwise.
[[nodiscard]] std::shared_ptr<AlignedVec> acquire_buffer(Index n);
[[nodiscard]] std::shared_ptr<AlignedVec> acquire_buffer_raw(Index n);
}  // namespace detail

}  // namespace dchag::tensor::plan
