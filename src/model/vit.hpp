// Vision Transformer encoder operating on the aggregated spatial tokens
// (paper Fig. 1, right): standard pre-LN blocks with MHSA + GELU MLP.
#pragma once

#include <memory>
#include <vector>

#include "model/attention.hpp"

namespace dchag::model {

class ViTBlock : public Module {
 public:
  ViTBlock(const ModelConfig& cfg, Rng& rng, const std::string& name);

  /// x: [B, S, D] -> [B, S, D].
  [[nodiscard]] Variable forward(const Variable& x) const;
  /// forward(x) with `final_ln` applied to the result, the norm fused into
  /// the closing MLP projection's GEMM tail when frozen for serving (the
  /// encoder runs its last block through this).
  [[nodiscard]] Variable forward_post_ln(const Variable& x,
                                         const LayerNorm& final_ln) const;

 private:
  std::unique_ptr<LayerNorm> ln1_, ln2_;
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<Linear> mlp_up_, mlp_down_;
};

class ViTEncoder : public Module {
 public:
  ViTEncoder(const ModelConfig& cfg, Rng& rng,
             const std::string& name = "vit");

  /// x: [B, S, D] -> [B, S, D].
  [[nodiscard]] Variable forward(const Variable& x) const;

  [[nodiscard]] Index num_blocks() const {
    return static_cast<Index>(blocks_.size());
  }

 private:
  std::vector<std::unique_ptr<ViTBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
};

}  // namespace dchag::model
