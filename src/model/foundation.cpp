#include "model/foundation.hpp"

#include <cmath>

namespace dchag::model {

namespace ops = tensor::ops;

LocalFrontEnd::LocalFrontEnd(const ModelConfig& cfg, Index channels,
                             std::unique_ptr<ChannelAggregator> agg,
                             Rng& rng)
    : tokenizer_(std::make_unique<PatchTokenizer>(cfg, channels, rng)),
      agg_(std::move(agg)) {
  DCHAG_CHECK(agg_ != nullptr, "LocalFrontEnd needs an aggregator");
  DCHAG_CHECK(agg_->width() == channels,
              "aggregator width " << agg_->width() << " != channels "
                                  << channels);
  register_child(*tokenizer_);
  register_child(*agg_);
}

Variable LocalFrontEnd::forward(const Tensor& images) const {
  Variable tokens = tokenizer_->forward(images);       // [B, C, S, D]
  Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});  // [B, S, C, D]
  return agg_->forward(bscd);                          // [B, S, D]
}

Variable FrontEnd::forward_subset(const Tensor& images,
                                  std::span<const Index> channels) const {
  (void)images;
  (void)channels;
  DCHAG_FAIL("this front-end does not support channel-subset inference");
}

Variable LocalFrontEnd::forward_subset(
    const Tensor& images, std::span<const Index> channels) const {
  // One id->position mapping feeds both the tokenizer and the aggregator
  // slots (identity positions for the usual 0..C-1 tokenizer).
  const std::vector<Index> positions = tokenizer_->local_positions(channels);
  Variable tokens = tokenizer_->forward_at_positions(images, positions);
  Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});  // [B, S, W, D]
  return agg_->forward_subset(bscd, positions);
}

std::unique_ptr<LocalFrontEnd> make_baseline_frontend(const ModelConfig& cfg,
                                                      Index channels,
                                                      Rng& rng) {
  auto agg = std::make_unique<CrossAttentionAggregator>(
      cfg.embed_dim, cfg.num_heads, channels, cfg.query_mode, rng,
      "baseline.xattn");
  return std::make_unique<LocalFrontEnd>(cfg, channels, std::move(agg), rng);
}

Tensor to_prediction_layout(const Tensor& patches) {
  DCHAG_CHECK(patches.rank() == 4, "expected [B, C, S, p2]");
  const Index B = patches.dim(0);
  const Index C = patches.dim(1);
  const Index S = patches.dim(2);
  const Index p2 = patches.dim(3);
  return ops::permute(patches, {0, 2, 1, 3}).reshape({B, S, C * p2});
}

Tensor from_prediction_layout(const Tensor& pred, Index channels,
                              Index patch) {
  DCHAG_CHECK(pred.rank() == 3, "expected [B, S, C*p2]");
  const Index B = pred.dim(0);
  const Index S = pred.dim(1);
  const Index p2 = patch * patch;
  DCHAG_CHECK(pred.dim(2) == channels * p2, "prediction layout mismatch");
  return ops::permute(pred.reshape({B, S, channels, p2}), {0, 2, 1, 3});
}

// ----- MAE -------------------------------------------------------------------

MaeModel::MaeModel(const ModelConfig& cfg, std::unique_ptr<FrontEnd> frontend,
                   Index target_channels, Rng& rng)
    : cfg_(cfg),
      target_channels_(target_channels),
      frontend_(std::move(frontend)) {
  Rng r = rng.fork(0xAE);
  encoder_ = std::make_unique<ViTEncoder>(cfg_, r);
  head_ = std::make_unique<Linear>(
      cfg_.embed_dim, target_channels * cfg_.patch_size * cfg_.patch_size, r,
      "mae.head");
  register_child(*frontend_);
  register_child(*encoder_);
  register_child(*head_);
  mask_token_ = register_param(
      "mae.mask_token",
      r.normal_tensor(tensor::Shape{cfg_.embed_dim}, 0.0f, 0.02f));
}

Tensor MaeModel::make_mask(Index batch, Index seq, float mask_ratio,
                           Rng& rng) {
  DCHAG_CHECK(mask_ratio > 0.0f && mask_ratio < 1.0f,
              "mask_ratio must be in (0, 1)");
  Tensor mask(tensor::Shape{batch, seq});
  const Index per_row =
      std::max<Index>(1, static_cast<Index>(std::round(
                             mask_ratio * static_cast<float>(seq))));
  for (Index b = 0; b < batch; ++b) {
    // Partial Fisher-Yates: choose per_row distinct positions.
    std::vector<Index> idx(static_cast<std::size_t>(seq));
    for (Index i = 0; i < seq; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (Index i = 0; i < per_row; ++i) {
      const Index j = rng.uniform_int(i, seq - 1);
      std::swap(idx[static_cast<std::size_t>(i)],
                idx[static_cast<std::size_t>(j)]);
      mask.set({b, idx[static_cast<std::size_t>(i)]}, 1.0f);
    }
  }
  return mask;
}

MaeModel::Output MaeModel::forward(const Tensor& local_images,
                                   const Tensor& full_images,
                                   const Tensor& mask) const {
  const Index B = local_images.dim(0);
  const Index S = cfg_.seq_len();
  DCHAG_CHECK(mask.shape() == tensor::Shape({B, S}),
              "mask must be [B, S], got " << mask.shape().to_string());
  Variable tokens = frontend_->forward(local_images);  // [B, S, D]

  // Replace masked positions with the learned mask token:
  // masked = tokens * (1 - m) + mask_token * m.
  Tensor m3 = ops::expand_dim(mask, 2, 1);  // [B, S, 1]
  Variable keep = autograd::mul(
      tokens, Variable::input(ops::add_scalar(ops::neg(m3), 1.0f)));
  Variable fill = autograd::mul(
      autograd::expand_dim(autograd::expand_dim(mask_token_, 0, S), 0, B),
      Variable::input(m3));
  Variable masked = autograd::add(keep, fill);

  Variable encoded = encoder_->forward(masked);
  Variable pred = head_->forward(encoded);  // [B, S, C*p2]

  Tensor target =
      to_prediction_layout(patchify(full_images, cfg_.patch_size));
  DCHAG_CHECK(target.shape() == pred.shape(),
              "MAE target/pred mismatch: " << target.shape().to_string()
                                           << " vs "
                                           << pred.shape().to_string());
  // Loss over masked patches only (all pixels of a masked patch).
  Tensor mask_px(pred.shape());
  const Index px = pred.shape().dim(2);
  for (Index b = 0; b < B; ++b) {
    for (Index s = 0; s < S; ++s) {
      if (mask.at({b, s}) == 0.0f) continue;
      float* row = mask_px.data() + (b * S + s) * px;
      for (Index i = 0; i < px; ++i) row[i] = 1.0f;
    }
  }
  Variable loss = autograd::masked_mse_loss(pred, target, mask_px);
  return {pred, loss};
}

// ----- Forecast --------------------------------------------------------------

ForecastModel::ForecastModel(const ModelConfig& cfg,
                             std::unique_ptr<FrontEnd> frontend,
                             Index target_channels, Rng& rng,
                             bool lead_conditioned)
    : cfg_(cfg),
      target_channels_(target_channels),
      lead_conditioned_(lead_conditioned),
      frontend_(std::move(frontend)) {
  Rng r = rng.fork(0xF0);
  encoder_ = std::make_unique<ViTEncoder>(cfg_, r);
  head_ = std::make_unique<Linear>(
      cfg_.embed_dim, target_channels * cfg_.patch_size * cfg_.patch_size, r,
      "forecast.head");
  register_child(*frontend_);
  register_child(*encoder_);
  register_child(*head_);
  if (lead_conditioned_) {
    lead_embed_ = std::make_unique<Linear>(kLeadFeatures, cfg_.embed_dim, r,
                                           "forecast.lead_embed");
    register_child(*lead_embed_);
  }
}

Variable ForecastModel::encode_and_project(Variable tokens,
                                           float lead_time) const {
  if (lead_conditioned_) {
    // Sinusoidal lead-time features at geometric frequencies, embedded to
    // D and broadcast-added to every token (the Fig. 1 metadata token).
    Tensor feats(tensor::Shape{1, kLeadFeatures});
    for (Index k = 0; k < kLeadFeatures / 2; ++k) {
      const float freq = std::pow(2.0f, static_cast<float>(k)) * 0.25f;
      feats.set({0, 2 * k}, std::sin(freq * lead_time));
      feats.set({0, 2 * k + 1}, std::cos(freq * lead_time));
    }
    Variable lead = lead_embed_->forward(Variable::input(feats));  // [1, D]
    tokens = autograd::add(tokens, lead);  // broadcast over [B, S, D]
  }
  return head_->forward(encoder_->forward(tokens));
}

ForecastModel::Output ForecastModel::forward(const Tensor& local_images,
                                             const Tensor& target_images,
                                             float lead_time) const {
  Variable pred =
      encode_and_project(frontend_->forward(local_images), lead_time);
  Tensor target =
      to_prediction_layout(patchify(target_images, cfg_.patch_size));
  Variable loss = autograd::mse_loss(pred, target);
  return {pred, loss};
}

Variable ForecastModel::predict(const Tensor& local_images,
                                float lead_time) const {
  return encode_and_project(frontend_->forward(local_images), lead_time);
}

Variable ForecastModel::predict_subset(const Tensor& images,
                                       std::span<const Index> channels,
                                       float lead_time) const {
  return encode_and_project(frontend_->forward_subset(images, channels),
                            lead_time);
}

std::vector<float> ForecastModel::per_channel_rmse(
    const Tensor& pred, const Tensor& target_images, Index patch) {
  const Index C = target_images.dim(1);
  Tensor pred_imgs = unpatchify(from_prediction_layout(pred, C, patch),
                                patch, target_images.dim(2),
                                target_images.dim(3));
  std::vector<float> rmse(static_cast<std::size_t>(C));
  const Index B = target_images.dim(0);
  const Index hw = target_images.dim(2) * target_images.dim(3);
  for (Index c = 0; c < C; ++c) {
    double se = 0.0;
    for (Index b = 0; b < B; ++b) {
      const float* p =
          pred_imgs.data() + (b * C + c) * hw;
      const float* t = target_images.data() + (b * C + c) * hw;
      for (Index i = 0; i < hw; ++i) {
        const double d = static_cast<double>(p[i]) - t[i];
        se += d * d;
      }
    }
    rmse[static_cast<std::size_t>(c)] =
        static_cast<float>(std::sqrt(se / static_cast<double>(B * hw)));
  }
  return rmse;
}

}  // namespace dchag::model
