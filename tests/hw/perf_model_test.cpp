#include "hw/perf_model.hpp"

#include <gtest/gtest.h>

namespace dchag::hw {
namespace {

const MachineSpec kFrontier = MachineSpec::frontier();

TEST(PerfModel, StepTimePositiveAndDecomposes) {
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w{8, 256, true};
  const auto est = estimate_step(cfg, w, {2, 1, 1}, DchagSpec::off(),
                                 kFrontier);
  EXPECT_GT(est.compute_s, 0.0);
  EXPECT_GT(est.tp_comm_s, 0.0);
  EXPECT_NEAR(est.step_s, est.compute_s + est.comm_s(), 1e-12);
  EXPECT_GT(est.sustained_tflops_per_gpu, 0.0);
  EXPECT_LT(est.sustained_tflops_per_gpu, kFrontier.gpu.peak_matrix_tflops);
}

TEST(PerfModel, NoTpCommWhenTpIsOne) {
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w{8, 128, true};
  const auto est =
      estimate_step(cfg, w, {1, 1, 1}, DchagSpec::off(), kFrontier);
  EXPECT_EQ(est.tp_comm_s, 0.0);
  EXPECT_EQ(est.fsdp_comm_s, 0.0);
  EXPECT_EQ(est.dp_comm_s, 0.0);
}

TEST(PerfModel, DchagRemovesRedundantTokenization) {
  // Baseline TP executes the full tokenizer on every rank; D-CHAG splits
  // it. At high channel counts this dominates, so D-CHAG's per-GPU
  // compute time must be lower.
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload w{21, 1024, true};
  const auto base =
      estimate_step(cfg, w, {8, 1, 1}, DchagSpec::off(), kFrontier);
  const auto d = estimate_step(cfg, w, {8, 1, 1},
                               DchagSpec::tree(1, AggLayerKind::kLinear),
                               kFrontier);
  EXPECT_LT(d.compute_s, base.compute_s);
  EXPECT_GT(d.sustained_tflops_per_gpu, base.sustained_tflops_per_gpu);
}

TEST(PerfModel, DchagFrontendCommIsSmall) {
  // D-CHAG's only front-end collective is one AllGather of a single
  // channel representation per rank — it must be a small fraction of the
  // TP block communication.
  ModelConfig cfg = ModelConfig::preset("7B");
  Workload w{16, 512, true};
  const auto d = estimate_step(cfg, w, {8, 1, 1},
                               DchagSpec::tree(1, AggLayerKind::kLinear),
                               kFrontier);
  EXPECT_GT(d.frontend_comm_s, 0.0);
  EXPECT_LT(d.frontend_comm_s, 0.1 * d.tp_comm_s);
}

TEST(PerfModel, FsdpAddsCommProportionalToParams) {
  ModelConfig small = ModelConfig::preset("1.7B");
  ModelConfig big = ModelConfig::preset("7B");
  Workload w{8, 128, true};
  const auto s =
      estimate_step(small, w, {1, 8, 1}, DchagSpec::off(), kFrontier);
  const auto b = estimate_step(big, w, {1, 8, 1}, DchagSpec::off(), kFrontier);
  EXPECT_GT(s.fsdp_comm_s, 0.0);
  EXPECT_GT(b.fsdp_comm_s, 2.0 * s.fsdp_comm_s);  // ~4x params
}

TEST(PerfModel, DpScalesThroughputNearLinearly) {
  // DP adds gradient AllReduce but multiplies the global batch: sustained
  // TFLOPs/GPU should stay within 25% of the DP=1 value while total
  // throughput grows.
  ModelConfig cfg = ModelConfig::preset("7B");
  Workload w{8, 128, true};
  const auto one =
      estimate_step(cfg, w, {8, 1, 1}, DchagSpec::off(), kFrontier);
  const auto eight =
      estimate_step(cfg, w, {8, 1, 8}, DchagSpec::off(), kFrontier);
  EXPECT_GT(eight.sustained_tflops_per_gpu,
            0.75 * one.sustained_tflops_per_gpu);
  EXPECT_GT(eight.useful_tflop_per_step, 7.0 * one.useful_tflop_per_step);
}

TEST(PerfModel, CheckpointingTradesComputeForMemory) {
  ModelConfig cfg = ModelConfig::preset("1.7B");
  Workload on{8, 128, true};
  Workload off{8, 128, false};
  const auto e_on =
      estimate_step(cfg, on, {2, 1, 1}, DchagSpec::off(), kFrontier);
  const auto e_off =
      estimate_step(cfg, off, {2, 1, 1}, DchagSpec::off(), kFrontier);
  EXPECT_GT(e_on.compute_s, e_off.compute_s);
}

TEST(PerfModel, MoreChannelsFavorDchagMore) {
  // Paper Fig. 13: "for a fixed model size, we observe better performance
  // gains as the number of channels increases".
  ModelConfig cfg = ModelConfig::preset("7B");
  double prev_gain = 0.0;
  for (Index c : {128, 256, 512}) {
    Workload w{16, c, true};
    const auto base =
        estimate_step(cfg, w, {8, 1, 1}, DchagSpec::off(), kFrontier);
    const auto d = estimate_step(cfg, w, {8, 1, 1},
                                 DchagSpec::tree(1, AggLayerKind::kLinear),
                                 kFrontier);
    const double gain =
        d.sustained_tflops_per_gpu / base.sustained_tflops_per_gpu;
    EXPECT_GT(gain, prev_gain) << "channels=" << c;
    prev_gain = gain;
  }
}

}  // namespace
}  // namespace dchag::hw
