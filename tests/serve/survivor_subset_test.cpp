// Degraded-serving property (elastic recovery, serve/spmd_engine): for
// EVERY non-empty survivor subset of a 4-rank world, the channel-subset
// forward over the survivor group — rebound via DchagFrontEnd::rebind
// with the original channel slots — matches the full-world forward over
// the same surviving channels bit-for-bit. This is the invariant that
// lets a degraded world keep answering during recovery.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/dchag_frontend.hpp"
#include "model/foundation.hpp"

namespace dchag::serve {
namespace {

namespace ops = tensor::ops;
using comm::Communicator;
using core::DchagFrontEnd;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

constexpr int kRanks = 4;
constexpr Index kChannels = 8;  // c_local = 2 per rank

std::vector<Index> slot_channels(const std::vector<int>& slots,
                                 Index c_local) {
  std::vector<Index> chans;
  for (int s : slots)
    for (Index c = 0; c < c_local; ++c)
      chans.push_back(static_cast<Index>(s) * c_local + c);
  return chans;
}

Tensor gather_channels(const Tensor& images, const std::vector<Index>& ids) {
  std::vector<Tensor> slabs;
  for (Index c : ids) slabs.push_back(ops::slice(images, 1, c, 1));
  return slabs.size() == 1 ? slabs.front() : ops::concat(slabs, 1);
}

TEST(SurvivorSubset, EveryNonEmptySurvivorSetMatchesFullWorldBitForBit) {
  const ModelConfig cfg = ModelConfig::tiny();
  const Tensor img = Rng(31).normal_tensor(Shape{2, kChannels, 16, 16});
  const Index c_local = kChannels / kRanks;

  for (unsigned mask = 1; mask < (1u << kRanks); ++mask) {
    std::vector<int> survivors;
    for (int r = 0; r < kRanks; ++r)
      if (mask & (1u << r)) survivors.push_back(r);
    const std::vector<Index> chans = slot_channels(survivors, c_local);
    const Tensor sub_img = gather_channels(img, chans);
    // A narrower request owned entirely by the FIRST survivor: on the
    // survivor group every other rank takes the empty-intersection
    // zero-placeholder path — the same path a degraded engine serves
    // full-channel requests through.
    const std::vector<Index> narrow =
        slot_channels({survivors.front()}, c_local);
    const Tensor narrow_img = gather_channels(img, narrow);

    comm::World world(kRanks);
    world.run([&](Communicator& comm) {
      autograd::NoGradGuard no_grad;
      Rng master(21);
      DchagFrontEnd fe(cfg, kChannels, comm,
                       {1, model::AggLayerKind::kLinear}, master);
      // Oracle: the healthy full-width group serving the same subsets.
      const Tensor full_sub = fe.forward_subset(sub_img, chans).value();
      const Tensor full_narrow =
          fe.forward_subset(narrow_img, narrow).value();
      if (!(mask & (1u << comm.rank()))) return;  // not a survivor

      Communicator surv = comm.split_survivors(survivors, "survivors");
      fe.rebind(surv, survivors);
      EXPECT_EQ(ops::max_abs_diff(fe.forward_subset(sub_img, chans).value(),
                                  full_sub),
                0.0f)
          << "mask " << mask << " rank " << comm.rank();
      EXPECT_EQ(
          ops::max_abs_diff(fe.forward_subset(narrow_img, narrow).value(),
                            full_narrow),
          0.0f)
          << "mask " << mask << " narrow on rank " << comm.rank();
    });
  }
}

}  // namespace
}  // namespace dchag::serve
