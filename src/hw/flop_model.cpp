#include "hw/flop_model.hpp"

namespace dchag::hw {

double FlopModel::tokenizer_flops(const ModelConfig& cfg, double batch,
                                  double channels) {
  const double S = static_cast<double>(cfg.seq_len());
  const double p2 = static_cast<double>(cfg.patch_size * cfg.patch_size);
  const double D = static_cast<double>(cfg.embed_dim);
  return 2.0 * batch * channels * S * p2 * D;
}

FlopModel::AggFlops FlopModel::aggregation_flops(const ModelConfig& cfg,
                                                 double batch, Index width,
                                                 AggLayerKind kind) {
  const double S = static_cast<double>(cfg.seq_len());
  const double D = static_cast<double>(cfg.embed_dim);
  const double W = static_cast<double>(width);
  if (kind == AggLayerKind::kLinear) {
    // Channel combine (B*S*W*D multiply-adds) + D x D projection.
    return {2.0 * batch * S * W * D, 2.0 * batch * S * D * D};
  }
  const double queries =
      cfg.query_mode == model::QueryMode::kChannelTokens ? W : 1.0;
  // QK^T and attn*V: 2 * (B*S) * queries * W * D each.
  const double scores = 2.0 * 2.0 * batch * S * queries * W * D;
  // q projection on `queries` tokens; k, v on W tokens; out on `queries`.
  const double proj = 2.0 * batch * S * (2.0 * queries + 2.0 * W) * D * D;
  return {scores, proj};
}

FlopModel::AggFlops FlopModel::tree_flops(const ModelConfig& cfg,
                                          double batch,
                                          const model::TreePlan& plan,
                                          AggLayerKind kind) {
  AggFlops total{0, 0};
  for (const auto& level : plan.level_widths) {
    for (Index w : level) {
      const AggFlops f = aggregation_flops(cfg, batch, w, kind);
      total.scores += f.scores;
      total.proj += f.proj;
    }
  }
  return total;
}

double FlopModel::transformer_flops(const ModelConfig& cfg, double batch) {
  const double S = static_cast<double>(cfg.seq_len());
  const double D = static_cast<double>(cfg.embed_dim);
  const double L = static_cast<double>(cfg.num_layers);
  const double r = static_cast<double>(cfg.mlp_ratio);
  // Per block: qkv+out projections (8*B*S*D^2), attention matmuls
  // (4*B*S^2*D), MLP (4r*B*S*D^2).
  return L * batch * S * ((8.0 + 4.0 * r) * D * D + 4.0 * S * D);
}

double FlopModel::head_flops(const ModelConfig& cfg, double batch,
                             double out_channels) {
  const double S = static_cast<double>(cfg.seq_len());
  const double D = static_cast<double>(cfg.embed_dim);
  const double p2 = static_cast<double>(cfg.patch_size * cfg.patch_size);
  return 2.0 * batch * S * D * out_channels * p2;
}

double FlopModel::logical_forward_flops(const ModelConfig& cfg, double batch,
                                        Index channels,
                                        const DchagSpec& dchag, int tp) {
  const double C = static_cast<double>(channels);
  double total = tokenizer_flops(cfg, batch, C) +
                 transformer_flops(cfg, batch) +
                 head_flops(cfg, batch, C);
  if (!dchag.enabled) {
    const AggFlops agg = aggregation_flops(cfg, batch, channels,
                                           AggLayerKind::kCrossAttention);
    return total + agg.scores + agg.proj;
  }
  const Index c_local = std::max<Index>(1, channels / tp);
  const Index width = model::tree_units_to_width(
      c_local, std::min<Index>(dchag.tree_units, c_local));
  const AggFlops tree =
      tree_flops(cfg, batch, model::plan_tree(c_local, width), dchag.kind);
  const AggFlops fin = aggregation_flops(cfg, batch, std::max(tp, 2),
                                         AggLayerKind::kCrossAttention);
  // The tree runs once per TP rank (different channels — useful work).
  return total + tp * (tree.scores + tree.proj) + fin.scores + fin.proj;
}

}  // namespace dchag::hw
