// Figure 16: sustained TFLOPs/sec while scaling the global batch (adding
// data-parallel replicas) up to 1,024 GPUs — 7B model, 500-channel
// hyperspectral workload. Baseline: the best TP+FSDP unit from Fig. 15
// (two-node TP groups) replicated with DP; Hybrid D-CHAG: intra-node
// D-CHAG/TP groups replicated with DP. The paper reports >2x sustained
// throughput with a +239% peak gain.
#include "bench_util.hpp"
#include "core/planner.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using model::AggLayerKind;

constexpr Index kChannels = 500;

StepEstimate run(const ModelConfig& cfg, ParallelLayout layout,
                 DchagSpec spec, const MachineSpec& machine) {
  const Index batch = max_batch_per_gpu(cfg, kChannels, layout, spec,
                                        machine);
  DCHAG_CHECK(batch >= 1, "configuration does not fit");
  Workload w{batch, kChannels, true};
  return estimate_step(cfg, w, layout, spec, machine);
}

}  // namespace

int main() {
  bench::header("Figure 16",
                "Sustained TFLOPs/sec vs batch scaling to 1,024 GPUs "
                "(7B, 500 channels)");
  const ModelConfig cfg = ModelConfig::preset("7B");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  // Units per the paper §6.3: the baseline's TP group spans two nodes
  // (tp=16, "DP is applied in groups of two nodes"); Hybrid D-CHAG keeps
  // its groups inside half a node (tp=4, 500 % 4 == 0) and data-
  // parallelises across everything else.
  const DchagSpec dchag_spec = DchagSpec::tree(1, AggLayerKind::kLinear);

  std::printf("%6s %7s | %16s | %16s | %8s\n", "gpus", "nodes",
              "baseline TF/s", "hybrid TF/s", "gain");
  double min_gain = 1e30;
  double max_gain = 0;
  double prev_hybrid = 0;
  bool hybrid_scales = true;
  for (int gpus : {16, 32, 64, 128, 256, 512, 1024}) {
    const int dp_base = gpus / 16;
    const int dp_hybrid = gpus / 16;
    const StepEstimate base =
        run(cfg, {16, 1, dp_base}, DchagSpec::off(), frontier);
    const StepEstimate hybrid =
        run(cfg, {4, 4, dp_hybrid}, dchag_spec, frontier);
    const double base_total =
        base.sustained_tflops_per_node * gpus / frontier.gpus_per_node;
    const double hybrid_total =
        hybrid.sustained_tflops_per_node * gpus / frontier.gpus_per_node;
    const double gain = 100.0 * (hybrid_total / base_total - 1.0);
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    hybrid_scales = hybrid_scales && hybrid_total > prev_hybrid;
    prev_hybrid = hybrid_total;
    std::printf("%6d %7d | %16.0f | %16.0f | %+7.0f%%\n", gpus,
                gpus / frontier.gpus_per_node, base_total, hybrid_total,
                gain);
  }

  bench::section("communication placement (paper §6.3)");
  {
    const CommCostModel cost(frontier);
    const auto placement_base = place_groups(16, 1, 64, 8);
    const auto placement_hybrid = place_groups(4, 4, 64, 8);
    const double bw_base =
        cost.effective_bandwidth_gbs(16, placement_base.tp_ranks_per_node);
    const double bw_hybrid =
        cost.effective_bandwidth_gbs(4, placement_hybrid.tp_ranks_per_node);
    std::printf("TP-group effective bandwidth: baseline (2-node group) "
                "%.1f GB/s vs hybrid (intra-node) %.1f GB/s\n",
                bw_base, bw_hybrid);
    checks.expect(bw_hybrid > bw_base,
                  "hybrid keeps heavy collectives on the intra-node fabric");

    const Index batch_base = max_batch_per_gpu(cfg, kChannels, {16, 1, 64},
                                               DchagSpec::off(), frontier);
    const Index batch_hybrid =
        max_batch_per_gpu(cfg, kChannels, {4, 4, 64}, dchag_spec, frontier);
    const StepEstimate base =
        run(cfg, {16, 1, 64}, DchagSpec::off(), frontier);
    const StepEstimate hybrid = run(cfg, {4, 4, 64}, dchag_spec, frontier);
    std::printf("per-sample TP comm: baseline %.2f ms vs hybrid %.2f ms\n",
                1e3 * base.tp_comm_s / static_cast<double>(batch_base),
                1e3 * hybrid.tp_comm_s / static_cast<double>(batch_hybrid));
    checks.expect(hybrid.tp_comm_s / static_cast<double>(batch_hybrid) <
                      base.tp_comm_s / static_cast<double>(batch_base),
                  "per-sample block communication is cheaper under the "
                  "hybrid layout");
  }

  checks.expect(min_gain > 100.0,
                "hybrid D-CHAG sustains more than 2x the baseline "
                "throughput at every scale");
  // Our model overshoots the paper's +239% peak (the modelled baseline
  // pays the full redundant-tokenization + C-query aggregation cost at
  // 500 channels) — direction and >2x magnitude hold; see EXPERIMENTS.md.
  checks.expect(max_gain > 150.0,
                "peak gain at or beyond the paper's +239% (overshoot "
                "documented in EXPERIMENTS.md)");
  checks.expect(hybrid_scales,
                "hybrid throughput keeps increasing to 1,024 GPUs");
  return checks.report();
}
