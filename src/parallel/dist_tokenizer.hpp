// Distributed channel tokenization (paper §3.1, Fig. 2 bottom): each TP
// rank tokenizes a contiguous slice of the channels, then an AllGather
// over the channel dimension rebuilds the full token tensor on every rank
// so a monolithic aggregator can run. The paper shows this intermediate
// scheme saves tokenization memory but the AllGather negates the win
// (Fig. 8) — D-CHAG (core/) replaces the full gather with local
// aggregation.
#pragma once

#include "model/tokenizer.hpp"
#include "parallel/collective_ops.hpp"

namespace dchag::parallel {

/// Contiguous partition of `channels` across `world` ranks. Requires
/// divisibility (the paper's experiments use powers of two throughout).
[[nodiscard]] std::vector<Index> channel_shard(Index channels, int world,
                                               int rank);

class DistributedTokenizer : public autograd::Module {
 public:
  DistributedTokenizer(const model::ModelConfig& cfg, Index total_channels,
                       Communicator& comm, tensor::Rng& rng);

  /// local_images: [B, C/P, H, W] (this rank's channel slice).
  /// Returns the FULL token tensor [B, C, S, D], identical on all ranks.
  [[nodiscard]] Variable forward(const tensor::Tensor& local_images) const;

  /// Tokens for the local channels only, [B, C/P, S, D] (D-CHAG path).
  [[nodiscard]] Variable forward_local(
      const tensor::Tensor& local_images) const;

  [[nodiscard]] Index local_channels() const {
    return tokenizer_->num_channels();
  }
  [[nodiscard]] Index total_channels() const { return total_channels_; }
  [[nodiscard]] const model::PatchTokenizer& local_tokenizer() const {
    return *tokenizer_;
  }

  /// Elastic-recovery hook: swaps the communicator after the group is
  /// regrouped around a failure. The channel partition (and the local
  /// tokenizer weights) are fixed at construction and do NOT follow the
  /// new group's shape — callers route through the owner of each original
  /// slot (core::DchagFrontEnd::rebind keeps the slot map).
  void rebind(Communicator& comm) { comm_ = &comm; }

 private:
  Index total_channels_;
  Communicator* comm_;
  std::unique_ptr<model::PatchTokenizer> tokenizer_;
};

}  // namespace dchag::parallel
