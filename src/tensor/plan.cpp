#include "tensor/plan.hpp"

#include <algorithm>
#include <utility>

namespace dchag::tensor::plan {

namespace {

thread_local std::uint64_t t_buffer_allocations = 0;
thread_local Arena* t_active_arena = nullptr;

}  // namespace

std::uint64_t thread_buffer_allocations() { return t_buffer_allocations; }

struct Arena::State {
  mutable std::mutex mu;
  /// Free lists keyed by exact element count; a buffer only ever serves
  /// tensors of the size it was born with, so reuse never over-allocates.
  std::unordered_map<Index, std::vector<std::unique_ptr<AlignedVec>>> pool;
  std::uint64_t fresh = 0;
  std::uint64_t reused = 0;
};

Arena::Arena() : state_(std::make_shared<State>()) {}

std::shared_ptr<AlignedVec> Arena::acquire_raw(Index n) {
  std::unique_ptr<AlignedVec> buf;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->pool.find(n);
    if (it != state_->pool.end() && !it->second.empty()) {
      buf = std::move(it->second.back());
      it->second.pop_back();
      ++state_->reused;
    } else {
      ++state_->fresh;
    }
  }
  if (!buf) {
    buf = std::make_unique<AlignedVec>(static_cast<std::size_t>(n));
    ++t_buffer_allocations;
  }
  // The deleter owns a reference to the shared state, so buffers released
  // after the Arena object is gone still park (and ultimately free) safely.
  std::shared_ptr<State> state = state_;
  AlignedVec* raw = buf.release();
  return std::shared_ptr<AlignedVec>(raw, [state](AlignedVec* p) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pool[static_cast<Index>(p->size())].emplace_back(p);
  });
}

std::shared_ptr<AlignedVec> Arena::acquire(Index n) {
  std::shared_ptr<AlignedVec> buf = acquire_raw(n);
  std::fill(buf->begin(), buf->end(), 0.0f);
  return buf;
}

Arena::Stats Arena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  Stats s;
  s.fresh = state_->fresh;
  s.reused = state_->reused;
  for (const auto& [n, free] : state_->pool) {
    (void)n;
    s.pooled += free.size();
  }
  return s;
}

ArenaScope::ArenaScope(Arena& arena) : prev_(t_active_arena) {
  t_active_arena = &arena;
}

ArenaScope::~ArenaScope() { t_active_arena = prev_; }

namespace detail {

std::shared_ptr<AlignedVec> acquire_buffer(Index n) {
  if (t_active_arena != nullptr) return t_active_arena->acquire(n);
  ++t_buffer_allocations;
  return std::make_shared<AlignedVec>(static_cast<std::size_t>(n), 0.0f);
}

std::shared_ptr<AlignedVec> acquire_buffer_raw(Index n) {
  if (t_active_arena != nullptr) return t_active_arena->acquire_raw(n);
  ++t_buffer_allocations;
  return std::make_shared<AlignedVec>(static_cast<std::size_t>(n));
}

}  // namespace detail

}  // namespace dchag::tensor::plan
