// Tensor parallelism must be a pure re-partitioning of the serial model:
// same seeds => identical forward values and identical gradients (each
// rank holding its shard's slice of the serial gradient).
#include <gtest/gtest.h>

#include "model/vit.hpp"
#include "parallel/tp_layers.hpp"

namespace dchag::parallel {
namespace {

namespace ops = tensor::ops;
using comm::World;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

constexpr float kTol = 1e-4f;

class TpWorldSweep : public ::testing::TestWithParam<int> {};

TEST_P(TpWorldSweep, ColumnParallelMatchesSerialLinear) {
  const int P = GetParam();
  Rng data_rng(7);
  Tensor x = data_rng.normal_tensor(Shape{3, 8});
  // Serial reference.
  Rng serial_rng(42);
  Tensor w_full = serial_rng.xavier(Shape{8, 8});
  Tensor y_ref = ops::matmul(x, w_full);

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(42);
    ColumnParallelLinear col(rng.xavier(Shape{8, 8}), comm, "col");
    Variable y = col.forward(Variable::input(x));
    const tensor::Index shard = 8 / P;
    Tensor expected = ops::slice(y_ref, 1, comm.rank() * shard, shard);
    ASSERT_LT(ops::max_abs_diff(y.value(), expected), kTol);
  });
}

TEST_P(TpWorldSweep, RowParallelMatchesSerialLinear) {
  const int P = GetParam();
  Rng data_rng(8);
  Tensor x = data_rng.normal_tensor(Shape{3, 8});
  Rng serial_rng(43);
  Tensor w_full = serial_rng.xavier(Shape{8, 4});
  Tensor y_ref = ops::matmul(x, w_full);

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(43);
    RowParallelLinear row(rng.xavier(Shape{8, 4}), comm, "row");
    const tensor::Index shard = 8 / P;
    Tensor x_local = ops::slice(x, 1, comm.rank() * shard, shard);
    Variable y = row.forward(Variable::input(x_local));
    ASSERT_LT(ops::max_abs_diff(y.value(), y_ref), kTol);
  });
}

TEST_P(TpWorldSweep, AttentionForwardMatchesSerial) {
  const int P = GetParam();
  ModelConfig cfg = ModelConfig::tiny();  // D=32, 4 heads
  Rng data_rng(9);
  Tensor x = data_rng.normal_tensor(Shape{2, 5, cfg.embed_dim});

  Rng serial_rng(44);
  model::MultiHeadSelfAttention serial(cfg.embed_dim, cfg.num_heads,
                                       serial_rng, "attn");
  Tensor y_ref = serial.forward(Variable::input(x)).value();

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(44);
    ParallelSelfAttention attn(cfg.embed_dim, cfg.num_heads, comm, rng,
                               "attn");
    Variable y = attn.forward(Variable::input(x));
    ASSERT_LT(ops::max_abs_diff(y.value(), y_ref), kTol);
  });
}

TEST_P(TpWorldSweep, EncoderForwardMatchesSerial) {
  const int P = GetParam();
  ModelConfig cfg = ModelConfig::tiny();
  Rng data_rng(10);
  Tensor x = data_rng.normal_tensor(Shape{2, 4, cfg.embed_dim});

  Rng serial_rng(45);
  model::ViTEncoder serial(cfg, serial_rng);
  Tensor y_ref = serial.forward(Variable::input(x)).value();

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(45);
    ParallelViTEncoder enc(cfg, comm, rng);
    Variable y = enc.forward(Variable::input(x));
    ASSERT_LT(ops::max_abs_diff(y.value(), y_ref), 5e-4f);
  });
}

TEST_P(TpWorldSweep, EncoderInputGradientMatchesSerial) {
  const int P = GetParam();
  ModelConfig cfg = ModelConfig::tiny();
  cfg.num_layers = 1;
  Rng data_rng(11);
  Tensor x = data_rng.normal_tensor(Shape{1, 3, cfg.embed_dim});

  Rng serial_rng(46);
  model::ViTEncoder serial(cfg, serial_rng);
  Variable xs = Variable::param(x.clone());
  autograd::sum_all(autograd::mul(serial.forward(xs), serial.forward(xs)))
      .backward();
  Tensor grad_ref = xs.grad();

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(46);
    ParallelViTEncoder enc(cfg, comm, rng);
    Variable xp = Variable::param(x.clone());
    autograd::sum_all(autograd::mul(enc.forward(xp), enc.forward(xp)))
        .backward();
    ASSERT_LT(ops::max_abs_diff(xp.grad(), grad_ref), 5e-4f)
        << "rank " << comm.rank();
  });
}

TEST_P(TpWorldSweep, WeightShardGradientsMatchSerialSlices) {
  const int P = GetParam();
  ModelConfig cfg = ModelConfig::tiny();
  Rng data_rng(12);
  Tensor x = data_rng.normal_tensor(Shape{2, 3, cfg.embed_dim});

  // Serial reference gradients.
  Rng serial_rng(47);
  model::MultiHeadSelfAttention serial(cfg.embed_dim, cfg.num_heads,
                                       serial_rng, "attn");
  autograd::sum_all(serial.forward(Variable::input(x))).backward();
  auto serial_params = serial.parameters();  // wq.w, wq.b, wk.w, ... wo.w, wo.b
  Tensor wq_grad = serial_params[0].grad();
  Tensor wo_grad = serial_params[6].grad();

  World world(P);
  world.run([&](Communicator& comm) {
    Rng rng(47);
    ParallelSelfAttention attn(cfg.embed_dim, cfg.num_heads, comm, rng,
                               "attn");
    autograd::sum_all(attn.forward(Variable::input(x))).backward();
    auto params = attn.parameters();
    // Registration order: wq.weight, wq.bias, wk.*, wv.*, wo.weight, wo.bias.
    const tensor::Index col_shard = cfg.embed_dim / P;
    Tensor wq_expected =
        ops::slice(wq_grad, 1, comm.rank() * col_shard, col_shard);
    ASSERT_LT(ops::max_abs_diff(params[0].grad(), wq_expected), kTol);
    Tensor wo_expected =
        ops::slice(wo_grad, 0, comm.rank() * col_shard, col_shard);
    ASSERT_LT(ops::max_abs_diff(params[6].grad(), wo_expected), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, TpWorldSweep, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(TpLayers, RejectsIndivisibleShards) {
  World world(3);
  EXPECT_THROW(world.run([](Communicator& comm) {
    Rng rng(1);
    ColumnParallelLinear col(8, 8, comm, rng, "col");  // 8 % 3 != 0
  }),
               Error);
}

}  // namespace
}  // namespace dchag::parallel
