// Figure 7 (+ §4.3 prose): per-GPU memory of 1.7B and 7B models under
// tensor parallelism, normalised to the full application's peak; the
// token+aggregation share stays put as TP grows. Includes the FSDP-only
// feasibility frontier quoted in §4.3/§6.1. Batches: 21 (1.7B family),
// 26 (7B family) — see EXPERIMENTS.md.
#include "bench_util.hpp"
#include "hw/memory_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
}  // namespace

int main() {
  bench::header("Figure 7", "TP memory per GPU (1.7B, 7B) + FSDP frontier");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  struct Case {
    const char* preset;
    Index batch;
    Index channels;
  };
  const Case cases[] = {{"1.7B", 21, 512},
                        {"1.7B", 21, 1024},
                        {"7B", 26, 256},
                        {"7B", 26, 512}};

  for (const Case& c : cases) {
    const ModelConfig cfg = ModelConfig::preset(c.preset);
    bench::section(std::string(c.preset) + " @ " +
                   std::to_string(c.channels) + " channels (batch " +
                   std::to_string(c.batch) + ")");
    std::printf("%6s %12s %12s %10s %6s\n", "tp", "total(GB)", "tok+agg(GB)",
                "frac", "fits");
    for (int tp : {1, 2, 4, 8, 16}) {
      Workload w{c.batch, c.channels, true};
      const auto m = estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off());
      const double ta = m.total_gb() * m.token_agg_fraction();
      std::printf("%6d %12.1f %12.1f %10.2f %6s\n", tp, m.total_gb(), ta,
                  m.token_agg_fraction(),
                  fits(m, frontier) ? "yes" : "OOM");
    }
  }

  bench::section("FSDP-only feasibility frontier (§4.3, §6.1)");
  struct FsdpCase {
    const char* preset;
    Index batch;
    Index channels;
    int shards;
    bool expect_fit;
    const char* claim;
  };
  const FsdpCase fsdp_cases[] = {
      {"1.7B", 21, 256, 2, true, "1.7B/256ch fits on 2 GPUs with FSDP"},
      {"7B", 26, 128, 8, true, "7B/128ch fits on one node with FSDP"},
      {"7B", 26, 256, 8, false, "7B/256ch does NOT fit on one node (FSDP)"},
      {"15B", 26, 64, 8, true, "15B/64ch fits on one node with FSDP"},
      {"15B", 26, 128, 8, false, "15B/128ch does NOT fit (FSDP)"},
      {"26B", 26, 64, 8, false, "26B does not fit on one node at all"},
  };
  std::printf("%6s %5s %9s %7s %10s %6s\n", "model", "ch", "shards", "batch",
              "mem(GB)", "fits");
  for (const FsdpCase& f : fsdp_cases) {
    Workload w{f.batch, f.channels, true};
    const auto m = estimate_memory(ModelConfig::preset(f.preset), w,
                                   {1, f.shards, 1}, DchagSpec::off());
    const bool ok = fits(m, frontier);
    std::printf("%6s %5lld %9d %7lld %10.1f %6s\n", f.preset,
                static_cast<long long>(f.channels), f.shards,
                static_cast<long long>(f.batch), m.total_gb(),
                ok ? "yes" : "OOM");
    checks.expect(ok == f.expect_fit, f.claim);
  }

  // Fig. 7 headline claims.
  {
    const ModelConfig cfg = ModelConfig::preset("1.7B");
    checks.expect(min_feasible_tp(cfg, {21, 512, true}, DchagSpec::off(),
                                  frontier, 16) == 2,
                  "1.7B/512ch needs exactly 2 GPUs under TP");
    checks.expect(min_feasible_tp(cfg, {21, 1024, true}, DchagSpec::off(),
                                  frontier, 16) == 8,
                  "1.7B/1024ch needs a full node (8 GPUs) under TP");
    const auto m = estimate_memory(cfg, {21, 1024, true}, {8, 1, 1},
                                   DchagSpec::off());
    checks.expect(m.token_agg_fraction() >= 0.5,
                  "tokenization+aggregation is 50-90% of memory at high C");
    // TP leaves tokenizer memory untouched.
    const auto m2 = estimate_memory(cfg, {21, 1024, true}, {2, 1, 1},
                                    DchagSpec::off());
    checks.expect(m.tokenizer_act_gb == m2.tokenizer_act_gb,
                  "TP does not reduce absolute tokenization memory");
  }
  {
    const ModelConfig cfg = ModelConfig::preset("7B");
    checks.expect(min_feasible_tp(cfg, {26, 256, true}, DchagSpec::off(),
                                  frontier, 16) == 4,
                  "7B/256ch fits on half a node (tp=4)");
    checks.expect(min_feasible_tp(cfg, {26, 512, true}, DchagSpec::off(),
                                  frontier, 16) == 16,
                  "7B/512ch needs two nodes (tp=16)");
  }
  return checks.report();
}
