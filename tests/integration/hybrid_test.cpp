// Hybrid parallelism (paper §3.4, Fig. 5): D-CHAG groups == TP groups,
// with FSDP/DP layered across them. These tests run the real SPMD stack:
// 4 threads = 2 D-CHAG groups x 2 data-parallel replicas.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "data/hyperspectral.hpp"
#include "parallel/data_parallel.hpp"
#include "train/loops.hpp"

namespace dchag {
namespace {

using core::DchagOptions;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

constexpr Index kChannels = 8;

std::vector<Tensor> make_batches(int count, std::uint64_t seed) {
  data::HyperspectralConfig hc;
  hc.channels = kChannels;
  hc.height = 16;
  hc.width = 16;
  data::HyperspectralGenerator gen(hc, seed);
  std::vector<Tensor> batches;
  for (int i = 0; i < count; ++i) batches.push_back(gen.sample_batch(2));
  return batches;
}

TEST(HybridDchag, DpOverDchagTrainsAndStaysInSync) {
  const int steps = 12;
  // Each DP replica sees its own data stream.
  const auto replica_batches = std::vector<std::vector<Tensor>>{
      make_batches(steps, 100), make_batches(steps, 200)};

  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    // Ranks (0,1) and (2,3) form D-CHAG groups; (0,2) and (1,3) form DP.
    comm::Communicator dchag_group = comm.split(comm.rank() / 2);
    comm::Communicator dp_group = comm.split(comm.rank() % 2);
    const int replica = comm.rank() / 2;

    Rng rng(606);
    auto mae = core::make_dchag_mae(ModelConfig::tiny(), kChannels,
                                    dchag_group,
                                    {1, AggLayerKind::kLinear}, rng);
    auto params = mae->parameters();
    train::Adam opt(params, {.lr = 2e-3f});

    std::vector<float> losses;
    for (int step = 0; step < steps; ++step) {
      const Tensor& full =
          replica_batches[static_cast<std::size_t>(replica)]
                         [static_cast<std::size_t>(step)];
      Tensor local = mae->frontend().select_input(full);
      Rng mask_rng(777 + static_cast<std::uint64_t>(step));
      Tensor mask = model::MaeModel::make_mask(
          full.dim(0), ModelConfig::tiny().seq_len(), 0.75f, mask_rng);
      opt.zero_grad();
      auto out = mae->forward(local, full, mask);
      out.loss.backward();
      // DP sync: average gradients across replicas (rank-local D-CHAG
      // params are replicated ACROSS replicas, so this is well-defined).
      parallel::all_reduce_gradients(params, dp_group);
      opt.step();
      losses.push_back(out.loss.value().item());
    }

    // Training works...
    float early = (losses[0] + losses[1]) / 2;
    float late = (losses[losses.size() - 1] + losses[losses.size() - 2]) / 2;
    ASSERT_LT(late, early);
    // ...and replicas remain synchronised parameter-for-parameter.
    ASSERT_TRUE(parallel::parameters_in_sync(params, dp_group, 1e-5f));
  });
}

TEST(HybridDchag, FsdpOptimizerOverDchag) {
  // FSDP-style sharded optimizer across the data dimension (ZeRO-1): the
  // combination the paper's Fig. 15 "D-CHAG+TP+FSDP" configuration uses.
  const int steps = 8;
  const auto replica_batches = std::vector<std::vector<Tensor>>{
      make_batches(steps, 300), make_batches(steps, 400)};

  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    comm::Communicator dchag_group = comm.split(comm.rank() / 2);
    comm::Communicator fsdp_group = comm.split(comm.rank() % 2);
    const int replica = comm.rank() / 2;

    Rng rng(909);
    auto mae = core::make_dchag_mae(ModelConfig::tiny(), kChannels,
                                    dchag_group,
                                    {1, AggLayerKind::kCrossAttention}, rng);
    auto params = mae->parameters();
    train::FsdpAdam opt(params, fsdp_group, {.lr = 2e-3f});
    // Optimizer state is genuinely sharded across the FSDP group.
    ASSERT_LT(opt.owned_params(), params.size());

    std::vector<float> losses;
    for (int step = 0; step < steps; ++step) {
      const Tensor& full =
          replica_batches[static_cast<std::size_t>(replica)]
                         [static_cast<std::size_t>(step)];
      Tensor local = mae->frontend().select_input(full);
      Rng mask_rng(888 + static_cast<std::uint64_t>(step));
      Tensor mask = model::MaeModel::make_mask(
          full.dim(0), ModelConfig::tiny().seq_len(), 0.75f, mask_rng);
      opt.zero_grad();
      auto out = mae->forward(local, full, mask);
      out.loss.backward();
      opt.step();  // FsdpAdam averages grads across the group internally
      losses.push_back(out.loss.value().item());
    }
    ASSERT_LT(losses.back(), losses.front());
    ASSERT_TRUE(parallel::parameters_in_sync(params, fsdp_group, 1e-5f));
  });
}

TEST(HybridDchag, DchagBackwardStaysCommunicationFreeUnderHybrid) {
  // Even inside the hybrid layout, the D-CHAG group's backward pass adds
  // no collectives: the only group traffic is the forward AllGather; all
  // gradient traffic rides the DP/FSDP dimension.
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    comm::Communicator dchag_group = comm.split(comm.rank() / 2);
    comm::Communicator dp_group = comm.split(comm.rank() % 2);

    Rng rng(111);
    auto mae = core::make_dchag_mae(ModelConfig::tiny(), kChannels,
                                    dchag_group,
                                    {1, AggLayerKind::kLinear}, rng);
    auto batches = make_batches(1, 500 + static_cast<std::uint64_t>(
                                          comm.rank() / 2));
    Tensor local = mae->frontend().select_input(batches[0]);
    Rng mask_rng(1);
    Tensor mask = model::MaeModel::make_mask(
        2, ModelConfig::tiny().seq_len(), 0.75f, mask_rng);
    auto out = mae->forward(local, batches[0], mask);

    const auto dchag_calls_after_fwd = dchag_group.stats().total_calls();
    out.loss.backward();
    ASSERT_EQ(dchag_group.stats().total_calls(), dchag_calls_after_fwd)
        << "D-CHAG group communicated during backward";

    auto params = mae->parameters();
    parallel::all_reduce_gradients(params, dp_group);
    ASSERT_GT(dp_group.stats().total_calls(), 0u);
  });
}

}  // namespace
}  // namespace dchag
