// The one place the "should this loop fan out?" policy lives: ops.cpp and
// the model-layer data movers (patchify/unpatchify) all dispatch through
// here, so backend gating, grain thresholds, and lane caps can never
// drift between kernels.
#pragma once

#include "tensor/kernel_config.hpp"
#include "tensor/thread_pool.hpp"

namespace dchag::tensor {

/// Baseline fan-out grain in ELEMENTS of touched data: a chunk below
/// this spends more on fork/join than on its loop. Callers iterating
/// coarser units (rows, planes) divide by the unit's element count.
inline constexpr Index kDispatchGrain = 1 << 15;

/// Splits [0, n) over the active context's pool when the calling
/// thread's backend is kParallel and the range spans at least two
/// grains; otherwise runs fn(0, n) inline. fn must write disjoint
/// outputs per index.
template <typename F>
void dispatch_range(Index n, Index grain, F&& fn) {
  const KernelConfig cfg = kernel_config();
  if (cfg.backend == KernelBackend::kParallel && n >= 2 * grain) {
    active_pool().parallel_for(n, grain, std::forward<F>(fn), cfg.threads);
  } else {
    fn(Index{0}, n);
  }
}

}  // namespace dchag::tensor
