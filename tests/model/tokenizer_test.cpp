#include "model/tokenizer.hpp"

#include <gtest/gtest.h>

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(Patchify, RoundTrip) {
  Rng rng(1);
  Tensor img = rng.normal_tensor(Shape{2, 3, 8, 8});
  Tensor patches = patchify(img, 4);
  EXPECT_EQ(patches.shape(), (Shape{2, 3, 4, 16}));
  Tensor back = unpatchify(patches, 4, 8, 8);
  EXPECT_LT(ops::max_abs_diff(img, back), 1e-7f);
}

TEST(Patchify, SpatialOrderRowMajor) {
  // 1 image, 1 channel, 4x4, patch 2: patch 1 covers columns 2-3, rows 0-1.
  Tensor img(Shape{1, 1, 4, 4});
  for (tensor::Index i = 0; i < 16; ++i)
    img.data()[i] = static_cast<float>(i);
  Tensor p = patchify(img, 2);
  // patch 0: pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5
  EXPECT_EQ(p.at({0, 0, 0, 0}), 0.0f);
  EXPECT_EQ(p.at({0, 0, 0, 1}), 1.0f);
  EXPECT_EQ(p.at({0, 0, 0, 2}), 4.0f);
  EXPECT_EQ(p.at({0, 0, 0, 3}), 5.0f);
  // patch 1: pixels (0,2),(0,3),(1,2),(1,3) = 2,3,6,7
  EXPECT_EQ(p.at({0, 0, 1, 0}), 2.0f);
  // patch 2 (second row of patches): starts at pixel (2,0) = 8
  EXPECT_EQ(p.at({0, 0, 2, 0}), 8.0f);
}

TEST(Patchify, RejectsBadShapes) {
  EXPECT_THROW(patchify(Tensor(Shape{2, 3, 8}), 4), Error);
  EXPECT_THROW(patchify(Tensor(Shape{1, 1, 9, 8}), 4), Error);
}

TEST(PatchTokenizer, OutputShape) {
  ModelConfig cfg = ModelConfig::tiny();  // 16x16, patch 4 -> S=16, D=32
  Rng rng(2);
  PatchTokenizer tok(cfg, 5, rng);
  Tensor img = rng.normal_tensor(Shape{2, 5, 16, 16});
  auto out = tok.forward(img);
  EXPECT_EQ(out.shape(), (Shape{2, 5, 16, 32}));
}

TEST(PatchTokenizer, RejectsChannelMismatch) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(3);
  PatchTokenizer tok(cfg, 4, rng);
  EXPECT_THROW(tok.forward(Tensor(Shape{1, 3, 16, 16})), Error);
}

/// The load-bearing property for D-CHAG (§3.1): tokenizing a channel
/// subset with the same master seed produces exactly the slice of the
/// full tokenizer's output for those channels.
TEST(PatchTokenizer, PartitionInvariance) {
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 6;
  Rng master(42);
  Rng data_rng(7);
  Tensor img = data_rng.normal_tensor(Shape{2, C, 16, 16});

  Rng full_rng = master.fork(99);
  PatchTokenizer full(cfg, C, full_rng);
  Tensor full_out = full.forward(img).value();

  // Two-way partition: channels {0,1,2} and {3,4,5}.
  Rng lo_rng = master.fork(99);
  Rng hi_rng = master.fork(99);
  PatchTokenizer lo(cfg, std::vector<tensor::Index>{0, 1, 2}, lo_rng);
  PatchTokenizer hi(cfg, std::vector<tensor::Index>{3, 4, 5}, hi_rng);
  Tensor lo_out = lo.forward(ops::slice(img, 1, 0, 3)).value();
  Tensor hi_out = hi.forward(ops::slice(img, 1, 3, 3)).value();

  EXPECT_LT(ops::max_abs_diff(ops::slice(full_out, 1, 0, 3), lo_out), 1e-6f);
  EXPECT_LT(ops::max_abs_diff(ops::slice(full_out, 1, 3, 3), hi_out), 1e-6f);
}

TEST(PatchTokenizer, UnevenPartitionInvariance) {
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 5;
  Rng master(11);
  Tensor img = Rng(8).normal_tensor(Shape{1, C, 16, 16});

  Rng full_rng = master.fork(1);
  PatchTokenizer full(cfg, C, full_rng);
  Tensor full_out = full.forward(img).value();

  Rng part_rng = master.fork(1);
  PatchTokenizer part(cfg, std::vector<tensor::Index>{1, 4}, part_rng);
  Tensor part_in = ops::concat(
      std::vector<Tensor>{ops::slice(img, 1, 1, 1), ops::slice(img, 1, 4, 1)},
      1);
  Tensor part_out = part.forward(part_in).value();
  EXPECT_LT(ops::max_abs_diff(ops::slice(full_out, 1, 1, 1),
                              ops::slice(part_out, 1, 0, 1)),
            1e-6f);
  EXPECT_LT(ops::max_abs_diff(ops::slice(full_out, 1, 4, 1),
                              ops::slice(part_out, 1, 1, 1)),
            1e-6f);
}

TEST(PatchTokenizer, ChannelsGetDistinctEmbeddings) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(5);
  PatchTokenizer tok(cfg, 2, rng);
  // Identical pixel content in both channels must still produce different
  // tokens (channel-ID embedding + per-channel weights).
  Tensor img(Shape{1, 2, 16, 16}, 0.5f);
  Tensor out = tok.forward(img).value();
  Tensor c0 = ops::slice(out, 1, 0, 1);
  Tensor c1 = ops::slice(out, 1, 1, 1);
  EXPECT_GT(ops::max_abs_diff(c0, c1), 1e-3f);
}

TEST(PatchTokenizer, GradientsFlowToAllParams) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(6);
  PatchTokenizer tok(cfg, 2, rng);
  Tensor img = rng.normal_tensor(Shape{1, 2, 16, 16});
  autograd::sum_all(tok.forward(img)).backward();
  for (const auto& p : tok.parameters()) {
    EXPECT_TRUE(p.has_grad()) << p.name();
  }
}

TEST(PatchTokenizer, SameSeedSameWeights) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng a(9);
  Rng b(9);
  PatchTokenizer ta(cfg, 3, a);
  PatchTokenizer tb(cfg, 3, b);
  auto pa = ta.parameters();
  auto pb = tb.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(ops::max_abs_diff(pa[i].value(), pb[i].value()), 0.0f + 1e-9f);
  }
}

}  // namespace
}  // namespace dchag::model
