#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

namespace dchag::core {

using hw::DchagSpec;
using hw::ParallelLayout;
using model::AggLayerKind;
using model::Index;

std::string Plan::describe() const {
  std::ostringstream os;
  os << "tp=" << layout.tp << " fsdp=" << layout.fsdp << " dp=" << layout.dp;
  if (dchag.enabled) {
    os << " D-CHAG-" << model::to_string(dchag.kind) << "-Tree"
       << (dchag.tree_units <= 1 ? 0 : dchag.tree_units);
  } else {
    os << " baseline";
  }
  os << " batch/gpu=" << batch_per_gpu << " mem=" << memory.total_gb()
     << "GB tflops/node=" << step.sustained_tflops_per_node;
  return os.str();
}

std::vector<Plan> Planner::enumerate(const PlanRequest& req) {
  req.cfg.validate();
  DCHAG_CHECK(req.gpus >= 1, "planner needs gpus >= 1");
  std::vector<Plan> plans;

  std::vector<DchagSpec> specs{DchagSpec::off()};
  if (req.allow_dchag) {
    for (Index units : {1, 2, 4, 8}) {
      specs.push_back(DchagSpec::tree(units, AggLayerKind::kLinear));
      specs.push_back(DchagSpec::tree(units, AggLayerKind::kCrossAttention));
    }
  }

  for (int tp = 1; tp <= req.gpus; tp *= 2) {
    if (req.cfg.num_heads % tp != 0) continue;
    for (int fsdp = 1; tp * fsdp <= req.gpus; fsdp *= 2) {
      const int dp = req.gpus / (tp * fsdp);
      if (tp * fsdp * dp != req.gpus) continue;
      for (const DchagSpec& spec : specs) {
        if (spec.enabled &&
            (tp == 1 || req.channels % tp != 0 ||
             spec.tree_units > req.channels / tp)) {
          continue;
        }
        ParallelLayout layout{tp, fsdp, dp};
        Index batch = hw::max_batch_per_gpu(req.cfg, req.channels, layout,
                                            spec, req.machine,
                                            req.checkpoint_vit);
        if (batch < 1) continue;
        if (req.max_batch > 0) batch = std::min(batch, req.max_batch);
        Plan plan;
        plan.layout = layout;
        plan.dchag = spec;
        plan.batch_per_gpu = batch;
        hw::Workload w{batch, req.channels, req.checkpoint_vit};
        plan.memory = hw::estimate_memory(req.cfg, w, layout, spec);
        plan.step = hw::estimate_step(req.cfg, w, layout, spec, req.machine);
        plans.push_back(std::move(plan));
      }
    }
  }
  return plans;
}

Plan Planner::best(const PlanRequest& req) {
  std::vector<Plan> plans = enumerate(req);
  DCHAG_CHECK(!plans.empty(), "no feasible configuration for "
                                  << req.cfg.name << " with "
                                  << req.channels << " channels on "
                                  << req.gpus << " GPUs");
  return *std::max_element(plans.begin(), plans.end(),
                           [](const Plan& a, const Plan& b) {
                             return a.throughput_per_node() <
                                    b.throughput_per_node();
                           });
}

}  // namespace dchag::core
