#include "serve/engine.hpp"

namespace dchag::serve {

Engine::Engine(model::ForecastModel& model,
               std::optional<runtime::Context> ctx, EngineOptions opts)
    : model_(&model), ctx_(std::move(ctx)), opts_(opts) {
  if (opts_.plan) {
    model_->freeze_for_serving();
  } else {
    model_->eval();
  }
}

Tensor Engine::run(const Tensor& images, const std::vector<Index>& channels,
                   float lead_time) const {
  DCHAG_CHECK(!model_->is_training(),
              "serving requires an eval-mode model");
  autograd::NoGradGuard no_grad;
  // With a plan, every tensor this forward builds draws from the shared
  // pool; only the first request per shape lane touches the heap.
  std::optional<tensor::plan::ArenaScope> arena_scope;
  if (opts_.plan) arena_scope.emplace(arena_);
  runtime::Scope ctx_scope(runtime::Context::effective_or_current(ctx_));
  if (channels.empty()) {
    // Full-channel request; strategy-agnostic input selection (identity
    // for the single-device front-end).
    return model_
        ->predict(model_->frontend().select_input(images), lead_time)
        .value();
  }
  return model_->predict_subset(images, channels, lead_time).value();
}

InferenceFn Engine::inference_fn() const {
  return [this](const Tensor& images, const std::vector<Index>& channels,
                float lead_time) { return run(images, channels, lead_time); };
}

}  // namespace dchag::serve
