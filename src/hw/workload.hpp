// Workload and parallel-layout descriptors for the analytic model.
//
// Declares the (TP, FSDP, DP) ParallelLayout, the D-CHAG front-end spec,
// and the training-workload description that the FLOP/memory/comm models
// in this directory all consume.
#pragma once

#include "model/aggregation.hpp"
#include "model/config.hpp"

namespace dchag::hw {

using model::AggLayerKind;
using model::Index;
using model::ModelConfig;

struct Workload {
  Index batch_per_gpu = 8;
  Index channels = 64;
  /// ViT blocks run with activation checkpointing (store block inputs,
  /// recompute internals) — standard practice at these model sizes.
  bool checkpoint_vit = true;
};

/// Process-group factorisation (paper §3.4, Fig. 5): TP groups innermost
/// (D-CHAG shares the TP group), FSDP across TP groups, DP outermost.
struct ParallelLayout {
  int tp = 1;
  int fsdp = 1;
  int dp = 1;

  [[nodiscard]] int total_gpus() const { return tp * fsdp * dp; }
  void validate() const {
    DCHAG_CHECK(tp >= 1 && fsdp >= 1 && dp >= 1, "invalid layout");
  }
};

/// D-CHAG configuration. When enabled, tokenization and the partial
/// aggregation tree are split across the TP group; `tree_units` is the
/// paper's TreeN (0/1 = single local aggregation layer), `kind` selects
/// -C vs -L partial layers. The final shared aggregation is always
/// cross-attention.
struct DchagSpec {
  bool enabled = false;
  Index tree_units = 1;
  AggLayerKind kind = AggLayerKind::kLinear;

  static DchagSpec off() { return {}; }
  static DchagSpec tree(Index units, AggLayerKind k) {
    return {true, units < 1 ? 1 : units, k};
  }
};

}  // namespace dchag::hw
