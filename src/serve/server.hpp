// The request-facing serving layer: a Batcher in front of a worker pool
// executing an InferenceFn (single-device Engine or SpmdEngine) over a
// loaded checkpoint, with Metrics accounting on every stage.
//
// Lifecycle: construct -> (optionally submit early; requests park in the
// batcher) -> start() -> submit()/futures -> drain() or destructor.
// Workers never leak exceptions: a failing batch fails its requests'
// futures and the worker keeps serving.
#pragma once

#include <optional>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "tensor/kernel_config.hpp"

namespace dchag::serve {

struct ServerConfig {
  /// Worker threads executing batches. More than one only helps when the
  /// InferenceFn is itself thread-safe (the single-device Engine is; an
  /// SpmdEngine serializes internally).
  int num_workers = 1;
  BatcherConfig batcher;
  /// Kernel backend pinned per worker thread (thread-local KernelScope in
  /// worker_loop). Workers never get private pools: on the parallel
  /// backend all of them fan out onto the one process-wide ThreadPool,
  /// whose lane count stays DCHAG_THREADS no matter how many workers run
  /// — batches queue instead of oversubscribing cores. A many-worker
  /// latency-oriented server typically pins kBlocked here so each worker
  /// stays on its own core. Unset = inherit the process config.
  ///
  /// Scope caveat: the override lives on the WORKER thread, so it only
  /// reaches engines that compute there (the single-device Engine). An
  /// SpmdEngine forwards on its own rank threads — pin its backend via
  /// DchagOptions::kernels in the rank-model factory instead.
  std::optional<tensor::KernelConfig> kernels;
};

class Server {
 public:
  Server(InferenceFn infer, ServerConfig cfg);
  /// Drains on destruction: closes the batcher, finishes parked work,
  /// joins workers.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request. Valid before start() — requests park in the
  /// batcher until workers spin up (handy for deterministic coalescing
  /// tests and warm-up bursts).
  [[nodiscard]] ResponseFuture submit(Request r);

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Stops accepting requests, completes everything parked, joins the
  /// workers. Idempotent; implied by the destructor.
  void drain();

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t queue_depth() const { return batcher_.depth(); }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  void worker_loop();
  void execute(Batch batch);

  InferenceFn infer_;
  ServerConfig cfg_;
  Batcher batcher_;
  Metrics metrics_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace dchag::serve
