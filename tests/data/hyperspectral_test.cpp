#include "data/hyperspectral.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

#include <cstdio>
#include <fstream>

namespace dchag::data {
namespace {

namespace ops = tensor::ops;
using tensor::Shape;

HyperspectralConfig small() {
  HyperspectralConfig cfg;
  cfg.channels = 50;
  cfg.height = 16;
  cfg.width = 16;
  return cfg;
}

TEST(Hyperspectral, BatchShapeAndRange) {
  HyperspectralGenerator gen(small(), 1);
  Tensor batch = gen.sample_batch(3);
  EXPECT_EQ(batch.shape(), (Shape{3, 50, 16, 16}));
  for (float v : batch.span()) {
    EXPECT_GT(v, -0.3f);
    EXPECT_LT(v, 1.3f);
  }
}

TEST(Hyperspectral, DeterministicForSameSeed) {
  HyperspectralGenerator a(small(), 7);
  HyperspectralGenerator b(small(), 7);
  EXPECT_LT(ops::max_abs_diff(a.sample_batch(2), b.sample_batch(2)), 1e-9f);
}

TEST(Hyperspectral, DifferentSeedsDiffer) {
  HyperspectralGenerator a(small(), 7);
  HyperspectralGenerator b(small(), 8);
  EXPECT_GT(ops::max_abs_diff(a.sample_batch(1), b.sample_batch(1)), 1e-3f);
}

TEST(Hyperspectral, AdjacentBandsStronglyCorrelated) {
  // The property that makes channel aggregation meaningful: neighbouring
  // spectral bands are near-duplicates (paper §2.1 motivation).
  HyperspectralGenerator gen(small(), 2);
  Tensor img = gen.sample_batch(1);
  const Index hw = 16 * 16;
  double corr_sum = 0;
  int pairs = 0;
  for (Index c = 0; c + 1 < 50; c += 5) {
    const float* a = img.data() + c * hw;
    const float* b = img.data() + (c + 1) * hw;
    double ma = 0;
    double mb = 0;
    for (Index i = 0; i < hw; ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= hw;
    mb /= hw;
    double cov = 0;
    double va = 0;
    double vb = 0;
    for (Index i = 0; i < hw; ++i) {
      cov += (a[i] - ma) * (b[i] - mb);
      va += (a[i] - ma) * (a[i] - ma);
      vb += (b[i] - mb) * (b[i] - mb);
    }
    corr_sum += cov / std::sqrt(va * vb + 1e-12);
    ++pairs;
  }
  EXPECT_GT(corr_sum / pairs, 0.8);
}

TEST(Hyperspectral, LeafSpectrumHasRedEdge) {
  // Vegetation reflectance: near-infrared (>750nm) well above the red
  // absorption trough (~680nm).
  HyperspectralConfig cfg;
  cfg.channels = 100;
  cfg.height = 8;
  cfg.width = 8;
  HyperspectralGenerator gen(cfg, 3);
  const auto& leaf = gen.material_spectrum(0);
  const Index red = gen.band_of_wavelength(680.0f);
  const Index nir = gen.band_of_wavelength(830.0f);
  EXPECT_GT(leaf[static_cast<std::size_t>(nir)],
            leaf[static_cast<std::size_t>(red)] + 0.2f);
}

TEST(Hyperspectral, SpatialSmoothness) {
  // Abundance blobs make neighbouring pixels similar: mean |dx| gradient
  // must be far below the global dynamic range.
  HyperspectralGenerator gen(small(), 4);
  Tensor img = gen.sample_batch(1);
  const Index hw = 16 * 16;
  const float* plane = img.data() + 25 * hw;  // middle band
  float lo = 1e9f;
  float hi = -1e9f;
  double grad = 0;
  for (Index y = 0; y < 16; ++y) {
    for (Index x = 0; x + 1 < 16; ++x) {
      const float v = plane[y * 16 + x];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      grad += std::abs(plane[y * 16 + x + 1] - v);
    }
  }
  grad /= 16 * 15;
  EXPECT_LT(grad, 0.25 * (hi - lo + 1e-6));
}

TEST(Hyperspectral, BandOfWavelengthEndpoints) {
  HyperspectralGenerator gen(small(), 5);
  EXPECT_EQ(gen.band_of_wavelength(400.0f), 0);
  EXPECT_EQ(gen.band_of_wavelength(900.0f), 49);
  EXPECT_EQ(gen.band_of_wavelength(200.0f), 0);  // clamped
}

TEST(Hyperspectral, PseudoRgbPpmWritten) {
  HyperspectralGenerator gen(small(), 6);
  Tensor img = gen.sample_batch(1).slice0(0, 1).reshape(Shape{50, 16, 16});
  const std::string path = ::testing::TempDir() + "test_rgb.ppm";
  write_pseudo_rgb_ppm(path, img, gen.band_of_wavelength(650.0f),
                       gen.band_of_wavelength(550.0f),
                       gen.band_of_wavelength(450.0f));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P3");
  int w = 0;
  int h = 0;
  f >> w >> h;
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 16);
  std::remove(path.c_str());
}

TEST(Hyperspectral, RejectsDegenerateConfig) {
  HyperspectralConfig cfg;
  cfg.channels = 2;
  EXPECT_THROW(HyperspectralGenerator(cfg, 1), Error);
}

}  // namespace
}  // namespace dchag::data
