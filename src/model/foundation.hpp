// The full foundation-model architecture (paper Fig. 1): a channel
// front-end (tokenize + aggregate -> one spatial token stream), the ViT
// encoder, and a task head. The front-end is injected so the same model
// runs with the single-device baseline aggregator, the hierarchical tree,
// or D-CHAG's distributed front-end (core/dchag_frontend.hpp).
#pragma once

#include <memory>

#include "model/aggregation.hpp"
#include "model/tokenizer.hpp"
#include "model/vit.hpp"

namespace dchag::model {

/// Anything that maps raw images to one aggregated token per patch.
class FrontEnd : public Module {
 public:
  /// images: [B, C_local, H, W] -> [B, S, D].
  [[nodiscard]] virtual Variable forward(const Tensor& images) const = 0;
  /// Channel-subset inference (paper §2.1): `images` is [B, W, H, W]
  /// holding only the listed global channels (strictly increasing,
  /// W == channels.size()); returns [B, S, D] aggregated from those
  /// channels alone. Default: unsupported; serving-capable front-ends
  /// override.
  [[nodiscard]] virtual Variable forward_subset(
      const Tensor& images, std::span<const Index> channels) const;
  /// Channels this front-end consumes from the local input tensor.
  [[nodiscard]] virtual Index local_channels() const = 0;
  /// Extracts this front-end's input from the full [B, C, H, W] batch
  /// (identity for single-device front-ends; D-CHAG slices its rank's
  /// channels). Lets training loops stay strategy-agnostic.
  [[nodiscard]] virtual Tensor select_input(const Tensor& full_images) const {
    return full_images;
  }
};

/// Single-device front-end: full tokenizer + one aggregator (the paper's
/// baseline when the aggregator is a single cross-attention layer, or the
/// §3.2 hierarchical variant when it is an AggregationTree).
class LocalFrontEnd : public FrontEnd {
 public:
  LocalFrontEnd(const ModelConfig& cfg, Index channels,
                std::unique_ptr<ChannelAggregator> agg, Rng& rng);

  [[nodiscard]] Variable forward(const Tensor& images) const override;
  [[nodiscard]] Variable forward_subset(
      const Tensor& images, std::span<const Index> channels) const override;
  [[nodiscard]] Index local_channels() const override {
    return tokenizer_->num_channels();
  }
  [[nodiscard]] const PatchTokenizer& tokenizer() const {
    return *tokenizer_;
  }
  [[nodiscard]] const ChannelAggregator& aggregator() const { return *agg_; }

 private:
  std::unique_ptr<PatchTokenizer> tokenizer_;
  std::unique_ptr<ChannelAggregator> agg_;
};

/// Baseline front-end factory: single cross-attention aggregation layer.
[[nodiscard]] std::unique_ptr<LocalFrontEnd> make_baseline_frontend(
    const ModelConfig& cfg, Index channels, Rng& rng);

/// Rearranges patchified images [B, C, S, p2] to the head's prediction
/// layout [B, S, C*p2] (and back), so losses compare like with like.
[[nodiscard]] Tensor to_prediction_layout(const Tensor& patches);
[[nodiscard]] Tensor from_prediction_layout(const Tensor& pred,
                                            Index channels, Index patch);

/// Masked-autoencoder task model (paper §5.1): masked aggregated tokens
/// are replaced by a learned mask token; the head reconstructs the pixels
/// of every input channel; the loss is MSE over masked patches only.
class MaeModel : public Module {
 public:
  MaeModel(const ModelConfig& cfg, std::unique_ptr<FrontEnd> frontend,
           Index target_channels, Rng& rng);

  struct Output {
    Variable pred;  ///< [B, S, C_target * p^2]
    Variable loss;  ///< scalar, masked MSE
  };

  /// `local_images` feeds the front-end (a channel subset under D-CHAG);
  /// `full_images` provides the reconstruction target (all channels);
  /// `mask` is [B, S] with 1 = masked. The mask must be identical across
  /// ranks — generate it with make_mask() from a shared-seed Rng.
  [[nodiscard]] Output forward(const Tensor& local_images,
                               const Tensor& full_images,
                               const Tensor& mask) const;

  [[nodiscard]] static Tensor make_mask(Index batch, Index seq,
                                        float mask_ratio, Rng& rng);

  [[nodiscard]] const FrontEnd& frontend() const { return *frontend_; }
  /// Mutable access for structural maintenance (e.g. rebinding a
  /// distributed front-end to a regrouped communicator after a rank
  /// failure). Weights are NOT meant to be touched through this.
  [[nodiscard]] FrontEnd& frontend_mut() { return *frontend_; }
  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

 private:
  ModelConfig cfg_;
  Index target_channels_;
  std::unique_ptr<FrontEnd> frontend_;
  std::unique_ptr<ViTEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  Variable mask_token_;  // [D]
};

/// Image-to-image forecasting task model (paper §5.2, ClimaX-style):
/// predict the full field at a future timestep from the current one.
///
/// With `lead_conditioned = true` the model carries the paper's metadata
/// token (Fig. 1: "a metadata token — typically representing contextual
/// information like time"): sinusoidal features of the lead time are
/// embedded and added to every aggregated token, so one model serves
/// multiple forecast horizons.
class ForecastModel : public Module {
 public:
  ForecastModel(const ModelConfig& cfg, std::unique_ptr<FrontEnd> frontend,
                Index target_channels, Rng& rng,
                bool lead_conditioned = false);

  struct Output {
    Variable pred;  ///< [B, S, C_target * p^2]
    Variable loss;  ///< scalar MSE over all pixels
  };

  [[nodiscard]] Output forward(const Tensor& local_images,
                               const Tensor& target_images,
                               float lead_time = 1.0f) const;

  /// Inference-only forward (serving): no target, no loss. Combine with
  /// autograd::NoGradGuard for a tape-free forward.
  [[nodiscard]] Variable predict(const Tensor& local_images,
                                 float lead_time = 1.0f) const;

  /// Inference on a channel subset: `images` [B, W, H, W] carries only the
  /// listed global channels (routed through the front-end's
  /// partial-channel path). Returns pred [B, S, C_target * p^2].
  [[nodiscard]] Variable predict_subset(const Tensor& images,
                                        std::span<const Index> channels,
                                        float lead_time = 1.0f) const;

  [[nodiscard]] bool lead_conditioned() const { return lead_conditioned_; }

  /// Per-channel RMSE between a prediction (head layout) and target
  /// images — the paper's Z500/T850/U10 metrics are channels of this.
  [[nodiscard]] static std::vector<float> per_channel_rmse(
      const Tensor& pred, const Tensor& target_images, Index patch);

  [[nodiscard]] const FrontEnd& frontend() const { return *frontend_; }
  /// Mutable access for structural maintenance (e.g. rebinding a
  /// distributed front-end to a regrouped communicator after a rank
  /// failure). Weights are NOT meant to be touched through this.
  [[nodiscard]] FrontEnd& frontend_mut() { return *frontend_; }
  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

 private:
  static constexpr Index kLeadFeatures = 16;  // 8 sin/cos frequency pairs

  /// Lead conditioning + encoder + head over aggregated tokens [B, S, D];
  /// the shared tail of forward() and the predict paths.
  [[nodiscard]] Variable encode_and_project(Variable tokens,
                                            float lead_time) const;

  ModelConfig cfg_;
  Index target_channels_;
  bool lead_conditioned_;
  std::unique_ptr<FrontEnd> frontend_;
  std::unique_ptr<ViTEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  std::unique_ptr<Linear> lead_embed_;  // only when lead_conditioned
};

}  // namespace dchag::model
