#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/communicator.hpp"

namespace dchag::comm {
namespace {

/// Deterministic per-rank payload so every reduction has a closed form.
std::vector<float> rank_payload(int rank, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(rank + 1) * 0.5f + static_cast<float>(i) * 0.25f;
  return v;
}

struct Param {
  int world;
  std::size_t n;
  Algorithm alg;
};

class CollectiveSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CollectiveSweep, AllReduceSum) {
  const auto [P, n, alg] = GetParam();
  World world(P);
  world.run([&](Communicator& comm) {
    auto data = rank_payload(comm.rank(), n);
    comm.all_reduce(data, ReduceOp::kSum, alg);
    for (std::size_t i = 0; i < n; ++i) {
      // sum over ranks of (r+1)*0.5 + i*0.25
      const float expected = 0.5f * P * (P + 1) / 2.0f +
                             static_cast<float>(P) * 0.25f *
                                 static_cast<float>(i);
      ASSERT_NEAR(data[i], expected, 1e-4f)
          << "rank " << comm.rank() << " element " << i;
    }
  });
}

TEST_P(CollectiveSweep, AllReduceAvgEqualsSumOverP) {
  const auto [P, n, alg] = GetParam();
  World world(P);
  world.run([&](Communicator& comm) {
    auto data = rank_payload(comm.rank(), n);
    comm.all_reduce(data, ReduceOp::kAvg, alg);
    for (std::size_t i = 0; i < n; ++i) {
      const float sum = 0.5f * P * (P + 1) / 2.0f +
                        static_cast<float>(P) * 0.25f * static_cast<float>(i);
      ASSERT_NEAR(data[i], sum / static_cast<float>(P), 1e-4f);
    }
  });
}

TEST_P(CollectiveSweep, AllReduceMax) {
  const auto [P, n, alg] = GetParam();
  World world(P);
  world.run([&](Communicator& comm) {
    auto data = rank_payload(comm.rank(), n);
    comm.all_reduce(data, ReduceOp::kMax, alg);
    for (std::size_t i = 0; i < n; ++i) {
      const float expected =
          static_cast<float>(P) * 0.5f + static_cast<float>(i) * 0.25f;
      ASSERT_NEAR(data[i], expected, 1e-5f);
    }
  });
}

TEST_P(CollectiveSweep, AllGatherOrderedByRank) {
  const auto [P, n, alg] = GetParam();
  World world(P);
  world.run([&](Communicator& comm) {
    auto send = rank_payload(comm.rank(), n);
    std::vector<float> recv(n * static_cast<std::size_t>(P));
    comm.all_gather(send, recv, alg);
    for (int r = 0; r < P; ++r) {
      auto expected = rank_payload(r, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(recv[static_cast<std::size_t>(r) * n + i], expected[i])
            << "rank " << comm.rank() << " gathered chunk " << r;
      }
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatterChunkPerRank) {
  const auto [P, n, alg] = GetParam();
  World world(P);
  world.run([&](Communicator& comm) {
    // send vector has P chunks of n elements each
    std::vector<float> send(static_cast<std::size_t>(P) * n);
    for (int c = 0; c < P; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        send[static_cast<std::size_t>(c) * n + i] =
            static_cast<float>(comm.rank() + 1) + static_cast<float>(c) +
            static_cast<float>(i) * 0.1f;
      }
    }
    std::vector<float> recv(n);
    comm.reduce_scatter(send, recv, ReduceOp::kSum, alg);
    for (std::size_t i = 0; i < n; ++i) {
      // sum over ranks of (r+1) + my_chunk + 0.1*i
      const float expected =
          static_cast<float>(P) * (P + 1) / 2.0f +
          static_cast<float>(P) *
              (static_cast<float>(comm.rank()) + 0.1f * static_cast<float>(i));
      ASSERT_NEAR(recv[i], expected, 1e-3f);
    }
  });
}

/// ReduceScatter followed by AllGather must equal AllReduce — the identity
/// ring-allreduce is built on.
TEST_P(CollectiveSweep, ReduceScatterThenAllGatherEqualsAllReduce) {
  const auto [P, n_raw, alg] = GetParam();
  const std::size_t n = std::max<std::size_t>(n_raw, 1);
  World world(P);
  world.run([&](Communicator& comm) {
    const std::size_t total = n * static_cast<std::size_t>(P);
    std::vector<float> a(total);
    for (std::size_t i = 0; i < total; ++i)
      a[i] = static_cast<float>(comm.rank()) + static_cast<float>(i) * 0.01f;
    std::vector<float> b = a;

    comm.all_reduce(a, ReduceOp::kSum, alg);

    std::vector<float> chunk(n);
    comm.reduce_scatter(b, chunk, ReduceOp::kSum, alg);
    std::vector<float> gathered(total);
    comm.all_gather(chunk, gathered, alg);

    for (std::size_t i = 0; i < total; ++i)
      ASSERT_NEAR(a[i], gathered[i], 1e-3f);
  });
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndAlgorithms, CollectiveSweep,
    ::testing::Values(
        Param{1, 8, Algorithm::kDirect}, Param{2, 5, Algorithm::kDirect},
        Param{4, 16, Algorithm::kDirect}, Param{8, 3, Algorithm::kDirect},
        Param{2, 5, Algorithm::kRing}, Param{4, 16, Algorithm::kRing},
        Param{8, 7, Algorithm::kRing}, Param{3, 10, Algorithm::kRing},
        Param{4, 16, Algorithm::kHierarchical},
        Param{8, 9, Algorithm::kHierarchical}),
    [](const ::testing::TestParamInfo<Param>& info) {
      const char* alg = info.param.alg == Algorithm::kDirect   ? "Direct"
                        : info.param.alg == Algorithm::kRing   ? "Ring"
                                                               : "Hier";
      return std::string("P") + std::to_string(info.param.world) + "N" +
             std::to_string(info.param.n) + alg;
    });

TEST(Collectives, HierarchicalMatchesDirectWithNodes) {
  // 8 ranks on 2 "nodes" of 4: hierarchical must equal flat reduction.
  World world(8, Topology::packed(8, 4));
  world.run([&](Communicator& comm) {
    std::vector<float> a(13);
    std::iota(a.begin(), a.end(), static_cast<float>(comm.rank()));
    std::vector<float> b = a;
    comm.all_reduce(a, ReduceOp::kSum, Algorithm::kHierarchical);
    comm.all_reduce(b, ReduceOp::kSum, Algorithm::kDirect);
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-4f);
  });
}

TEST(Collectives, Broadcast) {
  World world(4);
  world.run([&](Communicator& comm) {
    std::vector<float> data(6, comm.rank() == 2 ? 7.0f : 0.0f);
    comm.broadcast(data, 2);
    for (float x : data) ASSERT_EQ(x, 7.0f);
  });
}

TEST(Collectives, BroadcastFromEveryRoot) {
  World world(3);
  world.run([&](Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<float> data(4, static_cast<float>(comm.rank()));
      comm.broadcast(data, root);
      for (float x : data) ASSERT_EQ(x, static_cast<float>(root));
    }
  });
}

TEST(Collectives, SendRecvPingPong) {
  World world(2);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> msg{1, 2, 3};
      comm.send(msg, 1, /*tag=*/0);
      std::vector<float> reply(3);
      comm.recv(reply, 1, /*tag=*/1);
      ASSERT_EQ(reply[0], 2.0f);
      ASSERT_EQ(reply[2], 6.0f);
    } else {
      std::vector<float> buf(3);
      comm.recv(buf, 0, /*tag=*/0);
      for (float& x : buf) x *= 2.0f;
      comm.send(buf, 0, /*tag=*/1);
    }
  });
}

TEST(Collectives, SendRecvTagsDisambiguate) {
  World world(2);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> a{1.0f};
      std::vector<float> b{2.0f};
      comm.send(a, 1, 10);
      comm.send(b, 1, 20);
    } else {
      std::vector<float> b(1);
      std::vector<float> a(1);
      // Receive in reverse tag order: rendezvous per tag still matches.
      comm.recv(a, 0, 10);
      comm.recv(b, 0, 20);
      ASSERT_EQ(a[0], 1.0f);
      ASSERT_EQ(b[0], 2.0f);
    }
  });
}

TEST(Collectives, StatsLedgerRecordsCallsAndBytes) {
  World world(2);
  world.run([&](Communicator& comm) {
    std::vector<float> d(10, 1.0f);
    comm.all_reduce(d);
    std::vector<float> recv(20);
    comm.all_gather(std::span<const float>(d.data(), 10), recv);
    const CommStats& s = comm.stats();
    ASSERT_EQ(s.calls_of(CollectiveKind::kAllReduce), 1u);
    ASSERT_EQ(s.bytes_of(CollectiveKind::kAllReduce), 40u);
    ASSERT_EQ(s.calls_of(CollectiveKind::kAllGather), 1u);
    ASSERT_EQ(s.bytes_of(CollectiveKind::kAllGather), 80u);
    ASSERT_EQ(s.calls_of(CollectiveKind::kReduceScatter), 0u);
  });
}

TEST(Collectives, StatsResetClears) {
  World world(2);
  world.run([&](Communicator& comm) {
    std::vector<float> d(4, 1.0f);
    comm.all_reduce(d);
    comm.reset_stats();
    ASSERT_EQ(comm.stats().total_calls(), 0u);
  });
}

TEST(Collectives, RepeatedCollectivesDoNotInterfere) {
  // Stress the barrier reuse: many back-to-back collectives of mixed type.
  World world(4);
  world.run([&](Communicator& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<float> d(7, static_cast<float>(comm.rank() + iter));
      comm.all_reduce(d, ReduceOp::kSum,
                      iter % 2 == 0 ? Algorithm::kDirect : Algorithm::kRing);
      const float expected = 4.0f * iter + 6.0f;  // sum of ranks 0..3 + 4*iter
      ASSERT_NEAR(d[0], expected, 1e-4f) << "iter " << iter;
      comm.barrier();
    }
  });
}

TEST(Collectives, SizeMismatchThrows) {
  World world(2);
  EXPECT_THROW(world.run([&](Communicator& comm) {
    std::vector<float> send(4);
    std::vector<float> recv(4);  // should be 8
    comm.all_gather(send, recv);
  }),
               Error);
}

TEST(Collectives, WorldRethrowsRankException) {
  World world(1);
  EXPECT_THROW(
      world.run([](Communicator&) { DCHAG_FAIL("rank failure"); }), Error);
}

}  // namespace
}  // namespace dchag::comm
