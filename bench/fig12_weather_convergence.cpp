// Figure 12: weather forecasting (ClimaX-style image-to-image model on
// ERA5-like fields). Training-loss and test-RMSE parity between the
// single-GPU baseline and D-CHAG-C / D-CHAG-L run on four ranks, with
// hyperparameters tuned for the baseline only. RMSE is reported for the
// paper's three variables: Z500, T850, U10. The paper's 53M model / 80
// ERA5 channels are scaled to a CPU-trainable configuration over the
// synthetic planetary-wave generator (see DESIGN.md).
#include <map>

#include "bench_util.hpp"
#include "core/dchag_frontend.hpp"
#include "data/weather.hpp"
#include "train/loops.hpp"

namespace {

using namespace dchag;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

constexpr Index kSteps = 40;
constexpr Index kEvalBatches = 5;

data::WeatherConfig weather_config() {
  data::WeatherConfig wc;
  wc.num_variables = 3;       // z, t, u -like groups
  wc.levels_per_variable = 4;
  wc.surface_variables = 4;   // 16 channels total
  wc.height = 16;
  wc.width = 32;
  return wc;
}

ModelConfig model_config() {
  ModelConfig cfg;
  cfg.embed_dim = 32;
  cfg.num_layers = 2;
  cfg.num_heads = 4;
  cfg.patch_size = 4;
  cfg.image_h = 16;
  cfg.image_w = 32;
  cfg.validate();
  return cfg;
}

train::LoopConfig loop_config() {
  train::LoopConfig lc;
  lc.steps = kSteps;
  lc.adam.lr = 2e-3f;
  return lc;
}

struct RunResult {
  train::TrainCurve curve;
  std::vector<float> rmse;
};

}  // namespace

int main() {
  bench::header("Figure 12",
                "Weather forecasting parity (baseline vs D-CHAG-C/-L on 4 "
                "ranks)");
  bench::ShapeChecks checks;
  const ModelConfig cfg = model_config();
  const data::WeatherConfig wc = weather_config();
  data::WeatherGenerator gen(wc, 11);
  const Index C = wc.channels();

  std::vector<data::WeatherGenerator::Pair> train_pairs;
  std::vector<data::WeatherGenerator::Pair> test_pairs;
  for (Index i = 0; i < kSteps; ++i)
    train_pairs.push_back(gen.sample_pair(2, 1.0f));
  for (Index i = 0; i < kEvalBatches; ++i)
    test_pairs.push_back(gen.sample_pair(2, 1.0f));
  const auto next = [&](Index step) {
    const auto& p = train_pairs[static_cast<std::size_t>(step)];
    return std::make_pair(p.now, p.future);
  };
  const auto next_eval = [&](Index i) {
    const auto& p = test_pairs[static_cast<std::size_t>(i)];
    return std::make_pair(p.now, p.future);
  };

  // Baseline.
  RunResult base;
  {
    Rng rng(31415);
    auto fe = model::make_baseline_frontend(cfg, C, rng);
    model::ForecastModel fm(cfg, std::move(fe), C, rng);
    base.curve = train::train_forecast(fm, loop_config(), next);
    base.rmse = train::evaluate_forecast_rmse(fm, cfg.patch_size, next_eval,
                                              kEvalBatches);
  }

  // D-CHAG variants on 4 ranks.
  std::map<char, RunResult> dchag;
  for (AggLayerKind kind :
       {AggLayerKind::kCrossAttention, AggLayerKind::kLinear}) {
    RunResult result;
    result.curve.losses.resize(static_cast<std::size_t>(kSteps));
    comm::World world(4);
    world.run([&](comm::Communicator& comm) {
      Rng rng(31415);
      auto fm = core::make_dchag_forecast(cfg, C, comm, {1, kind}, rng);
      const train::TrainCurve curve =
          train::train_forecast(*fm, loop_config(), next);
      // RMSE evaluation runs collective forwards: every rank participates,
      // rank 0 records.
      const auto rmse = train::evaluate_forecast_rmse(
          *fm, cfg.patch_size, next_eval, kEvalBatches);
      if (comm.rank() == 0) {
        result.curve = curve;
        result.rmse = rmse;
      }
    });
    dchag[kind == AggLayerKind::kLinear ? 'L' : 'C'] = std::move(result);
  }

  bench::section("training loss");
  std::printf("%6s %12s %12s %12s\n", "iter", "baseline", "D-CHAG-C",
              "D-CHAG-L");
  for (Index i = 0; i < kSteps; i += 4) {
    std::printf("%6lld %12.4f %12.4f %12.4f\n", static_cast<long long>(i),
                base.curve.losses[static_cast<std::size_t>(i)],
                dchag['C'].curve.losses[static_cast<std::size_t>(i)],
                dchag['L'].curve.losses[static_cast<std::size_t>(i)]);
  }

  bench::section("test RMSE (paper variables)");
  const Index zc = gen.z500_channel();
  const Index tc = gen.t850_channel();
  const Index uc = gen.u10_channel();
  std::printf("%8s %12s %12s %12s\n", "variable", "baseline", "D-CHAG-C",
              "D-CHAG-L");
  for (auto [name, ch] : {std::pair<const char*, Index>{"Z500", zc},
                          {"T850", tc},
                          {"U10", uc}}) {
    std::printf("%8s %12.4f %12.4f %12.4f\n", name,
                base.rmse[static_cast<std::size_t>(ch)],
                dchag['C'].rmse[static_cast<std::size_t>(ch)],
                dchag['L'].rmse[static_cast<std::size_t>(ch)]);
  }

  checks.expect(base.curve.tail_mean(5) < base.curve.losses.front(),
                "baseline loss decreases over training");
  for (char k : {'C', 'L'}) {
    const RunResult& r = dchag.at(k);
    checks.expect(r.curve.tail_mean(5) < r.curve.losses.front(),
                  std::string("D-CHAG-") + k + " loss decreases");
    checks.expect(std::abs(r.curve.tail_mean(5) - base.curve.tail_mean(5)) <
                      0.35f * base.curve.tail_mean(5),
                  std::string("D-CHAG-") + k +
                      " training loss tracks the baseline");
    for (Index ch : {zc, tc, uc}) {
      const float b = base.rmse[static_cast<std::size_t>(ch)];
      const float d = r.rmse[static_cast<std::size_t>(ch)];
      checks.expect(std::abs(d - b) < 0.35f * b,
                    std::string("D-CHAG-") + k + " RMSE close to baseline "
                        "(paper: ~1% difference) on channel " +
                        std::to_string(ch));
    }
  }
  return checks.report();
}
