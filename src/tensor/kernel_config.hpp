// Runtime-dispatched kernel backend selection. Every hot tensor kernel
// (ops.cpp) consults kernel_config() and picks one of three
// implementations:
//
//   kNaive    — the original scalar triple-loop kernels. Kept forever as
//               the bit-exactness oracle for parity tests.
//   kBlocked  — cache-blocked single-threaded kernels (MC/KC/NC tiled
//               matmul with a packed micro-kernel; gemm.cpp).
//   kParallel — kBlocked plus ThreadPool::parallel_for fan-out. Produces
//               bit-identical results to kBlocked at any thread count.
//
// Process defaults come from the environment:
//   DCHAG_KERNEL  = naive | blocked | parallel   (default: parallel)
//   DCHAG_THREADS = total lanes incl. the caller (default: hw concurrency)
//
// set_kernel_config() changes the process default; KernelScope overrides
// it for the current thread only (RAII), which is how serve workers and
// SPMD rank threads pin a backend without racing each other.
#pragma once

#include <string>

#include "tensor/shape.hpp"

namespace dchag::tensor {

enum class KernelBackend { kNaive, kBlocked, kParallel };

struct KernelConfig {
  KernelBackend backend = KernelBackend::kParallel;
  /// Max lanes a single parallel_for of this scope may occupy (caller
  /// included). 0 = whole pool. Does not resize the process pool.
  int threads = 0;
};

/// Effective config for the calling thread: innermost KernelScope if one
/// is active, else the process default (env-initialised on first use).
[[nodiscard]] KernelConfig kernel_config();

/// Replaces the process default (not thread-local overrides).
void set_kernel_config(KernelConfig cfg);

/// Thread-local backend override, e.g. one serve worker pinning kBlocked
/// while other workers keep the process default. Nestable.
class KernelScope {
 public:
  explicit KernelScope(KernelConfig cfg);
  ~KernelScope();
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  KernelConfig prev_;
  bool had_prev_;
};

/// "naive" | "blocked" | "parallel" -> backend; throws on anything else.
[[nodiscard]] KernelBackend parse_backend(const std::string& name);
[[nodiscard]] const char* to_string(KernelBackend b);

namespace detail {
/// Shared bounded env-int parse (DCHAG_THREADS etc.): returns `fallback`
/// unless the variable is a bare integer in [lo, hi]. One definition so
/// pool sizing and KernelConfig can never disagree about the same var.
[[nodiscard]] int env_int(const char* name, int lo, int hi, int fallback);
}  // namespace detail

/// False when gemm.cpp was compiled with SIMD flags this CPU lacks.
/// Every request for blocked/parallel (env, set_kernel_config,
/// KernelScope) then degrades to kNaive with a one-time stderr warning —
/// never a fault, never an exception, so exotic hosts still run.
[[nodiscard]] bool blocked_kernels_supported();

}  // namespace dchag::tensor
