// Minimal parameter-container base class shared by all model layers.
//
// Concrete layers register their Variables (and child modules) so that
// optimizers, FSDP sharding, and DP gradient reduction can enumerate every
// trainable tensor in a deterministic order (registration order), which is
// what keeps SPMD replicas bit-identical across ranks.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/autograd.hpp"
#include "tensor/rng.hpp"

namespace dchag::autograd {

/// A serving-frozen module detected a weight mutation after its GEMM
/// panels were pre-packed (e.g. load_module over a frozen model). The
/// packs would silently serve stale values, so the forward fails loudly
/// instead; call freeze_for_serving() again after mutating weights.
class StaleWeightPackError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Debug builds verify the full weight against its pack fingerprint on
/// every fused forward; release builds check a strided 64-element sample
/// (always including the first and last elements).
#ifndef NDEBUG
inline constexpr bool kVerifyPackFull = true;
#else
inline constexpr bool kVerifyPackFull = false;
#endif

[[nodiscard]] inline std::uint64_t weight_fingerprint(
    const tensor::Tensor& t) {
  const float* p = t.data();
  const tensor::Index n = t.numel();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  };
  if (kVerifyPackFull || n <= 64) {
    for (tensor::Index i = 0; i < n; ++i) mix(p[i]);
  } else {
    const tensor::Index step = n / 64;
    for (tensor::Index i = 0; i < n; i += step) mix(p[i]);
    mix(p[n - 1]);
  }
  return h;
}

}  // namespace detail

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;
  virtual ~Module() = default;

  /// All trainable parameters, in deterministic registration order
  /// (depth-first through child modules).
  [[nodiscard]] std::vector<Variable> parameters() const {
    std::vector<Variable> out;
    collect_parameters(out);
    return out;
  }

  [[nodiscard]] tensor::Index num_parameters() const {
    tensor::Index n = 0;
    for (const Variable& p : parameters()) n += p.shape().numel();
    return n;
  }

  void zero_grad() const {
    for (Variable& p : parameters()) p.zero_grad();
  }

  void collect_parameters(std::vector<Variable>& out) const {
    for (const Variable& p : params_) out.push_back(p);
    for (const Module* c : children_) c->collect_parameters(out);
  }

  /// Recursively flips training mode (train/eval) on this module and every
  /// registered child. Serving asserts eval mode; layers with mode-dependent
  /// behaviour (dropout, batch statistics) branch on is_training().
  /// Re-entering training clears any serving freeze (and its weight packs)
  /// module by module, so a fine-tune after serving never trains against
  /// stale panels.
  void train(bool mode = true) {
    training_ = mode;
    if (mode && frozen_) {
      frozen_ = false;
      on_unfreeze();
    }
    for (Module* c : children_) c->train(mode);
  }
  void eval() { train(false); }
  [[nodiscard]] bool is_training() const { return training_; }

  /// Prepares the module tree for serving: eval() plus a recursive
  /// pre-pack of every GEMM weight (Linear::on_freeze), stamped with a
  /// weight fingerprint. Fused no-grad forwards engage only on frozen
  /// modules; a weight mutated after the freeze raises
  /// StaleWeightPackError on the next fused forward. Idempotent.
  void freeze_for_serving() {
    train(false);
    freeze_rec();
  }
  [[nodiscard]] bool is_frozen() const { return frozen_; }

 protected:
  /// Pre-pack hooks: on_freeze() builds serving-time artefacts (packed
  /// panels, fingerprints); on_unfreeze() drops them when training
  /// resumes. Called once per freeze/unfreeze transition per module.
  virtual void on_freeze() {}
  virtual void on_unfreeze() {}
  Variable register_param(std::string name, tensor::Tensor init) {
    Variable v = Variable::param(std::move(init), std::move(name));
    params_.push_back(v);
    return v;
  }
  /// Child must outlive this module (members registered in ctor order).
  void register_child(Module& child) { children_.push_back(&child); }

 private:
  void freeze_rec() {
    frozen_ = true;
    on_freeze();
    for (Module* c : children_) c->freeze_rec();
  }

  std::vector<Variable> params_;
  std::vector<Module*> children_;
  bool training_ = true;
  bool frozen_ = false;
};

/// Dense layer y = x W + b with Xavier init; the workhorse of every module.
///
/// When frozen for serving, the tape-free forward runs on pre-packed
/// weight panels with the bias (and any requested activation / residual /
/// layernorm tail) fused into the GEMM's row strips — bit-identical to
/// the unfused op chain, which the plan parity suite asserts.
class Linear : public Module {
 public:
  Linear(tensor::Index in, tensor::Index out, tensor::Rng& rng,
         const std::string& name = "linear")
      : weight_(register_param(name + ".weight",
                               rng.xavier(tensor::Shape{in, out}))),
        bias_(register_param(name + ".bias", tensor::Tensor({out}, 0.0f))) {}

  [[nodiscard]] Variable forward(const Variable& x) const {
    if (fused_ready()) {
      tensor::ops::LinearEpilogue epi;
      epi.bias = &bias_.value();
      return Variable::input(
          tensor::ops::linear_fused(x.value(), weight_.value(), &*packed_,
                                    epi));
    }
    return add(matmul(x, weight_), bias_);
  }

  /// y = gelu(x W + b); the GELU rides the GEMM tail when frozen.
  [[nodiscard]] Variable forward_gelu(const Variable& x) const {
    if (fused_ready()) {
      tensor::ops::LinearEpilogue epi;
      epi.bias = &bias_.value();
      epi.gelu = true;
      return Variable::input(
          tensor::ops::linear_fused(x.value(), weight_.value(), &*packed_,
                                    epi));
    }
    return gelu(forward(x));
  }

  /// y = residual + (x W + b); the residual add rides the GEMM tail when
  /// frozen (bitwise-equal operand swap of a commutative float add).
  [[nodiscard]] Variable forward_residual(const Variable& x,
                                          const Variable& residual) const {
    if (fused_ready()) {
      tensor::ops::LinearEpilogue epi;
      epi.bias = &bias_.value();
      epi.residual = &residual.value();
      return Variable::input(
          tensor::ops::linear_fused(x.value(), weight_.value(), &*packed_,
                                    epi));
    }
    return add(residual, forward(x));
  }

  /// y = layernorm(residual + (x W + b)); the full post-GEMM tail of a
  /// transformer block's closing projection, fused when frozen.
  [[nodiscard]] Variable forward_residual_layernorm(
      const Variable& x, const Variable& residual, const Variable& gamma,
      const Variable& beta, float eps = 1e-5f) const {
    if (fused_ready()) {
      tensor::ops::LinearEpilogue epi;
      epi.bias = &bias_.value();
      epi.residual = &residual.value();
      epi.ln_gamma = &gamma.value();
      epi.ln_beta = &beta.value();
      epi.ln_eps = eps;
      return Variable::input(
          tensor::ops::linear_fused(x.value(), weight_.value(), &*packed_,
                                    epi));
    }
    return layernorm(forward_residual(x, residual), gamma, beta, eps);
  }

  [[nodiscard]] const Variable& weight() const { return weight_; }
  [[nodiscard]] const Variable& bias() const { return bias_; }

 protected:
  void on_freeze() override {
    const tensor::Tensor& w = weight_.value();
    packed_ = tensor::gemm::pack_b_matrix(w.data(), w.dim(0), w.dim(1),
                                          w.dim(1));
    packed_fp_ = detail::weight_fingerprint(w);
  }
  void on_unfreeze() override { packed_.reset(); }

 private:
  /// True iff the tape-free pre-packed path applies; verifies the weight
  /// against its pack-time fingerprint first and fails loudly on drift.
  [[nodiscard]] bool fused_ready() const {
    if (!packed_.has_value() || is_grad_enabled()) return false;
    if (detail::weight_fingerprint(weight_.value()) != packed_fp_) {
      throw StaleWeightPackError(
          "weight '" + weight_.name() +
          "' was mutated after freeze_for_serving(); re-freeze before "
          "serving (packed GEMM panels are stale)");
    }
    return true;
  }

  Variable weight_;
  Variable bias_;
  std::optional<tensor::gemm::PackedB> packed_;
  std::uint64_t packed_fp_ = 0;
};

/// LayerNorm over the last dimension with learnable gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(tensor::Index dim, const std::string& name = "ln")
      : gamma_(register_param(name + ".gamma", tensor::Tensor({dim}, 1.0f))),
        beta_(register_param(name + ".beta", tensor::Tensor({dim}, 0.0f))) {}

  [[nodiscard]] Variable forward(const Variable& x) const {
    // Frozen tape-free forward skips the mean/rstd tensors backward
    // needs (the three-fresh-tensors-per-call serving hotspot).
    if (is_frozen() && !is_grad_enabled()) {
      return Variable::input(tensor::ops::layernorm_value(
          x.value(), gamma_.value(), beta_.value()));
    }
    return layernorm(x, gamma_, beta_);
  }

  [[nodiscard]] const Variable& gamma() const { return gamma_; }
  [[nodiscard]] const Variable& beta() const { return beta_; }

 private:
  Variable gamma_;
  Variable beta_;
};

}  // namespace dchag::autograd
