#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace dchag::tensor {
namespace {

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{2, 3});
  for (float x : t.span()) EXPECT_EQ(x, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{4}, 2.5f);
  for (float x : t.span()) EXPECT_EQ(x, 2.5f);
}

TEST(Tensor, FromDataRoundTrip) {
  Tensor t = Tensor::from_data(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(Tensor, FromDataSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_data(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, CopyAliasesStorage) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b = a;
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 9.0f);
  EXPECT_TRUE(a.same_storage(b));
}

TEST(Tensor, CloneIsDeep) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b = a.clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
  EXPECT_FALSE(a.same_storage(b));
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::from_data(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.reshape(Shape{3, 2});
  EXPECT_TRUE(a.same_storage(b));
  EXPECT_EQ(b.at({2, 1}), 6.0f);
  EXPECT_THROW(a.reshape(Shape{4}), Error);
}

TEST(Tensor, Slice0IsView) {
  Tensor a = Tensor::from_data(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor row = a.slice0(1, 1);
  EXPECT_EQ(row.shape(), (Shape{1, 2}));
  EXPECT_EQ(row.at({0, 0}), 3.0f);
  row.data()[0] = 99.0f;
  EXPECT_EQ(a.at({1, 0}), 99.0f);  // view into same storage
  EXPECT_THROW(a.slice0(2, 2), Error);
}

TEST(Tensor, ScalarItem) {
  EXPECT_EQ(Tensor::scalar(3.5f).item(), 3.5f);
  Tensor t(Shape{2});
  EXPECT_THROW((void)t.item(), Error);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW((void)t.at({2, 0}), Error);
  EXPECT_THROW((void)t.at({0}), Error);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, ForkIndependent) {
  Rng a(42);
  Rng child1 = a.fork(1);
  Rng child2 = a.fork(2);
  EXPECT_NE(child1.normal(), child2.normal());
}

TEST(Rng, XavierBounds) {
  Rng r(7);
  Tensor w = r.xavier(Shape{64, 64});
  const float bound = std::sqrt(6.0f / 128.0f);
  for (float x : w.span()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(3);
  Tensor t = r.normal_tensor(Shape{10000}, 1.0f, 2.0f);
  double mean = 0.0;
  for (float x : t.span()) mean += x;
  mean /= 10000.0;
  double var = 0.0;
  for (float x : t.span()) var += (x - mean) * (x - mean);
  var /= 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace dchag::tensor
