#include "train/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace dchag::train {
namespace {

using tensor::Rng;
using tensor::Shape;

TEST(Sgd, StepMovesAgainstGradient) {
  Variable p = Variable::param(Tensor(Shape{3}, 1.0f));
  autograd::sum_all(autograd::mul(p, p)).backward();  // grad = 2
  Sgd opt({p}, 0.1f);
  opt.step();
  for (float v : p.value().span()) EXPECT_NEAR(v, 0.8f, 1e-6f);
  opt.zero_grad();
  EXPECT_FALSE(p.has_grad());
}

TEST(Sgd, SkipsParamsWithoutGrad) {
  Variable p = Variable::param(Tensor(Shape{2}, 1.0f));
  Sgd opt({p}, 0.1f);
  opt.step();  // no grad yet: no-op, no crash
  EXPECT_EQ(p.value().at({0}), 1.0f);
}

TEST(AdamUpdate, FirstStepMatchesClosedForm) {
  // With m=v=0 and t=1: m_hat = g, v_hat = g^2, update = lr * g/(|g|+eps).
  Tensor value(Shape{2}, 1.0f);
  Tensor grad = Tensor::from_data(Shape{2}, {0.5f, -2.0f});
  Tensor m(Shape{2});
  Tensor v(Shape{2});
  AdamConfig cfg;
  cfg.lr = 0.1f;
  adamw_update(value, grad, m, v, /*t=*/1, cfg);
  EXPECT_NEAR(value.at({0}), 1.0f - 0.1f, 1e-5f);  // sign(g)=+1
  EXPECT_NEAR(value.at({1}), 1.0f + 0.1f, 1e-5f);  // sign(g)=-1
}

TEST(AdamUpdate, WeightDecayShrinksParams) {
  Tensor value(Shape{1}, 1.0f);
  Tensor grad(Shape{1}, 0.0f);
  Tensor m(Shape{1});
  Tensor v(Shape{1});
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  adamw_update(value, grad, m, v, 1, cfg);
  EXPECT_NEAR(value.at({0}), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimise (p - 3)^2
  Variable p = Variable::param(Tensor(Shape{1}, 0.0f));
  Adam opt({p}, {.lr = 0.1f});
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    Variable diff = autograd::add(p, Variable::input(Tensor::scalar(-3.0f)));
    autograd::sum_all(autograd::mul(diff, diff)).backward();
    opt.step();
  }
  EXPECT_NEAR(p.value().item(), 3.0f, 0.05f);
}

TEST(Adam, DeterministicAcrossInstances) {
  Rng rng(1);
  Tensor init = rng.normal_tensor(Shape{4});
  auto run = [&](int steps) {
    Variable p = Variable::param(init.clone());
    Adam opt({p}, {});
    for (int i = 0; i < steps; ++i) {
      opt.zero_grad();
      autograd::sum_all(autograd::mul(p, p)).backward();
      opt.step();
    }
    return p.value().clone();
  };
  Tensor a = run(10);
  Tensor b = run(10);
  EXPECT_LT(tensor::ops::max_abs_diff(a, b), 1e-9f);
}

}  // namespace
}  // namespace dchag::train
