// Channel-subset request correctness (paper §2.1): subset tokenization is
// bit-identical to the matching rows of a full tokenization, the
// aggregation tree's partial-channel routing degenerates to the plain
// forward on the full set, slot validation fails loudly, and the D-CHAG
// SPMD front-end serves subsets replicated across ranks — including ranks
// owning none of the requested channels.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/dchag_frontend.hpp"
#include "model/foundation.hpp"

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Index;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor gather_channels(const Tensor& images, const std::vector<Index>& ids) {
  std::vector<Tensor> slabs;
  slabs.reserve(ids.size());
  for (Index c : ids) slabs.push_back(ops::slice(images, 1, c, 1));
  return slabs.size() == 1 ? slabs.front() : ops::concat(slabs, 1);
}

TEST(ChannelSubsetServe, SubsetTokensMatchFullTokenizationBitForBit) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(1);
  PatchTokenizer tok(cfg, 6, rng);
  Tensor images = Rng(2).normal_tensor(Shape{2, 6, 16, 16});
  Tensor full = tok.forward(images).value();  // [B, 6, S, D]

  const std::vector<Index> subset{1, 3, 4};
  Tensor sub_tokens =
      tok.forward_subset(gather_channels(images, subset), subset).value();
  for (std::size_t i = 0; i < subset.size(); ++i) {
    Tensor expected = ops::slice(full, 1, subset[i], 1);
    Tensor got = ops::slice(sub_tokens, 1, static_cast<Index>(i), 1);
    EXPECT_EQ(ops::max_abs_diff(expected, got), 0.0f) << "channel "
                                                      << subset[i];
  }
}

TEST(ChannelSubsetServe, TreeFullSetSubsetEqualsForward) {
  ModelConfig cfg = ModelConfig::tiny();
  for (AggLayerKind kind :
       {AggLayerKind::kCrossAttention, AggLayerKind::kLinear}) {
    Rng rng(3);
    auto tree = AggregationTree::with_units(cfg, kind, 8, 4, rng);
    Tensor tokens = Rng(4).normal_tensor(Shape{1, 4, 8, cfg.embed_dim});
    std::vector<Index> all{0, 1, 2, 3, 4, 5, 6, 7};
    Tensor direct = tree->forward(Variable::input(tokens)).value();
    Tensor routed =
        tree->forward_subset(Variable::input(tokens), all).value();
    EXPECT_EQ(ops::max_abs_diff(direct, routed), 0.0f)
        << "kind " << to_string(kind);
  }
}

TEST(ChannelSubsetServe, TreePartialRoutingIsDeterministicAndSensitive) {
  ModelConfig cfg = ModelConfig::tiny();
  for (AggLayerKind kind :
       {AggLayerKind::kCrossAttention, AggLayerKind::kLinear}) {
    Rng rng(5);
    // 8 channels, first-level width 3 -> uneven groups + a second level:
    // the subset below spans group boundaries and skips whole groups.
    AggregationTree tree(cfg, kind, 8, 3, rng);
    Tensor full = Rng(6).normal_tensor(Shape{2, 4, 8, cfg.embed_dim});
    const std::vector<Index> subset{0, 4, 7};
    std::vector<Tensor> slabs;
    for (Index c : subset) slabs.push_back(ops::slice(full, 2, c, 1));
    Tensor sub_tokens = ops::concat(slabs, 2);

    Variable out =
        tree.forward_subset(Variable::input(sub_tokens), subset);
    EXPECT_EQ(out.shape(), (Shape{2, 4, cfg.embed_dim}));
    for (float v : out.value().span()) ASSERT_TRUE(std::isfinite(v));
    // Deterministic across calls...
    Tensor again =
        tree.forward_subset(Variable::input(sub_tokens.clone()), subset)
            .value();
    EXPECT_EQ(ops::max_abs_diff(out.value(), again), 0.0f);
    // ...and genuinely different from aggregating all 8 channels.
    Tensor full_out = tree.forward(Variable::input(full)).value();
    EXPECT_GT(ops::max_abs_diff(out.value(), full_out), 1e-5f);
  }
}

TEST(ChannelSubsetServe, SlotValidationFailsLoudly) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(7);
  AggregationTree tree(cfg, AggLayerKind::kCrossAttention, 6, 3, rng);
  Tensor tokens = Rng(8).normal_tensor(Shape{1, 4, 2, cfg.embed_dim});
  EXPECT_THROW(
      tree.forward_subset(Variable::input(tokens), std::vector<Index>{3, 1}),
      Error);  // unsorted
  EXPECT_THROW(
      tree.forward_subset(Variable::input(tokens), std::vector<Index>{1, 9}),
      Error);  // out of range
  EXPECT_THROW(tree.forward_subset(Variable::input(tokens),
                                   std::vector<Index>{0, 1, 2}),
               Error);  // token/slot count mismatch

  Rng rng2(9);
  PatchTokenizer tok(cfg, 4, rng2);
  Tensor img = Rng(10).normal_tensor(Shape{1, 2, 16, 16});
  EXPECT_THROW(
      (void)tok.forward_subset(img, std::vector<Index>{2, 7}),
      Error);  // channel 7 not tokenized here
}

TEST(ChannelSubsetServe, ForecastPredictSubsetEndToEnd) {
  ModelConfig cfg = ModelConfig::tiny();
  constexpr Index kChannels = 6;
  Rng rng(11);
  auto agg = AggregationTree::with_units(cfg, AggLayerKind::kCrossAttention,
                                         kChannels, 2, rng);
  auto fe = std::make_unique<LocalFrontEnd>(cfg, kChannels, std::move(agg),
                                            rng);
  ForecastModel model(cfg, std::move(fe), kChannels, rng);
  Tensor images = Rng(12).normal_tensor(Shape{2, kChannels, 16, 16});
  const std::vector<Index> subset{0, 2, 5};
  autograd::NoGradGuard no_grad;
  Tensor pred = model.predict_subset(gather_channels(images, subset), subset)
                    .value();
  EXPECT_EQ(pred.shape(),
            (Shape{2, cfg.seq_len(),
                   kChannels * cfg.patch_size * cfg.patch_size}));
  for (float v : pred.span()) ASSERT_TRUE(std::isfinite(v));
}

TEST(ChannelSubsetServe, DchagSubsetReplicatedAcrossRanksAndFullSetExact) {
  ModelConfig cfg = ModelConfig::tiny();
  constexpr Index kChannels = 8;
  Tensor images = Rng(13).normal_tensor(Shape{2, kChannels, 16, 16});
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    Rng master(21);
    core::DchagFrontEnd fe(cfg, kChannels, comm,
                           {/*tree_units=*/1, AggLayerKind::kLinear},
                           master);
    autograd::NoGradGuard no_grad;

    // Full set via the subset path == plain distributed forward.
    std::vector<Index> all(kChannels);
    for (Index c = 0; c < kChannels; ++c) all[static_cast<std::size_t>(c)] = c;
    Tensor direct = fe.forward(fe.slice_local_channels(images)).value();
    Tensor routed = fe.forward_subset(images, all).value();
    EXPECT_EQ(ops::max_abs_diff(direct, routed), 0.0f);

    // A subset leaving ranks 1 and 2 empty (channels 0,1 on rank 0 and 7
    // on rank 3) still aggregates, replicated across all ranks.
    const std::vector<Index> subset{0, 1, 7};
    Tensor sub_images = gather_channels(images, subset);
    Tensor out = fe.forward_subset(sub_images, subset).value();
    EXPECT_EQ(out.shape(), (Shape{2, cfg.seq_len(), cfg.embed_dim}));
    for (float v : out.span()) ASSERT_TRUE(std::isfinite(v));
    EXPECT_TRUE(parallel::is_replicated(out, comm));
  });
}

}  // namespace
}  // namespace dchag::model
