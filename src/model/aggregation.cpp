#include "model/aggregation.hpp"

namespace dchag::model {

TreePlan plan_tree(Index channels, Index max_group_width) {
  DCHAG_CHECK(channels > 0, "plan_tree: channels must be positive");
  DCHAG_CHECK(max_group_width > 1 || channels == 1,
              "plan_tree: max_group_width must be > 1");
  TreePlan plan;
  Index tokens = channels;
  while (tokens > 1) {
    const Index groups = (tokens + max_group_width - 1) / max_group_width;
    std::vector<Index> widths(static_cast<std::size_t>(groups));
    // Distribute tokens as evenly as possible across the groups.
    const Index base = tokens / groups;
    const Index rem = tokens % groups;
    for (Index g = 0; g < groups; ++g)
      widths[static_cast<std::size_t>(g)] = base + (g < rem ? 1 : 0);
    plan.level_widths.push_back(std::move(widths));
    tokens = groups;
  }
  if (plan.level_widths.empty()) {
    // Single channel still passes through one unit so the module always
    // applies learned aggregation (and has stable parameter counts).
    plan.level_widths.push_back({1});
  }
  return plan;
}

Index tree_units_to_width(Index channels, Index units) {
  if (units <= 1) return channels;
  DCHAG_CHECK(units <= channels,
              "TreeN with N=" << units << " > channels " << channels);
  const Index width = (channels + units - 1) / units;
  // Width-1 units cannot reduce anything; degenerate TreeN requests (N ==
  // channels) clamp to the narrowest reducing tree.
  return std::max<Index>(width, channels > 1 ? 2 : 1);
}

Index tree_params(const ModelConfig& cfg, AggLayerKind kind,
                  const TreePlan& plan) {
  Index total = 0;
  for (const auto& level : plan.level_widths)
    for (Index w : level) total += cfg.aggregator_params(kind, w);
  return total;
}

AggregationTree::AggregationTree(const ModelConfig& cfg, AggLayerKind kind,
                                 Index channels, Index max_group_width,
                                 Rng& rng, const std::string& name)
    : cfg_(cfg),
      channels_(channels),
      plan_(plan_tree(channels, max_group_width)) {
  units_.resize(plan_.level_widths.size());
  for (std::size_t lvl = 0; lvl < plan_.level_widths.size(); ++lvl) {
    const auto& widths = plan_.level_widths[lvl];
    units_[lvl].reserve(widths.size());
    for (std::size_t g = 0; g < widths.size(); ++g) {
      auto unit = make_aggregator(
          kind, cfg.embed_dim, cfg.num_heads, widths[g], cfg.query_mode, rng,
          name + ".l" + std::to_string(lvl) + "u" + std::to_string(g));
      register_child(*unit);
      units_[lvl].push_back(std::move(unit));
    }
  }
}

std::unique_ptr<AggregationTree> AggregationTree::with_units(
    const ModelConfig& cfg, AggLayerKind kind, Index channels, Index units,
    Rng& rng, const std::string& name) {
  return std::make_unique<AggregationTree>(
      cfg, kind, channels, tree_units_to_width(channels, units), rng, name);
}

Variable AggregationTree::forward(const Variable& tokens) const {
  const auto& s = tokens.shape();
  DCHAG_CHECK(s.rank() == 4 && s.dim(2) == channels_,
              "tree expects [B, S, " << channels_ << ", D], got "
                                     << s.to_string());
  const Index B = s.dim(0);
  const Index S = s.dim(1);
  const Index D = s.dim(3);

  Variable current = tokens;  // [B, S, tokens_at_level, D]
  for (std::size_t lvl = 0; lvl < units_.size(); ++lvl) {
    const auto& widths = plan_.level_widths[lvl];
    std::vector<Variable> outputs;
    outputs.reserve(widths.size());
    Index offset = 0;
    for (std::size_t g = 0; g < widths.size(); ++g) {
      Variable group = autograd::slice(current, 2, offset, widths[g]);
      Variable reduced = units_[lvl][g]->forward(group);  // [B, S, D]
      outputs.push_back(
          autograd::reshape(reduced, tensor::Shape{B, S, 1, D}));
      offset += widths[g];
    }
    current = outputs.size() == 1 ? outputs.front()
                                  : autograd::concat(outputs, 2);
  }
  return autograd::reshape(current, tensor::Shape{B, S, D});
}

Variable AggregationTree::forward_subset(
    const Variable& tokens, std::span<const Index> slots) const {
  detail::check_subset_slots(slots, channels_, tokens.shape().dim(2));
  if (static_cast<Index>(slots.size()) == channels_) return forward(tokens);
  const auto& s = tokens.shape();
  DCHAG_CHECK(s.rank() == 4 && s.dim(3) == cfg_.embed_dim,
              "tree expects [B, S, W, " << cfg_.embed_dim << "], got "
                                        << s.to_string());
  const Index B = s.dim(0);
  const Index S = s.dim(1);
  const Index D = s.dim(3);

  // `present` lists the full-width slots the current tokens occupy, in
  // order; `current` holds one token per present slot.
  std::vector<Index> present(slots.begin(), slots.end());
  Variable current = tokens;
  for (std::size_t lvl = 0; lvl < units_.size(); ++lvl) {
    const auto& widths = plan_.level_widths[lvl];
    std::vector<Variable> outputs;
    std::vector<Index> next_present;
    Index group_off = 0;     // first full-width slot owned by group g
    std::size_t cursor = 0;  // next unconsumed entry of `present`
    for (std::size_t g = 0; g < widths.size(); ++g) {
      std::vector<Index> local;
      const std::size_t start = cursor;
      while (cursor < present.size() &&
             present[cursor] < group_off + widths[g]) {
        local.push_back(present[cursor] - group_off);
        ++cursor;
      }
      if (!local.empty()) {
        Variable group = autograd::slice(
            current, 2, static_cast<Index>(start),
            static_cast<Index>(local.size()));
        Variable reduced = units_[lvl][g]->forward_subset(group, local);
        outputs.push_back(
            autograd::reshape(reduced, tensor::Shape{B, S, 1, D}));
        next_present.push_back(static_cast<Index>(g));
      }
      group_off += widths[g];
    }
    current = outputs.size() == 1 ? outputs.front()
                                  : autograd::concat(outputs, 2);
    present = std::move(next_present);
  }
  return autograd::reshape(current, tensor::Shape{B, S, D});
}

}  // namespace dchag::model
