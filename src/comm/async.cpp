// Shim TU: implements the deprecated pre-Context comm config surface.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "comm/async.hpp"

namespace dchag::comm {

namespace {

std::uint64_t bytes_of(std::size_t n) {
  return static_cast<std::uint64_t>(n) * sizeof(float);
}

std::shared_ptr<detail::FutureState> completed_state(std::exception_ptr err) {
  auto st = std::make_shared<detail::FutureState>();
  st->done = true;
  st->error = std::move(err);
  return st;
}

}  // namespace

// ----- SyncCollective --------------------------------------------------------

CommFuture SyncCollective::run_inline(
    const std::function<void(Communicator&)>& fn) {
  // Capture failures into the future instead of throwing here so sync and
  // async callers see errors at the same place: wait().
  std::exception_ptr err;
  try {
    fn(*comm_);
  } catch (...) {
    err = std::current_exception();
  }
  return CommFuture(completed_state(std::move(err)));
}

CommFuture SyncCollective::do_iall_reduce(std::span<float> data,
                                          ReduceOp op, Algorithm alg) {
  return run_inline([=](Communicator& c) { c.all_reduce(data, op, alg); });
}

CommFuture SyncCollective::do_iall_gather(std::span<const float> send,
                                          std::span<float> recv,
                                          Algorithm alg) {
  return run_inline([=](Communicator& c) { c.all_gather(send, recv, alg); });
}

CommFuture SyncCollective::do_ireduce_scatter(std::span<const float> send,
                                              std::span<float> recv,
                                              ReduceOp op, Algorithm alg) {
  return run_inline(
      [=](Communicator& c) { c.reduce_scatter(send, recv, op, alg); });
}

CommFuture SyncCollective::do_ibroadcast(std::span<float> data, int root) {
  return run_inline([=](Communicator& c) { c.broadcast(data, root); });
}

// ----- AsyncCommunicator -----------------------------------------------------

AsyncCommunicator::AsyncCommunicator(Communicator& parent)
    // split(color=0) with the parent rank as key: a same-membership,
    // same-order twin group whose barriers are private to the progress
    // threads — in-flight traffic can never collide with blocking
    // collectives the rank threads keep issuing on the parent.
    : shadow_(parent.split(0, parent.rank())),
      progress_([this] { progress_loop(); }) {}

AsyncCommunicator::~AsyncCommunicator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_ops_.notify_all();
  progress_.join();
}

void AsyncCommunicator::progress_loop() {
  for (;;) {
    PendingOp op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_ops_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain everything already issued even when stopping: peers' progress
      // threads are inside the same collectives and must not be abandoned.
      if (queue_.empty()) return;
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    {
      // The op runs under the ISSUER's effective context: a scope active
      // on the rank thread at issue time is visible here (and its tracing
      // sink observes the op completing on this progress thread).
      runtime::Scope ctx_scope(op.ctx);
      try {
        op.fn(shadow_);
      } catch (...) {
        err = std::current_exception();
      }
      if (!err) {
        // Metrics emission must never fail the comm path: a throwing
        // sink cannot turn a completed collective into a failed future.
        try {
          runtime::trace_here("comm.async.op.bytes",
                              static_cast<double>(op.bytes));
        } catch (...) {
        }
      }
    }
    {
      // One critical section for completion AND accounting: a thread that
      // saw the future done must also see in_flight_ decremented, and a
      // drain() that saw in_flight_ == 0 must find every future ready.
      std::scoped_lock lock(mu_, op.state->mu);
      op.state->error = std::move(err);
      op.state->done = true;
      --in_flight_;
    }
    op.state->cv.notify_all();
    cv_idle_.notify_all();
  }
}

CommFuture AsyncCommunicator::enqueue(CollectiveKind kind,
                                      std::uint64_t bytes,
                                      std::function<void(Communicator&)> fn) {
  stats_.record(kind, bytes);
  auto state = std::make_shared<detail::FutureState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DCHAG_CHECK(!stop_, "issue on a stopped AsyncCommunicator");
    queue_.push_back(
        PendingOp{std::move(fn), state, runtime::Context::current(), bytes});
    ++in_flight_;
  }
  cv_ops_.notify_one();
  return CommFuture(std::move(state));
}

CommFuture AsyncCommunicator::do_iall_reduce(std::span<float> data,
                                             ReduceOp op, Algorithm alg) {
  return enqueue(CollectiveKind::kAllReduce, bytes_of(data.size()),
                 [=](Communicator& c) { c.all_reduce(data, op, alg); });
}

CommFuture AsyncCommunicator::do_iall_gather(std::span<const float> send,
                                             std::span<float> recv,
                                             Algorithm alg) {
  return enqueue(CollectiveKind::kAllGather, bytes_of(recv.size()),
                 [=](Communicator& c) { c.all_gather(send, recv, alg); });
}

CommFuture AsyncCommunicator::do_ireduce_scatter(std::span<const float> send,
                                                 std::span<float> recv,
                                                 ReduceOp op,
                                                 Algorithm alg) {
  return enqueue(
      CollectiveKind::kReduceScatter, bytes_of(send.size()),
      [=](Communicator& c) { c.reduce_scatter(send, recv, op, alg); });
}

CommFuture AsyncCommunicator::do_ibroadcast(std::span<float> data, int root) {
  return enqueue(CollectiveKind::kBroadcast, bytes_of(data.size()),
                 [=](Communicator& c) { c.broadcast(data, root); });
}

void AsyncCommunicator::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return in_flight_ == 0; });
}

std::size_t AsyncCommunicator::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

// ----- Deprecated pre-Context shims ------------------------------------------

#ifdef DCHAG_DEPRECATED_CONFIG

CommConfig comm_config_from_env() {
  return runtime::Context::from_env().comm();
}

std::optional<CommConfig> comm_scope_override() {
  return runtime::detail::thread_comm_override();
}

#endif  // DCHAG_DEPRECATED_CONFIG

}  // namespace dchag::comm
