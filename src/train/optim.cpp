#include "train/optim.hpp"

#include <cmath>

namespace dchag::train {

void Sgd::step() {
  for (Variable& p : params_) {
    if (!p.has_grad()) continue;
    float* v = p.mutable_value().data();
    const float* g = p.grad().data();
    for (Index i = 0; i < p.shape().numel(); ++i) v[i] -= lr_ * g[i];
  }
}

void Sgd::zero_grad() {
  for (Variable& p : params_) p.zero_grad();
}

void adamw_update(Tensor& value, const Tensor& grad, Tensor& m, Tensor& v,
                  std::int64_t t, const AdamConfig& cfg) {
  DCHAG_CHECK(value.shape() == grad.shape() && value.shape() == m.shape() &&
                  value.shape() == v.shape(),
              "adamw_update shape mismatch");
  const float bc1 = 1.0f - std::pow(cfg.beta1, static_cast<float>(t));
  const float bc2 = 1.0f - std::pow(cfg.beta2, static_cast<float>(t));
  float* pv = value.data();
  const float* pg = grad.data();
  float* pm = m.data();
  float* pvv = v.data();
  for (Index i = 0; i < value.numel(); ++i) {
    pm[i] = cfg.beta1 * pm[i] + (1.0f - cfg.beta1) * pg[i];
    pvv[i] = cfg.beta2 * pvv[i] + (1.0f - cfg.beta2) * pg[i] * pg[i];
    const float mhat = pm[i] / bc1;
    const float vhat = pvv[i] / bc2;
    pv[i] -= cfg.lr * (mhat / (std::sqrt(vhat) + cfg.eps) +
                       cfg.weight_decay * pv[i]);
  }
}

Adam::Adam(std::vector<Variable> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.emplace_back(p.shape());
    v_.emplace_back(p.shape());
  }
}

void Adam::step() {
  ++t_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    adamw_update(p.mutable_value(), p.grad(), m_[i], v_[i], t_, cfg_);
  }
}

void Adam::zero_grad() {
  for (Variable& p : params_) p.zero_grad();
}

FsdpAdam::FsdpAdam(std::vector<Variable> params, comm::Communicator& comm,
                   AdamConfig cfg)
    : params_(std::move(params)), comm_(&comm), cfg_(cfg) {
  state_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (owner_of(i) == comm_->rank()) {
      state_[i] = std::make_pair(Tensor(params_[i].shape()),
                                 Tensor(params_[i].shape()));
      ++owned_count_;
    }
  }
}

void FsdpAdam::step() {
  ++t_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    DCHAG_CHECK(p.has_grad(), "FsdpAdam: parameter '" << p.name()
                                                      << "' has no grad");
    // Average gradients across the group (ZeRO-1 keeps full grads; only
    // the optimizer state is sharded).
    Tensor g = p.node()->grad;
    comm_->all_reduce(g.span(), comm::ReduceOp::kAvg);
    const int owner = owner_of(i);
    if (owner == comm_->rank()) {
      auto& [m, v] = *state_[i];
      adamw_update(p.mutable_value(), g, m, v, t_, cfg_);
    }
    Tensor value = p.value();  // aliases parameter storage
    comm_->broadcast(value.span(), owner);
  }
}

void FsdpAdam::zero_grad() {
  for (Variable& p : params_) p.zero_grad();
}

}  // namespace dchag::train
