#include "model/foundation.hpp"

#include <gtest/gtest.h>

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(ViTEncoder, ShapeAndBlocks) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(1);
  ViTEncoder enc(cfg, rng);
  EXPECT_EQ(enc.num_blocks(), cfg.num_layers);
  Tensor x = rng.normal_tensor(Shape{2, 5, cfg.embed_dim});
  EXPECT_EQ(enc.forward(Variable::input(x)).shape(), (Shape{2, 5, 32}));
}

TEST(ViTEncoder, GradsFlowThroughAllBlocks) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(2);
  ViTEncoder enc(cfg, rng);
  Tensor x = rng.normal_tensor(Shape{1, 4, cfg.embed_dim});
  autograd::sum_all(enc.forward(Variable::input(x))).backward();
  for (const auto& p : enc.parameters()) EXPECT_TRUE(p.has_grad()) << p.name();
}

TEST(LocalFrontEnd, BaselineProducesSpatialTokens) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(3);
  auto fe = make_baseline_frontend(cfg, 4, rng);
  Tensor img = rng.normal_tensor(Shape{2, 4, 16, 16});
  EXPECT_EQ(fe->forward(img).shape(), (Shape{2, cfg.seq_len(), 32}));
  EXPECT_EQ(fe->local_channels(), 4);
}

TEST(PredictionLayout, RoundTrip) {
  Rng rng(4);
  Tensor patches = rng.normal_tensor(Shape{2, 3, 4, 16});  // [B,C,S,p2]
  Tensor pred = to_prediction_layout(patches);
  EXPECT_EQ(pred.shape(), (Shape{2, 4, 48}));
  Tensor back = from_prediction_layout(pred, 3, 4);
  EXPECT_LT(ops::max_abs_diff(patches, back), 1e-7f);
}

TEST(MaeModel, MaskFractionAndDeterminism) {
  Rng a(5);
  Rng b(5);
  Tensor m1 = MaeModel::make_mask(4, 16, 0.75f, a);
  Tensor m2 = MaeModel::make_mask(4, 16, 0.75f, b);
  EXPECT_LT(ops::max_abs_diff(m1, m2), 1e-9f);
  for (tensor::Index row = 0; row < 4; ++row) {
    float count = 0;
    for (tensor::Index s = 0; s < 16; ++s) count += m1.at({row, s});
    EXPECT_EQ(count, 12.0f);  // 0.75 * 16 per row
  }
  EXPECT_THROW(MaeModel::make_mask(1, 4, 0.0f, a), Error);
}

TEST(MaeModel, ForwardShapesAndFiniteLoss) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(6);
  auto fe = make_baseline_frontend(cfg, 3, rng);
  MaeModel mae(cfg, std::move(fe), 3, rng);
  Tensor img = rng.normal_tensor(Shape{2, 3, 16, 16});
  Tensor mask = MaeModel::make_mask(2, cfg.seq_len(), 0.5f, rng);
  auto out = mae.forward(img, img, mask);
  EXPECT_EQ(out.pred.shape(),
            (Shape{2, cfg.seq_len(), 3 * cfg.patch_size * cfg.patch_size}));
  EXPECT_TRUE(std::isfinite(out.loss.value().item()));
  EXPECT_GT(out.loss.value().item(), 0.0f);
}

TEST(MaeModel, LossIgnoresVisiblePatches) {
  // Perturbing the target on an UNMASKED patch must not change the loss.
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(7);
  auto fe = make_baseline_frontend(cfg, 2, rng);
  MaeModel mae(cfg, std::move(fe), 2, rng);
  Tensor img = rng.normal_tensor(Shape{1, 2, 16, 16});
  Tensor mask(Shape{1, cfg.seq_len()});
  mask.set({0, 0}, 1.0f);  // only patch 0 masked
  const float base = mae.forward(img, img, mask).loss.value().item();

  Tensor img2 = img.clone();
  // Patch 3 spans pixels rows 0-3, cols 12-15 (patch 4, grid 4x4).
  img2.set({0, 0, 0, 12}, img2.at({0, 0, 0, 12}) + 5.0f);
  const float perturbed_visible =
      mae.forward(img, img2, mask).loss.value().item();
  EXPECT_NEAR(base, perturbed_visible, 1e-6f);

  Tensor img3 = img.clone();
  img3.set({0, 0, 0, 0}, img3.at({0, 0, 0, 0}) + 5.0f);  // inside patch 0
  const float perturbed_masked =
      mae.forward(img, img3, mask).loss.value().item();
  EXPECT_GT(std::abs(perturbed_masked - base), 1e-3f);
}

TEST(MaeModel, BackwardReachesFrontendAndHead) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(8);
  auto fe = make_baseline_frontend(cfg, 2, rng);
  MaeModel mae(cfg, std::move(fe), 2, rng);
  Tensor img = rng.normal_tensor(Shape{1, 2, 16, 16});
  Tensor mask = MaeModel::make_mask(1, cfg.seq_len(), 0.5f, rng);
  mae.forward(img, img, mask).loss.backward();
  int with_grad = 0;
  for (const auto& p : mae.parameters()) with_grad += p.has_grad() ? 1 : 0;
  // All parameters participate except none: mask token, tokenizer, encoder,
  // head all receive gradient.
  EXPECT_EQ(with_grad, static_cast<int>(mae.parameters().size()));
}

TEST(ForecastModel, ForwardAndLoss) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(9);
  auto fe = make_baseline_frontend(cfg, 3, rng);
  ForecastModel fm(cfg, std::move(fe), 3, rng);
  Tensor now = rng.normal_tensor(Shape{2, 3, 16, 16});
  Tensor future = rng.normal_tensor(Shape{2, 3, 16, 16});
  auto out = fm.forward(now, future);
  EXPECT_EQ(out.pred.shape(), (Shape{2, cfg.seq_len(), 3 * 16}));
  EXPECT_TRUE(std::isfinite(out.loss.value().item()));
}

TEST(ForecastModel, PerfectPredictionGivesZeroRmse) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(10);
  Tensor target = rng.normal_tensor(Shape{2, 3, 16, 16});
  Tensor pred = to_prediction_layout(patchify(target, cfg.patch_size));
  auto rmse = ForecastModel::per_channel_rmse(pred, target, cfg.patch_size);
  ASSERT_EQ(rmse.size(), 3u);
  for (float r : rmse) EXPECT_NEAR(r, 0.0f, 1e-6f);
}

TEST(ForecastModel, RmseDetectsPerChannelError) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(11);
  Tensor target = rng.normal_tensor(Shape{1, 2, 16, 16});
  Tensor pred_imgs = target.clone();
  // Bias channel 1 by +2 => RMSE(ch1) = 2, RMSE(ch0) = 0.
  for (tensor::Index i = 0; i < 16 * 16; ++i)
    pred_imgs.data()[16 * 16 + i] += 2.0f;
  Tensor pred = to_prediction_layout(patchify(pred_imgs, cfg.patch_size));
  auto rmse = ForecastModel::per_channel_rmse(pred, target, cfg.patch_size);
  EXPECT_NEAR(rmse[0], 0.0f, 1e-6f);
  EXPECT_NEAR(rmse[1], 2.0f, 1e-5f);
}

TEST(FoundationModels, ParameterCountsAreConsistent) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(12);
  auto fe = make_baseline_frontend(cfg, 3, rng);
  const Index fe_params = fe->num_parameters();
  EXPECT_EQ(fe_params,
            cfg.tokenizer_params(3) +
                cfg.aggregator_params(AggLayerKind::kCrossAttention, 3));
  MaeModel mae(cfg, std::move(fe), 3, rng);
  const Index head = cfg.embed_dim * 3 * 16 + 3 * 16;
  EXPECT_EQ(mae.num_parameters(), fe_params + cfg.transformer_params() +
                                      head + cfg.embed_dim /*mask token*/);
}

}  // namespace
}  // namespace dchag::model
