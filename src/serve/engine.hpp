// The inference engines behind the server's worker pool. Both produce an
// InferenceFn — the batched forward the Server executes — and both run
// tape-free (autograd::NoGradGuard) over an eval()'d model, so serving
// never pays autograd allocation.
//
//  * Engine: single-device; one shared read-only model, safe to call from
//    many worker threads at once (a no-grad forward only reads parameter
//    values and builds thread-private value nodes).
//  * SpmdEngine (spmd_engine.hpp): D-CHAG workers over comm::World.
#pragma once

#include <functional>
#include <optional>

#include "model/foundation.hpp"
#include "runtime/context.hpp"
#include "tensor/plan.hpp"

namespace dchag::serve {

using tensor::Index;
using tensor::Tensor;

/// Batched inference entry point: images [B, C_sub, H, W] (every sample
/// the same channel subset / lead time), returns pred [B, S, C_target*p^2].
using InferenceFn = std::function<Tensor(
    const Tensor& images, const std::vector<Index>& channels,
    float lead_time)>;

/// Serving-plan knobs. The default is the fully planned forward; plan =
/// false keeps the model merely eval()'d and every run() allocating
/// tensors fresh — the baseline the serving bench and the plan parity
/// suite compare against (outputs are bit-identical either way).
struct EngineOptions {
  /// freeze_for_serving() the model (pre-packed GEMM panels, fused
  /// epilogues) and route run()'s tensor buffers through a shared arena.
  bool plan = true;
};

class Engine {
 public:
  /// The model must outlive the engine. It is switched to eval mode here
  /// (and, with opts.plan, frozen for serving — re-freeze via
  /// freeze_for_serving() after any weight mutation such as load_module);
  /// full-channel requests must carry exactly frontend().local_channels()
  /// channel slabs.
  ///
  /// `ctx` pins the execution context every run() uses; nullopt =
  /// unpinned, each run inherits the calling thread's effective context
  /// (how Server workers hand theirs through). A runtime::Scope active
  /// on the calling thread outranks a pinned context.
  explicit Engine(model::ForecastModel& model,
                  std::optional<runtime::Context> ctx = std::nullopt,
                  EngineOptions opts = {});

  /// Tape-free batched forward; `channels` empty means all channels,
  /// otherwise the subset routes through the front-end's partial-channel
  /// path. Thread-safe for concurrent callers.
  [[nodiscard]] Tensor run(const Tensor& images,
                           const std::vector<Index>& channels,
                           float lead_time) const;

  [[nodiscard]] InferenceFn inference_fn() const;

  [[nodiscard]] const model::ForecastModel& model() const { return *model_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  /// Arena pool counters (fresh = warm-up heap allocations, reused =
  /// steady-state hits). All zero when opts.plan is off.
  [[nodiscard]] tensor::plan::Arena::Stats arena_stats() const {
    return arena_.stats();
  }

 private:
  model::ForecastModel* model_;
  std::optional<runtime::Context> ctx_;
  EngineOptions opts_;
  mutable tensor::plan::Arena arena_;
};

}  // namespace dchag::serve
