#include <gtest/gtest.h>

#include <vector>

#include "comm/communicator.hpp"

namespace dchag::comm {
namespace {

TEST(Split, GroupsIsolateCollectives) {
  // 8 ranks -> 2 colors of 4; AllReduce must only sum within the color.
  World world(8);
  world.run([&](Communicator& comm) {
    const int color = comm.rank() / 4;
    Communicator sub = comm.split(color);
    ASSERT_EQ(sub.size(), 4);
    std::vector<float> d{static_cast<float>(comm.rank())};
    sub.all_reduce(d);
    const float expected = color == 0 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7;
    ASSERT_EQ(d[0], expected);
  });
}

TEST(Split, ChildRankFollowsParentOrder) {
  World world(6);
  world.run([&](Communicator& comm) {
    const int color = comm.rank() % 2;  // interleaved groups
    Communicator sub = comm.split(color);
    ASSERT_EQ(sub.size(), 3);
    ASSERT_EQ(sub.rank(), comm.rank() / 2);
  });
}

TEST(Split, KeyReversesOrder) {
  World world(4);
  world.run([&](Communicator& comm) {
    Communicator sub = comm.split(/*color=*/0, /*key=*/comm.size() - comm.rank());
    ASSERT_EQ(sub.size(), 4);
    ASSERT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, SequentialSplitsReuseParent) {
  // The TP-then-DP factorisation used by hybrid parallelism (paper §3.4):
  // first split by TP group, then by DP group, on the same parent.
  World world(8);
  world.run([&](Communicator& comm) {
    Communicator tp = comm.split(comm.rank() / 2);  // 4 TP groups of 2
    Communicator dp = comm.split(comm.rank() % 2);  // 2 DP groups of 4
    ASSERT_EQ(tp.size(), 2);
    ASSERT_EQ(dp.size(), 4);

    std::vector<float> d{1.0f};
    tp.all_reduce(d);
    ASSERT_EQ(d[0], 2.0f);
    d[0] = 1.0f;
    dp.all_reduce(d);
    ASSERT_EQ(d[0], 4.0f);
  });
}

TEST(Split, NestedSplitOfChild) {
  World world(8);
  world.run([&](Communicator& comm) {
    Communicator half = comm.split(comm.rank() / 4);    // two halves
    Communicator pair = half.split(half.rank() / 2);    // pairs inside halves
    ASSERT_EQ(pair.size(), 2);
    std::vector<float> d{static_cast<float>(comm.rank())};
    pair.all_reduce(d);
    // pairs are (0,1),(2,3),(4,5),(6,7) in world ranks
    const float base = static_cast<float>(comm.rank() / 2 * 2);
    ASSERT_EQ(d[0], base + base + 1.0f);
  });
}

TEST(Split, SubgroupTopologyInheritsNodeIds) {
  // 8 ranks on 2 nodes of 4; a split that takes one rank per node must
  // see a 2-node topology.
  World world(8, Topology::packed(8, 4));
  world.run([&](Communicator& comm) {
    const int color = comm.rank() % 4;
    Communicator sub = comm.split(color);
    ASSERT_EQ(sub.size(), 2);
    ASSERT_EQ(sub.topology().num_nodes(), 2);
    ASSERT_FALSE(sub.topology().same_node(0, 1));
  });
}

TEST(Split, SingletonGroups) {
  World world(4);
  world.run([&](Communicator& comm) {
    Communicator solo = comm.split(comm.rank());
    ASSERT_EQ(solo.size(), 1);
    ASSERT_EQ(solo.rank(), 0);
    std::vector<float> d{5.0f};
    solo.all_reduce(d);
    ASSERT_EQ(d[0], 5.0f);
  });
}

}  // namespace
}  // namespace dchag::comm
