// Validates the analytic FLOP formulas against the instrumented matmul
// ledger of the executable model (tensor::ops counts 2*M*N*K per matmul).
// LayerNorm/softmax/elementwise costs are not matmuls and are excluded on
// both sides.
#include <gtest/gtest.h>

#include "hw/flop_model.hpp"
#include "model/foundation.hpp"

namespace dchag::hw {
namespace {

namespace ops = dchag::tensor::ops;
using dchag::autograd::Variable;
using dchag::tensor::Rng;
using dchag::tensor::Shape;
using dchag::tensor::Tensor;

ModelConfig tiny() { return ModelConfig::tiny(); }

TEST(FlopModel, TokenizerMatchesExecutedMatmuls) {
  ModelConfig cfg = tiny();
  Rng rng(1);
  const Index B = 2;
  const Index C = 3;
  model::PatchTokenizer tok(cfg, C, rng);
  Tensor img = rng.normal_tensor(Shape{B, C, cfg.image_h, cfg.image_w});
  ops::reset_flops();
  (void)tok.forward(img);
  EXPECT_EQ(static_cast<double>(ops::flops_executed()),
            FlopModel::tokenizer_flops(cfg, static_cast<double>(B),
                                       static_cast<double>(C)));
}

TEST(FlopModel, CrossAttentionAggregatorMatches) {
  ModelConfig cfg = tiny();
  Rng rng(2);
  const Index B = 2;
  const Index S = 4;
  const Index C = 5;
  model::CrossAttentionAggregator agg(cfg.embed_dim, cfg.num_heads, C,
                                      model::QueryMode::kChannelTokens, rng);
  Tensor tokens = rng.normal_tensor(Shape{B, S, C, cfg.embed_dim});
  ops::reset_flops();
  (void)agg.forward(Variable::input(tokens));
  // The analytic formula assumes batch*seq = B*S rows.
  ModelConfig row_cfg = cfg;  // seq_len enters through cfg; scale by hand
  const auto f = FlopModel::aggregation_flops(cfg, /*batch=*/1.0, C,
                                              AggLayerKind::kCrossAttention);
  const double scale =
      static_cast<double>(B * S) / static_cast<double>(cfg.seq_len());
  EXPECT_DOUBLE_EQ(static_cast<double>(ops::flops_executed()),
                   (f.scores + f.proj) * scale);
  (void)row_cfg;
}

TEST(FlopModel, LearnedQueryAggregatorMatches) {
  ModelConfig cfg = tiny();
  cfg.query_mode = model::QueryMode::kLearnedQuery;
  Rng rng(3);
  const Index B = 1;
  const Index S = cfg.seq_len();
  const Index C = 6;
  model::CrossAttentionAggregator agg(cfg.embed_dim, cfg.num_heads, C,
                                      model::QueryMode::kLearnedQuery, rng);
  Tensor tokens = rng.normal_tensor(Shape{B, S, C, cfg.embed_dim});
  ops::reset_flops();
  (void)agg.forward(Variable::input(tokens));
  const auto f = FlopModel::aggregation_flops(cfg, 1.0, C,
                                              AggLayerKind::kCrossAttention);
  EXPECT_DOUBLE_EQ(static_cast<double>(ops::flops_executed()),
                   f.scores + f.proj);
}

TEST(FlopModel, LinearAggregatorProjectionMatches) {
  // The channel-combine is elementwise (not a matmul), so the ledger sees
  // only the projection term.
  ModelConfig cfg = tiny();
  Rng rng(4);
  const Index C = 4;
  model::LinearAggregator agg(cfg.embed_dim, C, rng);
  Tensor tokens =
      rng.normal_tensor(Shape{1, cfg.seq_len(), C, cfg.embed_dim});
  ops::reset_flops();
  (void)agg.forward(Variable::input(tokens));
  const auto f =
      FlopModel::aggregation_flops(cfg, 1.0, C, AggLayerKind::kLinear);
  EXPECT_DOUBLE_EQ(static_cast<double>(ops::flops_executed()), f.proj);
}

TEST(FlopModel, TransformerMatchesEncoder) {
  ModelConfig cfg = tiny();
  Rng rng(5);
  model::ViTEncoder enc(cfg, rng);
  const Index B = 2;
  Tensor x = rng.normal_tensor(Shape{B, cfg.seq_len(), cfg.embed_dim});
  ops::reset_flops();
  (void)enc.forward(Variable::input(x));
  EXPECT_DOUBLE_EQ(static_cast<double>(ops::flops_executed()),
                   FlopModel::transformer_flops(cfg, static_cast<double>(B)));
}

TEST(FlopModel, TreeFlopsSumOverUnits) {
  ModelConfig cfg = tiny();
  const auto plan = model::plan_tree(8, 4);
  const auto whole =
      FlopModel::tree_flops(cfg, 2.0, plan, AggLayerKind::kCrossAttention);
  double scores = 0;
  double proj = 0;
  for (const auto& level : plan.level_widths) {
    for (Index w : level) {
      const auto f = FlopModel::aggregation_flops(
          cfg, 2.0, w, AggLayerKind::kCrossAttention);
      scores += f.scores;
      proj += f.proj;
    }
  }
  EXPECT_DOUBLE_EQ(whole.scores, scores);
  EXPECT_DOUBLE_EQ(whole.proj, proj);
}

TEST(FlopModel, LogicalFlopsPositiveAndOrdered) {
  ModelConfig cfg = ModelConfig::preset("7B");
  const double base = FlopModel::logical_forward_flops(
      cfg, 8.0, 512, DchagSpec::off(), /*tp=*/8);
  const double dchag = FlopModel::logical_forward_flops(
      cfg, 8.0, 512, DchagSpec::tree(1, AggLayerKind::kLinear), 8);
  EXPECT_GT(base, 0.0);
  EXPECT_GT(dchag, 0.0);
  // The -L D-CHAG model replaces a quadratic C^2 attention with linear
  // trees + a tiny final attention: fewer logical FLOPs.
  EXPECT_LT(dchag, base);
}

TEST(FlopModel, QuadraticVsLinearQueryScaling) {
  ModelConfig cfg = tiny();
  const auto q256 =
      FlopModel::aggregation_flops(cfg, 1.0, 256, AggLayerKind::kCrossAttention);
  const auto q512 =
      FlopModel::aggregation_flops(cfg, 1.0, 512, AggLayerKind::kCrossAttention);
  EXPECT_NEAR(q512.scores / q256.scores, 4.0, 1e-9);  // C^2
  cfg.query_mode = model::QueryMode::kLearnedQuery;
  const auto l256 =
      FlopModel::aggregation_flops(cfg, 1.0, 256, AggLayerKind::kCrossAttention);
  const auto l512 =
      FlopModel::aggregation_flops(cfg, 1.0, 512, AggLayerKind::kCrossAttention);
  EXPECT_NEAR(l512.scores / l256.scores, 2.0, 1e-9);  // C
}

}  // namespace
}  // namespace dchag::hw
