#include "tensor/kernel_config.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "tensor/gemm.hpp"

namespace dchag::tensor {

namespace {

thread_local std::optional<KernelConfig> t_override;

// KernelConfig is 8 trivially-copyable bytes, so the process default is
// a lock-free atomic: kernel_config() sits on every hot-op dispatch and
// must not serialize rank/worker threads on a mutex.
std::atomic<KernelConfig> g_config{KernelConfig{}};
std::once_flag g_init_once;

/// Downgrades blocked/parallel to naive (one stderr warning per process)
/// when the blocked TU was compiled for SIMD this CPU lacks.
KernelConfig sanitize(KernelConfig cfg, const char* origin) {
  if (cfg.backend != KernelBackend::kNaive && !blocked_kernels_supported()) {
    static std::once_flag warn_once;
    std::call_once(warn_once, [&] {
      std::fprintf(stderr,
                   "dchag: %s requested the %s kernel backend but this CPU "
                   "lacks the SIMD level the blocked kernels were compiled "
                   "for; degrading to naive\n",
                   origin, to_string(cfg.backend));
    });
    cfg.backend = KernelBackend::kNaive;
  }
  return cfg;
}

KernelConfig config_from_env() {
  KernelConfig cfg;
  cfg.backend = blocked_kernels_supported() ? KernelBackend::kParallel
                                            : KernelBackend::kNaive;
  if (const char* k = std::getenv("DCHAG_KERNEL"); k != nullptr && *k) {
    cfg.backend = parse_backend(k);
  }
  cfg.threads = detail::env_int("DCHAG_THREADS", 0, 4096, cfg.threads);
  return sanitize(cfg, "DCHAG_KERNEL");
}

void ensure_initialised() {
  std::call_once(g_init_once,
                 [] { g_config.store(config_from_env(),
                                     std::memory_order_relaxed); });
}

}  // namespace

KernelConfig kernel_config() {
  if (t_override.has_value()) return *t_override;
  ensure_initialised();
  return g_config.load(std::memory_order_relaxed);
}

void set_kernel_config(KernelConfig cfg) {
  // Run env init first so a later first kernel_config() call can't
  // clobber this explicit setting with the environment default.
  ensure_initialised();
  g_config.store(sanitize(cfg, "set_kernel_config"),
                 std::memory_order_relaxed);
}

KernelScope::KernelScope(KernelConfig cfg) {
  had_prev_ = t_override.has_value();
  if (had_prev_) prev_ = *t_override;
  t_override = sanitize(cfg, "KernelScope");
}

KernelScope::~KernelScope() {
  if (had_prev_) {
    t_override = prev_;
  } else {
    t_override.reset();
  }
}

KernelBackend parse_backend(const std::string& name) {
  if (name == "naive") return KernelBackend::kNaive;
  if (name == "blocked") return KernelBackend::kBlocked;
  if (name == "parallel") return KernelBackend::kParallel;
  DCHAG_FAIL("unknown kernel backend '" << name
                                        << "' (want naive|blocked|parallel)");
}

const char* to_string(KernelBackend b) {
  switch (b) {
    case KernelBackend::kNaive: return "naive";
    case KernelBackend::kBlocked: return "blocked";
    case KernelBackend::kParallel: return "parallel";
  }
  return "?";
}

namespace detail {
int env_int(const char* name, int lo, int hi, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < lo || parsed > hi) return fallback;
  return static_cast<int>(parsed);
}
}  // namespace detail

bool blocked_kernels_supported() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool ok = !gemm::compiled_with_avx2() ||
                         (__builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma"));
#else
  static const bool ok = true;  // gemm.cpp builds generic off x86-64
#endif
  return ok;
}

}  // namespace dchag::tensor
