// The one execution-configuration surface for the whole system.
//
// runtime::Context is an immutable value that owns everything that used
// to be scattered across tensor::KernelConfig, comm::CommConfig,
// DchagOptions, ServerConfig, LoopConfig, and SpmdEngineConfig:
//
//   * kernel backend + thread budget (and the ThreadPool handle kernels
//     fan out on),
//   * comm mode + forward pipeline depth,
//   * the fault-injection plan engines install on their World,
//   * a Tracing/metrics sink every subsystem can emit into.
//
// Contexts are built with the fluent ContextBuilder, read from the
// environment exactly once through Context::from_env() (the ONLY
// std::getenv("DCHAG_*") call site in the tree), and overridden with the
// RAII runtime::Scope — the single override stack that replaced
// tensor::KernelScope and comm::CommScope.
//
// Precedence, weakest to strongest:
//
//   built-in defaults  <  Context::from_env() (initialises the process
//   default)  <  an explicit Context argument handed to a subsystem  <
//   the innermost runtime::Scope active on the executing thread.
//
// Scopes cross thread boundaries by construction: ThreadPool workers,
// AsyncCommunicator's progress thread, serve::Server workers, and
// SpmdEngine rank threads all inherit the submitting thread's effective
// context, so the old "a scope set on the caller silently does not reach
// worker threads" footgun cannot be written anymore.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

// Legacy shims (KernelScope, CommScope, the per-subsystem config fields)
// carry this attribute so external users migrate; the repo's own shim
// implementations and the dedicated shim tests define
// DCHAG_ALLOW_DEPRECATED_CONFIG before including any dchag header to
// keep -Werror builds clean while the warning still fires elsewhere.
#if defined(DCHAG_ALLOW_DEPRECATED_CONFIG)
#define DCHAG_DEPRECATED_CONFIG_API(msg)
#else
#define DCHAG_DEPRECATED_CONFIG_API(msg) [[deprecated(msg)]]
#endif

namespace dchag::tensor {
class ThreadPool;
}
namespace dchag::comm {
class FaultPlan;
}

namespace dchag::runtime {

// ---------------------------------------------------------------------------
// Configuration atoms (canonical homes; tensor/comm alias these).
// ---------------------------------------------------------------------------

enum class KernelBackend { kNaive, kBlocked, kParallel };

struct KernelConfig {
  KernelBackend backend = KernelBackend::kParallel;
  /// Max lanes a single parallel_for may occupy (caller included).
  /// 0 = whole pool. Does not resize the process pool.
  int threads = 0;
};

enum class CommMode { kSync, kAsync };

struct CommConfig {
  CommMode mode = CommMode::kSync;
  /// Forward software-pipeline depth (batch micro-chunks, double
  /// buffered); <= 1 keeps the monolithic one-gather forward.
  int pipeline_chunks = 1;
};

[[nodiscard]] const char* to_string(KernelBackend b);
[[nodiscard]] const char* to_string(CommMode m);
/// "naive" | "blocked" | "parallel" (case-insensitive); throws on else.
[[nodiscard]] KernelBackend parse_backend(const std::string& name);
/// "sync" | "async" (case-insensitive); throws on anything else.
[[nodiscard]] CommMode parse_comm_mode(const std::string& name);

// ---------------------------------------------------------------------------
// Tracing: the metrics sink slot every subsystem emits into.
// ---------------------------------------------------------------------------

struct TraceEvent {
  std::string_view key;  ///< e.g. "serve.batch", "comm.async.op.bytes"
  double value = 0.0;
};

/// Implementations must be thread-safe: events arrive from rank threads,
/// serve workers, pool workers, and comm progress threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

class ContextBuilder;

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

class Context {
 public:
  /// Built-in defaults: parallel kernels over the whole process pool,
  /// sync monolithic comm, no faults, no tracing.
  Context() = default;

  [[nodiscard]] const KernelConfig& kernels() const { return kernels_; }
  [[nodiscard]] const CommConfig& comm() const { return comm_; }
  [[nodiscard]] const std::shared_ptr<const comm::FaultPlan>& fault_plan()
      const {
    return fault_plan_;
  }
  [[nodiscard]] const std::shared_ptr<TraceSink>& tracing() const {
    return tracing_;
  }
  /// Pool kernels of this context fan out on; nullptr = the process-wide
  /// tensor::ThreadPool::global() (resolved at use, not here, so runtime
  /// stays below tensor in the dependency DAG).
  [[nodiscard]] tensor::ThreadPool* pool() const { return pool_; }

  /// The calling thread's effective context: the process default overlaid
  /// with every active runtime::Scope (innermost field wins).
  [[nodiscard]] static Context current();

  /// *this overlaid with the calling thread's active Scopes — how a
  /// subsystem resolves an explicit Context argument at the point of use
  /// (a Scope outranks the argument; see the precedence ladder above).
  [[nodiscard]] Context effective() const;

  /// effective() of `base` when pinned, else current(): the resolution
  /// every consumer with an optional explicit-Context parameter applies.
  [[nodiscard]] static Context effective_or_current(
      const std::optional<Context>& base);

  /// Process default (env-initialised via from_env() on first access).
  [[nodiscard]] static Context process_default();
  /// Replaces the process default (not thread-local Scopes). Runs env
  /// initialisation first so a later first read cannot clobber this.
  static void set_process_default(const Context& ctx);

  /// One environment entry; from_env()'s test seam takes a synthetic
  /// list so tests never mutate the real (thread-unsafe) environment.
  struct EnvEntry {
    std::string name;
    std::string value;
  };

  /// Every problem from_env found, plus the one-shot diagnostic that
  /// aggregates them (empty when the environment parsed cleanly).
  struct EnvReport {
    std::vector<std::string> issues;
    [[nodiscard]] bool ok() const { return issues.empty(); }
    /// All issues joined into the single "dchag: ..." diagnostic line.
    [[nodiscard]] std::string summary() const;
  };

  /// THE env entry point. Reads DCHAG_KERNEL, DCHAG_THREADS, DCHAG_COMM,
  /// and DCHAG_COMM_CHUNKS (values case-insensitive; empty = unset), and
  /// audits every other DCHAG_* variable as unknown. Never throws on bad
  /// input: invalid values fall back to defaults and all problems are
  /// reported in ONE diagnostic — to `report` when given, else once to
  /// stderr.
  [[nodiscard]] static Context from_env(EnvReport* report = nullptr);
  /// Test seam: parse a synthetic environment instead of ::environ.
  [[nodiscard]] static Context from_env(const std::vector<EnvEntry>& env,
                                        EnvReport* report);

  /// Inverse of from_env() for the env-expressible fields (kernel
  /// backend, threads, comm mode, pipeline chunks): entries a parent
  /// exports into a child process so the child's from_env()
  /// reconstructs this context. Process-local fields (fault plan, trace
  /// sink, thread pool) do not survive exec and are not exported.
  [[nodiscard]] std::vector<EnvEntry> to_env() const;

  /// Fluent copy-and-modify: Context::current().to_builder().comm_mode(...)
  [[nodiscard]] ContextBuilder to_builder() const;

 private:
  friend class ContextBuilder;

  KernelConfig kernels_{};
  CommConfig comm_{};
  std::shared_ptr<const comm::FaultPlan> fault_plan_;
  std::shared_ptr<TraceSink> tracing_;
  tensor::ThreadPool* pool_ = nullptr;
};

// ---------------------------------------------------------------------------
// ContextBuilder
// ---------------------------------------------------------------------------

class ContextBuilder {
 public:
  /// Starts from built-in defaults.
  ContextBuilder() = default;
  /// Starts from an existing context (what Context::to_builder returns).
  explicit ContextBuilder(Context base) : ctx_(std::move(base)) {}

  ContextBuilder& kernels(KernelConfig cfg) {
    ctx_.kernels_ = cfg;
    return *this;
  }
  ContextBuilder& kernel_backend(KernelBackend backend) {
    ctx_.kernels_.backend = backend;
    return *this;
  }
  ContextBuilder& threads(int threads) {
    ctx_.kernels_.threads = threads;
    return *this;
  }
  ContextBuilder& comm(CommConfig cfg) {
    ctx_.comm_ = cfg;
    return *this;
  }
  ContextBuilder& comm_mode(CommMode mode) {
    ctx_.comm_.mode = mode;
    return *this;
  }
  ContextBuilder& pipeline_chunks(int chunks) {
    ctx_.comm_.pipeline_chunks = chunks;
    return *this;
  }
  ContextBuilder& fault_plan(std::shared_ptr<const comm::FaultPlan> plan) {
    ctx_.fault_plan_ = std::move(plan);
    return *this;
  }
  ContextBuilder& tracing(std::shared_ptr<TraceSink> sink) {
    ctx_.tracing_ = std::move(sink);
    return *this;
  }
  ContextBuilder& pool(tensor::ThreadPool* pool) {
    ctx_.pool_ = pool;
    return *this;
  }

  [[nodiscard]] Context build() const { return ctx_; }

 private:
  Context ctx_;
};

inline ContextBuilder Context::to_builder() const {
  return ContextBuilder(*this);
}

// ---------------------------------------------------------------------------
// Scope: the single RAII override stack.
// ---------------------------------------------------------------------------

/// Partial override: only the engaged fields shadow the surrounding
/// configuration. This is what the deprecated KernelScope / CommScope
/// shims push — a kernels-only patch leaves an explicit Context's comm
/// choice intact instead of silently resetting it.
struct ContextPatch {
  std::optional<KernelConfig> kernels;
  std::optional<CommConfig> comm;
  std::optional<std::shared_ptr<const comm::FaultPlan>> fault_plan;
  std::optional<std::shared_ptr<TraceSink>> tracing;
  std::optional<tensor::ThreadPool*> pool;

  [[nodiscard]] static ContextPatch with_kernels(KernelConfig cfg) {
    ContextPatch p;
    p.kernels = cfg;
    return p;
  }
  [[nodiscard]] static ContextPatch with_comm(CommConfig cfg) {
    ContextPatch p;
    p.comm = cfg;
    return p;
  }
  [[nodiscard]] static ContextPatch with_tracing(
      std::shared_ptr<TraceSink> sink) {
    ContextPatch p;
    p.tracing = std::move(sink);
    return p;
  }
};

/// Thread-local RAII override, innermost wins. Nestable; destruction
/// restores exactly the surrounding state. Worker-crossing subsystems
/// (ThreadPool, AsyncCommunicator, serve::Server, SpmdEngine) install a
/// Scope of the submitter's effective context on their worker threads,
/// so overrides follow the work instead of stopping at thread edges.
class Scope {
 public:
  /// Overrides every field with `ctx`.
  explicit Scope(const Context& ctx);
  /// Overrides only the fields the patch engages.
  explicit Scope(const ContextPatch& patch);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  ContextPatch saved_;  ///< previous override values of the fields we set
  bool set_kernels_ = false;
  bool set_comm_ = false;
  bool set_fault_ = false;
  bool set_tracing_ = false;
  bool set_pool_ = false;
};

// ---------------------------------------------------------------------------
// Hot-path reads (no shared_ptr traffic on the common path).
// ---------------------------------------------------------------------------

/// Effective kernel config for the calling thread: innermost Scope that
/// set kernels, else the process default. This is the per-op dispatch
/// read — a thread-local probe plus one relaxed atomic load.
[[nodiscard]] KernelConfig active_kernel_config();

/// Effective comm config for the calling thread.
[[nodiscard]] CommConfig active_comm_config();

/// Effective pool handle (nullptr = process-global pool).
[[nodiscard]] tensor::ThreadPool* active_pool_handle();

/// Emits through the calling thread's effective sink. Cheap when no
/// sink could observe this thread (a thread-local probe plus one
/// relaxed atomic load, no shared_ptr traffic) — call freely from per-op
/// and per-batch paths.
void trace_here(std::string_view key, double value);

/// Emits through `ctx`'s sink, if any.
void trace(const Context& ctx, std::string_view key, double value);

namespace detail {
/// Bounded integer parse shared by from_env consumers: returns
/// `fallback` unless `text` is a bare integer in [lo, hi].
[[nodiscard]] std::optional<int> parse_bounded_int(const std::string& text,
                                                   int lo, int hi);
/// Innermost Scope comm override on this thread, if any. Exists for the
/// deprecated comm::comm_scope_override() shim; new code resolves a full
/// Context instead.
[[nodiscard]] std::optional<CommConfig> thread_comm_override();
}  // namespace detail

}  // namespace dchag::runtime
