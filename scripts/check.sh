#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (tests + examples + benches),
# and run ctest. With --format, also check clang-format compliance first.
#
# Usage:  scripts/check.sh [--format|--format-only] [build-dir]
#   --format       run the clang-format check before build+ctest
#   --format-only  run just the clang-format check (the CI format job)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
check_format=0
format_only=0
build_dir="build"
for arg in "$@"; do
  case "$arg" in
    --format) check_format=1 ;;
    --format-only) check_format=1; format_only=1 ;;
    -h|--help)
      echo "usage: scripts/check.sh [--format|--format-only] [build-dir]"
      exit 0 ;;
    *) build_dir="$arg" ;;
  esac
done

cd "$repo_root"

# Portable parallelism probe: nproc is Linux/coreutils-only and mapfile
# needs bash >= 4 (macOS ships 3.2), so avoid both.
jobs="$( (command -v nproc >/dev/null 2>&1 && nproc) ||
         sysctl -n hw.ncpu 2>/dev/null || echo 4 )"

if [[ "$check_format" == 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format check"
    sources=()
    while IFS= read -r f; do sources+=("$f"); done \
      < <(git ls-files '*.cpp' '*.hpp')
    clang-format --dry-run --Werror "${sources[@]}"
  elif [[ "$format_only" == 1 ]]; then
    echo "== clang-format not found but --format-only requested" >&2
    exit 1
  else
    echo "== clang-format not found; skipping format check" >&2
  fi
fi
if [[ "$format_only" == 1 ]]; then
  echo "== OK (format only)"
  exit 0
fi

# A crashed or interrupted ingress test run can leave worker processes
# polling their rings forever and shm segments behind; sweep both so the
# ingress suites below start from a clean slate. The bracketed pattern
# keeps pkill from matching this script's own command line, and plain
# "pkill -x" would miss the workers (comm truncates at 15 chars).
echo "== sweep stray ingress workers + shm segments"
pkill -f '[d]chag_ingress_worker' 2>/dev/null && echo "   killed stray workers" || true
[ -d /dev/shm ] && rm -f /dev/shm/dchag_ing_* 2>/dev/null || true

echo "== configure"
cmake -B "$build_dir" -S . -DDCHAG_BUILD_BENCH=ON
echo "== build"
cmake --build "$build_dir" -j "$jobs"
echo "== ctest"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
echo "== OK"
