#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/check.hpp"

#if defined(DCHAG_GEMM_AVX2)
#include <immintrin.h>
#endif

namespace dchag::tensor::gemm {

namespace {

// Tile sizes chosen for ~2 MB L2 parts: the packed B panel (KC x NC =
// 512 KB) and A panel (MC x KC = 120 KB) stay resident across the macro
// kernel. MC is a multiple of MR, NC a multiple of NR.
constexpr Index kMR = 6;
constexpr Index kNR = 16;
constexpr Index kMC = 120;
constexpr Index kKC = 256;
constexpr Index kNC = 512;

/// Packs A[i0:i0+mc, p0:p0+kc] into MR-row panels, k-major inside each
/// panel (a[k*MR + i]); rows past `mc` are zero so the micro-kernel never
/// branches on the M edge.
void pack_a(const float* A, Index lda, Index mc, Index kc, float* out) {
  for (Index i = 0; i < mc; i += kMR) {
    const Index mr = std::min(kMR, mc - i);
    for (Index k = 0; k < kc; ++k) {
      for (Index r = 0; r < mr; ++r) out[k * kMR + r] = A[(i + r) * lda + k];
      for (Index r = mr; r < kMR; ++r) out[k * kMR + r] = 0.0f;
    }
    out += kKC * kMR;
  }
}

/// Packs B[p0:p0+kc, j0:j0+nc] into NR-column panels (b[k*NR + j]);
/// columns past `nc` are zero.
void pack_b(const float* B, Index ldb, Index kc, Index nc, float* out) {
  for (Index j = 0; j < nc; j += kNR) {
    const Index nr = std::min(kNR, nc - j);
    for (Index k = 0; k < kc; ++k) {
      const float* row = B + k * ldb + j;
      for (Index c = 0; c < nr; ++c) out[k * kNR + c] = row[c];
      for (Index c = nr; c < kNR; ++c) out[k * kNR + c] = 0.0f;
    }
    out += kKC * kNR;
  }
}

/// MR x NR register tile over one KC slice of packed panels; writes back
/// only the mr x nr valid corner. Per-element accumulation is strictly
/// k-ordered in both variants, which is what keeps the blocked and
/// parallel backends bit-identical.
#if defined(DCHAG_GEMM_AVX2)
void micro_kernel(Index kc, const float* a, const float* b, float* C,
                  Index ldc, Index mr, Index nr) {
  // 6 rows x 16 columns = 12 ymm accumulators; 2 loads + 6 broadcasts +
  // 12 FMAs per k.
  __m256 acc[kMR][2];
  for (Index i = 0; i < kMR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (Index k = 0; k < kc; ++k) {
    const __m256 b0 = _mm256_loadu_ps(b + k * kNR);
    const __m256 b1 = _mm256_loadu_ps(b + k * kNR + 8);
    const float* ak = a + k * kMR;
    for (Index i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(ak + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  if (mr == kMR && nr == kNR) {
    for (Index i = 0; i < kMR; ++i) {
      float* crow = C + i * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[i][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[i][1]));
    }
  } else {
    alignas(32) float buf[kMR][kNR];
    for (Index i = 0; i < kMR; ++i) {
      _mm256_store_ps(buf[i], acc[i][0]);
      _mm256_store_ps(buf[i] + 8, acc[i][1]);
    }
    for (Index i = 0; i < mr; ++i) {
      float* crow = C + i * ldc;
      for (Index j = 0; j < nr; ++j) crow[j] += buf[i][j];
    }
  }
}
#else
void micro_kernel(Index kc, const float* a, const float* b, float* C,
                  Index ldc, Index mr, Index nr) {
  float acc[kMR][kNR] = {};
  for (Index k = 0; k < kc; ++k) {
    const float* bk = b + k * kNR;
    const float* ak = a + k * kMR;
    for (Index i = 0; i < kMR; ++i) {
      const float av = ak[i];
      for (Index j = 0; j < kNR; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (Index i = 0; i < mr; ++i) {
    float* crow = C + i * ldc;
    for (Index j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}
#endif

}  // namespace

// Panel sizes are whole vector multiples, so MR/NR panel starts inside an
// aligned base stay aligned and the micro-kernel never straddles a vector
// boundary it didn't choose.
static_assert(kKC * kMR % 8 == 0, "A panel stride must be a whole ymm count");
static_assert(kKC * kNR % 8 == 0, "B panel stride must be a whole ymm count");

namespace {

/// Per-thread packing scratch, reused across calls (~632 KB once per
/// lane): small matmuls — attention's many [N, dh] panels — would
/// otherwise spend as long in the allocator as in the micro-kernel.
/// AlignedVec storage fixes the long-standing alignment bug here: the
/// panels the AVX2 micro-kernel streams over now start on a 32-byte
/// boundary instead of wherever std::vector's allocator landed.
float* thread_packed_a() {
  static thread_local AlignedVec packed_a(
      static_cast<std::size_t>(kMC * kKC));
  DCHAG_CHECK(is_aligned(packed_a.data()), "A pack scratch misaligned");
  return packed_a.data();
}

float* thread_packed_b() {
  static thread_local AlignedVec packed_b(
      static_cast<std::size_t>(kKC * kNC));
  DCHAG_CHECK(is_aligned(packed_b.data()), "B pack scratch misaligned");
  return packed_b.data();
}

/// Macro kernel over one packed (jc, pc) B block: shared tail of the
/// per-call and pre-packed entry points, so their loop order (and thus
/// every C element's accumulation order) can never drift apart.
void macro_kernel(Index M, Index nc, Index kc, const float* A, Index lda,
                  Index pc, const float* packed_b_block, float* C, Index ldc,
                  Index jc, float* packed_a) {
  for (Index ic = 0; ic < M; ic += kMC) {
    const Index mc = std::min(kMC, M - ic);
    pack_a(A + ic * lda + pc, lda, mc, kc, packed_a);
    for (Index jr = 0; jr < nc; jr += kNR) {
      const Index nr = std::min(kNR, nc - jr);
      const float* bp = packed_b_block + (jr / kNR) * kKC * kNR;
      for (Index ir = 0; ir < mc; ir += kMR) {
        const Index mr = std::min(kMR, mc - ir);
        const float* ap = packed_a + (ir / kMR) * kKC * kMR;
        micro_kernel(kc, ap, bp, C + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
      }
    }
  }
}

}  // namespace

void gemm_blocked(Index M, Index N, Index K, const float* A, Index lda,
                  const float* B, Index ldb, float* C, Index ldc) {
  if (M <= 0 || N <= 0 || K <= 0) return;
  float* packed_a = thread_packed_a();
  float* packed_b_buf = thread_packed_b();
  for (Index jc = 0; jc < N; jc += kNC) {
    const Index nc = std::min(kNC, N - jc);
    for (Index pc = 0; pc < K; pc += kKC) {
      const Index kc = std::min(kKC, K - pc);
      pack_b(B + pc * ldb + jc, ldb, kc, nc, packed_b_buf);
      macro_kernel(M, nc, kc, A, lda, pc, packed_b_buf, C, ldc, jc, packed_a);
    }
  }
}

PackedB pack_b_matrix(const float* B, Index K, Index N, Index ldb) {
  DCHAG_CHECK(K > 0 && N > 0, "pack_b_matrix needs K, N > 0, got " << K
                                                                   << ", "
                                                                   << N);
  PackedB pb;
  pb.K = K;
  pb.N = N;
  const Index pc_blocks = (K + kKC - 1) / kKC;
  const Index jc_blocks = (N + kNC - 1) / kNC;
  // Pass 1: exact offsets — edge jc blocks need fewer NR panels.
  pb.block_offset.resize(
      static_cast<std::size_t>(jc_blocks * pc_blocks));
  std::size_t total = 0;
  for (Index bj = 0; bj < jc_blocks; ++bj) {
    const Index nc = std::min(kNC, N - bj * kNC);
    const Index panels = (nc + kNR - 1) / kNR;
    const std::size_t block_floats =
        static_cast<std::size_t>(panels) * static_cast<std::size_t>(kKC * kNR);
    for (Index bp = 0; bp < pc_blocks; ++bp) {
      pb.block_offset[static_cast<std::size_t>(bj * pc_blocks + bp)] = total;
      total += block_floats;
    }
  }
  // Pass 2: pack every block with the same pack_b the per-call path uses
  // (zero-filled storage covers the k rows past an edge block's kc, which
  // the micro-kernel never reads).
  pb.data.assign(total, 0.0f);
  for (Index bj = 0; bj < jc_blocks; ++bj) {
    const Index jc = bj * kNC;
    const Index nc = std::min(kNC, N - jc);
    for (Index bp = 0; bp < pc_blocks; ++bp) {
      const Index pc = bp * kKC;
      const Index kc = std::min(kKC, K - pc);
      pack_b(B + pc * ldb + jc, ldb, kc, nc,
             pb.data.data() +
                 pb.block_offset[static_cast<std::size_t>(bj * pc_blocks +
                                                          bp)]);
    }
  }
  DCHAG_CHECK(is_aligned(pb.data.data()), "packed panels misaligned");
  return pb;
}

void gemm_blocked_prepacked(Index M, const float* A, Index lda,
                            const PackedB& pb, float* C, Index ldc) {
  const Index N = pb.N;
  const Index K = pb.K;
  if (M <= 0 || N <= 0 || K <= 0) return;
  float* packed_a = thread_packed_a();
  const Index pc_blocks = (K + kKC - 1) / kKC;
  for (Index jc = 0; jc < N; jc += kNC) {
    const Index nc = std::min(kNC, N - jc);
    const Index bj = jc / kNC;
    for (Index pc = 0; pc < K; pc += kKC) {
      const Index kc = std::min(kKC, K - pc);
      const float* block =
          pb.data.data() +
          pb.block_offset[static_cast<std::size_t>(bj * pc_blocks +
                                                   pc / kKC)];
      macro_kernel(M, nc, kc, A, lda, pc, block, C, ldc, jc, packed_a);
    }
  }
}

bool compiled_with_avx2() {
#if defined(DCHAG_GEMM_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace dchag::tensor::gemm
