// Minimal parameter-container base class shared by all model layers.
//
// Concrete layers register their Variables (and child modules) so that
// optimizers, FSDP sharding, and DP gradient reduction can enumerate every
// trainable tensor in a deterministic order (registration order), which is
// what keeps SPMD replicas bit-identical across ranks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/autograd.hpp"
#include "tensor/rng.hpp"

namespace dchag::autograd {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;
  virtual ~Module() = default;

  /// All trainable parameters, in deterministic registration order
  /// (depth-first through child modules).
  [[nodiscard]] std::vector<Variable> parameters() const {
    std::vector<Variable> out;
    collect_parameters(out);
    return out;
  }

  [[nodiscard]] tensor::Index num_parameters() const {
    tensor::Index n = 0;
    for (const Variable& p : parameters()) n += p.shape().numel();
    return n;
  }

  void zero_grad() const {
    for (Variable& p : parameters()) p.zero_grad();
  }

  void collect_parameters(std::vector<Variable>& out) const {
    for (const Variable& p : params_) out.push_back(p);
    for (const Module* c : children_) c->collect_parameters(out);
  }

  /// Recursively flips training mode (train/eval) on this module and every
  /// registered child. Serving asserts eval mode; layers with mode-dependent
  /// behaviour (dropout, batch statistics) branch on is_training().
  void train(bool mode = true) {
    training_ = mode;
    for (Module* c : children_) c->train(mode);
  }
  void eval() { train(false); }
  [[nodiscard]] bool is_training() const { return training_; }

 protected:
  Variable register_param(std::string name, tensor::Tensor init) {
    Variable v = Variable::param(std::move(init), std::move(name));
    params_.push_back(v);
    return v;
  }
  /// Child must outlive this module (members registered in ctor order).
  void register_child(Module& child) { children_.push_back(&child); }

 private:
  std::vector<Variable> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

/// Dense layer y = x W + b with Xavier init; the workhorse of every module.
class Linear : public Module {
 public:
  Linear(tensor::Index in, tensor::Index out, tensor::Rng& rng,
         const std::string& name = "linear")
      : weight_(register_param(name + ".weight",
                               rng.xavier(tensor::Shape{in, out}))),
        bias_(register_param(name + ".bias", tensor::Tensor({out}, 0.0f))) {}

  [[nodiscard]] Variable forward(const Variable& x) const {
    return add(matmul(x, weight_), bias_);
  }

  [[nodiscard]] const Variable& weight() const { return weight_; }
  [[nodiscard]] const Variable& bias() const { return bias_; }

 private:
  Variable weight_;
  Variable bias_;
};

/// LayerNorm over the last dimension with learnable gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(tensor::Index dim, const std::string& name = "ln")
      : gamma_(register_param(name + ".gamma", tensor::Tensor({dim}, 1.0f))),
        beta_(register_param(name + ".beta", tensor::Tensor({dim}, 0.0f))) {}

  [[nodiscard]] Variable forward(const Variable& x) const {
    return layernorm(x, gamma_, beta_);
  }

 private:
  Variable gamma_;
  Variable beta_;
};

}  // namespace dchag::autograd
