// Sequence parallelism (paper §3.5): distributes the token sequence
// instead of the embedding dimension. The paper argues D-CHAG composes
// with SP because both operate "just before the self-attention layers";
// this module demonstrates that composition executably.
//
// Scheme (blockwise SP for a ViT): every rank owns a contiguous S/P slice
// of the sequence. LayerNorm, MLP and residuals are purely local. For
// attention, each rank AllGathers the keys/values over the full sequence
// but computes attention only for its own query slice — no redundant
// compute, one gather per block. Parameters are REPLICATED across the SP
// group (SP shards activations, not weights), so parameter gradients must
// be AllReduce-summed across the group after backward (sync_gradients()).
#pragma once

#include "model/vit.hpp"
#include "parallel/collective_ops.hpp"

namespace dchag::parallel {

using model::ModelConfig;

/// Scatter a replicated [B, S, D] tensor to this rank's [B, S/P, D] slice.
[[nodiscard]] Variable scatter_sequence(const Variable& x,
                                        Communicator& comm);
/// Gather rank slices back to the replicated [B, S, D] (downstream of the
/// gather must be replicated, e.g. the loss).
[[nodiscard]] Variable gather_sequence(const Variable& x_local,
                                       Communicator& comm);

/// Pre-LN ViT block over a sequence shard.
class SequenceParallelViTBlock : public autograd::Module {
 public:
  SequenceParallelViTBlock(const ModelConfig& cfg, Communicator& comm,
                           tensor::Rng& rng, const std::string& name);

  /// x_local: [B, S/P, D] -> [B, S/P, D].
  [[nodiscard]] Variable forward(const Variable& x_local) const;

 private:
  Index heads_;
  Communicator* comm_;
  std::unique_ptr<autograd::LayerNorm> ln1_, ln2_;
  std::unique_ptr<autograd::Linear> wq_, wk_, wv_, wo_, mlp_up_, mlp_down_;
};

/// Drop-in SP replacement for model::ViTEncoder (same seed => same math).
class SequenceParallelViTEncoder : public autograd::Module {
 public:
  SequenceParallelViTEncoder(const ModelConfig& cfg, Communicator& comm,
                             tensor::Rng& rng,
                             const std::string& name = "vit");

  /// x_local: [B, S/P, D] -> [B, S/P, D].
  [[nodiscard]] Variable forward(const Variable& x_local) const;

  /// AllReduce-sums parameter gradients across the SP group (weights are
  /// replicated but each rank saw a different query slice). Call after
  /// backward(), before the optimizer step.
  void sync_gradients(Communicator& comm) const;

 private:
  std::vector<std::unique_ptr<SequenceParallelViTBlock>> blocks_;
  std::unique_ptr<autograd::LayerNorm> final_ln_;
};

}  // namespace dchag::parallel
