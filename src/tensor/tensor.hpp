// Dense float32 tensor with shared-buffer reference semantics.
//
// Copying a Tensor aliases the same storage (like torch tensors); use
// clone() for a deep copy. All tensors are contiguous row-major, which
// keeps every kernel a flat loop and makes reshape() free.
//
// Storage is 32-byte aligned (tensor/align.hpp) and acquired through
// plan::detail::acquire_buffer, so a serving thread running under a
// plan::ArenaScope transparently reuses pooled buffers instead of
// touching the heap — no per-op changes anywhere else in the codebase.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "tensor/align.hpp"
#include "tensor/plan.hpp"
#include "tensor/shape.hpp"

namespace dchag::tensor {

namespace detail {
/// Process-wide ledger of tensor bytes allocated since the last reset.
/// Lets tests census the activation memory of a forward pass and compare
/// it against hw::estimate_memory's analytic terms.
inline std::atomic<std::uint64_t> g_bytes_allocated{0};
}  // namespace detail

[[nodiscard]] inline std::uint64_t bytes_allocated() {
  return detail::g_bytes_allocated.load(std::memory_order_relaxed);
}
inline void reset_allocation_ledger() {
  detail::g_bytes_allocated.store(0, std::memory_order_relaxed);
}

class Tensor {
 public:
  /// Empty (rank-0 buffer-less) tensor; numel() == 1 shapes still allocate.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : buf_(plan::detail::acquire_buffer(shape.numel())),
        shape_(std::move(shape)) {
    record_allocation();
  }

  Tensor(Shape shape, float fill)
      : buf_(plan::detail::acquire_buffer_raw(shape.numel())),
        shape_(std::move(shape)) {
    std::fill(buf_->begin(), buf_->end(), fill);
    record_allocation();
  }

  /// Copies `data` into aligned storage; size must equal shape.numel().
  static Tensor from_data(Shape shape, const std::vector<float>& data) {
    DCHAG_CHECK(static_cast<Index>(data.size()) == shape.numel(),
                "data size " << data.size() << " != numel of "
                             << shape.to_string());
    Tensor t;
    t.buf_ = plan::detail::acquire_buffer_raw(shape.numel());
    std::copy(data.begin(), data.end(), t.buf_->begin());
    t.shape_ = std::move(shape);
    t.record_allocation();
    return t;
  }

  static Tensor scalar(float v) { return from_data(Shape{1}, {v}); }

  [[nodiscard]] bool defined() const { return buf_ != nullptr; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] Index numel() const { return shape_.numel(); }
  [[nodiscard]] Index rank() const { return shape_.rank(); }
  [[nodiscard]] Index dim(Index i) const { return shape_.dim(i); }

  [[nodiscard]] float* data() { return buf_->data() + offset_; }
  [[nodiscard]] const float* data() const { return buf_->data() + offset_; }
  [[nodiscard]] std::span<float> span() {
    return {data(), static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<const float> span() const {
    return {data(), static_cast<std::size_t>(numel())};
  }

  /// Element accessors for tests / debugging (O(rank) index math).
  [[nodiscard]] float at(std::initializer_list<Index> idx) const {
    return data()[flat_index(idx)];
  }
  void set(std::initializer_list<Index> idx, float v) {
    data()[flat_index(idx)] = v;
  }
  /// Scalar value of a 1-element tensor.
  [[nodiscard]] float item() const {
    DCHAG_CHECK(numel() == 1, "item() on tensor " << shape_.to_string());
    return data()[0];
  }

  [[nodiscard]] Tensor clone() const {
    Tensor t;
    t.buf_ = plan::detail::acquire_buffer_raw(numel());
    std::copy(span().begin(), span().end(), t.buf_->begin());
    t.shape_ = shape_;
    t.record_allocation();
    return t;
  }

  /// Reinterpret with a new shape of equal numel; shares storage.
  [[nodiscard]] Tensor reshape(Shape s) const {
    DCHAG_CHECK(s.numel() == numel(), "reshape " << shape_.to_string()
                                                 << " -> " << s.to_string());
    Tensor t = *this;
    t.shape_ = std::move(s);
    return t;
  }

  /// Zero-copy slice along dimension 0: rows [start, start+len).
  [[nodiscard]] Tensor slice0(Index start, Index len) const {
    DCHAG_CHECK(rank() >= 1 && start >= 0 && len >= 0 &&
                    start + len <= dim(0),
                "slice0(" << start << ", " << len << ") on "
                          << shape_.to_string());
    Tensor t = *this;
    t.offset_ = offset_ + start * shape_.stride(0);
    t.shape_ = shape_.with_dim(0, len);
    return t;
  }

  [[nodiscard]] bool same_storage(const Tensor& o) const {
    return buf_ == o.buf_;
  }

  void fill(float v) {
    for (float& x : span()) x = v;
  }
  void zero() { fill(0.0f); }

 private:
  void record_allocation() const {
    detail::g_bytes_allocated.fetch_add(
        static_cast<std::uint64_t>(numel()) * sizeof(float),
        std::memory_order_relaxed);
  }

  [[nodiscard]] Index flat_index(std::initializer_list<Index> idx) const {
    DCHAG_CHECK(static_cast<Index>(idx.size()) == rank(),
                "index rank mismatch for " << shape_.to_string());
    Index flat = 0;
    Index d = 0;
    for (Index i : idx) {
      DCHAG_CHECK(i >= 0 && i < shape_.dim(d),
                  "index " << i << " out of bounds in dim " << d << " of "
                           << shape_.to_string());
      flat += i * shape_.stride(d);
      ++d;
    }
    return flat;
  }

  std::shared_ptr<AlignedVec> buf_;
  Index offset_ = 0;
  Shape shape_;
};

}  // namespace dchag::tensor
