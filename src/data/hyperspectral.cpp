#include "data/hyperspectral.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace dchag::data {

namespace {

float gaussian(float x, float mu, float sigma) {
  const float d = (x - mu) / sigma;
  return std::exp(-0.5f * d * d);
}

}  // namespace

HyperspectralGenerator::HyperspectralGenerator(HyperspectralConfig cfg,
                                               std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  DCHAG_CHECK(cfg_.channels >= 3 && cfg_.num_materials >= 2,
              "hyperspectral config too small");
  spectra_.resize(static_cast<std::size_t>(cfg_.num_materials));
  const float lo = cfg_.wavelength_min_nm;
  const float hi = cfg_.wavelength_max_nm;
  for (Index m = 0; m < cfg_.num_materials; ++m) {
    auto& spec = spectra_[static_cast<std::size_t>(m)];
    spec.resize(static_cast<std::size_t>(cfg_.channels));
    Rng mat_rng = rng_.fork(static_cast<std::uint64_t>(m) + 101);
    // Material 0 is vegetation-like: green bump (~550 nm), chlorophyll
    // absorption (~680 nm), strong NIR plateau (>750 nm: the red edge).
    // Others are random smooth mixtures of 3 Gaussians + a baseline.
    const bool leafy = m == 0;
    const float base = leafy ? 0.05f : mat_rng.uniform(0.1f, 0.4f);
    struct Bump {
      float mu, sigma, amp;
    };
    std::vector<Bump> bumps;
    if (leafy) {
      bumps = {{550.0f, 40.0f, 0.25f},
               {680.0f, 25.0f, -0.08f},
               {820.0f, 120.0f, 0.55f}};
    } else {
      for (int k = 0; k < 3; ++k) {
        bumps.push_back({mat_rng.uniform(lo, hi),
                         mat_rng.uniform(40.0f, 150.0f),
                         mat_rng.uniform(-0.2f, 0.45f)});
      }
    }
    for (Index c = 0; c < cfg_.channels; ++c) {
      const float nm = lo + (hi - lo) * static_cast<float>(c) /
                                static_cast<float>(cfg_.channels - 1);
      float v = base;
      for (const Bump& b : bumps) v += b.amp * gaussian(nm, b.mu, b.sigma);
      spec[static_cast<std::size_t>(c)] = std::clamp(v, 0.0f, 1.0f);
    }
  }
}

Index HyperspectralGenerator::band_of_wavelength(float nm) const {
  const float lo = cfg_.wavelength_min_nm;
  const float hi = cfg_.wavelength_max_nm;
  const float t = std::clamp((nm - lo) / (hi - lo), 0.0f, 1.0f);
  return static_cast<Index>(
      std::round(t * static_cast<float>(cfg_.channels - 1)));
}

Tensor HyperspectralGenerator::sample_batch(Index batch) {
  const Index C = cfg_.channels;
  const Index H = cfg_.height;
  const Index W = cfg_.width;
  Tensor out(tensor::Shape{batch, C, H, W});
  float* dst = out.data();
  for (Index b = 0; b < batch; ++b) {
    // Per-scene abundance blobs: 2-4 bumps per material.
    struct Blob {
      float cx, cy, sx, sy, amp;
    };
    std::vector<std::vector<Blob>> blobs(
        static_cast<std::size_t>(cfg_.num_materials));
    for (Index m = 0; m < cfg_.num_materials; ++m) {
      const Index n = rng_.uniform_int(2, 4);
      for (Index k = 0; k < n; ++k) {
        blobs[static_cast<std::size_t>(m)].push_back(
            {rng_.uniform(0.0f, static_cast<float>(W)),
             rng_.uniform(0.0f, static_cast<float>(H)),
             rng_.uniform(0.1f * W, 0.35f * W),
             rng_.uniform(0.1f * H, 0.35f * H), rng_.uniform(0.4f, 1.0f)});
      }
    }
    // Abundances: softmax-normalised blob intensities per pixel.
    std::vector<float> abundance(
        static_cast<std::size_t>(cfg_.num_materials * H * W));
    for (Index y = 0; y < H; ++y) {
      for (Index x = 0; x < W; ++x) {
        float total = 1e-6f;
        for (Index m = 0; m < cfg_.num_materials; ++m) {
          float a = 0.0f;
          for (const Blob& bl : blobs[static_cast<std::size_t>(m)]) {
            a += bl.amp *
                 gaussian(static_cast<float>(x), bl.cx, bl.sx) *
                 gaussian(static_cast<float>(y), bl.cy, bl.sy);
          }
          abundance[static_cast<std::size_t>((m * H + y) * W + x)] = a;
          total += a;
        }
        for (Index m = 0; m < cfg_.num_materials; ++m) {
          abundance[static_cast<std::size_t>((m * H + y) * W + x)] /= total;
        }
      }
    }
    // Mix spectra by abundance + sensor noise.
    for (Index c = 0; c < C; ++c) {
      float* plane = dst + (b * C + c) * H * W;
      for (Index y = 0; y < H; ++y) {
        for (Index x = 0; x < W; ++x) {
          float v = 0.0f;
          for (Index m = 0; m < cfg_.num_materials; ++m) {
            v += abundance[static_cast<std::size_t>((m * H + y) * W + x)] *
                 spectra_[static_cast<std::size_t>(m)]
                         [static_cast<std::size_t>(c)];
          }
          plane[y * W + x] = v + rng_.normal(0.0f, cfg_.noise_std);
        }
      }
    }
  }
  return out;
}

void write_pseudo_rgb_ppm(const std::string& path, const Tensor& image,
                          Index band_r, Index band_g, Index band_b) {
  DCHAG_CHECK(image.rank() == 3, "write_pseudo_rgb_ppm expects [C, H, W]");
  const Index C = image.dim(0);
  const Index H = image.dim(1);
  const Index W = image.dim(2);
  DCHAG_CHECK(band_r < C && band_g < C && band_b < C, "band out of range");
  const auto normalise = [&](Index band, Index y, Index x,
                             float lo, float hi) {
    const float v = image.at({band, y, x});
    const float t = hi > lo ? (v - lo) / (hi - lo) : 0.0f;
    return static_cast<int>(std::clamp(t, 0.0f, 1.0f) * 255.0f);
  };
  std::ofstream f(path, std::ios::binary);
  DCHAG_CHECK(f.good(), "cannot open " << path);
  f << "P3\n" << W << " " << H << "\n255\n";
  const Index bands[3] = {band_r, band_g, band_b};
  float lo[3];
  float hi[3];
  for (int i = 0; i < 3; ++i) {
    lo[i] = 1e30f;
    hi[i] = -1e30f;
    for (Index y = 0; y < H; ++y) {
      for (Index x = 0; x < W; ++x) {
        const float v = image.at({bands[i], y, x});
        lo[i] = std::min(lo[i], v);
        hi[i] = std::max(hi[i], v);
      }
    }
  }
  for (Index y = 0; y < H; ++y) {
    for (Index x = 0; x < W; ++x) {
      for (int i = 0; i < 3; ++i) {
        f << normalise(bands[i], y, x, lo[i], hi[i]) << " ";
      }
    }
    f << "\n";
  }
}

}  // namespace dchag::data
