// The ingress dispatcher: the network front door of the serving system.
//
//   clients --TCP--> listener --admission--> bounded queue --dispatch-->
//     per-worker shm request rings --> worker PROCESSES --> response
//     rings --> completion --> client sockets
//
// Process isolation is the point: each worker is a separate OS process
// (posix_spawn of the dchag_ingress_worker binary) serving a
// serve::Engine behind its ring, so a crashing forward kills one worker,
// never the fleet. The dispatcher:
//
//   * admits or type-rejects requests (bounded queue; kSaturated when
//     full, kShuttingDown while draining) — backpressure is explicit,
//     accepted work is never dropped,
//   * round-robins admitted requests onto ready workers' rings,
//   * health-monitors via waitpid + the ring heartbeat word, re-dispatches
//     a dead worker's in-flight requests to survivors (requeued at the
//     FRONT — their latency budget is already spent) and respawns the
//     casualty, mirroring PR 6's survivor/respawn state machine,
//   * scales the pool between min_workers and max_workers from queue
//     pressure,
//   * serves /metrics- and /healthz-style queries from the same socket
//     protocol,
//   * drains on shutdown: every accepted request is answered before the
//     workers are stopped and the shm segments unlinked.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ingress/counters.hpp"
#include "ingress/shm_ring.hpp"
#include "ingress/worker.hpp"
#include "runtime/context.hpp"
#include "serve/metrics.hpp"

namespace dchag::ingress {

/// Deterministic crash injection (the fault-plan idiom of PR 4/6, applied
/// to processes): the `spawn_seq`-th worker ever spawned dies mid-request
/// while serving its `after_requests`-th request. Respawned workers get
/// fresh spawn_seq values, so a plan entry fires at most once.
struct CrashSpec {
  int spawn_seq = 0;
  int after_requests = 1;
};

struct IngressConfig {
  /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via port()).
  std::uint16_t port = 0;
  int min_workers = 1;
  int max_workers = 4;
  /// Admission queue bound; submissions beyond it get kSaturated.
  std::size_t queue_capacity = 256;
  /// Per-worker ring geometry (slots bounds per-worker in-flight work).
  RingConfig ring;
  /// Queue depth that triggers a scale-up (when below max_workers).
  std::size_t scale_up_depth = 8;
  /// Continuous idle time after which one worker above min is retired.
  std::chrono::milliseconds scale_down_idle{2000};
  /// A ready worker whose heartbeat stalls this long with work in flight
  /// is declared hung and killed (then respawned like a crash).
  std::chrono::milliseconds heartbeat_timeout{5000};
  /// Checkpoint every worker cold-starts from, and the architecture to
  /// rebuild before loading it.
  std::string checkpoint;
  ModelSpec model;
  /// Worker binary; empty = $DCHAG_ING_WORKER, else a path probed
  /// relative to the current executable (build-tree layout).
  std::string worker_exe;
  /// Seeded worker-crash schedule for the chaos suites.
  std::vector<CrashSpec> crash_plan;
};

class Ingress {
 public:
  /// Binds the listener, spawns min_workers worker processes, and starts
  /// serving. `ctx` (default: the constructing thread's effective
  /// context) is re-exported as DCHAG_* env to every worker it spawns —
  /// the context hand-off across the process boundary.
  explicit Ingress(IngressConfig cfg,
                   const runtime::Context& ctx = runtime::Context::current());
  /// Implies drain().
  ~Ingress();
  Ingress(const Ingress&) = delete;
  Ingress& operator=(const Ingress&) = delete;

  /// Actual bound port (after ephemeral-port resolution).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, answer every accepted request,
  /// stop workers via their control word, reap and unlink. Idempotent.
  void drain();

  [[nodiscard]] Counters::Snapshot counters() const;
  [[nodiscard]] serve::Metrics::Snapshot metrics() const {
    return metrics_.summary();
  }
  /// Live worker processes right now.
  [[nodiscard]] std::size_t worker_count() const;
  /// Admission queue depth right now.
  [[nodiscard]] std::size_t queue_depth() const;
  /// The full /metrics exposition (serve::Metrics + ingress counters).
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;  ///< frames from dispatch + query paths interleave
  };

  /// One admitted request waiting for (or riding on) a worker.
  struct Job {
    std::uint64_t ingress_id = 0;  ///< dispatcher-global ring id
    std::uint64_t client_id = 0;   ///< echoed back on the wire
    std::shared_ptr<Conn> conn;
    RingRequest hdr;
    std::vector<float> payload;
    std::chrono::steady_clock::time_point accepted;
    std::chrono::steady_clock::time_point dispatched;  ///< ring push time
  };

  struct Worker {
    int spawn_seq = -1;
    pid_t pid = -1;
    std::unique_ptr<ShmRing> ring;
    std::map<std::uint64_t, Job> in_flight;  ///< by ingress_id
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_beat_seen;
    bool retiring = false;  ///< deliberate scale-down, not a crash
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Conn> conn);
  void dispatch_loop();
  void monitor_loop();

  void handle_infer(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void send_error(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                  ErrorCode code, const std::string& message);

  [[nodiscard]] std::unique_ptr<Worker> spawn_worker();
  /// Requeues a dead worker's in-flight jobs and reaps its segment.
  void fail_over(std::unique_ptr<Worker> dead, bool count_restart);
  [[nodiscard]] std::string resolve_worker_exe() const;

  IngressConfig cfg_;
  runtime::Context ctx_;
  std::string worker_exe_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex mu_;  ///< guards queue_, workers_, flags, conns_
  std::condition_variable work_cv_;   ///< queue/ring/worker state changed
  std::condition_variable drain_cv_;  ///< fires when accepted work drains
  std::deque<Job> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::shared_ptr<Conn>> conns_;
  bool draining_ = false;
  bool stopped_ = false;
  /// Responses popped off a ring but not yet written to their client
  /// socket; drain() must wait these out before closing connections.
  std::size_t undelivered_ = 0;
  std::uint64_t next_ingress_id_ = 1;
  int next_spawn_seq_ = 0;
  int rr_cursor_ = 0;  ///< round-robin position over workers_
  std::chrono::steady_clock::time_point last_busy_;

  Counters counters_;
  serve::Metrics metrics_;

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread monitor_thread_;
  std::vector<std::thread> conn_threads_;
  std::mutex conn_threads_mu_;
};

}  // namespace dchag::ingress
