#include "model/perceiver.hpp"

#include <gtest/gtest.h>

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(Perceiver, OutputShape) {
  Rng rng(1);
  PerceiverAggregator agg(32, 4, /*channels=*/10, /*latents=*/4,
                          /*iterations=*/2, rng);
  Tensor tokens = rng.normal_tensor(Shape{2, 3, 10, 32});
  EXPECT_EQ(agg.forward(Variable::input(tokens)).shape(), (Shape{2, 3, 32}));
  EXPECT_EQ(agg.width(), 10);
  EXPECT_EQ(agg.num_latents(), 4);
  EXPECT_EQ(agg.num_iterations(), 2);
}

TEST(Perceiver, ParamFormulaMatchesModule) {
  Rng rng(2);
  for (Index iters : {1, 2, 3}) {
    PerceiverAggregator agg(32, 4, 8, 6, iters, rng);
    EXPECT_EQ(agg.num_parameters(), perceiver_params(32, 6, iters))
        << "iters=" << iters;
  }
}

TEST(Perceiver, ParamsIndependentOfChannelCount) {
  // The whole point of latent bottlenecks: model size does not grow with
  // the number of input channels.
  Rng rng(3);
  PerceiverAggregator a(32, 4, 8, 4, 2, rng, "p");
  PerceiverAggregator b(32, 4, 512, 4, 2, rng, "p");
  EXPECT_EQ(a.num_parameters(), b.num_parameters());
}

TEST(Perceiver, OutputDependsOnEveryChannel) {
  Rng rng(4);
  PerceiverAggregator agg(16, 2, 5, 3, 1, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 5, 16});
  Tensor base = agg.forward(Variable::input(tokens)).value();
  for (Index c = 0; c < 5; ++c) {
    Tensor mod = tokens.clone();
    mod.set({0, 0, c, 0}, mod.at({0, 0, c, 0}) + 2.0f);
    EXPECT_GT(ops::max_abs_diff(agg.forward(Variable::input(mod)).value(),
                                base),
              1e-6f)
        << "channel " << c;
  }
}

TEST(Perceiver, GradientsFlowToLatentsAndAllBlocks) {
  Rng rng(5);
  PerceiverAggregator agg(16, 2, 4, 3, 2, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 4, 16});
  autograd::sum_all(agg.forward(Variable::input(tokens))).backward();
  for (const auto& p : agg.parameters()) {
    EXPECT_TRUE(p.has_grad()) << p.name();
  }
}

TEST(Perceiver, MoreIterationsChangeOutput) {
  Rng a_rng(6);
  Rng b_rng(6);
  PerceiverAggregator one(16, 2, 4, 3, 1, a_rng, "p");
  PerceiverAggregator two(16, 2, 4, 3, 2, b_rng, "p");
  Tensor tokens = Rng(7).normal_tensor(Shape{1, 2, 4, 16});
  EXPECT_GT(ops::max_abs_diff(one.forward(Variable::input(tokens)).value(),
                              two.forward(Variable::input(tokens)).value()),
            1e-5f);
}

TEST(Perceiver, PluggableAsChannelAggregator) {
  // Composes with the rest of the stack through the common interface —
  // the property paper §3.5 relies on for Aurora-style fusion modules.
  Rng rng(8);
  std::unique_ptr<ChannelAggregator> agg =
      std::make_unique<PerceiverAggregator>(32, 4, 6, 2, 1, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 4, 6, 32});
  EXPECT_EQ(agg->forward(Variable::input(tokens)).shape(), (Shape{1, 4, 32}));
}

TEST(Perceiver, RejectsBadConfig) {
  Rng rng(9);
  EXPECT_THROW(PerceiverAggregator(32, 5, 4, 2, 1, rng), Error);  // heads
  EXPECT_THROW(PerceiverAggregator(32, 4, 4, 0, 1, rng), Error);  // latents
  EXPECT_THROW(PerceiverAggregator(32, 4, 4, 2, 0, rng), Error);  // iters
}

}  // namespace
}  // namespace dchag::model
