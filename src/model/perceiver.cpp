#include "model/perceiver.hpp"

namespace dchag::model {

namespace {
constexpr Index kMlpRatio = 2;  // Perceiver uses a slim MLP
}

PerceiverAggregator::PerceiverAggregator(Index dim, Index heads,
                                         Index channels, Index latents,
                                         Index iterations, Rng& rng,
                                         const std::string& name)
    : dim_(dim), heads_(heads), channels_(channels), latents_(latents) {
  DCHAG_CHECK(dim % heads == 0, "dim % heads");
  DCHAG_CHECK(latents >= 1 && iterations >= 1, "perceiver needs >=1 latent "
                                               "and iteration");
  Rng r = rng.fork(std::hash<std::string>{}(name));
  latent_tokens_ = register_param(
      name + ".latents", r.normal_tensor(tensor::Shape{latents, dim}, 0.0f,
                                         0.02f));
  blocks_.resize(static_cast<std::size_t>(iterations));
  for (Index i = 0; i < iterations; ++i) {
    auto& b = blocks_[static_cast<std::size_t>(i)];
    const std::string bn = name + ".block" + std::to_string(i);
    b.ln_q = std::make_unique<LayerNorm>(dim, bn + ".ln_q");
    b.ln_kv = std::make_unique<LayerNorm>(dim, bn + ".ln_kv");
    b.ln_mlp = std::make_unique<LayerNorm>(dim, bn + ".ln_mlp");
    b.wq = std::make_unique<Linear>(dim, dim, r, bn + ".wq");
    b.wk = std::make_unique<Linear>(dim, dim, r, bn + ".wk");
    b.wv = std::make_unique<Linear>(dim, dim, r, bn + ".wv");
    b.wo = std::make_unique<Linear>(dim, dim, r, bn + ".wo");
    b.mlp_up = std::make_unique<Linear>(dim, kMlpRatio * dim, r,
                                        bn + ".mlp_up");
    b.mlp_down = std::make_unique<Linear>(kMlpRatio * dim, dim, r,
                                          bn + ".mlp_down");
    register_child(*b.ln_q);
    register_child(*b.ln_kv);
    register_child(*b.ln_mlp);
    register_child(*b.wq);
    register_child(*b.wk);
    register_child(*b.wv);
    register_child(*b.wo);
    register_child(*b.mlp_up);
    register_child(*b.mlp_down);
  }
}

Variable PerceiverAggregator::forward(const Variable& tokens) const {
  const auto& s = tokens.shape();
  DCHAG_CHECK(s.rank() == 4 && s.dim(2) == channels_ && s.dim(3) == dim_,
              "perceiver expects [B, S, " << channels_ << ", " << dim_
                                          << "], got " << s.to_string());
  const Index B = s.dim(0);
  const Index S = s.dim(1);

  // Broadcast the learned latents over batch and space: [B, S, K, D].
  Variable lat = autograd::expand_dim(latent_tokens_, 0, S);
  lat = autograd::expand_dim(lat, 0, B);

  for (const Block& b : blocks_) {
    // Cross-attention: latents query the channel tokens.
    Variable q = detail::split_heads(b.wq->forward(b.ln_q->forward(lat)),
                                     heads_);
    Variable kv_in = b.ln_kv->forward(tokens);
    Variable k = detail::split_heads(b.wk->forward(kv_in), heads_);
    Variable v = detail::split_heads(b.wv->forward(kv_in), heads_);
    Variable attended = b.wo->forward(
        detail::merge_heads(detail::scaled_attention(q, k, v)));
    lat = autograd::add(lat, attended);
    // Latent MLP.
    Variable h = b.mlp_down->forward(
        autograd::gelu(b.mlp_up->forward(b.ln_mlp->forward(lat))));
    lat = autograd::add(lat, h);
  }
  return autograd::mean_dim(lat, 2);  // pool latents -> [B, S, D]
}

Index perceiver_params(Index dim, Index latents, Index iterations,
                       Index mlp_ratio) {
  const Index per_block = 3 * 2 * dim                       // three LNs
                          + 4 * (dim * dim + dim)           // q, k, v, out
                          + dim * (mlp_ratio * dim) + mlp_ratio * dim
                          + mlp_ratio * dim * dim + dim;    // mlp
  return latents * dim + iterations * per_block;
}

}  // namespace dchag::model
