// Dynamic micro-batching (the standard serving pattern; see the agent-
// services survey in PAPERS.md): requests queue in per-compatibility-key
// lanes and a batch is released when a lane reaches max_batch or its
// oldest request has waited max_wait. Compatible == same channel subset,
// same lead time, same image shape — exactly the requests that can share
// one [B, C, S, D] forward without changing any per-sample result.
#pragma once

#include <chrono>
#include <deque>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace dchag::serve {

struct BatcherConfig {
  /// Largest batch a single forward may carry.
  Index max_batch = 8;
  /// Longest a request may wait for lane-mates before it ships partial.
  std::chrono::microseconds max_wait{2000};
};

/// A request parked in the batcher, carrying its response promise.
struct PendingRequest {
  Request request;
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueued;
};

/// A set of mutually compatible requests released together; items.front()
/// defines the shared channel subset / lead time.
struct Batch {
  std::vector<PendingRequest> items;
};

class Batcher {
 public:
  explicit Batcher(BatcherConfig cfg) : cfg_(cfg) {
    DCHAG_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  }

  /// Enqueues a request; the future resolves when a worker finishes the
  /// batch that carries it. Throws if the batcher is closed.
  [[nodiscard]] ResponseFuture submit(Request r);

  /// Blocks until a batch is ready: a lane filled to max_batch, a lane's
  /// oldest request aged past max_wait, or close() flushing leftovers.
  /// Returns std::nullopt once closed and fully drained — the worker
  /// shutdown signal.
  [[nodiscard]] std::optional<Batch> pop();

  /// Stops accepting requests and wakes poppers to drain what remains.
  void close();

  /// Requests currently parked (all lanes).
  [[nodiscard]] std::size_t depth() const;

  [[nodiscard]] const BatcherConfig& config() const { return cfg_; }

 private:
  /// Lane key: channel subset + lead-time bits + image shape.
  static std::string lane_key(const Request& r);

  BatcherConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<PendingRequest>> lanes_;
  std::size_t depth_ = 0;
  bool closed_ = false;
};

}  // namespace dchag::serve
