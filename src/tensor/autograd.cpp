#include "tensor/autograd.hpp"

#include <algorithm>
#include <unordered_set>

namespace dchag::autograd {

namespace ops = tensor::ops;

namespace {
thread_local bool tls_grad_enabled = true;
thread_local std::uint64_t tls_tape_nodes = 0;
}  // namespace

bool is_grad_enabled() { return tls_grad_enabled; }

std::uint64_t tape_nodes_created() { return tls_tape_nodes; }

NoGradGuard::NoGradGuard() : prev_(tls_grad_enabled) {
  tls_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { tls_grad_enabled = prev_; }

void accumulate_grad(Node& n, const Tensor& g) {
  if (!n.requires_grad) return;
  DCHAG_CHECK(g.shape() == n.value.shape(),
              "grad shape " << g.shape().to_string() << " != value shape "
                            << n.value.shape().to_string() << " for node '"
                            << n.name << "'");
  if (!n.grad.defined()) {
    n.grad = g.clone();
  } else {
    float* pg = n.grad.data();
    const float* ps = g.data();
    const Index count = g.numel();
    for (Index i = 0; i < count; ++i) pg[i] += ps[i];
  }
}

Variable Variable::param(Tensor v, std::string name) {
  auto n = std::make_shared<Node>();
  n->value = std::move(v);
  n->requires_grad = true;
  n->name = std::move(name);
  return Variable(std::move(n));
}

Variable Variable::leaf(Tensor v, bool requires_grad) {
  auto n = std::make_shared<Node>();
  n->value = std::move(v);
  n->requires_grad = requires_grad;
  return Variable(std::move(n));
}

Variable make_op(Tensor value, std::vector<Variable> parents,
                 std::function<void(const Tensor&)> backward) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  if (!tls_grad_enabled) {
    // Inference mode: the op's value survives but no history is recorded —
    // parents (and their activations) free as soon as callers drop them.
    return Variable(std::move(n));
  }
  ++tls_tape_nodes;
  for (const Variable& p : parents) {
    DCHAG_CHECK(p.defined(), "undefined parent in make_op");
    n->requires_grad = n->requires_grad || p.requires_grad();
    n->parents.push_back(p.node());
  }
  if (n->requires_grad) n->backward_fn = std::move(backward);
  return Variable(std::move(n));
}

void Variable::backward() const {
  DCHAG_CHECK(defined(), "backward() on undefined variable");
  DCHAG_CHECK(node_->value.numel() == 1,
              "backward() requires a scalar; got "
                  << node_->value.shape().to_string());
  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, child] = stack.back();
    if (child < n->parents.size()) {
      Node* p = n->parents[child++].get();
      if (p->requires_grad && !visited.contains(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed d(loss)/d(loss) = 1 and run in reverse topological order.
  accumulate_grad(*node_, Tensor(node_->value.shape(), 1.0f));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.defined()) n->backward_fn(n->grad);
  }
}

// ----- op implementations -----------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  Tensor out = ops::add(a.value(), b.value());
  auto na = a.node();
  auto nb = b.node();
  return make_op(std::move(out), {a, b}, [na, nb](const Tensor& g) {
    accumulate_grad(*na, ops::reduce_to_shape(g, na->value.shape()));
    accumulate_grad(*nb, ops::reduce_to_shape(g, nb->value.shape()));
  });
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor out = ops::sub(a.value(), b.value());
  auto na = a.node();
  auto nb = b.node();
  return make_op(std::move(out), {a, b}, [na, nb](const Tensor& g) {
    accumulate_grad(*na, ops::reduce_to_shape(g, na->value.shape()));
    accumulate_grad(*nb,
                    ops::reduce_to_shape(ops::neg(g), nb->value.shape()));
  });
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor out = ops::mul(a.value(), b.value());
  auto na = a.node();
  auto nb = b.node();
  return make_op(std::move(out), {a, b}, [na, nb](const Tensor& g) {
    accumulate_grad(
        *na, ops::reduce_to_shape(ops::mul(g, nb->value), na->value.shape()));
    accumulate_grad(
        *nb, ops::reduce_to_shape(ops::mul(g, na->value), nb->value.shape()));
  });
}

Variable scale(const Variable& a, float s) {
  auto na = a.node();
  return make_op(ops::scale(a.value(), s), {a}, [na, s](const Tensor& g) {
    accumulate_grad(*na, ops::scale(g, s));
  });
}

Variable neg(const Variable& a) { return scale(a, -1.0f); }

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = ops::matmul(a.value(), b.value());
  auto na = a.node();
  auto nb = b.node();
  return make_op(std::move(out), {a, b}, [na, nb](const Tensor& g) {
    const Tensor& av = na->value;
    const Tensor& bv = nb->value;
    if (na->requires_grad) {
      // dA = g @ B^T (B shared across batch broadcasts automatically).
      accumulate_grad(*na, ops::matmul(g, ops::transpose_last2(bv)));
    }
    if (nb->requires_grad) {
      if (bv.rank() == 2 && av.rank() > 2) {
        // Shared weight: fold batch into rows, dB = A2^T @ G2.
        const Index K = av.dim(-1);
        const Index N = g.dim(-1);
        const Index rows = av.numel() / K;
        Tensor a2 = av.reshape(Shape{rows, K});
        Tensor g2 = g.reshape(Shape{rows, N});
        accumulate_grad(*nb, ops::matmul(ops::transpose_last2(a2), g2));
      } else {
        accumulate_grad(*nb, ops::matmul(ops::transpose_last2(av), g));
      }
    }
  });
}

Variable reshape(const Variable& a, Shape s) {
  auto na = a.node();
  const Shape orig = a.shape();
  return make_op(a.value().reshape(std::move(s)), {a},
                 [na, orig](const Tensor& g) {
                   accumulate_grad(*na, g.reshape(orig));
                 });
}

Variable permute(const Variable& a, std::vector<Index> perm) {
  auto na = a.node();
  std::vector<Index> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<Index>(i);
  return make_op(ops::permute(a.value(), perm), {a},
                 [na, inv](const Tensor& g) {
                   accumulate_grad(*na, ops::permute(g, inv));
                 });
}

Variable transpose_last2(const Variable& a) {
  std::vector<Index> perm(static_cast<std::size_t>(a.shape().rank()));
  for (Index d = 0; d < a.shape().rank(); ++d)
    perm[static_cast<std::size_t>(d)] = d;
  std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
  return permute(a, std::move(perm));
}

Variable softmax_lastdim(const Variable& a) {
  Tensor y = ops::softmax_lastdim(a.value());
  auto na = a.node();
  return make_op(y, {a}, [na, y](const Tensor& g) {
    // dx = y * (g - sum_j(g_j * y_j)) along the last dim.
    Tensor gy = ops::mul(g, y);
    Tensor s = ops::sum_dim(gy, -1);
    Tensor s_exp = ops::expand_dim(s, s.rank(), y.dim(-1));
    accumulate_grad(*na, ops::mul(y, ops::sub(g, s_exp)));
  });
}

Variable gelu(const Variable& a) {
  auto na = a.node();
  return make_op(ops::gelu(a.value()), {a}, [na](const Tensor& g) {
    accumulate_grad(*na, ops::mul(g, ops::gelu_grad(na->value)));
  });
}

Variable layernorm(const Variable& a, const Variable& gamma,
                   const Variable& beta, float eps) {
  auto r = ops::layernorm(a.value(), gamma.value(), beta.value(), eps);
  auto na = a.node();
  auto ng = gamma.node();
  auto nb = beta.node();
  Tensor mean = r.mean;
  Tensor rstd = r.rstd;
  return make_op(r.y, {a, gamma, beta},
                 [na, ng, nb, mean, rstd](const Tensor& g) {
    const Tensor& x = na->value;
    const Index D = x.dim(-1);
    const Index rows = x.numel() / D;
    const float* px = x.data();
    const float* pg = g.data();
    const float* pgamma = ng->value.data();
    const float* pm = mean.data();
    const float* pr = rstd.data();
    Tensor dx(x.shape());
    Tensor dgamma(ng->value.shape());
    Tensor dbeta(nb->value.shape());
    float* pdx = dx.data();
    float* pdg = dgamma.data();
    float* pdb = dbeta.data();
    for (Index i = 0; i < rows; ++i) {
      const float* xrow = px + i * D;
      const float* grow = pg + i * D;
      float* dxrow = pdx + i * D;
      const float m = pm[i];
      const float rs = pr[i];
      float sum_gxh = 0.0f;
      float sum_g = 0.0f;
      for (Index j = 0; j < D; ++j) {
        const float xh = (xrow[j] - m) * rs;
        const float gj = grow[j] * pgamma[j];
        sum_gxh += gj * xh;
        sum_g += gj;
        pdg[j] += grow[j] * xh;
        pdb[j] += grow[j];
      }
      const float inv_d = 1.0f / static_cast<float>(D);
      for (Index j = 0; j < D; ++j) {
        const float xh = (xrow[j] - m) * rs;
        const float gj = grow[j] * pgamma[j];
        dxrow[j] = rs * (gj - inv_d * sum_g - xh * inv_d * sum_gxh);
      }
    }
    accumulate_grad(*na, dx);
    accumulate_grad(*ng, dgamma);
    accumulate_grad(*nb, dbeta);
  });
}

Variable concat(std::span<const Variable> vs, Index dim) {
  std::vector<Tensor> values;
  values.reserve(vs.size());
  std::vector<Variable> parents(vs.begin(), vs.end());
  for (const Variable& v : vs) values.push_back(v.value());
  Tensor out = ops::concat(values, dim);
  const Index rank = out.rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  std::vector<std::shared_ptr<Node>> nodes;
  nodes.reserve(vs.size());
  for (const Variable& v : vs) nodes.push_back(v.node());
  return make_op(std::move(out), std::move(parents),
                 [nodes, d](const Tensor& g) {
                   Index off = 0;
                   for (const auto& n : nodes) {
                     const Index len = n->value.dim(d);
                     accumulate_grad(*n, ops::slice(g, d, off, len));
                     off += len;
                   }
                 });
}

Variable slice(const Variable& a, Index dim, Index start, Index len) {
  auto na = a.node();
  const Index rank = a.shape().rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  return make_op(ops::slice(a.value(), d, start, len), {a},
                 [na, d, start](const Tensor& g) {
                   if (!na->requires_grad) return;
                   Tensor dx(na->value.shape());
                   ops::add_slice_inplace(dx, g, d, start);
                   accumulate_grad(*na, dx);
                 });
}

Variable sum_all(const Variable& a) {
  auto na = a.node();
  return make_op(ops::sum_all(a.value()), {a}, [na](const Tensor& g) {
    accumulate_grad(*na, Tensor(na->value.shape(), g.item()));
  });
}

Variable mean_all(const Variable& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.shape().numel()));
}

Variable sum_dim(const Variable& a, Index dim) {
  auto na = a.node();
  const Index rank = a.shape().rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  const Index n = a.shape().dim(d);
  return make_op(ops::sum_dim(a.value(), d), {a},
                 [na, d, n](const Tensor& g) {
                   accumulate_grad(*na, ops::expand_dim(g, d, n));
                 });
}

Variable mean_dim(const Variable& a, Index dim) {
  const Index rank = a.shape().rank();
  const Index d = dim >= 0 ? dim : dim + rank;
  return scale(sum_dim(a, d), 1.0f / static_cast<float>(a.shape().dim(d)));
}

Variable expand_dim(const Variable& a, Index dim, Index n) {
  auto na = a.node();
  const Index rank = a.shape().rank() + 1;
  const Index d = dim >= 0 ? dim : dim + rank;
  return make_op(ops::expand_dim(a.value(), d, n), {a},
                 [na, d](const Tensor& g) {
                   accumulate_grad(*na, ops::sum_dim(g, d));
                 });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  DCHAG_CHECK(pred.shape() == target.shape(),
              "mse_loss shapes " << pred.shape().to_string() << " vs "
                                 << target.shape().to_string());
  Variable diff = sub(pred, Variable::input(target));
  return mean_all(mul(diff, diff));
}

Variable masked_mse_loss(const Variable& pred, const Tensor& target,
                         const Tensor& mask) {
  DCHAG_CHECK(pred.shape() == target.shape() && pred.shape() == mask.shape(),
              "masked_mse_loss shape mismatch");
  const Tensor ms = ops::sum_all(mask);
  DCHAG_CHECK(ms.item() > 0.0f, "masked_mse_loss: empty mask");
  Variable diff = sub(pred, Variable::input(target));
  Variable sq = mul(diff, diff);
  Variable masked = mul(sq, Variable::input(mask));
  return scale(sum_all(masked), 1.0f / ms.item());
}

}  // namespace dchag::autograd
