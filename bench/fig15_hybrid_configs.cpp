// Figure 15: memory per GPU and TFLOPs/sec/node for combinations of
// D-CHAG, TP, FSDP and DP — 7B model, real-hyperspectral-like 500-channel
// workload, fixed two-Frontier-node (16 GPU) budget. The headline: TP
// alone needs all 16 GPUs just to fit, while D-CHAG fits on a fraction of
// a node and converts the freed memory into batch (throughput).
#include "bench_util.hpp"
#include "core/planner.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using core::Plan;
using core::Planner;
using core::PlanRequest;
using model::AggLayerKind;

constexpr Index kChannels = 500;

Plan eval_config(const ModelConfig& cfg, ParallelLayout layout,
                 DchagSpec spec, const MachineSpec& machine) {
  Plan plan;
  plan.layout = layout;
  plan.dchag = spec;
  plan.batch_per_gpu =
      max_batch_per_gpu(cfg, kChannels, layout, spec, machine);
  if (plan.batch_per_gpu < 1) return plan;
  Workload w{plan.batch_per_gpu, kChannels, true};
  plan.memory = estimate_memory(cfg, w, layout, spec);
  plan.step = estimate_step(cfg, w, layout, spec, machine);
  return plan;
}

}  // namespace

int main() {
  bench::header("Figure 15",
                "Hybrid strategy comparison: 7B, 500 channels, 16 GPUs");
  const ModelConfig cfg = ModelConfig::preset("7B");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  struct Config {
    const char* name;
    ParallelLayout layout;
    DchagSpec spec;
  };
  const Config configs[] = {
      {"TP16", {16, 1, 1}, DchagSpec::off()},
      {"TP8+FSDP2", {8, 2, 1}, DchagSpec::off()},
      {"TP8+FSDP2+DP... (baseline best)", {8, 2, 1}, DchagSpec::off()},
      {"D-CHAG+TP4+DP4", {4, 1, 4}, DchagSpec::tree(1, AggLayerKind::kLinear)},
      {"D-CHAG+TP4+FSDP4",
       {4, 4, 1},
       DchagSpec::tree(1, AggLayerKind::kLinear)},
      {"D-CHAG+TP2+FSDP2+DP4",
       {2, 2, 4},
       DchagSpec::tree(1, AggLayerKind::kLinear)},
  };

  std::printf("%-32s %8s %10s %14s\n", "configuration", "batch", "mem(GB)",
              "TFLOPs/s/node");
  double best_baseline = 0;
  double best_dchag = 0;
  for (const Config& c : configs) {
    const Plan p = eval_config(cfg, c.layout, c.spec, frontier);
    if (p.batch_per_gpu < 1) {
      std::printf("%-32s %8s %10s %14s\n", c.name, "-", "OOM", "-");
      continue;
    }
    std::printf("%-32s %8lld %10.1f %14.1f\n", c.name,
                static_cast<long long>(p.batch_per_gpu),
                p.memory.total_gb(), p.step.sustained_tflops_per_node);
    auto& slot = c.spec.enabled ? best_dchag : best_baseline;
    slot = std::max(slot, p.step.sustained_tflops_per_node);
  }

  bench::section("planner sweep over every layout on 16 GPUs");
  PlanRequest req;
  req.cfg = cfg;
  req.channels = kChannels;
  req.gpus = 16;
  const Plan best = Planner::best(req);
  std::printf("planner best: %s\n", best.describe().c_str());

  // Paper claims.
  checks.expect(min_feasible_tp(cfg, {26, kChannels, true}, DchagSpec::off(),
                                frontier, 16) == 16,
                "TP alone needs two full nodes for 7B @ 500 channels");
  {
    const Plan two_gpu =
        eval_config(cfg, {2, 1, 1},
                    DchagSpec::tree(1, AggLayerKind::kLinear), frontier);
    checks.expect(two_gpu.batch_per_gpu >= 1,
                  "D-CHAG fits the 7B/500ch model on just two GPUs");
  }
  checks.expect(best_dchag > best_baseline,
                "memory freed by D-CHAG converts into higher TFLOPs/s/node "
                "via larger global batch");
  checks.expect(best.dchag.enabled,
                "the planner's best 16-GPU configuration uses D-CHAG");
  return checks.report();
}
