// Worker-kill integration: deterministic mid-request crashes (the seeded
// CrashSpec plan), bit-exact answers via redispatch to survivors, the
// pool healing back to target size, and graceful drain afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ingress/client.hpp"
#include "ingress/dispatcher.hpp"
#include "ingress_test_util.hpp"

namespace dchag::ingress {
namespace {

using testutil::TrainedModel;

TEST(CrashRecovery, MidRequestCrashesAreRedispatchedBitExactly) {
  TrainedModel trained;
  IngressConfig cfg = testutil::base_config(trained);
  cfg.min_workers = 2;
  cfg.max_workers = 2;
  cfg.ring.slots = 2;
  cfg.queue_capacity = 64;
  // Worker 0 dies serving its 2nd request, worker 1 dies serving its 3rd
  // — both mid-request (consumed, unanswered), the worst-case loss.
  cfg.crash_plan = {CrashSpec{0, 2}, CrashSpec{1, 3}};
  Ingress ingress(cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client(ingress.port());
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seed =
            500 + static_cast<std::uint64_t>(t * kPerThread + i);
        // Mix full-channel and subset requests across the crash window.
        const std::vector<Index> channels =
            i % 3 == 1 ? std::vector<Index>{0, 2} : std::vector<Index>{};
        const Index c = channels.empty()
                            ? testutil::kChannels
                            : static_cast<Index>(channels.size());
        const Tensor images = testutil::sample_image(seed, c);
        try {
          const Tensor pred = client.infer(images, channels);
          testutil::expect_bit_exact(
              pred, trained.reference(images, channels));
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0)
      << "every request must be answered despite both planned crashes";

  // The pool heals back to its target size.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ingress.worker_count() < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ingress.worker_count(), 2u);

  const Counters::Snapshot c = ingress.counters();
  EXPECT_EQ(c.worker_restarts, 2u);
  EXPECT_GE(c.redispatches, 2u)
      << "each planned crash loses its in-flight request to redispatch";
  EXPECT_EQ(c.accepted, c.completed);
  EXPECT_EQ(c.accepted,
            static_cast<std::uint64_t>(kThreads * kPerThread));

  const serve::Metrics::Snapshot m = ingress.metrics();
  EXPECT_EQ(m.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.recoveries, 2u);

  ingress.drain();
  EXPECT_EQ(ingress.counters().queue_depth, 0u);
}

TEST(CrashRecovery, CrashDuringDrainStillAnswersEverything) {
  TrainedModel trained;
  IngressConfig cfg = testutil::base_config(trained);
  cfg.min_workers = 1;
  cfg.max_workers = 1;
  cfg.ring.slots = 1;
  cfg.queue_capacity = 64;
  // The only worker dies mid-drain (on its 2nd request); the monitor must
  // respawn even while draining so admitted work still completes.
  cfg.crash_plan = {CrashSpec{0, 2}};
  Ingress ingress(cfg);

  constexpr int kClients = 8;
  std::atomic<int> ok{0}, rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const Tensor images =
          testutil::sample_image(700 + static_cast<std::uint64_t>(i));
      try {
        Client client(ingress.port());
        const Tensor pred = client.infer(images);
        testutil::expect_bit_exact(pred, trained.reference(images));
        ok.fetch_add(1);
      } catch (const IngressError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kShuttingDown);
        rejected.fetch_add(1);
      } catch (const std::exception&) {
        // The drain beat this client to the listener; nothing of its was
        // admitted, so nothing was dropped.
        rejected.fetch_add(1);
      }
    });
  }
  while (ingress.queue_depth() < 2) std::this_thread::yield();
  ingress.drain();
  for (std::thread& t : threads) t.join();

  const Counters::Snapshot c = ingress.counters();
  EXPECT_EQ(c.accepted, c.completed)
      << "a crash during drain must not lose admitted work";
  EXPECT_EQ(c.accepted, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  EXPECT_GE(c.worker_restarts, 1u);
}

}  // namespace
}  // namespace dchag::ingress
