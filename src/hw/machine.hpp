// Machine description for the analytic hardware model, calibrated to
// Frontier (paper §4.1): 4x MI250X per node, each exposing two GCDs, so 8
// logical GPUs per node with 64 GB HBM each; Infinity Fabric intra-node
// (50 GB/s per link) and Slingshot-11 inter-node (100 GB/s per node).
#pragma once

#include "tensor/check.hpp"

namespace dchag::hw {

struct GpuSpec {
  double mem_gb = 64.0;           ///< HBM capacity per GCD
  double peak_matrix_tflops = 191.5;  ///< MI250X bf16 matrix peak per GCD
  /// Fraction of HBM the allocator can actually use for the job (the rest
  /// is framework/RCCL buffers and fragmentation).
  double usable_frac = 0.92;
};

struct LinkSpec {
  double latency_s;
  double bandwidth_gbs;  ///< GB/s
};

/// Achievable compute efficiency (fraction of peak) per workload phase.
/// Tokenization is a batched skinny GEMM, attention is softmax-bound,
/// transformer blocks are large GEMMs.
struct EfficiencySpec {
  double tokenizer = 0.30;
  double attention = 0.25;
  double transformer = 0.45;
};

struct MachineSpec {
  GpuSpec gpu;
  int gpus_per_node = 8;
  LinkSpec intra_node{/*latency_s=*/3e-6, /*bandwidth_gbs=*/50.0};
  /// Slingshot NIC budget shared by the node's GCDs.
  LinkSpec inter_node_per_node{/*latency_s=*/8e-6, /*bandwidth_gbs=*/100.0};
  EfficiencySpec efficiency;

  [[nodiscard]] double usable_mem_gb() const {
    return gpu.mem_gb * gpu.usable_frac;
  }

  static MachineSpec frontier() { return MachineSpec{}; }
};

}  // namespace dchag::hw
