// SPMD D-CHAG serving workers over the in-process comm::World runtime,
// with elastic fault recovery.
//
// The engine owns one long-lived World whose rank threads each construct
// their own rank-local model (via the factory) once, then loop on a shared
// job slot: every rank reads the same full batch, slices its own channels
// (DchagFrontEnd does this internally, including the partial-channel
// subset path), runs the tape-free forward — whose final aggregation
// output is replicated across ranks — and the group leader publishes the
// result. Construction cost (tokenizer/tree weights per rank) is paid once
// at cold start, not per batch.
//
// Fault recovery (docs/ARCHITECTURE.md §10): when a FaultPlan structural
// event kills a rank mid-job, every survivor catches comm::RankFailure,
// regroups over the alive set (Communicator::split_survivors), rebinds its
// front-end onto the survivor group with the original channel slots
// preserved, and retries the interrupted job — answers keep flowing,
// served from the surviving channels (degraded but bit-exact for those
// channels). The survivor leader concurrently respawns each dead rank on a
// fresh thread: rebuild via the factory (same master seed), optionally
// reload the rank's checkpoint shard, then rejoin. The first job
// dispatched after heal-ready is stamped, and every participant switches
// to the full-width group at that same job, restoring full-channel
// serving bit-exact with a never-failed world.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "runtime/context.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"

namespace dchag::core {
class DchagFrontEnd;
}  // namespace dchag::core

namespace dchag::serve {

/// Structural knobs for the engine's internal World. Execution policy —
/// comm mode, kernel backend, and the fault plan installed on the World
/// — lives in the runtime::Context the engine is constructed with; rank
/// threads scope into that context, so the factory's front-ends inherit
/// it unless the factory pins its own.
struct SpmdEngineConfig {
  /// Optional sink for engine-level counters: recoveries (+ mean recovery
  /// time), hedged dispatches, degraded responses. Typically shared with
  /// the Server's request metrics.
  std::shared_ptr<Metrics> metrics;

  /// When non-empty, every rank saves its parameter shard here at cold
  /// start (`rank_<world_rank>.ckpt`) and a respawned rank reloads its
  /// shard after the factory rebuilds the architecture — the recovery
  /// path exercised by train/checkpoint round-tripping. When empty,
  /// respawn relies on the factory's master-seed determinism alone.
  std::string checkpoint_dir;

  /// When positive, a job that has produced no answer within this budget
  /// is hedged: the dispatch is counted in `metrics` and the world is
  /// re-signaled, then the caller rides out the original pass (in-process
  /// ranks serve passes strictly in order, so a re-issued pass could
  /// never overtake the stuck one). Surfaces straggler-delayed and
  /// recovery-stalled jobs in the counters. Zero disables hedging.
  std::chrono::milliseconds hedge_timeout{0};

#ifdef DCHAG_DEPRECATED_CONFIG
  /// Pre-Context fault slot; overlays the Context's fault_plan. The
  /// serving path must stay live and deadlock-free under a plan; tests
  /// assert tail-latency metrics still populate.
  /// Deprecated: use ContextBuilder::fault_plan on the engine Context.
  std::shared_ptr<const comm::FaultPlan> fault_plan;
#endif
};

class SpmdEngine {
 public:
  /// Builds this rank's model; called once per rank inside the world (and
  /// once more per respawn after a rank death). All ranks must construct
  /// replicated parameters from the same master seed (or load the same
  /// checkpoint shards) — the usual D-CHAG contract. Respawn additionally
  /// requires construction to be collective-free, which DchagFrontEnd
  /// guarantees.
  using RankModelFactory =
      std::function<std::unique_ptr<model::ForecastModel>(
          comm::Communicator&)>;

  /// Spawns `ranks` worker ranks and blocks until every rank's model is
  /// constructed (cold start). Throws if any rank fails to construct.
  ///
  /// `ctx` (default: the CONSTRUCTING thread's effective context) is the
  /// engine's execution context: its fault_plan installs on the World
  /// and every rank thread scopes into it, so caller-side overrides
  /// reach the rank-local forwards by construction.
  SpmdEngine(int ranks, RankModelFactory factory, SpmdEngineConfig cfg = {},
             const runtime::Context& ctx = runtime::Context::current());
  ~SpmdEngine();
  SpmdEngine(const SpmdEngine&) = delete;
  SpmdEngine& operator=(const SpmdEngine&) = delete;

  /// Runs one batched forward across all ranks. `images` is the FULL batch
  /// [B, C, H, W] for full-channel requests (each rank takes its slice) or
  /// the full subset batch [B, W, H, W] when `channels` names a subset.
  /// Serialized: concurrent callers queue on an internal mutex (the world
  /// is one SPMD pipeline). A forward that throws (e.g. an out-of-range
  /// channel id) rethrows here but leaves the world serving — model
  /// validation runs on identical inputs on every rank, so such failures
  /// are uniform and the ranks stay in step.
  ///
  /// Under a degraded world the answer is computed from the surviving
  /// channels (full-channel requests use all surviving channels; subset
  /// requests use the surviving intersection, throwing if it is empty).
  /// The output shape is unchanged — the head always predicts every
  /// target channel.
  [[nodiscard]] Tensor run(const Tensor& images,
                           const std::vector<Index>& channels,
                           float lead_time);

  [[nodiscard]] InferenceFn inference_fn();

  /// Blocks until no recovery is in flight (all respawns finished or
  /// none started) and rethrows a fatal respawn error if one occurred.
  /// The heal takes effect on the next run(): recovered answers are
  /// bit-exact with a never-failed world from that job on.
  void wait_recovered();

  [[nodiscard]] int ranks() const { return ranks_; }

 private:
  struct Job {
    const Tensor* images = nullptr;
    const std::vector<Index>* channels = nullptr;
    float lead_time = 1.0f;
    /// Fault epoch of the newest completed heal at dispatch time. Every
    /// participant adopts the full-width "healed@<epoch>" group at the
    /// first job whose stamp exceeds what it has adopted, and a respawned
    /// rank consumes only jobs stamped >= its own recovery epoch — one
    /// shared stamp keeps the collective schedule lockstep.
    std::uint64_t heal_epoch = 0;
  };

  /// The per-participant serving loop: original rank threads enter it
  /// after cold start with the World's handle; respawned rank threads
  /// enter it with a minted "healed@" handle and `min_stamp` set to their
  /// recovery epoch. Handles job pickup, heal adoption, degraded
  /// execution, and failure recovery uniformly.
  void serve_loop(comm::Communicator* active, model::ForecastModel* model,
                  std::uint64_t min_stamp);
  /// Regroups `*active` over the alive set after a RankFailure. Returns
  /// false if this participant is a casualty (caller exits its loop).
  /// The survivor leader also books the recovery and spawns respawn
  /// threads for the casualties.
  bool recover(comm::Communicator** active,
               std::optional<comm::Communicator>* owned,
               core::DchagFrontEnd* fe);
  /// Leader-side bookkeeping for one fault epoch: records who is still
  /// serving, starts the recovery clock, spawns one respawn thread per
  /// newly dead rank (handle minted here, on a stable communicator).
  void begin_recovery(comm::Communicator& group, std::uint64_t epoch,
                      const std::vector<int>& alive);
  /// Respawn thread body: rebuild the dead rank's model on the minted
  /// healed-group handle, reload its checkpoint shard if configured,
  /// signal heal-ready, then serve.
  void respawn_rank(comm::Communicator healed, std::uint64_t epoch);
  /// One job execution on the current group; throws comm::RankFailure
  /// upward for recovery, publishes result/error when this participant
  /// is the group leader.
  void execute_job(comm::Communicator& comm, model::ForecastModel& model,
                   const Job& job, std::uint64_t seq);

  void stop_and_join();

  int ranks_;
  runtime::Context ctx_;
  RankModelFactory factory_;  ///< kept: respawned ranks rebuild through it
  std::shared_ptr<Metrics> metrics_;
  std::string checkpoint_dir_;
  std::chrono::milliseconds hedge_timeout_{0};
  std::thread world_thread_;

  std::mutex run_mu_;  // serializes run() callers
  std::mutex mu_;      // guards everything below
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  Job job_;
  Tensor result_;
  std::exception_ptr job_error_;  ///< failure of the last job, if any
  std::uint64_t job_seq_ = 0;
  std::uint64_t done_seq_ = 0;
  int ready_ranks_ = 0;
  int failed_ranks_ = 0;  ///< ranks whose model factory threw at cold start
  bool stop_ = false;
  std::exception_ptr failure_;  ///< fatal: the world itself died

  // Recovery state (still under mu_).
  std::vector<int> serving_members_;     ///< world ranks currently serving
  int pending_respawns_ = 0;             ///< respawn threads still building
  std::uint64_t latest_recovery_epoch_ = 0;
  std::uint64_t heal_ready_epoch_ = 0;   ///< stamped onto new jobs
  std::exception_ptr heal_error_;        ///< a respawn that could not rebuild
  std::chrono::steady_clock::time_point recovery_start_{};
  std::vector<std::thread> respawn_threads_;
};

}  // namespace dchag::serve
