#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "comm/fault.hpp"

namespace dchag::comm {

namespace {

/// Contiguous chunk layout used by ring and scatter collectives: element
/// counts per part differ by at most one when n % parts != 0.
struct Chunk {
  std::int64_t offset;
  std::int64_t len;
};

std::vector<Chunk> make_chunks(std::int64_t n, int parts) {
  std::vector<Chunk> out(static_cast<std::size_t>(parts));
  const std::int64_t base = n / parts;
  const std::int64_t rem = n % parts;
  std::int64_t off = 0;
  for (int i = 0; i < parts; ++i) {
    const std::int64_t len = base + (i < rem ? 1 : 0);
    out[static_cast<std::size_t>(i)] = {off, len};
    off += len;
  }
  return out;
}

constexpr std::uint64_t bytes_of_count(std::size_t n) {
  return static_cast<std::uint64_t>(n) * sizeof(float);
}

void sleep_us(std::uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Poll period for waits that must notice a fault epoch advance. Epoch
/// bumps also notify the waiters' cv, so this is a backstop, not the
/// detection latency.
constexpr auto kFailurePoll = std::chrono::microseconds(200);

std::string rank_failure_message(const std::string& context,
                                 const std::vector<int>& failed,
                                 std::uint64_t seed, int event_index,
                                 const std::string& schedule) {
  std::ostringstream os;
  os << "RankFailure: " << context << " | failed world ranks {";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i > 0) os << ',';
    os << failed[i];
  }
  os << "} | repro: seed=" << seed << " event=" << event_index
     << " schedule=\"" << schedule << '"';
  return os.str();
}

}  // namespace

RankFailure::RankFailure(const std::string& context,
                         std::vector<int> failed_ranks, std::uint64_t seed,
                         int event_index, std::string schedule)
    : Error(rank_failure_message(context, failed_ranks, seed, event_index,
                                 schedule)),
      failed_ranks_(std::move(failed_ranks)),
      seed_(seed),
      event_index_(event_index),
      schedule_(std::move(schedule)) {}

namespace detail {

std::uint64_t FailureLedger::fail(int event_index,
                                  const std::vector<int>& ranks,
                                  std::uint64_t seed,
                                  const std::string& schedule) {
  std::scoped_lock lk(mu_);
  if (auto it = fired_.find(event_index); it != fired_.end())
    return it->second;
  for (int r : ranks) {
    auto pos = std::lower_bound(dead_.begin(), dead_.end(), r);
    if (pos == dead_.end() || *pos != r) dead_.insert(pos, r);
  }
  last_ = Repro{ranks, seed, event_index, schedule};
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed) + 1;
  fired_[event_index] = now;
  epoch_.store(now, std::memory_order_release);
  return now;
}

bool FailureLedger::is_dead(int world_rank) const {
  std::scoped_lock lk(mu_);
  return std::binary_search(dead_.begin(), dead_.end(), world_rank);
}

std::vector<int> FailureLedger::dead_ranks() const {
  std::scoped_lock lk(mu_);
  return dead_;
}

FailureLedger::Repro FailureLedger::last_failure() const {
  std::scoped_lock lk(mu_);
  return last_;
}

std::shared_ptr<GroupState> FailureLedger::recovery_group(
    const std::string& key,
    const std::function<std::shared_ptr<GroupState>()>& make) {
  std::scoped_lock lk(mu_);
  auto it = groups_.find(key);
  if (it == groups_.end()) it = groups_.emplace(key, make()).first;
  return it->second;
}

bool SeqBarrier::arrive_and_wait(std::uint64_t seen_epoch) {
  std::unique_lock lk(mu_);
  if (ledger_ && ledger_->epoch() > seen_epoch) return false;
  if (++arrived_ == expected_) {
    arrived_ = 0;
    ++phase_;
    cv_.notify_all();
    return true;
  }
  const std::uint64_t my_phase = phase_;
  while (phase_ == my_phase) {
    cv_.wait_for(lk, kFailurePoll);
    if (phase_ != my_phase) break;
    if (ledger_ && ledger_->epoch() > seen_epoch) {
      // Retract: a rank that throws must not count toward the trip, or a
      // later (recovered) phase would trip one arrival short.
      --arrived_;
      cv_.notify_all();
      return false;
    }
  }
  return true;
}

GroupState::GroupState(int size_in, Topology topo,
                       std::shared_ptr<const FaultPlan> plan,
                       std::shared_ptr<FailureLedger> ledger_in,
                       std::vector<int> world_ranks_in)
    : size(size_in),
      topology(std::move(topo)),
      fault_plan(std::move(plan)),
      ledger(ledger_in ? std::move(ledger_in)
                       : std::make_shared<FailureLedger>()),
      world_ranks(std::move(world_ranks_in)),
      send_slots(static_cast<std::size_t>(size_in), nullptr),
      recv_slots(static_cast<std::size_t>(size_in), nullptr),
      count_slots(static_cast<std::size_t>(size_in), 0),
      barrier(size_in, ledger.get()) {
  DCHAG_CHECK(size_in > 0, "communicator size must be positive");
  DCHAG_CHECK(topology.size() == size_in,
              "topology size " << topology.size() << " != group size "
                               << size_in);
  if (world_ranks.empty()) {
    world_ranks.resize(static_cast<std::size_t>(size_in));
    for (int r = 0; r < size_in; ++r)
      world_ranks[static_cast<std::size_t>(r)] = r;
  }
  DCHAG_CHECK(world_ranks.size() == static_cast<std::size_t>(size_in),
              "world_ranks size " << world_ranks.size() << " != group size "
                                  << size_in);
}

}  // namespace detail

void reduce_into(std::span<float> dst, std::span<const float> src,
                 ReduceOp op) {
  DCHAG_CHECK(dst.size() == src.size(), "reduce_into size mismatch");
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:  // averaging is a post-scale by the caller
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::min(dst[i], src[i]);
      break;
  }
}

Communicator::Communicator(std::shared_ptr<detail::GroupState> state,
                           int rank)
    : state_(std::move(state)),
      rank_(rank),
      seen_epoch_(state_->ledger->epoch()) {}

bool Communicator::poisoned() const {
  return state_->ledger->epoch() > seen_epoch_;
}

std::vector<int> Communicator::alive_world_ranks() const {
  const std::vector<int> dead = state_->ledger->dead_ranks();
  std::vector<int> alive;
  alive.reserve(state_->world_ranks.size());
  for (int wr : state_->world_ranks) {
    if (!std::binary_search(dead.begin(), dead.end(), wr))
      alive.push_back(wr);
  }
  std::sort(alive.begin(), alive.end());
  return alive;
}

std::uint64_t Communicator::fault_epoch() const {
  return state_->ledger->epoch();
}

void Communicator::check_failure() const {
  if (poisoned()) throw_failure("operation on a poisoned group");
}

void Communicator::throw_failure(const std::string& context) const {
  const detail::FailureLedger::Repro repro = state_->ledger->last_failure();
  throw RankFailure(context + " (world rank " + std::to_string(world_rank()) +
                        ")",
                    repro.failed, repro.seed, repro.event_index,
                    repro.schedule);
}

void Communicator::sync() {
  if (!state_->barrier.arrive_and_wait(seen_epoch_))
    throw_failure("peer rank failed mid-collective");
}

void Communicator::inject_entry_faults(CollectiveKind kind) {
  check_failure();
  const FaultPlan* plan = state_->fault_plan.get();
  if (!plan) return;
  const std::uint64_t seq = fault_seq_++;
  if (plan->has_events()) {
    // Rank death: fires on the dying rank's own handle. The ledger makes
    // firing idempotent and tells us whether the event postdates this
    // handle — a respawned rank's fresh handles sail past their own stale
    // death event.
    int ev = plan->death_event(world_rank(), seq);
    if (ev >= 0 &&
        state_->ledger->fail(ev, {world_rank()}, plan->spec().seed,
                             plan->describe()) > seen_epoch_) {
      throw_failure("rank death injected at op " + std::to_string(seq));
    }
    // Link partition: fires on any group spanning both islands during the
    // window. Every rank of the group throws (the group is severed);
    // the minority side is marked dead so the majority can regroup.
    std::vector<int> dead;
    ev = plan->partition_event(state_->world_ranks, seq, &dead);
    if (ev >= 0 &&
        state_->ledger->fail(ev, dead, plan->spec().seed,
                             plan->describe()) > seen_epoch_) {
      throw_failure("link partition injected at op " + std::to_string(seq));
    }
  }
  const FaultPlan::Injection inj = plan->draw(rank_, kind, seq);
  // Dropped contribution: each resend attempt costs one backoff window.
  sleep_us(static_cast<std::uint64_t>(inj.drops) * inj.retry_backoff_us);
  sleep_us(inj.pre_delay_us);
  pending_exit_jitter_us_ = inj.post_jitter_us;
}

void Communicator::inject_exit_faults(CollectiveKind) {
  if (!state_->fault_plan) return;
  sleep_us(pending_exit_jitter_us_);
  pending_exit_jitter_us_ = 0;
}

void Communicator::barrier() {
  stats_.record(CollectiveKind::kBarrier, 0);
  inject_entry_faults(CollectiveKind::kBarrier);
  sync();
  inject_exit_faults(CollectiveKind::kBarrier);
}

// ----- AllReduce -------------------------------------------------------------

void Communicator::all_reduce(std::span<float> data, ReduceOp op,
                              Algorithm alg) {
  stats_.record(CollectiveKind::kAllReduce, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kAllReduce);
  // Zero elements / one rank: nothing moves. Sizes must match across ranks
  // (usage contract), so every rank takes this exit symmetrically.
  if (size() == 1 || data.empty()) {
    inject_exit_faults(CollectiveKind::kAllReduce);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
      all_reduce_direct(data, op);
      break;
    case Algorithm::kRing:
      all_reduce_ring(data, op);
      break;
    case Algorithm::kHierarchical:
      all_reduce_hierarchical(data, op);
      break;
  }
  if (op == ReduceOp::kAvg) {
    const float inv = 1.0f / static_cast<float>(size());
    for (float& x : data) x *= inv;
  }
  inject_exit_faults(CollectiveKind::kAllReduce);
}

void Communicator::all_reduce_direct(std::span<float> data, ReduceOp op) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = data.data();
  st.count_slots[static_cast<std::size_t>(rank_)] =
      static_cast<std::int64_t>(data.size());
  sync();
  std::vector<float> temp(data.begin(), data.end());
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    DCHAG_CHECK(st.count_slots[static_cast<std::size_t>(r)] ==
                    static_cast<std::int64_t>(data.size()),
                "all_reduce size mismatch across ranks");
    reduce_into(temp,
                {st.send_slots[static_cast<std::size_t>(r)], data.size()},
                op);
  }
  sync();  // all reads done before anyone writes
  std::copy(temp.begin(), temp.end(), data.begin());
  sync();  // writes done before buffers are reused
}

void Communicator::all_reduce_ring(std::span<float> data, ReduceOp op) {
  auto& st = *state_;
  const int P = size();
  const auto chunks = make_chunks(static_cast<std::int64_t>(data.size()), P);
  st.recv_slots[static_cast<std::size_t>(rank_)] = data.data();
  sync();
  const int left = (rank_ - 1 + P) % P;
  float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  // Reduce-scatter phase: after step s, the chunk received at step s has
  // s+2 contributions; after P-1 steps rank r owns complete chunk (r+1)%P.
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    const auto& c = chunks[static_cast<std::size_t>(idx)];
    reduce_into({data.data() + c.offset, static_cast<std::size_t>(c.len)},
                {left_buf + c.offset, static_cast<std::size_t>(c.len)}, op);
    sync();
  }
  // All-gather phase: complete chunks travel around the ring.
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s) % P + P) % P;
    const auto& c = chunks[static_cast<std::size_t>(idx)];
    std::memcpy(data.data() + c.offset, left_buf + c.offset,
                static_cast<std::size_t>(c.len) * sizeof(float));
    sync();
  }
}

void Communicator::all_reduce_hierarchical(std::span<float> data,
                                           ReduceOp op) {
  auto& st = *state_;
  const Topology& topo = st.topology;
  const int my_node = topo.node_of(rank_);
  int leader = rank_;
  for (int r = 0; r < size(); ++r) {
    if (topo.node_of(r) == my_node) {
      leader = r;
      break;
    }
  }
  const bool is_leader = leader == rank_;

  st.recv_slots[static_cast<std::size_t>(rank_)] = data.data();
  sync();

  // Phase 1: each leader reduces its node's members.
  std::vector<float> temp;
  if (is_leader) {
    temp.assign(data.begin(), data.end());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_ || topo.node_of(r) != my_node) continue;
      reduce_into(temp,
                  {st.recv_slots[static_cast<std::size_t>(r)], data.size()},
                  op);
    }
    st.send_slots[static_cast<std::size_t>(rank_)] = temp.data();
  }
  sync();

  // Phase 2: leaders reduce across nodes into a private buffer.
  std::vector<float> final_buf;
  if (is_leader) {
    final_buf = temp;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      int r_leader = -1;
      for (int q = 0; q < size(); ++q) {
        if (topo.node_of(q) == topo.node_of(r)) {
          r_leader = q;
          break;
        }
      }
      if (r != r_leader || topo.node_of(r) == my_node) continue;
      reduce_into(final_buf,
                  {st.send_slots[static_cast<std::size_t>(r)], data.size()},
                  op);
    }
  }
  sync();

  // Phase 3: leaders publish; members copy from their leader.
  if (is_leader) std::copy(final_buf.begin(), final_buf.end(), data.begin());
  sync();
  if (!is_leader) {
    const float* src = st.recv_slots[static_cast<std::size_t>(leader)];
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
  sync();
}

// ----- AllGather -------------------------------------------------------------

void Communicator::all_gather(std::span<const float> send,
                              std::span<float> recv, Algorithm alg) {
  DCHAG_CHECK(recv.size() == send.size() * static_cast<std::size_t>(size()),
              "all_gather: recv size " << recv.size() << " != send "
                                       << send.size() << " * " << size());
  stats_.record(CollectiveKind::kAllGather, bytes_of_count(recv.size()));
  inject_entry_faults(CollectiveKind::kAllGather);
  if (size() == 1 || send.empty()) {
    std::copy(send.begin(), send.end(), recv.begin());
    inject_exit_faults(CollectiveKind::kAllGather);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
    case Algorithm::kHierarchical:  // in-process: same data path as direct
      all_gather_direct(send, recv);
      break;
    case Algorithm::kRing:
      all_gather_ring(send, recv);
      break;
  }
  inject_exit_faults(CollectiveKind::kAllGather);
}

void Communicator::all_gather_direct(std::span<const float> send,
                                     std::span<float> recv) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = send.data();
  st.count_slots[static_cast<std::size_t>(rank_)] =
      static_cast<std::int64_t>(send.size());
  sync();
  const std::size_t n = send.size();
  for (int r = 0; r < size(); ++r) {
    DCHAG_CHECK(st.count_slots[static_cast<std::size_t>(r)] ==
                    static_cast<std::int64_t>(n),
                "all_gather size mismatch across ranks");
    std::memcpy(recv.data() + static_cast<std::size_t>(r) * n,
                st.send_slots[static_cast<std::size_t>(r)],
                n * sizeof(float));
  }
  sync();  // senders keep buffers alive until here
}

void Communicator::all_gather_ring(std::span<const float> send,
                                   std::span<float> recv) {
  auto& st = *state_;
  const int P = size();
  const std::size_t n = send.size();
  std::memcpy(recv.data() + static_cast<std::size_t>(rank_) * n, send.data(),
              n * sizeof(float));
  st.recv_slots[static_cast<std::size_t>(rank_)] = recv.data();
  sync();
  const int left = (rank_ - 1 + P) % P;
  const float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    std::memcpy(recv.data() + static_cast<std::size_t>(idx) * n,
                left_buf + static_cast<std::size_t>(idx) * n,
                n * sizeof(float));
    sync();
  }
}

// ----- ReduceScatter ---------------------------------------------------------

void Communicator::reduce_scatter(std::span<const float> send,
                                  std::span<float> recv, ReduceOp op,
                                  Algorithm alg) {
  DCHAG_CHECK(send.size() == recv.size() * static_cast<std::size_t>(size()),
              "reduce_scatter: send size " << send.size() << " != recv "
                                           << recv.size() << " * " << size());
  stats_.record(CollectiveKind::kReduceScatter, bytes_of_count(send.size()));
  inject_entry_faults(CollectiveKind::kReduceScatter);
  if (size() == 1 || recv.empty()) {
    std::copy(send.begin(), send.end(), recv.begin());
    inject_exit_faults(CollectiveKind::kReduceScatter);
    return;
  }
  switch (alg) {
    case Algorithm::kAuto:
    case Algorithm::kDirect:
    case Algorithm::kHierarchical:
      reduce_scatter_direct(send, recv, op);
      break;
    case Algorithm::kRing:
      reduce_scatter_ring(send, recv, op);
      break;
  }
  if (op == ReduceOp::kAvg) {
    const float inv = 1.0f / static_cast<float>(size());
    for (float& x : recv) x *= inv;
  }
  inject_exit_faults(CollectiveKind::kReduceScatter);
}

void Communicator::reduce_scatter_direct(std::span<const float> send,
                                         std::span<float> recv,
                                         ReduceOp op) {
  auto& st = *state_;
  st.send_slots[static_cast<std::size_t>(rank_)] = send.data();
  sync();
  const std::size_t n = recv.size();
  const std::size_t my_off = static_cast<std::size_t>(rank_) * n;
  std::memcpy(recv.data(), send.data() + my_off, n * sizeof(float));
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    reduce_into(recv,
                {st.send_slots[static_cast<std::size_t>(r)] + my_off, n},
                op == ReduceOp::kAvg ? ReduceOp::kSum : op);
  }
  sync();
}

void Communicator::reduce_scatter_ring(std::span<const float> send,
                                       std::span<float> recv, ReduceOp op) {
  auto& st = *state_;
  const int P = size();
  // Workspace copy of send (ring mutates partial sums in place).
  std::vector<float> work(send.begin(), send.end());
  st.recv_slots[static_cast<std::size_t>(rank_)] = work.data();
  sync();
  const int left = (rank_ - 1 + P) % P;
  float* left_buf = st.recv_slots[static_cast<std::size_t>(left)];
  const std::size_t n = recv.size();
  const ReduceOp eff = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  for (int s = 0; s < P - 1; ++s) {
    const int idx = ((rank_ - s - 1) % P + P) % P;
    const std::size_t off = static_cast<std::size_t>(idx) * n;
    reduce_into({work.data() + off, n}, {left_buf + off, n}, eff);
    sync();
  }
  // Rank r now owns complete chunk (r+1)%P; chunk r lives on the left
  // neighbour — one final shift delivers reduce_scatter semantics.
  const std::size_t final_off = static_cast<std::size_t>(rank_) * n;
  std::memcpy(recv.data(), left_buf + final_off, n * sizeof(float));
  sync();  // keep workspaces alive until all copied
}

// ----- Broadcast / point-to-point -------------------------------------------

void Communicator::broadcast(std::span<float> data, int root) {
  DCHAG_CHECK(root >= 0 && root < size(), "broadcast root " << root);
  stats_.record(CollectiveKind::kBroadcast, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kBroadcast);
  if (size() == 1 || data.empty()) {
    inject_exit_faults(CollectiveKind::kBroadcast);
    return;
  }
  auto& st = *state_;
  if (rank_ == root)
    st.send_slots[static_cast<std::size_t>(rank_)] = data.data();
  sync();
  if (rank_ != root) {
    std::memcpy(data.data(), st.send_slots[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  sync();
  inject_exit_faults(CollectiveKind::kBroadcast);
}

void Communicator::send(std::span<const float> data, int dst, int tag) {
  DCHAG_CHECK(dst != rank_, "send to self");
  stats_.record(CollectiveKind::kSendRecv, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kSendRecv);
  auto& st = *state_;
  const auto key = std::make_tuple(rank_, dst, tag);
  std::unique_lock lk(st.mail_mu);
  bool published = false;
  // Rendezvous waits poll the ledger: a dead receiver must fail the send,
  // not hang it. If we already published the parcel, retract it so a
  // later retry of the same (src,dst,tag) doesn't see stale bytes.
  const auto wait_or_fail = [&](const std::function<bool()>& pred) {
    while (!pred()) {
      st.mail_cv.wait_for(lk, kFailurePoll);
      if (pred()) break;
      if (poisoned()) {
        if (published) st.mailbox.erase(key);
        st.mail_cv.notify_all();
        lk.unlock();
        throw_failure("peer rank failed during send");
      }
    }
  };
  wait_or_fail([&] { return !st.mailbox.contains(key); });
  st.mailbox[key] = {data.data(), static_cast<std::int64_t>(data.size()),
                     false};
  published = true;
  st.mail_cv.notify_all();
  wait_or_fail([&] {
    auto it = st.mailbox.find(key);
    return it != st.mailbox.end() && it->second.consumed;
  });
  st.mailbox.erase(key);
  st.mail_cv.notify_all();
  lk.unlock();  // jitter sleeps must never hold the shared mailbox lock
  inject_exit_faults(CollectiveKind::kSendRecv);
}

void Communicator::recv(std::span<float> data, int src, int tag) {
  DCHAG_CHECK(src != rank_, "recv from self");
  stats_.record(CollectiveKind::kSendRecv, bytes_of_count(data.size()));
  inject_entry_faults(CollectiveKind::kSendRecv);
  auto& st = *state_;
  const auto key = std::make_tuple(src, rank_, tag);
  std::unique_lock lk(st.mail_mu);
  const auto arrived = [&] {
    auto it = st.mailbox.find(key);
    return it != st.mailbox.end() && !it->second.consumed;
  };
  while (!arrived()) {
    st.mail_cv.wait_for(lk, kFailurePoll);
    if (arrived()) break;
    if (poisoned()) {
      lk.unlock();
      throw_failure("peer rank failed during recv");
    }
  }
  auto& parcel = st.mailbox.at(key);
  DCHAG_CHECK(parcel.count == static_cast<std::int64_t>(data.size()),
              "recv size " << data.size() << " != sent " << parcel.count);
  if (!data.empty())
    std::memcpy(data.data(), parcel.data, data.size() * sizeof(float));
  parcel.consumed = true;
  st.mail_cv.notify_all();
  lk.unlock();
  inject_exit_faults(CollectiveKind::kSendRecv);
}

// ----- split -----------------------------------------------------------------

Communicator Communicator::split(int color, int key) {
  check_failure();
  auto& st = *state_;
  {
    std::scoped_lock lk(st.split_mu);
    if (st.split_colors.empty()) {
      st.split_colors.assign(static_cast<std::size_t>(size()), 0);
      st.split_keys.assign(static_cast<std::size_t>(size()), 0);
    }
    st.split_colors[static_cast<std::size_t>(rank_)] = color;
    st.split_keys[static_cast<std::size_t>(rank_)] =
        key >= 0 ? key : rank_;
  }
  sync();

  // Determine this color's membership, ordered by (key, parent rank).
  std::vector<int> members;
  for (int r = 0; r < size(); ++r) {
    if (st.split_colors[static_cast<std::size_t>(r)] == color)
      members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return st.split_keys[static_cast<std::size_t>(a)] <
           st.split_keys[static_cast<std::size_t>(b)];
  });
  const bool is_creator = members.front() == rank_;
  if (is_creator) {
    // Children inherit the parent's fault plan and the world's failure
    // ledger: flaky links stay flaky for every subgroup carved out of the
    // world, and a fault event anywhere poisons the whole family. World
    // ranks compose so nested groups still match structural events.
    std::vector<int> child_world;
    child_world.reserve(members.size());
    for (int m : members)
      child_world.push_back(st.world_ranks[static_cast<std::size_t>(m)]);
    auto child = std::make_shared<detail::GroupState>(
        static_cast<int>(members.size()), st.topology.subgroup(members),
        st.fault_plan, st.ledger, std::move(child_world));
    std::scoped_lock lk(st.split_mu);
    st.split_groups[color] = std::move(child);
    st.split_members[color] = members;
  }
  sync();

  std::shared_ptr<detail::GroupState> child;
  {
    std::scoped_lock lk(st.split_mu);
    child = st.split_groups.at(color);
  }
  int child_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank_) child_rank = static_cast<int>(i);
  }
  DCHAG_CHECK(child_rank >= 0, "split: rank not in own color group");
  sync();

  // Reset rendezvous state for the next split call.
  if (rank_ == 0) {
    std::scoped_lock lk(st.split_mu);
    st.split_groups.clear();
    st.split_members.clear();
    st.split_colors.clear();
    st.split_keys.clear();
  }
  sync();
  return Communicator(std::move(child), child_rank);
}

Communicator Communicator::split_survivors(
    const std::vector<int>& world_members, const std::string& tag) {
  return split_survivors_for(world_rank(), world_members, tag);
}

Communicator Communicator::split_survivors_for(
    int world_rank_in, const std::vector<int>& world_members,
    const std::string& tag) {
  DCHAG_CHECK(!world_members.empty(), "split_survivors: empty membership");
  DCHAG_CHECK(std::is_sorted(world_members.begin(), world_members.end()) &&
                  std::adjacent_find(world_members.begin(),
                                     world_members.end()) ==
                      world_members.end(),
              "split_survivors: membership must be sorted and unique");
  const auto it = std::lower_bound(world_members.begin(), world_members.end(),
                                   world_rank_in);
  DCHAG_CHECK(it != world_members.end() && *it == world_rank_in,
              "split_survivors: world rank " << world_rank_in
                                             << " not in membership");
  auto& st = *state_;
  // Rendezvous through the ledger (lock, no barriers): works even when
  // this handle is poisoned, which is exactly when it's needed. The new
  // group gets a flat topology — survivor sets need not respect the
  // original node packing.
  auto group = st.ledger->recovery_group(tag, [&] {
    return std::make_shared<detail::GroupState>(
        static_cast<int>(world_members.size()),
        Topology::flat(static_cast<int>(world_members.size())), st.fault_plan,
        st.ledger, world_members);
  });
  DCHAG_CHECK(group->world_ranks == world_members,
              "split_survivors: tag \"" << tag
                                        << "\" already bound to a different "
                                           "membership");
  return Communicator(std::move(group),
                      static_cast<int>(it - world_members.begin()));
}

// ----- World -----------------------------------------------------------------

World::World(int size, Topology topo) : size_(size), topo_(std::move(topo)) {
  DCHAG_CHECK(size_ > 0, "world size must be positive");
  DCHAG_CHECK(topo_.size() == size_, "topology/world size mismatch");
}

void World::run(const std::function<void(Communicator&)>& fn) {
  auto state = std::make_shared<detail::GroupState>(size_, topo_, fault_plan_);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    // Every rank body runs inside a catch-all: a throwing closure must
    // surface as a failed run() on the spawning thread (with the rank
    // identified), never escape a std::thread and std::terminate the
    // process.
    threads.emplace_back([&, r]() noexcept {
      try {
        Communicator comm(state, r);
        fn(comm);
      } catch (const RankFailure&) {
        // Keep the type (and its seed/event repro payload) intact; the
        // message already names the world rank.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = std::make_exception_ptr(
            Error("rank " + std::to_string(r) + ": " + ex.what()));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::make_exception_ptr(
            Error("rank " + std::to_string(r) +
                  " threw a non-standard exception"));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace dchag::comm
