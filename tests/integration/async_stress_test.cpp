// Seeded-schedule stress: the async pipelined D-CHAG forward must be
// BIT-identical to the sync oracle under adversarial comm timing. 64
// random FaultyWorld schedules spread across 2/4/8-rank groups; any
// nonzero diff means overlap reordered arithmetic or raced a buffer.
#include <gtest/gtest.h>

#include "comm/fault.hpp"
#include "core/dchag_frontend.hpp"
#include "testing/schedules.hpp"

namespace dchag::core {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using comm::CommConfig;
using comm::CommMode;
using comm::FaultSpec;
using comm::FaultyWorld;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

// Shared with the chaos suite: a pure function of the seed (see
// tests/testing/schedules.hpp), so "schedule N" in a failure message
// reproduces the exact timing run.
FaultSpec schedule(std::uint64_t seed) {
  return dchag::testing::timing_schedule(seed);
}

TEST(AsyncStress, SixtyFourSchedulesBitIdenticalSyncVsAsync) {
  constexpr int kSchedules = 64;
  const int sizes[] = {2, 4, 8};
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 8;
  const tensor::Index B = 4;

  for (int sched = 0; sched < kSchedules; ++sched) {
    const int P = sizes[sched % 3];
    Tensor img = Rng(1000 + static_cast<std::uint64_t>(sched))
                     .normal_tensor(Shape{B, C, 16, 16});
    FaultyWorld world(P, schedule(static_cast<std::uint64_t>(sched)));
    world.run([&](parallel::Communicator& comm) {
      autograd::NoGradGuard no_grad;
      Rng master(4242);
      // One model, one weight set; only the comm schedule differs between
      // the two forwards (runtime::Scope flips the mode thread-locally). Same
      // pipeline depth on both sides so the chunked arithmetic matches.
      DchagFrontEnd fe(cfg, C, comm,
                       {1, model::AggLayerKind::kLinear}, master);
      Tensor local = fe.slice_local_channels(img);
      Tensor sync_out, async_out;
      {
        runtime::Scope scope(runtime::ContextPatch::with_comm(
            CommConfig{CommMode::kSync, /*pipeline_chunks=*/4}));
        sync_out = fe.forward(local).value();
      }
      {
        runtime::Scope scope(runtime::ContextPatch::with_comm(
            CommConfig{CommMode::kAsync, /*pipeline_chunks=*/4}));
        async_out = fe.forward(local).value();
      }
      ASSERT_EQ(ops::max_abs_diff(sync_out, async_out), 0.0f)
          << "schedule " << sched << " P=" << P << " rank " << comm.rank();
      // And the pipelined result must equal the monolithic single-gather
      // oracle too (same values, chunked along the batch only).
      Tensor mono;
      {
        runtime::Scope scope(runtime::ContextPatch::with_comm(
            CommConfig{CommMode::kSync, /*pipeline_chunks=*/1}));
        mono = fe.forward(local).value();
      }
      ASSERT_LT(ops::max_abs_diff(mono, async_out), 1e-5f)
          << "schedule " << sched << " P=" << P;
    });
    ASSERT_GT(world.plan().injections(), 0u) << "schedule " << sched;
  }
}

}  // namespace
}  // namespace dchag::core
