// Ablation: the channel-token-query (quadratic in C) aggregation the
// paper analyses vs the single-learned-query (linear in C, ClimaX-style)
// variant, plus the cost of tree depth — the design-choice study behind
// DESIGN.md's cross-attention memory convention.
#include "bench_util.hpp"
#include "hw/perf_model.hpp"
#include "model/perceiver.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
using model::AggLayerKind;
}  // namespace

int main() {
  bench::header("Ablation", "Aggregation query mode and tree depth");
  bench::ShapeChecks checks;

  bench::section("aggregation activation memory vs channels (1.7B, batch 21)");
  ModelConfig quad = ModelConfig::preset("1.7B");
  ModelConfig lin = quad;
  lin.query_mode = model::QueryMode::kLearnedQuery;
  std::printf("%8s %18s %18s %8s\n", "channels", "channel-query(GB)",
              "learned-query(GB)", "ratio");
  double prev_ratio = 0;
  for (Index c : {64, 128, 256, 512, 1024}) {
    Workload w{21, c, true};
    const auto mq = estimate_memory(quad, w, {1, 1, 1}, DchagSpec::off());
    const auto ml = estimate_memory(lin, w, {1, 1, 1}, DchagSpec::off());
    const double ratio = mq.aggregation_act_gb / ml.aggregation_act_gb;
    std::printf("%8lld %18.2f %18.2f %8.1f\n", static_cast<long long>(c),
                mq.aggregation_act_gb, ml.aggregation_act_gb, ratio);
    checks.expect(ratio > prev_ratio,
                  "quadratic/linear memory ratio grows with C (C=" +
                      std::to_string(c) + ")");
    prev_ratio = ratio;
  }

  bench::section("tree parameter overhead vs depth (paper §3.2 tradeoff)");
  std::printf("%8s %16s %16s %16s\n", "units", "params -C", "params -L",
              "peak width");
  const ModelConfig cfg = ModelConfig::preset("1.7B");
  Index prev_params = 0;
  bool params_grow = true;
  for (Index units : {1, 2, 4, 8, 16}) {
    const Index width = model::tree_units_to_width(512, units);
    const auto plan = model::plan_tree(512, width);
    const Index pc =
        model::tree_params(cfg, AggLayerKind::kCrossAttention, plan);
    const Index pl = model::tree_params(cfg, AggLayerKind::kLinear, plan);
    std::printf("%8lld %16lld %16lld %16lld\n",
                static_cast<long long>(units), static_cast<long long>(pc),
                static_cast<long long>(pl),
                static_cast<long long>(plan.max_width()));
    params_grow = params_grow && pc >= prev_params;
    prev_params = pc;
    checks.expect(pl < pc, "linear tree cheaper than cross-attention tree "
                           "(units=" +
                               std::to_string(units) + ")");
  }
  checks.expect(params_grow,
                "deeper hierarchies add parameters (paper §3.2 tradeoff)");

  bench::section("quadratic -> linear complexity via hierarchy (paper §3.2)");
  // Score FLOPs of a single full-width unit vs a fixed-width-64 tree.
  std::printf("%8s %18s %18s\n", "channels", "single-layer TF",
              "tree(width 64) TF");
  double prev_single = 0;
  double prev_tree = 0;
  for (Index c : {128, 256, 512, 1024}) {
    const auto single = FlopModel::aggregation_flops(
        cfg, 1.0, c, AggLayerKind::kCrossAttention);
    const auto tree = FlopModel::tree_flops(
        cfg, 1.0, model::plan_tree(c, 64), AggLayerKind::kCrossAttention);
    std::printf("%8lld %18.3f %18.3f\n", static_cast<long long>(c),
                single.scores / 1e12, tree.scores / 1e12);
    if (prev_single > 0) {
      checks.expect(single.scores / prev_single > 3.5,
                    "single layer scores quadruple when C doubles (C=" +
                        std::to_string(c) + ")");
      checks.expect(tree.scores / prev_tree < 2.5,
                    "fixed-width tree scores roughly double when C doubles "
                    "(C=" +
                        std::to_string(c) + ")");
    }
    prev_single = single.scores;
    prev_tree = tree.scores;
  }

  bench::section("Perceiver fusion (paper §3.5 / Aurora) parameter cost");
  // Paper §3.5: "The Perceiver, being a more computationally intensive
  // cross-attention-based module, is likely to show even greater
  // performance benefits from D-CHAG". Its parameter count is channel-
  // independent (latent bottleneck) but each iteration adds a full block.
  std::printf("%10s %10s %16s %20s\n", "latents", "iters",
              "perceiver params", "single xattn params");
  const Index single_params =
      cfg.aggregator_params(AggLayerKind::kCrossAttention, 512);
  for (Index iters : {1, 2, 4}) {
    const Index p = model::perceiver_params(cfg.embed_dim, 64, iters);
    std::printf("%10d %10lld %16lld %20lld\n", 64,
                static_cast<long long>(iters), static_cast<long long>(p),
                static_cast<long long>(single_params));
  }
  checks.expect(model::perceiver_params(cfg.embed_dim, 64, 2) >
                    single_params,
                "Perceiver fusion is heavier than a single cross-attention "
                "layer (so D-CHAG's localisation buys more)");
  checks.expect(model::perceiver_params(cfg.embed_dim, 64, 2) ==
                    model::perceiver_params(cfg.embed_dim, 64, 2),
                "Perceiver parameter count is channel-independent "
                "(latent bottleneck)");
  return checks.report();
}
