// Autograd coverage for the async overlap path: finite-difference
// gradcheck through the split-phase gather op and through the pipelined
// D-CHAG forward, plus multi-rank train-mode grad parity (tape intact)
// between the sync oracle and the async pipeline.
#include <gtest/gtest.h>

#include "comm/fault.hpp"
#include "core/dchag_frontend.hpp"
#include "testing/gradcheck.hpp"

namespace dchag::core {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using comm::CommConfig;
using comm::CommMode;
using comm::World;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(AsyncGradcheck, SplitPhaseGatherBackwardIsExact) {
  // Each rank's loss reads only ITS slot of the gathered tensor, so the
  // finite-difference perturbations the other ranks make concurrently
  // cannot leak into this rank's loss — the kLocalSlice backward is then
  // checkable element-for-element.
  World world(2);
  world.run([](parallel::Communicator& comm) {
    comm::AsyncCommunicator async(comm);
    Rng rng(10 + static_cast<std::uint64_t>(comm.rank()));
    Variable x = Variable::param(rng.normal_tensor(Shape{1, 2, 1, 4}));
    const int rank = comm.rank();
    auto fn = [&async, &x, rank](const std::vector<Variable>&) {
      parallel::PendingGatherCat pending =
          parallel::all_gather_cat_start(x, async, /*dim=*/2);
      Variable g = pending.wait();  // [1, 2, P, 4]
      Variable mine = autograd::slice(g, 2, rank, 1);
      return autograd::mean_all(autograd::mul(mine, mine));
    };
    const float err = testing::gradcheck(fn, {x});
    EXPECT_LT(err, 3e-2f) << "rank " << rank;
  });
}

TEST(AsyncGradcheck, PipelinedForwardParamsGradcheckSingleRank) {
  // P=1 removes cross-rank coupling entirely, so the WHOLE pipelined
  // async forward (chunked tokenize/tree, split-phase gather, per-chunk
  // final aggregation, concat) is finite-difference checkable against its
  // tape. The leaf is the tree's channel-combine vector: 4 elements keeps
  // the 2-evals-per-element cost trivial.
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 4;
  Tensor img = Rng(7).normal_tensor(Shape{2, C, 16, 16});
  World world(1);
  world.run([&](parallel::Communicator& comm) {
    Rng master(99);
    DchagOptions opts{1, model::AggLayerKind::kLinear};
    // Derive from the ambient context so only the comm field is pinned.
    DchagFrontEnd fe(cfg, C, comm, opts, master,
                     runtime::Context::current()
                         .to_builder()
                         .comm(CommConfig{CommMode::kAsync,
                                          /*pipeline_chunks=*/2})
                         .build());
    Variable combine;
    for (const Variable& p : fe.partial_tree().parameters()) {
      if (p.name().find(".combine") != std::string::npos) combine = p;
    }
    ASSERT_TRUE(combine.defined());
    ASSERT_EQ(combine.shape().numel(), C);
    auto fn = [&fe, &img](const std::vector<Variable>&) {
      Variable out = fe.forward(img);
      return autograd::mean_all(autograd::mul(out, out));
    };
    const float err = testing::gradcheck(fn, {combine});
    EXPECT_LT(err, 3e-2f);
  });
}

TEST(AsyncGradcheck, TrainModeGradParitySyncVsAsyncUnderFaults) {
  // Multi-rank train mode: backward through the async pipeline must
  // produce bit-identical parameter gradients to the sync oracle, tape
  // fully intact, even on an adversarial comm schedule.
  ModelConfig cfg = ModelConfig::tiny();
  const tensor::Index C = 8;
  Tensor img = Rng(21).normal_tensor(Shape{4, C, 16, 16});
  comm::FaultSpec spec;
  spec.seed = 77;
  spec.max_edge_delay_us = 80;
  spec.drop_prob = 0.25;
  spec.max_completion_jitter_us = 60;
  comm::FaultyWorld world(4, spec);
  world.run([&](parallel::Communicator& comm) {
    Rng master(1717);
    DchagFrontEnd fe(cfg, C, comm,
                     {1, model::AggLayerKind::kLinear}, master);
    Tensor local = fe.slice_local_channels(img);
    auto params = fe.parameters();

    auto run_backward = [&](CommMode mode) {
      runtime::Scope scope(runtime::ContextPatch::with_comm(
          CommConfig{mode, /*pipeline_chunks=*/4}));
      for (Variable& p : params) p.zero_grad();
      const std::uint64_t tape_before = autograd::tape_nodes_created();
      Variable out = fe.forward(local);
      EXPECT_GT(autograd::tape_nodes_created(), tape_before)
          << "train-mode forward must record the tape";
      autograd::mean_all(autograd::mul(out, out)).backward();
      std::vector<Tensor> grads;
      grads.reserve(params.size());
      for (const Variable& p : params) {
        EXPECT_TRUE(p.has_grad()) << p.name() << " under " << to_string(mode);
        grads.push_back(p.grad().clone());
      }
      return grads;
    };

    const std::vector<Tensor> sync_grads = run_backward(CommMode::kSync);
    const std::vector<Tensor> async_grads = run_backward(CommMode::kAsync);
    for (std::size_t i = 0; i < params.size(); ++i) {
      ASSERT_EQ(ops::max_abs_diff(sync_grads[i], async_grads[i]), 0.0f)
          << params[i].name() << " rank " << comm.rank();
    }
  });
}

}  // namespace
}  // namespace dchag::core
