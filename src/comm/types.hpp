// Shared vocabulary types for the SPMD communication runtime.
//
// Reduction ops, collective algorithm selectors (ring vs recursive
// doubling), and the per-communicator call statistics the tests use to
// assert how much communication a strategy actually performed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/check.hpp"

namespace dchag::comm {

enum class ReduceOp { kSum, kAvg, kMax, kMin };

/// Collective algorithm selection. kDirect reads peer buffers through
/// shared memory (lowest constant factor in-process); kRing is the
/// bandwidth-optimal P-1-step algorithm NCCL/RCCL use on real fabrics;
/// kHierarchical is the two-level intra-node-then-inter-node scheme the
/// paper's hybrid layout exploits. All produce identical results.
enum class Algorithm { kAuto, kDirect, kRing, kHierarchical };

enum class CollectiveKind : std::size_t {
  kAllReduce = 0,
  kAllGather = 1,
  kReduceScatter = 2,
  kBroadcast = 3,
  kSendRecv = 4,
  kBarrier = 5,
};
inline constexpr std::size_t kNumCollectiveKinds = 6;

[[nodiscard]] inline const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kAllReduce: return "AllReduce";
    case CollectiveKind::kAllGather: return "AllGather";
    case CollectiveKind::kReduceScatter: return "ReduceScatter";
    case CollectiveKind::kBroadcast: return "Broadcast";
    case CollectiveKind::kSendRecv: return "SendRecv";
    case CollectiveKind::kBarrier: return "Barrier";
  }
  return "?";
}

/// Per-communicator-handle ledger of collective traffic. Tests use it to
/// assert the paper's "no communication in the backward pass" property;
/// benches use it to report communication volume per step.
struct CommStats {
  std::array<std::uint64_t, kNumCollectiveKinds> calls{};
  std::array<std::uint64_t, kNumCollectiveKinds> payload_bytes{};

  void record(CollectiveKind k, std::uint64_t bytes) {
    calls[static_cast<std::size_t>(k)] += 1;
    payload_bytes[static_cast<std::size_t>(k)] += bytes;
  }
  [[nodiscard]] std::uint64_t total_calls() const {
    std::uint64_t n = 0;
    for (auto c : calls) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t total_payload_bytes() const {
    std::uint64_t n = 0;
    for (auto b : payload_bytes) n += b;
    return n;
  }
  [[nodiscard]] std::uint64_t calls_of(CollectiveKind k) const {
    return calls[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t bytes_of(CollectiveKind k) const {
    return payload_bytes[static_cast<std::size_t>(k)];
  }
};

/// Physical placement of ranks onto nodes. Frontier exposes 8 logical GPUs
/// (GCDs) per node; hierarchical collectives and the cost model both key
/// off this mapping.
class Topology {
 public:
  /// All ranks on one node (pure shared-memory view).
  static Topology flat(int size) {
    return Topology(std::vector<int>(static_cast<std::size_t>(size), 0));
  }
  /// Ranks packed onto nodes of `gpus_per_node` in rank order.
  static Topology packed(int size, int gpus_per_node) {
    DCHAG_CHECK(gpus_per_node > 0, "gpus_per_node must be positive");
    std::vector<int> ids(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) ids[static_cast<std::size_t>(r)] = r / gpus_per_node;
    return Topology(std::move(ids));
  }
  explicit Topology(std::vector<int> node_ids)
      : node_ids_(std::move(node_ids)) {}

  [[nodiscard]] int size() const {
    return static_cast<int>(node_ids_.size());
  }
  [[nodiscard]] int node_of(int rank) const {
    return node_ids_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] int num_nodes() const {
    int mx = -1;
    for (int id : node_ids_) mx = std::max(mx, id);
    return mx + 1;
  }
  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }
  [[nodiscard]] const std::vector<int>& node_ids() const { return node_ids_; }

  /// Topology of a subgroup given its member parent-ranks.
  [[nodiscard]] Topology subgroup(const std::vector<int>& parent_ranks) const {
    std::vector<int> ids;
    ids.reserve(parent_ranks.size());
    for (int r : parent_ranks) ids.push_back(node_of(r));
    return Topology(std::move(ids));
  }

 private:
  std::vector<int> node_ids_;
};

}  // namespace dchag::comm
