// Dense row-major shape descriptor.
//
// Shape is an ordered list of non-negative extents with numpy-style
// negative indexing, row-major stride computation, and with_dim /
// without_dim helpers used throughout the reshape-heavy model code.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "tensor/check.hpp"

namespace dchag::tensor {

using Index = std::int64_t;

/// Shape of a dense row-major tensor. A regular value type: comparable,
/// hashable by contents, cheap to copy for the ranks (<= 6) used here.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<Index> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<Index> dims) : dims_(std::move(dims)) {
    validate();
  }

  [[nodiscard]] Index rank() const {
    return static_cast<Index>(dims_.size());
  }
  [[nodiscard]] Index dim(Index i) const {
    DCHAG_CHECK(i >= -rank() && i < rank(), "dim index " << i
                                                         << " out of range for "
                                                         << to_string());
    return dims_[static_cast<std::size_t>(i >= 0 ? i : i + rank())];
  }
  [[nodiscard]] Index numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), Index{1},
                           std::multiplies<>());
  }
  [[nodiscard]] const std::vector<Index>& dims() const { return dims_; }

  /// Row-major stride of dimension `i` (elements, not bytes).
  [[nodiscard]] Index stride(Index i) const {
    Index s = 1;
    for (Index d = rank() - 1; d > i; --d) s *= dim(d);
    return s;
  }

  /// Shape with dimension `i` replaced by `v`.
  [[nodiscard]] Shape with_dim(Index i, Index v) const {
    auto d = dims_;
    d[static_cast<std::size_t>(i >= 0 ? i : i + rank())] = v;
    return Shape(std::move(d));
  }

  /// Shape with dimension `i` removed.
  [[nodiscard]] Shape without_dim(Index i) const {
    auto d = dims_;
    d.erase(d.begin() + static_cast<std::ptrdiff_t>(i >= 0 ? i : i + rank()));
    return Shape(std::move(d));
  }

  bool operator==(const Shape&) const = default;

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (Index d : dims_) {
      DCHAG_CHECK(d >= 0, "negative dimension in shape " << to_string());
    }
  }

  std::vector<Index> dims_;
};

}  // namespace dchag::tensor
