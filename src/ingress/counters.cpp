#include "ingress/counters.hpp"

#include <sstream>

namespace dchag::ingress {

std::string Counters::Snapshot::to_exposition() const {
  std::ostringstream os;
  os << "dchag_ingress_connections_total " << connections << "\n"
     << "dchag_ingress_accepted_total " << accepted << "\n"
     << "dchag_ingress_rejected_saturated_total " << rejected_saturated
     << "\n"
     << "dchag_ingress_rejected_draining_total " << rejected_draining << "\n"
     << "dchag_ingress_rejected_bad_total " << rejected_bad << "\n"
     << "dchag_ingress_completed_total " << completed << "\n"
     << "dchag_ingress_redispatches_total " << redispatches << "\n"
     << "dchag_ingress_worker_restarts_total " << worker_restarts << "\n"
     << "dchag_ingress_scale_ups_total " << scale_ups << "\n"
     << "dchag_ingress_scale_downs_total " << scale_downs << "\n"
     << "dchag_ingress_workers " << workers << "\n"
     << "dchag_ingress_queue_depth " << queue_depth << "\n";
  return os.str();
}

}  // namespace dchag::ingress
