// Capacity planner: given a model, channel count and GPU budget, enumerate
// every (TP, FSDP, DP) x D-CHAG configuration, check feasibility against
// the hardware model, and rank by predicted sustained throughput. This is
// the decision procedure behind the paper's §6.2 "find the optimal
// configuration" experiment and the examples/scale_planner binary.
#pragma once

#include <vector>

#include "hw/perf_model.hpp"

namespace dchag::core {

struct PlanRequest {
  hw::ModelConfig cfg;
  model::Index channels = 64;
  int gpus = 8;
  hw::MachineSpec machine = hw::MachineSpec::frontier();
  bool allow_dchag = true;
  bool checkpoint_vit = true;
  /// Cap on per-GPU batch during the max-batch search (0 = no cap).
  model::Index max_batch = 0;
};

struct Plan {
  hw::ParallelLayout layout;
  hw::DchagSpec dchag;
  model::Index batch_per_gpu = 0;
  hw::MemoryBreakdown memory;
  hw::StepEstimate step;

  [[nodiscard]] double throughput_per_node() const {
    return step.sustained_tflops_per_node;
  }
  [[nodiscard]] std::string describe() const;
};

class Planner {
 public:
  /// All feasible plans (batch >= 1 fits), unsorted.
  [[nodiscard]] static std::vector<Plan> enumerate(const PlanRequest& req);
  /// Highest predicted sustained TFLOPs/node; throws if nothing fits.
  [[nodiscard]] static Plan best(const PlanRequest& req);
};

}  // namespace dchag::core
