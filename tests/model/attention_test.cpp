#include "model/attention.hpp"

#include <gtest/gtest.h>

#include "testing/gradcheck.hpp"

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(SelfAttention, ShapePreserved) {
  Rng rng(1);
  MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = rng.normal_tensor(Shape{2, 6, 32});
  EXPECT_EQ(attn.forward(Variable::input(x)).shape(), (Shape{2, 6, 32}));
}

TEST(SelfAttention, SingleHeadEqualsManualComputation) {
  Rng rng(2);
  MultiHeadSelfAttention attn(8, 1, rng);
  auto params = attn.parameters();  // wq.w, wq.b, wk.w, wk.b, wv.w, wv.b, wo...
  Tensor x = rng.normal_tensor(Shape{1, 3, 8});
  Tensor q = ops::add(ops::matmul(x, params[0].value()), params[1].value());
  Tensor k = ops::add(ops::matmul(x, params[2].value()), params[3].value());
  Tensor v = ops::add(ops::matmul(x, params[4].value()), params[5].value());
  Tensor scores = ops::scale(ops::matmul(q, ops::transpose_last2(k)),
                             1.0f / std::sqrt(8.0f));
  Tensor attn_out = ops::matmul(ops::softmax_lastdim(scores), v);
  Tensor expected =
      ops::add(ops::matmul(attn_out, params[6].value()), params[7].value());
  Tensor got = attn.forward(Variable::input(x)).value();
  EXPECT_LT(ops::max_abs_diff(got, expected), 1e-4f);
}

TEST(SelfAttention, PermutationEquivariantWithoutPositions) {
  // Self-attention with no positional input is equivariant to reordering
  // the sequence: swap two tokens in, swap the same two out.
  Rng rng(3);
  MultiHeadSelfAttention attn(16, 4, rng);
  Tensor x = rng.normal_tensor(Shape{1, 4, 16});
  Tensor x_swapped = x.clone();
  for (tensor::Index d = 0; d < 16; ++d) {
    const float tmp = x_swapped.at({0, 1, d});
    x_swapped.set({0, 1, d}, x_swapped.at({0, 2, d}));
    x_swapped.set({0, 2, d}, tmp);
  }
  Tensor y = attn.forward(Variable::input(x)).value();
  Tensor y_swapped = attn.forward(Variable::input(x_swapped)).value();
  for (tensor::Index d = 0; d < 16; ++d) {
    EXPECT_NEAR(y.at({0, 1, d}), y_swapped.at({0, 2, d}), 1e-4f);
    EXPECT_NEAR(y.at({0, 2, d}), y_swapped.at({0, 1, d}), 1e-4f);
  }
}

TEST(SelfAttention, GradcheckThroughFullBlock) {
  Rng rng(4);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = rng.normal_tensor(Shape{1, 3, 8});
  auto fn = [&attn, x](const std::vector<Variable>&) {
    // Check input-side gradients by re-running on the (perturbed) leaf.
    return autograd::mean_all(
        autograd::mul(attn.forward(Variable::input(x)),
                      attn.forward(Variable::input(x))));
  };
  // Parameter-side gradient check on wq weight.
  auto params = attn.parameters();
  auto fn2 = [&attn, x](const std::vector<Variable>&) {
    Variable y = attn.forward(Variable::input(x));
    return autograd::mean_all(autograd::mul(y, y));
  };
  const float err = dchag::testing::gradcheck(fn2, {params[0], params[7]});
  EXPECT_LT(err, 3e-2f);
  (void)fn;
}

TEST(CrossAttentionAggregator, ChannelTokensModeShape) {
  Rng rng(5);
  CrossAttentionAggregator agg(32, 4, 6, QueryMode::kChannelTokens, rng);
  Tensor tokens = rng.normal_tensor(Shape{2, 4, 6, 32});
  EXPECT_EQ(agg.forward(Variable::input(tokens)).shape(), (Shape{2, 4, 32}));
}

TEST(CrossAttentionAggregator, LearnedQueryModeShape) {
  Rng rng(6);
  CrossAttentionAggregator agg(32, 4, 6, QueryMode::kLearnedQuery, rng);
  Tensor tokens = rng.normal_tensor(Shape{2, 4, 6, 32});
  EXPECT_EQ(agg.forward(Variable::input(tokens)).shape(), (Shape{2, 4, 32}));
}

TEST(CrossAttentionAggregator, WidthContract) {
  // Cross-attention is width-agnostic up to the nominal channel count
  // (paper §2.1: inference on channel subsets) but rejects wider inputs
  // and wrong embedding dims.
  Rng rng(7);
  CrossAttentionAggregator agg(32, 4, 6, QueryMode::kChannelTokens, rng);
  EXPECT_EQ(agg.forward(Variable::input(Tensor(Shape{2, 4, 5, 32}))).shape(),
            (Shape{2, 4, 32}));
  EXPECT_THROW(agg.forward(Variable::input(Tensor(Shape{2, 4, 7, 32}))),
               Error);
  EXPECT_THROW(agg.forward(Variable::input(Tensor(Shape{2, 4, 6, 16}))),
               Error);
}

TEST(CrossAttentionAggregator, OutputDependsOnEveryChannel) {
  Rng rng(8);
  CrossAttentionAggregator agg(16, 2, 4, QueryMode::kChannelTokens, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 4, 16});
  Tensor base = agg.forward(Variable::input(tokens)).value();
  for (tensor::Index c = 0; c < 4; ++c) {
    Tensor mod = tokens.clone();
    mod.set({0, 0, c, 0}, mod.at({0, 0, c, 0}) + 1.0f);
    Tensor out = agg.forward(Variable::input(mod)).value();
    EXPECT_GT(ops::max_abs_diff(base, out), 1e-5f) << "channel " << c;
  }
}

TEST(CrossAttentionAggregator, GradFlowsToAllParams) {
  Rng rng(9);
  CrossAttentionAggregator agg(16, 2, 3, QueryMode::kLearnedQuery, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 3, 16});
  autograd::sum_all(agg.forward(Variable::input(tokens))).backward();
  for (const auto& p : agg.parameters()) EXPECT_TRUE(p.has_grad()) << p.name();
}

TEST(LinearAggregator, ShapeAndInitIsMean) {
  Rng rng(10);
  LinearAggregator agg(16, 4, rng);
  Tensor tokens = rng.normal_tensor(Shape{2, 3, 4, 16});
  Variable out = agg.forward(Variable::input(tokens));
  EXPECT_EQ(out.shape(), (Shape{2, 3, 16}));
  // combine weights initialise to 1/C: the mixed token before projection is
  // the channel mean of the layer-normed tokens.
  auto params = agg.parameters();
  auto combine = std::find_if(params.begin(), params.end(), [](const auto& p) {
    return p.name() == "linagg.combine";
  });
  ASSERT_NE(combine, params.end());
  for (float w : combine->value().span()) EXPECT_NEAR(w, 0.25f, 1e-6f);
}

TEST(LinearAggregator, GradcheckCombineWeights) {
  Rng rng(11);
  LinearAggregator agg(8, 3, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 3, 8});
  auto params = agg.parameters();
  auto fn = [&agg, tokens](const std::vector<Variable>&) {
    Variable y = agg.forward(Variable::input(tokens));
    return autograd::mean_all(autograd::mul(y, y));
  };
  const float err = dchag::testing::gradcheck(fn, {params[2], params[3]});
  EXPECT_LT(err, 3e-2f);
}

TEST(MakeAggregator, FactorySelectsKind) {
  Rng rng(12);
  auto c = make_aggregator(AggLayerKind::kCrossAttention, 16, 2, 4,
                           QueryMode::kChannelTokens, rng, "a");
  auto l = make_aggregator(AggLayerKind::kLinear, 16, 2, 4,
                           QueryMode::kChannelTokens, rng, "b");
  EXPECT_NE(dynamic_cast<CrossAttentionAggregator*>(c.get()), nullptr);
  EXPECT_NE(dynamic_cast<LinearAggregator*>(l.get()), nullptr);
  EXPECT_EQ(c->width(), 4);
  EXPECT_EQ(l->width(), 4);
}

}  // namespace
}  // namespace dchag::model
