// Shim TU: consumes the deprecated DchagOptions::kernels/comm overlays.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "core/dchag_frontend.hpp"

#include <array>

namespace dchag::core {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// Folds the deprecated per-options pins into the (optional) pinned
/// context: a legacy field forces a pinned context so its value behaves
/// exactly like the pre-Context thread-local scope it replaced.
std::optional<runtime::Context> fold_legacy_options(
    std::optional<runtime::Context> ctx, const DchagOptions& opts) {
#ifdef DCHAG_DEPRECATED_CONFIG
  if (opts.kernels || opts.comm) {
    runtime::ContextBuilder b(ctx ? *ctx : runtime::Context::current());
    if (opts.kernels) b.kernels(*opts.kernels);
    if (opts.comm) b.comm(*opts.comm);
    return b.build();
  }
#else
  (void)opts;
#endif
  return ctx;
}

}  // namespace

DchagFrontEnd::DchagFrontEnd(const ModelConfig& cfg, Index total_channels,
                             Communicator& comm, const DchagOptions& opts,
                             Rng& master_rng,
                             std::optional<runtime::Context> ctx)
    : cfg_(cfg),
      comm_(&comm),
      world_size_(comm.size()),
      ctx_(fold_legacy_options(std::move(ctx), opts)) {
  cfg_.validate();
  logical_slots_.resize(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r)
    logical_slots_[static_cast<std::size_t>(r)] = r;
  sync_coll_.emplace(comm);
  // The async progress lane is built lazily at the first async forward
  // (collective_for), NOT here: front-end construction must stay free of
  // collectives so a rank whose peer fails to construct can still unwind
  // (SpmdEngine's cold-start failure path relies on this).
  Rng tok_rng = master_rng.fork(0xD0C);
  tokenizer_ = std::make_unique<parallel::DistributedTokenizer>(
      cfg_, total_channels, comm, tok_rng);
  register_child(*tokenizer_);

  const Index c_local = tokenizer_->local_channels();
  const Index units =
      std::min<Index>(std::max<Index>(opts.tree_units, 1), c_local);
  Rng tree_rng = master_rng.fork(0x73EE);
  tree_ = model::AggregationTree::with_units(cfg_, opts.partial_kind,
                                             c_local, units, tree_rng,
                                             "dchag.tree");
  register_child(*tree_);

  // Final shared cross-attention over one representation per rank. Its
  // weights derive from the same master stream on every rank, so they are
  // replicated by construction (asserted in tests via is_replicated).
  Rng final_rng = master_rng.fork(0xF17A);
  final_ = std::make_unique<model::CrossAttentionAggregator>(
      cfg_.embed_dim, cfg_.num_heads, comm.size(), cfg_.query_mode,
      final_rng, "dchag.final");
  register_child(*final_);
}

void DchagFrontEnd::rebind(Communicator& comm,
                           std::vector<int> logical_slots) {
  DCHAG_CHECK(static_cast<int>(logical_slots.size()) == comm.size(),
              "rebind: slot map size " << logical_slots.size()
                                       << " != group size " << comm.size());
  int prev = -1;
  for (int s : logical_slots) {
    DCHAG_CHECK(s > prev && s < world_size_,
                "rebind: logical slots must be strictly increasing in [0, "
                    << world_size_ << ")");
    prev = s;
  }
  // Tear down comm-bound lanes BEFORE swapping: the async progress thread
  // holds a shadow group of the old comm. On a poisoned group, queued ops
  // fail fast into their futures, so this join cannot hang.
  async_.reset();
  comm_ = &comm;
  sync_coll_.emplace(comm);
  tokenizer_->rebind(comm);
  logical_slots_ = std::move(logical_slots);
}

Variable DchagFrontEnd::forward_local_partial(const Tensor& images) const {
  // Scope into this front-end's effective context for the local stage
  // (thread-local, so concurrent ranks don't fight over the process
  // default, and pool workers inherit it across the fan-out).
  runtime::Scope scope(effective_context());
  DCHAG_CHECK(images.rank() == 4 && images.dim(1) == local_channels(),
              "DchagFrontEnd expects the rank-local channel slice [B, "
                  << local_channels() << ", H, W], got "
                  << images.shape().to_string());
  Variable tokens = tokenizer_->forward_local(images);      // [B, Cl, S, D]
  Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});  // [B, S, Cl, D]
  return tree_->forward(bscd);                              // [B, S, D]
}

comm::ICollective& DchagFrontEnd::collective_for(comm::CommMode mode) const {
  if (mode == comm::CommMode::kSync) return *sync_coll_;
  if (!async_) async_ = std::make_unique<comm::AsyncCommunicator>(*comm_);
  return *async_;
}

Variable DchagFrontEnd::forward(const Tensor& images) const {
  // One context resolution per forward: everything below (including the
  // pipelined route and nested ops on pool workers) runs under it.
  const runtime::Context ctx = effective_context();
  runtime::Scope scope(ctx);
  const Index B = images.dim(0);
  const Index S = cfg_.seq_len();
  const Index D = cfg_.embed_dim;

  // Pipelined route: micro-chunk the batch so gather traffic overlaps the
  // next chunk's compute. Needs at least 2 chunks to mean anything; the
  // K <= 1 route below stays the byte-for-byte original forward.
  const comm::CommConfig cc = ctx.comm();
  const Index K =
      std::min<Index>(std::max<Index>(cc.pipeline_chunks, 1), B);
  runtime::trace(ctx, "core.forward.pipeline_chunks",
                 static_cast<double>(K));
  if (K > 1) return forward_pipelined(images, K, cc.mode);

  // 1-2. Local tokenization + partial aggregation to one representation.
  Variable partial = forward_local_partial(images);

  // 3. AllGather one channel representation per rank. Downstream (the
  // final aggregation onward) is replicated, so the backward is a local
  // slice — no communication (paper §3.3).
  Variable as_channel = autograd::reshape(partial, Shape{B, S, 1, D});
  Variable gathered =
      comm_->size() == 1
          ? as_channel
          : parallel::all_gather_cat(as_channel, *comm_, /*dim=*/2,
                                     parallel::GatherBackward::kLocalSlice);

  // 4. Final shared cross-attention over the P partial representations.
  return final_->forward(gathered);  // [B, S, D]
}

Variable DchagFrontEnd::forward_pipelined(const Tensor& images, Index K,
                                          comm::CommMode mode) const {
  DCHAG_CHECK(images.rank() == 4 && images.dim(1) == local_channels(),
              "DchagFrontEnd expects the rank-local channel slice [B, "
                  << local_channels() << ", H, W], got "
                  << images.shape().to_string());
  const Index B = images.dim(0);
  const Index S = cfg_.seq_len();
  const Index D = cfg_.embed_dim;
  comm::ICollective& coll = collective_for(mode);

  // Software pipeline over K batch micro-chunks with two gather slots:
  //
  //   chunk k   : tree GEMMs -> issue iall_gather into slot k%2
  //   chunk k+1 : tree GEMMs        | slot k traffic in flight
  //   combine k : wait slot k, final cross-attention (the only barrier)
  //
  // A slot is re-armed only after its combine, so at most two gathers are
  // ever in flight and buffers are never overwritten mid-transfer. Under
  // SyncCollective the identical code runs with eager (pre-completed)
  // futures: same chunking, same arithmetic order, bit-identical output —
  // the oracle the FaultyWorld stress tests compare against.
  std::array<std::optional<parallel::PendingGatherCat>, 2> slots;
  std::array<Index, 2> slot_chunk{0, 0};
  std::vector<Variable> outs(static_cast<std::size_t>(K));
  auto combine = [&](std::size_t s) {
    Variable gathered = slots[s]->wait();  // [b, S, P, D]
    outs[static_cast<std::size_t>(slot_chunk[s])] = final_->forward(gathered);
    slots[s].reset();
  };

  const Index base = B / K;
  const Index rem = B % K;
  Index off = 0;
  for (Index k = 0; k < K; ++k) {
    const Index len = base + (k < rem ? 1 : 0);
    const auto s = static_cast<std::size_t>(k % 2);
    if (slots[s]) combine(s);  // retire chunk k-2 before re-arming its slot
    Variable partial = forward_local_partial(images.slice0(off, len));
    Variable as_channel = autograd::reshape(partial, Shape{len, S, 1, D});
    slots[s] = parallel::all_gather_cat_start(as_channel, coll, /*dim=*/2);
    slot_chunk[s] = k;
    off += len;
  }
  for (Index k = std::max<Index>(K - 2, 0); k < K; ++k) {
    const auto s = static_cast<std::size_t>(k % 2);
    if (slots[s]) combine(s);
  }
  return autograd::concat(outs, 0);  // [B, S, D]
}

Variable DchagFrontEnd::forward_subset(
    const Tensor& images, std::span<const Index> channels) const {
  runtime::Scope scope(effective_context());
  DCHAG_CHECK(images.rank() == 4 &&
                  images.dim(1) == static_cast<Index>(channels.size()),
              "forward_subset expects the full subset batch [B, "
                  << channels.size() << ", H, W], got "
                  << images.shape().to_string());
  // Validate the ids up front, before any rank-dependent branching: every
  // rank sees the identical list, so malformed requests throw uniformly
  // on all ranks and the collective call sequence stays symmetric
  // (otherwise a rank with no intersection would sail into the AllGather
  // while another throws — a deadlock, not an error).
  Index prev = -1;
  for (Index c : channels) {
    DCHAG_CHECK(c > prev && c < total_channels(),
                "subset channel ids must be strictly increasing in [0, "
                    << total_channels() << ")");
    prev = c;
  }
  const Index B = images.dim(0);
  const Index S = cfg_.seq_len();
  const Index D = cfg_.embed_dim;
  const Index c_local = local_channels();
  const int P = comm_->size();

  // This rank's slice of the subset: global ids in
  // [slot*c_local, (slot+1)*c_local), where slot is the original
  // channel-partition slot this rank carries (== rank until a rebind
  // remaps a survivor group). Sorted ids make it contiguous.
  const Index lo =
      static_cast<Index>(
          logical_slots_[static_cast<std::size_t>(comm_->rank())]) *
      c_local;
  const Index hi = lo + c_local;
  Index first = 0;
  Index count = 0;
  std::vector<Index> mine;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] < lo) first = static_cast<Index>(i) + 1;
    if (channels[i] >= lo && channels[i] < hi) {
      mine.push_back(channels[i]);
      ++count;
    }
  }

  // Partial aggregation of the local intersection (or a zero placeholder
  // for ranks that own none of the requested channels).
  Variable partial;
  if (count > 0) {
    Tensor local = ops::slice(images, 1, first, count);
    const std::vector<Index> positions =
        tokenizer_->local_tokenizer().local_positions(mine);
    Variable tokens =
        tokenizer_->local_tokenizer().forward_at_positions(local, positions);
    Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});
    partial = tree_->forward_subset(bscd, positions);
  } else {
    partial = autograd::Variable::input(Tensor(Shape{B, S, D}, 0.0f));
  }

  Variable as_channel = autograd::reshape(partial, Shape{B, S, 1, D});
  Variable gathered =
      P == 1 ? as_channel
             : parallel::all_gather_cat(as_channel, *comm_, /*dim=*/2,
                                        parallel::GatherBackward::kLocalSlice);

  // Keep only the representations of ranks that actually own subset
  // channels (deterministic from `channels`, so all ranks agree). Slot
  // ids are the ORIGINAL partition slots, so after a survivor rebind the
  // final aggregation sees the same kept reps in the same slots as the
  // full-world subset forward would — dropped ranks look exactly like
  // empty-intersection ranks, which is what makes degraded serving
  // bit-exact on the surviving channels.
  std::vector<Variable> kept;
  std::vector<Index> slots;
  for (int r = 0; r < P; ++r) {
    const Index slot =
        static_cast<Index>(logical_slots_[static_cast<std::size_t>(r)]);
    const Index rlo = slot * c_local;
    bool has = false;
    for (Index c : channels)
      if (c >= rlo && c < rlo + c_local) { has = true; break; }
    if (has) {
      kept.push_back(autograd::slice(gathered, 2, static_cast<Index>(r), 1));
      slots.push_back(slot);
    }
  }
  DCHAG_CHECK(!kept.empty(), "subset maps to no rank — empty channel list?");
  Variable participants =
      kept.size() == 1 ? kept.front() : autograd::concat(kept, 2);
  return final_->forward_subset(participants, slots);
}

Tensor DchagFrontEnd::slice_local_channels(const Tensor& full_images) const {
  DCHAG_CHECK(full_images.rank() == 4 &&
                  full_images.dim(1) == total_channels(),
              "expected full [B, " << total_channels() << ", H, W], got "
                                   << full_images.shape().to_string());
  const Index c_local = local_channels();
  const Index slot =
      static_cast<Index>(logical_slots_[static_cast<std::size_t>(comm_->rank())]);
  return ops::slice(full_images, 1, slot * c_local, c_local);
}

std::unique_ptr<model::MaeModel> make_dchag_mae(
    const ModelConfig& cfg, Index total_channels, Communicator& comm,
    const DchagOptions& opts, Rng& master_rng,
    std::optional<runtime::Context> ctx) {
  auto frontend = std::make_unique<DchagFrontEnd>(
      cfg, total_channels, comm, opts, master_rng, std::move(ctx));
  Rng task_rng = master_rng.fork(0x3AE);
  return std::make_unique<model::MaeModel>(cfg, std::move(frontend),
                                           total_channels, task_rng);
}

std::unique_ptr<model::ForecastModel> make_dchag_forecast(
    const ModelConfig& cfg, Index total_channels, Communicator& comm,
    const DchagOptions& opts, Rng& master_rng,
    std::optional<runtime::Context> ctx) {
  auto frontend = std::make_unique<DchagFrontEnd>(
      cfg, total_channels, comm, opts, master_rng, std::move(ctx));
  Rng task_rng = master_rng.fork(0x3AF);
  return std::make_unique<model::ForecastModel>(cfg, std::move(frontend),
                                                total_channels, task_rng);
}

}  // namespace dchag::core
