// Wire-protocol codec: roundtrips for every payload type, bounds-checked
// rejection of malformed/truncated/oversized frames, and framed socket
// I/O over a socketpair.
#include "ingress/wire.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace dchag::ingress {
namespace {

using tensor::Rng;
using tensor::Shape;

TEST(Wire, InferRoundTrip) {
  Rng rng(7);
  InferRequest req;
  req.id = 0x1122334455667788ull;
  req.lead_time = 2.5f;
  req.channels = {0, 2, 5};
  req.images = rng.normal_tensor(Shape{3, 4, 4});

  const std::vector<std::uint8_t> bytes = encode_infer(req);
  const InferRequest back = decode_infer(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, req.id);
  EXPECT_FLOAT_EQ(back.lead_time, req.lead_time);
  ASSERT_EQ(back.channels, req.channels);
  ASSERT_EQ(back.images.shape(), req.images.shape());
  for (Index i = 0; i < req.images.numel(); ++i)
    EXPECT_EQ(back.images.data()[i], req.images.data()[i]);
}

TEST(Wire, InferEmptyChannelsMeansAll) {
  Rng rng(8);
  InferRequest req;
  req.id = 1;
  req.images = rng.normal_tensor(Shape{2, 4, 4});
  const std::vector<std::uint8_t> bytes = encode_infer(req);
  const InferRequest back = decode_infer(bytes.data(), bytes.size());
  EXPECT_TRUE(back.channels.empty());
}

TEST(Wire, ResultRoundTrip) {
  Rng rng(9);
  InferResult res;
  res.id = 42;
  res.pred = rng.normal_tensor(Shape{5, 7});
  const std::vector<std::uint8_t> bytes = encode_result(res);
  const InferResult back = decode_result(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, res.id);
  ASSERT_EQ(back.pred.shape(), res.pred.shape());
  for (Index i = 0; i < res.pred.numel(); ++i)
    EXPECT_EQ(back.pred.data()[i], res.pred.data()[i]);
}

TEST(Wire, ErrorRoundTrip) {
  WireError err;
  err.id = 99;
  err.code = ErrorCode::kSaturated;
  err.message = "queue full";
  const std::vector<std::uint8_t> bytes = encode_error(err);
  const WireError back = decode_error(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, err.id);
  EXPECT_EQ(back.code, err.code);
  EXPECT_EQ(back.message, err.message);
}

TEST(Wire, TruncatedPayloadsAreTypedRejects) {
  Rng rng(10);
  InferRequest req;
  req.id = 3;
  req.channels = {0, 1};
  req.images = rng.normal_tensor(Shape{2, 4, 4});
  std::vector<std::uint8_t> bytes = encode_infer(req);
  // Every strict prefix must be rejected, never read out of bounds.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(decode_infer(bytes.data(), cut), IngressError);
  }
  // A corrupted channel count that implies more bytes than exist.
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[12] = 0xff;
  corrupt[13] = 0xff;
  try {
    (void)decode_infer(corrupt.data(), corrupt.size());
    FAIL() << "oversized channel count must be rejected";
  } catch (const IngressError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
}

TEST(Wire, FrameRoundTripOverSocketpair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  Rng rng(11);
  InferRequest req;
  req.id = 77;
  req.images = rng.normal_tensor(Shape{2, 4, 4});
  const std::vector<std::uint8_t> payload = encode_infer(req);

  std::thread writer([&] {
    EXPECT_TRUE(write_frame(fds[0], MsgType::kInfer, payload));
    // Zero-payload frames (the query messages) must also travel.
    EXPECT_TRUE(write_frame(fds[0], MsgType::kHealthQuery, nullptr, 0));
    ::close(fds[0]);
  });

  std::optional<Frame> f1 = read_frame(fds[1]);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, MsgType::kInfer);
  EXPECT_EQ(f1->payload, payload);

  std::optional<Frame> f2 = read_frame(fds[1]);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, MsgType::kHealthQuery);
  EXPECT_TRUE(f2->payload.empty());

  // Orderly EOF at a frame boundary is nullopt, not an error.
  std::optional<Frame> f3 = read_frame(fds[1]);
  EXPECT_FALSE(f3.has_value());

  writer.join();
  ::close(fds[1]);
}

TEST(Wire, MidFrameEofIsAProtocolError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix promising 100 bytes, then hang up.
  const std::uint8_t partial[] = {100, 0, 0, 0, 1, 'x'};
  ASSERT_EQ(::send(fds[0], partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(fds[0]);
  EXPECT_THROW((void)read_frame(fds[1]), IngressError);
  ::close(fds[1]);
}

TEST(Wire, OversizedFramePrefixIsRejectedWithoutAllocating) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[5] = {};
  std::memcpy(prefix, &huge, 4);
  prefix[4] = 1;
  ASSERT_EQ(::send(fds[0], prefix, sizeof(prefix), 0),
            static_cast<ssize_t>(sizeof(prefix)));
  try {
    (void)read_frame(fds[1]);
    FAIL() << "oversized frame must be rejected";
  } catch (const IngressError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace dchag::ingress
