#include "ingress/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "ingress/shm_ring.hpp"
#include "runtime/context.hpp"
#include "serve/engine.hpp"
#include "tensor/autograd.hpp"
#include "train/checkpoint.hpp"

namespace dchag::ingress {

std::string ModelSpec::serialize() const {
  return preset + ":" + std::to_string(channels) + ":" +
         std::to_string(units);
}

ModelSpec ModelSpec::parse(const std::string& text) {
  ModelSpec spec;
  const std::size_t a = text.find(':');
  const std::size_t b = a == std::string::npos ? a : text.find(':', a + 1);
  DCHAG_CHECK(a != std::string::npos && b != std::string::npos,
              "ModelSpec must be 'preset:channels:units', got '" << text
                                                                 << "'");
  spec.preset = text.substr(0, a);
  spec.channels =
      static_cast<tensor::Index>(std::stoll(text.substr(a + 1, b - a - 1)));
  spec.units = static_cast<tensor::Index>(std::stoll(text.substr(b + 1)));
  DCHAG_CHECK(!spec.preset.empty() && spec.channels >= 1 && spec.units >= 1,
              "bad ModelSpec '" << text << "'");
  return spec;
}

std::unique_ptr<model::ForecastModel> build_model(const ModelSpec& spec,
                                                  std::uint64_t seed) {
  const model::ModelConfig cfg = spec.preset == "tiny"
                                     ? model::ModelConfig::tiny()
                                     : model::ModelConfig::preset(spec.preset);
  tensor::Rng rng(seed);
  auto agg = model::AggregationTree::with_units(
      cfg, model::AggLayerKind::kCrossAttention, spec.channels, spec.units,
      rng);
  auto fe = std::make_unique<model::LocalFrontEnd>(cfg, spec.channels,
                                                   std::move(agg), rng);
  return std::make_unique<model::ForecastModel>(cfg, std::move(fe),
                                                spec.channels, rng);
}

namespace {

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? v : fallback;
}

/// Pushes a response, waiting out a full ring (the dispatcher drains it
/// continuously; a persistently full ring means the dispatcher died, in
/// which case the control word or a SIGKILL ends us anyway).
void push_response_blocking(ShmRing& ring, const RingResponse& hdr,
                            const float* payload, const char* error) {
  while (!ring.try_push_response(hdr, payload, error)) {
    ring.beat();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace

int worker_main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dchag_ingress_worker <shm-ring-name>\n");
    return 2;
  }
  try {
    // THE context hand-off: the dispatcher re-exported its effective
    // context as DCHAG_* variables before exec, so the process default
    // built here mirrors the dispatcher's serving configuration.
    runtime::Context::set_process_default(runtime::Context::from_env());

    ShmRing ring = ShmRing::open(argv[1]);
    ring.set_state(WorkerState::kStarting);
    ring.beat();

    const ModelSpec spec =
        ModelSpec::parse(env_or(kEnvModelSpec, "tiny:6:2"));
    const char* ckpt = std::getenv(kEnvCheckpoint);
    auto model = build_model(spec, /*seed=*/1);
    if (ckpt != nullptr && ckpt[0] != '\0') train::load_module(ckpt, *model);
    serve::Engine engine(*model);

    // Deterministic fault injection for the crash-recovery suites: die
    // mid-request — after consuming request N but before its response —
    // exactly where a real forward-pass crash loses the most state.
    const long crash_at = std::strtol(env_or(kEnvCrashAt, "0"), nullptr, 10);

    ring.set_state(WorkerState::kReady);
    std::uint64_t served = 0;
    RingRequest req;
    std::vector<float> payload;
    autograd::NoGradGuard no_grad;
    for (;;) {
      ring.beat();
      if (!ring.try_pop_request(&req, &payload)) {
        if (ring.control() == ControlWord::kDrainStop) break;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (ring.control() == ControlWord::kDrainStop)
        ring.set_state(WorkerState::kDraining);

      ++served;
      RingResponse resp;
      resp.id = req.id;
      try {
        Tensor images = Tensor::from_data(
            tensor::Shape{1, req.c, req.h, req.w}, std::move(payload));
        std::vector<Index> channels(req.channels,
                                    req.channels + req.n_channels);
        Tensor pred = engine.run(images, channels, req.lead_time);
        if (crash_at > 0 && served == static_cast<std::uint64_t>(crash_at))
          ::_exit(42);  // injected crash: request consumed, answer lost
        Tensor row =
            pred.reshape(tensor::Shape{pred.dim(1), pred.dim(2)});
        resp.s = row.dim(0);
        resp.d = row.dim(1);
        if (static_cast<std::uint64_t>(row.numel()) >
            ring.max_payload_floats()) {
          resp.status = static_cast<std::uint32_t>(ErrorCode::kInternal);
          const std::string msg = "prediction exceeds ring slot budget";
          resp.error_bytes = static_cast<std::uint32_t>(msg.size());
          push_response_blocking(ring, resp, nullptr, msg.data());
        } else {
          push_response_blocking(ring, resp, row.data(), nullptr);
        }
      } catch (const std::exception& e) {
        // A per-request failure is an answer, not a worker death.
        resp.status = static_cast<std::uint32_t>(ErrorCode::kInternal);
        const std::string msg = e.what();
        resp.error_bytes = static_cast<std::uint32_t>(msg.size());
        push_response_blocking(ring, resp, nullptr, msg.data());
      }
      payload.clear();
    }
    ring.set_state(WorkerState::kStopped);
    ring.beat();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dchag_ingress_worker: fatal: %s\n", e.what());
    return 1;
  }
}

}  // namespace dchag::ingress
