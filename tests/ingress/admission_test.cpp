// Admission control: a saturated bounded queue answers with typed
// kSaturated rejects (no hangs, no silent drops), every ACCEPTED request
// is answered bit-exactly, and a draining ingress type-rejects new work
// while still finishing everything it admitted.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ingress/client.hpp"
#include "ingress/dispatcher.hpp"
#include "ingress_test_util.hpp"

namespace dchag::ingress {
namespace {

using testutil::TrainedModel;

TEST(Admission, SaturationIsATypedRejectNeverAHangOrDrop) {
  TrainedModel trained;
  IngressConfig cfg = testutil::base_config(trained);
  cfg.min_workers = 1;
  cfg.max_workers = 1;
  cfg.ring.slots = 1;
  cfg.queue_capacity = 2;
  Ingress ingress(cfg);

  // One synchronized burst of 16 single-request clients against a
  // capacity-2 queue + 1-slot ring: most must be rejected kSaturated.
  constexpr int kClients = 16;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> ok{0}, saturated{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(ingress.port());
      const Tensor images =
          testutil::sample_image(100 + static_cast<std::uint64_t>(i));
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      try {
        const Tensor pred = client.infer(images);
        testutil::expect_bit_exact(pred, trained.reference(images));
        ok.fetch_add(1);
      } catch (const IngressError& e) {
        if (e.code() == ErrorCode::kSaturated) {
          saturated.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  while (ready.load() < kClients) std::this_thread::yield();
  go.store(true);
  for (std::thread& t : threads) t.join();  // no hangs: every client returns

  EXPECT_EQ(ok.load() + saturated.load() + other.load(), kClients);
  EXPECT_GE(saturated.load(), 1) << "a 16-burst must overflow capacity 2+1";
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);

  ingress.drain();
  const Counters::Snapshot c = ingress.counters();
  EXPECT_EQ(c.accepted, static_cast<std::uint64_t>(ok.load()))
      << "accepted and answered must match: no drops of admitted work";
  EXPECT_EQ(c.completed, c.accepted);
  EXPECT_EQ(c.rejected_saturated,
            static_cast<std::uint64_t>(saturated.load()));
}

TEST(Admission, DrainingRejectsNewWorkAndFinishesAdmittedWork) {
  TrainedModel trained;
  IngressConfig cfg = testutil::base_config(trained);
  cfg.min_workers = 1;
  cfg.max_workers = 1;
  cfg.ring.slots = 1;
  cfg.queue_capacity = 64;
  // The first worker dies on its first request: while its replacement
  // cold-starts, the backlog below is guaranteed to build, so the drain
  // happens with admitted-but-unanswered work outstanding.
  cfg.crash_plan = {CrashSpec{0, 1}};
  Ingress ingress(cfg);

  // Build a real backlog: 32 concurrent single-request clients.
  constexpr int kClients = 32;
  std::atomic<int> ok{0}, shutdown_rejected{0}, hung_up{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const Tensor images =
          testutil::sample_image(300 + static_cast<std::uint64_t>(i));
      try {
        Client client(ingress.port());
        const Tensor pred = client.infer(images);
        testutil::expect_bit_exact(pred, trained.reference(images));
        ok.fetch_add(1);
      } catch (const IngressError& e) {
        // Late arrivals may race the drain below; that reject must be
        // typed kShuttingDown, nothing else.
        EXPECT_EQ(e.code(), ErrorCode::kShuttingDown);
        shutdown_rejected.fetch_add(1);
      } catch (const std::exception&) {
        // A client the drain beat to the listener (refused connect or
        // closed socket before its request was admitted). Not a drop:
        // nothing of this client's was ever accepted.
        hung_up.fetch_add(1);
      }
    });
  }
  // Probe connection opened BEFORE the drain so it survives the closed
  // listener and exercises the admission path of a draining dispatcher.
  // The healthz round-trip proves the dispatcher actually ACCEPTED this
  // connection (not merely queued it in the listen backlog, where the
  // drain's listener close would reset it).
  Client probe(ingress.port());
  EXPECT_TRUE(probe.healthz());
  while (ingress.queue_depth() < 4) std::this_thread::yield();

  std::thread drainer([&] { ingress.drain(); });
  // drain() closes the listener right after flipping to draining, so a
  // refused connect is the proof that new work now gets type-rejected.
  // The crash-stalled backlog keeps the drain itself busy long past this
  // point, so the probe below lands while the dispatcher still drains.
  for (bool listening = true; listening;) {
    try {
      Client tmp(ingress.port());
    } catch (const std::exception&) {
      listening = false;
    }
  }
  bool saw_shutdown = false;
  int probe_ok = 0;
  try {
    for (int i = 0; i < 1000 && !saw_shutdown; ++i) {
      try {
        (void)probe.infer(testutil::sample_image(999));
        ++probe_ok;  // slipped in before draining_ flipped
      } catch (const IngressError& e) {
        ASSERT_EQ(e.code(), ErrorCode::kShuttingDown);
        saw_shutdown = true;
      }
    }
  } catch (const std::exception&) {
    // Drain finished and hung up mid-probe — only acceptable if we
    // already observed the typed reject.
  }
  EXPECT_TRUE(saw_shutdown);

  drainer.join();
  for (std::thread& t : threads) t.join();

  const Counters::Snapshot c = ingress.counters();
  EXPECT_EQ(c.accepted, c.completed) << "drain must answer admitted work";
  EXPECT_EQ(c.accepted, static_cast<std::uint64_t>(ok.load() + probe_ok));
  EXPECT_GE(c.rejected_draining, 1u);
  EXPECT_EQ(c.queue_depth, 0u);
  EXPECT_EQ(ok.load() + shutdown_rejected.load() + hung_up.load(),
            kClients);
}

}  // namespace
}  // namespace dchag::ingress
