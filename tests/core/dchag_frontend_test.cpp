#include "core/dchag_frontend.hpp"

#include <gtest/gtest.h>

namespace dchag::core {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using comm::CollectiveKind;
using comm::World;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

ModelConfig tiny() { return ModelConfig::tiny(); }

/// Single-device reference implementing the same math as a P-rank D-CHAG
/// front-end: full tokenizer, P identically-seeded partial trees applied
/// to the P channel groups, final cross-attention over the P outputs.
struct SingleDeviceReference {
  SingleDeviceReference(const ModelConfig& cfg, tensor::Index channels,
                        int P, const DchagOptions& opts, Rng& master_rng)
      : cfg_(cfg), P_(P) {
    Rng tok_rng = master_rng.fork(0xD0C);
    tokenizer_ =
        std::make_unique<model::PatchTokenizer>(cfg, channels, tok_rng);
    const tensor::Index c_local = channels / P;
    for (int r = 0; r < P; ++r) {
      Rng tree_rng = master_rng.fork(0x73EE);
      trees_.push_back(model::AggregationTree::with_units(
          cfg, opts.partial_kind, c_local,
          std::min<tensor::Index>(std::max<tensor::Index>(opts.tree_units, 1),
                                  c_local),
          tree_rng, "dchag.tree"));
    }
    Rng final_rng = master_rng.fork(0xF17A);
    final_ = std::make_unique<model::CrossAttentionAggregator>(
        cfg.embed_dim, cfg.num_heads, P, cfg.query_mode, final_rng,
        "dchag.final");
  }

  Variable forward(const Tensor& images) const {
    const tensor::Index B = images.dim(0);
    const tensor::Index S = cfg_.seq_len();
    const tensor::Index D = cfg_.embed_dim;
    const tensor::Index c_local = images.dim(1) / P_;
    Variable tokens = tokenizer_->forward(images);
    Variable bscd = autograd::permute(tokens, {0, 2, 1, 3});
    std::vector<Variable> parts;
    for (int r = 0; r < P_; ++r) {
      Variable group = autograd::slice(bscd, 2, r * c_local, c_local);
      parts.push_back(autograd::reshape(trees_[static_cast<std::size_t>(r)]->forward(group),
                                        Shape{B, S, 1, D}));
    }
    Variable gathered =
        parts.size() == 1 ? parts.front() : autograd::concat(parts, 2);
    return final_->forward(gathered);
  }

  ModelConfig cfg_;
  int P_;
  std::unique_ptr<model::PatchTokenizer> tokenizer_;
  std::vector<std::unique_ptr<model::AggregationTree>> trees_;
  std::unique_ptr<model::CrossAttentionAggregator> final_;
};

struct Param {
  int world;
  tensor::Index units;
  model::AggLayerKind kind;
};

class DchagSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DchagSweep, ForwardMatchesSingleDeviceReference) {
  const auto [P, units, kind] = GetParam();
  ModelConfig cfg = tiny();
  const tensor::Index C = 8;
  Rng data_rng(3);
  Tensor img = data_rng.normal_tensor(Shape{2, C, 16, 16});

  Rng ref_rng(555);
  SingleDeviceReference ref(cfg, C, P, {units, kind}, ref_rng);
  Tensor expected = ref.forward(img).value();

  World world(P);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(555);
    DchagFrontEnd fe(cfg, C, comm, {units, kind}, rng);
    Tensor local = fe.slice_local_channels(img);
    Variable out = fe.forward(local);
    ASSERT_EQ(out.shape(), (Shape{2, cfg.seq_len(), cfg.embed_dim}));
    ASSERT_LT(ops::max_abs_diff(out.value(), expected), 1e-4f)
        << "rank " << comm.rank();
  });
}

TEST_P(DchagSweep, OutputReplicatedAcrossRanks) {
  const auto [P, units, kind] = GetParam();
  ModelConfig cfg = tiny();
  Rng data_rng(4);
  Tensor img = data_rng.normal_tensor(Shape{1, 8, 16, 16});
  World world(P);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(777);
    DchagFrontEnd fe(cfg, 8, comm, {units, kind}, rng);
    Variable out = fe.forward(fe.slice_local_channels(img));
    ASSERT_TRUE(parallel::is_replicated(out.value(), comm, 1e-5f));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DchagSweep,
    ::testing::Values(Param{1, 1, model::AggLayerKind::kLinear},
                      Param{2, 1, model::AggLayerKind::kLinear},
                      Param{2, 1, model::AggLayerKind::kCrossAttention},
                      Param{2, 2, model::AggLayerKind::kLinear},
                      Param{4, 1, model::AggLayerKind::kCrossAttention},
                      Param{4, 2, model::AggLayerKind::kCrossAttention},
                      Param{4, 2, model::AggLayerKind::kLinear}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "P" + std::to_string(info.param.world) + "Tree" +
             std::to_string(info.param.units) +
             model::to_string(info.param.kind);
    });

TEST(DchagFrontEnd, BackwardIssuesNoCommunication) {
  // Paper §3.3: "during the backward pass, we gather only the relevant
  // gradients for each GPU, avoiding any additional communication."
  ModelConfig cfg = tiny();
  Rng data_rng(5);
  Tensor img = data_rng.normal_tensor(Shape{1, 8, 16, 16});
  World world(4);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(888);
    DchagFrontEnd fe(cfg, 8, comm, {1, model::AggLayerKind::kLinear}, rng);
    Variable out = fe.forward(fe.slice_local_channels(img));
    Variable loss = autograd::mean_all(autograd::mul(out, out));
    const auto fwd_calls = comm.stats().total_calls();
    const auto fwd_gathers = comm.stats().calls_of(CollectiveKind::kAllGather);
    loss.backward();
    ASSERT_EQ(comm.stats().total_calls(), fwd_calls);
    ASSERT_EQ(comm.stats().calls_of(CollectiveKind::kAllGather), fwd_gathers);
  });
}

TEST(DchagFrontEnd, ForwardUsesExactlyOneAllGather) {
  ModelConfig cfg = tiny();
  Rng data_rng(6);
  Tensor img = data_rng.normal_tensor(Shape{1, 8, 16, 16});
  World world(2);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(999);
    DchagFrontEnd fe(cfg, 8, comm, {1, model::AggLayerKind::kLinear}, rng);
    comm.reset_stats();
    (void)fe.forward(fe.slice_local_channels(img));
    ASSERT_EQ(comm.stats().calls_of(CollectiveKind::kAllGather), 1u);
    // The gathered payload is one channel representation per rank:
    // B * S * P * D floats.
    const auto expected_bytes = static_cast<std::uint64_t>(
        1 * cfg.seq_len() * 2 * cfg.embed_dim * sizeof(float));
    ASSERT_EQ(comm.stats().bytes_of(CollectiveKind::kAllGather),
              expected_bytes);
  });
}

TEST(DchagFrontEnd, GradientsMatchSingleDeviceReference) {
  ModelConfig cfg = tiny();
  const tensor::Index C = 4;
  const int P = 2;
  Rng data_rng(7);
  Tensor img = data_rng.normal_tensor(Shape{1, C, 16, 16});

  Rng ref_rng(1212);
  SingleDeviceReference ref(cfg, C, P, {1, model::AggLayerKind::kLinear},
                            ref_rng);
  {
    Variable out = ref.forward(img);
    autograd::mean_all(autograd::mul(out, out)).backward();
  }

  World world(P);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(1212);
    DchagFrontEnd fe(cfg, C, comm, {1, model::AggLayerKind::kLinear}, rng);
    Variable out = fe.forward(fe.slice_local_channels(img));
    autograd::mean_all(autograd::mul(out, out)).backward();

    // Final aggregator grads must match the reference's final aggregator
    // (replicated computation -> identical gradients).
    auto fe_final = fe.final_aggregator().parameters();
    auto ref_final = ref.final_->parameters();
    ASSERT_EQ(fe_final.size(), ref_final.size());
    for (std::size_t i = 0; i < fe_final.size(); ++i) {
      ASSERT_TRUE(fe_final[i].has_grad()) << fe_final[i].name();
      ASSERT_LT(ops::max_abs_diff(fe_final[i].grad(), ref_final[i].grad()),
                1e-4f)
          << fe_final[i].name();
    }
    // Rank-local tree grads match the reference tree for this rank's group.
    auto fe_tree = fe.partial_tree().parameters();
    auto ref_tree =
        ref.trees_[static_cast<std::size_t>(comm.rank())]->parameters();
    ASSERT_EQ(fe_tree.size(), ref_tree.size());
    for (std::size_t i = 0; i < fe_tree.size(); ++i) {
      ASSERT_LT(ops::max_abs_diff(fe_tree[i].grad(), ref_tree[i].grad()),
                1e-4f)
          << fe_tree[i].name() << " rank " << comm.rank();
    }
  });
}

TEST(DchagFrontEnd, FinalAggregatorWeightsReplicatedByConstruction) {
  ModelConfig cfg = tiny();
  World world(4);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(4242);
    DchagFrontEnd fe(cfg, 8, comm, {2, model::AggLayerKind::kCrossAttention},
                     rng);
    for (const Variable& p : fe.final_aggregator().parameters()) {
      ASSERT_TRUE(parallel::is_replicated(p.value(), comm)) << p.name();
    }
  });
}

TEST(DchagFrontEnd, RejectsWrongInputShape) {
  ModelConfig cfg = tiny();
  World world(2);
  EXPECT_THROW(world.run([&](parallel::Communicator& comm) {
    Rng rng(1);
    DchagFrontEnd fe(cfg, 8, comm, {1, model::AggLayerKind::kLinear}, rng);
    (void)fe.forward(Tensor(Shape{1, 8, 16, 16}));  // full C, not local
  }),
               Error);
}

TEST(DchagFactories, MaeAndForecastRunSpmd) {
  ModelConfig cfg = tiny();
  Rng data_rng(9);
  Tensor img = data_rng.normal_tensor(Shape{1, 4, 16, 16});
  Tensor future = data_rng.normal_tensor(Shape{1, 4, 16, 16});
  World world(2);
  world.run([&](parallel::Communicator& comm) {
    Rng rng(31337);
    auto mae = make_dchag_mae(cfg, 4, comm, {1, model::AggLayerKind::kLinear},
                              rng);
    Rng mask_rng(55);
    Tensor mask = model::MaeModel::make_mask(1, cfg.seq_len(), 0.5f, mask_rng);
    auto out = mae->forward(mae->frontend().select_input(img), img, mask);
    ASSERT_TRUE(std::isfinite(out.loss.value().item()));
    // Loss must be identical on every rank (replicated downstream).
    Tensor loss_t = out.loss.value().clone();
    ASSERT_TRUE(parallel::is_replicated(loss_t, comm, 1e-6f));

    Rng rng2(31337);
    auto fm = make_dchag_forecast(cfg, 4, comm,
                                  {1, model::AggLayerKind::kLinear}, rng2);
    auto fout = fm->forward(fm->frontend().select_input(img), future);
    ASSERT_TRUE(std::isfinite(fout.loss.value().item()));
  });
}

}  // namespace
}  // namespace dchag::core
