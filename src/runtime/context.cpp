#include "runtime/context.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "tensor/check.hpp"

extern char** environ;

namespace dchag::runtime {

namespace {

// ---------------------------------------------------------------------------
// The one override stack: per-field innermost values, maintained
// incrementally by Scope push/pop so the hot reads stay O(1).
// ---------------------------------------------------------------------------

struct ThreadState {
  std::optional<KernelConfig> kernels;
  std::optional<CommConfig> comm;
  std::optional<std::shared_ptr<const comm::FaultPlan>> fault_plan;
  std::optional<std::shared_ptr<TraceSink>> tracing;
  std::optional<tensor::ThreadPool*> pool;
};

thread_local ThreadState t_state;

// Process default. The full Context lives behind an atomic shared_ptr
// (readers never take a lock — parallel_for snapshots it per fan-out);
// the trivially-copyable fields are additionally mirrored in lock-free
// 8-byte atomics because active_kernel_config() sits on every op
// dispatch and must not even pay shared_ptr refcount traffic.
std::once_flag g_env_once;
std::atomic<KernelConfig> g_kernels_mirror{KernelConfig{}};
std::atomic<CommConfig> g_comm_mirror{CommConfig{}};
std::atomic<tensor::ThreadPool*> g_pool_mirror{nullptr};
// Tracks (not stickily) whether the CURRENT process default carries a
// sink; a thread's own scope sink is visible through t_state, so no
// cross-thread flag is needed for scopes.
std::atomic<bool> g_default_has_tracing{false};

std::atomic<std::shared_ptr<const Context>>& default_slot() {
  static std::atomic<std::shared_ptr<const Context>> slot{
      std::make_shared<const Context>()};
  return slot;
}

void store_default(const Context& ctx) {
  g_kernels_mirror.store(ctx.kernels(), std::memory_order_relaxed);
  g_comm_mirror.store(ctx.comm(), std::memory_order_relaxed);
  g_pool_mirror.store(ctx.pool(), std::memory_order_relaxed);
  g_default_has_tracing.store(ctx.tracing() != nullptr,
                              std::memory_order_relaxed);
  default_slot().store(std::make_shared<const Context>(ctx),
                       std::memory_order_release);
}

void ensure_env_default() {
  std::call_once(g_env_once, [] { store_default(Context::from_env()); });
}

std::string lowercased(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Atoms
// ---------------------------------------------------------------------------

const char* to_string(KernelBackend b) {
  switch (b) {
    case KernelBackend::kNaive: return "naive";
    case KernelBackend::kBlocked: return "blocked";
    case KernelBackend::kParallel: return "parallel";
  }
  return "?";
}

const char* to_string(CommMode m) {
  return m == CommMode::kSync ? "sync" : "async";
}

KernelBackend parse_backend(const std::string& name) {
  const std::string n = lowercased(name);
  if (n == "naive") return KernelBackend::kNaive;
  if (n == "blocked") return KernelBackend::kBlocked;
  if (n == "parallel") return KernelBackend::kParallel;
  DCHAG_FAIL("unknown kernel backend '" << name
                                        << "' (want naive|blocked|parallel)");
}

CommMode parse_comm_mode(const std::string& name) {
  const std::string n = lowercased(name);
  if (n == "sync") return CommMode::kSync;
  if (n == "async") return CommMode::kAsync;
  DCHAG_FAIL("unknown comm mode '" << name << "' (want sync|async)");
}

namespace detail {
std::optional<CommConfig> thread_comm_override() { return t_state.comm; }

std::optional<int> parse_bounded_int(const std::string& text, int lo,
                                     int hi) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || parsed < lo || parsed > hi)
    return std::nullopt;
  return static_cast<int>(parsed);
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context Context::current() { return process_default().effective(); }

Context Context::effective() const {
  Context out = *this;
  if (t_state.kernels) out.kernels_ = *t_state.kernels;
  if (t_state.comm) out.comm_ = *t_state.comm;
  if (t_state.fault_plan) out.fault_plan_ = *t_state.fault_plan;
  if (t_state.tracing) out.tracing_ = *t_state.tracing;
  if (t_state.pool) out.pool_ = *t_state.pool;
  return out;
}

Context Context::effective_or_current(const std::optional<Context>& base) {
  return base ? base->effective() : current();
}

Context Context::process_default() {
  ensure_env_default();
  return *default_slot().load(std::memory_order_acquire);
}

void Context::set_process_default(const Context& ctx) {
  // Run env init first so a later first process_default() read can't
  // clobber this explicit setting with the environment default.
  ensure_env_default();
  store_default(ctx);
}

std::string Context::EnvReport::summary() const {
  if (issues.empty()) return {};
  std::string out = "dchag: invalid DCHAG_* environment configuration: ";
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i != 0) out += "; ";
    out += issues[i];
  }
  return out;
}

Context Context::from_env(const std::vector<EnvEntry>& env,
                          EnvReport* report) {
  EnvReport local;
  KernelConfig kernels;
  CommConfig comm;
  bool chunks_set = false;
  for (const EnvEntry& e : env) {
    if (e.name.rfind("DCHAG_", 0) != 0) continue;
    // An exported-but-empty variable means "unset", matching the
    // pre-Context parsers (and every shell's VAR= idiom).
    if (e.value.empty()) continue;
    if (e.name == "DCHAG_KERNEL") {
      try {
        kernels.backend = parse_backend(e.value);
      } catch (const Error&) {
        local.issues.push_back("DCHAG_KERNEL='" + e.value +
                               "' (want naive|blocked|parallel)");
      }
    } else if (e.name == "DCHAG_THREADS") {
      if (const auto v = detail::parse_bounded_int(e.value, 0, 4096)) {
        kernels.threads = *v;
      } else {
        local.issues.push_back("DCHAG_THREADS='" + e.value +
                               "' (want an integer in [0, 4096])");
      }
    } else if (e.name == "DCHAG_COMM") {
      try {
        comm.mode = parse_comm_mode(e.value);
      } catch (const Error&) {
        local.issues.push_back("DCHAG_COMM='" + e.value +
                               "' (want sync|async)");
      }
    } else if (e.name == "DCHAG_COMM_CHUNKS") {
      if (const auto v = detail::parse_bounded_int(e.value, 1, 4096)) {
        comm.pipeline_chunks = *v;
        chunks_set = true;
      } else {
        local.issues.push_back("DCHAG_COMM_CHUNKS='" + e.value +
                               "' (want an integer in [1, 4096])");
      }
    } else if (e.name.rfind("DCHAG_ING_", 0) == 0) {
      // The ingress tier's worker-protocol namespace (checkpoint path,
      // model spec, crash injection, worker binary). Owned by
      // src/ingress, not the context — pass through without diagnostics.
      continue;
    } else {
      local.issues.push_back(
          "unknown variable " + e.name +
          " (known: DCHAG_KERNEL, DCHAG_THREADS, DCHAG_COMM, "
          "DCHAG_COMM_CHUNKS; DCHAG_ING_* is the ingress namespace)");
    }
  }
  // Async without pipelining cannot overlap anything; default it to a
  // useful depth while letting DCHAG_COMM_CHUNKS pin either mode's depth.
  if (!chunks_set)
    comm.pipeline_chunks = comm.mode == CommMode::kAsync ? 4 : 1;

  if (report != nullptr) {
    *report = std::move(local);
  } else if (!local.issues.empty()) {
    // One aggregated diagnostic per process, not one line per variable
    // per read: from_env is called once for the process default, but a
    // program may also call it directly.
    static std::once_flag warn_once;
    std::call_once(warn_once, [&] {
      std::fprintf(stderr, "%s\n", local.summary().c_str());
    });
  }
  return ContextBuilder().kernels(kernels).comm(comm).build();
}

std::vector<Context::EnvEntry> Context::to_env() const {
  // The exact inverse of from_env() for the fields it reads: exporting
  // these entries into a child's environment makes from_env() there
  // reconstruct this context's kernel/comm configuration. Process-local
  // fields (fault plan, trace sink, pool pointer) cannot cross an exec
  // boundary and are deliberately absent.
  return {
      EnvEntry{"DCHAG_KERNEL", to_string(kernels_.backend)},
      EnvEntry{"DCHAG_THREADS", std::to_string(kernels_.threads)},
      EnvEntry{"DCHAG_COMM", to_string(comm_.mode)},
      EnvEntry{"DCHAG_COMM_CHUNKS", std::to_string(comm_.pipeline_chunks)},
  };
}

Context Context::from_env(EnvReport* report) {
  std::vector<EnvEntry> env;
  for (char** it = environ; it != nullptr && *it != nullptr; ++it) {
    const std::string entry(*it);
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    std::string name = entry.substr(0, eq);
    if (name.rfind("DCHAG_", 0) != 0) continue;
    env.push_back(EnvEntry{std::move(name), entry.substr(eq + 1)});
  }
  return from_env(env, report);
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

Scope::Scope(const Context& ctx)
    : Scope(ContextPatch{ctx.kernels(), ctx.comm(), ctx.fault_plan(),
                         ctx.tracing(), ctx.pool()}) {}

Scope::Scope(const ContextPatch& patch) {
  if (patch.kernels) {
    set_kernels_ = true;
    saved_.kernels = t_state.kernels;
    t_state.kernels = *patch.kernels;
  }
  if (patch.comm) {
    set_comm_ = true;
    saved_.comm = t_state.comm;
    t_state.comm = *patch.comm;
  }
  if (patch.fault_plan) {
    set_fault_ = true;
    saved_.fault_plan = t_state.fault_plan;
    t_state.fault_plan = *patch.fault_plan;
  }
  if (patch.tracing) {
    set_tracing_ = true;
    saved_.tracing = t_state.tracing;
    t_state.tracing = *patch.tracing;
  }
  if (patch.pool) {
    set_pool_ = true;
    saved_.pool = t_state.pool;
    t_state.pool = *patch.pool;
  }
}

Scope::~Scope() {
  // saved_.X is engaged with the shadowed override only when this scope
  // set the field; disengaged means "no override was active below us".
  if (set_kernels_) t_state.kernels = saved_.kernels;
  if (set_comm_) t_state.comm = saved_.comm;
  if (set_fault_) t_state.fault_plan = saved_.fault_plan;
  if (set_tracing_) t_state.tracing = saved_.tracing;
  if (set_pool_) t_state.pool = saved_.pool;
}

// ---------------------------------------------------------------------------
// Hot-path reads
// ---------------------------------------------------------------------------

KernelConfig active_kernel_config() {
  if (t_state.kernels) return *t_state.kernels;
  ensure_env_default();
  return g_kernels_mirror.load(std::memory_order_relaxed);
}

CommConfig active_comm_config() {
  if (t_state.comm) return *t_state.comm;
  ensure_env_default();
  return g_comm_mirror.load(std::memory_order_relaxed);
}

tensor::ThreadPool* active_pool_handle() {
  if (t_state.pool) return *t_state.pool;
  ensure_env_default();
  return g_pool_mirror.load(std::memory_order_relaxed);
}

void trace_here(std::string_view key, double value) {
  // A thread's effective sink is its innermost scope override (engaged
  // but null = "tracing off here"), else the process default's sink.
  std::shared_ptr<TraceSink> sink;
  if (t_state.tracing) {
    sink = *t_state.tracing;
  } else if (g_default_has_tracing.load(std::memory_order_relaxed)) {
    ensure_env_default();
    sink = default_slot().load(std::memory_order_acquire)->tracing();
  }
  if (sink) sink->record(TraceEvent{key, value});
}

void trace(const Context& ctx, std::string_view key, double value) {
  if (ctx.tracing()) ctx.tracing()->record(TraceEvent{key, value});
}

}  // namespace dchag::runtime
