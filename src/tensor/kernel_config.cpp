// Shim TU: reads the unified runtime::Context and applies the CPU
// capability degrade. Reading the deprecated surface it implements must
// not warn here.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "tensor/kernel_config.hpp"

#include <cstdio>
#include <mutex>

#include "tensor/gemm.hpp"

namespace dchag::tensor {

namespace {

/// Downgrades blocked/parallel to naive (one stderr warning per process)
/// when the blocked TU was compiled for SIMD this CPU lacks.
KernelConfig sanitize(KernelConfig cfg) {
  if (cfg.backend != KernelBackend::kNaive && !blocked_kernels_supported()) {
    // One informational line per process, phrased as what happens — the
    // non-naive backend may be nothing more than the built-in default,
    // so this must not read as a user misconfiguration.
    static std::once_flag warn_once;
    std::call_once(warn_once, [&] {
      std::fprintf(stderr,
                   "dchag: this CPU lacks the SIMD level the blocked "
                   "kernels were compiled for; running the naive kernel "
                   "backend instead of %s\n",
                   to_string(cfg.backend));
    });
    cfg.backend = KernelBackend::kNaive;
  }
  return cfg;
}

}  // namespace

KernelConfig kernel_config() {
  return sanitize(runtime::active_kernel_config());
}

#ifdef DCHAG_DEPRECATED_CONFIG
void set_kernel_config(KernelConfig cfg) {
  runtime::Context::set_process_default(
      runtime::Context::process_default().to_builder().kernels(cfg).build());
}
#endif

bool blocked_kernels_supported() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool ok = !gemm::compiled_with_avx2() ||
                         (__builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma"));
#else
  static const bool ok = true;  // gemm.cpp builds generic off x86-64
#endif
  return ok;
}

}  // namespace dchag::tensor
