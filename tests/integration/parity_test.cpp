// Scaled-down versions of the paper's evaluation protocol (§5, Figs. 11
// and 12): train the baseline on one rank and D-CHAG on P ranks with
// identical hyperparameters and data, and require the training curves to
// agree closely (the paper reports matching loss curves and <1% RMSE
// degradation).
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "data/hyperspectral.hpp"
#include "data/weather.hpp"
#include "train/loops.hpp"

namespace dchag {
namespace {

using core::DchagOptions;
using model::AggLayerKind;
using model::ModelConfig;
using tensor::Index;
using tensor::Rng;
using tensor::Tensor;

ModelConfig tiny() { return ModelConfig::tiny(); }

constexpr Index kChannels = 8;
constexpr Index kSteps = 25;

std::vector<Tensor> make_hyperspectral_batches() {
  data::HyperspectralConfig hc;
  hc.channels = kChannels;
  hc.height = 16;
  hc.width = 16;
  data::HyperspectralGenerator gen(hc, 77);
  std::vector<Tensor> batches;
  for (Index i = 0; i < kSteps; ++i) batches.push_back(gen.sample_batch(2));
  return batches;
}

train::LoopConfig loop_config() {
  train::LoopConfig lc;
  lc.steps = kSteps;
  lc.batch = 2;
  lc.adam.lr = 2e-3f;
  lc.data_seed = 555;
  return lc;
}

TEST(MaeParity, DchagMatchesBaselineTrainingLoss) {
  // Paper Fig. 11: "good agreement in the training loss between the
  // single-GPU implementation and the D-CHAG method (run on two GPUs)".
  ModelConfig cfg = tiny();
  const auto batches = make_hyperspectral_batches();
  const auto next = [&](Index step) {
    return batches[static_cast<std::size_t>(step)];
  };

  Rng base_rng(9001);
  auto base_fe = model::make_baseline_frontend(cfg, kChannels, base_rng);
  model::MaeModel baseline(cfg, std::move(base_fe), kChannels, base_rng);
  const train::TrainCurve base_curve =
      train_mae(baseline, loop_config(), next);

  std::vector<float> dchag_final(2, 0.0f);
  comm::World world(2);
  world.run([&](comm::Communicator& comm) {
    Rng rng(9001);
    auto mae = core::make_dchag_mae(cfg, kChannels, comm,
                                    {1, AggLayerKind::kLinear}, rng);
    const train::TrainCurve curve = train_mae(*mae, loop_config(), next);
    dchag_final[static_cast<std::size_t>(comm.rank())] = curve.tail_mean(5);
    // Both losses must be finite and decreasing.
    ASSERT_LT(curve.tail_mean(5), curve.losses.front());
  });

  // Ranks agree with each other exactly (replicated loss)...
  EXPECT_NEAR(dchag_final[0], dchag_final[1], 1e-5f);
  // ...and with the baseline within a modest band (architectures differ
  // by the partial-aggregation layers; the paper reports near-identical
  // curves).
  const float base_final = base_curve.tail_mean(5);
  EXPECT_LT(std::abs(dchag_final[0] - base_final), 0.35f * base_final)
      << "baseline " << base_final << " vs dchag " << dchag_final[0];
  EXPECT_LT(base_curve.tail_mean(5), base_curve.losses.front());
}

TEST(ForecastParity, DchagMatchesBaselineLossAndRmse) {
  // Paper Fig. 12: training loss matches almost exactly; test RMSE within
  // ~1%. At this scale we allow a wider (but still tight) band.
  ModelConfig cfg = tiny();
  data::WeatherConfig wc;
  wc.num_variables = 2;
  wc.levels_per_variable = 3;
  wc.surface_variables = 2;  // 8 channels
  wc.height = 16;
  wc.width = 16;
  data::WeatherGenerator gen(wc, 33);
  std::vector<data::WeatherGenerator::Pair> pairs;
  for (Index i = 0; i < kSteps + 5; ++i)
    pairs.push_back(gen.sample_pair(2, 1.0f));
  const auto next = [&](Index step) {
    const auto& p = pairs[static_cast<std::size_t>(step)];
    return std::make_pair(p.now, p.future);
  };
  const auto next_eval = [&](Index i) {
    const auto& p = pairs[static_cast<std::size_t>(kSteps + i)];
    return std::make_pair(p.now, p.future);
  };

  Rng base_rng(4242);
  auto base_fe = model::make_baseline_frontend(cfg, wc.channels(), base_rng);
  model::ForecastModel baseline(cfg, std::move(base_fe), wc.channels(),
                                base_rng);
  const train::TrainCurve base_curve =
      train_forecast(baseline, loop_config(), next);
  const auto base_rmse = train::evaluate_forecast_rmse(
      baseline, cfg.patch_size, next_eval, 4);

  std::vector<float> dchag_final(4, 0.0f);
  std::vector<float> dchag_rmse0(4, 0.0f);
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    Rng rng(4242);
    auto fm = core::make_dchag_forecast(cfg, wc.channels(), comm,
                                        {1, AggLayerKind::kCrossAttention},
                                        rng);
    const train::TrainCurve curve = train_forecast(*fm, loop_config(), next);
    const auto rmse = train::evaluate_forecast_rmse(*fm, cfg.patch_size,
                                                    next_eval, 4);
    dchag_final[static_cast<std::size_t>(comm.rank())] = curve.tail_mean(5);
    dchag_rmse0[static_cast<std::size_t>(comm.rank())] = rmse[0];
  });

  for (int r = 1; r < 4; ++r) {
    EXPECT_NEAR(dchag_final[0], dchag_final[static_cast<std::size_t>(r)],
                1e-5f);
  }
  const float base_final = base_curve.tail_mean(5);
  EXPECT_LT(std::abs(dchag_final[0] - base_final), 0.35f * base_final);
  EXPECT_LT(std::abs(dchag_rmse0[0] - base_rmse[0]), 0.35f * base_rmse[0]);
}

TEST(MaeParity, DchagVariantsBothConverge) {
  // -C and -L variants both train (paper evaluates both; Fig. 12 runs
  // D-CHAG-C and D-CHAG-L).
  ModelConfig cfg = tiny();
  const auto batches = make_hyperspectral_batches();
  const auto next = [&](Index step) {
    return batches[static_cast<std::size_t>(step)];
  };
  for (AggLayerKind kind :
       {AggLayerKind::kLinear, AggLayerKind::kCrossAttention}) {
    comm::World world(2);
    world.run([&](comm::Communicator& comm) {
      Rng rng(31);
      auto mae = core::make_dchag_mae(cfg, kChannels, comm, {2, kind}, rng);
      const train::TrainCurve curve = train_mae(*mae, loop_config(), next);
      ASSERT_LT(curve.tail_mean(5), 0.9f * curve.losses.front())
          << model::to_string(kind);
    });
  }
}

}  // namespace
}  // namespace dchag
